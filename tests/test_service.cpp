// Guardband service tests (ISSUE 7 / DESIGN.md section 12):
//
//  * Determinism: N concurrent clients with interleaved queries get
//    responses byte-identical to a serial replay of the same request
//    list, for pool sizes 1 and 4 (the PR 1 pool(1)==pool(4) pinning
//    lifted to the wire). Runs under the TSan CI gate.
//  * Differential: every served tuple re-run through the cold batch
//    implement()/guardband() oracle must match to the PR 3
//    incremental-vs-full contract bounds.
//  * Admission/batching semantics: duplicate tuples coalesce, distinct
//    (design, grade) groups fan out, stats add up.
//  * ArtifactStore-backed restarts: a server started on a warm artifact
//    directory serves byte-identical responses (and actually reads the
//    disk tier).
//  * Socket transport: a framed request over a real unix socket gets
//    the same bytes the in-process path produces.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic.hpp"
#include "core/flow.hpp"
#include "service/guardband_server.hpp"
#include "service/protocol.hpp"
#include "service/socket_transport.hpp"

namespace {

using namespace taf;
using service::GuardbandServer;
using service::ServerConfig;
namespace protocol = service::protocol;

struct TempDir {
  TempDir() {
    std::string tmpl = "/tmp/taf-service-XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

/// Small designs only: the suite runs under TSan in CI.
ServerConfig small_config(int threads) {
  ServerConfig config;
  config.threads = threads;
  config.scale = 1.0 / 16.0;
  config.max_batch = 4;
  return config;
}

/// Interleaved fleet of queries over two designs, three ambients, two
/// activities — with duplicates, so caching and coalescing both engage.
std::vector<protocol::GuardbandRequest> request_stream(std::size_t count) {
  const char* designs[] = {"mkPktMerge", "diffeq2"};
  const double ambients[] = {30.0, 45.0, 60.0};
  const double activities[] = {0.5, 1.0};
  std::vector<protocol::GuardbandRequest> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    protocol::GuardbandRequest req;
    req.request_id = i + 1;
    req.design = designs[i % 2];
    req.grade_t_opt_c = 25.0;
    req.ambient_c = ambients[(i / 2) % 3];
    req.activity_scale = activities[(i / 6) % 2];
    stream.push_back(std::move(req));
  }
  return stream;
}

std::vector<std::string> serial_replay(const std::vector<protocol::GuardbandRequest>& stream) {
  GuardbandServer server(small_config(1));
  std::vector<std::string> bytes;
  bytes.reserve(stream.size());
  for (const auto& req : stream) {
    bytes.push_back(protocol::encode_response(server.handle(req)));
  }
  return bytes;
}

TEST(ServiceDeterminism, ConcurrentClientsMatchSerialReplayByteForByte) {
  const auto stream = request_stream(36);
  const std::vector<std::string> expected = serial_replay(stream);

  for (const int pool_threads : {1, 4}) {
    SCOPED_TRACE("pool " + std::to_string(pool_threads));
    GuardbandServer server(small_config(pool_threads));
    constexpr int kClients = 4;
    std::vector<std::string> got(stream.size());
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        // Client c takes every kClients-th request: interleaved streams.
        for (std::size_t i = static_cast<std::size_t>(c); i < stream.size();
             i += kClients) {
          got[i] = protocol::encode_response(server.handle(stream[i]));
        }
      });
    }
    for (auto& t : clients) t.join();
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "request " << i;
    }
    const GuardbandServer::Stats s = server.stats();
    EXPECT_EQ(s.requests, stream.size());
    EXPECT_EQ(s.tuples_evaluated + s.tuple_hits, stream.size());
    EXPECT_EQ(s.tuples_evaluated, 12u);  // 2 designs x 3 ambients x 2 activities
    EXPECT_EQ(s.errors, 0u);
  }
}

TEST(ServiceDeterminism, HandleBatchMatchesPerRequestHandle) {
  const auto stream = request_stream(24);
  GuardbandServer batch_server(small_config(2));
  const std::vector<protocol::GuardbandResponse> batched =
      batch_server.handle_batch(stream);
  ASSERT_EQ(batched.size(), stream.size());

  GuardbandServer serial_server(small_config(1));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(protocol::encode_response(batched[i]),
              protocol::encode_response(serial_server.handle(stream[i])))
        << "request " << i;
  }
  // One batch: every distinct tuple evaluated once, the rest coalesced.
  const GuardbandServer::Stats s = batch_server.stats();
  EXPECT_EQ(s.requests, stream.size());
  EXPECT_EQ(s.tuples_evaluated, 12u);
  EXPECT_EQ(s.tuple_hits, stream.size() - 12u);
  EXPECT_EQ(s.groups_evaluated, 2u);  // one per (design, grade)
  EXPECT_EQ(s.batched_corners, 12u);
  EXPECT_EQ(s.admission_batches, 0u);  // handle_batch bypasses admission
}

TEST(ServiceDifferential, ServedTuplesMatchColdBatchOracle) {
  // Every served tuple, re-run through the cold implement()/guardband()
  // path with the full-recompute oracle, must agree to the PR 3
  // incremental-vs-full contract bounds.
  GuardbandServer server(small_config(2));
  const auto stream = request_stream(12);
  const std::vector<protocol::GuardbandResponse> responses = server.handle_batch(stream);

  const arch::ArchParams arch = server.config().arch;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    const protocol::GuardbandResponse& resp = responses[i];
    netlist::BenchmarkSpec spec;
    for (const auto& s : netlist::vtr_suite()) {
      if (s.name == resp.design) spec = s;
    }
    const auto impl = core::implement(netlist::scaled(spec, server.config().scale), arch);
    const coffe::DeviceModel dev =
        coffe::Characterizer(server.config().tech, arch)
            .characterize(units::Celsius(static_cast<double>(resp.grade_mdeg) / 1000.0));
    core::GuardbandOptions opt = server.config().guardband;
    opt.t_amb_c = units::Celsius(static_cast<double>(resp.ambient_mdeg) / 1000.0);
    opt.power_scale = static_cast<double>(resp.activity_permille) / 1000.0;
    opt.incremental = core::IncrementalMode::Off;  // the full-recompute oracle
    const core::GuardbandResult cold = core::guardband(*impl, dev, opt);

    EXPECT_EQ(resp.iterations, cold.iterations);
    EXPECT_EQ(resp.converged != 0, cold.converged);
    EXPECT_DOUBLE_EQ(resp.baseline_fmax_mhz, cold.baseline_fmax_mhz.value());
    EXPECT_NEAR(resp.fmax_mhz, cold.fmax_mhz.value(), 1e-9);
    EXPECT_NEAR(resp.peak_temp_c, cold.peak_temp_c.value(), 1e-9);
    EXPECT_NEAR(resp.mean_temp_c, cold.mean_temp_c.value(), 1e-9);
  }
}

TEST(ServiceArtifacts, StoreBackedRestartServesIdenticalBytesFromDisk) {
  const TempDir dir;
  const auto stream = request_stream(8);
  std::vector<std::string> first_bytes;
  {
    ServerConfig config = small_config(2);
    config.artifact_dir = dir.path;
    GuardbandServer server(config);
    for (const auto& resp : server.handle_batch(stream)) {
      first_bytes.push_back(protocol::encode_response(resp));
    }
    EXPECT_GT(server.flow_cache().stats().disk_writes, 0u);
  }
  // Cold process, warm disk: byte-identical responses, served with disk
  // hits instead of recomputation of the stored stages.
  {
    ServerConfig config = small_config(2);
    config.artifact_dir = dir.path;
    GuardbandServer server(config);
    const auto responses = server.handle_batch(stream);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(protocol::encode_response(responses[i]), first_bytes[i])
          << "request " << i;
    }
    EXPECT_GT(server.flow_cache().stats().disk_hits, 0u);
  }
}

TEST(ServiceTransport, UnixSocketRoundtripMatchesInProcessBytes) {
  const std::string sock = "/tmp/taf-service-test-" + std::to_string(::getpid()) + ".sock";
  GuardbandServer server(small_config(2));
  service::SocketListener listener(server, {.unix_path = sock, .tcp_port = -1});
  listener.start();

  const auto stream = request_stream(6);
  std::vector<std::string> wire_bytes;
  {
    service::FrameClient client = service::FrameClient::connect_unix(sock);
    for (const auto& req : stream) {
      wire_bytes.push_back(client.roundtrip(protocol::encode_request(req)));
    }
  }
  listener.stop();
  EXPECT_EQ(listener.connections_accepted(), 1u);

  const std::vector<std::string> expected = serial_replay(stream);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(wire_bytes[i], expected[i]) << "request " << i;
  }
}

TEST(ServiceTransport, TcpLoopbackServesAndReportsEphemeralPort) {
  GuardbandServer server(small_config(1));
  service::SocketListener listener(server, {.unix_path = "", .tcp_port = 0});
  ASSERT_GT(listener.bound_port(), 0);
  listener.start();
  service::FrameClient client = service::FrameClient::connect_tcp(listener.bound_port());
  const auto stream = request_stream(2);
  const std::string reply = client.roundtrip(protocol::encode_request(stream[0]));
  const protocol::GuardbandResponse resp = protocol::decode_response(reply);
  EXPECT_EQ(resp.request_id, stream[0].request_id);
  EXPECT_GT(resp.fmax_mhz, 0.0);
  listener.stop();
}

TEST(ServiceValidation, RejectsBadRequestsWithTypedErrors) {
  GuardbandServer server(small_config(1));
  protocol::GuardbandRequest req;
  req.request_id = 7;
  req.design = "no-such-design";
  EXPECT_TRUE(server.validate(req).has_value());
  EXPECT_EQ(server.validate(req)->code, protocol::ErrorResponse::kUnknownDesign);
  EXPECT_THROW((void)server.handle(req), std::invalid_argument);

  req.design = "mkPktMerge";
  req.ambient_c = 1e30;
  ASSERT_TRUE(server.validate(req).has_value());
  EXPECT_EQ(server.validate(req)->code, protocol::ErrorResponse::kBadParameter);

  req.ambient_c = 45.0;
  req.activity_scale = -1.0;
  ASSERT_TRUE(server.validate(req).has_value());
  EXPECT_EQ(server.validate(req)->code, protocol::ErrorResponse::kBadParameter);

  // The wire path turns the same failures into typed error envelopes.
  req.activity_scale = 1.0;
  req.design = "no-such-design";
  const std::string reply = server.serve_payload(protocol::encode_request(req));
  ASSERT_TRUE(protocol::is_error_envelope(reply));
  const protocol::ErrorResponse err = protocol::decode_error(reply);
  EXPECT_EQ(err.request_id, 7u);
  EXPECT_EQ(err.code, protocol::ErrorResponse::kUnknownDesign);
}

// ---------- guardband_trace (ISSUE 8) ----------

protocol::TraceRequest trace_request(std::uint64_t id, const char* design,
                                     double ambient_c, int cycles) {
  protocol::TraceRequest req;
  req.request_id = id;
  req.design = design;
  req.grade_t_opt_c = 25.0;
  req.ambient_c = ambient_c;
  req.samples_per_segment = 3;
  req.trace = core::ActivityTrace::duty_cycle(cycles, units::Seconds{2e-3},
                                              0.5, 1.0, 0.1);
  return req;
}

TEST(ServiceTrace, WireResponseMatchesInProcessReplayByteForByte) {
  // The served trace response must be byte-identical to re-running the
  // same trace through an in-process DynamicGuardband built with the
  // server's documented option mapping — the wire path adds transport
  // and caching, never numerics.
  GuardbandServer server(small_config(2));
  const protocol::TraceRequest req = trace_request(41, "mkPktMerge", 45.0, 3);
  const std::string wire = server.serve_payload(protocol::encode_trace_request(req));
  ASSERT_FALSE(protocol::is_error_envelope(wire));

  netlist::BenchmarkSpec spec;
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == req.design) spec = s;
  }
  const ServerConfig& config = server.config();
  const auto impl = core::implement(netlist::scaled(spec, config.scale), config.arch);
  const coffe::DeviceModel dev = coffe::Characterizer(config.tech, config.arch)
                                     .characterize(units::Celsius(req.grade_t_opt_c));
  core::DynamicGuardbandOptions dopt;
  dopt.t_amb_c = units::Celsius{req.ambient_c};
  dopt.margin_c = config.guardband.delta_t_c;
  dopt.thermal = config.guardband.thermal;
  dopt.power_scale = config.guardband.power_scale;
  dopt.samples_per_segment = req.samples_per_segment;
  const core::DynamicGuardband dyn(*impl, dev, std::move(dopt));
  const core::DynamicResult r = dyn.replay(req.trace);

  protocol::TraceResponse expected;
  expected.request_id = req.request_id;
  expected.design = req.design;
  expected.grade_mdeg = 25000;
  expected.ambient_mdeg = 45000;
  expected.samples_per_segment = req.samples_per_segment;
  expected.min_fmax_mhz = r.min_fmax_mhz.value();
  expected.peak_temp_c = r.peak_temp_c.value();
  expected.throttled_s = r.throttled_s.value();
  expected.transient_steps = r.stats.steps;
  expected.cg_iterations = r.stats.cg_iterations;
  for (const core::DynamicSample& s : r.samples) {
    expected.samples.push_back({s.time_s, s.peak_temp_c, s.mean_temp_c,
                                s.fmax_mhz,
                                static_cast<std::uint8_t>(s.throttled ? 1 : 0)});
  }
  EXPECT_EQ(wire, protocol::encode_trace_response(expected));

  // The decoded series is well-formed: monotone time, aggregates match.
  const protocol::TraceResponse got = protocol::decode_trace_response(wire);
  ASSERT_FALSE(got.samples.empty());
  double min_fmax = got.samples.front().fmax_mhz;
  double peak = got.samples.front().peak_temp_c;
  for (std::size_t i = 1; i < got.samples.size(); ++i) {
    EXPECT_GT(got.samples[i].time_s, got.samples[i - 1].time_s) << "sample " << i;
    min_fmax = std::min(min_fmax, got.samples[i].fmax_mhz);
    peak = std::max(peak, got.samples[i].peak_temp_c);
  }
  EXPECT_DOUBLE_EQ(got.min_fmax_mhz, min_fmax);
  EXPECT_DOUBLE_EQ(got.peak_temp_c, peak);
}

TEST(ServiceTrace, DuplicatesCoalesceAndStoreBackedRestartMatches) {
  const TempDir dir;
  // Four requests, two distinct tuples (same trace bytes + ambient
  // coalesce; different ambient does not).
  std::vector<protocol::TraceRequest> stream;
  stream.push_back(trace_request(1, "mkPktMerge", 45.0, 2));
  stream.push_back(trace_request(2, "mkPktMerge", 45.0, 2));
  stream.push_back(trace_request(3, "mkPktMerge", 60.0, 2));
  stream.push_back(trace_request(4, "mkPktMerge", 45.0, 2));

  std::vector<std::string> first_bytes;
  {
    ServerConfig config = small_config(2);
    config.artifact_dir = dir.path;
    GuardbandServer server(config);
    const auto responses = server.handle_trace_batch(stream);
    ASSERT_EQ(responses.size(), stream.size());
    for (const auto& resp : responses) {
      first_bytes.push_back(protocol::encode_trace_response(resp));
    }
    // Coalesced duplicates echo their own request_id but share the body.
    EXPECT_EQ(responses[0].request_id, 1u);
    EXPECT_EQ(responses[1].request_id, 2u);
    EXPECT_EQ(responses[0].min_fmax_mhz, responses[1].min_fmax_mhz);
    EXPECT_EQ(responses[0].transient_steps, responses[3].transient_steps);
    const GuardbandServer::Stats s = server.stats();
    EXPECT_EQ(s.trace_requests, 4u);
    EXPECT_EQ(s.traces_evaluated, 2u);
    EXPECT_EQ(s.trace_hits, 2u);
    EXPECT_GT(server.flow_cache().stats().disk_writes, 0u);
  }
  // Cold process, warm artifact directory: identical bytes, implement()
  // stages reloaded from the disk tier instead of recomputed.
  {
    ServerConfig config = small_config(2);
    config.artifact_dir = dir.path;
    GuardbandServer server(config);
    const auto responses = server.handle_trace_batch(stream);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(protocol::encode_trace_response(responses[i]), first_bytes[i])
          << "request " << i;
    }
    EXPECT_GT(server.flow_cache().stats().disk_hits, 0u);
  }
}

TEST(ServiceTrace, RejectsBadTracesWithTypedErrors) {
  GuardbandServer server(small_config(1));

  protocol::TraceRequest req = trace_request(9, "no-such-design", 45.0, 2);
  ASSERT_TRUE(server.validate_trace(req).has_value());
  EXPECT_EQ(server.validate_trace(req)->code, protocol::ErrorResponse::kUnknownDesign);
  EXPECT_THROW((void)server.handle_trace(req), std::invalid_argument);

  req = trace_request(9, "mkPktMerge", 1e30, 2);
  ASSERT_TRUE(server.validate_trace(req).has_value());
  EXPECT_EQ(server.validate_trace(req)->code, protocol::ErrorResponse::kBadParameter);

  req = trace_request(9, "mkPktMerge", 45.0, 2);
  req.samples_per_segment = 0;
  ASSERT_TRUE(server.validate_trace(req).has_value());
  EXPECT_EQ(server.validate_trace(req)->code, protocol::ErrorResponse::kBadParameter);
  req.samples_per_segment = 17;
  ASSERT_TRUE(server.validate_trace(req).has_value());
  EXPECT_EQ(server.validate_trace(req)->code, protocol::ErrorResponse::kBadParameter);

  // Semantically invalid trace (non-monotone): kBadParameter, not a crash.
  req = trace_request(9, "mkPktMerge", 45.0, 2);
  req.trace.segments[1].t_end = units::Seconds{1e-6};
  ASSERT_TRUE(server.validate_trace(req).has_value());
  EXPECT_EQ(server.validate_trace(req)->code, protocol::ErrorResponse::kBadParameter);

  // Per-block traces are rejected on the wire (service traces are
  // whole-device).
  req = trace_request(9, "mkPktMerge", 45.0, 2);
  req.trace.blocks = 2;
  for (auto& seg : req.trace.segments) seg.utilization.push_back(0.5);
  ASSERT_TRUE(server.validate_trace(req).has_value());
  EXPECT_EQ(server.validate_trace(req)->code, protocol::ErrorResponse::kBadParameter);

  // The wire path: typed error envelopes with the request id echoed, and
  // kMalformedFrame for bytes that never decode.
  req = trace_request(9, "no-such-design", 45.0, 2);
  const std::string reply = server.serve_payload(protocol::encode_trace_request(req));
  ASSERT_TRUE(protocol::is_error_envelope(reply));
  const protocol::ErrorResponse err = protocol::decode_error(reply);
  EXPECT_EQ(err.request_id, 9u);
  EXPECT_EQ(err.code, protocol::ErrorResponse::kUnknownDesign);

  const std::string good = protocol::encode_trace_request(
      trace_request(9, "mkPktMerge", 45.0, 2));
  const std::string truncated = good.substr(0, good.size() - 7);
  const std::string reply2 = server.serve_payload(truncated);
  ASSERT_TRUE(protocol::is_error_envelope(reply2));
  EXPECT_EQ(protocol::decode_error(reply2).code,
            protocol::ErrorResponse::kMalformedFrame);
}

TEST(ServiceQuantization, NearbyDoublesCollapseOntoOneTuple) {
  GuardbandServer server(small_config(1));
  protocol::GuardbandRequest a;
  a.request_id = 1;
  a.design = "mkPktMerge";
  a.ambient_c = 45.0;
  protocol::GuardbandRequest b = a;
  b.request_id = 2;
  b.ambient_c = 45.0 + 4e-4;  // same millidegree
  const protocol::GuardbandResponse ra = server.handle(a);
  const protocol::GuardbandResponse rb = server.handle(b);
  EXPECT_EQ(ra.ambient_mdeg, rb.ambient_mdeg);
  EXPECT_EQ(ra.fmax_mhz, rb.fmax_mhz);
  const GuardbandServer::Stats s = server.stats();
  EXPECT_EQ(s.tuples_evaluated, 1u);
  EXPECT_EQ(s.tuple_hits, 1u);
}

}  // namespace

// Guardband service tests (ISSUE 7 / DESIGN.md section 12):
//
//  * Determinism: N concurrent clients with interleaved queries get
//    responses byte-identical to a serial replay of the same request
//    list, for pool sizes 1 and 4 (the PR 1 pool(1)==pool(4) pinning
//    lifted to the wire). Runs under the TSan CI gate.
//  * Differential: every served tuple re-run through the cold batch
//    implement()/guardband() oracle must match to the PR 3
//    incremental-vs-full contract bounds.
//  * Admission/batching semantics: duplicate tuples coalesce, distinct
//    (design, grade) groups fan out, stats add up.
//  * ArtifactStore-backed restarts: a server started on a warm artifact
//    directory serves byte-identical responses (and actually reads the
//    disk tier).
//  * Socket transport: a framed request over a real unix socket gets
//    the same bytes the in-process path produces.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "service/guardband_server.hpp"
#include "service/protocol.hpp"
#include "service/socket_transport.hpp"

namespace {

using namespace taf;
using service::GuardbandServer;
using service::ServerConfig;
namespace protocol = service::protocol;

struct TempDir {
  TempDir() {
    std::string tmpl = "/tmp/taf-service-XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

/// Small designs only: the suite runs under TSan in CI.
ServerConfig small_config(int threads) {
  ServerConfig config;
  config.threads = threads;
  config.scale = 1.0 / 16.0;
  config.max_batch = 4;
  return config;
}

/// Interleaved fleet of queries over two designs, three ambients, two
/// activities — with duplicates, so caching and coalescing both engage.
std::vector<protocol::GuardbandRequest> request_stream(std::size_t count) {
  const char* designs[] = {"mkPktMerge", "diffeq2"};
  const double ambients[] = {30.0, 45.0, 60.0};
  const double activities[] = {0.5, 1.0};
  std::vector<protocol::GuardbandRequest> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    protocol::GuardbandRequest req;
    req.request_id = i + 1;
    req.design = designs[i % 2];
    req.grade_t_opt_c = 25.0;
    req.ambient_c = ambients[(i / 2) % 3];
    req.activity_scale = activities[(i / 6) % 2];
    stream.push_back(std::move(req));
  }
  return stream;
}

std::vector<std::string> serial_replay(const std::vector<protocol::GuardbandRequest>& stream) {
  GuardbandServer server(small_config(1));
  std::vector<std::string> bytes;
  bytes.reserve(stream.size());
  for (const auto& req : stream) {
    bytes.push_back(protocol::encode_response(server.handle(req)));
  }
  return bytes;
}

TEST(ServiceDeterminism, ConcurrentClientsMatchSerialReplayByteForByte) {
  const auto stream = request_stream(36);
  const std::vector<std::string> expected = serial_replay(stream);

  for (const int pool_threads : {1, 4}) {
    SCOPED_TRACE("pool " + std::to_string(pool_threads));
    GuardbandServer server(small_config(pool_threads));
    constexpr int kClients = 4;
    std::vector<std::string> got(stream.size());
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        // Client c takes every kClients-th request: interleaved streams.
        for (std::size_t i = static_cast<std::size_t>(c); i < stream.size();
             i += kClients) {
          got[i] = protocol::encode_response(server.handle(stream[i]));
        }
      });
    }
    for (auto& t : clients) t.join();
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "request " << i;
    }
    const GuardbandServer::Stats s = server.stats();
    EXPECT_EQ(s.requests, stream.size());
    EXPECT_EQ(s.tuples_evaluated + s.tuple_hits, stream.size());
    EXPECT_EQ(s.tuples_evaluated, 12u);  // 2 designs x 3 ambients x 2 activities
    EXPECT_EQ(s.errors, 0u);
  }
}

TEST(ServiceDeterminism, HandleBatchMatchesPerRequestHandle) {
  const auto stream = request_stream(24);
  GuardbandServer batch_server(small_config(2));
  const std::vector<protocol::GuardbandResponse> batched =
      batch_server.handle_batch(stream);
  ASSERT_EQ(batched.size(), stream.size());

  GuardbandServer serial_server(small_config(1));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(protocol::encode_response(batched[i]),
              protocol::encode_response(serial_server.handle(stream[i])))
        << "request " << i;
  }
  // One batch: every distinct tuple evaluated once, the rest coalesced.
  const GuardbandServer::Stats s = batch_server.stats();
  EXPECT_EQ(s.requests, stream.size());
  EXPECT_EQ(s.tuples_evaluated, 12u);
  EXPECT_EQ(s.tuple_hits, stream.size() - 12u);
  EXPECT_EQ(s.groups_evaluated, 2u);  // one per (design, grade)
  EXPECT_EQ(s.batched_corners, 12u);
  EXPECT_EQ(s.admission_batches, 0u);  // handle_batch bypasses admission
}

TEST(ServiceDifferential, ServedTuplesMatchColdBatchOracle) {
  // Every served tuple, re-run through the cold implement()/guardband()
  // path with the full-recompute oracle, must agree to the PR 3
  // incremental-vs-full contract bounds.
  GuardbandServer server(small_config(2));
  const auto stream = request_stream(12);
  const std::vector<protocol::GuardbandResponse> responses = server.handle_batch(stream);

  const arch::ArchParams arch = server.config().arch;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    const protocol::GuardbandResponse& resp = responses[i];
    netlist::BenchmarkSpec spec;
    for (const auto& s : netlist::vtr_suite()) {
      if (s.name == resp.design) spec = s;
    }
    const auto impl = core::implement(netlist::scaled(spec, server.config().scale), arch);
    const coffe::DeviceModel dev =
        coffe::Characterizer(server.config().tech, arch)
            .characterize(units::Celsius(static_cast<double>(resp.grade_mdeg) / 1000.0));
    core::GuardbandOptions opt = server.config().guardband;
    opt.t_amb_c = units::Celsius(static_cast<double>(resp.ambient_mdeg) / 1000.0);
    opt.power_scale = static_cast<double>(resp.activity_permille) / 1000.0;
    opt.incremental = core::IncrementalMode::Off;  // the full-recompute oracle
    const core::GuardbandResult cold = core::guardband(*impl, dev, opt);

    EXPECT_EQ(resp.iterations, cold.iterations);
    EXPECT_EQ(resp.converged != 0, cold.converged);
    EXPECT_DOUBLE_EQ(resp.baseline_fmax_mhz, cold.baseline_fmax_mhz.value());
    EXPECT_NEAR(resp.fmax_mhz, cold.fmax_mhz.value(), 1e-9);
    EXPECT_NEAR(resp.peak_temp_c, cold.peak_temp_c.value(), 1e-9);
    EXPECT_NEAR(resp.mean_temp_c, cold.mean_temp_c.value(), 1e-9);
  }
}

TEST(ServiceArtifacts, StoreBackedRestartServesIdenticalBytesFromDisk) {
  const TempDir dir;
  const auto stream = request_stream(8);
  std::vector<std::string> first_bytes;
  {
    ServerConfig config = small_config(2);
    config.artifact_dir = dir.path;
    GuardbandServer server(config);
    for (const auto& resp : server.handle_batch(stream)) {
      first_bytes.push_back(protocol::encode_response(resp));
    }
    EXPECT_GT(server.flow_cache().stats().disk_writes, 0u);
  }
  // Cold process, warm disk: byte-identical responses, served with disk
  // hits instead of recomputation of the stored stages.
  {
    ServerConfig config = small_config(2);
    config.artifact_dir = dir.path;
    GuardbandServer server(config);
    const auto responses = server.handle_batch(stream);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(protocol::encode_response(responses[i]), first_bytes[i])
          << "request " << i;
    }
    EXPECT_GT(server.flow_cache().stats().disk_hits, 0u);
  }
}

TEST(ServiceTransport, UnixSocketRoundtripMatchesInProcessBytes) {
  const std::string sock = "/tmp/taf-service-test-" + std::to_string(::getpid()) + ".sock";
  GuardbandServer server(small_config(2));
  service::SocketListener listener(server, {.unix_path = sock, .tcp_port = -1});
  listener.start();

  const auto stream = request_stream(6);
  std::vector<std::string> wire_bytes;
  {
    service::FrameClient client = service::FrameClient::connect_unix(sock);
    for (const auto& req : stream) {
      wire_bytes.push_back(client.roundtrip(protocol::encode_request(req)));
    }
  }
  listener.stop();
  EXPECT_EQ(listener.connections_accepted(), 1u);

  const std::vector<std::string> expected = serial_replay(stream);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(wire_bytes[i], expected[i]) << "request " << i;
  }
}

TEST(ServiceTransport, TcpLoopbackServesAndReportsEphemeralPort) {
  GuardbandServer server(small_config(1));
  service::SocketListener listener(server, {.unix_path = "", .tcp_port = 0});
  ASSERT_GT(listener.bound_port(), 0);
  listener.start();
  service::FrameClient client = service::FrameClient::connect_tcp(listener.bound_port());
  const auto stream = request_stream(2);
  const std::string reply = client.roundtrip(protocol::encode_request(stream[0]));
  const protocol::GuardbandResponse resp = protocol::decode_response(reply);
  EXPECT_EQ(resp.request_id, stream[0].request_id);
  EXPECT_GT(resp.fmax_mhz, 0.0);
  listener.stop();
}

TEST(ServiceValidation, RejectsBadRequestsWithTypedErrors) {
  GuardbandServer server(small_config(1));
  protocol::GuardbandRequest req;
  req.request_id = 7;
  req.design = "no-such-design";
  EXPECT_TRUE(server.validate(req).has_value());
  EXPECT_EQ(server.validate(req)->code, protocol::ErrorResponse::kUnknownDesign);
  EXPECT_THROW((void)server.handle(req), std::invalid_argument);

  req.design = "mkPktMerge";
  req.ambient_c = 1e30;
  ASSERT_TRUE(server.validate(req).has_value());
  EXPECT_EQ(server.validate(req)->code, protocol::ErrorResponse::kBadParameter);

  req.ambient_c = 45.0;
  req.activity_scale = -1.0;
  ASSERT_TRUE(server.validate(req).has_value());
  EXPECT_EQ(server.validate(req)->code, protocol::ErrorResponse::kBadParameter);

  // The wire path turns the same failures into typed error envelopes.
  req.activity_scale = 1.0;
  req.design = "no-such-design";
  const std::string reply = server.serve_payload(protocol::encode_request(req));
  ASSERT_TRUE(protocol::is_error_envelope(reply));
  const protocol::ErrorResponse err = protocol::decode_error(reply);
  EXPECT_EQ(err.request_id, 7u);
  EXPECT_EQ(err.code, protocol::ErrorResponse::kUnknownDesign);
}

TEST(ServiceQuantization, NearbyDoublesCollapseOntoOneTuple) {
  GuardbandServer server(small_config(1));
  protocol::GuardbandRequest a;
  a.request_id = 1;
  a.design = "mkPktMerge";
  a.ambient_c = 45.0;
  protocol::GuardbandRequest b = a;
  b.request_id = 2;
  b.ambient_c = 45.0 + 4e-4;  // same millidegree
  const protocol::GuardbandResponse ra = server.handle(a);
  const protocol::GuardbandResponse rb = server.handle(b);
  EXPECT_EQ(ra.ambient_mdeg, rb.ambient_mdeg);
  EXPECT_EQ(ra.fmax_mhz, rb.fmax_mhz);
  const GuardbandServer::Stats s = server.stats();
  EXPECT_EQ(s.tuples_evaluated, 1u);
  EXPECT_EQ(s.tuple_hits, 1u);
}

}  // namespace

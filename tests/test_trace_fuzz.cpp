// ActivityTrace parser/codec fuzz suite (ISSUE 8), mirroring the
// service protocol fuzz corpus: truncation at every byte, hostile field
// values (non-monotone timestamps, NaN/negative utilizations, oversized
// counts rejected before allocation), and a seeded mutation corpus —
// every malformed input must throw a typed exception
// (std::invalid_argument from the text parser / semantic validation,
// util::codec::Error from the binary layer), never crash, hang, or
// return a half-parsed trace. The CI sanitize job runs this binary
// under ASan/UBSan.
//
// This file hand-crafts malformed trace text and envelope bytes, so it
// is the one sanctioned suppression of the trace-codec-seam lint rule
// (tools/taf-lint.suppressions).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/dynamic.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace {

using namespace taf;
using core::ActivityTrace;
using core::TraceSegment;
namespace codec = util::codec;

ActivityTrace valid_trace() {
  ActivityTrace t;
  t.blocks = 3;
  t.segments.push_back({units::Seconds{0.25e-3}, {1.0, 0.25, 0.0}});
  t.segments.push_back({units::Seconds{1.0e-3}, {0.1, 1.0, 0.5}});
  t.segments.push_back({units::Seconds{4.0e-3}, {0.0, 0.0, 2.5}});
  return t;
}

TEST(TraceFuzz, TextRoundTripIsExactAndCanonical) {
  const ActivityTrace t = valid_trace();
  const std::string text = t.to_text();
  const ActivityTrace back = ActivityTrace::parse_text(text);
  EXPECT_EQ(back, t);  // %.17g round-trips every double bit-exactly
  EXPECT_EQ(ActivityTrace::parse_text(back.to_text()), t);
  EXPECT_EQ(back.to_text(), text);  // canonical: re-rendering is identical

  // Comments and blank lines are skipped.
  const std::string commented = "# schedule\n\n" + text + "# trailing comment\n";
  EXPECT_EQ(ActivityTrace::parse_text(commented), t);
}

TEST(TraceFuzz, EnvelopeRoundTripIsExactAndByteIdentical) {
  const ActivityTrace t = valid_trace();
  const std::string envelope = t.to_envelope();
  const ActivityTrace back = ActivityTrace::from_envelope(envelope);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.to_envelope(), envelope);
}

TEST(TraceFuzz, TextTruncatedAtEveryByteNeverCrashes) {
  const std::string text = valid_trace().to_text();
  int parsed_ok = 0;
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    const std::string_view prefix = std::string_view(text).substr(0, cut);
    try {
      const ActivityTrace t = ActivityTrace::parse_text(prefix);
      t.validate();  // anything that parses must already be valid
      ++parsed_ok;
    } catch (const std::invalid_argument&) {
      // the typed rejection — fine
    }
  }
  // The full text and any prefix ending exactly on a segment boundary
  // parse; everything else must have thrown.
  EXPECT_GE(parsed_ok, 1);
  EXPECT_LT(parsed_ok, static_cast<int>(text.size()));
}

TEST(TraceFuzz, EnvelopeTruncatedAtEveryByteThrows) {
  const std::string envelope = valid_trace().to_envelope();
  for (std::size_t cut = 0; cut < envelope.size(); ++cut) {
    EXPECT_THROW(ActivityTrace::from_envelope(
                     std::string_view(envelope).substr(0, cut)),
                 codec::Error)
        << "prefix of " << cut << " bytes";
  }
  EXPECT_EQ(ActivityTrace::from_envelope(envelope), valid_trace());
}

TEST(TraceFuzz, HostileTextIsRejectedWithTypedErrors) {
  const auto rejects = [](const std::string& text, const char* label) {
    SCOPED_TRACE(label);
    EXPECT_THROW(ActivityTrace::parse_text(text), std::invalid_argument);
  };
  rejects("", "empty");
  rejects("taf-trace v2\nblocks 1\n1 1\n", "wrong version");
  rejects("not-a-trace\nblocks 1\n1 1\n", "bad magic");
  rejects("taf-trace v1\nblocks 0\n1 1\n", "zero blocks");
  rejects("taf-trace v1\nblocks 257\n1 1\n", "blocks over the cap");
  rejects("taf-trace v1\nblocks -4\n1 1\n", "negative blocks");
  rejects("taf-trace v1\nblocks 1\n", "no segments");
  rejects("taf-trace v1\nblocks 1\n1 1\n0.5 1\n", "non-monotone t_end");
  rejects("taf-trace v1\nblocks 1\n1 1\n1 1\n", "repeated t_end");
  rejects("taf-trace v1\nblocks 1\n0 1\n", "t_end not positive");
  rejects("taf-trace v1\nblocks 1\n-1 1\n", "negative t_end");
  rejects("taf-trace v1\nblocks 1\nnan 1\n", "NaN t_end");
  rejects("taf-trace v1\nblocks 1\ninf 1\n", "infinite t_end");
  rejects("taf-trace v1\nblocks 1\n1 nan\n", "NaN utilization");
  rejects("taf-trace v1\nblocks 1\n1 -0.5\n", "negative utilization");
  rejects("taf-trace v1\nblocks 1\n1 101\n", "utilization over the cap");
  rejects("taf-trace v1\nblocks 2\n1 1\n", "too few utilizations");
  rejects("taf-trace v1\nblocks 1\n1 1 1\n", "too many utilizations");
  rejects("taf-trace v1\nblocks 1\n1 1 garbage\n", "trailing garbage");
  rejects("taf-trace v1\nblocks two\n1 1\n", "non-numeric block count");

  // Oversized segment count: rejected while reading, without building a
  // 4097-segment trace first.
  std::string big = "taf-trace v1\nblocks 1\n";
  for (int i = 0; i < core::kMaxTraceSegments + 1; ++i) {
    big += std::to_string(i + 1) + " 1\n";
  }
  rejects(big, "segment count over the cap");
}

TEST(TraceFuzz, OversizedBinaryCountsFailBeforeAllocation) {
  // Hand-build payloads whose counts promise far more data than the
  // payload holds: deserialize must throw codec::Error from the bounds
  // check, never attempt the allocation.
  {
    codec::Encoder e;
    e.i32(1);                  // blocks
    e.u64(0xffffffffffffull);  // absurd segment count
    const std::string bytes = e.take();  // Decoder holds a view, not a copy
    codec::Decoder d(bytes);
    EXPECT_THROW(ActivityTrace::deserialize(d), codec::Error);
  }
  {
    codec::Encoder e;
    e.i32(core::kMaxTraceBlocks + 1);  // blocks over the cap
    e.u64(1);
    e.f64(1.0);
    const std::string bytes = e.take();
    codec::Decoder d(bytes);
    EXPECT_THROW(ActivityTrace::deserialize(d), codec::Error);
  }
  {
    codec::Encoder e;
    e.i32(-1);  // negative blocks
    e.u64(1);
    const std::string bytes = e.take();
    codec::Decoder d(bytes);
    EXPECT_THROW(ActivityTrace::deserialize(d), codec::Error);
  }
}

TEST(TraceFuzz, DeserializeIsStructuralOnlyAndFromEnvelopeValidates) {
  // A well-formed payload with out-of-domain *values* passes the binary
  // layer (structural) but is caught by validate()/from_envelope — the
  // error-classification split the service protocol depends on.
  ActivityTrace bad = valid_trace();
  bad.segments[1].t_end = units::Seconds{0.1e-3};  // non-monotone
  codec::Encoder e;
  bad.serialize(e);
  const std::string bytes = e.take();
  codec::Decoder d(bytes);
  const ActivityTrace decoded = ActivityTrace::deserialize(d);
  EXPECT_EQ(decoded, bad);  // structural decode succeeded
  EXPECT_THROW(decoded.validate(), std::invalid_argument);
  EXPECT_THROW(ActivityTrace::from_envelope(bad.to_envelope()),
               std::invalid_argument);
}

TEST(TraceFuzz, MutationCorpusNeverCrashes) {
  // 2000 seeded mutations over the valid envelope: every outcome must be
  // a valid trace or a typed exception. The envelope checksum catches
  // most mutations; the rest exercise the payload bounds checks.
  const std::string seed_envelope = valid_trace().to_envelope();
  util::Rng rng(20260808);
  int survived = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = seed_envelope;
    const int edits = 1 + static_cast<int>(rng.next_below(8));
    for (int e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.next_below(static_cast<std::uint32_t>(mutated.size()));
      switch (rng.next_below(3)) {
        case 0:  // bit flip
          mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.next_below(8)));
          break;
        case 1:  // byte overwrite
          mutated[pos] = static_cast<char>(rng.next_below(256));
          break;
        default:  // truncate at pos
          mutated.resize(pos);
          break;
      }
    }
    try {
      const ActivityTrace t = ActivityTrace::from_envelope(mutated);
      t.validate();  // from_envelope validates; must not throw again
      ++survived;
    } catch (const codec::Error&) {
    } catch (const std::invalid_argument&) {
    }
  }
  // The unmutated seed never appears (>= 1 edit), and surviving a
  // checksum with random edits is vanishingly rare.
  EXPECT_LE(survived, 2);
}

TEST(TraceFuzz, MutatedTextCorpusNeverCrashes) {
  const std::string seed_text = valid_trace().to_text();
  util::Rng rng(424242);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = seed_text;
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.next_below(static_cast<std::uint32_t>(mutated.size()));
      switch (rng.next_below(4)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.next_below(128));
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>('0' + rng.next_below(10)));
          break;
        case 2:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.resize(pos);
          break;
      }
    }
    try {
      const ActivityTrace t = ActivityTrace::parse_text(mutated);
      t.validate();
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(TraceFuzz, DutyCycleBuilderProducesValidTraces) {
  for (const double duty : {0.1, 0.5, 1.0}) {
    const ActivityTrace t =
        ActivityTrace::duty_cycle(4, units::Seconds{1e-3}, duty, 1.0, 0.05);
    t.validate();
    EXPECT_EQ(t.blocks, 1);
    EXPECT_DOUBLE_EQ(t.duration().value(), 4e-3);
    // Round-trips like any other trace.
    EXPECT_EQ(ActivityTrace::parse_text(t.to_text()), t);
    EXPECT_EQ(ActivityTrace::from_envelope(t.to_envelope()), t);
  }
  EXPECT_THROW(ActivityTrace::duty_cycle(0, units::Seconds{1e-3}, 0.5, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ActivityTrace::duty_cycle(4, units::Seconds{1e-3}, 0.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ActivityTrace::duty_cycle(4, units::Seconds{1e-3}, 1.5, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ActivityTrace::duty_cycle(4, units::Seconds{-1.0}, 0.5, 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace

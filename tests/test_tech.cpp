// Unit tests for the technology model: temperature dependences of the
// transistor parameters must have the signs and magnitudes the paper's
// characterization relies on.

#include <gtest/gtest.h>

#include "tech/technology.hpp"

namespace {

using namespace taf::tech;

class FlavorTest : public ::testing::TestWithParam<Flavor> {};

TEST_P(FlavorTest, VthDecreasesWithTemperature) {
  const Technology t = ptm22();
  const auto& p = t.flavor(GetParam());
  EXPECT_GT(vth_at(p, 0.0), vth_at(p, 100.0));
}

TEST_P(FlavorTest, MobilityDegradesWithTemperature) {
  const Technology t = ptm22();
  const auto& p = t.flavor(GetParam());
  EXPECT_GT(mobility_factor(p, 0.0), 1.0);
  EXPECT_LT(mobility_factor(p, 100.0), 1.0);
  EXPECT_NEAR(mobility_factor(p, 25.0), 1.0, 1e-12);
}

TEST_P(FlavorTest, OnCurrentDecreasesWithTemperature) {
  // Above ~0.6V supply our flavors are all mobility-dominated, so Ion must
  // fall monotonically with T — this is the physical origin of Fig. 1.
  const Technology t = ptm22();
  const auto& p = t.flavor(GetParam());
  double prev = on_current_ma(p, 1.0, t.vdd, -10.0);
  for (double temp = 0.0; temp <= 100.0; temp += 10.0) {
    const double ion = on_current_ma(p, 1.0, t.vdd, temp);
    EXPECT_LT(ion, prev) << "at T=" << temp;
    prev = ion;
  }
}

TEST_P(FlavorTest, OffCurrentGrowsExponentially) {
  const Technology t = ptm22();
  const auto& p = t.flavor(GetParam());
  const double i0 = off_current_na(p, 1.0, 0.0);
  const double i50 = off_current_na(p, 1.0, 50.0);
  const double i100 = off_current_na(p, 1.0, 100.0);
  EXPECT_GT(i50, i0);
  EXPECT_GT(i100, i50);
  // Exponential: equal ratios over equal intervals.
  EXPECT_NEAR(i50 / i0, i100 / i50, 1e-9);
}

TEST_P(FlavorTest, OnCurrentScalesLinearlyWithWidth) {
  const Technology t = ptm22();
  const auto& p = t.flavor(GetParam());
  const double i1 = on_current_ma(p, 1.0, t.vdd, 25.0);
  const double i3 = on_current_ma(p, 3.0, t.vdd, 25.0);
  EXPECT_NEAR(i3, 3.0 * i1, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, FlavorTest,
                         ::testing::Values(Flavor::HP, Flavor::PassGate, Flavor::LP,
                                           Flavor::StdCell));

TEST(Technology, EffectiveResistanceIncreasesWithTemperature) {
  const Technology t = ptm22();
  const auto& p = t.flavor(Flavor::HP);
  EXPECT_LT(effective_resistance_kohm(p, 1.0, t.vdd, 0.0),
            effective_resistance_kohm(p, 1.0, t.vdd, 100.0));
}

TEST(Technology, HpDelaySensitivityModerate) {
  // Buffer R degradation is the floor of resource temperature
  // sensitivity; with keeper effects on top, buffer-dominated resources
  // land near Table II's ~+40-50% (SB mux: 166 + 0.67 T). The bare R_eff
  // ratio must therefore sit in the +20..45% band.
  const Technology t = ptm22();
  const auto& p = t.flavor(Flavor::HP);
  const double ratio = effective_resistance_kohm(p, 1.0, t.vdd, 100.0) /
                       effective_resistance_kohm(p, 1.0, t.vdd, 0.0);
  EXPECT_GT(ratio, 1.20);
  EXPECT_LT(ratio, 1.45);
}

TEST(Technology, PassGateMoreSensitiveThanHp) {
  const Technology t = ptm22();
  const auto& hp = t.flavor(Flavor::HP);
  const auto& pg = t.flavor(Flavor::PassGate);
  const double r_hp = effective_resistance_kohm(hp, 1.0, t.vdd, 100.0) /
                      effective_resistance_kohm(hp, 1.0, t.vdd, 0.0);
  const double r_pg = effective_resistance_kohm(pg, 1.0, t.vdd, 100.0) /
                      effective_resistance_kohm(pg, 1.0, t.vdd, 0.0);
  EXPECT_GT(r_pg, r_hp + 0.15);  // LUT tree slows much more than SB driver
}

TEST(Technology, WireResistanceTemperatureCoefficient) {
  const Technology t = ptm22();
  const double r25 = wire_resistance_ohm(t, 100.0, 25.0);
  const double r100 = wire_resistance_ohm(t, 100.0, 100.0);
  EXPECT_NEAR(r100 / r25, 1.0 + t.wire_r_tc * 75.0, 1e-12);
  EXPECT_GT(wire_capacitance_ff(t, 100.0), 0.0);
}

TEST(Technology, LpFlavorLeaksLessThanHp) {
  const Technology t = ptm22();
  EXPECT_LT(off_current_na(t.flavor(Flavor::LP), 1.0, 25.0),
            off_current_na(t.flavor(Flavor::HP), 1.0, 25.0));
}

}  // namespace

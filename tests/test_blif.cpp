// Tests for BLIF serialization: round trips, don't-care expansion, and
// error handling.

#include <gtest/gtest.h>

#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"

namespace {

using namespace taf;
using namespace taf::netlist;

TEST(Blif, RoundTripPreservesStructure) {
  util::Rng rng(21);
  const Netlist original = generate(scaled(vtr_suite()[4], 0.25), rng);  // diffeq1
  const Netlist back = from_blif_string(to_blif_string(original));
  EXPECT_EQ(back.validate(), "");
  EXPECT_EQ(back.count(PrimKind::Input), original.count(PrimKind::Input));
  EXPECT_EQ(back.count(PrimKind::Output), original.count(PrimKind::Output));
  // Writer adds one buffer LUT per primary output to bind the name.
  EXPECT_EQ(back.count(PrimKind::Lut),
            original.count(PrimKind::Lut) + original.count(PrimKind::Output));
  EXPECT_EQ(back.count(PrimKind::Ff), original.count(PrimKind::Ff));
  EXPECT_EQ(back.count(PrimKind::Bram), original.count(PrimKind::Bram));
  EXPECT_EQ(back.count(PrimKind::Dsp), original.count(PrimKind::Dsp));
}

TEST(Blif, TruthTablesSurviveRoundTrip) {
  util::Rng rng(9);
  const Netlist original = generate(scaled(vtr_suite()[14], 0.1), rng);  // sha
  const Netlist back = from_blif_string(to_blif_string(original));
  // Match by primitive name (names are unique in the generator).
  for (const Primitive& p : original.prims()) {
    if (p.kind != PrimKind::Lut) continue;
    bool found = false;
    for (const Primitive& q : back.prims()) {
      if (q.kind == PrimKind::Lut && q.name == p.name) {
        EXPECT_EQ(q.truth, p.truth) << p.name;
        EXPECT_EQ(q.inputs.size(), p.inputs.size()) << p.name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << p.name;
  }
}

TEST(Blif, ParsesHandWrittenWithDontCares) {
  const std::string text = R"(
.model mini
.inputs a b c
.outputs y
# 2-input OR via don't cares
.names a b t
1- 1
-1 1
.names t c y
11 1
.end
)";
  const Netlist nl = from_blif_string(text);
  EXPECT_EQ(nl.validate(), "");
  EXPECT_EQ(nl.count(PrimKind::Lut), 2);
  // OR truth over 2 inputs: minterms 01,10,11 -> 0b1110.
  for (const Primitive& p : nl.prims()) {
    if (p.kind == PrimKind::Lut && p.name == "t") {
      EXPECT_EQ(p.truth, 0b1110ULL);
    }
  }
}

TEST(Blif, ParsesLatchAndSubckt) {
  const std::string text = R"(
.model seq
.inputs d a0 a1
.outputs q
.latch d r re clk 0
.subckt bram in0=r in1=a0 in2=a1 out=m
.names m q
1 1
.end
)";
  const Netlist nl = from_blif_string(text);
  EXPECT_EQ(nl.validate(), "");
  EXPECT_EQ(nl.count(PrimKind::Ff), 1);
  EXPECT_EQ(nl.count(PrimKind::Bram), 1);
}

TEST(Blif, RejectsUndrivenNet) {
  const std::string text = ".model bad\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n";
  EXPECT_THROW(from_blif_string(text), std::runtime_error);
}

TEST(Blif, RejectsDoubleDriver) {
  const std::string text =
      ".model bad\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n";
  EXPECT_THROW(from_blif_string(text), std::runtime_error);
}

TEST(Blif, RejectsWideLut) {
  const std::string text =
      ".model bad\n.inputs a b c d e f g\n.outputs y\n.names a b c d e f g y\n1111111 1\n.end\n";
  EXPECT_THROW(from_blif_string(text), std::runtime_error);
}

TEST(Blif, RoundTrippedNetlistStillImplements) {
  // The re-read netlist must survive the whole CAD flow.
  util::Rng rng(2);
  const Netlist original = generate(scaled(vtr_suite()[18], 1.0), rng);  // stereovision3
  const Netlist back = from_blif_string(to_blif_string(original));
  EXPECT_EQ(back.validate(), "");
  EXPECT_EQ(back.topo_order().size(), back.prims().size());
}

}  // namespace

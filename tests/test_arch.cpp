// Tests for the FPGA grid: perimeter IO, hard-block column pattern,
// capacity-driven sizing, and index round-trips.

#include <gtest/gtest.h>

#include "arch/fpga_grid.hpp"

namespace {

using namespace taf::arch;

TEST(FpgaGrid, PerimeterIsIo) {
  FpgaGrid g(10, 8);
  for (int x = 0; x < g.width(); ++x) {
    EXPECT_EQ(g.at(x, 0), TileKind::Io);
    EXPECT_EQ(g.at(x, g.height() - 1), TileKind::Io);
  }
  for (int y = 0; y < g.height(); ++y) {
    EXPECT_EQ(g.at(0, y), TileKind::Io);
    EXPECT_EQ(g.at(g.width() - 1, y), TileKind::Io);
  }
}

TEST(FpgaGrid, HardColumnPattern) {
  FpgaGrid g(20, 12);
  for (int y = 1; y < g.height() - 1; ++y) {
    EXPECT_EQ(g.at(4, y), TileKind::Bram);  // x % 8 == 4
    EXPECT_EQ(g.at(12, y), TileKind::Bram);
    EXPECT_EQ(g.at(8, y), TileKind::Dsp);   // x % 8 == 0 (interior)
    EXPECT_EQ(g.at(16, y), TileKind::Dsp);
    EXPECT_EQ(g.at(2, y), TileKind::Clb);
  }
}

TEST(FpgaGrid, IndexRoundTrip) {
  FpgaGrid g(13, 9);
  for (int i = 0; i < g.num_tiles(); ++i) {
    const TilePos p = g.pos_of(i);
    EXPECT_EQ(g.index_of(p), i);
  }
}

TEST(FpgaGrid, CapacityCountsAreConsistent) {
  FpgaGrid g(16, 10);
  int total = 0;
  for (TileKind k : {TileKind::Clb, TileKind::Bram, TileKind::Dsp, TileKind::Io}) {
    total += g.capacity(k);
  }
  EXPECT_EQ(total, g.num_tiles());
}

TEST(FpgaGrid, FitCoversDemand) {
  const FpgaGrid g = FpgaGrid::fit(200, 6, 4);
  EXPECT_GE(g.capacity(TileKind::Clb), 240);  // 20% slack
  EXPECT_GE(g.capacity(TileKind::Bram), 6);
  EXPECT_GE(g.capacity(TileKind::Dsp), 4);
}

TEST(FpgaGrid, FitIsMinimal) {
  // Shrinking the fitted grid by one must violate some capacity (the fit
  // targets 45% placement slack for routability).
  const FpgaGrid g = FpgaGrid::fit(200, 6, 4);
  const FpgaGrid smaller(g.width() - 1, g.height() - 1);
  const bool still_fits = smaller.capacity(TileKind::Clb) >= 290 &&
                          smaller.capacity(TileKind::Bram) >= 6 &&
                          smaller.capacity(TileKind::Dsp) >= 4;
  EXPECT_FALSE(still_fits);
}

TEST(FpgaGrid, TileKindNames) {
  EXPECT_STREQ(tile_kind_name(TileKind::Clb), "CLB");
  EXPECT_STREQ(tile_kind_name(TileKind::Bram), "BRAM");
  EXPECT_STREQ(tile_kind_name(TileKind::Dsp), "DSP");
  EXPECT_STREQ(tile_kind_name(TileKind::Io), "IO");
}

TEST(ArchParams, PaperTableOneDefaults) {
  const ArchParams a = paper_arch();
  EXPECT_EQ(a.lut_k, 6);
  EXPECT_EQ(a.cluster_n, 10);
  EXPECT_EQ(a.channel_tracks, 320);
  EXPECT_EQ(a.wire_segment_length, 4);
  EXPECT_EQ(a.sb_mux_size, 12);
  EXPECT_EQ(a.cb_mux_size, 64);
  EXPECT_EQ(a.local_mux_size, 25);
  EXPECT_DOUBLE_EQ(a.vdd, 0.8);
  EXPECT_DOUBLE_EQ(a.vdd_low_power, 0.95);
  EXPECT_EQ(a.bram_words * a.bram_width, 1024 * 32);
}

}  // namespace

// Tests for the experiment runner: the work-stealing thread pool, the
// build-once FlowCache (quantized corner keys, single-build semantics
// under contention), sweep determinism (parallel == serial, bit for
// bit), and the metrics serialization.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/flow_cache.hpp"
#include "runner/metrics.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"

namespace {

using namespace taf;

const arch::ArchParams& test_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

netlist::BenchmarkSpec spec_of(const char* name) {
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return {};
}

// ---------- thread pool ----------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  runner::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleExecutorRunsInline) {
  runner::ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, CallerParticipates) {
  // Even with workers available, n == 1 runs on the caller (no handoff).
  runner::ThreadPool pool(4);
  std::thread::id ran_on;
  pool.parallel_for(1, [&](std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPool, RethrowsTaskException) {
  runner::ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  runner::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

// ---------- flow cache ----------

TEST(FlowCache, QuantizesDeviceCorners) {
  EXPECT_EQ(runner::FlowCache::quantize_t_opt(25.0),
            runner::FlowCache::quantize_t_opt(25.0000004));
  EXPECT_NE(runner::FlowCache::quantize_t_opt(25.0),
            runner::FlowCache::quantize_t_opt(25.001));

  runner::FlowCache cache;
  const auto& tech = tech::ptm22();
  const auto& a = cache.device(tech, test_arch(), 25.0);
  const auto& b = cache.device(tech, test_arch(), 25.0000004);  // same entry
  EXPECT_EQ(&a, &b);
  const auto s = cache.stats();
  EXPECT_EQ(s.device_misses, 1u);
  EXPECT_EQ(s.device_hits, 1u);
}

TEST(FlowCache, ConcurrentRequestsBuildOnce) {
  runner::FlowCache cache;
  runner::ThreadPool pool(8);
  const auto spec = spec_of("mkSMAdapter4B");
  std::vector<const core::Implementation*> got(8, nullptr);
  pool.parallel_for(got.size(), [&](std::size_t i) {
    got[i] = &cache.implementation(spec, test_arch(), 1.0 / 16);
  });
  for (const auto* p : got) EXPECT_EQ(p, got[0]);
  const auto s = cache.stats();
  EXPECT_EQ(s.impl_misses, 1u);
  EXPECT_EQ(s.impl_hits, got.size() - 1);
}

TEST(FlowCache, DistinctKeysAreDistinctEntries) {
  runner::FlowCache cache;
  const auto spec = spec_of("sha");
  const auto& base = cache.implementation(spec, test_arch(), 1.0 / 16);

  arch::ArchParams narrow = test_arch();
  narrow.channel_tracks = test_arch().channel_tracks / 2;
  EXPECT_NE(&cache.implementation(spec, narrow, 1.0 / 16), &base);

  EXPECT_NE(&cache.implementation(spec, test_arch(), 1.0 / 8), &base);

  core::ImplementOptions seeded;
  seeded.seed = 7;
  EXPECT_NE(&cache.implementation(spec, test_arch(), 1.0 / 16, seeded), &base);

  // Same key again: still the original entry.
  EXPECT_EQ(&cache.implementation(spec, test_arch(), 1.0 / 16), &base);
  EXPECT_EQ(cache.stats().impl_misses, 4u);
}

TEST(FlowCache, ImplementationMatchesDirectFlow) {
  runner::FlowCache cache;
  const auto spec = spec_of("sha");
  const auto& cached = cache.implementation(spec, test_arch(), 1.0 / 16);
  const auto direct = core::implement(netlist::scaled(spec, 1.0 / 16), test_arch());
  EXPECT_EQ(cached.routes.success, direct->routes.success);
  EXPECT_EQ(cached.routes.iterations, direct->routes.iterations);
  EXPECT_EQ(cached.placement.pos, direct->placement.pos);
}

TEST(FlowCache, ClearResetsEntriesAndCounters) {
  runner::FlowCache cache;
  const auto spec = spec_of("sha");
  cache.implementation(spec, test_arch(), 1.0 / 16);
  cache.clear();
  const auto s = cache.stats();
  EXPECT_EQ(s.impl_hits, 0u);
  EXPECT_EQ(s.impl_misses, 0u);
  cache.implementation(spec, test_arch(), 1.0 / 16);
  EXPECT_EQ(cache.stats().impl_misses, 1u);
}

// ---------- sweep determinism ----------

std::vector<runner::SweepCellResult> run_grid(int threads) {
  runner::FlowCache cache;
  runner::ThreadPool pool(threads);
  runner::Sweep sweep(cache, pool, tech::ptm22());
  const std::vector<netlist::BenchmarkSpec> specs = {spec_of("sha"),
                                                     spec_of("or1200")};
  const auto points = runner::Sweep::grid(specs, 1.0 / 16, test_arch(),
                                          /*grades=*/{25.0, 70.0},
                                          /*ambients=*/{25.0, 70.0});
  return sweep.run(points);
}

TEST(Sweep, ParallelMatchesSerialBitForBit) {
  const auto serial = run_grid(1);
  const auto parallel = run_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 8u);  // 2 specs x 2 grades x 2 ambients
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i].guardband;
    const auto& p = parallel[i].guardband;
    // Exact double equality, not tolerance: same inputs, same seeds, same
    // reduction order must give the same bits whatever the scheduling.
    EXPECT_EQ(s.fmax_mhz.value(), p.fmax_mhz.value()) << "cell " << i;
    EXPECT_EQ(s.baseline_fmax_mhz.value(), p.baseline_fmax_mhz.value()) << "cell " << i;
    EXPECT_EQ(s.iterations, p.iterations) << "cell " << i;
    EXPECT_EQ(s.peak_temp_c.value(), p.peak_temp_c.value()) << "cell " << i;
    EXPECT_EQ(s.power.total_w().value(), p.power.total_w().value()) << "cell " << i;
    ASSERT_EQ(s.tile_temp_c.size(), p.tile_temp_c.size());
    EXPECT_EQ(0, std::memcmp(s.tile_temp_c.data(), p.tile_temp_c.data(),
                             s.tile_temp_c.size() * sizeof(double)))
        << "cell " << i;
    EXPECT_EQ(serial[i].metrics.name, parallel[i].metrics.name);
  }
  // Pinned regression: the auto-generated cell label must render the
  // ambient as a plain number. A units::Celsius passed straight through
  // the printf varargs boundary (caught by -Wformat during the units
  // migration) would corrupt this string on ABIs that pass single-member
  // structs on the stack.
  EXPECT_EQ(serial[0].metrics.name, "sha@D25/amb25");
  EXPECT_EQ(serial[1].metrics.name, "sha@D25/amb70");
}

TEST(Sweep, GridIsRowMajorSpecGradeAmbient) {
  const std::vector<netlist::BenchmarkSpec> specs = {spec_of("sha"),
                                                     spec_of("or1200")};
  const auto points = runner::Sweep::grid(specs, 1.0 / 16, test_arch(),
                                          {25.0, 70.0}, {25.0, 70.0});
  ASSERT_EQ(points.size(), 8u);
  EXPECT_EQ(points[0].spec.name, "sha");
  EXPECT_EQ(points[0].t_opt_c, 25.0);
  EXPECT_EQ(points[0].guardband.t_amb_c.value(), 25.0);
  EXPECT_EQ(points[1].guardband.t_amb_c.value(), 70.0);
  EXPECT_EQ(points[2].t_opt_c, 70.0);
  EXPECT_EQ(points[4].spec.name, "or1200");
}

// ---------- metrics ----------

TEST(Metrics, ObserverAccumulatesPhasesAndIterations) {
  runner::TaskMetrics m;
  const core::FlowObserver obs = runner::observe_into(m);
  obs.on_phase(core::FlowPhase::Route, units::Seconds(0.25));
  obs.on_phase(core::FlowPhase::Route, units::Seconds(0.25));
  obs.on_phase(core::FlowPhase::Sta, units::Seconds(0.5));
  core::FlowObserver::IterationInfo info;
  info.iteration = 1;
  info.fmax_mhz = units::Megahertz(100.0);
  info.max_delta_c = units::Kelvin(3.0);
  obs.on_iteration(info);
  info.iteration = 2;
  info.fmax_mhz = units::Megahertz(99.0);
  info.max_delta_c = units::Kelvin(0.2);
  obs.on_iteration(info);
  EXPECT_DOUBLE_EQ(m.phases.seconds[static_cast<std::size_t>(core::FlowPhase::Route)],
                   0.5);
  EXPECT_DOUBLE_EQ(m.phases.total(), 1.0);
  EXPECT_EQ(m.iterations, 2);
}

TEST(Metrics, ReportSerializesJsonAndCsv) {
  runner::RunReport report;
  report.threads = 4;
  report.wall_s = 1.5;
  report.cache.impl_hits = 3;
  report.cache.impl_misses = 2;
  report.scalars.emplace_back("throughput_qps", 1234.5);
  report.scalars.emplace_back("latency_p99_ms", 0.25);
  runner::TaskMetrics m;
  m.name = "sha@D25/amb70";
  m.kind = "guardband";
  m.wall_s = 0.25;
  m.iterations = 3;
  m.spice_factorizations = 120;
  m.spice_pattern_reuses = 118;
  m.spice_newton_iters = 120;
  m.sta_edges_reevaluated = 450;
  m.sta_delay_cache_hits = 9000;
  m.thermal_cg_iters = 37;
  m.thermal_precond_iters = 21;
  m.transient_steps = 64;
  m.transient_cg_iters = 512;
  m.thermal_adjoint_solves = 2;
  m.replace_moves = 4096;
  m.guardband_nonconverged = 1;
  m.phases.add(core::FlowPhase::Thermal, 0.125);
  report.tasks.push_back(m);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"impl_hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sha@D25/amb70\""), std::string::npos);
  EXPECT_NE(json.find("\"spice_factorizations\": 120"), std::string::npos);
  EXPECT_NE(json.find("\"spice_pattern_reuses\": 118"), std::string::npos);
  EXPECT_NE(json.find("\"spice_newton_iters\": 120"), std::string::npos);
  EXPECT_NE(json.find("\"sta_edges_reevaluated\": 450"), std::string::npos);
  EXPECT_NE(json.find("\"sta_delay_cache_hits\": 9000"), std::string::npos);
  EXPECT_NE(json.find("\"thermal_cg_iters\": 37"), std::string::npos);
  EXPECT_NE(json.find("\"thermal_precond_iters\": 21"), std::string::npos);
  EXPECT_NE(json.find("\"transient_steps\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"transient_cg_iters\": 512"), std::string::npos);
  EXPECT_NE(json.find("\"thermal_adjoint_solves\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"replace_moves\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"guardband_nonconverged\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"thermal\":0.125000"), std::string::npos);
  EXPECT_NE(json.find("\"scalars\": {\"throughput_qps\": 1234.500000, "
                      "\"latency_p99_ms\": 0.250000}"),
            std::string::npos);

  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("name,kind,wall_s,iterations,spice_factorizations,"
                     "spice_pattern_reuses,spice_newton_iters,"
                     "sta_edges_reevaluated,sta_delay_cache_hits,"
                     "thermal_cg_iters,thermal_precond_iters,"
                     "transient_steps,transient_cg_iters,"
                     "thermal_adjoint_solves,replace_moves,"
                     "guardband_nonconverged,"
                     "disk_hits,disk_misses,disk_writes,pack_s"),
            std::string::npos);
  EXPECT_NE(csv.find("sha@D25/amb70,guardband,0.250000,3,120,118,120,450,9000,37,21,"
                     "64,512,2,4096,1,0,0,0"),
            std::string::npos);
  EXPECT_NE(csv.find("scalar,throughput_qps,1234.500000"), std::string::npos);
  EXPECT_NE(csv.find("scalar,latency_p99_ms,0.250000"), std::string::npos);
}

TEST(Metrics, FlowCounterScopeCapturesGuardbandWork) {
  runner::FlowCache cache;
  const auto& impl = cache.implementation(spec_of("sha"), test_arch(), 1.0 / 16);
  const auto& dev = cache.device(tech::ptm22(), test_arch(), 25.0);
  runner::TaskMetrics m;
  core::GuardbandOptions opt;
  {
    const runner::FlowCounterScope scope(m);
    core::guardband(impl, dev, opt);
  }
  // The default (incremental) engine does thermal CG work every
  // iteration and re-evaluates at least the edges the first temperature
  // update dirtied; a converged run must not be flagged.
  EXPECT_GT(m.thermal_cg_iters, 0u);
  EXPECT_GT(m.sta_edges_reevaluated, 0u);
  EXPECT_EQ(m.guardband_nonconverged, 0u);
}

// ---------- cross-run / cross-thread-count determinism ----------

TEST(Determinism, ImplementIsReproducibleAcrossRuns) {
  const auto spec = netlist::scaled(spec_of("or1200"), 1.0 / 16);
  const auto a = core::implement(spec, test_arch());
  const auto b = core::implement(spec, test_arch());
  EXPECT_EQ(a->placement.pos, b->placement.pos);
  EXPECT_EQ(a->routes.iterations, b->routes.iterations);
  ASSERT_EQ(a->routes.routes.size(), b->routes.routes.size());
  for (std::size_t i = 0; i < a->routes.routes.size(); ++i) {
    EXPECT_EQ(a->routes.routes[i].nodes, b->routes.routes[i].nodes) << "net " << i;
  }
}

TEST(Determinism, FullFlowMatchesAcrossThreadCountsWithIncrementalEngine) {
  // The sweep bit-equality above runs whatever engine TAF_INCREMENTAL
  // selects; this pins the incremental engine explicitly so a CI
  // environment override can't silently skip the interesting path.
  auto run = [](int threads) {
    runner::FlowCache cache;
    runner::ThreadPool pool(threads);
    runner::Sweep sweep(cache, pool, tech::ptm22());
    core::GuardbandOptions base;
    base.incremental = core::IncrementalMode::Exact;
    const std::vector<netlist::BenchmarkSpec> specs = {spec_of("sha"),
                                                       spec_of("diffeq1")};
    return sweep.run(runner::Sweep::grid(specs, 1.0 / 16, test_arch(), {25.0},
                                         {25.0, 70.0}, base));
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i].guardband;
    const auto& p = parallel[i].guardband;
    EXPECT_EQ(s.fmax_mhz.value(), p.fmax_mhz.value()) << "cell " << i;
    EXPECT_EQ(s.iterations, p.iterations) << "cell " << i;
    EXPECT_EQ(s.converged, p.converged) << "cell " << i;
    EXPECT_EQ(s.stats.edges_reevaluated, p.stats.edges_reevaluated) << "cell " << i;
    EXPECT_EQ(s.stats.cg_iterations, p.stats.cg_iterations) << "cell " << i;
    EXPECT_EQ(0, std::memcmp(s.tile_temp_c.data(), p.tile_temp_c.data(),
                             s.tile_temp_c.size() * sizeof(double)))
        << "cell " << i;
  }
}

}  // namespace

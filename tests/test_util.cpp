// Unit tests for the util module: RNG determinism, statistics, fitting,
// integration, and the table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using taf::util::Accumulator;
using taf::util::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(7);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) seen[r.next_below(8)]++;
  for (int count : seen) EXPECT_GT(count, 300);  // roughly uniform
}

TEST(Rng, UniformWithinBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.03);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.03);
}

TEST(Accumulator, TracksMinMaxMean) {
  Accumulator acc;
  for (double x : {3.0, -1.0, 7.0, 5.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i <= 100; ++i) {
    x.push_back(i);
    y.push_back(166.0 + 0.67 * i);  // the paper's SB mux delay fit
  }
  const auto fit = taf::util::fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 166.0, 1e-9);
  EXPECT_NEAR(fit.slope, 0.67, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, HandlesDegenerateInputs) {
  std::vector<double> x{5.0}, y{2.0};
  const auto fit = taf::util::fit_linear(x, y);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(ExpFit, RecoversExactExponential) {
  std::vector<double> x, y;
  for (int i = 0; i <= 100; i += 5) {
    x.push_back(i);
    y.push_back(0.28 * std::exp(0.014 * i));  // the paper's SB mux leakage fit
  }
  const auto fit = taf::util::fit_exponential(x, y);
  EXPECT_NEAR(fit.scale, 0.28, 1e-9);
  EXPECT_NEAR(fit.rate, 0.014, 1e-12);
}

TEST(ExpFit, RejectsNonPositiveSamples) {
  // Must throw in release builds too: a silent log(<=0) would poison the
  // characterization fits with NaN (the release-mode trap this guards).
  const std::vector<double> x{0.0, 1.0, 2.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (double bad : {0.0, -0.5, nan}) {
    const std::vector<double> y{1.0, bad, 2.0};
    EXPECT_THROW(taf::util::fit_exponential(x, y), std::invalid_argument);
  }
}

TEST(ExpFit, RejectsSizeMismatch) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(taf::util::fit_exponential(x, y), std::invalid_argument);
}

TEST(Means, GeomeanRejectsNonPositiveSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (double bad : {0.0, -2.0, nan}) {
    const std::vector<double> v{1.0, bad};
    EXPECT_THROW(taf::util::geomean_of(v), std::invalid_argument);
  }
}

TEST(Integrate, TrapezoidMatchesAnalyticLinear) {
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 1.0);
  }
  // integral of 2x+1 over [0,10] = 110
  EXPECT_NEAR(taf::util::integrate_trapezoid(x, y), 110.0, 1e-9);
}

TEST(Means, ArithmeticAndGeometric) {
  std::vector<double> v{1.0, 2.0, 4.0};
  EXPECT_NEAR(taf::util::mean_of(v), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(taf::util::geomean_of(v), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(taf::util::mean_of({}), 0.0);
}

TEST(Table, RendersAlignedRows) {
  taf::util::Table t({"name", "value"});
  t.add_row({"alpha", taf::util::Table::num(1.5)});
  t.add_row({"beta", taf::util::Table::pct(0.123)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("12.3%"), std::string::npos);
  // Header separator present
  EXPECT_NE(s.find("|--"), std::string::npos);
}

}  // namespace

// Placement-layer tests for the CostModel refactor (DESIGN.md section
// 15): PlaceOptions/RefineOptions validation regressions, wirelength
// property tests (non-negativity, translation invariance, single-block
// nets), the Placement codec corruption corpus (same style as
// tests/test_artifact_store.cpp), the zero-weight bit-identity contract
// of the composed cost model, and refinement invariants (descent,
// determinism, legality).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/fpga_grid.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace {

using namespace taf;
namespace codec = util::codec;

/// Synthetic all-CLB packed netlist with random nets. place() and the
/// cost model only read blocks[].kind and block_nets, so no source
/// netlist is needed.
pack::PackedNetlist make_packed(int num_blocks, int num_nets, int max_fanout,
                                unsigned seed) {
  pack::PackedNetlist p;
  p.blocks.resize(static_cast<std::size_t>(num_blocks));
  for (auto& b : p.blocks) b.kind = pack::BlockKind::Clb;
  util::Rng rng(seed);
  for (int n = 0; n < num_nets; ++n) {
    pack::BlockNet bn;
    bn.net = n;
    bn.driver_block =
        static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_blocks)));
    const int fanout =
        1 + static_cast<int>(rng.next_below(static_cast<std::uint32_t>(max_fanout)));
    for (int s = 0; s < fanout; ++s) {
      const int sink =
          static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_blocks)));
      if (sink != bn.driver_block &&
          std::find(bn.sink_blocks.begin(), bn.sink_blocks.end(), sink) ==
              bn.sink_blocks.end()) {
        bn.sink_blocks.push_back(sink);
      }
    }
    if (!bn.sink_blocks.empty()) p.block_nets.push_back(std::move(bn));
  }
  return p;
}

place::ThermalField make_field(const arch::FpgaGrid& grid,
                               const pack::PackedNetlist& packed, double weight,
                               unsigned seed) {
  place::ThermalField f;
  f.weight = weight;
  util::Rng rng(seed);
  // Price gradient: hotter (more expensive) toward the grid centre, like
  // a real adjoint field around a hotspot.
  const double cx = grid.width() / 2.0, cy = grid.height() / 2.0;
  f.dpeak_dp_k_per_w.resize(static_cast<std::size_t>(grid.num_tiles()));
  for (int i = 0; i < grid.num_tiles(); ++i) {
    const arch::TilePos p = grid.pos_of(i);
    const double d = std::abs(p.x - cx) + std::abs(p.y - cy);
    f.dpeak_dp_k_per_w[static_cast<std::size_t>(i)] = 30.0 - d;
  }
  f.block_power_w.resize(packed.blocks.size());
  for (double& w : f.block_power_w) w = 1e-4 * rng.next_double();
  return f;
}

// ---------- options validation (regression: these used to be silently
// accepted and degenerated the anneal / built empty slot pools) ----------

TEST(Place, RejectsInvalidOptions) {
  const pack::PackedNetlist packed = make_packed(12, 20, 4, 1);
  const arch::FpgaGrid grid = arch::FpgaGrid::fit(12, 0, 0);

  for (double effort : {0.0, -1.0, std::nan(""),
                        std::numeric_limits<double>::infinity()}) {
    place::PlaceOptions opt;
    opt.effort = effort;
    EXPECT_THROW(place::place(packed, grid, opt), std::invalid_argument)
        << "effort = " << effort;
  }
  for (int io_capacity : {0, -3}) {
    place::PlaceOptions opt;
    opt.io_capacity = io_capacity;
    EXPECT_THROW(place::place(packed, grid, opt), std::invalid_argument)
        << "io_capacity = " << io_capacity;
  }

  place::PlaceOptions ok;
  ok.effort = 0.1;
  EXPECT_NO_THROW(place::place(packed, grid, ok));
}

TEST(Refine, RejectsInvalidOptionsAndIllegalStarts) {
  const pack::PackedNetlist packed = make_packed(12, 20, 4, 2);
  const arch::FpgaGrid grid = arch::FpgaGrid::fit(12, 0, 0);
  const place::Placement start = place::place(packed, grid, {});
  const place::ThermalField field = make_field(grid, packed, 1e6, 3);

  {
    place::RefineOptions opt;
    opt.effort = 0.0;
    EXPECT_THROW(place::refine_placement(packed, grid, start, field, opt),
                 std::invalid_argument);
  }
  {
    place::RefineOptions opt;
    opt.max_rounds = -1;
    EXPECT_THROW(place::refine_placement(packed, grid, start, field, opt),
                 std::invalid_argument);
  }
  {
    place::RefineOptions opt;
    opt.start_t_factor = 0.0;
    EXPECT_THROW(place::refine_placement(packed, grid, start, field, opt),
                 std::invalid_argument);
  }
  {
    // Wrong number of start positions.
    place::Placement bad = start;
    bad.pos.pop_back();
    EXPECT_THROW(place::refine_placement(packed, grid, bad, field, {}),
                 std::invalid_argument);
  }
  {
    // Two CLBs stacked on one tile: illegal under capacity 1.
    place::Placement bad = start;
    bad.pos[1] = bad.pos[0];
    EXPECT_THROW(place::refine_placement(packed, grid, bad, field, {}),
                 std::invalid_argument);
  }
  {
    // Mis-shaped thermal field (validated by the cost model).
    place::ThermalField bad = field;
    bad.dpeak_dp_k_per_w.pop_back();
    EXPECT_THROW(place::refine_placement(packed, grid, start, bad, {}),
                 std::invalid_argument);
  }
}

// ---------- wirelength properties ----------

TEST(Wirelength, NonNegativeOnRandomPlacements) {
  const pack::PackedNetlist packed = make_packed(24, 60, 6, 5);
  util::Rng rng(7);
  for (int trial = 0; trial < 32; ++trial) {
    place::Placement pl;
    pl.pos.resize(packed.blocks.size());
    for (auto& p : pl.pos) {
      p.x = static_cast<int>(rng.next_below(20));
      p.y = static_cast<int>(rng.next_below(20));
    }
    EXPECT_GE(place::wirelength_cost(packed, pl), 0.0) << "trial " << trial;
  }
}

TEST(Wirelength, TranslationInvariant) {
  const pack::PackedNetlist packed = make_packed(24, 60, 6, 11);
  util::Rng rng(13);
  place::Placement pl;
  pl.pos.resize(packed.blocks.size());
  for (auto& p : pl.pos) {
    p.x = static_cast<int>(rng.next_below(20));
    p.y = static_cast<int>(rng.next_below(20));
  }
  const double base = place::wirelength_cost(packed, pl);
  for (const auto& shift : {arch::TilePos{3, 5}, arch::TilePos{17, 0},
                            arch::TilePos{0, 9}}) {
    place::Placement moved = pl;
    for (auto& p : moved.pos) {
      p.x += shift.x;
      p.y += shift.y;
    }
    // Identical summation order over integer box spans: exactly equal.
    EXPECT_EQ(place::wirelength_cost(packed, moved), base)
        << "shift (" << shift.x << "," << shift.y << ")";
  }
}

TEST(Wirelength, SingleBlockNetsCostZero) {
  // Every net's pins live on one block: all bounding boxes are points.
  pack::PackedNetlist packed;
  packed.blocks.resize(4);
  for (auto& b : packed.blocks) b.kind = pack::BlockKind::Clb;
  for (int b = 0; b < 4; ++b) {
    pack::BlockNet bn;
    bn.net = b;
    bn.driver_block = b;
    bn.sink_blocks = {b, b};  // degenerate self-sinks
    packed.block_nets.push_back(std::move(bn));
  }
  place::Placement pl;
  pl.pos = {{2, 3}, {5, 1}, {9, 9}, {0, 7}};
  EXPECT_EQ(place::wirelength_cost(packed, pl), 0.0);
}

// ---------- Placement codec: round trip + corruption corpus ----------

TEST(PlacementCodec, RoundTripIsExact) {
  util::Rng rng(17);
  place::Placement pl;
  for (int i = 0; i < 40; ++i) {
    pl.pos.push_back({static_cast<int>(rng.next_below(100)) - 50,
                      static_cast<int>(rng.next_below(100)) - 50});
  }
  pl.cost = 12345.6789;

  codec::Encoder enc;
  place::serialize(pl, enc);
  const std::string bytes = enc.take();

  codec::Decoder dec(bytes);
  const place::Placement back = place::deserialize(dec);
  dec.expect_done();
  ASSERT_EQ(back.pos.size(), pl.pos.size());
  for (std::size_t i = 0; i < pl.pos.size(); ++i) {
    EXPECT_EQ(back.pos[i], pl.pos[i]) << "block " << i;
  }
  EXPECT_EQ(back.cost, pl.cost);

  // Re-serialization is byte-identical.
  codec::Encoder again;
  place::serialize(back, again);
  EXPECT_EQ(again.take(), bytes);
}

TEST(PlacementCodec, CorruptionCorpusThrows) {
  place::Placement pl;
  pl.pos = {{1, 2}, {3, 4}, {5, 6}};
  pl.cost = 42.0;
  codec::Encoder enc;
  place::serialize(pl, enc);
  const std::string bytes = enc.take();

  auto expect_reject = [](const std::string& payload, const char* what) {
    codec::Decoder dec(payload);
    EXPECT_THROW(
        {
          const place::Placement p = place::deserialize(dec);
          dec.expect_done();
          (void)p;
        },
        codec::Error)
        << what;
  };

  // Truncations at every prefix length short of the full payload.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, bytes.size() / 2,
                          bytes.size() - 1}) {
    expect_reject(bytes.substr(0, cut), "truncation");
  }
  // Element count inflated far beyond the remaining input.
  {
    std::string huge = bytes;
    huge[0] = '\xff';
    huge[1] = '\xff';
    expect_reject(huge, "inflated count");
  }
  // Trailing garbage after a well-formed payload.
  expect_reject(bytes + "zz", "trailing bytes");
}

// ---------- zero-weight bit-identity of the composed cost model ----------

TEST(Place, ZeroWeightThermalFieldIsBitIdenticalToNoField) {
  const pack::PackedNetlist packed = make_packed(20, 50, 5, 23);
  const arch::FpgaGrid grid = arch::FpgaGrid::fit(20, 0, 0);

  place::PlaceOptions blind;
  blind.seed = 9;
  blind.effort = 0.3;
  const place::Placement a = place::place(packed, grid, blind);

  place::ThermalField zero = make_field(grid, packed, /*weight=*/0.0, 29);
  place::PlaceOptions with_field = blind;
  with_field.thermal = &zero;
  const place::Placement b = place::place(packed, grid, with_field);

  ASSERT_EQ(a.pos.size(), b.pos.size());
  for (std::size_t i = 0; i < a.pos.size(); ++i) {
    EXPECT_EQ(a.pos[i], b.pos[i]) << "block " << i;
  }
  EXPECT_EQ(a.cost, b.cost);  // bitwise: identical arithmetic sequence
}

TEST(Place, RefineWithOverwhelmingWeightNeverRaisesThermalTerm) {
  const pack::PackedNetlist packed = make_packed(20, 50, 5, 23);
  const arch::FpgaGrid grid = arch::FpgaGrid::fit(20, 0, 0);
  const place::ThermalField field = make_field(grid, packed, 1e9, 31);

  place::PlaceOptions blind;
  blind.seed = 9;
  blind.effort = 0.3;
  const place::Placement start = place::place(packed, grid, blind);

  auto thermal_term = [&](const place::Placement& pl) {
    double s = 0.0;
    for (std::size_t i = 0; i < pl.pos.size(); ++i) {
      s += field.block_power_w[i] *
           field.dpeak_dp_k_per_w[static_cast<std::size_t>(grid.index_of(pl.pos[i]))];
    }
    return s;
  };

  // Greedy descent under a weight that makes any thermal regression cost
  // more than every possible wirelength gain: the predicted peak term can
  // only go down (or stay, via thermally neutral wirelength moves).
  const place::Placement refined =
      place::refine_placement(packed, grid, start, field, {});
  EXPECT_LE(thermal_term(refined), thermal_term(start) + 1e-12);
  EXPECT_LT(thermal_term(refined), thermal_term(start));
}

// ---------- refinement invariants ----------

TEST(Refine, DescendsComposedCostDeterministicallyAndStaysLegal) {
  const pack::PackedNetlist packed = make_packed(30, 80, 5, 37);
  const arch::FpgaGrid grid = arch::FpgaGrid::fit(30, 0, 0);
  const place::Placement start = place::place(packed, grid, {});
  const place::ThermalField field = make_field(grid, packed, 1e6, 41);

  auto composed = [&](const place::Placement& pl) {
    double s = place::wirelength_cost(packed, pl);
    for (std::size_t i = 0; i < pl.pos.size(); ++i) {
      s += field.weight * field.block_power_w[i] *
           field.dpeak_dp_k_per_w[static_cast<std::size_t>(grid.index_of(pl.pos[i]))];
    }
    return s;
  };

  place::RefineOptions opt;
  opt.seed = 3;
  place::RefineStats stats;
  const place::Placement refined =
      place::refine_placement(packed, grid, start, field, opt, &stats);

  // Near-greedy descent: the composed cost never goes up.
  EXPECT_LE(composed(refined), composed(start));
  EXPECT_GT(stats.moves, 0);
  EXPECT_GE(stats.moves, stats.accepted);

  // Determinism: same inputs, same placement, move for move.
  place::RefineStats stats2;
  const place::Placement again =
      place::refine_placement(packed, grid, start, field, opt, &stats2);
  ASSERT_EQ(again.pos.size(), refined.pos.size());
  for (std::size_t i = 0; i < refined.pos.size(); ++i) {
    EXPECT_EQ(again.pos[i], refined.pos[i]) << "block " << i;
  }
  EXPECT_EQ(stats2.moves, stats.moves);
  EXPECT_EQ(stats2.accepted, stats.accepted);

  // Legality: every block on a tile of its kind, one CLB per tile.
  std::map<std::pair<int, int>, int> occupancy;
  for (std::size_t i = 0; i < refined.pos.size(); ++i) {
    const arch::TilePos p = refined.pos[i];
    ASSERT_GE(p.x, 0);
    ASSERT_LT(p.x, grid.width());
    ASSERT_GE(p.y, 0);
    ASSERT_LT(p.y, grid.height());
    EXPECT_EQ(grid.at(p), arch::TileKind::Clb) << "block " << i;
    EXPECT_EQ(++occupancy[std::make_pair(p.x, p.y)], 1)
        << "tile (" << p.x << "," << p.y << ")";
  }
}

TEST(Refine, ZeroRoundsReturnsStartUnchanged) {
  const pack::PackedNetlist packed = make_packed(12, 20, 4, 43);
  const arch::FpgaGrid grid = arch::FpgaGrid::fit(12, 0, 0);
  const place::Placement start = place::place(packed, grid, {});
  const place::ThermalField field = make_field(grid, packed, 1e6, 47);

  place::RefineOptions opt;
  opt.max_rounds = 0;
  place::RefineStats stats;
  const place::Placement out =
      place::refine_placement(packed, grid, start, field, opt, &stats);
  EXPECT_EQ(stats.moves, 0);
  ASSERT_EQ(out.pos.size(), start.pos.size());
  for (std::size_t i = 0; i < start.pos.size(); ++i) {
    EXPECT_EQ(out.pos[i], start.pos[i]) << "block " << i;
  }
}

}  // namespace

// Tests for taf-analyze (tools/analyzer): lexer semantics, the findings
// corpus under tests/analyzer_corpus/, CLI determinism and exit codes,
// suppression handling, and the self-host gate over the live tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "analyzer/lexer.hpp"

namespace fs = std::filesystem;

namespace {

using namespace taf::analyze;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const fs::path& p, const std::string& text) {
  fs::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good()) << "cannot write " << p;
}

// ------------------------------------------------------------- lexer

TEST(Lexer, CommentsBlankedKeepingLineStructure) {
  const LexedFile f = lex("a.cpp", "int a; // trailing getenv(\n/* block\nspans */ int b;\n");
  EXPECT_EQ(f.stripped.find("getenv"), std::string::npos);
  EXPECT_EQ(f.stripped.find("spans"), std::string::npos);
  // Same newline count: line numbers survive stripping.
  EXPECT_EQ(std::count(f.stripped.begin(), f.stripped.end(), '\n'), 3);
  EXPECT_NE(f.stripped.find("int b;"), std::string::npos);
}

TEST(Lexer, StringLiteralInteriorBlankedQuotesKept) {
  const LexedFile f = lex("a.cpp", "const char* s = \"call getenv(x) now\";\n");
  EXPECT_EQ(f.stripped.find("getenv"), std::string::npos);
  EXPECT_NE(f.stripped.find('"'), std::string::npos);
}

TEST(Lexer, RawStringInteriorBlankedEvenWithQuotesAndParens) {
  // The pre-lexer stripper treated R"(...)" as an ordinary string: the
  // quote inside the literal "closed" it and getenv( leaked into the
  // stripped text. The lexer must blank the full raw literal.
  const std::string src =
      "const char* d = R\"(say \" then std::getenv(\"X\") inside)\";\n"
      "const char* e = R\"==(fake )\" terminator)==\";\n";
  const LexedFile f = lex("a.cpp", src);
  EXPECT_EQ(f.stripped.find("getenv"), std::string::npos);
  EXPECT_EQ(f.stripped.find("terminator"), std::string::npos);
  EXPECT_EQ(std::count(f.stripped.begin(), f.stripped.end(), '\n'), 2);
}

// The stripper algorithm taf-lint shipped before the raw-string fix:
// literals end at the first unescaped matching quote, and an escape always
// blanks two characters (dropping escaped newlines). Kept here as a
// regression witness: it must FAIL on the corpus raw-string input that the
// new lexer handles, or the corpus case is no longer load-bearing.
std::string naive_strip(const std::string& text) {
  std::string out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  char state = 0;
  while (i < n) {
    const char ch = text[i];
    const char nxt = i + 1 < n ? text[i + 1] : '\0';
    if (state == 0) {
      if (ch == '/' && nxt == '/') { state = 1; out += "  "; i += 2; continue; }
      if (ch == '/' && nxt == '*') { state = 2; out += "  "; i += 2; continue; }
      if (ch == '"' || ch == '\'') { state = ch; out += ch; ++i; continue; }
      out += ch;
      ++i;
      continue;
    }
    if (state == 1) { out += ch == '\n' ? '\n' : ' '; state = ch == '\n' ? 0 : state; ++i; continue; }
    if (state == 2) {
      if (ch == '*' && nxt == '/') { state = 0; out += "  "; i += 2; continue; }
      out += ch == '\n' ? '\n' : ' ';
      ++i;
      continue;
    }
    if (ch == '\\') { out += "  "; i += 2; continue; }  // drops escaped newlines
    if (ch == state) state = 0;
    out += (ch == '\n' || ch == '"' || ch == '\'') ? ch : ' ';
    ++i;
  }
  return out;
}

TEST(Lexer, OldStripperFailsOnRawStringsNewLexerPasses) {
  const std::string src =
      "const char* d = R\"(say \" then std::getenv(\"X\") inside)\";\n";
  // Old behavior: the embedded quote "closes" the literal and getenv(
  // leaks into the stripped text — the false positive the fix removes.
  EXPECT_NE(naive_strip(src).find("getenv"), std::string::npos);
  EXPECT_EQ(lex("a.cpp", src).stripped.find("getenv"), std::string::npos);

  // Old behavior: the backslash-newline escape loses its newline, shifting
  // every later line number by one.
  const std::string esc = "const char* s = \"a\\\nb\";\nint site;\n";
  const std::string old_stripped = naive_strip(esc);
  EXPECT_LT(std::count(old_stripped.begin(), old_stripped.end(), '\n'), 3);
  const std::string new_stripped = lex("a.cpp", esc).stripped;
  EXPECT_EQ(std::count(new_stripped.begin(), new_stripped.end(), '\n'), 3);
}

TEST(Lexer, MultiLineRawStringKeepsLineNumbers) {
  const std::string src = "auto u = R\"(line one\nline two\n)\";\nint getenv_site;\n";
  const LexedFile f = lex("a.cpp", src);
  EXPECT_EQ(std::count(f.stripped.begin(), f.stripped.end(), '\n'), 4);
  // A token after the raw string sits on the right line.
  bool found = false;
  for (const Token& t : f.tokens) {
    if (f.tok(t) == "getenv_site") {
      EXPECT_EQ(t.line, 4);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, EscapedNewlineInLiteralKeepsLineCount) {
  // A backslash-newline inside a string spans lines; blanking both escape
  // characters must still keep the newline or every later line number
  // shifts (the old stripper dropped it).
  const std::string src = "const char* s = \"a\\\nb\";\nint site;\n";
  const LexedFile f = lex("a.cpp", src);
  EXPECT_EQ(std::count(f.stripped.begin(), f.stripped.end(), '\n'), 3);
}

TEST(Lexer, RawStringIsOneStringToken) {
  const LexedFile f = lex("a.cpp", "auto s = u8R\"(x(y)z)\";\n");
  int strs = 0;
  for (const Token& t : f.tokens)
    if (t.kind == Tok::Str) ++strs;
  EXPECT_EQ(strs, 1);
}

TEST(Lexer, PreprocessorContinuationIsOneToken) {
  const LexedFile f = lex("a.cpp", "#define M(x) \\\n  ((x) + 1)\nint a;\n");
  int preproc = 0;
  for (const Token& t : f.tokens)
    if (t.kind == Tok::Preproc) ++preproc;
  EXPECT_EQ(preproc, 1);
}

TEST(Lexer, TwoCharPunctuatorsAreSingleTokens) {
  const LexedFile f = lex("a.cpp", "a::b->c += d << e;\n");
  std::vector<std::string> puncts;
  for (const Token& t : f.tokens)
    if (t.kind == Tok::Punct) puncts.push_back(f.tok(t));
  EXPECT_EQ(puncts, (std::vector<std::string>{"::", "->", "+=", "<<", ";"}));
}

// ------------------------------------------------------------ corpus

struct CorpusFile {
  std::string disk_name;     // for diagnostics
  std::string virtual_path;  // from the analyzer-corpus-path marker
  std::string group;         // empty: analyzed alone
  std::string text;
  std::vector<std::string> expected;  // "path:line:rule"
};

std::vector<CorpusFile> load_corpus() {
  const fs::path dir = TAF_ANALYZER_CORPUS_DIR;
  std::vector<fs::path> paths;
  for (const auto& ent : fs::directory_iterator(dir))
    if (ent.path().extension() == ".cxx") paths.push_back(ent.path());
  std::sort(paths.begin(), paths.end());
  EXPECT_GE(paths.size(), 10u) << "corpus unexpectedly small";

  std::vector<CorpusFile> out;
  for (const fs::path& p : paths) {
    CorpusFile cf;
    cf.disk_name = p.filename().string();
    cf.text = slurp(p);
    std::istringstream in(cf.text);
    std::string line;
    const std::string path_marker = "// analyzer-corpus-path:";
    const std::string group_marker = "// analyzer-corpus-group:";
    if (std::getline(in, line) && line.rfind(path_marker, 0) == 0) {
      cf.virtual_path = line.substr(path_marker.size());
      cf.virtual_path.erase(0, cf.virtual_path.find_first_not_of(" \t"));
    }
    EXPECT_FALSE(cf.virtual_path.empty()) << cf.disk_name << ": missing path marker";
    if (std::getline(in, line) && line.rfind(group_marker, 0) == 0) {
      cf.group = line.substr(group_marker.size());
      cf.group.erase(0, cf.group.find_first_not_of(" \t"));
    }
    const fs::path sidecar = fs::path(p).replace_extension(".expected");
    EXPECT_TRUE(fs::exists(sidecar)) << cf.disk_name << ": missing .expected sidecar";
    std::istringstream ein(slurp(sidecar));
    while (std::getline(ein, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      cf.expected.push_back(line);
    }
    out.push_back(std::move(cf));
  }
  return out;
}

TEST(Corpus, EveryCaseMatchesItsExpectedFindings) {
  const std::vector<CorpusFile> corpus = load_corpus();
  // Group files analyzed together (cross-TU lock graph); singletons alone.
  std::map<std::string, std::vector<const CorpusFile*>> groups;
  for (const CorpusFile& cf : corpus)
    groups[cf.group.empty() ? "file:" + cf.disk_name : "group:" + cf.group].push_back(&cf);

  for (const auto& [key, members] : groups) {
    std::vector<SourceFile> sources;
    std::vector<std::string> expected;
    std::string names;
    for (const CorpusFile* cf : members) {
      sources.push_back({cf->virtual_path, cf->text});
      expected.insert(expected.end(), cf->expected.begin(), cf->expected.end());
      names += cf->disk_name + " ";
    }
    std::vector<std::string> actual;
    for (const Finding& f : analyze_sources(sources, {}))
      actual.push_back(f.path + ":" + std::to_string(f.line) + ":" + f.rule);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "corpus case " << names;
  }
}

TEST(Corpus, CoversBothNewRuleFamiliesWithPositivesAndNegatives) {
  const std::vector<CorpusFile> corpus = load_corpus();
  std::map<std::string, int> positives;
  int clean_files = 0;
  for (const CorpusFile& cf : corpus) {
    if (cf.expected.empty()) ++clean_files;
    for (const std::string& e : cf.expected)
      ++positives[e.substr(e.rfind(':') + 1)];
  }
  // Lock-discipline family.
  EXPECT_GE(positives["lock-order-cycle"], 1);
  EXPECT_GE(positives["blocking-while-locked"], 1);
  // Determinism family.
  EXPECT_GE(positives["unordered-iteration"], 1);
  EXPECT_GE(positives["wall-clock"], 1);
  EXPECT_GE(positives["raw-random"], 1);
  EXPECT_GE(positives["pointer-keyed-container"], 1);
  // Pinned non-findings are as load-bearing as the positives.
  EXPECT_GE(clean_files, 3);
}

// --------------------------------------------------------------- CLI

TEST(Cli, OutputIsByteIdenticalAcrossRunsAndArgumentOrder) {
  CliOptions a;
  a.root = TAF_REPO_ROOT;
  a.paths = {"src", "bench", "tests", "examples"};
  CliOptions b = a;
  b.paths = {"tests", "examples", "src", "bench", "src"};  // shuffled + dup
  const CliResult r1 = run_cli(a);
  const CliResult r2 = run_cli(a);
  const CliResult r3 = run_cli(b);
  EXPECT_EQ(r1.out, r2.out);
  EXPECT_EQ(r1.err, r2.err);
  EXPECT_EQ(r1.exit_code, r2.exit_code);
  EXPECT_EQ(r1.out, r3.out);
  EXPECT_EQ(r1.err, r3.err);
  EXPECT_EQ(r1.exit_code, r3.exit_code);
}

TEST(Cli, SelfHostTreeIsClean) {
  CliOptions opts;
  opts.root = TAF_REPO_ROOT;
  opts.paths = {"src", "bench", "tests", "examples", "tools/analyzer"};
  const CliResult res = run_cli(opts);
  EXPECT_EQ(res.exit_code, 0) << res.out;
  EXPECT_TRUE(res.out.empty()) << res.out;
}

TEST(Cli, ExitCodeZeroOnCleanTree) {
  const fs::path root = fs::path(testing::TempDir()) / "taf_an_clean";
  fs::remove_all(root);
  spit(root / "src" / "ok.cpp", "int f() { return 1; }\n");
  CliOptions opts;
  opts.root = root.string();
  const CliResult res = run_cli(opts);
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_TRUE(res.out.empty());
  EXPECT_NE(res.err.find("clean"), std::string::npos);
}

TEST(Cli, ExitCodeOneOnFinding) {
  const fs::path root = fs::path(testing::TempDir()) / "taf_an_dirty";
  fs::remove_all(root);
  spit(root / "src" / "bad.cpp", "#include <cstdlib>\nint f() { return atoi(\"1\"); }\n");
  CliOptions opts;
  opts.root = root.string();
  const CliResult res = run_cli(opts);
  EXPECT_EQ(res.exit_code, 1);
  EXPECT_NE(res.out.find("src/bad.cpp:2: [banned-identifier]"), std::string::npos)
      << res.out;
}

TEST(Cli, ExitCodeTwoOnMissingExplicitPath) {
  CliOptions opts;
  opts.root = TAF_REPO_ROOT;
  opts.paths = {"no/such/dir"};
  const CliResult res = run_cli(opts);
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.err.find("cannot read no/such/dir"), std::string::npos);
}

TEST(Cli, CompatFormatPrintsPathLineRule) {
  const fs::path root = fs::path(testing::TempDir()) / "taf_an_compat";
  fs::remove_all(root);
  spit(root / "src" / "bad.cpp", "#include <cstdlib>\nint f() { return atoi(\"1\"); }\n");
  CliOptions opts;
  opts.root = root.string();
  opts.compat = true;
  opts.summary = false;
  const CliResult res = run_cli(opts);
  EXPECT_EQ(res.out, "src/bad.cpp:2:banned-identifier\n");
  EXPECT_EQ(res.exit_code, 1);
}

TEST(Cli, SummaryTableCountsPerRule) {
  const fs::path root = fs::path(testing::TempDir()) / "taf_an_summary";
  fs::remove_all(root);
  spit(root / "src" / "bad.cpp",
       "#include <cstdlib>\nint f() { return atoi(\"1\") + (atof(\"2\") > 0); }\n");
  spit(root / "tools" / "taf-lint.suppressions",
       "src/bad.cpp:banned-identifier:atof  # pinned\n");
  CliOptions opts;
  opts.root = root.string();
  const CliResult res = run_cli(opts);
  // Two banned calls: atoi stays visible, atof is suppressed by message
  // substring.
  EXPECT_EQ(res.exit_code, 1);
  EXPECT_NE(res.err.find("banned-identifier"), std::string::npos);
  EXPECT_NE(res.err.find("1 finding(s) (1 suppressed)"), std::string::npos) << res.err;
}

TEST(Cli, PruneReportsOnlyStaleSuppressions) {
  const fs::path root = fs::path(testing::TempDir()) / "taf_an_prune";
  fs::remove_all(root);
  spit(root / "src" / "bad.cpp", "#include <cstdlib>\nint f() { return atoi(\"1\"); }\n");
  spit(root / "tools" / "taf-lint.suppressions",
       "# comment line\n"
       "src/bad.cpp:banned-identifier  # live\n"
       "src/gone.cpp:raw-serialization  # stale: file no longer exists\n");
  CliOptions opts;
  opts.root = root.string();
  opts.prune = true;
  const CliResult res = run_cli(opts);
  EXPECT_EQ(res.exit_code, 0);  // report-only, never fails the build
  EXPECT_EQ(res.out.find("src/bad.cpp"), std::string::npos) << res.out;
  EXPECT_NE(res.out.find("stale suppression (tools/taf-lint.suppressions:3): "
                         "src/gone.cpp:raw-serialization"),
            std::string::npos)
      << res.out;
  EXPECT_NE(res.err.find("1 stale suppression entry(ies) of 2"), std::string::npos);
}

TEST(Cli, LiveSuppressionFileHasNoStaleEntries) {
  CliOptions opts;
  opts.root = TAF_REPO_ROOT;
  opts.paths = {"src", "bench", "tests", "examples"};
  opts.prune = true;
  const CliResult res = run_cli(opts);
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_TRUE(res.out.empty()) << "stale suppressions:\n" << res.out;
}

TEST(Cli, RuleFilterRunsOnlyRequestedRules) {
  const fs::path root = fs::path(testing::TempDir()) / "taf_an_filter";
  fs::remove_all(root);
  spit(root / "src" / "bad.cpp",
       "#include <cstdlib>\nint f() { return atoi(getenv(\"X\")[0]); }\n");
  CliOptions opts;
  opts.root = root.string();
  opts.rules = {"env-through-util"};
  opts.compat = true;
  opts.summary = false;
  const CliResult res = run_cli(opts);
  EXPECT_EQ(res.out, "src/bad.cpp:2:env-through-util\n");
}

// ------------------------------------------------------ suppressions

TEST(Suppress, GlobMatchSemantics) {
  EXPECT_TRUE(glob_match("src/*.cpp", "src/pack/pack.cpp"));  // '*' crosses '/'
  EXPECT_TRUE(glob_match("tests/test_*.cpp", "tests/test_cad.cpp"));
  EXPECT_FALSE(glob_match("tests/test_*.cpp", "tests/helper.cpp"));
  EXPECT_TRUE(glob_match("*", "anything/at/all.hpp"));
  EXPECT_TRUE(glob_match("src/a?c.cpp", "src/abc.cpp"));
  EXPECT_FALSE(glob_match("src/a?c.cpp", "src/ac.cpp"));
  EXPECT_TRUE(glob_match("src/[ab]x.cpp", "src/ax.cpp"));
  EXPECT_FALSE(glob_match("src/[!ab]x.cpp", "src/ax.cpp"));
  EXPECT_TRUE(glob_match("src/[a-c]x.cpp", "src/bx.cpp"));
}

TEST(Suppress, ParseEntriesAndMatchFindings) {
  const std::vector<Suppression> sup = parse_suppressions(
      "# header comment\n"
      "src/thermal/*.hpp:unit-typed-api:power_scale  # why\n"
      "bench/bench_all.cpp:raw-serialization\n"
      "tests/flaky.cpp\n");
  ASSERT_EQ(sup.size(), 3u);
  EXPECT_EQ(sup[0].line, 2);
  EXPECT_EQ(sup[0].rule, "unit-typed-api");
  EXPECT_EQ(sup[0].substr, "power_scale");
  EXPECT_EQ(sup[2].rule, "*");

  Finding f{"src/thermal/flow.hpp", 10, "unit-typed-api", "raw `double power_scale`"};
  EXPECT_TRUE(suppression_matches(sup[0], f));
  f.message = "raw `double temp_c`";
  EXPECT_FALSE(suppression_matches(sup[0], f));  // substring mismatch
  f.rule = "banned-identifier";
  EXPECT_FALSE(suppression_matches(sup[0], f));
  Finding any{"tests/flaky.cpp", 1, "wall-clock", "m"};
  EXPECT_TRUE(suppression_matches(sup[2], any));  // rule wildcard
}

}  // namespace

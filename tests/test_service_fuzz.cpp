// Protocol fuzz suite for the guardband service (ISSUE 7): every
// malformed frame — truncated, oversized, zero-length, bad magic, stale
// version, foreign kind, corrupted checksum, trailing garbage — plus a
// seeded mutation corpus over valid requests must yield a typed
// kErrorKind response. Never a crash, hang, or unhandled exception;
// the CI sanitize job runs this binary under ASan/UBSan like the PR 5
// codec tamper corpus, and the thread-sanitize job under TSan.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "service/guardband_server.hpp"
#include "service/protocol.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace {

using namespace taf;
using service::GuardbandServer;
using service::ServerConfig;
namespace protocol = service::protocol;
namespace codec = util::codec;

/// One server for the whole corpus. max_iterations = 0 keeps the rare
/// frame that survives intact (the unmutated seed) cheap to evaluate —
/// the fuzz target is the protocol layer, not Algorithm 1.
GuardbandServer& fuzz_server() {
  static GuardbandServer server([] {
    ServerConfig config;
    config.threads = 1;
    config.scale = 1.0 / 16.0;
    config.guardband.max_iterations = 0;
    return config;
  }());
  return server;
}

protocol::GuardbandRequest valid_request() {
  protocol::GuardbandRequest req;
  req.request_id = 42;
  req.design = "mkPktMerge";
  req.grade_t_opt_c = 25.0;
  req.ambient_c = 45.0;
  req.activity_scale = 0.75;
  return req;
}

/// The reply to any single frame must itself be one well-formed frame
/// holding either a response or a typed error envelope. Returns true
/// when it is an error.
bool expect_typed_reply(const std::string& reply_frame, const char* label) {
  SCOPED_TRACE(label);
  protocol::FrameReader reader;
  reader.feed(reply_frame);
  const auto envelope = reader.next();
  EXPECT_EQ(reader.error(), nullptr);
  EXPECT_TRUE(envelope.has_value());
  EXPECT_EQ(reader.pending_bytes(), 0u);
  if (!envelope.has_value()) return false;
  if (protocol::is_error_envelope(*envelope)) {
    const protocol::ErrorResponse err = protocol::decode_error(*envelope);
    EXPECT_NE(err.code, 0u);
    return true;
  }
  const protocol::GuardbandResponse resp = protocol::decode_response(*envelope);
  EXPECT_EQ(resp.design, "mkPktMerge");
  return false;
}

TEST(ServiceFuzz, TruncatedFramesYieldTypedErrors) {
  const std::string frame = protocol::frame(protocol::encode_request(valid_request()));
  // Every proper prefix: cuts inside the length prefix, inside the
  // envelope header, and inside the payload.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::string reply =
        fuzz_server().serve_frame(std::string_view(frame).substr(0, cut));
    EXPECT_TRUE(expect_typed_reply(reply, "truncated"))
        << "prefix of " << cut << " bytes";
  }
}

TEST(ServiceFuzz, OversizedAndZeroLengthPrefixesAreRejected) {
  for (const std::uint32_t size : {0u, protocol::kMaxFrameBytes + 1, 0xffffffffu}) {
    codec::Encoder e;
    e.u32(size);
    std::string bytes = e.take();
    bytes += "payload-that-never-arrives";
    EXPECT_TRUE(expect_typed_reply(fuzz_server().serve_frame(bytes), "bad length"))
        << "declared size " << size;
  }
}

TEST(ServiceFuzz, TamperedEnvelopesYieldTypedErrors) {
  const std::string envelope = protocol::encode_request(valid_request());

  // Bad magic.
  std::string bad_magic = envelope;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5a);
  EXPECT_TRUE(expect_typed_reply(fuzz_server().serve_frame(protocol::frame(bad_magic)),
                                 "bad magic"));

  // Stale codec version.
  {
    codec::Decoder d(envelope);
    d.u32();  // magic
    std::string stale = envelope;
    const std::uint32_t bumped = codec::kVersion + 1;
    for (int i = 0; i < 4; ++i) {
      stale[4 + static_cast<std::size_t>(i)] =
          static_cast<char>((bumped >> (8 * i)) & 0xff);
    }
    EXPECT_TRUE(expect_typed_reply(fuzz_server().serve_frame(protocol::frame(stale)),
                                   "stale version"));
  }

  // Foreign kind: a well-formed *response* envelope sent as a request.
  {
    protocol::GuardbandResponse resp;
    resp.design = "mkPktMerge";
    EXPECT_TRUE(expect_typed_reply(
        fuzz_server().serve_frame(protocol::frame(protocol::encode_response(resp))),
        "foreign kind"));
  }

  // Corrupted payload byte: checksum mismatch.
  {
    std::string flipped = envelope;
    flipped[flipped.size() - 3] = static_cast<char>(flipped[flipped.size() - 3] ^ 0x01);
    EXPECT_TRUE(expect_typed_reply(fuzz_server().serve_frame(protocol::frame(flipped)),
                                   "checksum"));
  }

  // Trailing garbage after a valid frame on a one-shot connection.
  {
    std::string frame = protocol::frame(envelope);
    frame += "garbage";
    EXPECT_TRUE(expect_typed_reply(fuzz_server().serve_frame(frame), "trailing bytes"));
  }

  // Envelope payload-size field inflated past the actual bytes.
  {
    std::string inflated = envelope;
    inflated[16] = static_cast<char>(inflated[16] + 1);  // size u64 LSB
    EXPECT_TRUE(expect_typed_reply(fuzz_server().serve_frame(protocol::frame(inflated)),
                                   "size mismatch"));
  }
}

TEST(ServiceFuzz, MutationCorpusNeverCrashesAndAlwaysTypesItsReplies) {
  // Seeded byte/bit mutations over the valid frame. The envelope
  // checksum turns almost every mutation into kMalformedFrame; whatever
  // survives intact must still produce a typed frame.
  const std::string seed_frame = protocol::frame(protocol::encode_request(valid_request()));
  util::Rng rng(20260808);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string mutated = seed_frame;
    const int edits = 1 + static_cast<int>(rng.next_below(8));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.next_below(static_cast<std::uint32_t>(mutated.size()));
      switch (rng.next_below(3)) {
        case 0:  // bit flip
          mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.next_below(8)));
          break;
        case 1:  // byte overwrite
          mutated[pos] = static_cast<char>(rng.next_below(256));
          break;
        default:  // truncate at pos
          mutated.resize(pos);
          break;
      }
      if (mutated.empty()) break;
    }
    const std::string reply = fuzz_server().serve_frame(mutated);
    expect_typed_reply(reply, "mutation");
  }
}

TEST(ServiceFuzz, MutatedRequestFieldsGetTypedValidationErrors) {
  // Field-level fuzz below the checksum: re-encode (valid envelope!)
  // with hostile field values. Must yield kUnknownDesign/kBadParameter,
  // or a response when the value happens to be in-domain — never a
  // crash or an evaluation of nonsense.
  util::Rng rng(7);
  const double hostile[] = {-1e308, 1e308, -0.0, 1e-320, 5e22, -273.16, 1e6};
  for (int iter = 0; iter < 200; ++iter) {
    protocol::GuardbandRequest req = valid_request();
    switch (rng.next_below(4)) {
      case 0: req.design = std::string(rng.next_below(64), 'x'); break;
      case 1: req.grade_t_opt_c = hostile[rng.next_below(7)]; break;
      case 2: req.ambient_c = hostile[rng.next_below(7)]; break;
      default: req.activity_scale = hostile[rng.next_below(7)]; break;
    }
    const std::string reply =
        fuzz_server().serve_frame(protocol::frame(protocol::encode_request(req)));
    expect_typed_reply(reply, "hostile field");
  }

  // NaN fields can't come from encode (NaN != NaN round-trips fine at
  // the codec layer) but must still be rejected by validation.
  protocol::GuardbandRequest nan_req = valid_request();
  nan_req.ambient_c = std::nan("");
  const std::string reply =
      fuzz_server().serve_frame(protocol::frame(protocol::encode_request(nan_req)));
  EXPECT_TRUE(expect_typed_reply(reply, "nan ambient"));
}

TEST(ServiceFuzz, FrameReaderReassemblesChunkedAndPipelinedStreams) {
  // Several frames concatenated, fed in 1..7-byte chunks: all frames
  // must come out intact, in order, regardless of chunk boundaries.
  std::vector<std::string> envelopes;
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    protocol::GuardbandRequest req = valid_request();
    req.request_id = static_cast<std::uint64_t>(i + 1);
    envelopes.push_back(protocol::encode_request(req));
    stream += protocol::frame(envelopes.back());
  }
  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    SCOPED_TRACE("chunk size " + std::to_string(chunk));
    protocol::FrameReader reader;
    std::vector<std::string> got;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      ASSERT_TRUE(reader.feed(std::string_view(stream).substr(off, chunk)));
      while (auto envelope = reader.next()) got.push_back(*envelope);
    }
    EXPECT_EQ(reader.error(), nullptr);
    EXPECT_EQ(reader.pending_bytes(), 0u);
    ASSERT_EQ(got.size(), envelopes.size());
    for (std::size_t i = 0; i < envelopes.size(); ++i) EXPECT_EQ(got[i], envelopes[i]);
  }
}

TEST(ServiceFuzz, PoisonedReaderStaysPoisoned) {
  protocol::FrameReader reader;
  codec::Encoder e;
  e.u32(protocol::kMaxFrameBytes + 5);
  reader.feed(e.take());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_NE(reader.error(), nullptr);
  EXPECT_FALSE(reader.feed("more"));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ServiceFuzz, RoundTripSurvivesEncodeDecodeEncode) {
  // Codec sanity under the protocol layouts: decode(encode(x)) == x and
  // re-encoding is byte-identical (the determinism tests depend on it).
  const protocol::GuardbandRequest req = valid_request();
  const std::string envelope = protocol::encode_request(req);
  const protocol::GuardbandRequest back = protocol::decode_request(envelope);
  EXPECT_EQ(protocol::encode_request(back), envelope);

  protocol::GuardbandResponse resp;
  resp.request_id = 9;
  resp.design = "diffeq2";
  resp.grade_mdeg = 25000;
  resp.ambient_mdeg = 45000;
  resp.activity_permille = 750;
  resp.fmax_mhz = 123.456;
  resp.baseline_fmax_mhz = 100.0;
  resp.margin_c = 1.0;
  resp.peak_temp_c = 47.25;
  resp.mean_temp_c = 46.5;
  resp.iterations = 3;
  resp.converged = 1;
  resp.edges_reevaluated = 1234;
  resp.delay_cache_hits = 5678;
  resp.cg_iterations = 90;
  const std::string renv = protocol::encode_response(resp);
  EXPECT_EQ(protocol::encode_response(protocol::decode_response(renv)), renv);

  protocol::ErrorResponse err;
  err.request_id = 3;
  err.code = protocol::ErrorResponse::kBadParameter;
  err.message = "ambient_c out of domain";
  const std::string eenv = protocol::encode_error(err);
  const protocol::ErrorResponse eback = protocol::decode_error(eenv);
  EXPECT_EQ(eback.request_id, 3u);
  EXPECT_EQ(eback.code, protocol::ErrorResponse::kBadParameter);
  EXPECT_EQ(protocol::encode_error(eback), eenv);
}

}  // namespace

// Tests for the netlist model and the synthetic VTR-like benchmark
// generator: structural validity, spec conformance, determinism.

#include <gtest/gtest.h>

#include "netlist/benchmarks.hpp"
#include "netlist/netlist.hpp"

namespace {

using namespace taf;
using namespace taf::netlist;

Netlist tiny_example() {
  // pi0, pi1 -> lut -> ff -> po
  Netlist nl("tiny");
  const PrimId a = nl.add_primitive({PrimKind::Input, "a", {}, kNoNet, 0});
  const NetId na = nl.add_net(a);
  const PrimId b = nl.add_primitive({PrimKind::Input, "b", {}, kNoNet, 0});
  const NetId nb = nl.add_net(b);
  const PrimId l = nl.add_primitive({PrimKind::Lut, "l", {}, kNoNet, 0b0110});  // XOR
  nl.connect(na, l, 0);
  nl.connect(nb, l, 1);
  const NetId nlen = nl.add_net(l);
  const PrimId f = nl.add_primitive({PrimKind::Ff, "f", {}, kNoNet, 0});
  nl.connect(nlen, f, 0);
  const NetId nf = nl.add_net(f);
  const PrimId o = nl.add_primitive({PrimKind::Output, "o", {}, kNoNet, 0});
  nl.connect(nf, o, 0);
  return nl;
}

TEST(Netlist, TinyExampleValidates) {
  const Netlist nl = tiny_example();
  EXPECT_EQ(nl.validate(), "");
  EXPECT_EQ(nl.count(PrimKind::Lut), 1);
  EXPECT_EQ(nl.count(PrimKind::Ff), 1);
  EXPECT_EQ(nl.count(PrimKind::Input), 2);
}

TEST(Netlist, TopoOrderRespectsCombinationalEdges) {
  const Netlist nl = tiny_example();
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), nl.prims().size());
  std::vector<int> position(nl.prims().size());
  for (std::size_t i = 0; i < order.size(); ++i) position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  // LUT l (id 2) must come after both inputs (0, 1).
  EXPECT_GT(position[2], position[0]);
  EXPECT_GT(position[2], position[1]);
}

TEST(Benchmarks, SuiteHasNineteenCircuits) {
  const auto suite = vtr_suite();
  EXPECT_EQ(suite.size(), 19u);
  // Headline statistics from the paper: max 89K LUTs, max 334 BRAM,
  // max 213 DSP.
  int max_luts = 0, max_brams = 0, max_dsps = 0;
  long total = 0;
  for (const auto& s : suite) {
    max_luts = std::max(max_luts, s.num_luts);
    max_brams = std::max(max_brams, s.num_brams);
    max_dsps = std::max(max_dsps, s.num_dsps);
    total += s.num_luts;
  }
  EXPECT_EQ(max_luts, 89000);
  EXPECT_EQ(max_brams, 334);
  EXPECT_EQ(max_dsps, 213);
  // Paper: average 17K 6-LUTs.
  EXPECT_NEAR(static_cast<double>(total) / 19.0, 17000.0, 3000.0);
}

TEST(Benchmarks, ScalingKeepsNonzeroResources) {
  auto spec = vtr_suite()[3];  // ch_intrinsics: 1 BRAM
  ASSERT_EQ(spec.num_brams, 1);
  const auto s = scaled(spec, 1.0 / 16);
  EXPECT_EQ(s.num_brams, 1);  // never scaled to zero
  EXPECT_LT(s.num_luts, spec.num_luts);
  EXPECT_GE(s.num_luts, 8);
}

TEST(Benchmarks, GeneratedNetlistIsValid) {
  util::Rng rng(42);
  const auto spec = scaled(vtr_suite()[4], 0.25);  // diffeq1
  const Netlist nl = generate(spec, rng);
  EXPECT_EQ(nl.validate(), "");
}

TEST(Benchmarks, GeneratedCountsMatchSpec) {
  util::Rng rng(42);
  auto spec = scaled(vtr_suite()[4], 0.25);
  const Netlist nl = generate(spec, rng);
  EXPECT_EQ(nl.count(PrimKind::Lut), spec.num_luts);
  EXPECT_EQ(nl.count(PrimKind::Bram), spec.num_brams);
  EXPECT_EQ(nl.count(PrimKind::Dsp), spec.num_dsps);
  EXPECT_EQ(nl.count(PrimKind::Input), spec.num_inputs);
  EXPECT_EQ(nl.count(PrimKind::Output), spec.num_outputs);
  EXPECT_LE(nl.count(PrimKind::Ff), spec.num_ffs);
}

TEST(Benchmarks, GenerationIsDeterministic) {
  const auto spec = scaled(vtr_suite()[14], 0.25);  // sha
  util::Rng a(7), b(7);
  const Netlist n1 = generate(spec, a);
  const Netlist n2 = generate(spec, b);
  ASSERT_EQ(n1.prims().size(), n2.prims().size());
  ASSERT_EQ(n1.nets().size(), n2.nets().size());
  for (std::size_t i = 0; i < n1.prims().size(); ++i) {
    EXPECT_EQ(n1.prims()[i].truth, n2.prims()[i].truth);
    EXPECT_EQ(n1.prims()[i].inputs, n2.prims()[i].inputs);
  }
}

TEST(Benchmarks, LutsHaveBoundedFanin) {
  util::Rng rng(1);
  const Netlist nl = generate(scaled(vtr_suite()[1], 0.1), rng);
  for (const auto& p : nl.prims()) {
    if (p.kind != PrimKind::Lut) continue;
    EXPECT_GE(p.inputs.size(), 2u);
    EXPECT_LE(p.inputs.size(), 6u);
    // Truth table must not be constant.
    const std::uint64_t mask =
        p.inputs.size() >= 6 ? ~0ULL : ((1ULL << (1 << p.inputs.size())) - 1);
    EXPECT_NE(p.truth & mask, 0ULL);
    EXPECT_NE(p.truth & mask, mask);
  }
}

TEST(Benchmarks, DepthIsRoughlyAsRequested) {
  // Walk the longest combinational LUT chain; it should be within a
  // couple of levels of the requested logic depth.
  util::Rng rng(3);
  auto spec = scaled(vtr_suite()[14], 0.25);  // sha, depth 11
  const Netlist nl = generate(spec, rng);
  std::vector<int> level(nl.prims().size(), 0);
  int max_level = 0;
  for (PrimId id : nl.topo_order()) {
    const auto& p = nl.prim(id);
    if (p.kind != PrimKind::Lut) continue;
    int lvl = 1;
    for (NetId in : p.inputs) {
      if (in == kNoNet) continue;
      lvl = std::max(lvl, level[static_cast<std::size_t>(nl.net(in).driver)] + 1);
    }
    level[static_cast<std::size_t>(id)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  EXPECT_GE(max_level, spec.logic_depth - 2);
  EXPECT_LE(max_level, spec.logic_depth + 2);
}

}  // namespace

// Property tests for the matrix-free blocked stencil backend
// (thermal/stencil_solver.hpp): operator symmetry / positive
// definiteness on random grids, bit-agreement between the blocked and
// naive traversals, bit-agreement between batched and sequential solves,
// SSOR preconditioner SPD-ness, and the preconditioner actually earning
// its keep (strictly fewer iterations than plain CG). This file is the
// one place outside src/thermal allowed to include the backend header
// (tools/taf-lint rule thermal-backend-seam).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "thermal/stencil_solver.hpp"
#include "util/rng.hpp"

namespace {

using namespace taf;
using thermal::StencilOp;
using thermal::StencilPreconditioner;
using thermal::StencilSolver;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

std::vector<double> random_vec(util::Rng& rng, int n, double lo = -1.0, double hi = 1.0) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = lo + (hi - lo) * rng.next_double();
  return v;
}

/// Random grid shapes including the degenerate single-row/column cases
/// the row kernels special-case.
struct Shape {
  int w, h;
};
const Shape kShapes[] = {{1, 1}, {1, 7}, {9, 1}, {2, 2},  {3, 5},
                         {8, 8}, {17, 9}, {33, 12}, {64, 64}};

TEST(StencilOp, IsSymmetricOnRandomGrids) {
  util::Rng rng(7);
  for (const Shape s : kShapes) {
    for (double g_c : {0.0, 0.37}) {
      const StencilOp op(s.w, s.h, 0.042, 2.03e-5, g_c);
      const int n = op.size();
      const auto x = random_vec(rng, n);
      const auto y = random_vec(rng, n);
      std::vector<double> ax(static_cast<std::size_t>(n)), ay(static_cast<std::size_t>(n));
      op.apply(x, ax);
      op.apply(y, ay);
      // <y, Ax> == <x, Ay> up to rounding of the two dot products.
      const double scale = std::max(1.0, std::abs(dot(y, ax)));
      EXPECT_NEAR(dot(y, ax), dot(x, ay), 1e-12 * scale)
          << s.w << "x" << s.h << " g_c=" << g_c;
    }
  }
}

TEST(StencilOp, IsPositiveDefiniteOnRandomGrids) {
  util::Rng rng(11);
  for (const Shape s : kShapes) {
    const StencilOp op(s.w, s.h, 0.042, 2.03e-5, 0.0);
    const int n = op.size();
    for (int trial = 0; trial < 4; ++trial) {
      const auto x = random_vec(rng, n);
      std::vector<double> ax(static_cast<std::size_t>(n));
      op.apply(x, ax);
      // Energy is at least g_vert * ||x||^2 (every tile leaks to ambient).
      EXPECT_GT(dot(x, ax), 0.99 * 2.03e-5 * dot(x, x)) << s.w << "x" << s.h;
    }
  }
}

TEST(StencilOp, BlockedApplyMatchesNaiveBitwise) {
  util::Rng rng(23);
  for (const Shape s : kShapes) {
    for (double g_c : {0.0, 1.7e-3}) {
      const StencilOp op(s.w, s.h, 0.042, 2.03e-5, g_c);
      const int n = op.size();
      const auto x = random_vec(rng, n, -10.0, 10.0);
      std::vector<double> blocked(static_cast<std::size_t>(n)),
          naive(static_cast<std::size_t>(n));
      op.apply(x.data(), blocked.data());
      op.apply_naive(x.data(), naive.data());
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(blocked[static_cast<std::size_t>(i)], naive[static_cast<std::size_t>(i)])
            << s.w << "x" << s.h << " g_c=" << g_c << " tile " << i;
      }
    }
  }
}

TEST(StencilOp, FusedApplyDotMatchesApplyBitwiseAndDotNumerically) {
  util::Rng rng(31);
  for (const Shape s : kShapes) {
    const StencilOp op(s.w, s.h, 0.042, 2.03e-5, 0.0);
    const int n = op.size();
    const auto x = random_vec(rng, n, -5.0, 5.0);
    std::vector<double> y_plain(static_cast<std::size_t>(n)),
        y_fused(static_cast<std::size_t>(n));
    op.apply(x.data(), y_plain.data());
    const double acc = op.apply_dot(x.data(), y_fused.data());
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(y_plain[static_cast<std::size_t>(i)], y_fused[static_cast<std::size_t>(i)]);
    }
    const double ref = dot(x, y_plain);
    EXPECT_NEAR(acc, ref, 1e-12 * std::max(1.0, std::abs(ref)));
  }
}

TEST(StencilSolver, SsorPreconditionerIsSymmetricPositiveDefinite) {
  util::Rng rng(43);
  for (const Shape s : kShapes) {
    for (double g_c : {0.0, 0.02}) {
      const StencilOp op(s.w, s.h, 0.042, 2.03e-5, g_c);
      const StencilSolver solver(op, StencilPreconditioner::Ssor);
      EXPECT_GT(solver.omega(), 0.0);
      EXPECT_LT(solver.omega(), 2.0);
      const int n = op.size();
      const auto r1 = random_vec(rng, n);
      const auto r2 = random_vec(rng, n);
      std::vector<double> z1(static_cast<std::size_t>(n)), z2(static_cast<std::size_t>(n));
      solver.precondition(r1.data(), z1.data());
      solver.precondition(r2.data(), z2.data());
      // Symmetry: <r2, M^-1 r1> == <r1, M^-1 r2> (up to rounding; the
      // sweeps reassociate, so this is a tolerance check, not bitwise).
      const double a = dot(r2, z1), b = dot(r1, z2);
      EXPECT_NEAR(a, b, 1e-10 * std::max(1.0, std::abs(a))) << s.w << "x" << s.h;
      // Positive definiteness: <r, M^-1 r> > 0 for r != 0.
      EXPECT_GT(dot(r1, z1), 0.0);
    }
  }
}

TEST(StencilSolver, TunedOmegaApproachesOneUnderDiagonalDominance) {
  // A large C/dt shift makes the system diagonally dominant; plain
  // symmetric Gauss-Seidel is then near-exact and over-relaxation would
  // only slow it down.
  const StencilOp steady(64, 64, 0.042, 2.03e-5, 0.0);
  const StencilOp transient(64, 64, 0.042, 2.03e-5, 100.0);
  EXPECT_GT(StencilSolver::tuned_omega(steady), 1.5);
  EXPECT_NEAR(StencilSolver::tuned_omega(transient), 1.0, 1e-2);
  // Degenerate decoupled grid (no lateral conductance): nothing to relax.
  const StencilOp decoupled(16, 16, 0.0, 2.03e-5, 0.0);
  EXPECT_EQ(StencilSolver::tuned_omega(decoupled), 1.0);
}

TEST(StencilSolver, SsorTakesStrictlyFewerIterationsThanPlainCgOn64x64) {
  const int w = 64, h = 64, n = w * h;
  const StencilOp op(w, h, 0.042, 2.03e-5, 0.0);
  std::vector<double> b(static_cast<std::size_t>(n), 1e-5);
  b[static_cast<std::size_t>(32 * w + 32)] = 0.5;
  const double floor_rr = n * std::pow(2.03e-5 * 1e-11, 2.0);
  int iters[3] = {0, 0, 0};
  const StencilPreconditioner pcs[3] = {StencilPreconditioner::None,
                                        StencilPreconditioner::Jacobi,
                                        StencilPreconditioner::Ssor};
  for (int k = 0; k < 3; ++k) {
    const StencilSolver solver(op, pcs[k]);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const auto info = solver.solve(b.data(), x.data(), 1e-20, floor_rr);
    iters[k] = info.iterations;
    EXPECT_GT(info.iterations, 0);
  }
  EXPECT_LT(iters[2], iters[0]) << "SSOR vs plain CG";
  // SSOR should not merely tie Jacobi either; it carries the smoothing.
  EXPECT_LT(iters[2], iters[1]) << "SSOR vs Jacobi";
}

TEST(StencilSolver, BatchedSolveIsBitIdenticalToSequentialSolves) {
  util::Rng rng(57);
  for (const Shape s : {Shape{5, 3}, Shape{17, 9}, Shape{32, 32}}) {
    const StencilOp op(s.w, s.h, 0.042, 2.03e-5, 0.0);
    const StencilSolver solver(op, StencilPreconditioner::Ssor);
    const int n = op.size();
    const int nrhs = 4;
    const double floor_rr = n * std::pow(2.03e-5 * 1e-11, 2.0);
    std::vector<double> b(static_cast<std::size_t>(nrhs * n));
    for (double& v : b) v = 1e-5 + 0.3 * rng.next_double();
    // Batched: all four systems in lockstep.
    std::vector<double> x_batch(static_cast<std::size_t>(nrhs * n), 0.0);
    const auto batch_info =
        solver.solve_batch(nrhs, b.data(), x_batch.data(), 1e-20, floor_rr);
    // Sequential: one at a time.
    for (int k = 0; k < nrhs; ++k) {
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const auto info =
          solver.solve(b.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n),
                       x.data(), 1e-20, floor_rr);
      EXPECT_EQ(info.iterations, batch_info[static_cast<std::size_t>(k)].iterations)
          << s.w << "x" << s.h << " rhs " << k;
      EXPECT_EQ(info.rr, batch_info[static_cast<std::size_t>(k)].rr);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(x[static_cast<std::size_t>(i)],
                  x_batch[static_cast<std::size_t>(k) * static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(i)])
            << s.w << "x" << s.h << " rhs " << k << " tile " << i;
      }
    }
  }
}

TEST(StencilSolver, ThrowsOnNonFiniteRhs) {
  const StencilOp op(4, 4, 0.042, 2.03e-5, 0.0);
  const StencilSolver solver(op);
  std::vector<double> b(16, 1.0), x(16, 0.0);
  b[7] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(solver.solve(b.data(), x.data(), 1e-20, 1e-30), std::invalid_argument);
}

TEST(StencilSolver, ThrowsOnCgBreakdownInsteadOfSilentNan) {
  // A zero operator (no lateral or vertical conductance) has no energy in
  // any direction: dot(p, Ap) == 0 and alpha would be a silent NaN. The
  // solver must refuse loudly — in release builds too.
  const StencilOp op(4, 4, 0.0, 0.0, 0.0);
  const StencilSolver solver(op, StencilPreconditioner::None);
  std::vector<double> b(16, 1.0), x(16, 0.0);
  EXPECT_THROW(solver.solve(b.data(), x.data(), 1e-20, 1e-30), std::runtime_error);
}

TEST(StencilSolver, SolveReachesTheRequestedFloor) {
  // The termination contract: the squared TRUE residual at exit is below
  // max(rr0 * rel_eps, abs_floor_rr). Verify against an independent
  // residual recomputation.
  const int w = 33, h = 12, n = w * h;
  const StencilOp op(w, h, 0.042, 2.03e-5, 0.0);
  const StencilSolver solver(op);
  std::vector<double> b(static_cast<std::size_t>(n), 1e-4);
  b[100] = 0.25;
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const double rr0 = dot(b, b);
  const double floor_rr = n * std::pow(2.03e-5 * 1e-11, 2.0);
  const auto info = solver.solve(b.data(), x.data(), 1e-20, floor_rr);
  std::vector<double> ax(static_cast<std::size_t>(n));
  op.apply(x.data(), ax.data());
  double rr = 0.0;
  for (int i = 0; i < n; ++i) {
    const double r = b[static_cast<std::size_t>(i)] - ax[static_cast<std::size_t>(i)];
    rr += r * r;
  }
  const double tol = std::max(rr0 * 1e-20, floor_rr);
  // The recurrence residual the solver terminates on meets tol exactly;
  // the independently recomputed one can sit slightly above it (classic
  // recurrence-vs-true drift), so allow a small factor.
  EXPECT_LE(info.rr, tol);
  EXPECT_LE(rr, 4.0 * tol);
}

}  // namespace

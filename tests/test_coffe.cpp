// Tests for the COFFE-like characterization flow: path evaluation,
// sizing, the BRAM model, and the full device characterization against
// the paper's Table II.

#include <gtest/gtest.h>

#include <cmath>

#include "arch/arch_params.hpp"
#include "coffe/bram_model.hpp"
#include "coffe/device_model.hpp"
#include "coffe/path_eval.hpp"
#include "coffe/path_spec.hpp"
#include "coffe/sizing.hpp"

namespace {

using namespace taf;
using namespace taf::coffe;

const tech::Technology& test_tech() {
  static const tech::Technology t = tech::ptm22();
  return t;
}
const arch::ArchParams& test_arch() {
  static const arch::ArchParams a = arch::paper_arch();
  return a;
}

/// Shared characterizer (construction sizes + calibrates, so reuse it).
const Characterizer& characterizer() {
  static const Characterizer ch(test_tech(), test_arch());
  return ch;
}

class PathKindTest : public ::testing::TestWithParam<ResourceKind> {};

TEST_P(PathKindTest, ElmoreDelayPositiveAndMonotonicInT) {
  const PathSpec spec = spec_for(GetParam(), test_arch());
  double prev = 0.0;
  for (double t = 0.0; t <= 100.0; t += 10.0) {
    const double d = elmore_delay_ps(spec, test_tech(), units::Celsius(t));
    EXPECT_GT(d, 0.0);
    EXPECT_GT(d, prev) << "delay must grow with temperature at T=" << t;
    prev = d;
  }
}

TEST_P(PathKindTest, SpiceAndElmoreAgreeWithinFactorTwo) {
  const PathSpec spec = spec_for(GetParam(), test_arch());
  const double e = elmore_delay_ps(spec, test_tech(), units::Celsius(25.0));
  const double s = spice_delay_ps(spec, test_tech(), units::Celsius(25.0));
  EXPECT_GT(s, 0.3 * e);
  EXPECT_LT(s, 2.0 * e);
}

TEST_P(PathKindTest, SpiceDelayGrowsWithTemperature) {
  const PathSpec spec = spec_for(GetParam(), test_arch());
  const double d0 = spice_delay_ps(spec, test_tech(), units::Celsius(0.0));
  const double d100 = spice_delay_ps(spec, test_tech(), units::Celsius(100.0));
  EXPECT_GT(d100, d0 * 1.1);
}

TEST_P(PathKindTest, SizingDoesNotWorsenCornerDelay) {
  SizingOptions opt;
  opt.t_opt_c = units::Celsius(25.0);
  const PathSpec base = spec_for(GetParam(), test_arch());
  const SizingResult r = size_path(base, test_tech(), opt);
  // The optimizer minimizes delay*area; the area-delay product must not
  // regress relative to the seed sizing.
  const double cost_before =
      elmore_delay_ps(base, test_tech(), units::Celsius(25.0)) * path_area_um2(base);
  const double cost_after = r.delay_ps * r.area_um2;
  EXPECT_LE(cost_after, cost_before * 1.0001);
  EXPECT_GT(r.evaluations, 0);
}

TEST_P(PathKindTest, LeakageGrowsWithTemperature) {
  const PathSpec spec = spec_for(GetParam(), test_arch());
  EXPECT_GT(leakage_uw(spec, test_tech(), units::Celsius(100.0)),
            leakage_uw(spec, test_tech(), units::Celsius(0.0)) * 2.0);
}

TEST_P(PathKindTest, DynamicPowerScalesLinearly) {
  const PathSpec spec = spec_for(GetParam(), test_arch());
  const double p1 = dynamic_power_uw(spec, test_tech(), 100.0, 0.5);
  const double p2 = dynamic_power_uw(spec, test_tech(), 200.0, 0.5);
  const double p3 = dynamic_power_uw(spec, test_tech(), 100.0, 1.0);
  EXPECT_NEAR(p2, 2.0 * p1, 1e-9);
  EXPECT_NEAR(p3, 2.0 * p1, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SoftAndDsp, PathKindTest,
                         ::testing::Values(ResourceKind::SbMux, ResourceKind::CbMux,
                                           ResourceKind::LocalMux,
                                           ResourceKind::FeedbackMux,
                                           ResourceKind::OutputMux, ResourceKind::Lut,
                                           ResourceKind::Dsp));

TEST(PathSpec, PolarityBookkeeping) {
  const PathSpec sb = sb_mux_spec(test_arch());
  int invs = 0;
  for (const auto& s : sb.stages)
    if (s.kind == StageKind::Inverter) ++invs;
  EXPECT_EQ(sb.num_inverters(), invs);
  EXPECT_EQ(sb.output_same_polarity(), invs % 2 == 0);
}

TEST(PathSpec, AreaGrowsWithWidths) {
  PathSpec spec = lut_spec(test_arch());
  const double a0 = path_area_um2(spec);
  for (auto& s : spec.stages) s.w_um *= 2.0;
  EXPECT_GT(path_area_um2(spec), a0);
}

TEST(Bram, DelayMonotonicInTemperature) {
  const BramDesign d = size_bram(test_tech(), test_arch(), units::Celsius(25.0));
  double prev = 0.0;
  for (double t = 0.0; t <= 100.0; t += 10.0) {
    const double ps = bram_delay_ps(d, test_tech(), test_arch(), units::Celsius(t));
    EXPECT_GT(ps, prev);
    prev = ps;
  }
}

TEST(Bram, HotCornerCellIsLarger) {
  const BramDesign cold = size_bram(test_tech(), test_arch(), units::Celsius(0.0));
  const BramDesign hot = size_bram(test_tech(), test_arch(), units::Celsius(100.0));
  EXPECT_GT(hot.cell_w, cold.cell_w * 1.3);
  EXPECT_GT(hot.swing_v, cold.swing_v);
}

TEST(Bram, CornerMatrixMatchesPaperShape) {
  // Fig. 2: the 100C-optimized BRAM is ~1.35x slower at 0C than the
  // 0C-optimized one; at 100C the relation flips.
  const BramDesign d0 = size_bram(test_tech(), test_arch(), units::Celsius(0.0));
  const BramDesign d100 = size_bram(test_tech(), test_arch(), units::Celsius(100.0));
  const double at0_d0 = bram_delay_ps(d0, test_tech(), test_arch(), units::Celsius(0.0));
  const double at0_d100 = bram_delay_ps(d100, test_tech(), test_arch(), units::Celsius(0.0));
  EXPECT_GT(at0_d100 / at0_d0, 1.15);
  EXPECT_LT(at0_d100 / at0_d0, 1.60);
  const double at100_d0 = bram_delay_ps(d0, test_tech(), test_arch(), units::Celsius(100.0));
  const double at100_d100 = bram_delay_ps(d100, test_tech(), test_arch(), units::Celsius(100.0));
  EXPECT_GT(at100_d0 / at100_d100, 1.02);
}

TEST(Bram, WeakestCellIsWorseThanNominal) {
  util::Rng rng(99);
  const double worst =
      weakest_cell_leakage_na(test_tech(), test_arch(), units::Celsius(25.0), rng, 2000);
  // Nominal min-width LP cell off current.
  const double nominal =
      test_tech().flavor(tech::Flavor::LP).i_off25 * 0.4;
  EXPECT_GT(worst, 3.0 * nominal);
}

TEST(Bram, WeakestCellMonteCarloIsDeterministic) {
  util::Rng a(7), b(7);
  EXPECT_DOUBLE_EQ(weakest_cell_leakage_na(test_tech(), test_arch(), units::Celsius(50.0), a, 500),
                   weakest_cell_leakage_na(test_tech(), test_arch(), units::Celsius(50.0), b, 500));
}

TEST(Characterize, Table2IntercapturedAt25) {
  // The calibration ties our D25 characterization to the paper's Table II
  // at 25C; verify every resource lands within 3%.
  const DeviceModel d25 = characterizer().characterize(units::Celsius(25.0));
  const DeviceModel paper = Characterizer::paper_table2_reference();
  for (ResourceKind k : all_resource_kinds()) {
    const double ours = d25.delay(k, units::Celsius(25.0)).value();
    const double target = paper.delay(k, units::Celsius(25.0)).value();
    EXPECT_NEAR(ours / target, 1.0, 0.03) << resource_name(k);
    EXPECT_NEAR(d25.at(k).pdyn_uw_100mhz / paper.at(k).pdyn_uw_100mhz, 1.0, 0.03)
        << resource_name(k);
    EXPECT_NEAR(d25.leakage(k, units::Celsius(25.0)).value() / paper.leakage(k, units::Celsius(25.0)).value(), 1.0, 0.05)
        << resource_name(k);
  }
}

TEST(Characterize, DelayFitsAreTight) {
  const DeviceModel d25 = characterizer().characterize(units::Celsius(25.0));
  for (ResourceKind k : all_resource_kinds()) {
    EXPECT_GT(d25.at(k).delay_ps.r2, 0.95) << resource_name(k);
    EXPECT_GT(d25.at(k).delay_ps.slope, 0.0) << resource_name(k);
  }
}

TEST(Characterize, SensitivityOrderingMatchesFig1) {
  // Fig. 1: DSP is the most temperature-sensitive resource and the
  // representative CP the least among {CP, BRAM, DSP}.
  const DeviceModel d25 = characterizer().characterize(units::Celsius(25.0));
  auto sens = [&](double lo, double hi) { return hi / lo - 1.0; };
  const double cp = sens(d25.rep_cp_delay(units::Celsius(0)).value(), d25.rep_cp_delay(units::Celsius(100)).value());
  const double dsp = sens(d25.delay(ResourceKind::Dsp, units::Celsius(0)).value(),
                          d25.delay(ResourceKind::Dsp, units::Celsius(100)).value());
  EXPECT_GT(dsp, cp);
  EXPECT_GT(cp, 0.35);
  EXPECT_LT(cp, 0.90);
}

TEST(Characterize, CornerCrossoverExists) {
  // Fig. 3: D0 is fastest at 0C, D100 fastest at 100C.
  const DeviceModel d0 = characterizer().characterize(units::Celsius(0.0));
  const DeviceModel d100 = characterizer().characterize(units::Celsius(100.0));
  EXPECT_LT(d0.rep_cp_delay(units::Celsius(0.0)).value(), d100.rep_cp_delay(units::Celsius(0.0)).value());
  EXPECT_GT(d0.rep_cp_delay(units::Celsius(100.0)).value(), d100.rep_cp_delay(units::Celsius(100.0)).value());
}

TEST(Characterize, ExpectedDelayMatchesMidpointForLinearFits) {
  const DeviceModel d25 = characterizer().characterize(units::Celsius(25.0));
  const double expected = d25.expected_cp_delay(units::Celsius(0.0), units::Celsius(100.0)).value();
  const double midpoint = d25.rep_cp_delay(units::Celsius(50.0)).value();
  EXPECT_NEAR(expected / midpoint, 1.0, 0.01);
}

TEST(Characterize, PaperReferenceRoundTrips) {
  const DeviceModel paper = Characterizer::paper_table2_reference();
  EXPECT_NEAR(paper.delay(ResourceKind::SbMux, units::Celsius(50.0)).value(), 166.0 + 0.67 * 50.0, 1e-9);
  EXPECT_NEAR(paper.leakage(ResourceKind::Lut, units::Celsius(0.0)).value(), 2.5, 1e-9);
  EXPECT_NEAR(paper.at(ResourceKind::Dsp).pdyn_uw_100mhz, 879.0, 1e-9);
}

TEST(Characterize, DynPowerScalesWithFrequencyAndActivity) {
  const DeviceModel d25 = characterizer().characterize(units::Celsius(25.0));
  const double base = d25.dyn_power(ResourceKind::SbMux, units::Megahertz(100.0), 1.0).value();
  EXPECT_NEAR(d25.dyn_power(ResourceKind::SbMux, units::Megahertz(200.0), 0.5).value(), base, 1e-9);
}

TEST(Sizing, HigherAreaWeightShrinksArea) {
  SizingOptions cheap;
  cheap.t_opt_c = units::Celsius(25.0);
  cheap.area_weight = 2.0;
  SizingOptions fast;
  fast.t_opt_c = units::Celsius(25.0);
  fast.area_weight = 0.25;
  const PathSpec base = sb_mux_spec(test_arch());
  const SizingResult small = size_path(base, test_tech(), cheap);
  const SizingResult big = size_path(base, test_tech(), fast);
  EXPECT_LE(small.area_um2, big.area_um2);
  EXPECT_GE(small.delay_ps, big.delay_ps * 0.999);
}

TEST(Sizing, DiscreteSizesSnapToLadder) {
  SizingOptions opt;
  opt.t_opt_c = units::Celsius(25.0);
  const SizingResult r = size_path(dsp_spec(test_arch()), test_tech(), opt);
  for (const Stage& s : r.spec.stages) {
    if (s.kind != StageKind::Inverter || !s.sizable) continue;
    const double log2w = std::log2(s.w_um);
    EXPECT_NEAR(log2w, std::round(log2w), 1e-9) << "w=" << s.w_um;
  }
}

}  // namespace

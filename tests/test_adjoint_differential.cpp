// Differential test for ThermalGrid::solve_adjoint (DESIGN.md section
// 15): the adjoint gradient d(smooth peak T)/d(tile power) must match a
// central finite difference of the smooth-max peak on every VTR suite
// benchmark's real routed power map, under both thermal backends. The
// smooth peak S(P) = Tmax + tau * log sum exp((Ti - Tmax)/tau) over
// T = Tamb + A^-1 P is nearly linear in P, so central differences at a
// small step agree with the exact gradient to the curvature term
// O((eps * lambda / tau)^2) plus solver noise O(tol / eps) — both far
// below the 1e-3 relative tolerance asserted here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/flow.hpp"
#include "netlist/benchmarks.hpp"
#include "power/power.hpp"
#include "runner/flow_cache.hpp"
#include "thermal/thermal_grid.hpp"

namespace {

using namespace taf;
using thermal::ThermalBackend;
using thermal::ThermalConfig;
using thermal::ThermalGrid;

constexpr double kScale = 1.0 / 16;
constexpr double kTauK = 0.05;

const arch::ArchParams& test_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

/// Tiles to probe: the peak-power tile, the minimum, the die centre, and
/// two index strides — gradient checks at hot, cold and ordinary sites.
std::vector<int> probe_tiles(const std::vector<double>& power) {
  const int n = static_cast<int>(power.size());
  std::vector<int> tiles;
  tiles.push_back(static_cast<int>(
      std::max_element(power.begin(), power.end()) - power.begin()));
  tiles.push_back(static_cast<int>(
      std::min_element(power.begin(), power.end()) - power.begin()));
  tiles.push_back(n / 2);
  tiles.push_back(n / 3);
  tiles.push_back((2 * n) / 3);
  std::sort(tiles.begin(), tiles.end());
  tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());
  return tiles;
}

TEST(AdjointDifferential, MatchesCentralFiniteDifferenceOnEveryBenchmark) {
  auto& cache = runner::FlowCache::global();
  const tech::Technology tech = tech::ptm22();
  const coffe::DeviceModel& dev = cache.device(tech, test_arch(), 25.0);

  for (const auto& spec : netlist::vtr_suite()) {
    const core::Implementation& impl =
        cache.implementation(spec, test_arch(), kScale);
    const std::vector<double> temps(
        static_cast<std::size_t>(impl.grid.num_tiles()), 60.0);
    const power::PowerBreakdown power = power::compute_power(
        dev, impl.nl, impl.packed, impl.placement, impl.rr, impl.routes,
        impl.activity, units::Megahertz(100.0), temps, impl.grid);

    for (ThermalBackend backend :
         {ThermalBackend::Generic, ThermalBackend::Stencil}) {
      SCOPED_TRACE(std::string(spec.name) + " / " +
                   (backend == ThermalBackend::Generic ? "generic" : "stencil"));
      ThermalConfig cfg;
      cfg.backend = backend;
      const ThermalGrid grid(impl.grid, cfg);

      const thermal::AdjointResult adj =
          grid.solve_adjoint(power.tile_w, units::Kelvin(kTauK));
      ASSERT_EQ(adj.dpeak_dp_k_per_w.size(), power.tile_w.size());

      // Softmax weights sum to one, so the gradient's total mass through
      // the (diagonally dominant SPD) operator is bounded by the package
      // path: 0 < dS/dP_i, and sum_i g_vert * dS/dP_i >= ... — assert the
      // cheap invariants before the expensive FD probes.
      for (double g : adj.dpeak_dp_k_per_w) {
        ASSERT_GT(g, 0.0);
        ASSERT_TRUE(std::isfinite(g));
      }

      const double eps = 1e-4;  // watts
      for (int tile : probe_tiles(power.tile_w)) {
        std::vector<double> plus = power.tile_w, minus = power.tile_w;
        plus[static_cast<std::size_t>(tile)] += eps;
        minus[static_cast<std::size_t>(tile)] -= eps;
        const double s_plus =
            grid.solve_adjoint(plus, units::Kelvin(kTauK)).smooth_peak_c.value();
        const double s_minus =
            grid.solve_adjoint(minus, units::Kelvin(kTauK)).smooth_peak_c.value();
        const double fd = (s_plus - s_minus) / (2.0 * eps);
        const double exact = adj.dpeak_dp_k_per_w[static_cast<std::size_t>(tile)];
        EXPECT_NEAR(exact, fd, 1e-4 + 1e-3 * std::abs(fd)) << "tile " << tile;
      }
    }
  }
}

TEST(AdjointDifferential, SmoothPeakDominatesTruePeak) {
  // LSE smooth-max upper-bounds the true max and approaches it as tau->0.
  const arch::FpgaGrid fg(17, 9);
  ThermalConfig cfg;
  const ThermalGrid grid(fg, cfg);
  std::vector<double> p(static_cast<std::size_t>(fg.num_tiles()), 1e-4);
  p[40] = 0.3;

  const auto adj = grid.solve_adjoint(p, units::Kelvin(kTauK));
  const double t_max =
      *std::max_element(adj.temp_c.begin(), adj.temp_c.end());
  EXPECT_GE(adj.smooth_peak_c.value(), t_max);
  const auto tighter = grid.solve_adjoint(p, units::Kelvin(0.005));
  EXPECT_LE(tighter.smooth_peak_c.value() - t_max,
            adj.smooth_peak_c.value() - t_max);
}

TEST(AdjointDifferential, RejectsInvalidTau) {
  const arch::FpgaGrid fg(9, 4);
  const ThermalGrid grid(fg, ThermalConfig{});
  const std::vector<double> p(static_cast<std::size_t>(fg.num_tiles()), 1e-3);
  for (double tau : {0.0, -1.0, std::nan(""),
                     std::numeric_limits<double>::infinity()}) {
    EXPECT_THROW(grid.solve_adjoint(p, units::Kelvin(tau)), std::invalid_argument)
        << "tau = " << tau;
  }
}

}  // namespace

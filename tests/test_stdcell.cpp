// Tests for the std-cell liberty characterization flow (the paper's
// SiliconSmart + Design Compiler substitute for the DSP block).

#include <gtest/gtest.h>

#include "coffe/stdcell.hpp"

namespace {

using namespace taf;
using namespace taf::coffe::stdcell;

const tech::Technology& test_tech() {
  static const tech::Technology t = tech::ptm22();
  return t;
}

const Liberty& lib25() {
  static const Liberty lib = characterize_library(test_tech(), units::Celsius(25.0));
  return lib;
}

class CellTypeTest : public ::testing::TestWithParam<CellType> {};

TEST_P(CellTypeTest, ArcIsPhysical) {
  const CellTiming& a = lib25().arc(GetParam(), 0);
  EXPECT_GT(a.intrinsic_ps, 0.0);
  EXPECT_GT(a.slope_ps_per_ff, 0.0);
  EXPECT_GT(a.input_cap_ff, 0.0);
  EXPECT_GT(a.leakage_nw, 0.0);
}

TEST_P(CellTypeTest, StrongerDrivesAreFasterUnderLoad) {
  // At a heavy load the X4 cell must beat the X1 cell.
  const double load = 20.0;
  const double x1 = lib25().arc(GetParam(), 0).delay_ps(load);
  const double x4 = lib25().arc(GetParam(), 2).delay_ps(load);
  EXPECT_LT(x4, x1);
}

TEST_P(CellTypeTest, StrongerDrivesCostInputCap) {
  EXPECT_GT(lib25().arc(GetParam(), 2).input_cap_ff,
            lib25().arc(GetParam(), 0).input_cap_ff);
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellTypeTest,
                         ::testing::Values(CellType::Inv, CellType::Nand2,
                                           CellType::Nor2, CellType::And3,
                                           CellType::Xor2, CellType::FaCarry));

TEST(StdCell, ComplexityOrderingAtFixedLoad) {
  // INV < NAND2 < AND3 and NAND2 < XOR2: stack depth and compound
  // structure must show up in the intrinsic delay.
  const double load = 6.0;
  const double inv = lib25().arc(CellType::Inv, 0).delay_ps(load);
  const double nand2 = lib25().arc(CellType::Nand2, 0).delay_ps(load);
  const double and3 = lib25().arc(CellType::And3, 0).delay_ps(load);
  const double xor2 = lib25().arc(CellType::Xor2, 0).delay_ps(load);
  EXPECT_LT(inv, nand2);
  EXPECT_LT(nand2, and3);
  EXPECT_LT(nand2, xor2);
}

TEST(StdCell, HotterLibraryIsSlower) {
  const Liberty hot = characterize_library(test_tech(), units::Celsius(100.0));
  for (int t = 0; t < kNumCellTypes; ++t) {
    const auto type = static_cast<CellType>(t);
    EXPECT_GT(hot.arc(type, 0).delay_ps(6.0), lib25().arc(type, 0).delay_ps(6.0) * 1.2)
        << cell_name(type);
  }
}

TEST(StdCell, MacPathDelayIsSumOfArcs) {
  const auto path = mac27_critical_path();
  const double total = sta_path_delay_ps(path, lib25());
  EXPECT_GT(total, 100.0);
  EXPECT_LT(total, 2000.0);
  // Removing a gate must reduce the delay.
  auto shorter = path;
  shorter.pop_back();
  EXPECT_LT(sta_path_delay_ps(shorter, lib25()), total);
}

TEST(StdCell, SynthesisImprovesOnUnitDrives) {
  const auto unit = mac27_critical_path();
  const auto synth = synthesize_mac(test_tech(), units::Celsius(25.0));
  EXPECT_LE(sta_path_delay_ps(synth, lib25()), sta_path_delay_ps(unit, lib25()) + 1e-9);
}

TEST(StdCell, TemperatureSensitivityMatchesDspRow) {
  // The liberty sweep over the synthesized MAC must land near Table II's
  // DSP temperature sensitivity (+81% over 0..100C).
  const auto path = synthesize_mac(test_tech(), units::Celsius(25.0));
  const Liberty lib0 = characterize_library(test_tech(), units::Celsius(0.0));
  const Liberty lib100 = characterize_library(test_tech(), units::Celsius(100.0));
  const double ratio =
      sta_path_delay_ps(path, lib100) / sta_path_delay_ps(path, lib0);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.1);
}

}  // namespace

// Golden regression for the characterized Table II: the per-resource
// area, dynamic power, and delay/leakage values at the five temperature
// corners are snapshotted in tests/golden/table2.json and must reproduce
// within 0.5%. This pins the full characterization pipeline (sizing,
// calibration scales, Elmore sweep, fits) against silent drift.
//
// Regenerate the snapshot after an intentional model change with:
//   TAF_UPDATE_GOLDEN=1 ./test_golden_table2

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/env.hpp"
#include "coffe/device_model.hpp"

#ifndef TAF_GOLDEN_DIR
#error "TAF_GOLDEN_DIR must point at the tests/golden source directory"
#endif

namespace {

using namespace taf;

const double kCorners[] = {0.0, 25.0, 45.0, 70.0, 100.0};
constexpr double kRelTol = 0.005;  // 0.5%

std::string golden_path() { return std::string(TAF_GOLDEN_DIR) + "/table2.json"; }

/// Flat view of the snapshot: "<resource>.<field>[<index>]" -> value.
using FlatGolden = std::map<std::string, double>;

FlatGolden flatten(const coffe::DeviceModel& dev) {
  FlatGolden flat;
  for (coffe::ResourceKind k : coffe::all_resource_kinds()) {
    const std::string base = coffe::resource_name(k);
    const coffe::ResourceChar& rc = dev.at(k);
    flat[base + ".area_um2"] = rc.area_um2;
    flat[base + ".pdyn_uw_100mhz"] = rc.pdyn_uw_100mhz;
    for (std::size_t i = 0; i < std::size(kCorners); ++i) {
      flat[base + ".delay_ps[" + std::to_string(i) + "]"] = dev.delay(k, units::Celsius(kCorners[i])).value();
      flat[base + ".plkg_uw[" + std::to_string(i) + "]"] = dev.leakage(k, units::Celsius(kCorners[i])).value();
    }
  }
  return flat;
}

void write_golden(const coffe::DeviceModel& dev) {
  std::ofstream out(golden_path());
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
  out.precision(12);
  out << "{\n  \"t_opt_c\": " << dev.t_opt_c.value() << ",\n  \"corners_c\": [";
  for (std::size_t i = 0; i < std::size(kCorners); ++i)
    out << (i ? ", " : "") << kCorners[i];
  out << "],\n  \"resources\": {\n";
  const auto kinds = coffe::all_resource_kinds();
  for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
    const coffe::ResourceKind k = kinds[ki];
    const coffe::ResourceChar& rc = dev.at(k);
    out << "    \"" << coffe::resource_name(k) << "\": {\n";
    out << "      \"area_um2\": " << rc.area_um2 << ",\n";
    out << "      \"pdyn_uw_100mhz\": " << rc.pdyn_uw_100mhz << ",\n";
    out << "      \"delay_ps\": [";
    for (std::size_t i = 0; i < std::size(kCorners); ++i)
      out << (i ? ", " : "") << dev.delay(k, units::Celsius(kCorners[i])).value();
    out << "],\n      \"plkg_uw\": [";
    for (std::size_t i = 0; i < std::size(kCorners); ++i)
      out << (i ? ", " : "") << dev.leakage(k, units::Celsius(kCorners[i])).value();
    out << "]\n    }" << (ki + 1 < kinds.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

/// Minimal JSON reader for the snapshot's fixed shape: walks the
/// "resources" object and flattens scalar and array number fields.
void read_golden(FlatGolden& flat) {
  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (regenerate with TAF_UPDATE_GOLDEN=1)";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  // Tokenize: strings, numbers, punctuation.
  std::size_t pos = text.find("\"resources\"");
  ASSERT_NE(pos, std::string::npos) << "malformed golden file";
  std::string resource, field;
  int depth = 0;       // object depth below "resources"
  int array_idx = -1;  // inside an array when >= 0
  while (pos < text.size()) {
    const char ch = text[pos];
    if (ch == '"') {
      const std::size_t end = text.find('"', pos + 1);
      ASSERT_NE(end, std::string::npos);
      const std::string name = text.substr(pos + 1, end - pos - 1);
      if (depth == 1) resource = name;
      if (depth == 2) field = name;
      pos = end + 1;
      continue;
    }
    if (ch == '{') ++depth;
    if (ch == '}') {
      if (--depth == 0) break;  // end of "resources"
    }
    if (ch == '[') array_idx = 0;
    if (ch == ']') array_idx = -1;
    if (ch == '-' || std::isdigit(static_cast<unsigned char>(ch))) {
      std::size_t used = 0;
      const double v = std::stod(text.substr(pos), &used);
      std::string key = resource + "." + field;
      if (array_idx >= 0) {
        key += "[" + std::to_string(array_idx) + "]";
        ++array_idx;
      }
      flat[key] = v;
      pos += used;
      continue;
    }
    ++pos;
  }
}

TEST(GoldenTable2, CharacterizationReproducesSnapshot) {
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const coffe::DeviceModel dev = ch.characterize(units::Celsius(25.0));
  const FlatGolden actual = flatten(dev);

  if (util::env_set("TAF_UPDATE_GOLDEN")) {
    write_golden(dev);
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  FlatGolden expected;
  read_golden(expected);
  if (::testing::Test::HasFatalFailure()) return;

  for (const auto& [key, want] : actual) {
    const auto it = expected.find(key);
    ASSERT_NE(it, expected.end()) << "golden file lacks " << key
                                  << " (regenerate with TAF_UPDATE_GOLDEN=1)";
    const double got = it->second;
    EXPECT_NEAR(want, got, kRelTol * std::max(std::fabs(got), 1e-12))
        << key << " drifted: golden=" << got << " current=" << want;
  }
  EXPECT_EQ(actual.size(), expected.size()) << "golden file has stale extra entries";
}

}  // namespace

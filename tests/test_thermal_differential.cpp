// Differential tests for the thermal backends: the blocked stencil PCG
// (the hot path) against the retained generic CG oracle — same role as
// the spice dense-MNA / guardband incremental differential suites. Both
// backends honour one termination contract (squared true residual vs
// max(rr0 * 1e-20, n * (g_diag * solve_tol_k)^2)), so their temperature
// fields must agree per tile to within the sum of their reported
// residuals divided by the weakest per-tile conductance — the rigorous
// error bound the contract buys — on every grid shape, ambient corner,
// power pattern and start the flow exercises, and the full guardband
// loop must produce matching results under either backend.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "util/rng.hpp"

namespace {

using namespace taf;
using thermal::CgStats;
using thermal::ThermalBackend;
using thermal::ThermalConfig;
using thermal::ThermalGrid;

ThermalConfig config_for(ThermalBackend backend, double t_amb_c = 25.0) {
  ThermalConfig cfg;
  cfg.ambient_c = units::Celsius(t_amb_c);
  cfg.backend = backend;
  return cfg;
}

struct Pattern {
  const char* name;
  std::vector<double> power;
};

std::vector<Pattern> patterns_for(int n, util::Rng& rng) {
  std::vector<Pattern> ps;
  ps.push_back({"uniform", std::vector<double>(static_cast<std::size_t>(n), 1e-4)});
  Pattern hotspot{"hotspot", std::vector<double>(static_cast<std::size_t>(n), 1e-5)};
  hotspot.power[static_cast<std::size_t>(n / 2)] = 0.5;
  hotspot.power[static_cast<std::size_t>(n / 3)] = 0.25;
  ps.push_back(std::move(hotspot));
  Pattern random{"random", std::vector<double>(static_cast<std::size_t>(n))};
  for (double& w : random.power) w = 2e-3 * rng.next_double();
  ps.push_back(std::move(random));
  return ps;
}

/// Per-tile bound the shared termination contract guarantees: each
/// backend's solution error is at most ||r||_2 / lambda_min, and
/// lambda_min >= the weakest per-tile conductance of the operator.
double contract_bound(const CgStats& a, const CgStats& b, double g_min) {
  return (a.residual_norm_w.value() + b.residual_norm_w.value()) / g_min + 1e-12;
}

TEST(ThermalBackendDifferential, SteadySolvesAgreeAcrossGridsAmbientsAndPatterns) {
  util::Rng rng(101);
  const int shapes[][2] = {{1, 1}, {9, 4}, {17, 9}, {32, 32}, {64, 64}};
  for (const auto& shape : shapes) {
    const int w = shape[0], h = shape[1], n = w * h;
    const arch::FpgaGrid fg(w, h);
    for (double t_amb : {25.0, 70.0}) {
      const ThermalGrid generic(fg, config_for(ThermalBackend::Generic, t_amb));
      const ThermalGrid stencil(fg, config_for(ThermalBackend::Stencil, t_amb));
      for (const Pattern& pat : patterns_for(n, rng)) {
        SCOPED_TRACE(std::to_string(w) + "x" + std::to_string(h) + " " + pat.name +
                     " @ " + std::to_string(t_amb) + "C");
        CgStats sg, ss;
        const auto tg = generic.solve(pat.power, &sg);
        const auto ts = stencil.solve(pat.power, &ss);
        EXPECT_FALSE(sg.preconditioned);
        EXPECT_TRUE(ss.preconditioned);
        const double bound = contract_bound(sg, ss, generic.vertical_g());
        for (int i = 0; i < n; ++i) {
          ASSERT_NEAR(tg[static_cast<std::size_t>(i)], ts[static_cast<std::size_t>(i)],
                      bound)
              << "tile " << i;
        }
      }
    }
  }
}

TEST(ThermalBackendDifferential, WarmStartedSolvesAgree) {
  util::Rng rng(211);
  const arch::FpgaGrid fg(32, 32);
  const int n = 32 * 32;
  const ThermalGrid generic(fg, config_for(ThermalBackend::Generic));
  const ThermalGrid stencil(fg, config_for(ThermalBackend::Stencil));
  const auto pats = patterns_for(n, rng);
  // Warm-start each pattern's solve from the previous pattern's field,
  // like the Algorithm 1 loop warm-starts from the prior iterate.
  std::vector<double> warm_g(static_cast<std::size_t>(n), 25.0);
  std::vector<double> warm_s = warm_g;
  for (const Pattern& pat : pats) {
    SCOPED_TRACE(pat.name);
    CgStats sg, ss;
    warm_g = generic.solve(pat.power, warm_g, &sg);
    warm_s = stencil.solve(pat.power, warm_s, &ss);
    const double bound = contract_bound(sg, ss, generic.vertical_g());
    for (int i = 0; i < n; ++i) {
      ASSERT_NEAR(warm_g[static_cast<std::size_t>(i)], warm_s[static_cast<std::size_t>(i)],
                  bound)
          << "tile " << i;
    }
  }
}

TEST(ThermalBackendDifferential, TransientTracesAgree) {
  util::Rng rng(307);
  const arch::FpgaGrid fg(17, 9);
  const int n = 17 * 9;
  const ThermalGrid generic(fg, config_for(ThermalBackend::Generic));
  const ThermalGrid stencil(fg, config_for(ThermalBackend::Stencil));
  std::vector<double> p(static_cast<std::size_t>(n));
  for (double& w : p) w = 1e-3 * rng.next_double();
  const double tau = generic.tile_time_constant().value();
  for (double dt_frac : {1.0, 0.01}) {
    SCOPED_TRACE("dt = tau * " + std::to_string(dt_frac));
    std::vector<double> tg(static_cast<std::size_t>(n), 25.0);
    std::vector<double> ts = tg;
    const units::Seconds dt(tau * dt_frac);
    const double g_aug = generic.vertical_g() * (1.0 + 1.0 / dt_frac);
    for (int step = 0; step < 8; ++step) {
      CgStats sg, ss;
      generic.step(p, dt, tg, &sg);
      stencil.step(p, dt, ts, &ss);
      // Per-step agreement through the augmented operator's conductance;
      // the per-step bounds accumulate along the trace.
      const double bound = (step + 1) * contract_bound(sg, ss, g_aug);
      for (int i = 0; i < n; ++i) {
        ASSERT_NEAR(tg[static_cast<std::size_t>(i)], ts[static_cast<std::size_t>(i)],
                    bound)
            << "step " << step << " tile " << i;
      }
    }
  }
}

TEST(ThermalBackendDifferential, BatchedSolveIsBitIdenticalToPerMapSolvesOnBothBackends) {
  util::Rng rng(401);
  const arch::FpgaGrid fg(17, 9);
  const int n = 17 * 9;
  std::vector<std::vector<double>> maps;
  for (int k = 0; k < 3; ++k) {
    std::vector<double> p(static_cast<std::size_t>(n));
    for (double& w : p) w = 2e-3 * rng.next_double();
    maps.push_back(std::move(p));
  }
  for (const auto backend : {ThermalBackend::Generic, ThermalBackend::Stencil}) {
    SCOPED_TRACE(thermal::thermal_backend_name(backend));
    const ThermalGrid grid(fg, config_for(backend));
    std::vector<CgStats> batch_stats;
    const auto batch = grid.solve_batch(maps, &batch_stats);
    ASSERT_EQ(batch.size(), maps.size());
    ASSERT_EQ(batch_stats.size(), maps.size());
    for (std::size_t k = 0; k < maps.size(); ++k) {
      CgStats solo;
      const auto t = grid.solve(maps[k], &solo);
      EXPECT_EQ(solo.iterations, batch_stats[k].iterations) << "map " << k;
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(t[static_cast<std::size_t>(i)], batch[k][static_cast<std::size_t>(i)])
            << "map " << k << " tile " << i;
      }
    }
  }
}

TEST(ThermalBackendDifferential, StencilNeedsFewerIterationsThanGenericOn64x64) {
  // The preconditioner must actually buy convergence on a flow-sized
  // steady solve, and the stats must say so.
  const arch::FpgaGrid fg(64, 64);
  std::vector<double> p(64 * 64, 1e-5);
  p[32 * 64 + 32] = 0.5;
  CgStats sg, ss;
  ThermalGrid(fg, config_for(ThermalBackend::Generic)).solve(p, &sg);
  ThermalGrid(fg, config_for(ThermalBackend::Stencil)).solve(p, &ss);
  EXPECT_GT(sg.iterations, 0);
  EXPECT_GT(ss.iterations, 0);
  EXPECT_LT(ss.iterations, sg.iterations);
}

// ---------- guardband-level: the whole Algorithm 1 loop ----------

const arch::ArchParams& test_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

const coffe::DeviceModel& device() {
  static const coffe::DeviceModel dev =
      coffe::Characterizer(tech::ptm22(), test_arch()).characterize(units::Celsius(25.0));
  return dev;
}

core::GuardbandOptions backend_options(double t_amb_c, ThermalBackend backend) {
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(t_amb_c);
  opt.delta_t_c = units::Kelvin(0.2);  // stricter than default so the loop iterates
  opt.thermal.backend = backend;
  return opt;
}

class ThermalBackendGuardband : public ::testing::TestWithParam<int> {};

TEST_P(ThermalBackendGuardband, GuardbandMatchesAcrossBackendsAtBothAmbients) {
  const netlist::BenchmarkSpec spec =
      netlist::scaled(netlist::vtr_suite()[static_cast<std::size_t>(GetParam())], 1.0 / 16);
  const auto impl = core::implement(spec, test_arch());
  for (double t_amb : {25.0, 70.0}) {
    SCOPED_TRACE(spec.name + " @ " + std::to_string(t_amb) + "C");
    const auto gen =
        core::guardband(*impl, device(), backend_options(t_amb, ThermalBackend::Generic));
    const auto stn =
        core::guardband(*impl, device(), backend_options(t_amb, ThermalBackend::Stencil));
    EXPECT_EQ(gen.iterations, stn.iterations);
    EXPECT_EQ(gen.converged, stn.converged);
    // The baseline corner does no thermal solve: bitwise equal.
    EXPECT_DOUBLE_EQ(gen.baseline_fmax_mhz.value(), stn.baseline_fmax_mhz.value());
    // Per-solve fields agree within the termination contract; the loop
    // feeds temperature back through leakage, so allow an order of
    // magnitude over the incremental suite's 1e-9 single-engine contract.
    ASSERT_EQ(gen.tile_temp_c.size(), stn.tile_temp_c.size());
    for (std::size_t i = 0; i < gen.tile_temp_c.size(); ++i) {
      ASSERT_NEAR(gen.tile_temp_c[i], stn.tile_temp_c[i], 1e-8) << "tile " << i;
    }
    EXPECT_NEAR(gen.fmax_mhz.value(), stn.fmax_mhz.value(), 1e-6);
    EXPECT_NEAR(gen.peak_temp_c.value(), stn.peak_temp_c.value(), 1e-8);
    // Only the stencil run reports preconditioned iterations, and all of
    // its CG work is preconditioned.
    EXPECT_EQ(gen.stats.precond_cg_iterations, 0u);
    EXPECT_EQ(stn.stats.precond_cg_iterations, stn.stats.cg_iterations);
    if (stn.iterations > 0) {
      EXPECT_GT(stn.stats.cg_iterations, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ThermalBackendGuardband,
                         ::testing::Range(0, static_cast<int>(netlist::vtr_suite().size())),
                         [](const auto& name_info) {
                           return netlist::vtr_suite()[static_cast<std::size_t>(
                                                           name_info.param)]
                               .name;
                         });

}  // namespace

// Tests for the core contribution: the guardbanding flow (Algorithm 1),
// the power model, and Eq. (1) grade selection.

#include <gtest/gtest.h>

#include "core/flow.hpp"

namespace {

using namespace taf;

const arch::ArchParams& test_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

const coffe::Characterizer& characterizer() {
  static const coffe::Characterizer ch(tech::ptm22(), test_arch());
  return ch;
}

const core::Implementation& sha_impl() {
  static const auto impl = [] {
    netlist::BenchmarkSpec spec;
    for (const auto& s : netlist::vtr_suite()) {
      if (s.name == "sha") spec = netlist::scaled(s, 1.0 / 16);
    }
    return core::implement(spec, test_arch());
  }();
  return *impl;
}

TEST(Power, LeakageGrowsWithTemperature) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  const double cold =
      power::tile_leakage(dev, arch::TileKind::Clb, test_arch(), units::Celsius(0.0)).value();
  const double hot =
      power::tile_leakage(dev, arch::TileKind::Clb, test_arch(), units::Celsius(100.0)).value();
  EXPECT_GT(hot, 2.0 * cold);
}

TEST(Power, FabricTilesLeakMoreThanIoTiles) {
  // IO tiles carry only the routing inventory; logic and hard-block
  // tiles add their cores on top.
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  const double io = power::tile_leakage(dev, arch::TileKind::Io, test_arch(), units::Celsius(25.0)).value();
  EXPECT_GT(io, 0.0);
  for (auto k : {arch::TileKind::Clb, arch::TileKind::Bram, arch::TileKind::Dsp}) {
    EXPECT_GT(power::tile_leakage(dev, k, test_arch(), units::Celsius(25.0)).value(), io);
  }
}

TEST(Power, DynamicScalesWithFrequency) {
  const auto& impl = sha_impl();
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  const std::vector<double> temps(static_cast<std::size_t>(impl.grid.num_tiles()), 25.0);
  const auto p100 =
      power::compute_power(dev, impl.nl, impl.packed, impl.placement, impl.rr,
                           impl.routes, impl.activity, units::Megahertz(100.0), temps, impl.grid);
  const auto p200 =
      power::compute_power(dev, impl.nl, impl.packed, impl.placement, impl.rr,
                           impl.routes, impl.activity, units::Megahertz(200.0), temps, impl.grid);
  EXPECT_NEAR(p200.dynamic_w.value(), 2.0 * p100.dynamic_w.value(), 1e-9);
  EXPECT_NEAR(p200.leakage_w.value(), p100.leakage_w.value(), 1e-12);  // leakage is f-independent
}

TEST(Power, TilePowersSumToTotals) {
  const auto& impl = sha_impl();
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  const std::vector<double> temps(static_cast<std::size_t>(impl.grid.num_tiles()), 25.0);
  const auto p =
      power::compute_power(dev, impl.nl, impl.packed, impl.placement, impl.rr,
                           impl.routes, impl.activity, units::Megahertz(150.0), temps, impl.grid);
  double sum = 0.0;
  for (double w : p.tile_w) sum += w;
  EXPECT_NEAR(sum, p.total_w().value(), 1e-9);
  EXPECT_GT(p.leakage_w.value(), 0.0);
  EXPECT_GT(p.dynamic_w.value(), 0.0);
}

TEST(Guardband, GainIsPositiveAtRoomAmbient) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  const auto r = core::guardband(sha_impl(), dev, opt);
  EXPECT_GT(r.fmax_mhz.value(), r.baseline_fmax_mhz.value());
  // Paper Fig. 6: gains in the 30..52% band at 25C ambient.
  EXPECT_GT(r.gain(), 0.25);
  EXPECT_LT(r.gain(), 0.65);
}

TEST(Guardband, HotterAmbientShrinksGain) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions cool;
  cool.t_amb_c = units::Celsius(25.0);
  core::GuardbandOptions warm;
  warm.t_amb_c = units::Celsius(70.0);
  const auto r25 = core::guardband(sha_impl(), dev, cool);
  const auto r70 = core::guardband(sha_impl(), dev, warm);
  EXPECT_GT(r70.gain(), 0.0);
  EXPECT_LT(r70.gain(), r25.gain());
  // Paper Fig. 7: ~14% average at 70C ambient.
  EXPECT_LT(r70.gain(), 0.30);
}

TEST(Guardband, ConvergesWithinTenIterations) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  opt.delta_t_c = units::Kelvin(0.2);  // stricter than default to exercise the loop
  const auto r = core::guardband(sha_impl(), dev, opt);
  EXPECT_LE(r.iterations, 10);
  EXPECT_GE(r.iterations, 1);
}

TEST(Guardband, ConvergedFlagReflectsTheIterationBudget) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions relaxed;
  relaxed.t_amb_c = units::Celsius(25.0);
  const auto ok = core::guardband(sha_impl(), dev, relaxed);
  EXPECT_TRUE(ok.converged);

  core::GuardbandOptions starved = relaxed;
  starved.max_iterations = 1;
  starved.delta_t_c = units::Kelvin(1e-9);  // unreachably tight fixed-point criterion
  const auto bad = core::guardband(sha_impl(), dev, starved);
  EXPECT_FALSE(bad.converged);
  EXPECT_EQ(bad.iterations, 1);
}

TEST(Guardband, PowerScaleScalesTheOperatingPoint) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  core::GuardbandOptions half = opt;
  half.power_scale = 0.5;
  const auto full = core::guardband(sha_impl(), dev, opt);
  const auto dimmed = core::guardband(sha_impl(), dev, half);
  // Less heat, cooler die, faster (or equal) clock.
  EXPECT_LT(dimmed.peak_temp_c.value(), full.peak_temp_c.value());
  EXPECT_GE(dimmed.fmax_mhz.value(), full.fmax_mhz.value());
  EXPECT_LT(dimmed.power.total_w().value(), full.power.total_w().value());
}

TEST(Guardband, IncrementalStatsAreReportedAndOffModeDoesNoSessionWork) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions inc;
  inc.t_amb_c = units::Celsius(25.0);
  inc.incremental = core::IncrementalMode::Exact;
  const auto r = core::guardband(sha_impl(), dev, inc);
  EXPECT_GT(r.stats.cg_iterations, 0u);
  EXPECT_GT(r.stats.edges_reevaluated, 0u);

  core::GuardbandOptions off = inc;
  off.incremental = core::IncrementalMode::Off;
  const auto legacy = core::guardband(sha_impl(), dev, off);
  EXPECT_EQ(legacy.stats.edges_reevaluated, 0u);
  EXPECT_EQ(legacy.stats.delay_cache_hits, 0u);
  EXPECT_GT(legacy.stats.cg_iterations, 0u);  // CG work is counted either way
}

TEST(Guardband, TemperaturesStayAboveAmbientAndBelowWorst) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  const auto r = core::guardband(sha_impl(), dev, opt);
  EXPECT_GE(r.peak_temp_c.value(), 25.0);
  EXPECT_LT(r.peak_temp_c.value(), 100.0);
  EXPECT_GE(r.mean_temp_c.value(), 25.0);
  EXPECT_LE(r.mean_temp_c.value(), r.peak_temp_c.value());
  // Paper: temperature converged after ~2C rise at these activity levels.
  EXPECT_LT(r.peak_temp_c.value() - 25.0, 12.0);
}

TEST(Guardband, BaselineMatchesWorstCaseSta) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  const auto r = core::guardband(sha_impl(), dev, opt);
  const auto sta100 = sha_impl().sta->analyze_uniform(dev, units::Celsius(100.0));
  EXPECT_NEAR(r.baseline_fmax_mhz.value(), sta100.fmax_mhz.value(), 1e-9);
}

TEST(Guardband, MarginReducesFrequency) {
  // A larger delta-T margin must never increase the reported frequency.
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions tight;
  tight.t_amb_c = units::Celsius(25.0);
  tight.delta_t_c = units::Kelvin(0.5);
  core::GuardbandOptions loose;
  loose.t_amb_c = units::Celsius(25.0);
  loose.delta_t_c = units::Kelvin(5.0);
  const auto rt = core::guardband(sha_impl(), dev, tight);
  const auto rl = core::guardband(sha_impl(), dev, loose);
  EXPECT_LE(rl.fmax_mhz.value(), rt.fmax_mhz.value());
}

TEST(Guardband, PowerIsReportedAtTheOperatingPoint) {
  // Regression: the loop used to return the power computed with the
  // *previous* iterate's fmax and pre-update temperatures. The reported
  // breakdown must match a fresh evaluation at the converged temperature
  // map and the margin-applied frequency.
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  const auto& impl = sha_impl();
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  opt.delta_t_c = units::Kelvin(0.2);  // force a couple of iterations
  const auto r = core::guardband(impl, dev, opt);
  ASSERT_EQ(r.tile_temp_c.size(), static_cast<std::size_t>(impl.grid.num_tiles()));
  const auto expected =
      power::compute_power(dev, impl.nl, impl.packed, impl.placement, impl.rr,
                           impl.routes, impl.activity, r.fmax_mhz, r.tile_temp_c,
                           impl.grid);
  EXPECT_DOUBLE_EQ(r.power.dynamic_w.value(), expected.dynamic_w.value());
  EXPECT_DOUBLE_EQ(r.power.leakage_w.value(), expected.leakage_w.value());
  EXPECT_DOUBLE_EQ(r.power.total_w().value(), expected.total_w().value());
  // The typed accessor views the same bulk payload.
  EXPECT_DOUBLE_EQ(r.tile_temp(0).value(), r.tile_temp_c[0]);
}

TEST(Guardband, ZeroIterationsStillReportsPower) {
  // Regression: with max_iterations == 0 the loop body never ran and the
  // result used to carry an all-zero PowerBreakdown.
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  opt.max_iterations = 0;
  const auto r = core::guardband(sha_impl(), dev, opt);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_GT(r.power.dynamic_w.value(), 0.0);
  EXPECT_GT(r.power.leakage_w.value(), 0.0);
}

TEST(Grade, SelectionFollowsFieldRange) {
  std::vector<coffe::DeviceModel> devices;
  for (double t : {0.0, 25.0, 70.0, 100.0}) {
    devices.push_back(characterizer().characterize(units::Celsius(t)));
  }
  // Cold field -> cold-corner device wins; hot field -> hot corner wins.
  const int cold = core::select_grade(devices, units::Celsius(0.0), units::Celsius(20.0));
  const int hot = core::select_grade(devices, units::Celsius(80.0), units::Celsius(100.0));
  EXPECT_LT(devices[static_cast<std::size_t>(cold)].t_opt_c,
            devices[static_cast<std::size_t>(hot)].t_opt_c);
}

TEST(Grade, ThrowsOnEmptyDeviceList) {
  EXPECT_THROW(core::select_grade({}, units::Celsius(0.0), units::Celsius(100.0)), std::invalid_argument);
}

TEST(Grade, SingleDeviceAlwaysSelected) {
  std::vector<coffe::DeviceModel> devices;
  devices.push_back(characterizer().characterize(units::Celsius(70.0)));
  EXPECT_EQ(core::select_grade(devices, units::Celsius(0.0), units::Celsius(100.0)), 0);
  EXPECT_EQ(core::select_grade(devices, units::Celsius(25.0), units::Celsius(25.0)), 0);
}

TEST(Grade, DegenerateRangeComparesPointDelay) {
  // t_min == t_max would divide by zero in the trapezoid expectation; the
  // contract is to compare rep_cp_delay at the single temperature, so the
  // device optimized for that exact corner must win.
  std::vector<coffe::DeviceModel> devices;
  for (double t : {0.0, 25.0, 70.0, 100.0}) {
    devices.push_back(characterizer().characterize(units::Celsius(t)));
  }
  const int at70 =
      core::select_grade(devices, units::Celsius(70.0), units::Celsius(70.0));
  int best = 0;
  double best_d = devices[0].rep_cp_delay(units::Celsius(70.0)).value();
  for (int i = 1; i < 4; ++i) {
    const double d =
        devices[static_cast<std::size_t>(i)].rep_cp_delay(units::Celsius(70.0)).value();
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  EXPECT_EQ(at70, best);
}

TEST(Grade, ReversedRangeIsNormalized) {
  // (t_max, t_min) in the wrong order selects the same grade as the
  // normalized range instead of hitting UB in the expectation integral.
  std::vector<coffe::DeviceModel> devices;
  for (double t : {0.0, 25.0, 70.0, 100.0}) {
    devices.push_back(characterizer().characterize(units::Celsius(t)));
  }
  EXPECT_EQ(core::select_grade(devices, units::Celsius(100.0), units::Celsius(80.0)),
            core::select_grade(devices, units::Celsius(80.0), units::Celsius(100.0)));
  EXPECT_EQ(core::select_grade(devices, units::Celsius(20.0), units::Celsius(0.0)),
            core::select_grade(devices, units::Celsius(0.0), units::Celsius(20.0)));
}

TEST(Implement, ReportsRoutedDesign) {
  const auto& impl = sha_impl();
  EXPECT_TRUE(impl.routes.success);
  EXPECT_TRUE(impl.sta != nullptr);
  EXPECT_EQ(impl.activity.size(), impl.nl.nets().size());
  EXPECT_EQ(impl.nl.validate(), "");
}

void expect_bit_identical(const core::GuardbandResult& solo,
                          const core::GuardbandResult& batch) {
  EXPECT_EQ(solo.fmax_mhz.value(), batch.fmax_mhz.value());
  EXPECT_EQ(solo.baseline_fmax_mhz.value(), batch.baseline_fmax_mhz.value());
  EXPECT_EQ(solo.iterations, batch.iterations);
  EXPECT_EQ(solo.converged, batch.converged);
  EXPECT_EQ(solo.stats.edges_reevaluated, batch.stats.edges_reevaluated);
  EXPECT_EQ(solo.stats.delay_cache_hits, batch.stats.delay_cache_hits);
  EXPECT_EQ(solo.stats.cg_iterations, batch.stats.cg_iterations);
  EXPECT_EQ(solo.stats.precond_cg_iterations, batch.stats.precond_cg_iterations);
  ASSERT_EQ(solo.tile_temp_c.size(), batch.tile_temp_c.size());
  for (std::size_t i = 0; i < solo.tile_temp_c.size(); ++i) {
    ASSERT_EQ(solo.tile_temp_c[i], batch.tile_temp_c[i]) << "tile " << i;
  }
  EXPECT_EQ(solo.peak_temp_c.value(), batch.peak_temp_c.value());
  EXPECT_EQ(solo.mean_temp_c.value(), batch.mean_temp_c.value());
  EXPECT_EQ(solo.timing.critical_path_ps.value(), batch.timing.critical_path_ps.value());
  EXPECT_EQ(solo.power.dynamic_w.value(), batch.power.dynamic_w.value());
  EXPECT_EQ(solo.power.leakage_w.value(), batch.power.leakage_w.value());
}

TEST(GuardbandBatch, WithCornerSubstitutesOnlyAmbientAndPowerScale) {
  core::GuardbandOptions base;
  base.delta_t_c = units::Kelvin(0.3);
  base.max_iterations = 7;
  base.power_scale = 2.0;
  const core::GuardbandCorner corner{units::Celsius(55.0), 0.5};
  const core::GuardbandOptions opt = core::with_corner(base, corner);
  EXPECT_EQ(opt.t_amb_c.value(), 55.0);
  EXPECT_EQ(opt.power_scale, 0.5);
  EXPECT_EQ(opt.delta_t_c.value(), base.delta_t_c.value());
  EXPECT_EQ(opt.max_iterations, base.max_iterations);
  EXPECT_EQ(opt.incremental, base.incremental);
}

TEST(GuardbandBatch, BitIdenticalToSequentialCornerLoop) {
  // The corner-batching contract (flow.hpp): results[k] must equal a
  // standalone guardband() at with_corner(base, corners[k]) bit for bit
  // — whatever the batch composition, the shared stencil traversal
  // cannot perturb any corner's arithmetic.
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions base;
  base.delta_t_c = units::Kelvin(0.2);  // make the loop iterate
  base.incremental = core::IncrementalMode::Exact;
  base.thermal.backend = thermal::ThermalBackend::Stencil;
  const std::vector<core::GuardbandCorner> corners = {
      {units::Celsius(25.0), 1.0},
      {units::Celsius(55.0), 0.75},
      {units::Celsius(70.0), 1.0},
      {units::Celsius(25.0), 0.5},
  };
  const auto batch = core::guardband_batch(sha_impl(), dev, base, corners);
  ASSERT_EQ(batch.size(), corners.size());
  for (std::size_t k = 0; k < corners.size(); ++k) {
    SCOPED_TRACE("corner " + std::to_string(k));
    const auto solo = core::guardband(sha_impl(), dev, core::with_corner(base, corners[k]));
    expect_bit_identical(solo, batch[k]);
  }
}

TEST(GuardbandBatch, FallbackPathsStayBitIdentical) {
  // Off mode (cold per-corner solves) and the generic oracle backend
  // never engage the shared traversal but run the same lockstep loop —
  // still pinned bit-identical to the sequential corner loop.
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  const std::vector<core::GuardbandCorner> corners = {
      {units::Celsius(25.0), 1.0},
      {units::Celsius(70.0), 0.75},
  };
  for (const bool generic : {false, true}) {
    for (const auto mode : {core::IncrementalMode::Off, core::IncrementalMode::Exact}) {
      core::GuardbandOptions base;
      base.delta_t_c = units::Kelvin(0.2);
      base.incremental = mode;
      base.thermal.backend =
          generic ? thermal::ThermalBackend::Generic : thermal::ThermalBackend::Stencil;
      SCOPED_TRACE(std::string(generic ? "generic" : "stencil") + "/" +
                   core::incremental_mode_name(mode));
      const auto batch = core::guardband_batch(sha_impl(), dev, base, corners);
      ASSERT_EQ(batch.size(), corners.size());
      for (std::size_t k = 0; k < corners.size(); ++k) {
        SCOPED_TRACE("corner " + std::to_string(k));
        const auto solo =
            core::guardband(sha_impl(), dev, core::with_corner(base, corners[k]));
        expect_bit_identical(solo, batch[k]);
      }
    }
  }
}

TEST(GuardbandBatch, EmptyAndSingletonBatches) {
  const auto dev = characterizer().characterize(units::Celsius(25.0));
  core::GuardbandOptions base;
  EXPECT_TRUE(core::guardband_batch(sha_impl(), dev, base, {}).empty());
  const std::vector<core::GuardbandCorner> one = {{units::Celsius(40.0), 1.0}};
  const auto batch = core::guardband_batch(sha_impl(), dev, base, one);
  ASSERT_EQ(batch.size(), 1u);
  expect_bit_identical(core::guardband(sha_impl(), dev, core::with_corner(base, one[0])),
                       batch[0]);
}

TEST(Implement, Fig8ArchOptimizationDirection) {
  // The paper's Fig. 8 experiment in miniature: at a 70C field, the
  // 70C-optimized device must clock at least as fast as the 25C device
  // (both thermally guardbanded). ~6.7% average in the paper.
  const auto d25 = characterizer().characterize(units::Celsius(25.0));
  const auto d70 = characterizer().characterize(units::Celsius(70.0));
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(70.0);
  const auto r25 = core::guardband(sha_impl(), d25, opt);
  const auto r70 = core::guardband(sha_impl(), d70, opt);
  EXPECT_GE(r70.fmax_mhz.value(), r25.fmax_mhz.value() * 0.995);
}

}  // namespace

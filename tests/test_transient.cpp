// Transient thermal engine suite (ISSUE 8): physical sanity (zero-power
// decay to ambient is monotone), numerical order (backward Euler's
// global error halves with the step), determinism (identical advances
// are bitwise identical), and the differential anchor — a long
// constant-power dwell must land on the steady-state solve() oracle
// within kTransientSteadyContractC, per tile, on every suite benchmark's
// fabric under BOTH thermal backends.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "thermal/transient.hpp"
#include "util/rng.hpp"

namespace {

using namespace taf;
using thermal::ThermalBackend;
using thermal::ThermalConfig;
using thermal::ThermalGrid;
using thermal::TransientEngine;
using thermal::TransientOptions;
using thermal::TransientStats;

ThermalConfig config_for(ThermalBackend backend, double t_amb_c = 25.0) {
  ThermalConfig cfg;
  cfg.ambient_c = units::Celsius(t_amb_c);
  cfg.backend = backend;
  return cfg;
}

TEST(TransientEngine, RejectsMalformedOptionsAndInputs) {
  const arch::FpgaGrid fg(4, 4);
  const ThermalGrid grid(fg, config_for(ThermalBackend::Generic));

  TransientOptions bad = {};
  bad.dt_init_frac = 0.0;
  EXPECT_THROW(TransientEngine(grid, bad), std::invalid_argument);
  bad = {};
  bad.dt_min_frac = 0.5;
  bad.dt_max_frac = 0.25;
  EXPECT_THROW(TransientEngine(grid, bad), std::invalid_argument);
  bad = {};
  bad.grow = 0.5;
  EXPECT_THROW(TransientEngine(grid, bad), std::invalid_argument);
  bad = {};
  bad.target_step_k = units::Kelvin{0.0};
  EXPECT_THROW(TransientEngine(grid, bad), std::invalid_argument);

  const TransientEngine engine(grid);
  std::vector<double> temps(16, 25.0);
  std::vector<double> short_power(15, 0.0);
  EXPECT_THROW(engine.advance(short_power, units::Seconds{1.0}, temps),
               std::invalid_argument);
  std::vector<double> power(16, 0.0);
  std::vector<double> short_temps(15, 25.0);
  EXPECT_THROW(engine.advance(power, units::Seconds{1.0}, short_temps),
               std::invalid_argument);
  EXPECT_THROW(engine.advance(power, units::Seconds{-1.0}, temps),
               std::invalid_argument);
  const double nan = std::nan("");
  EXPECT_THROW(engine.advance(power, units::Seconds{nan}, temps),
               std::invalid_argument);

  // Zero duration is a no-op, not an error.
  std::vector<double> before = temps;
  TransientStats stats;
  engine.advance(power, units::Seconds{0.0}, temps, &stats);
  EXPECT_EQ(temps, before);
  EXPECT_EQ(stats.steps, 0u);
}

TEST(TransientEngine, ZeroPowerDecaysMonotonicallyToAmbient) {
  util::Rng rng(13);
  const double ambient = 25.0;
  for (const auto backend : {ThermalBackend::Generic, ThermalBackend::Stencil}) {
    SCOPED_TRACE(thermal::thermal_backend_name(backend));
    const arch::FpgaGrid fg(9, 4);
    const ThermalGrid grid(fg, config_for(backend, ambient));
    const TransientEngine engine(grid);
    const double tau = grid.tile_time_constant().value();

    // Heat the fabric with a hotspot map, then cut the power.
    std::vector<double> power(9 * 4, 1e-4);
    power[13] = 0.4;
    power[27] = 0.2 * rng.next_double() + 0.1;
    std::vector<double> temps = grid.solve(power);
    const double excursion = ThermalGrid::peak(temps).value() - ambient;
    ASSERT_GT(excursion, 0.0);

    const std::vector<double> zero(9 * 4, 0.0);
    double prev_peak = ThermalGrid::peak(temps).value();
    for (int k = 0; k < 20; ++k) {
      engine.advance(zero, units::Seconds{0.5 * tau}, temps);
      const double peak = ThermalGrid::peak(temps).value();
      // Backward Euler is unconditionally stable and the operator is an
      // M-matrix: the peak can never rise without power.
      EXPECT_LE(peak, prev_peak + 1e-9) << "sub-advance " << k;
      EXPECT_GE(peak, ambient - 1e-9) << "sub-advance " << k;
      prev_peak = peak;
    }
    // After 10 time constants the excursion has decayed by ~e^-10.
    EXPECT_NEAR(prev_peak, ambient, excursion * 1e-3 + 1e-9);
  }
}

TEST(TransientEngine, FixedStepConvergesAtFirstOrder) {
  // 1x1 fabric: no lateral coupling, so the exact solution is the RC
  // charging curve T(t) = T_amb + (P/g)(1 - e^{-t/tau}). Backward Euler
  // is order 1: pinning dt via dt_min_frac == dt_max_frac, the error at
  // t = tau must halve (within slack) each time the step halves.
  const arch::FpgaGrid fg(1, 1);
  const ThermalGrid grid(fg, config_for(ThermalBackend::Generic));
  const double g = grid.vertical_g();
  const double tau = grid.tile_time_constant().value();
  const double ambient = 25.0;
  const std::vector<double> power{0.3};
  const double exact = ambient + (0.3 / g) * (1.0 - std::exp(-1.0));

  std::vector<double> errs;
  for (const double frac : {1.0 / 16.0, 1.0 / 32.0, 1.0 / 64.0}) {
    TransientOptions opt;
    opt.dt_init_frac = frac;
    opt.dt_min_frac = frac;
    opt.dt_max_frac = frac;
    opt.steady_tol_k = units::Kelvin{0.0};  // no hold: integrate every step
    const TransientEngine engine(grid, opt);
    std::vector<double> temps{ambient};
    TransientStats stats;
    engine.advance(power, units::Seconds{tau}, temps, &stats);
    // 1/frac equal steps, plus possibly one clipped sliver when the
    // accumulated float subtraction leaves a remainder.
    const auto expected = static_cast<std::uint64_t>(std::lround(1.0 / frac));
    EXPECT_GE(stats.steps, expected);
    EXPECT_LE(stats.steps, expected + 1);
    errs.push_back(std::abs(temps[0] - exact));
  }
  ASSERT_EQ(errs.size(), 3u);
  for (std::size_t k = 0; k + 1 < errs.size(); ++k) {
    const double ratio = errs[k] / errs[k + 1];
    EXPECT_GT(ratio, 1.7) << "halving step " << k;
    EXPECT_LT(ratio, 2.3) << "halving step " << k;
  }
}

TEST(TransientEngine, IdenticalAdvancesAreBitwiseIdentical) {
  util::Rng rng(71);
  for (const auto backend : {ThermalBackend::Generic, ThermalBackend::Stencil}) {
    SCOPED_TRACE(thermal::thermal_backend_name(backend));
    const arch::FpgaGrid fg(17, 9);
    const ThermalGrid grid(fg, config_for(backend));
    const TransientEngine engine(grid);
    const double tau = grid.tile_time_constant().value();
    std::vector<double> power(17 * 9);
    for (double& w : power) w = 2e-3 * rng.next_double();

    std::vector<double> a(17 * 9, 25.0), b(17 * 9, 25.0);
    TransientStats sa, sb;
    engine.advance(power, units::Seconds{3.0 * tau}, a, &sa);
    engine.advance(power, units::Seconds{3.0 * tau}, b, &sb);
    EXPECT_EQ(sa.steps, sb.steps);
    EXPECT_EQ(sa.holds, sb.holds);
    EXPECT_EQ(sa.cg_iterations, sb.cg_iterations);
    EXPECT_EQ(sa.precond_cg_iterations, sb.precond_cg_iterations);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "tile " << i;  // bitwise, not approximate
    }
    // Only the stencil backend runs preconditioned.
    if (backend == ThermalBackend::Stencil) {
      EXPECT_EQ(sa.precond_cg_iterations, sa.cg_iterations);
    } else {
      EXPECT_EQ(sa.precond_cg_iterations, 0u);
    }
    EXPECT_GT(sa.steps, 0u);
  }
}

TEST(TransientEngine, DwellHoldFreezesAtTheFixedPoint) {
  // Once the controller saturates at dt_max and the per-step delta drops
  // under steady_tol_k, the remaining dwell is fast-forwarded: steps stop
  // growing with the dwell length and holds is reported.
  const arch::FpgaGrid fg(9, 4);
  const ThermalGrid grid(fg, config_for(ThermalBackend::Generic));
  const TransientEngine engine(grid);
  const double tau = grid.tile_time_constant().value();
  std::vector<double> power(9 * 4, 1e-4);
  power[20] = 0.3;

  std::vector<double> t_short(9 * 4, 25.0), t_long(9 * 4, 25.0);
  TransientStats s_short, s_long;
  engine.advance(power, units::Seconds{400.0 * tau}, t_short, &s_short);
  engine.advance(power, units::Seconds{400000.0 * tau}, t_long, &s_long);
  EXPECT_EQ(s_short.holds, 1u);
  EXPECT_EQ(s_long.holds, 1u);
  EXPECT_EQ(s_short.steps, s_long.steps);  // the extra dwell costs nothing
  for (std::size_t i = 0; i < t_short.size(); ++i) {
    ASSERT_EQ(t_short[i], t_long[i]) << "tile " << i;
  }
}

// ---------- the long-dwell differential anchor ----------

class TransientSteadyDifferential : public ::testing::TestWithParam<int> {};

TEST_P(TransientSteadyDifferential, LongDwellMatchesSteadySolveOnBothBackends) {
  // On every suite benchmark's implemented fabric, under both thermal
  // backends: advancing 60 time constants at constant power must agree
  // with the steady-state solve() oracle tile by tile within the
  // transient/steady contract bound. This is the anchor that keeps the
  // adaptive integrator honest — any step-control or augmented-operator
  // bug shows up as a fixed point displaced from the oracle.
  const netlist::BenchmarkSpec spec =
      netlist::scaled(netlist::vtr_suite()[static_cast<std::size_t>(GetParam())], 1.0 / 16);
  const auto impl = core::implement(spec, arch::scaled_arch());
  const int n = impl->grid.num_tiles();

  util::Rng rng(919 + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> power(static_cast<std::size_t>(n));
  for (double& w : power) w = 3e-3 * rng.next_double();
  power[static_cast<std::size_t>(n / 2)] = 0.25;

  for (const auto backend : {ThermalBackend::Generic, ThermalBackend::Stencil}) {
    SCOPED_TRACE(spec.name + std::string(" / ") +
                 thermal::thermal_backend_name(backend));
    ThermalConfig cfg = config_for(backend, 45.0);
    cfg.tile_edge_um = impl->arch.tile_edge_um;
    const ThermalGrid grid(impl->grid, cfg);
    const TransientEngine engine(grid);
    const double tau = grid.tile_time_constant().value();

    std::vector<double> temps(static_cast<std::size_t>(n), 45.0);
    TransientStats stats;
    engine.advance(power, units::Seconds{60.0 * tau}, temps, &stats);
    EXPECT_GT(stats.steps, 0u);

    const std::vector<double> steady = grid.solve(power);
    for (int i = 0; i < n; ++i) {
      ASSERT_NEAR(temps[static_cast<std::size_t>(i)],
                  steady[static_cast<std::size_t>(i)],
                  thermal::kTransientSteadyContractC)
          << "tile " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TransientSteadyDifferential,
                         ::testing::Range(0, static_cast<int>(netlist::vtr_suite().size())),
                         [](const auto& name_info) {
                           return netlist::vtr_suite()[static_cast<std::size_t>(
                                                           name_info.param)]
                               .name;
                         });

}  // namespace

// Cross-module property tests: determinism of the full flow, scaling
// invariants, and physical sanity checks that span several layers.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "core/flow.hpp"
#include "spice/linear.hpp"
#include "spice/sparse.hpp"
#include "util/rng.hpp"

namespace {

using namespace taf;

netlist::BenchmarkSpec spec_named(const char* name, double scale) {
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == name) return netlist::scaled(s, scale);
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return {};
}

TEST(Property, FullFlowIsDeterministic) {
  const auto spec = spec_named("mkSMAdapter4B", 1.0 / 16);
  const auto a = core::implement(spec, arch::scaled_arch());
  const auto b = core::implement(spec, arch::scaled_arch());
  ASSERT_EQ(a->placement.pos.size(), b->placement.pos.size());
  for (std::size_t i = 0; i < a->placement.pos.size(); ++i) {
    EXPECT_EQ(a->placement.pos[i], b->placement.pos[i]);
  }
  ASSERT_EQ(a->routes.routes.size(), b->routes.routes.size());
  for (std::size_t i = 0; i < a->routes.routes.size(); ++i) {
    EXPECT_EQ(a->routes.routes[i].nodes, b->routes.routes[i].nodes);
  }
}

TEST(Property, SeedChangesPlacementButNotLegality) {
  const auto spec = spec_named("raygentop", 1.0 / 16);
  core::ImplementOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const auto a = core::implement(spec, arch::scaled_arch(), o1);
  const auto b = core::implement(spec, arch::scaled_arch(), o2);
  EXPECT_TRUE(a->routes.success);
  EXPECT_TRUE(b->routes.success);
  int moved = 0;
  for (std::size_t i = 0; i < a->placement.pos.size(); ++i) {
    moved += !(a->placement.pos[i] == b->placement.pos[i]);
  }
  EXPECT_GT(moved, 0);
}

TEST(Property, GainDependsOnlyWeaklyOnSeed) {
  // The headline metric must be a property of the circuit, not of the
  // annealing seed: gains across seeds stay within a few points.
  const auto spec = spec_named("sha", 1.0 / 16);
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));
  util::Accumulator gains;
  for (unsigned seed : {1u, 7u, 23u}) {
    core::ImplementOptions io;
    io.seed = seed;
    const auto impl = core::implement(spec, arch::scaled_arch(), io);
    core::GuardbandOptions go;
    go.t_amb_c = units::Celsius(25.0);
    gains.add(core::guardband(*impl, dev, go).gain());
  }
  EXPECT_LT(gains.max() - gains.min(), 0.05);
}

TEST(Property, CriticalPathDelaysScaleWithFits) {
  // Uniform-temperature STA at T must sit between STA at T-10 and T+10.
  const auto spec = spec_named("diffeq1", 1.0 / 4);
  const auto impl = core::implement(spec, arch::scaled_arch());
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));
  double prev = 0.0;
  for (double t = 0.0; t <= 100.0; t += 10.0) {
    const double cp = impl->sta->analyze_uniform(dev, units::Celsius(t)).critical_path_ps.value();
    EXPECT_GT(cp, prev);
    prev = cp;
  }
}

TEST(Property, WireUtilizationGrowsWithSize) {
  const auto small = core::implement(spec_named("stereovision3", 1.0 / 16),
                                     arch::scaled_arch());
  const auto big = core::implement(spec_named("sha", 1.0 / 16), arch::scaled_arch());
  EXPECT_GT(big->routes.wire_utilization, 0.0);
  EXPECT_GT(big->rr.num_wires(), 0);
  // Bigger designs on fitted grids still keep utilization sane (< 60%).
  EXPECT_LT(big->routes.wire_utilization, 0.6);
  EXPECT_LT(small->routes.wire_utilization, 0.6);
}

TEST(Property, GuardbandGainShrinksMonotonicallyWithAmbient) {
  const auto impl = core::implement(spec_named("or1200", 1.0 / 16), arch::scaled_arch());
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));
  double prev_gain = 1e9;
  for (double amb : {0.0, 25.0, 50.0, 70.0, 90.0}) {
    core::GuardbandOptions opt;
    opt.t_amb_c = units::Celsius(amb);
    const double g = core::guardband(*impl, dev, opt).gain();
    EXPECT_LT(g, prev_gain) << "ambient " << amb;
    EXPECT_GE(g, -1e-9);
    prev_gain = g;
  }
}

// --- Sparse vs dense linear solver equivalence -----------------------------

/// Random entry list + values; returns (pattern, dense row-major matrix).
/// Every row gets a diagonal entry; `dominant` makes the matrix strictly
/// diagonally dominant (well-conditioned by construction).
std::pair<spice::SparsityPattern, std::vector<double>> random_system(
    util::Rng& rng, int n, double density, bool dominant) {
  spice::SparsityPattern pattern;
  std::vector<double> dense(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.next_double() >= density) continue;
      pattern.emplace_back(i, j);
      if (i != j) dense[static_cast<std::size_t>(i) * n + j] = rng.uniform(-1.0, 1.0);
    }
  }
  for (int i = 0; i < n; ++i) {
    double off = 0.0;
    for (int j = 0; j < n; ++j)
      if (j != i) off += std::fabs(dense[static_cast<std::size_t>(i) * n + j]);
    dense[static_cast<std::size_t>(i) * n + i] =
        dominant ? off + rng.uniform(0.5, 2.0) : rng.uniform(-1.0, 1.0);
  }
  return {std::move(pattern), std::move(dense)};
}

spice::CsrMatrix to_csr(int n, const spice::SparsityPattern& pattern,
                        const std::vector<double>& dense) {
  spice::CsrMatrix csr = spice::CsrMatrix::from_entries(n, pattern);
  for (int i = 0; i < n; ++i)
    for (int k = csr.row_ptr[static_cast<std::size_t>(i)];
         k < csr.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      csr.val[static_cast<std::size_t>(k)] =
          dense[static_cast<std::size_t>(i) * n + csr.col[static_cast<std::size_t>(k)]];
  return csr;
}

TEST(Property, SparseLuMatchesDenseOnRandomDominantSystems) {
  util::Rng rng(0xd1a60u);  // fixed seed: reproducible sequence
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(39));
    const double density = rng.uniform(0.05, 0.5);
    const auto [pattern, dense] = random_system(rng, n, density, /*dominant=*/true);
    const spice::CsrMatrix csr = to_csr(n, pattern, dense);

    std::vector<double> b(static_cast<std::size_t>(n));
    for (double& x : b) x = rng.uniform(-2.0, 2.0);

    std::vector<double> a_copy = dense;
    std::vector<double> x_dense = b;
    spice::dense_lu_solve(a_copy, x_dense, n);
    const std::vector<double> x_sparse = spice::sparse_lu_solve(csr, b);

    for (int i = 0; i < n; ++i)
      ASSERT_NEAR(x_dense[static_cast<std::size_t>(i)], x_sparse[static_cast<std::size_t>(i)], 1e-9)
          << "trial " << trial << " n=" << n << " i=" << i;

    // Both must actually solve the system, not merely agree.
    std::vector<double> ax;
    csr.multiply(x_sparse, ax);
    for (int i = 0; i < n; ++i)
      ASSERT_NEAR(ax[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(Property, SparseLuMatchesDenseThroughRegularizedPivots) {
  // Structurally decoupled rows with vanishing diagonals hit the
  // near-zero-pivot branch: both backends nudge the pivot by the same
  // +/-kPivotNudge, so even the regularized (non-)solutions must agree.
  util::Rng rng(0x5e6u);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(10));
    spice::SparsityPattern pattern;
    std::vector<double> dense(static_cast<std::size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i) {
      pattern.emplace_back(i, i);
      const int kind = static_cast<int>(rng.next_below(3));
      double d = rng.uniform(0.5, 2.0);        // healthy
      if (kind == 1) d = 0.0;                  // exactly singular row
      if (kind == 2) d = rng.uniform(-1.0, 1.0) * 1e-13;  // below kPivotFloor
      dense[static_cast<std::size_t>(i) * n + i] = d;
    }
    const spice::CsrMatrix csr = to_csr(n, pattern, dense);

    std::vector<double> b(static_cast<std::size_t>(n));
    for (double& x : b) x = rng.uniform(-1.0, 1.0);

    std::vector<double> a_copy = dense;
    std::vector<double> x_dense = b;
    spice::dense_lu_solve(a_copy, x_dense, n);
    const std::vector<double> x_sparse = spice::sparse_lu_solve(csr, b);

    for (int i = 0; i < n; ++i) {
      const double xd = x_dense[static_cast<std::size_t>(i)];
      const double xs = x_sparse[static_cast<std::size_t>(i)];
      // Regularized components are ~b/1e-9; compare relatively there.
      ASSERT_NEAR(xd, xs, 1e-9 * std::max(1.0, std::fabs(xd)))
          << "trial " << trial << " i=" << i;
    }
  }
}

TEST(Property, SparseBackendReusesOneSymbolicAnalysis) {
  // The static-pattern contract: one analyze() per system, numeric
  // refactors for every subsequent solve.
  util::Rng rng(0xabcdu);
  const int n = 12;
  const auto [pattern, dense] = random_system(rng, n, 0.3, /*dominant=*/true);
  const auto before = spice::thread_counters();
  spice::SparseSystem sys(n, pattern);
  for (int round = 0; round < 5; ++round) {
    sys.begin();
    for (const auto& [i, j] : pattern)
      sys.add(i, j, dense[static_cast<std::size_t>(i) * n + j]);
    for (int i = 0; i < n; ++i)
      sys.add(i, i, 0.5 + round);  // values change, pattern does not
    std::vector<double> rhs(static_cast<std::size_t>(n), 1.0);
    sys.factor_solve(rhs);
  }
  const auto delta = spice::thread_counters() - before;
  EXPECT_EQ(delta.symbolic_analyses, 1u);
  EXPECT_EQ(delta.factorizations, 5u);
  EXPECT_EQ(delta.pattern_reuses, 4u);
}

TEST(Property, HotterDeviceLeaksMoreEverywhere) {
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));
  for (coffe::ResourceKind k : coffe::all_resource_kinds()) {
    double prev = 0.0;
    for (double t = 0.0; t <= 100.0; t += 20.0) {
      const double lkg = dev.leakage(k, units::Celsius(t)).value();
      EXPECT_GT(lkg, prev) << coffe::resource_name(k) << " at " << t;
      prev = lkg;
    }
  }
}

}  // namespace

// Cross-module property tests: determinism of the full flow, scaling
// invariants, and physical sanity checks that span several layers.

#include <gtest/gtest.h>

#include "core/flow.hpp"

namespace {

using namespace taf;

netlist::BenchmarkSpec spec_named(const char* name, double scale) {
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == name) return netlist::scaled(s, scale);
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return {};
}

TEST(Property, FullFlowIsDeterministic) {
  const auto spec = spec_named("mkSMAdapter4B", 1.0 / 16);
  const auto a = core::implement(spec, arch::scaled_arch());
  const auto b = core::implement(spec, arch::scaled_arch());
  ASSERT_EQ(a->placement.pos.size(), b->placement.pos.size());
  for (std::size_t i = 0; i < a->placement.pos.size(); ++i) {
    EXPECT_EQ(a->placement.pos[i], b->placement.pos[i]);
  }
  ASSERT_EQ(a->routes.routes.size(), b->routes.routes.size());
  for (std::size_t i = 0; i < a->routes.routes.size(); ++i) {
    EXPECT_EQ(a->routes.routes[i].nodes, b->routes.routes[i].nodes);
  }
}

TEST(Property, SeedChangesPlacementButNotLegality) {
  const auto spec = spec_named("raygentop", 1.0 / 16);
  core::ImplementOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const auto a = core::implement(spec, arch::scaled_arch(), o1);
  const auto b = core::implement(spec, arch::scaled_arch(), o2);
  EXPECT_TRUE(a->routes.success);
  EXPECT_TRUE(b->routes.success);
  int moved = 0;
  for (std::size_t i = 0; i < a->placement.pos.size(); ++i) {
    moved += !(a->placement.pos[i] == b->placement.pos[i]);
  }
  EXPECT_GT(moved, 0);
}

TEST(Property, GainDependsOnlyWeaklyOnSeed) {
  // The headline metric must be a property of the circuit, not of the
  // annealing seed: gains across seeds stay within a few points.
  const auto spec = spec_named("sha", 1.0 / 16);
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const auto dev = ch.characterize(25.0);
  util::Accumulator gains;
  for (unsigned seed : {1u, 7u, 23u}) {
    core::ImplementOptions io;
    io.seed = seed;
    const auto impl = core::implement(spec, arch::scaled_arch(), io);
    core::GuardbandOptions go;
    go.t_amb_c = 25.0;
    gains.add(core::guardband(*impl, dev, go).gain());
  }
  EXPECT_LT(gains.max() - gains.min(), 0.05);
}

TEST(Property, CriticalPathDelaysScaleWithFits) {
  // Uniform-temperature STA at T must sit between STA at T-10 and T+10.
  const auto spec = spec_named("diffeq1", 1.0 / 4);
  const auto impl = core::implement(spec, arch::scaled_arch());
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const auto dev = ch.characterize(25.0);
  double prev = 0.0;
  for (double t = 0.0; t <= 100.0; t += 10.0) {
    const double cp = impl->sta->analyze_uniform(dev, t).critical_path_ps;
    EXPECT_GT(cp, prev);
    prev = cp;
  }
}

TEST(Property, WireUtilizationGrowsWithSize) {
  const auto small = core::implement(spec_named("stereovision3", 1.0 / 16),
                                     arch::scaled_arch());
  const auto big = core::implement(spec_named("sha", 1.0 / 16), arch::scaled_arch());
  EXPECT_GT(big->routes.wire_utilization, 0.0);
  EXPECT_GT(big->rr.num_wires(), 0);
  // Bigger designs on fitted grids still keep utilization sane (< 60%).
  EXPECT_LT(big->routes.wire_utilization, 0.6);
  EXPECT_LT(small->routes.wire_utilization, 0.6);
}

TEST(Property, GuardbandGainShrinksMonotonicallyWithAmbient) {
  const auto impl = core::implement(spec_named("or1200", 1.0 / 16), arch::scaled_arch());
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const auto dev = ch.characterize(25.0);
  double prev_gain = 1e9;
  for (double amb : {0.0, 25.0, 50.0, 70.0, 90.0}) {
    core::GuardbandOptions opt;
    opt.t_amb_c = amb;
    const double g = core::guardband(*impl, dev, opt).gain();
    EXPECT_LT(g, prev_gain) << "ambient " << amb;
    EXPECT_GE(g, -1e-9);
    prev_gain = g;
  }
}

TEST(Property, HotterDeviceLeaksMoreEverywhere) {
  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  const auto dev = ch.characterize(25.0);
  for (coffe::ResourceKind k : coffe::all_resource_kinds()) {
    double prev = 0.0;
    for (double t = 0.0; t <= 100.0; t += 20.0) {
      const double lkg = dev.leakage_uw(k, t);
      EXPECT_GT(lkg, prev) << coffe::resource_name(k) << " at " << t;
      prev = lkg;
    }
  }
}

}  // namespace

// Tests for the strong physical-unit types (src/util/units.hpp):
// compile-time algebra via static_assert, round-trip conversion
// tolerances, the bit-identity contract frequency_of() gives the
// migrated STA call sites, and the zero-overhead layout guarantees.
// The operations that must NOT compile are covered by the negative-
// compilation harness in tests/compile_fail/ (CMake try_compile).

#include <gtest/gtest.h>

#include <type_traits>

#include "util/units.hpp"

namespace {

using namespace taf::util::units;
using namespace taf::util::units::literals;

// ---------------------------------------------------------------------
// Compile-time algebra. Everything here is checked by the compiler; the
// TEST body only exists so the suite reports the coverage.

// Vector-space units: closed under +, -, scalar *, scalar /.
static_assert((Kelvin{1.5} + Kelvin{2.5}).value() == 4.0);
static_assert((Watts{3.0} - Watts{1.0}).value() == 2.0);
static_assert((-Picoseconds{7.0}).value() == -7.0);
static_assert((Megahertz{100.0} * 2.0).value() == 200.0);
static_assert((2.0 * Megahertz{100.0}).value() == 200.0);
static_assert((Seconds{1.0} / 4.0).value() == 0.25);

// Ratio of like quantities is a plain double (dimensionless).
static_assert(std::is_same_v<decltype(Watts{1.0} / Watts{2.0}), double>);
static_assert(Picoseconds{30.0} / Picoseconds{60.0} == 0.5);

// Affine temperature: points move by deltas; point differences are deltas.
static_assert((Celsius{25.0} + Kelvin{10.0}).value() == 35.0);
static_assert((Kelvin{10.0} + Celsius{25.0}).value() == 35.0);
static_assert((Celsius{25.0} - Kelvin{10.0}).value() == 15.0);
static_assert(std::is_same_v<decltype(Celsius{70.0} - Celsius{25.0}), Kelvin>);
static_assert((Celsius{70.0} - Celsius{25.0}).value() == 45.0);

// Scale conversions are explicit functions, exact at the representative
// points used throughout the flow.
static_assert(to_kelvin(Celsius{0.0}).value() == 273.15);
static_assert(to_kelvin(Celsius{25.0}).value() == 298.15);
static_assert(to_celsius(Kelvin{273.15}).value() == 0.0);
static_assert(to_seconds(Picoseconds{1.0}).value() == 1e-12);
static_assert(to_picoseconds(Seconds{1.0}).value() == 1e12);
static_assert(to_watts(Microwatts{1.0}).value() == 1e-6);
static_assert(to_hertz(Megahertz{1.0}).value() == 1e6);

// Cross-unit products from the curated allow-list.
static_assert((Ohms{2.0} * Farads{3.0}).value() == 6.0);
static_assert((Farads{3.0} * Ohms{2.0}).value() == 6.0);
static_assert(std::is_same_v<decltype(Ohms{1.0} * Farads{1.0}), Seconds>);
static_assert(Seconds{2.0} * Hertz{3.0} == 6.0);  // cycles: dimensionless
static_assert(dissipation(Volts{2.0}, Ohms{4.0}).value() == 1.0);

// Period <-> frequency in both unit systems.
static_assert(frequency_of(Picoseconds{1000.0}).value() == 1000.0);  // MHz
static_assert(period_of(Megahertz{1000.0}).value() == 1000.0);       // ps
static_assert(frequency_of(Seconds{0.5}).value() == 2.0);            // Hz
static_assert(period_of(Hertz{2.0}).value() == 0.5);                 // s

// Literals.
static_assert(25_degC == Celsius{25.0});
static_assert(0.05_K == Kelvin{0.05});
static_assert(30_ps == Picoseconds{30.0});
static_assert(100_MHz == Megahertz{100.0});
static_assert((1_fF).value() == 1e-15);

// Ordering and value-initialization.
static_assert(Celsius{25.0} < Celsius{70.0});
static_assert(Kelvin{} == Kelvin{0.0});
static_assert(Celsius{}.value() == 0.0);

// ---------------------------------------------------------------------
// Zero-overhead contract: each unit is layout-identical to double,
// trivially copyable and destructible, and usable in constexpr context.

template <class U>
constexpr bool layout_is_double() {
  return sizeof(U) == sizeof(double) && alignof(U) == alignof(double) &&
         std::is_trivially_copyable_v<U> && std::is_trivially_destructible_v<U> &&
         std::is_standard_layout_v<U>;
}
static_assert(layout_is_double<Celsius>());
static_assert(layout_is_double<Kelvin>());
static_assert(layout_is_double<Watts>());
static_assert(layout_is_double<Microwatts>());
static_assert(layout_is_double<Seconds>());
static_assert(layout_is_double<Picoseconds>());
static_assert(layout_is_double<Hertz>());
static_assert(layout_is_double<Megahertz>());
static_assert(layout_is_double<Volts>());
static_assert(layout_is_double<Ohms>());
static_assert(layout_is_double<Farads>());

// Construction from double is explicit — no implicit raw-number entry.
static_assert(!std::is_convertible_v<double, Celsius>);
static_assert(!std::is_convertible_v<double, Kelvin>);
static_assert(!std::is_convertible_v<double, Picoseconds>);
// ...and no implicit exit either.
static_assert(!std::is_convertible_v<Celsius, double>);
static_assert(!std::is_convertible_v<Watts, double>);

// Distinct tags produce unrelated types even at identical scale.
static_assert(!std::is_same_v<Watts, Microwatts>);
static_assert(!std::is_same_v<Seconds, Picoseconds>);
static_assert(!std::is_convertible_v<Seconds, Picoseconds>);

TEST(Units, CompileTimeAlgebraHolds) {
  SUCCEED() << "all static_asserts above compiled";
}

// ---------------------------------------------------------------------
// Runtime round-trips: conversions must invert to within one ulp-scale
// tolerance across the magnitudes the flow actually uses.

TEST(Units, TemperatureRoundTripIsExactAtFlowCorners) {
  for (double t : {0.0, 25.0, 45.0, 70.0, 85.0, 100.0}) {
    const Celsius c{t};
    EXPECT_DOUBLE_EQ(to_celsius(to_kelvin(c)).value(), t);
  }
}

TEST(Units, TimeRoundTripAcrossTwelveOrdersOfMagnitude) {
  for (double ps : {1.0, 30.0, 166.0, 902.0, 1e6}) {
    EXPECT_DOUBLE_EQ(to_picoseconds(to_seconds(Picoseconds{ps})).value(), ps);
  }
  for (double s : {1e-12, 2.5e-10, 1.0}) {
    EXPECT_DOUBLE_EQ(to_seconds(to_picoseconds(Seconds{s})).value(), s);
  }
}

TEST(Units, PowerRoundTrip) {
  for (double uw : {0.15, 5.74, 879.0, 2.4e6}) {
    EXPECT_DOUBLE_EQ(to_microwatts(to_watts(Microwatts{uw})).value(), uw);
  }
}

TEST(Units, FrequencyPeriodRoundTrip) {
  for (double mhz : {0.5, 100.0, 250.0, 1234.5}) {
    EXPECT_DOUBLE_EQ(frequency_of(period_of(Megahertz{mhz})).value(), mhz);
  }
}

// Pinned bit-identity contract (s/ps audit, DESIGN.md section 9): the
// typed fmax must reproduce the flow's historical `1e6 / cp_ps`
// expression bit-for-bit. STA results and the bench_all golden stdout
// depend on this exact arithmetic, not on a mathematically equivalent
// rearrangement (e.g. via Hz or seconds), which can differ in the last
// ulp and would shift Algorithm 1's convergence trajectory.
TEST(Units, FrequencyOfMatchesHistoricalExpressionBitwise) {
  for (double cp_ps : {166.3, 1000.0, 3333.333, 4812.77}) {
    const double legacy = 1e6 / cp_ps;
    EXPECT_EQ(frequency_of(Picoseconds{cp_ps}).value(), legacy);
    // The seconds/Hertz route is NOT the contract; document that it may
    // differ by an ulp rather than silently relying on it.
    const double via_si = 1e-6 / (cp_ps * 1e-12);
    EXPECT_NEAR(via_si, legacy, legacy * 1e-12);
  }
}

TEST(Units, AffineTemperatureAccumulation) {
  Celsius t{25.0};
  t += Kelvin{10.0};
  t -= Kelvin{2.5};
  EXPECT_DOUBLE_EQ(t.value(), 32.5);
  EXPECT_DOUBLE_EQ((t - Celsius{25.0}).value(), 7.5);
}

TEST(Units, RcProductGivesElmoreTimeConstant) {
  // 1 kOhm * 1 fF = 1e3 * 1e-15 s = 1 ps.
  const Seconds tau = Ohms{1e3} * (1_fF);
  EXPECT_DOUBLE_EQ(to_picoseconds(tau).value(), 1.0);
}

}  // namespace

// Tests for the stage-graph / artifact-store tentpole: the versioned
// binary codec (byte-exact round trips, envelope validation), the
// on-disk ArtifactStore (save/load, corruption corpus degrading to clean
// misses), the FlowGraph's hash chaining and dependency validation, and
// the FlowCache disk tier (warm loads bit-identical to computed builds,
// checkpoint/resume, in-memory hit/miss semantics unchanged).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "activity/activity.hpp"
#include "core/flow.hpp"
#include "core/stage_graph.hpp"
#include "netlist/benchmarks.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/router.hpp"
#include "runner/artifact_store.hpp"
#include "runner/flow_cache.hpp"
#include "runner/metrics.hpp"
#include "util/codec.hpp"

namespace {

using namespace taf;
namespace fs = std::filesystem;
namespace codec = util::codec;

constexpr double kScale = 1.0 / 16;

const arch::ArchParams& test_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

netlist::BenchmarkSpec spec_of(const char* name) {
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return {};
}

/// Fresh directory under the system temp dir; removed by the guard.
struct TempDir {
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "taf_store_XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// The four storable artifacts of an implementation, as codec payloads.
std::vector<std::string> artifact_bytes(const core::Implementation& impl) {
  codec::Encoder p, pl, r, a;
  pack::serialize(impl.packed, p);
  place::serialize(impl.placement, pl);
  route::serialize(impl.routes, r);
  activity::serialize(impl.activity, a);
  return {p.take(), pl.take(), r.take(), a.take()};
}

// ---------- codec primitives ----------

TEST(Codec, PrimitivesRoundTrip) {
  codec::Encoder e;
  e.u8(0xab);
  e.u32(0xdeadbeefu);
  e.u64(0x0123456789abcdefull);
  e.i32(-7);
  e.i64(-12345678901234ll);
  e.f64(-0.0);
  e.f64(1.0 / 3.0);
  e.str("artifact");
  e.i32_vec({1, -2, 3});
  e.f64_vec({0.5, -2.25});

  codec::Decoder d(e.buffer());
  EXPECT_EQ(d.u8(), 0xab);
  EXPECT_EQ(d.u32(), 0xdeadbeefu);
  EXPECT_EQ(d.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(d.i32(), -7);
  EXPECT_EQ(d.i64(), -12345678901234ll);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_DOUBLE_EQ(d.f64(), 1.0 / 3.0);
  EXPECT_EQ(d.str(), "artifact");
  EXPECT_EQ(d.i32_vec(), (std::vector<int>{1, -2, 3}));
  EXPECT_EQ(d.f64_vec(), (std::vector<double>{0.5, -2.25}));
  EXPECT_TRUE(d.done());
  EXPECT_NO_THROW(d.expect_done());
}

TEST(Codec, TruncationAndTrailingBytesThrow) {
  codec::Encoder e;
  e.u64(42);
  const std::string buf = e.buffer();
  // Any prefix shorter than the encoding fails the bounds check.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    codec::Decoder d(std::string_view(buf).substr(0, n));
    EXPECT_THROW(d.u64(), codec::Error) << "prefix " << n;
  }
  // Unconsumed bytes are a layout drift, not silence.
  codec::Decoder d(buf);
  d.u32();
  EXPECT_THROW(d.expect_done(), codec::Error);
}

TEST(Codec, CorruptLengthPrefixFailsFastWithoutAllocating) {
  // A corrupted element count larger than the remaining input must throw
  // instead of reserving petabytes.
  codec::Encoder e;
  e.u64(1ull << 40);  // claimed vector length; no elements follow
  codec::Decoder ds(e.buffer());
  EXPECT_THROW(ds.i32_vec(), codec::Error);
  codec::Decoder df(e.buffer());
  EXPECT_THROW(df.f64_vec(), codec::Error);
  codec::Decoder dstr(e.buffer());
  EXPECT_THROW(dstr.str(), codec::Error);
}

// ---------- envelope ----------

TEST(Codec, EnvelopeRoundTripsPayload) {
  const std::string payload = "stage payload bytes \x01\x02\x00";
  const std::string file = codec::wrap("pack", payload);
  EXPECT_EQ(std::string(codec::unwrap(file, "pack")), payload);
}

TEST(Codec, EnvelopeRejectsEveryTamperMode) {
  const std::string file = codec::wrap("pack", "payload");

  std::string bad_magic = file;
  bad_magic[0] = 'X';
  EXPECT_THROW(codec::unwrap(bad_magic, "pack"), codec::Error);

  std::string stale_version = file;
  stale_version[4] = 99;  // version u32 starts at byte 4
  EXPECT_THROW(codec::unwrap(stale_version, "pack"), codec::Error);

  EXPECT_THROW(codec::unwrap(file, "route"), codec::Error);  // kind mismatch

  for (std::size_t n : {std::size_t{0}, std::size_t{10}, file.size() - 1}) {
    EXPECT_THROW(codec::unwrap(std::string_view(file).substr(0, n), "pack"),
                 codec::Error)
        << "truncated to " << n;
  }

  std::string flipped = file;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x40);  // payload bit flip
  EXPECT_THROW(codec::unwrap(flipped, "pack"), codec::Error);
}

// ---------- stage graph ----------

TEST(StageGraph, AddValidatesDependencies) {
  core::FlowGraph g;
  core::FlowStage orphan;
  orphan.name = "pack";
  orphan.output = core::ArtifactKind::Packed;
  orphan.inputs = {core::ArtifactKind::Netlist};  // nothing seeded it
  EXPECT_THROW(g.add(std::move(orphan)), std::logic_error);

  g.seed_artifact(core::ArtifactKind::Netlist, 1);
  core::FlowStage pack_stage;
  pack_stage.name = "pack";
  pack_stage.output = core::ArtifactKind::Packed;
  pack_stage.inputs = {core::ArtifactKind::Netlist};
  g.add(std::move(pack_stage));

  core::FlowStage duplicate;
  duplicate.name = "pack2";
  duplicate.output = core::ArtifactKind::Packed;  // already produced
  EXPECT_THROW(g.add(std::move(duplicate)), std::logic_error);
}

TEST(StageGraph, HashChainPropagatesUpstreamChanges) {
  const auto spec = spec_of("sha");
  core::ImplementOptions a;
  core::ImplementOptions b = a;
  b.seed = a.seed + 1;
  const auto ga = core::FlowGraph::standard(spec, test_arch(), a);
  const auto gb = core::FlowGraph::standard(spec, test_arch(), b);
  ASSERT_EQ(ga.stages().size(), gb.stages().size());
  // The seed feeds the netlist (and the placer), so every stage hash
  // downstream of either must change.
  for (std::size_t i = 0; i < ga.stages().size(); ++i) {
    EXPECT_NE(ga.stages()[i].input_hash, gb.stages()[i].input_hash)
        << ga.stages()[i].name;
  }

  // A route-only knob changes route (and downstream) but not pack/place.
  core::ImplementOptions c = a;
  c.route.astar_fac += 0.125;
  const auto gc = core::FlowGraph::standard(spec, test_arch(), c);
  for (std::size_t i = 0; i < ga.stages().size(); ++i) {
    const std::string name = ga.stages()[i].name;
    if (name == "pack" || name == "place" || name == "activity") {
      EXPECT_EQ(ga.stages()[i].input_hash, gc.stages()[i].input_hash) << name;
    } else {
      EXPECT_NE(ga.stages()[i].input_hash, gc.stages()[i].input_hash) << name;
    }
  }
}

// ---------- artifact store ----------

TEST(ArtifactStore, SaveLoadRoundTripAndMiss) {
  const TempDir dir;
  runner::ArtifactStore store(dir.path + "/nested/created");  // creates dirs
  std::string payload;
  EXPECT_FALSE(store.load("pack", 0x1234, payload));  // absent -> plain miss
  store.save("pack", 0x1234, "bytes");
  ASSERT_TRUE(store.load("pack", 0x1234, payload));
  EXPECT_EQ(payload, "bytes");
  EXPECT_FALSE(store.load("route", 0x1234, payload));  // kind is in the name
  const auto s = store.stats();
  EXPECT_EQ(s.disk_hits, 1u);
  EXPECT_EQ(s.disk_misses, 2u);
  EXPECT_EQ(s.disk_writes, 1u);
  EXPECT_EQ(s.disk_errors, 0u);
}

TEST(ArtifactStore, CorruptionCorpusDegradesToCleanMiss) {
  const TempDir dir;
  runner::ArtifactStore store(dir.path);
  store.save("pack", 1, "pack payload");
  store.save("place", 2, "place payload");
  store.save("route", 3, "route payload");

  // Truncate, flip the magic, and stale the version — one file each.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    files.push_back(entry.path());
  }
  ASSERT_EQ(files.size(), 3u);
  auto patch = [](const fs::path& p, std::size_t offset, char value, bool trunc) {
    if (trunc) {
      fs::resize_file(p, offset);
      return;
    }
    std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(value);
  };
  patch(files[0], 17, 0, /*trunc=*/true);
  patch(files[1], 0, 'X', /*trunc=*/false);   // magic
  patch(files[2], 4, 99, /*trunc=*/false);    // codec version

  std::string payload;
  std::uint64_t key = 0;
  for (const char* kind : {"pack", "place", "route"}) {
    EXPECT_FALSE(store.load(kind, ++key, payload)) << kind;
  }
  auto s = store.stats();
  EXPECT_EQ(s.disk_errors, 3u);
  EXPECT_EQ(s.disk_misses, 3u);
  EXPECT_EQ(s.disk_hits, 0u);

  // The cache self-heals: a re-save overwrites and loads cleanly.
  store.save("pack", 1, "pack payload");
  EXPECT_TRUE(store.load("pack", 1, payload));
  EXPECT_EQ(payload, "pack payload");
}

// ---------- FlowCache disk tier ----------

TEST(FlowCacheDisk, WarmLoadIsBitIdenticalToComputedBuild) {
  const TempDir dir;
  const auto spec = spec_of("sha");

  runner::ArtifactStore store_a(dir.path);
  runner::FlowCache cache_a;
  cache_a.set_artifact_store(&store_a);
  runner::TaskMetrics metrics;
  std::vector<std::string> cold_bytes;
  {
    const runner::ArtifactCounterScope scope(metrics);
    cold_bytes = artifact_bytes(cache_a.implementation(spec, test_arch(), kScale));
  }
  {
    const auto s = cache_a.stats();
    EXPECT_EQ(s.impl_misses, 1u);
    EXPECT_EQ(s.disk_hits, 0u);
    EXPECT_EQ(s.disk_misses, 4u);   // pack, place, route, activity
    EXPECT_EQ(s.disk_writes, 4u);
    // The thread-local counters attribute the same traffic to the task.
    EXPECT_EQ(metrics.disk_misses, 4u);
    EXPECT_EQ(metrics.disk_writes, 4u);
  }

  // A fresh process (modelled by a fresh cache+store over the same
  // directory) reloads every stage and reproduces the artifacts bit for
  // bit.
  runner::ArtifactStore store_b(dir.path);
  runner::FlowCache cache_b;
  cache_b.set_artifact_store(&store_b);
  const auto warm_bytes =
      artifact_bytes(cache_b.implementation(spec, test_arch(), kScale));
  EXPECT_EQ(warm_bytes, cold_bytes);
  const auto s = cache_b.stats();
  EXPECT_EQ(s.impl_misses, 1u);  // memory semantics: still a memory miss
  EXPECT_EQ(s.disk_hits, 4u);
  EXPECT_EQ(s.disk_misses, 0u);
  EXPECT_EQ(s.disk_writes, 0u);  // loads are never re-stored
}

TEST(FlowCacheDisk, ResumeRecomputesOnlyTheMissingStage) {
  const TempDir dir;
  const auto spec = spec_of("sha");
  std::vector<std::string> cold_bytes;
  {
    runner::ArtifactStore store(dir.path);
    runner::FlowCache cache;
    cache.set_artifact_store(&store);
    cold_bytes = artifact_bytes(cache.implementation(spec, test_arch(), kScale));
  }
  // Model a run killed mid-route: its artifact never got renamed in.
  int removed = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    if (entry.path().filename().string().rfind("route-", 0) == 0) {
      fs::remove(entry.path());
      ++removed;
    }
  }
  ASSERT_EQ(removed, 1);

  runner::ArtifactStore store(dir.path);
  runner::FlowCache cache;
  cache.set_artifact_store(&store);
  const auto resumed = artifact_bytes(cache.implementation(spec, test_arch(), kScale));
  EXPECT_EQ(resumed, cold_bytes);
  const auto s = cache.stats();
  EXPECT_EQ(s.disk_hits, 3u);    // pack, place, activity reloaded
  EXPECT_EQ(s.disk_misses, 1u);  // route recomputed...
  EXPECT_EQ(s.disk_writes, 1u);  // ...and stored for the next run
}

TEST(FlowCacheDisk, InMemoryHitSemanticsUnchangedByDiskTier) {
  // Regression pin: attaching the disk tier must not change the
  // in-memory hit/miss accounting, and an in-memory hit must never touch
  // the disk (no double counting).
  const auto spec = spec_of("sha");

  runner::FlowCache plain;
  plain.implementation(spec, test_arch(), kScale);
  plain.implementation(spec, test_arch(), kScale);
  {
    const auto s = plain.stats();
    EXPECT_EQ(s.impl_misses, 1u);
    EXPECT_EQ(s.impl_hits, 1u);
    EXPECT_EQ(s.disk_hits, 0u);  // no store attached: disk tier inert
    EXPECT_EQ(s.disk_misses, 0u);
    EXPECT_EQ(s.disk_writes, 0u);
  }

  const TempDir dir;
  runner::ArtifactStore store(dir.path);
  runner::FlowCache cache;
  cache.set_artifact_store(&store);
  cache.implementation(spec, test_arch(), kScale);
  const auto after_build = cache.stats();
  cache.implementation(spec, test_arch(), kScale);  // in-memory hit
  const auto after_hit = cache.stats();
  EXPECT_EQ(after_hit.impl_misses, 1u);
  EXPECT_EQ(after_hit.impl_hits, 1u);
  EXPECT_EQ(after_hit.disk_hits, after_build.disk_hits);
  EXPECT_EQ(after_hit.disk_misses, after_build.disk_misses);
  EXPECT_EQ(after_hit.disk_writes, after_build.disk_writes);
}

// ---------- suite-wide round trip ----------

TEST(ArtifactRoundTrip, EverySuiteBenchmarkReserializesByteIdentical) {
  // The byte-exactness contract behind the disk tier: for every suite
  // benchmark, serialize -> deserialize -> re-serialize of all four
  // storable artifacts reproduces the original bytes exactly.
  for (const auto& spec : netlist::vtr_suite()) {
    const auto impl =
        core::implement(netlist::scaled(spec, kScale), test_arch());

    codec::Encoder e1;
    pack::serialize(impl->packed, e1);
    codec::Decoder d1(e1.buffer());
    const pack::PackedNetlist packed2 = pack::deserialize(d1);
    d1.expect_done();
    codec::Encoder e1b;
    pack::serialize(packed2, e1b);
    EXPECT_EQ(e1b.buffer(), e1.buffer()) << spec.name << " pack";

    codec::Encoder e2;
    place::serialize(impl->placement, e2);
    codec::Decoder d2(e2.buffer());
    const place::Placement placement2 = place::deserialize(d2);
    d2.expect_done();
    codec::Encoder e2b;
    place::serialize(placement2, e2b);
    EXPECT_EQ(e2b.buffer(), e2.buffer()) << spec.name << " place";

    codec::Encoder e3;
    route::serialize(impl->routes, e3);
    codec::Decoder d3(e3.buffer());
    const route::RouteResult routes2 = route::deserialize(d3);
    d3.expect_done();
    codec::Encoder e3b;
    route::serialize(routes2, e3b);
    EXPECT_EQ(e3b.buffer(), e3.buffer()) << spec.name << " route";

    codec::Encoder e4;
    activity::serialize(impl->activity, e4);
    codec::Decoder d4(e4.buffer());
    const std::vector<activity::SignalStats> activity2 = activity::deserialize(d4);
    d4.expect_done();
    codec::Encoder e4b;
    activity::serialize(activity2, e4b);
    EXPECT_EQ(e4b.buffer(), e4.buffer()) << spec.name << " activity";
  }
}

}  // namespace

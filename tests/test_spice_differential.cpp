// Differential backend tests: every PathSpec circuit the characterization
// flow simulates (routing muxes, LUT, DSP path) and every standard cell's
// measurement testbench, at the five temperature corners the paper sweeps,
// must produce identical results from the dense and sparse linear solvers.

#include <gtest/gtest.h>

#include <string>

#include "arch/arch_params.hpp"
#include "coffe/path_eval.hpp"
#include "coffe/path_spec.hpp"
#include "coffe/stdcell.hpp"
#include "diff_harness.hpp"
#include "tech/technology.hpp"

namespace {

using namespace taf;

const double kCorners[] = {0.0, 25.0, 45.0, 70.0, 100.0};

struct PathCase {
  coffe::ResourceKind kind;
  const char* name;
};

// Every ResourceKind with a SPICE path (BRAM is a dedicated analytic
// model and never reaches the transient solver).
const PathCase kPathCases[] = {
    {coffe::ResourceKind::SbMux, "sb_mux"},
    {coffe::ResourceKind::CbMux, "cb_mux"},
    {coffe::ResourceKind::LocalMux, "local_mux"},
    {coffe::ResourceKind::FeedbackMux, "feedback_mux"},
    {coffe::ResourceKind::OutputMux, "output_mux"},
    {coffe::ResourceKind::Lut, "lut"},
    {coffe::ResourceKind::Dsp, "dsp"},
};

class PathDifferentialTest
    : public ::testing::TestWithParam<std::tuple<PathCase, double>> {};

TEST_P(PathDifferentialTest, BackendsAgree) {
  const auto& [pc, temp_c] = GetParam();
  const auto arch = arch::scaled_arch();
  const auto tech = tech::ptm22();
  const coffe::PathSpec spec = coffe::spec_for(pc.kind, arch);
  const coffe::PathCircuitProbe probe = coffe::build_path_circuit(spec, tech, units::Celsius(temp_c));

  spice::SolverOptions opt;
  opt.temp_c = units::Celsius(temp_c);
  opt.dt_ps = probe.dt_ps;
  const std::string label =
      std::string(pc.name) + " @ " + std::to_string(temp_c) + "C";

  // The full 12 ns characterization horizon is dominated by the settled
  // tail; the edge and all switching finish well within 6 ns for every
  // path at every corner, so the harness truncates there to keep the
  // 70-case sweep fast while still covering every transition.
  const double t_stop = 6000.0;
  difftest::DiffResult r;
  difftest::run_differential(probe.circuit, tech, opt, t_stop, label, r);
  if (::testing::Test::HasFatalFailure()) return;
  difftest::expect_delay_match(r, probe.in, probe.out, spec.vdd,
                               /*in_rising=*/true, probe.out_rising, probe.t_edge_ps,
                               label);
}

INSTANTIATE_TEST_SUITE_P(
    AllPaths, PathDifferentialTest,
    ::testing::Combine(::testing::ValuesIn(kPathCases), ::testing::ValuesIn(kCorners)),
    [](const auto& name_info) {
      return std::string(std::get<0>(name_info.param).name) + "_" +
             std::to_string(static_cast<int>(std::get<1>(name_info.param))) + "C";
    });

class CellDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CellDifferentialTest, BackendsAgree) {
  const auto& [cell_index, temp_c] = GetParam();
  const auto tech = tech::ptm22();
  const auto type = static_cast<coffe::stdcell::CellType>(cell_index);
  const coffe::stdcell::CellCircuitProbe probe =
      coffe::stdcell::build_cell_circuit(tech, type, /*w_um=*/2.0, /*load_ff=*/6.0);

  spice::SolverOptions opt;
  opt.temp_c = units::Celsius(temp_c);
  opt.dt_ps = probe.dt_ps;
  const std::string label = std::string(coffe::stdcell::cell_name(type)) + " @ " +
                            std::to_string(temp_c) + "C";

  difftest::DiffResult r;
  difftest::run_differential(probe.circuit, tech, opt, probe.t_stop_ps, label, r);
  if (::testing::Test::HasFatalFailure()) return;
  difftest::expect_delay_match(r, probe.in, probe.out, tech.vdd,
                               /*in_rising=*/false, probe.out_rising, probe.t_edge_ps,
                               label);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CellDifferentialTest,
    ::testing::Combine(::testing::Range(0, coffe::stdcell::kNumCellTypes),
                       ::testing::ValuesIn(kCorners)),
    [](const auto& name_info) {
      return std::string(coffe::stdcell::cell_name(
                 static_cast<coffe::stdcell::CellType>(std::get<0>(name_info.param)))) +
             "_" + std::to_string(static_cast<int>(std::get<1>(name_info.param))) + "C";
    });

}  // namespace

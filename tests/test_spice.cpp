// Tests for the SPICE-like simulator: DC operating points, RC transients
// against analytic solutions, inverter switching, and temperature behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/mosfet_model.hpp"
#include "spice/solver.hpp"

namespace {

using namespace taf::spice;
namespace units = taf::util::units;
using taf::tech::Flavor;
using taf::tech::Technology;
using taf::tech::ptm22;

SolverOptions opts_at(double temp_c) {
  SolverOptions o;
  o.temp_c = units::Celsius(temp_c);
  return o;
}

TEST(Dc, ResistorDividerHalvesVoltage) {
  const Technology tech = ptm22();
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId mid = c.add_node("mid");
  c.drive(vdd, dc_waveform(0.8));
  c.add_resistor(vdd, mid, 10.0);
  c.add_resistor(mid, kGround, 10.0);
  const auto v = solve_dc(c, tech, opts_at(25.0));
  EXPECT_NEAR(v[static_cast<size_t>(mid)], 0.4, 1e-3);
}

TEST(Dc, UnequalDividerRatio) {
  const Technology tech = ptm22();
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId mid = c.add_node("mid");
  c.drive(vdd, dc_waveform(1.0));
  c.add_resistor(vdd, mid, 30.0);
  c.add_resistor(mid, kGround, 10.0);
  const auto v = solve_dc(c, tech, opts_at(25.0));
  EXPECT_NEAR(v[static_cast<size_t>(mid)], 0.25, 1e-3);
}

TEST(Dc, InverterRailsAreCorrect) {
  const Technology tech = ptm22();
  for (const bool input_high : {false, true}) {
    Circuit c;
    const NodeId vdd = c.add_node("vdd");
    const NodeId in = c.add_node("in");
    const NodeId out = c.add_node("out");
    c.drive(vdd, dc_waveform(tech.vdd));
    c.drive(in, dc_waveform(input_high ? tech.vdd : 0.0));
    c.add_mosfet(MosType::Nmos, Flavor::HP, out, in, kGround, 1.0);
    c.add_mosfet(MosType::Pmos, Flavor::HP, out, in, vdd, 2.0);
    const auto v = solve_dc(c, tech, opts_at(25.0));
    const double expected = input_high ? 0.0 : tech.vdd;
    EXPECT_NEAR(v[static_cast<size_t>(out)], expected, 0.02)
        << "input_high=" << input_high;
  }
}

TEST(Transient, RcChargeMatchesAnalytic) {
  // R = 1 kOhm, C = 50 fF -> tau = 50 ps. Drive a step and compare the
  // capacitor voltage to the exponential solution at several times.
  const Technology tech = ptm22();
  Circuit c;
  const NodeId src = c.add_node("src");
  const NodeId cap = c.add_node("cap");
  c.drive(src, step_waveform(0.0, 1.0, 0.0, 1e-3));
  c.add_resistor(src, cap, 1.0);
  c.add_capacitor(cap, kGround, 50.0);
  SolverOptions o = opts_at(25.0);
  o.dt_ps = 0.5;
  const auto r = solve_transient(c, tech, o, 300.0);
  for (std::size_t i = 0; i < r.time_ps.size(); i += 100) {
    const double t = r.time_ps[i];
    const double expected = 1.0 - std::exp(-t / 50.0);
    EXPECT_NEAR(r.value_at(cap, i), expected, 0.03) << "t=" << t;
  }
}

TEST(Transient, InverterPropagationDelayPositive) {
  const Technology tech = ptm22();
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.drive(vdd, dc_waveform(tech.vdd));
  c.drive(in, step_waveform(0.0, tech.vdd, 50.0));
  c.add_mosfet(MosType::Nmos, Flavor::HP, out, in, kGround, 1.0);
  c.add_mosfet(MosType::Pmos, Flavor::HP, out, in, vdd, 2.0);
  c.add_capacitor(out, kGround, 5.0);
  SolverOptions o = opts_at(25.0);
  o.dt_ps = 0.5;
  const auto r = solve_transient(c, tech, o, 400.0);
  const double d = propagation_delay_ps(r, in, out, tech.vdd, /*in_rising=*/true,
                                        /*out_rising=*/false);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 100.0);
}

TEST(Transient, InverterSlowsWithTemperature) {
  // The core physical effect behind the whole paper: the same circuit is
  // slower at 100 degC than at 0 degC.
  const Technology tech = ptm22();
  auto delay_at = [&](double temp) {
    Circuit c;
    const NodeId vdd = c.add_node("vdd");
    const NodeId in = c.add_node("in");
    const NodeId out = c.add_node("out");
    c.drive(vdd, dc_waveform(tech.vdd));
    c.drive(in, step_waveform(0.0, tech.vdd, 50.0));
    c.add_mosfet(MosType::Nmos, Flavor::HP, out, in, kGround, 1.0);
    c.add_mosfet(MosType::Pmos, Flavor::HP, out, in, vdd, 2.0);
    c.add_capacitor(out, kGround, 10.0);
    SolverOptions o = opts_at(temp);
    o.dt_ps = 0.5;
    const auto r = solve_transient(c, tech, o, 600.0);
    return propagation_delay_ps(r, in, out, tech.vdd, true, false);
  };
  const double d0 = delay_at(0.0);
  const double d100 = delay_at(100.0);
  ASSERT_GT(d0, 0.0);
  ASSERT_GT(d100, 0.0);
  EXPECT_GT(d100 / d0, 1.2);
  EXPECT_LT(d100 / d0, 1.7);
}

TEST(Transient, PassGateSlowerAndMoreSensitive) {
  // A pass-gate stage driven through an NMOS-only switch must be more
  // temperature sensitive than the plain inverter (Fig. 1: LUT vs SB).
  const Technology tech = ptm22();
  auto delay_at = [&](double temp) {
    Circuit c;
    const NodeId vdd = c.add_node("vdd");
    const NodeId in = c.add_node("in");
    const NodeId mid = c.add_node("mid");
    const NodeId out = c.add_node("out");
    c.drive(vdd, dc_waveform(tech.vdd));
    c.drive(in, step_waveform(0.0, tech.vdd, 50.0));
    // inverter -> pass transistor (gate tied high) -> load
    c.add_mosfet(MosType::Nmos, Flavor::HP, mid, in, kGround, 1.0);
    c.add_mosfet(MosType::Pmos, Flavor::HP, mid, in, vdd, 2.0);
    c.add_mosfet(MosType::Nmos, Flavor::PassGate, out, vdd, mid, 1.0);
    c.add_capacitor(out, kGround, 8.0);
    SolverOptions o = opts_at(temp);
    o.dt_ps = 0.5;
    const auto r = solve_transient(c, tech, o, 2000.0);
    return propagation_delay_ps(r, in, out, tech.vdd, true, false);
  };
  const double d0 = delay_at(0.0);
  const double d100 = delay_at(100.0);
  ASSERT_GT(d0, 0.0);
  ASSERT_GT(d100, 0.0);
  EXPECT_GT(d100 / d0, 1.3);
}

TEST(Mosfet, CutoffCurrentTiny) {
  const Technology tech = ptm22();
  Mosfet m{MosType::Nmos, Flavor::HP, 1, 2, 0, 1.0};
  const double i = mosfet_current_ma(m, tech, 25.0, 0.8, 0.0, 0.0);
  EXPECT_GT(i, 0.0);          // subthreshold, not exactly zero
  EXPECT_LT(i, 1e-3);         // but far below on-current
}

TEST(Mosfet, SymmetricWhenTerminalsSwap) {
  const Technology tech = ptm22();
  Mosfet m{MosType::Nmos, Flavor::HP, 1, 2, 3, 1.0};
  const double fwd = mosfet_current_ma(m, tech, 25.0, 0.8, 0.8, 0.0);
  const double rev = mosfet_current_ma(m, tech, 25.0, 0.0, 0.8, 0.8);
  EXPECT_NEAR(fwd, -rev, 1e-9);
}

TEST(Mosfet, LeakageGrowsWithTemperature) {
  const Technology tech = ptm22();
  Mosfet m{MosType::Nmos, Flavor::HP, 1, 2, 0, 1.0};
  const double i25 = mosfet_current_ma(m, tech, 25.0, 0.8, 0.0, 0.0);
  const double i100 = mosfet_current_ma(m, tech, 100.0, 0.8, 0.0, 0.0);
  EXPECT_GT(i100, 2.0 * i25);
}

}  // namespace

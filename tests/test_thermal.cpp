// Tests for the HotSpot-like thermal solver: conservation, superposition,
// symmetry, lateral diffusion, and the paper's cross-validation relation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "spice/sparse.hpp"
#include "thermal/thermal_grid.hpp"

namespace {

using namespace taf;
using thermal::ThermalConfig;
using thermal::ThermalGrid;

ThermalGrid make_grid(int w = 12, int h = 12, double tamb = 25.0) {
  ThermalConfig cfg;
  cfg.ambient_c = units::Celsius(tamb);
  return ThermalGrid(arch::FpgaGrid(w, h), cfg);
}

TEST(Thermal, ZeroPowerGivesAmbient) {
  const ThermalGrid g = make_grid(10, 10, 42.0);
  const auto t = g.solve(std::vector<double>(100, 0.0));
  for (double v : t) EXPECT_NEAR(v, 42.0, 1e-9);
}

TEST(Thermal, UniformPowerGivesUniformRise) {
  // With uniform power, no lateral flow occurs: dT = P_total * R_package.
  const ThermalGrid g = make_grid(10, 10);
  const double p_tile = 5e-3;  // 5 mW per tile -> 0.5 W total
  const auto t = g.solve(std::vector<double>(100, p_tile));
  const double expected = 25.0 + 0.5 * g.config().package_r_k_per_w;
  for (double v : t) EXPECT_NEAR(v, expected, 1e-6);
}

TEST(Thermal, WarmStartMatchesColdStart) {
  // The system is SPD, so CG converges to the same fixed point from any
  // initial iterate; a warm start may only change the iteration count.
  const ThermalGrid g = make_grid(12, 12);
  std::vector<double> p(144, 0.0);
  p[5 * 12 + 7] = 0.4;
  p[3 * 12 + 2] = 0.1;
  thermal::CgStats cold_stats;
  const auto cold = g.solve(p, &cold_stats);

  // Warm-start from a perturbed copy of the solution.
  std::vector<double> x0 = cold;
  for (std::size_t i = 0; i < x0.size(); ++i) x0[i] += (i % 3 == 0) ? 0.05 : -0.02;
  thermal::CgStats warm_stats;
  const auto warm = g.solve(p, x0, &warm_stats);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_NEAR(warm[i], cold[i], 1e-9) << "tile " << i;
  }
  EXPECT_LE(warm_stats.iterations, cold_stats.iterations);
}

TEST(Thermal, WarmStartFromSolutionNeedsFarFewerIterations) {
  // Restarting from the converged field may still polish a little (the
  // cold stop can trip the relative branch of the tolerance, which sits
  // above the absolute floor) but must cost far fewer iterations than
  // the cold solve and land on the same temperatures.
  const ThermalGrid g = make_grid(10, 10);
  std::vector<double> p(100, 0.0);
  p[44] = 0.25;
  thermal::CgStats cold_stats;
  const auto sol = g.solve(p, &cold_stats);
  thermal::CgStats warm_stats;
  const auto again = g.solve(p, sol, &warm_stats);
  EXPECT_LT(warm_stats.iterations, cold_stats.iterations / 2);
  for (std::size_t i = 0; i < sol.size(); ++i) {
    EXPECT_NEAR(again[i], sol[i], 1e-9) << "tile " << i;
  }
}

TEST(Thermal, WarmStartFromAmbientMatchesColdStartBitwise) {
  // A cold solve starts CG at x = 0 (i.e. T = ambient); warm-starting
  // from the ambient map must therefore take the identical CG trajectory.
  const ThermalGrid g = make_grid(9, 9, 30.0);
  std::vector<double> p(81, 0.0);
  p[40] = 0.3;
  thermal::CgStats a_stats, b_stats;
  const auto a = g.solve(p, &a_stats);
  const auto b = g.solve(p, std::vector<double>(81, 30.0), &b_stats);
  EXPECT_EQ(a_stats.iterations, b_stats.iterations);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "tile " << i;
}

TEST(Thermal, AmbientCornerBatchMatchesPerCornerWarmSolvesBitwise) {
  // The guardband corner-batching contract: independent ambient corners
  // share one conductance operator (ambient only shifts T = Tamb + dT),
  // so the per-map-ambient solve_batch overload must reproduce, bit for
  // bit, a warm solve() on a grid configured at each corner's ambient.
  // Pinned for both backends.
  for (const auto backend : {thermal::ThermalBackend::Generic,
                             thermal::ThermalBackend::Stencil}) {
    SCOPED_TRACE(thermal::thermal_backend_name(backend));
    const std::vector<double> ambients = {25.0, 45.0, 70.0};
    const int w = 12, h = 10;
    const std::size_t n = static_cast<std::size_t>(w * h);
    std::vector<std::vector<double>> powers, initials;
    for (std::size_t k = 0; k < ambients.size(); ++k) {
      std::vector<double> p(n, 0.0), x0(n, ambients[k]);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = 0.01 * static_cast<double>((i * (k + 3)) % 17);
        x0[i] += 0.1 * static_cast<double>((i + k) % 5);  // off-solution warm start
      }
      powers.push_back(std::move(p));
      initials.push_back(std::move(x0));
    }

    ThermalConfig shared_cfg;
    shared_cfg.backend = backend;
    const ThermalGrid shared(arch::FpgaGrid(w, h), shared_cfg);
    std::vector<thermal::CgStats> batch_stats;
    const auto batch = shared.solve_batch(powers, initials, ambients, &batch_stats);
    ASSERT_EQ(batch.size(), ambients.size());
    ASSERT_EQ(batch_stats.size(), ambients.size());

    for (std::size_t k = 0; k < ambients.size(); ++k) {
      SCOPED_TRACE("corner " + std::to_string(k));
      ThermalConfig corner_cfg = shared_cfg;
      corner_cfg.ambient_c = units::Celsius(ambients[k]);
      const ThermalGrid solo_grid(arch::FpgaGrid(w, h), corner_cfg);
      thermal::CgStats solo_stats;
      const auto solo = solo_grid.solve(powers[k], initials[k], &solo_stats);
      ASSERT_EQ(batch[k].size(), solo.size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(batch[k][i], solo[i]) << "tile " << i;
      }
      EXPECT_EQ(batch_stats[k].iterations, solo_stats.iterations);
      EXPECT_EQ(batch_stats[k].preconditioned, solo_stats.preconditioned);
    }
  }
}

TEST(Thermal, HotspotIsAtThePowerSource) {
  const ThermalGrid g = make_grid(11, 11);
  std::vector<double> p(121, 0.0);
  const int center = 5 * 11 + 5;
  p[center] = 0.2;
  const auto t = g.solve(p);
  for (int i = 0; i < 121; ++i) {
    if (i == center) continue;
    EXPECT_LT(t[static_cast<size_t>(i)], t[center]);
  }
}

TEST(Thermal, TemperatureDecaysWithDistance) {
  const ThermalGrid g = make_grid(15, 15);
  std::vector<double> p(225, 0.0);
  p[7 * 15 + 7] = 0.2;
  const auto t = g.solve(p);
  // Walk right from the hotspot: monotone decay.
  for (int i = 8; i < 14; ++i) {
    EXPECT_GT(t[static_cast<size_t>(7 * 15 + i - 1)], t[static_cast<size_t>(7 * 15 + i)]);
  }
}

TEST(Thermal, Superposition) {
  // The system is linear: solve(p1 + p2) - Tamb == (solve(p1) - Tamb) +
  // (solve(p2) - Tamb).
  const ThermalGrid g = make_grid(9, 9);
  std::vector<double> p1(81, 0.0), p2(81, 0.0), sum(81, 0.0);
  p1[10] = 0.05;
  p2[70] = 0.08;
  for (int i = 0; i < 81; ++i) sum[static_cast<size_t>(i)] = p1[static_cast<size_t>(i)] + p2[static_cast<size_t>(i)];
  const auto t1 = g.solve(p1);
  const auto t2 = g.solve(p2);
  const auto ts = g.solve(sum);
  for (int i = 0; i < 81; ++i) {
    EXPECT_NEAR(ts[static_cast<size_t>(i)] - 25.0,
                (t1[static_cast<size_t>(i)] - 25.0) + (t2[static_cast<size_t>(i)] - 25.0), 1e-6);
  }
}

TEST(Thermal, MirrorSymmetry) {
  const ThermalGrid g = make_grid(9, 9);
  std::vector<double> p(81, 0.0);
  p[4 * 9 + 4] = 0.1;  // exact center
  const auto t = g.solve(p);
  for (int j = 0; j < 9; ++j) {
    for (int i = 0; i < 9; ++i) {
      EXPECT_NEAR(t[static_cast<size_t>(j * 9 + i)], t[static_cast<size_t>(j * 9 + (8 - i))], 1e-6);
      EXPECT_NEAR(t[static_cast<size_t>(j * 9 + i)], t[static_cast<size_t>((8 - j) * 9 + i)], 1e-6);
    }
  }
}

TEST(Thermal, EnergyBalance) {
  // Total heat leaving through the vertical path equals injected power:
  // sum(g_vert * dT) == sum(P). With uniform g_vert this is mean(dT) =
  // P_total * R_package.
  const ThermalGrid g = make_grid(12, 12);
  std::vector<double> p(144, 0.0);
  p[5] = 0.03;
  p[100] = 0.07;
  const auto t = g.solve(p);
  double mean_dt = 0.0;
  for (double v : t) mean_dt += v - 25.0;
  mean_dt /= 144.0;
  EXPECT_NEAR(mean_dt, 0.1 * g.config().package_r_k_per_w, 1e-6);
}

TEST(Thermal, PaperValidationRelation) {
  // Section IV-A: dT ~= 0.7 * p_design / p_base, the cross-check against
  // the Xilinx XPE spreadsheet. Our package resistance is calibrated so a
  // design drawing ~3x the base (leakage) power warms by ~2C, matching
  // the paper's observation that temperature converged after ~2C.
  const ThermalGrid g = make_grid(20, 20);
  const int n = 400;
  // Base (leakage) power chosen so p_base * R_package ~= 0.7, the point
  // the paper's rule of thumb is anchored at.
  const double p_base_tile = 0.7 / (g.config().package_r_k_per_w * n);
  std::vector<double> base(n, p_base_tile);
  std::vector<double> design(n, p_base_tile * 3.0);
  const auto t = g.solve(design);
  double mean = 0.0;
  for (double v : t) mean += v;
  mean /= n;
  const double p_design = p_base_tile * 3.0 * n;
  const double p_base = p_base_tile * n;
  const double predicted = 0.7 * p_design / p_base;
  EXPECT_NEAR(mean - 25.0, predicted, 1.2);
}

TEST(Thermal, HigherPackageResistanceRunsHotter) {
  ThermalConfig cold;
  cold.package_r_k_per_w = 2.0;
  ThermalConfig hot;
  hot.package_r_k_per_w = 8.0;
  const arch::FpgaGrid fg(10, 10);
  std::vector<double> p(100, 2e-3);
  const auto tc = ThermalGrid(fg, cold).solve(p);
  const auto th = ThermalGrid(fg, hot).solve(p);
  EXPECT_GT(ThermalGrid::peak(th).value(), ThermalGrid::peak(tc).value());
}

TEST(Thermal, AsciiHeatmapDimensions) {
  const ThermalGrid g = make_grid(8, 6);
  std::vector<double> p(48, 0.0);
  p[20] = 0.1;
  const auto t = g.solve(p);
  const std::string map = ThermalGrid::ascii_heatmap(t, 8, 6);
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 6);
  EXPECT_EQ(map.size(), static_cast<size_t>((8 + 1) * 6));
  EXPECT_NE(map.find('@'), std::string::npos);  // hotspot present
}

}  // namespace

namespace {

TEST(ThermalTransient, ConvergesToSteadyState) {
  const ThermalGrid g = make_grid(10, 10);
  std::vector<double> p(100, 0.0);
  p[45] = 0.05;
  const auto steady = g.solve(p);
  std::vector<double> t(100, 25.0);
  const double tau = g.tile_time_constant().value();
  for (int i = 0; i < 400; ++i) g.step(p, units::Seconds(tau), t);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(t[static_cast<size_t>(i)], steady[static_cast<size_t>(i)], 0.05);
  }
}

TEST(ThermalTransient, MonotonicWarmup) {
  const ThermalGrid g = make_grid(8, 8);
  std::vector<double> p(64, 2e-3);
  std::vector<double> t(64, 25.0);
  double prev = 25.0;
  const double tau = g.tile_time_constant().value();
  for (int i = 0; i < 20; ++i) {
    g.step(p, units::Seconds(tau), t);
    const double now = ThermalGrid::peak(t).value();
    EXPECT_GE(now, prev - 1e-9);
    prev = now;
  }
  EXPECT_GT(prev, 25.0);
}

TEST(ThermalTransient, CoolsBackToAmbient) {
  const ThermalGrid g = make_grid(8, 8);
  std::vector<double> hot_p(64, 2e-3);
  std::vector<double> t(64, 25.0);
  const double tau = g.tile_time_constant().value();
  for (int i = 0; i < 200; ++i) g.step(hot_p, units::Seconds(tau), t);
  ASSERT_GT(ThermalGrid::peak(t).value(), 25.5);
  const std::vector<double> zero(64, 0.0);
  for (int i = 0; i < 800; ++i) g.step(zero, units::Seconds(tau), t);
  EXPECT_NEAR(ThermalGrid::peak(t).value(), 25.0, 0.05);
}

TEST(ThermalTransient, ZeroPowerStepStaysAtAmbient) {
  // With no power and the field at ambient, any step size is a fixed
  // point — no drift from the backward-Euler solve.
  const ThermalGrid g = make_grid(9, 9, 31.0);
  const std::vector<double> zero(81, 0.0);
  std::vector<double> t(81, 31.0);
  const double tau = g.tile_time_constant().value();
  for (double dt : {tau / 100.0, tau, 50.0 * tau}) {
    g.step(zero, units::Seconds(dt), t);
    for (double v : t) EXPECT_NEAR(v, 31.0, 1e-9);
  }
}

TEST(ThermalTransient, StepRejectsNonPositiveOrNonFiniteDt) {
  // Regression (ISSUE 8): dt == 0 used to divide into the C/dt diagonal
  // and poison the whole field with non-finite values. Every degenerate
  // dt must throw before touching the temperatures.
  const ThermalGrid g = make_grid(3, 3, 25.0);
  const std::vector<double> p(9, 1e-3);
  std::vector<double> t(9, 25.0);
  const std::vector<double> before = t;
  for (const double dt : {0.0, -1.0, std::nan(""),
                          std::numeric_limits<double>::infinity()}) {
    EXPECT_THROW(g.step(p, units::Seconds(dt), t), std::invalid_argument)
        << "dt = " << dt;
    EXPECT_EQ(t, before) << "field modified by rejected dt = " << dt;
  }
}

TEST(Thermal, OneByOneGridSolveIsPackageRise) {
  // A single tile has no lateral neighbours: dT = P * R_package exactly.
  const ThermalGrid g = make_grid(1, 1, 25.0);
  const double p = 0.125;
  const auto t = g.solve({p});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_NEAR(t[0], 25.0 + p * g.config().package_r_k_per_w, 1e-9);
}

TEST(ThermalTransient, OneByOneGridStepConvergesToSolve) {
  const ThermalGrid g = make_grid(1, 1, 25.0);
  const std::vector<double> p = {0.125};
  const auto steady = g.solve(p);
  std::vector<double> t = {25.0};
  const double tau = g.tile_time_constant().value();
  for (int i = 0; i < 200; ++i) g.step(p, units::Seconds(tau), t);
  EXPECT_NEAR(t[0], steady[0], 1e-3);
}

TEST(Thermal, TwoByOneGridMatchesClosedForm) {
  // Two tiles: A = [[gv+gl, -gl], [-gl, gv+gl]]. Invert by hand and
  // compare dT = A^{-1} P component-wise.
  const ThermalGrid g = make_grid(2, 1, 25.0);
  const double gl = g.lateral_g();
  const double gv = g.vertical_g();
  const double p0 = 0.08, p1 = 0.02;
  const double det = (gv + gl) * (gv + gl) - gl * gl;
  const double dt0 = ((gv + gl) * p0 + gl * p1) / det;
  const double dt1 = (gl * p0 + (gv + gl) * p1) / det;
  const auto t = g.solve({p0, p1});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_NEAR(t[0], 25.0 + dt0, 1e-9);
  EXPECT_NEAR(t[1], 25.0 + dt1, 1e-9);
}

/// Assemble the grid's conductance matrix explicitly as CSR (5-point
/// stencil) from the public conductances.
spice::CsrMatrix assemble_thermal_csr(const ThermalGrid& g) {
  const int w = g.width(), h = g.height();
  const double gl = g.lateral_g();
  const double gv = g.vertical_g();
  spice::SparsityPattern pattern;
  for (int j = 0; j < h; ++j)
    for (int i = 0; i < w; ++i) {
      const int idx = j * w + i;
      pattern.emplace_back(idx, idx);
      if (i > 0) pattern.emplace_back(idx, idx - 1);
      if (i < w - 1) pattern.emplace_back(idx, idx + 1);
      if (j > 0) pattern.emplace_back(idx, idx - w);
      if (j < h - 1) pattern.emplace_back(idx, idx + w);
    }
  spice::CsrMatrix m = spice::CsrMatrix::from_entries(w * h, pattern);
  for (int j = 0; j < h; ++j)
    for (int i = 0; i < w; ++i) {
      const int idx = j * w + i;
      int degree = 0;
      auto lateral = [&](int nb) {
        m.val[static_cast<size_t>(m.slot(idx, nb))] = -gl;
        ++degree;
      };
      if (i > 0) lateral(idx - 1);
      if (i < w - 1) lateral(idx + 1);
      if (j > 0) lateral(idx - w);
      if (j < h - 1) lateral(idx + w);
      m.val[static_cast<size_t>(m.slot(idx, idx))] = gv + degree * gl;
    }
  return m;
}

TEST(Thermal, ApplyMatchesAssembledSparseOperator) {
  // The matrix-free apply() and an independently assembled CSR stencil
  // must agree on arbitrary vectors.
  const ThermalGrid g = make_grid(9, 7);
  const spice::CsrMatrix m = assemble_thermal_csr(g);
  const int n = 9 * 7;
  std::vector<double> x(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<size_t>(i)] = std::sin(0.7 * i) + 0.3 * i;
  std::vector<double> y_apply(static_cast<size_t>(n)), y_csr;
  g.apply(x, y_apply);
  m.multiply(x, y_csr);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(y_apply[static_cast<size_t>(i)], y_csr[static_cast<size_t>(i)], 1e-15)
        << "tile " << i;
}

TEST(Thermal, HotspotResidualOn64x64IsTiny) {
  // CG on the 64x64 grid must actually satisfy A dT = P, verified
  // through the independent CSR operator, not CG's own residual.
  const int w = 64, h = 64, n = w * h;
  const ThermalGrid g = make_grid(w, h, 25.0);
  std::vector<double> p(static_cast<size_t>(n), 1e-5);
  p[static_cast<size_t>(32 * w + 32)] = 0.5;  // hotspot
  p[static_cast<size_t>(10 * w + 50)] = 0.25;
  thermal::CgStats stats;
  const auto t = g.solve(p, &stats);

  const spice::CsrMatrix m = assemble_thermal_csr(g);
  std::vector<double> dt(static_cast<size_t>(n)), adt;
  for (int i = 0; i < n; ++i) dt[static_cast<size_t>(i)] = t[static_cast<size_t>(i)] - 25.0;
  m.multiply(dt, adt);
  double res2 = 0.0, p2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double r = adt[static_cast<size_t>(i)] - p[static_cast<size_t>(i)];
    res2 += r * r;
    p2 += p[static_cast<size_t>(i)] * p[static_cast<size_t>(i)];
  }
  EXPECT_LT(std::sqrt(res2), 1e-8 * std::sqrt(p2)) << "CG left a large residual";
  EXPECT_GT(stats.iterations, 0);
  EXPECT_LT(stats.iterations, 4 * n) << "CG hit its iteration cap";
}

TEST(Thermal, NearZeroPowerTerminatesOnAbsoluteFloor) {
  // Residuals already below the absolute tolerance floor must terminate
  // immediately instead of iterating on rounding noise (the old
  // relative-only criterion ran the full 4n iterations here).
  const ThermalGrid g = make_grid(32, 32, 25.0);
  std::vector<double> p(32 * 32, 1e-18);
  thermal::CgStats stats;
  const auto t = g.solve(p, &stats);
  EXPECT_EQ(stats.iterations, 0);
  for (double v : t) EXPECT_NEAR(v, 25.0, 1e-6);
}

TEST(ThermalTransient, StepReportsConvergence) {
  const ThermalGrid g = make_grid(8, 8, 25.0);
  std::vector<double> p(64, 2e-3);
  std::vector<double> t(64, 25.0);
  thermal::CgStats stats;
  g.step(p, g.tile_time_constant(), t, &stats);
  EXPECT_LT(stats.iterations, 4 * 64);
  EXPECT_LT(stats.residual_norm_w.value(), 1e-6);
}

TEST(Thermal, AsciiHeatmapValidatesDimensions) {
  const std::vector<double> temps(48, 25.0);
  EXPECT_THROW(ThermalGrid::ascii_heatmap({}, 8, 6), std::invalid_argument);
  EXPECT_THROW(ThermalGrid::ascii_heatmap(temps, 7, 6), std::invalid_argument);
  EXPECT_THROW(ThermalGrid::ascii_heatmap(temps, 48, 0), std::invalid_argument);
  EXPECT_THROW(ThermalGrid::ascii_heatmap(temps, -8, -6), std::invalid_argument);
  EXPECT_NO_THROW(ThermalGrid::ascii_heatmap(temps, 8, 6));
}

TEST(Thermal, PeakRejectsEmptyMap) {
  EXPECT_THROW(ThermalGrid::peak({}), std::invalid_argument);
}

TEST(Thermal, SolveThrowsOnCgBreakdownInsteadOfSilentNan) {
  // An infinite package resistance zeroes the vertical conductance; with
  // uniform power the first CG direction is the lateral operator's
  // nullspace (the constant vector), dot(p, Ap) == 0, and alpha would be
  // a silent NaN poisoning every temperature downstream. Both backends
  // must refuse loudly instead — in release builds too (same contract as
  // util::fit_exponential).
  for (const auto backend : {thermal::ThermalBackend::Generic, thermal::ThermalBackend::Stencil}) {
    ThermalConfig cfg;
    cfg.package_r_k_per_w = std::numeric_limits<double>::infinity();
    cfg.backend = backend;
    const ThermalGrid g(arch::FpgaGrid(6, 6), cfg);
    EXPECT_THROW(g.solve(std::vector<double>(36, 1e-3)), std::runtime_error)
        << thermal::thermal_backend_name(backend);
  }
}

TEST(Thermal, SolveRejectsNonFinitePower) {
  for (const auto backend : {thermal::ThermalBackend::Generic, thermal::ThermalBackend::Stencil}) {
    ThermalConfig cfg;
    cfg.backend = backend;
    const ThermalGrid g(arch::FpgaGrid(4, 4), cfg);
    std::vector<double> p(16, 1e-3);
    p[5] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(g.solve(p), std::invalid_argument)
        << thermal::thermal_backend_name(backend);
  }
}

TEST(ThermalTransient, StepWithHugeDtMatchesSolve) {
  // step() and solve() share one CG core parameterized by the C/dt
  // diagonal; as dt -> infinity the transient system degenerates to the
  // steady-state one, so a huge-dt step from ambient must land on the
  // solve() result to within the termination tolerance. This is the
  // regression test for the hand-copied CG loop step() used to carry.
  for (const auto backend : {thermal::ThermalBackend::Generic, thermal::ThermalBackend::Stencil}) {
    ThermalConfig cfg;
    cfg.backend = backend;
    const ThermalGrid g(arch::FpgaGrid(12, 12), cfg);
    std::vector<double> p(144, 1e-4);
    p[70] = 0.2;
    const auto steady = g.solve(p);
    std::vector<double> stepped(144, cfg.ambient_c.value());
    g.step(p, units::Seconds(1e12 * g.tile_time_constant().value()), stepped);
    for (std::size_t i = 0; i < stepped.size(); ++i) {
      ASSERT_NEAR(stepped[i], steady[i], 1e-6)
          << thermal::thermal_backend_name(backend) << " tile " << i;
    }
  }
}

TEST(ThermalTransient, SmallDtWarmTraceStopsOnAugmentedFloor) {
  // Regression for the transient-CG tolerance floor. The absolute floor
  // must be derived from the conductance of the operator being solved:
  // g_vert + C/dt for the backward-Euler system, not the steady-state
  // g_vert. The two differ by C/dt, which for a small step is enormous
  // (tile_time_constant / dt times g_vert) — so the old g_vert-only floor
  // demanded a residual about (1 + C/(dt g_vert))-fold smaller than the
  // augmented-diagonal criterion proves necessary for the same per-tile
  // temperature accuracy. Symptom: a warm transient trace (every step
  // after the first starts essentially at its own solution, so the
  // relative criterion is powerless) burned CG iterations on every step
  // chasing floating-point noise, and still exited with a true residual
  // above what the floor claimed to guarantee. With the augmented floor
  // the criterion recognizes the warm start instantly: zero iterations.
  for (const auto backend : {thermal::ThermalBackend::Generic, thermal::ThermalBackend::Stencil}) {
    ThermalConfig cfg;
    cfg.backend = backend;
    const ThermalGrid g(arch::FpgaGrid(16, 16), cfg);
    std::vector<double> p(256, 1e-4);
    p[120] = 0.3;
    thermal::CgStats stats;
    auto temps = g.solve(p, &stats);
    const units::Seconds dt(g.tile_time_constant().value() / 10000.0);
    // The augmented per-tile conductance: g_vert + C/dt = g_vert (1 + tau/dt).
    const double g_aug =
        g.vertical_g() * (1.0 + g.tile_time_constant().value() / dt.value());
    const double floor_w = std::sqrt(256.0) * g_aug * cfg.solve_tol_k.value();
    int trace_iterations = 0;
    for (int step = 0; step < 5; ++step) {
      g.step(p, dt, temps, &stats);
      trace_iterations += stats.iterations;
      // Each step's termination must honour the augmented-diagonal
      // accuracy contract, not merely stop.
      EXPECT_LE(stats.residual_norm_w.value(), 2.0 * floor_w)
          << thermal::thermal_backend_name(backend) << " step " << step;
    }
    // Under the old g_vert-only floor every one of these steps ground
    // through several iterations (the floor sat orders of magnitude below
    // anything the criterion needed); the augmented floor sees the warm
    // start is already converged.
    EXPECT_LE(trace_iterations, 2) << thermal::thermal_backend_name(backend);
  }
}

TEST(ThermalTransient, SmallStepTracksExponential) {
  // Uniform power on a grid behaves as one RC: dT(t) = dT_inf (1 - e^{-t/tau_pkg}).
  const ThermalGrid g = make_grid(6, 6);
  const int n = 36;
  std::vector<double> p(n, 1e-3);
  std::vector<double> t(n, 25.0);
  const double dt_inf = 1e-3 * n * g.config().package_r_k_per_w;
  // Package time constant: C_total * R_package = (n * c_tile) * R.
  const double tau = g.tile_time_constant().value();  // = c_tile / g_vert = c_tile * R * n
  const int steps = 50;
  for (int i = 0; i < steps; ++i) g.step(p, units::Seconds(tau / steps), t);
  // After one time constant: 1 - 1/e of the final rise (BE slightly under).
  const double expected = 25.0 + dt_inf * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(t[0], expected, dt_inf * 0.05);
}

}  // namespace

// Integration tests for the CAD substrate: pack, place, route, and the
// temperature-aware STA, on generated benchmarks.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "arch/arch_params.hpp"
#include "coffe/device_model.hpp"
#include "netlist/benchmarks.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/router.hpp"
#include "route/rr_graph.hpp"
#include "timing/timing.hpp"

namespace {

using namespace taf;

const arch::ArchParams& test_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

/// A mid-size benchmark shared by the heavier tests.
struct Design {
  netlist::Netlist nl;
  pack::PackedNetlist packed;
  arch::FpgaGrid grid;
  place::Placement pl;
  route::RrGraph rr;
  route::RouteResult routes;

  explicit Design(const char* name, double scale) : nl("tmp"), grid(6, 6), rr(grid, test_arch()) {
    for (const auto& s : netlist::vtr_suite()) {
      if (s.name != name) continue;
      util::Rng rng(11);
      nl = netlist::generate(netlist::scaled(s, scale), rng);
      break;
    }
    packed = pack::pack(nl, test_arch());
    grid = arch::FpgaGrid::fit(packed.count(pack::BlockKind::Clb),
                               packed.count(pack::BlockKind::Bram),
                               packed.count(pack::BlockKind::Dsp));
    place::PlaceOptions popt;
    popt.effort = 0.5;
    pl = place::place(packed, grid, popt);
    rr = route::RrGraph(grid, test_arch());
    routes = route::route(rr, packed, pl);
  }
};

const Design& sha_design() {
  static const Design d("sha", 1.0 / 16);
  return d;
}

// ---------- pack ----------

TEST(Pack, EveryPrimitiveAssigned) {
  const auto& d = sha_design();
  for (netlist::PrimId p = 0; p < static_cast<netlist::PrimId>(d.nl.prims().size()); ++p) {
    EXPECT_GE(d.packed.block_of_prim[static_cast<std::size_t>(p)], 0) << "prim " << p;
  }
}

TEST(Pack, ClusterCapacityRespected) {
  const auto& d = sha_design();
  for (const auto& b : d.packed.blocks) {
    if (b.kind != pack::BlockKind::Clb) continue;
    EXPECT_LE(static_cast<int>(b.bles.size()), test_arch().cluster_n);
  }
}

TEST(Pack, ClusterInputLimitRespected) {
  const auto& d = sha_design();
  for (const auto& b : d.packed.blocks) {
    if (b.kind != pack::BlockKind::Clb) continue;
    std::set<netlist::NetId> outputs, inputs;
    for (netlist::PrimId p : b.prims) {
      if (d.nl.prim(p).output != netlist::kNoNet) outputs.insert(d.nl.prim(p).output);
    }
    for (netlist::PrimId p : b.prims) {
      for (netlist::NetId in : d.nl.prim(p).inputs) {
        if (in != netlist::kNoNet && !outputs.count(in)) inputs.insert(in);
      }
    }
    EXPECT_LE(static_cast<int>(inputs.size()), test_arch().cluster_inputs);
  }
}

TEST(Pack, RegisteredBlePairsFfWithLut) {
  const auto& d = sha_design();
  int paired = 0;
  for (const auto& b : d.packed.blocks) {
    for (const auto& ble : b.bles) {
      if (ble.lut >= 0 && ble.ff >= 0) {
        ++paired;
        // The FF's data input must be the LUT's output net.
        EXPECT_EQ(d.nl.prim(ble.ff).inputs[0], d.nl.prim(ble.lut).output);
      }
    }
  }
  EXPECT_GT(paired, 0);
}

TEST(Pack, BlockNetsExcludeInternalSinks) {
  const auto& d = sha_design();
  for (const auto& bn : d.packed.block_nets) {
    for (int s : bn.sink_blocks) EXPECT_NE(s, bn.driver_block);
  }
}

TEST(Pack, HardBlocksAreSingletons) {
  const Design d("mkPktMerge", 1.0 / 16);  // BRAM-rich
  int brams = 0;
  for (const auto& b : d.packed.blocks) {
    if (b.kind == pack::BlockKind::Bram) {
      ++brams;
      EXPECT_EQ(b.prims.size(), 1u);
    }
  }
  EXPECT_EQ(brams, d.nl.count(netlist::PrimKind::Bram));
}

TEST(Pack, AffinityTieBreaksByLowestNet) {
  // Seed LUT a reads nets {na, nb}; candidate x shares only na, candidate
  // y shares only nb, so both tie at affinity 1. The candidate scan visits
  // cluster nets in ascending NetId order, so x — reached via na < nb —
  // must be the first BLE merged into a's cluster regardless of
  // unordered_set hash-iteration order.
  netlist::Netlist nl("tie");
  auto in = [&](const char* name) {
    return nl.add_net(nl.add_primitive({netlist::PrimKind::Input, name, {}, netlist::kNoNet, 0}));
  };
  const netlist::NetId na = in("na"), nb = in("nb"), nc = in("nc"), nd = in("nd");
  auto lut2 = [&](const char* name, netlist::NetId p0, netlist::NetId p1) {
    const netlist::PrimId id =
        nl.add_primitive({netlist::PrimKind::Lut, name, {}, netlist::kNoNet, 0x6});
    nl.connect(p0, id, 0);
    nl.connect(p1, id, 1);
    return id;
  };
  const netlist::PrimId a = lut2("a", na, nb);
  const netlist::PrimId x = lut2("x", na, nc);
  const netlist::PrimId y = lut2("y", nb, nd);
  (void)y;
  for (netlist::PrimId lut : {a, x, y}) {
    const netlist::NetId out = nl.add_net(lut);
    const netlist::PrimId po = nl.add_primitive(
        {netlist::PrimKind::Output, "o_" + nl.prim(lut).name, {}, netlist::kNoNet, 0});
    nl.connect(out, po, 0);
  }
  ASSERT_EQ(nl.validate(), "");

  const pack::PackedNetlist packed = pack::pack(nl, test_arch());
  const int blk = packed.block_of_prim[static_cast<std::size_t>(a)];
  ASSERT_GE(blk, 0);
  const pack::Block& cluster = packed.blocks[static_cast<std::size_t>(blk)];
  ASSERT_GE(cluster.bles.size(), 2u);
  EXPECT_EQ(cluster.bles[0].lut, a);
  EXPECT_EQ(cluster.bles[1].lut, x) << "affinity tie must break toward the lower net id";
}

// ---------- place ----------

TEST(Place, AllBlocksOnLegalTiles) {
  const auto& d = sha_design();
  for (std::size_t b = 0; b < d.packed.blocks.size(); ++b) {
    const arch::TilePos p = d.pl.pos[b];
    const arch::TileKind tk = d.grid.at(p);
    switch (d.packed.blocks[b].kind) {
      case pack::BlockKind::Clb: EXPECT_EQ(tk, arch::TileKind::Clb); break;
      case pack::BlockKind::Bram: EXPECT_EQ(tk, arch::TileKind::Bram); break;
      case pack::BlockKind::Dsp: EXPECT_EQ(tk, arch::TileKind::Dsp); break;
      case pack::BlockKind::Io: EXPECT_EQ(tk, arch::TileKind::Io); break;
    }
  }
}

TEST(Place, NoTileOverCapacity) {
  const auto& d = sha_design();
  std::unordered_map<int, int> count;
  for (std::size_t b = 0; b < d.packed.blocks.size(); ++b) {
    count[d.grid.index_of(d.pl.pos[b])]++;
  }
  for (const auto& [tile, n] : count) {
    const arch::TileKind tk = d.grid.at(d.grid.pos_of(tile));
    EXPECT_LE(n, tk == arch::TileKind::Io ? 8 : 1);
  }
}

TEST(Place, AnnealingImprovesOverRandom) {
  const Design& d = sha_design();
  // A near-minimal anneal must be no better. effort = 0 now throws (see
  // Place.RejectsInvalidOptions); the smallest legal effort still runs
  // the 64-move floor at every temperature, so compare against a 5%
  // margin instead of strict ordering.
  place::PlaceOptions rand_opt;
  rand_opt.seed = 77;
  rand_opt.effort = 1e-6;
  const double annealed = place::wirelength_cost(d.packed, d.pl);
  place::Placement random_pl = place::place(d.packed, d.grid, rand_opt);
  const double quick = place::wirelength_cost(d.packed, random_pl);
  EXPECT_LT(annealed, quick * 1.05);
  EXPECT_GT(annealed, 0.0);
}

TEST(Place, DeterministicForSeed) {
  const auto& d = sha_design();
  place::PlaceOptions o;
  o.seed = 5;
  o.effort = 0.2;
  const auto p1 = place::place(d.packed, d.grid, o);
  const auto p2 = place::place(d.packed, d.grid, o);
  EXPECT_EQ(p1.cost, p2.cost);
  for (std::size_t i = 0; i < p1.pos.size(); ++i) EXPECT_EQ(p1.pos[i], p2.pos[i]);
}

// ---------- rr graph / route ----------

TEST(RrGraph, PinLookupsAreConsistent) {
  const auto& d = sha_design();
  for (int y = 0; y < d.grid.height(); ++y) {
    for (int x = 0; x < d.grid.width(); ++x) {
      const auto op = d.rr.node(d.rr.opin_at(x, y));
      EXPECT_EQ(op.kind, route::RrKind::Opin);
      EXPECT_EQ(op.tile.x, x);
      EXPECT_EQ(op.tile.y, y);
      const auto ip = d.rr.node(d.rr.ipin_at(x, y));
      EXPECT_EQ(ip.kind, route::RrKind::Ipin);
    }
  }
}

TEST(RrGraph, WiresHaveBoundedSpan) {
  const auto& d = sha_design();
  const int seg = test_arch().wire_segment_length;
  int wires = 0;
  for (route::RrNodeId n = 0; n < d.rr.num_nodes(); ++n) {
    const auto& node = d.rr.node(n);
    if (node.kind != route::RrKind::WireH && node.kind != route::RrKind::WireV) continue;
    ++wires;
    EXPECT_GE(node.span, 1);
    EXPECT_LE(node.span, seg);
  }
  EXPECT_EQ(wires, d.rr.num_wires());
}

TEST(RrGraph, OpinsReachWiresAndWiresReachIpins) {
  const auto& d = sha_design();
  // Interior tile: its OPIN must have wire fanout; some wire must feed
  // its IPIN (checked via reverse scan).
  const int x = d.grid.width() / 2, y = d.grid.height() / 2;
  EXPECT_FALSE(d.rr.fanout(d.rr.opin_at(x, y)).empty());
  bool ipin_reachable = false;
  const route::RrNodeId ip = d.rr.ipin_at(x, y);
  for (route::RrNodeId n = 0; n < d.rr.num_nodes() && !ipin_reachable; ++n) {
    for (route::RrNodeId to : d.rr.fanout(n)) {
      if (to == ip) {
        ipin_reachable = true;
        break;
      }
    }
  }
  EXPECT_TRUE(ipin_reachable);
}

TEST(Route, ConvergesWithoutOveruse) {
  const auto& d = sha_design();
  EXPECT_TRUE(d.routes.success);
  EXPECT_EQ(d.routes.overused_nodes, 0);
  EXPECT_GT(d.routes.wire_utilization, 0.0);
}

TEST(Route, OccupancyWithinCapacity) {
  const auto& d = sha_design();
  std::vector<int> occ(static_cast<std::size_t>(d.rr.num_nodes()), 0);
  for (const auto& r : d.routes.routes) {
    for (route::RrNodeId n : r.nodes) occ[static_cast<std::size_t>(n)]++;
  }
  for (route::RrNodeId n = 0; n < d.rr.num_nodes(); ++n) {
    EXPECT_LE(occ[static_cast<std::size_t>(n)], d.rr.node(n).capacity) << "node " << n;
  }
}

TEST(Route, EveryNetFullyRouted) {
  const auto& d = sha_design();
  ASSERT_EQ(d.routes.routes.size(), d.packed.block_nets.size());
  for (std::size_t i = 0; i < d.routes.routes.size(); ++i) {
    const auto& nr = d.routes.routes[i];
    EXPECT_FALSE(nr.nodes.empty()) << "net " << i;
    ASSERT_EQ(nr.paths.size(), d.packed.block_nets[i].sink_blocks.size());
    for (std::size_t s = 0; s < nr.paths.size(); ++s) {
      ASSERT_FALSE(nr.paths[s].empty());
      // The path must end at the sink block's IPIN.
      const int sink = d.packed.block_nets[i].sink_blocks[s];
      const arch::TilePos p = d.pl.pos[static_cast<std::size_t>(sink)];
      EXPECT_EQ(nr.paths[s].back(), d.rr.ipin_at(p.x, p.y));
    }
  }
}

TEST(Route, ParentChainsReachTheSource) {
  const auto& d = sha_design();
  for (std::size_t i = 0; i < d.routes.routes.size(); ++i) {
    const auto& nr = d.routes.routes[i];
    std::unordered_map<route::RrNodeId, route::RrNodeId> parent;
    for (const auto& [n, p] : nr.parents) parent[n] = p;
    const auto& bn = d.packed.block_nets[i];
    const arch::TilePos sp = d.pl.pos[static_cast<std::size_t>(bn.driver_block)];
    const route::RrNodeId source = d.rr.opin_at(sp.x, sp.y);
    for (std::size_t s = 0; s < nr.paths.size(); ++s) {
      route::RrNodeId cur = nr.paths[s].back();
      int guard = 0;
      while (cur != source && guard++ < d.rr.num_nodes()) {
        auto it = parent.find(cur);
        ASSERT_NE(it, parent.end()) << "broken parent chain on net " << i;
        cur = it->second;
      }
      EXPECT_EQ(cur, source);
    }
  }
}

// ---------- timing ----------

TEST(Timing, HotterIsSlower) {
  const auto& d = sha_design();
  const timing::TimingAnalyzer sta(d.nl, d.packed, d.pl, d.rr, d.routes, d.grid);
  static const coffe::Characterizer ch(tech::ptm22(), test_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));
  const auto cold = sta.analyze_uniform(dev, units::Celsius(0.0));
  const auto hot = sta.analyze_uniform(dev, units::Celsius(100.0));
  EXPECT_GT(hot.critical_path_ps.value(), cold.critical_path_ps.value() * 1.2);
  EXPECT_LT(hot.fmax_mhz.value(), cold.fmax_mhz.value());
}

TEST(Timing, BreakdownSumsToCriticalPath) {
  const auto& d = sha_design();
  const timing::TimingAnalyzer sta(d.nl, d.packed, d.pl, d.rr, d.routes, d.grid);
  static const coffe::Characterizer ch(tech::ptm22(), test_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));
  const auto r = sta.analyze_uniform(dev, units::Celsius(25.0));
  double sum = 0.0;
  for (double v : r.cp_breakdown) sum += v;
  // Breakdown excludes only the constant FF launch/setup terms.
  EXPECT_GT(sum, 0.7 * r.critical_path_ps.value());
  EXPECT_LE(sum, r.critical_path_ps.value() + 1e-6);
  EXPECT_FALSE(r.cp_prims.empty());
}

TEST(Timing, PerTileTemperatureMatters) {
  const auto& d = sha_design();
  const timing::TimingAnalyzer sta(d.nl, d.packed, d.pl, d.rr, d.routes, d.grid);
  static const coffe::Characterizer ch(tech::ptm22(), test_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));
  // Uniform 25C vs a map that is 25C except one very hot column.
  std::vector<double> temps(static_cast<std::size_t>(d.grid.num_tiles()), 25.0);
  const auto base = sta.analyze(dev, temps);
  for (int y = 0; y < d.grid.height(); ++y) {
    temps[static_cast<std::size_t>(d.grid.index_of(d.grid.width() / 2, y))] = 100.0;
  }
  const auto hot_col = sta.analyze(dev, temps);
  EXPECT_GE(hot_col.critical_path_ps.value(), base.critical_path_ps.value());
  EXPECT_LT(hot_col.critical_path_ps.value(),
            sta.analyze_uniform(dev, units::Celsius(100.0)).critical_path_ps.value());
}

TEST(Timing, MissingSinkFallsBackToHopEstimate) {
  // Regression: a sink IPIN absent from its net's routed tree used to get
  // zero wire delay — a silently optimistic critical path. The analyzer
  // now charges the same SB-hop estimate it uses for unrouted nets, so
  // tampered parents and an empty route must time identically (and both
  // strictly slower than zero-wire).
  const auto& d = sha_design();
  static const coffe::Characterizer ch(tech::ptm22(), test_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));

  route::RouteResult no_parents = d.routes;
  for (auto& nr : no_parents.routes) nr.parents.clear();
  route::RouteResult unrouted = d.routes;
  for (auto& nr : unrouted.routes) {
    nr.nodes.clear();
    nr.parents.clear();
    nr.paths.clear();
  }

  const timing::TimingAnalyzer tampered(d.nl, d.packed, d.pl, d.rr, no_parents,
                                        d.grid);
  const timing::TimingAnalyzer estimated(d.nl, d.packed, d.pl, d.rr, unrouted,
                                         d.grid);
  const double cp_tampered = tampered.analyze_uniform(dev, units::Celsius(25.0)).critical_path_ps.value();
  const double cp_estimated = estimated.analyze_uniform(dev, units::Celsius(25.0)).critical_path_ps.value();
  EXPECT_DOUBLE_EQ(cp_tampered, cp_estimated);

  // The real routed tree gives yet another (valid) answer; the point is
  // the fallback is not free: inter-block wire delay stays accounted for.
  const timing::TimingAnalyzer real(d.nl, d.packed, d.pl, d.rr, d.routes, d.grid);
  EXPECT_GT(cp_tampered, 0.0);
  EXPECT_GT(real.analyze_uniform(dev, units::Celsius(25.0)).critical_path_ps.value(), 0.0);
}

TEST(Timing, DspHeavyDesignHasDspOnCriticalPath) {
  const Design d("stereovision1", 1.0 / 16);  // DSP-heavy (152 full-size)
  const timing::TimingAnalyzer sta(d.nl, d.packed, d.pl, d.rr, d.routes, d.grid);
  static const coffe::Characterizer ch(tech::ptm22(), test_arch());
  const auto dev = ch.characterize(units::Celsius(25.0));
  const auto r = sta.analyze_uniform(dev, units::Celsius(25.0));
  EXPECT_GT(r.cp_share(coffe::ResourceKind::Dsp), 0.02);
}

}  // namespace

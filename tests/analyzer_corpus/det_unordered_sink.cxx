// analyzer-corpus-path: src/power/summary.cpp
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

// unordered-iteration: hash-order reaching an output sink.

void print_all(const std::unordered_map<std::string, double>& watts) {
  for (const auto& kv : watts) {
    std::printf("%s\n", kv.first.c_str());   // TP: hash order reaches stdout
  }
}

void print_sorted(const std::unordered_map<std::string, double>& watts) {
  std::vector<std::string> names;
  for (const auto& kv : watts) {
    names.push_back(kv.first);               // accumulates, but then sorts:
  }
  std::sort(names.begin(), names.end());     // negative: sort in enclosing scope
  for (const std::string& n : names) std::printf("%s\n", n.c_str());
}

// analyzer-corpus-path: src/runner/heartbeat.cpp
#include <chrono>
#include <random>

// Negatives: src/runner/ may read wall clocks (scheduling is inherently
// about real time), and a member call .rand() is not libc rand().

struct Rng;

double tick() {
  const auto t = std::chrono::steady_clock::now();    // negative: runner exemption
  return static_cast<double>(t.time_since_epoch().count());
}

unsigned draw(Rng& rng) {
  return rng.rand();                                  // negative: member call
}

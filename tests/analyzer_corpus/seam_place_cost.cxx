// analyzer-corpus-path: bench/hot_replace.cpp
#include "place/cost_model.hpp"

// place-cost-seam positives outside src/place/: the cost-model include,
// each confined identifier, and the non-overlapping word-bounded scan.

double rebuild(const taf::place::CostModel& m) {  // TP: CostModel
  NetBox box;                        // TP: NetBox
  double q = q_factor(7);            // TP: q_factor
  // CostModel in a comment is stripped before the identifier scan.
  const char* s = "NetBox";          // literal interior blanked: negative
  int CostModelNetBox = 0;           // joined word: no \b match, negative
  return q + box.width() + CostModelNetBox + m.cost() + (s != nullptr);
}

// analyzer-corpus-path: src/service/socket_listener.cpp
#include <sys/socket.h>
#include "thermal/stencil_solver.hpp"

// src/service/ owns raw sockets, so the socket include and calls are
// exempt here — but the thermal seam still applies (wrong owner).

void accept_loop(int fd) {
  ::listen(fd, 4);        // negative: inside src/service/
  StencilOp op;           // TP: thermal seam is not service's to cross
  (void)op;
}

// analyzer-corpus-path: src/service/reentry.cpp
#include <mutex>

// Re-acquiring a non-recursive mutex while it is already held.

class Server {
 public:
  void outer() {
    std::lock_guard<std::mutex> g(mu_);
    inner_locked();
  }

  void broken() {
    std::lock_guard<std::mutex> g1(mu_);
    std::lock_guard<std::mutex> g2(mu_);  // TP: self-deadlock
  }

 private:
  void inner_locked() {}
  std::mutex mu_;
};

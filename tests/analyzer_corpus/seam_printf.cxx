// analyzer-corpus-path: src/power/report.cpp
#include <cstdio>
#include <vector>

// printf-sized-int positives and negatives.

void report(const std::vector<int>& v, std::size_t total) {
  std::printf("%d items\n", v.size());                     // TP: %d with .size()
  std::printf("%u of %u\n", total, v.size());              // TP x2: %u with size_t
  std::printf("%zu items\n", v.size());                    // negative: %zu
  std::printf("%d items\n", static_cast<int>(v.size()));   // negative: static_cast
  std::printf("%lld\n", static_cast<long long>(total));    // negative: ll length
  std::printf("plain %s\n", "text");                       // negative: %s
}

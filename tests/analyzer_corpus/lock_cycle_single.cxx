// analyzer-corpus-path: src/runner/pool_glue.cpp
#include <mutex>

// Lock-order cycle inside one translation unit: f takes a then b,
// g takes b then a.

struct Pools {
  std::mutex a;
  std::mutex b;
};

void f(Pools& p) {
  std::lock_guard<std::mutex> ga(p.a);
  std::lock_guard<std::mutex> gb(p.b);   // edge a -> b
}

void g(Pools& p) {
  std::lock_guard<std::mutex> gb(p.b);
  std::lock_guard<std::mutex> ga(p.a);   // edge b -> a: cycle
}

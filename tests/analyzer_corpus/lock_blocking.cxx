// analyzer-corpus-path: src/runner/worker.cpp
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

// blocking-while-locked positives and negatives.

std::mutex state_mu;
std::mutex io_mu;
std::condition_variable cv;

void flush_under_lock(std::FILE* f) {
  std::lock_guard<std::mutex> g(state_mu);
  std::fflush(f);                            // TP: file I/O while locked
}

void join_under_lock(std::thread& t) {
  std::lock_guard<std::mutex> g(state_mu);
  t.join();                                  // TP: join while locked
}

void wait_wrong_mutex() {
  std::unique_lock<std::mutex> lk(state_mu);
  std::lock_guard<std::mutex> g2(io_mu);
  cv.wait(lk);                               // TP: waits parking state_mu but io_mu stays held
}

void io_after_scope(std::FILE* f) {
  {
    std::lock_guard<std::mutex> g(state_mu);
  }
  std::fflush(f);                            // negative: lock already released
}

void log_under_lock(std::FILE* f) {
  std::lock_guard<std::mutex> g(state_mu);
  std::fprintf(f, "progress\n");             // negative: logging is allowed by design
}

void wait_normal() {
  std::unique_lock<std::mutex> lk(state_mu);
  cv.wait(lk);                               // negative: wait parks the only held lock
}

void unlock_then_io(std::FILE* f) {
  std::unique_lock<std::mutex> lk(state_mu);
  lk.unlock();
  std::fflush(f);                            // negative: explicitly unlocked
}

// analyzer-corpus-path: src/timing/jitter.cpp
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <string>

// wall-clock, raw-random, and pointer-keyed-container positives.

struct Node { int id; };

double elapsed() {
  const auto t0 = std::chrono::steady_clock::now();   // TP: wall-clock
  return static_cast<double>(t0.time_since_epoch().count());
}

int noise() {
  std::mt19937 gen(42);                               // TP: raw-random engine
  return static_cast<int>(gen()) + rand();            // TP: raw-random call
}

std::map<const Node*, int> ranks;                     // TP: pointer-keyed
std::map<std::string, int> by_name;                   // negative: value-keyed

// analyzer-corpus-path: src/core/ordered_report.cpp
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>

// Negatives: ordered containers may feed sinks directly, and an
// unordered loop whose body neither sinks nor selects is fine.
// (The declared-name table is file-wide, so the ordered and unordered
// containers here carry distinct names, as they would in real code.)

void print_map(const std::map<std::string, int>& by_key) {
  for (const auto& kv : by_key) {
    std::printf("%s=%d\n", kv.first.c_str(), kv.second);  // negative: std::map
  }
}

int count_positive(const std::unordered_map<std::string, int>& histogram) {
  int n = 0;
  for (const auto& kv : histogram) {
    n += kv.second > 0 ? 1 : 0;   // negative: no sink, no selection
  }
  return n;
}

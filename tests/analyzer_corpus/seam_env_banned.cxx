// analyzer-corpus-path: src/arch/knobs.cpp
#include <cstdlib>
#include <cstring>

// env-through-util and banned-identifier positives and negatives.

int knob(const char* name, char* buf) {
  const char* raw = std::getenv(name);          // TP: env-through-util
  if (!raw) raw = getenv("TAF_FALLBACK");       // TP: unqualified spelling
  int v = atoi(raw);                            // TP: banned-identifier (atoi)
  strcpy(buf, raw);                             // TP: banned-identifier (strcpy)
  // negative: member call is not the libc function
  // negative: the word getenv in this comment is stripped
  return v;
}

struct Env {
  const char* getenv_name = "TAF_X";  // negative: not a call
  int atoi_count(int n) { return n; }  // negative: identifier prefix only
};

// analyzer-corpus-path: src/runner/ordered.cpp
#include <mutex>

// Negative: consistent lock order, sequential (non-nested) scopes, and
// scoped_lock's deadlock-free multi-acquire must all pass clean.

std::mutex first_mu;
std::mutex second_mu;

void consistent_a() {
  std::lock_guard<std::mutex> g1(first_mu);
  std::lock_guard<std::mutex> g2(second_mu);  // same order everywhere
}

void consistent_b() {
  std::lock_guard<std::mutex> g1(first_mu);
  std::lock_guard<std::mutex> g2(second_mu);
}

void sequential() {
  {
    std::lock_guard<std::mutex> g(second_mu);
  }
  {
    std::lock_guard<std::mutex> g(first_mu);  // not nested: no edge
  }
}

void both_at_once() {
  std::scoped_lock lk(first_mu, second_mu);  // atomic multi-acquire
}

// analyzer-corpus-path: src/arch/docs.cpp
#include <cstdlib>
#include <string>

// Raw-string handling in the comment/literal stripper. The naive stripper
// treated R"(...)" like an ordinary string: the first unescaped " after
// `R"` "closed" it, leaking the literal's interior — including the
// std::getenv(...) spelled below — into the stripped text as a false
// positive. A delimiter-aware stripper blanks the whole literal.

const char* kDoc = R"(set "TAF_MODE" via std::getenv("TAF_MODE") at startup)";

const std::string kDelim = R"==(a " quote and a )" fake terminator)==";

// Multi-line raw string: line numbers after it must stay correct.
const char* kUsage = R"(usage:
  taf-run "design"
)";

const char* real() { return std::getenv("TAF_MODE"); }  // TP: the real call

// analyzer-corpus-path: src/place/hotspot.cpp
#include "thermal/stencil_solver.hpp"
#include <sys/socket.h>

// thermal-backend-seam, service-socket-seam, and trace-codec-seam
// positives outside their owning directories.

void probe(int fd) {
  ::connect(fd, nullptr, 0);                  // TP: qualified socket call
  char b[8];
  recv(fd, b, sizeof(b), 0);                  // TP: recv on an fd-named arg
}

int use_backend() {
  StencilSolver solver;                       // TP: stencil identifier
  const char* magic = "taf-trace v1";         // TP: trace format literal
  return solver.ok() && magic != nullptr;
}

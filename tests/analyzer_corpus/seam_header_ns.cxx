// analyzer-corpus-path: src/route/helpers.h
#pragma once
#include <string>

using namespace std;  // TP: using namespace in a header

namespace taf::route {
// negative: using-declaration (not a directive)
using std::string;
// negative: inside a comment: using namespace std;
inline int answer() { return 42; }
}  // namespace taf::route

// analyzer-corpus-path: src/thermal/unit_api.hpp
#pragma once

// unit-typed-api positives and negatives in a public header.

namespace taf::thermal {

struct Celsius { double v; };

void set_ambient(double ambient_c);              // TP: _c suffix
void set_power(double power_w, int tiles);       // TP: power stem + _w
void set_relax(double relax);                    // negative: dimensionless
void set_temp(Celsius temp_c);                   // negative: not a raw double
void set_bound(const double t_max, int n);       // TP: const double, temp stem

}  // namespace taf::thermal

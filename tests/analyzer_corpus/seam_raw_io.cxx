// analyzer-corpus-path: src/runner/snapshot.cpp
#include <cstdio>
#include <cstring>

// raw-serialization positives and negatives.

struct Header { int magic; int version; };

void save(std::FILE* f, const Header& h, const char* note) {
  std::fwrite(&h, sizeof(h), 1, f);             // TP: fwrite + (separately) memcpy-free
  char buf[64];
  std::memcpy(buf, &h, sizeof(h));              // TP: memcpy of sizeof-ed object
  std::memcpy(buf, note, std::strlen(note));    // negative: no sizeof before ';'
  std::fputs("text form\n", f);                 // negative: fputs is not fwrite
}

void load(std::FILE* f, Header* h) {
  fread(h, sizeof(*h), 1, f);                   // TP: unqualified fread
}

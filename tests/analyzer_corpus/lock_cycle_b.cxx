// analyzer-corpus-path: src/runner/flow_b.cpp
// analyzer-corpus-group: cross_tu_cycle
#include <mutex>

extern std::mutex cache_mu;
extern std::mutex pool_mu;

void drain() {
  std::lock_guard<std::mutex> g1(pool_mu);
  std::lock_guard<std::mutex> g2(cache_mu);  // edge pool_mu -> cache_mu: cycle
}

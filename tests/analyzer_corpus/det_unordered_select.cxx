// analyzer-corpus-path: src/place/pick.cpp
#include <string>
#include <unordered_set>

// unordered-iteration: order-dependent argmax selection (the pack.cpp
// defect shape): strict '>' keeps the first-seen candidate, so hash
// order decides ties.

int pick(const std::unordered_set<int>& candidates) {
  int best = -1;
  int best_score = -1;
  for (int c : candidates) {
    const int score = c % 7;
    if (score > best_score) {     // TP: relational + assignment selection
      best_score = score;
      best = c;
    }
  }
  return best;
}

int total(const std::unordered_set<int>& candidates) {
  int sum = 0;
  for (int c : candidates) {
    sum += c;                     // negative: commutative accumulation
  }
  return sum;
}

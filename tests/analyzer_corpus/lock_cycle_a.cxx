// analyzer-corpus-path: src/runner/flow_a.cpp
// analyzer-corpus-group: cross_tu_cycle
#include <mutex>

std::mutex cache_mu;
std::mutex pool_mu;

void refresh() {
  std::lock_guard<std::mutex> g1(cache_mu);
  std::lock_guard<std::mutex> g2(pool_mu);   // edge cache_mu -> pool_mu
}

// Tests for the ACE-like activity estimator: exact LUT probabilities,
// Boolean-difference densities, FF filtering, and bounds.

#include <gtest/gtest.h>

#include "activity/activity.hpp"
#include "netlist/benchmarks.hpp"

namespace {

using namespace taf;
using namespace taf::netlist;
using activity::ActivityOptions;
using activity::estimate;

/// Two-input LUT driven by fresh primary inputs with the given truth.
struct LutFixture {
  Netlist nl{"fix"};
  NetId out;

  explicit LutFixture(std::uint64_t truth, int k = 2) {
    const PrimId l = nl.add_primitive({PrimKind::Lut, "l", {}, kNoNet, truth});
    for (int i = 0; i < k; ++i) {
      const PrimId in = nl.add_primitive({PrimKind::Input, "i", {}, kNoNet, 0});
      const NetId n = nl.add_net(in);
      nl.connect(n, l, i);
    }
    out = nl.add_net(l);
  }
};

TEST(Activity, AndGateProbability) {
  LutFixture f(0b1000);  // AND
  const auto stats = estimate(f.nl);
  EXPECT_NEAR(stats[static_cast<std::size_t>(f.out)].prob, 0.25, 1e-12);
}

TEST(Activity, OrGateProbability) {
  LutFixture f(0b1110);  // OR
  const auto stats = estimate(f.nl);
  EXPECT_NEAR(stats[static_cast<std::size_t>(f.out)].prob, 0.75, 1e-12);
}

TEST(Activity, XorGateProbabilityAndDensity) {
  LutFixture f(0b0110);  // XOR
  ActivityOptions opt;
  opt.input_density = 0.5;
  const auto stats = estimate(f.nl, opt);
  EXPECT_NEAR(stats[static_cast<std::size_t>(f.out)].prob, 0.5, 1e-12);
  // XOR: both Boolean differences are 1 -> D = d1 + d2 = 1.0, capped at
  // 4 p (1-p) + 0.02 = 1.02.
  EXPECT_NEAR(stats[static_cast<std::size_t>(f.out)].density, 1.0, 1e-9);
}

TEST(Activity, AndGateDensity) {
  LutFixture f(0b1000);
  const auto stats = estimate(f.nl);
  // P(df/dx) = p(other input = 1) = 0.5 per input -> D = 0.5*0.5*2 = 0.5.
  EXPECT_NEAR(stats[static_cast<std::size_t>(f.out)].density, 0.5, 1e-9);
}

TEST(Activity, BiasedInputsShiftProbability) {
  LutFixture f(0b1000);
  ActivityOptions opt;
  opt.input_prob = 0.9;
  const auto stats = estimate(f.nl, opt);
  EXPECT_NEAR(stats[static_cast<std::size_t>(f.out)].prob, 0.81, 1e-12);
}

TEST(Activity, FfPreservesProbabilityAndFiltersDensity) {
  Netlist nl("ff");
  const PrimId in = nl.add_primitive({PrimKind::Input, "i", {}, kNoNet, 0});
  const NetId nin = nl.add_net(in);
  const PrimId ff = nl.add_primitive({PrimKind::Ff, "f", {}, kNoNet, 0});
  nl.connect(nin, ff, 0);
  const NetId nout = nl.add_net(ff);
  ActivityOptions opt;
  opt.input_prob = 0.3;
  opt.input_density = 0.9;
  const auto stats = estimate(nl, opt);
  EXPECT_NEAR(stats[static_cast<std::size_t>(nout)].prob, 0.3, 1e-12);
  // Lag-one bound: 2 * 0.3 * 0.7 = 0.42 < 0.9.
  EXPECT_NEAR(stats[static_cast<std::size_t>(nout)].density, 0.42, 1e-12);
}

TEST(Activity, AllSignalsWithinBounds) {
  util::Rng rng(5);
  const Netlist nl = generate(scaled(vtr_suite()[1], 0.1), rng);
  const auto stats = estimate(nl);
  for (const auto& s : stats) {
    EXPECT_GE(s.prob, 0.0);
    EXPECT_LE(s.prob, 1.0);
    EXPECT_GE(s.density, 0.0);
    EXPECT_LE(s.density, 2.0);
  }
  const double avg = activity::average_density(stats);
  EXPECT_GT(avg, 0.01);
  EXPECT_LT(avg, 1.0);
}

TEST(Activity, DensityDecaysThroughDeepLogic) {
  // Through an AND chain the transition density attenuates.
  Netlist nl("chain");
  const PrimId in0 = nl.add_primitive({PrimKind::Input, "a", {}, kNoNet, 0});
  NetId cur = nl.add_net(in0);
  for (int i = 0; i < 6; ++i) {
    const PrimId side = nl.add_primitive({PrimKind::Input, "s", {}, kNoNet, 0});
    const NetId ns = nl.add_net(side);
    const PrimId l = nl.add_primitive({PrimKind::Lut, "l", {}, kNoNet, 0b1000});
    nl.connect(cur, l, 0);
    nl.connect(ns, l, 1);
    cur = nl.add_net(l);
  }
  const auto stats = estimate(nl);
  EXPECT_LT(stats[static_cast<std::size_t>(cur)].density, 0.2);
}

}  // namespace

// Property and fuzz tests for the BLIF front-end.
//
// Round-trip: for every bundled benchmark spec, parse(print(nl)) must
// preserve the structure, and a second print must be byte-identical to
// the first (print is a fixed point of parse∘print). Malformed inputs —
// truncated lines, undeclared signals, duplicate models, hostile pin
// indices — must raise std::runtime_error, never crash or allocate
// unboundedly; CI runs this binary under ASan/UBSan.

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace {

using namespace taf;
using namespace taf::netlist;

Netlist generated(const BenchmarkSpec& spec) {
  util::Rng rng(7);
  return generate(scaled(spec, 1.0 / 16), rng);
}

/// Multiset of structural facts that parse must preserve, keyed by
/// primitive name (unique in both the generator and the writer).
std::map<std::string, std::pair<int, std::uint64_t>> lut_signature(const Netlist& nl) {
  std::map<std::string, std::pair<int, std::uint64_t>> sig;
  for (const Primitive& p : nl.prims()) {
    if (p.kind == PrimKind::Lut)
      sig[p.name] = {static_cast<int>(p.inputs.size()), p.truth};
  }
  return sig;
}

std::map<PrimKind, int> kind_counts(const Netlist& nl) {
  std::map<PrimKind, int> c;
  for (const Primitive& p : nl.prims()) ++c[p.kind];
  return c;
}

class BlifRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BlifRoundTrip, PrintParsePrintIsAFixedPoint) {
  const BenchmarkSpec spec = vtr_suite()[static_cast<std::size_t>(GetParam())];
  const Netlist original = generated(spec);

  const std::string text1 = to_blif_string(original);
  const Netlist parsed = from_blif_string(text1);
  EXPECT_EQ(parsed.validate(), "");
  EXPECT_EQ(parsed.name(), original.name());

  // The writer adds one buffer LUT per primary output; everything else
  // must survive exactly.
  auto c0 = kind_counts(original);
  auto c1 = kind_counts(parsed);
  EXPECT_EQ(c1[PrimKind::Input], c0[PrimKind::Input]);
  EXPECT_EQ(c1[PrimKind::Output], c0[PrimKind::Output]);
  EXPECT_EQ(c1[PrimKind::Ff], c0[PrimKind::Ff]);
  EXPECT_EQ(c1[PrimKind::Bram], c0[PrimKind::Bram]);
  EXPECT_EQ(c1[PrimKind::Dsp], c0[PrimKind::Dsp]);
  EXPECT_EQ(c1[PrimKind::Lut], c0[PrimKind::Lut] + c0[PrimKind::Output]);

  // Original LUTs keep their width and truth table verbatim.
  const auto sig0 = lut_signature(original);
  const auto sig1 = lut_signature(parsed);
  for (const auto& [name, s] : sig0) {
    const auto it = sig1.find(name);
    ASSERT_NE(it, sig1.end()) << name;
    EXPECT_EQ(it->second.first, s.first) << name;
    EXPECT_EQ(it->second.second, s.second) << name;
  }

  // Second round: printing the parsed netlist and parsing again must be
  // byte-stable (parse∘print has reached its fixed point).
  const std::string text2 = to_blif_string(parsed);
  const Netlist reparsed = from_blif_string(text2);
  EXPECT_EQ(to_blif_string(reparsed), text2);
  EXPECT_EQ(lut_signature(reparsed), sig1);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BlifRoundTrip,
                         ::testing::Range(0, static_cast<int>(vtr_suite().size())),
                         [](const auto& name_info) {
                           return vtr_suite()[static_cast<std::size_t>(name_info.param)].name;
                         });

TEST(BlifMalformed, CorpusRaisesCleanErrors) {
  const char* corpus[] = {
      // Truncated constructs.
      ".model m\n.inputs a\n.outputs y\n.latch a\n.end\n",
      ".model m\n.names\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.subckt\n.end\n",
      // Undeclared / undriven signal.
      ".model m\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n",
      ".model m\n.outputs y\n.end\n",
      // Duplicate models (hierarchy).
      ".model a\n.inputs x\n.outputs y\n.names x y\n1 1\n.end\n"
      ".model b\n.inputs u\n.outputs v\n.names u v\n1 1\n.end\n",
      // Double driver.
      ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n",
      // Hostile subckt pin bindings.
      ".model m\n.inputs a\n.outputs y\n.subckt bram inX=a out=y\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.subckt bram in999999999999=a out=y\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.subckt bram in50=a out=y\n.end\n",
      ".model m\n.inputs a b\n.outputs y\n.subckt dsp in0=a in0=b out=y\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.subckt dsp in0=a in2=a out=y\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.subckt bram in0:a out=y\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.subckt lut in0=a out=y\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.subckt bram in0=a\n.end\n",
      // Bad truth tables.
      ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.names a y\n1 0\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n",
      ".model m\n.inputs a\n.outputs y\n.names a y\n1\n.end\n",
      // Unsupported constructs and oversized LUTs.
      ".model m\n.foo bar\n.end\n",
      ".model m\n.inputs a b c d e f g\n.outputs y\n.names a b c d e f g y\n"
      "1111111 1\n.end\n",
  };
  for (const char* text : corpus) {
    EXPECT_THROW(from_blif_string(text), std::runtime_error)
        << "accepted: " << text;
  }
}

TEST(BlifMalformed, TrailingContinuationIsNotDropped) {
  // A '\' on the final physical line used to discard the whole pending
  // logical line; the declared input then looked undriven.
  const std::string text =
      ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n.foo \\\n";
  EXPECT_THROW(from_blif_string(text), std::runtime_error);
}

TEST(BlifFuzz, MutatedBenchmarksNeverCrash) {
  // Deterministic mutation fuzzing: byte flips, truncations and line
  // shuffles of a valid BLIF must either parse (and then round-trip) or
  // raise std::runtime_error — anything else (crash, other exception
  // type, runaway allocation) fails the test or the sanitizer.
  const Netlist base = generated(vtr_suite()[4]);  // diffeq1: has DSPs + FFs
  const std::string valid = to_blif_string(base);
  util::Rng rng(0xb11f);
  const char charset[] = "01-.= abcdefin\\\n";
  int parsed_ok = 0;
  for (int round = 0; round < 300; ++round) {
    std::string text = valid;
    const int edits = 1 + static_cast<int>(rng.next_below(8));
    for (int e = 0; e < edits; ++e) {
      switch (rng.next_below(4)) {
        case 0:  // overwrite a byte
          text[rng.next_below(static_cast<std::uint32_t>(text.size()))] =
              charset[rng.next_below(sizeof(charset) - 1)];
          break;
        case 1:  // delete a byte
          text.erase(rng.next_below(static_cast<std::uint32_t>(text.size())), 1);
          break;
        case 2:  // insert a byte
          text.insert(text.begin() + rng.next_below(static_cast<std::uint32_t>(
                                         text.size())),
                      charset[rng.next_below(sizeof(charset) - 1)]);
          break;
        case 3:  // truncate
          text.resize(rng.next_below(static_cast<std::uint32_t>(text.size())) + 1);
          break;
      }
      if (text.empty()) text = "\n";
    }
    try {
      const Netlist nl = from_blif_string(text);
      ++parsed_ok;
      // Whatever survived parsing must also survive printing and a
      // re-parse without error.
      const std::string reprinted = to_blif_string(nl);
      from_blif_string(reprinted);
    } catch (const std::runtime_error&) {
      // expected for most mutations
    }
  }
  // Sanity: the fuzzer is not so destructive that nothing ever parses,
  // nor so gentle that everything does.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_LT(parsed_ok, 300);
}

}  // namespace

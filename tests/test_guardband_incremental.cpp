// Differential tests for the incremental Algorithm 1 engine: for every
// registered benchmark and both ambient corners the paper sweeps,
// IncrementalMode::Exact (incremental STA session + warm-started thermal
// CG) must reproduce the IncrementalMode::Off full-recompute oracle —
// identical iteration counts, bitwise-equal baseline, fmax within
// 1e-9 MHz and tile temperatures within 1e-9 degC. Plus the metamorphic
// zero-power check (one iteration, zero incremental work) and the
// non-convergence flag/counter satellite.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "core/flow.hpp"

namespace {

using namespace taf;

const arch::ArchParams& test_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

const coffe::DeviceModel& device() {
  static const coffe::DeviceModel dev =
      coffe::Characterizer(tech::ptm22(), test_arch()).characterize(units::Celsius(25.0));
  return dev;
}

const std::vector<netlist::BenchmarkSpec>& suite() {
  static const std::vector<netlist::BenchmarkSpec> s = netlist::vtr_suite();
  return s;
}

core::GuardbandOptions base_options(double t_amb_c, core::IncrementalMode mode) {
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(t_amb_c);
  opt.delta_t_c = units::Kelvin(0.2);  // stricter than default so the loop actually iterates
  opt.incremental = mode;
  return opt;
}

void expect_equivalent(const core::GuardbandResult& full,
                       const core::GuardbandResult& inc, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(full.iterations, inc.iterations);
  EXPECT_EQ(full.converged, inc.converged);
  // The baseline corner never goes through the incremental session.
  EXPECT_DOUBLE_EQ(full.baseline_fmax_mhz.value(), inc.baseline_fmax_mhz.value());
  EXPECT_NEAR(full.fmax_mhz.value(), inc.fmax_mhz.value(), 1e-9);
  EXPECT_NEAR(full.timing.critical_path_ps.value(), inc.timing.critical_path_ps.value(), 1e-9);
  ASSERT_EQ(full.tile_temp_c.size(), inc.tile_temp_c.size());
  for (std::size_t i = 0; i < full.tile_temp_c.size(); ++i) {
    ASSERT_NEAR(full.tile_temp_c[i], inc.tile_temp_c[i], 1e-9)
        << "tile " << i;
  }
  EXPECT_NEAR(full.peak_temp_c.value(), inc.peak_temp_c.value(), 1e-9);
  EXPECT_NEAR(full.mean_temp_c.value(), inc.mean_temp_c.value(), 1e-9);
  // Power feels the (tolerance-bounded) temperature difference only
  // through leakage; agreement is far tighter than physical relevance.
  EXPECT_NEAR(full.power.dynamic_w.value(), inc.power.dynamic_w.value(),
              1e-8 * std::max(1.0, full.power.dynamic_w.value()));
  EXPECT_NEAR(full.power.leakage_w.value(), inc.power.leakage_w.value(),
              1e-8 * std::max(1.0, full.power.leakage_w.value()));
}

class IncrementalDifferential : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalDifferential, ExactMatchesFullRecomputeAtBothAmbients) {
  const netlist::BenchmarkSpec spec =
      netlist::scaled(suite()[static_cast<std::size_t>(GetParam())], 1.0 / 16);
  const auto impl = core::implement(spec, test_arch());
  for (double t_amb : {25.0, 70.0}) {
    const auto full =
        core::guardband(*impl, device(), base_options(t_amb, core::IncrementalMode::Off));
    const auto inc = core::guardband(*impl, device(),
                                     base_options(t_amb, core::IncrementalMode::Exact));
    const std::string label = spec.name + " @ " + std::to_string(t_amb) + "C";
    expect_equivalent(full, inc, label.c_str());
    // The oracle itself performs no incremental work; the session must
    // have recorded the loop's.
    EXPECT_EQ(full.stats.edges_reevaluated, 0u);
    if (inc.iterations > 0) {
      EXPECT_GT(inc.stats.delay_cache_hits + inc.stats.edges_reevaluated, 0u);
      EXPECT_GT(inc.stats.cg_iterations, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, IncrementalDifferential,
                         ::testing::Range(0, static_cast<int>(netlist::vtr_suite().size())),
                         [](const auto& name_info) {
                           return netlist::vtr_suite()[static_cast<std::size_t>(
                                                           name_info.param)]
                               .name;
                         });

// Shared small implementation for the non-parameterized checks.
const core::Implementation& sha_impl() {
  static const auto impl = [] {
    netlist::BenchmarkSpec spec;
    for (const auto& s : suite()) {
      if (s.name == "sha") spec = netlist::scaled(s, 1.0 / 16);
    }
    return core::implement(spec, test_arch());
  }();
  return *impl;
}

TEST(IncrementalDifferentialDetail, CriticalPathStructureIsIdentical) {
  const auto full = core::guardband(sha_impl(), device(),
                                    base_options(25.0, core::IncrementalMode::Off));
  const auto inc = core::guardband(sha_impl(), device(),
                                   base_options(25.0, core::IncrementalMode::Exact));
  ASSERT_EQ(full.timing.cp_prims.size(), inc.timing.cp_prims.size());
  for (std::size_t i = 0; i < full.timing.cp_prims.size(); ++i) {
    EXPECT_EQ(full.timing.cp_prims[i], inc.timing.cp_prims[i]) << "hop " << i;
  }
  for (std::size_t k = 0; k < full.timing.cp_breakdown.size(); ++k) {
    EXPECT_NEAR(full.timing.cp_breakdown[k], inc.timing.cp_breakdown[k], 1e-9)
        << "kind " << k;
  }
}

TEST(IncrementalDifferentialDetail, QuantizedStaysWithinEpsilonBounds) {
  // Quantized mode trades exactness for speed: delays may be derived at a
  // temperature stale by up to epsilon, so fmax can drift by roughly
  // (slope * epsilon / cp) — bound it loosely rather than exactly.
  auto opt = base_options(25.0, core::IncrementalMode::Quantized);
  opt.incremental_epsilon_c = units::Kelvin(0.05);
  const auto full = core::guardband(sha_impl(), device(),
                                    base_options(25.0, core::IncrementalMode::Off));
  const auto q = core::guardband(sha_impl(), device(), opt);
  EXPECT_NEAR(q.fmax_mhz.value(), full.fmax_mhz.value(), 0.005 * full.fmax_mhz.value());
  ASSERT_EQ(full.tile_temp_c.size(), q.tile_temp_c.size());
  for (std::size_t i = 0; i < full.tile_temp_c.size(); ++i) {
    ASSERT_NEAR(full.tile_temp_c[i], q.tile_temp_c[i], 0.1) << "tile " << i;
  }
}

TEST(IncrementalMetamorphic, ZeroPowerConvergesInOneIterationWithZeroWork) {
  // With the power map forced to zero the fixed point is the ambient
  // field itself: the first iteration must leave every temperature
  // bitwise unchanged, so the incremental STA sees an empty frontier and
  // the warm-started CG terminates without a single iteration.
  auto opt = base_options(25.0, core::IncrementalMode::Exact);
  opt.power_scale = 0.0;
  const auto r = core::guardband(sha_impl(), device(), opt);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_EQ(r.stats.edges_reevaluated, 0u);
  EXPECT_EQ(r.stats.delay_cache_hits, 0u);
  EXPECT_EQ(r.stats.cg_iterations, 0u);
  for (double t : r.tile_temp_c) EXPECT_EQ(t, 25.0);
  EXPECT_EQ(r.power.dynamic_w.value(), 0.0);
  EXPECT_EQ(r.power.leakage_w.value(), 0.0);
}

TEST(IncrementalNonConvergence, ExhaustedLoopIsFlaggedAndCounted) {
  const core::FlowCounters before = core::thread_flow_counters();
  auto opt = base_options(25.0, core::IncrementalMode::Exact);
  opt.max_iterations = 1;
  opt.delta_t_c = units::Kelvin(1e-6);  // unreachable in one iteration from ambient
  const auto r = core::guardband(sha_impl(), device(), opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1);
  const core::FlowCounters d = core::thread_flow_counters() - before;
  EXPECT_EQ(d.guardband_runs, 1u);
  EXPECT_EQ(d.guardband_nonconverged, 1u);
}

TEST(IncrementalNonConvergence, ConvergedRunIsNotCounted) {
  const core::FlowCounters before = core::thread_flow_counters();
  const auto r = core::guardband(sha_impl(), device(),
                                 base_options(25.0, core::IncrementalMode::Exact));
  EXPECT_TRUE(r.converged);
  const core::FlowCounters d = core::thread_flow_counters() - before;
  EXPECT_EQ(d.guardband_runs, 1u);
  EXPECT_EQ(d.guardband_nonconverged, 0u);
  EXPECT_EQ(d.sta_edges_reevaluated, r.stats.edges_reevaluated);
  EXPECT_EQ(d.thermal_cg_iterations, r.stats.cg_iterations);
}

TEST(IncrementalNonConvergence, ZeroIterationBudgetIsVacuouslyConverged) {
  auto opt = base_options(25.0, core::IncrementalMode::Exact);
  opt.max_iterations = 0;
  const auto r = core::guardband(sha_impl(), device(), opt);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace

#!/bin/sh
# Differential oracle for the taf-lint -> taf-analyze migration: the ten
# ported seam rules must report the identical (path, line, rule) finding
# set as the Python linter over the live tree, suppressions disabled on
# both sides so the whole finding universe is compared.
#
# usage: analyzer_oracle_diff.sh <repo-root> <taf-analyze-binary> [python3]
set -u

ROOT=$1
ANALYZE=$2
PY=${3:-python3}

TEN=unit-typed-api,printf-sized-int,header-using-ns,env-through-util
TEN=$TEN,banned-identifier,raw-serialization,thermal-backend-seam
TEN=$TEN,service-socket-seam,trace-codec-seam,place-cost-seam

a=$(mktemp) || exit 2
b=$(mktemp) || exit 2
trap 'rm -f "$a" "$b"' EXIT

# Both exit 1 when findings exist; only exit 2 (I/O error) is fatal here.
"$ANALYZE" --root "$ROOT" --no-suppress --no-summary --compat \
    --rules "$TEN" src bench tests examples >"$a" 2>/dev/null
st=$?
[ "$st" -le 1 ] || { echo "taf-analyze failed (exit $st)"; exit 1; }

(cd "$ROOT" && "$PY" tools/taf-lint --no-suppress src bench tests examples) \
    2>/dev/null \
    | sed -E 's/^([^:]+:[0-9]+): \[([a-z-]+)\].*$/\1:\2/' >"$b"
st=$?
[ "$st" -le 1 ] || { echo "taf-lint failed (exit $st)"; exit 1; }

sort "$a" -o "$a"
sort "$b" -o "$b"

if ! diff -u "$b" "$a"; then
  echo "oracle differential: MISMATCH (left: taf-lint, right: taf-analyze)"
  exit 1
fi
n=$(wc -l <"$a" | tr -d ' ')
echo "oracle differential: identical ($n findings)"
exit 0

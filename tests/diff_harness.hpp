#pragma once
// Differential harness for the SPICE linear backends: run the same
// circuit through the dense and sparse solvers and compare the full
// node-voltage trajectories and the measured delay. Both backends see
// the identical Newton assembly, so agreement to rounding (far below
// the asserted tolerances) is the expected behaviour; any structured
// divergence means a factorization bug.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/linear.hpp"
#include "spice/solver.hpp"
#include "tech/technology.hpp"

namespace taf::difftest {

inline constexpr double kVoltageTolV = 1e-6;  ///< per-sample waveform tolerance
inline constexpr double kDelayTolPs = 0.01;   ///< measured-delay tolerance

struct DiffResult {
  spice::TransientResult dense;
  spice::TransientResult sparse;
  double dense_delay_ps = 0.0;
  double sparse_delay_ps = 0.0;
  double max_dv = 0.0;  ///< worst node-voltage divergence over all samples
};

/// Simulate `c` with both backends and compare every node's trajectory.
/// `label` tags gtest failure messages (circuit + temperature). Void
/// because gtest ASSERTs return from the enclosing function; callers
/// check HasFatalFailure() before using `r`.
inline void run_differential(const spice::Circuit& c, const tech::Technology& tech,
                             spice::SolverOptions opt, double t_stop_ps,
                             const std::string& label, DiffResult& r) {
  opt.backend = spice::LinearBackend::Dense;
  r.dense = spice::solve_transient(c, tech, opt, t_stop_ps);
  opt.backend = spice::LinearBackend::Sparse;
  r.sparse = spice::solve_transient(c, tech, opt, t_stop_ps);

  ASSERT_EQ(r.dense.time_ps.size(), r.sparse.time_ps.size()) << label;
  ASSERT_EQ(r.dense.waveforms.size(), r.sparse.waveforms.size()) << label;
  for (std::size_t node = 0; node < r.dense.waveforms.size(); ++node) {
    const auto& wd = r.dense.waveforms[node];
    const auto& ws = r.sparse.waveforms[node];
    ASSERT_EQ(wd.size(), ws.size()) << label << " node " << node;
    for (std::size_t s = 0; s < wd.size(); ++s) {
      const double dv = std::fabs(wd[s] - ws[s]);
      r.max_dv = std::max(r.max_dv, dv);
      ASSERT_LE(dv, kVoltageTolV)
          << label << ": node " << node << " ('" << c.node_name(static_cast<spice::NodeId>(node))
          << "') diverges at t=" << r.dense.time_ps[s] << " ps: dense=" << wd[s]
          << " V sparse=" << ws[s] << " V";
    }
  }
}

/// Compare a measured propagation delay between the two runs.
inline void expect_delay_match(const DiffResult& r, spice::NodeId in, spice::NodeId out,
                               double vdd, bool in_rising, bool out_rising,
                               double t_from_ps, const std::string& label) {
  const double dd = spice::propagation_delay_ps(r.dense, in, out, vdd, in_rising,
                                                out_rising, t_from_ps);
  const double ds = spice::propagation_delay_ps(r.sparse, in, out, vdd, in_rising,
                                                out_rising, t_from_ps);
  ASSERT_GT(dd, 0.0) << label << ": dense run output did not switch";
  ASSERT_GT(ds, 0.0) << label << ": sparse run output did not switch";
  EXPECT_NEAR(dd, ds, kDelayTolPs) << label << ": backend delays diverge";
}

}  // namespace taf::difftest

// MUST NOT COMPILE: Kelvin and Celsius scales differ by an affine
// offset; crossing them requires to_celsius()/to_kelvin().
#include "util/units.hpp"
using namespace taf::util::units;
Celsius bad() { return Kelvin{298.15}; }

// MUST NOT COMPILE: the s/ps confusion is the exact class of bug the
// units layer exists to stop (a 1e12 scale error in a delay hand-off).
#include "util/units.hpp"
using namespace taf::util::units;
auto bad = Seconds{1.0} + Picoseconds{1.0};

// MUST NOT COMPILE: leaving the unit system requires an explicit
// .value() call at a greppable site.
#include "util/units.hpp"
using namespace taf::util::units;
double bad() { return Watts{1.0}; }

// MUST NOT COMPILE: W*W is not on the curated cross-unit allow-list
// (nothing in the flow is measured in Watts squared).
#include "util/units.hpp"
using namespace taf::util::units;
auto bad = Watts{2.0} * Watts{2.0};

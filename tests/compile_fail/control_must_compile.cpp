// Harness control: this TU uses the units API correctly and MUST
// compile. If it fails, the negative cases are failing for the wrong
// reason (e.g. a broken include path) and the harness reports an error.
#include "util/units.hpp"
using namespace taf::util::units;
Celsius warmed() { return Celsius{25.0} + Kelvin{10.0}; }
double unwrap() { return frequency_of(Picoseconds{1000.0}).value(); }

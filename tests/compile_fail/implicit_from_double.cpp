// MUST NOT COMPILE: raw doubles enter the unit system only through an
// explicit constructor, never by implicit conversion.
#include "util/units.hpp"
using namespace taf::util::units;
Celsius bad() { return 25.0; }

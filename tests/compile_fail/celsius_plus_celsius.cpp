// MUST NOT COMPILE: absolute temperatures are affine points; their sum
// has no physical meaning (35 degC + 35 degC is not 70 degC of anything).
#include "util/units.hpp"
using namespace taf::util::units;
auto bad = Celsius{35.0} + Celsius{35.0};

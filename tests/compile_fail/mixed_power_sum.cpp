// MUST NOT COMPILE: Watts and Microwatts differ by a scale factor; the
// sum would silently be off by 1e6. Convert explicitly via to_watts().
#include "util/units.hpp"
using namespace taf::util::units;
auto bad = Watts{1.0} + Microwatts{1.0};

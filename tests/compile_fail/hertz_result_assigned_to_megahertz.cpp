// MUST NOT COMPILE: frequency_of(Seconds) yields Hertz; binding it to
// Megahertz would be a silent 1e6 error. Use to_megahertz().
#include "util/units.hpp"
using namespace taf::util::units;
Megahertz bad() { return frequency_of(Seconds{1e-6}); }

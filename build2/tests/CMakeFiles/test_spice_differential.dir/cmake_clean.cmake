file(REMOVE_RECURSE
  "CMakeFiles/test_spice_differential.dir/test_spice_differential.cpp.o"
  "CMakeFiles/test_spice_differential.dir/test_spice_differential.cpp.o.d"
  "test_spice_differential"
  "test_spice_differential.pdb"
  "test_spice_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

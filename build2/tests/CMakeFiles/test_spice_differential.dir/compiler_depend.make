# Empty compiler generated dependencies file for test_spice_differential.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_guardband_incremental.dir/test_guardband_incremental.cpp.o"
  "CMakeFiles/test_guardband_incremental.dir/test_guardband_incremental.cpp.o.d"
  "test_guardband_incremental"
  "test_guardband_incremental.pdb"
  "test_guardband_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guardband_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

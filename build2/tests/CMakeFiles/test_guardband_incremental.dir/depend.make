# Empty dependencies file for test_guardband_incremental.
# This may be replaced when dependencies are built.

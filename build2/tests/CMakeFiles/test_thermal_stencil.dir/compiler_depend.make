# Empty compiler generated dependencies file for test_thermal_stencil.
# This may be replaced when dependencies are built.

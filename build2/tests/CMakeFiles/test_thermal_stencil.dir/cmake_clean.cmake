file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_stencil.dir/test_thermal_stencil.cpp.o"
  "CMakeFiles/test_thermal_stencil.dir/test_thermal_stencil.cpp.o.d"
  "test_thermal_stencil"
  "test_thermal_stencil.pdb"
  "test_thermal_stencil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_coffe.dir/test_coffe.cpp.o"
  "CMakeFiles/test_coffe.dir/test_coffe.cpp.o.d"
  "test_coffe"
  "test_coffe.pdb"
  "test_coffe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coffe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

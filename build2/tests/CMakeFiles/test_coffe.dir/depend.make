# Empty dependencies file for test_coffe.
# This may be replaced when dependencies are built.

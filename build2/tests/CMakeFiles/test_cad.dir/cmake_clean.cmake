file(REMOVE_RECURSE
  "CMakeFiles/test_cad.dir/test_cad.cpp.o"
  "CMakeFiles/test_cad.dir/test_cad.cpp.o.d"
  "test_cad"
  "test_cad.pdb"
  "test_cad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_cad.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_activity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_activity.dir/test_activity.cpp.o"
  "CMakeFiles/test_activity.dir/test_activity.cpp.o.d"
  "test_activity"
  "test_activity.pdb"
  "test_activity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

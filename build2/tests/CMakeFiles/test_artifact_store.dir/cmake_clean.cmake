file(REMOVE_RECURSE
  "CMakeFiles/test_artifact_store.dir/test_artifact_store.cpp.o"
  "CMakeFiles/test_artifact_store.dir/test_artifact_store.cpp.o.d"
  "test_artifact_store"
  "test_artifact_store.pdb"
  "test_artifact_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_artifact_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_artifact_store.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_differential.dir/test_thermal_differential.cpp.o"
  "CMakeFiles/test_thermal_differential.dir/test_thermal_differential.cpp.o.d"
  "test_thermal_differential"
  "test_thermal_differential.pdb"
  "test_thermal_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

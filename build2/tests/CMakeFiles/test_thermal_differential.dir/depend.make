# Empty dependencies file for test_thermal_differential.
# This may be replaced when dependencies are built.

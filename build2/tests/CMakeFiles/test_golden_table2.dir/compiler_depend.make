# Empty compiler generated dependencies file for test_golden_table2.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_golden_table2.dir/test_golden_table2.cpp.o"
  "CMakeFiles/test_golden_table2.dir/test_golden_table2.cpp.o.d"
  "test_golden_table2"
  "test_golden_table2.pdb"
  "test_golden_table2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_table2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace_fuzz.cpp" "tests/CMakeFiles/test_trace_fuzz.dir/test_trace_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_trace_fuzz.dir/test_trace_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/taf_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/timing/CMakeFiles/taf_timing.dir/DependInfo.cmake"
  "/root/repo/build2/src/power/CMakeFiles/taf_power.dir/DependInfo.cmake"
  "/root/repo/build2/src/thermal/CMakeFiles/taf_thermal.dir/DependInfo.cmake"
  "/root/repo/build2/src/route/CMakeFiles/taf_route.dir/DependInfo.cmake"
  "/root/repo/build2/src/place/CMakeFiles/taf_place.dir/DependInfo.cmake"
  "/root/repo/build2/src/pack/CMakeFiles/taf_pack.dir/DependInfo.cmake"
  "/root/repo/build2/src/activity/CMakeFiles/taf_activity.dir/DependInfo.cmake"
  "/root/repo/build2/src/netlist/CMakeFiles/taf_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/coffe/CMakeFiles/taf_coffe.dir/DependInfo.cmake"
  "/root/repo/build2/src/arch/CMakeFiles/taf_arch.dir/DependInfo.cmake"
  "/root/repo/build2/src/spice/CMakeFiles/taf_spice.dir/DependInfo.cmake"
  "/root/repo/build2/src/tech/CMakeFiles/taf_tech.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/taf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

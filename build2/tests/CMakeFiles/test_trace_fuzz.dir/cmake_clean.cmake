file(REMOVE_RECURSE
  "CMakeFiles/test_trace_fuzz.dir/test_trace_fuzz.cpp.o"
  "CMakeFiles/test_trace_fuzz.dir/test_trace_fuzz.cpp.o.d"
  "test_trace_fuzz"
  "test_trace_fuzz.pdb"
  "test_trace_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

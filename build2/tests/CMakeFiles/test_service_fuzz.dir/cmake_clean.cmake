file(REMOVE_RECURSE
  "CMakeFiles/test_service_fuzz.dir/test_service_fuzz.cpp.o"
  "CMakeFiles/test_service_fuzz.dir/test_service_fuzz.cpp.o.d"
  "test_service_fuzz"
  "test_service_fuzz.pdb"
  "test_service_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

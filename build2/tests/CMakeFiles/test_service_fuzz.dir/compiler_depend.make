# Empty compiler generated dependencies file for test_service_fuzz.
# This may be replaced when dependencies are built.

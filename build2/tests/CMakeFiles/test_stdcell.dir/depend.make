# Empty dependencies file for test_stdcell.
# This may be replaced when dependencies are built.

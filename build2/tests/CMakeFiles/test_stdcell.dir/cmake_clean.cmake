file(REMOVE_RECURSE
  "CMakeFiles/test_stdcell.dir/test_stdcell.cpp.o"
  "CMakeFiles/test_stdcell.dir/test_stdcell.cpp.o.d"
  "test_stdcell"
  "test_stdcell.pdb"
  "test_stdcell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stdcell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

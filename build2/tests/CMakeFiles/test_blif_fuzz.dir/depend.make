# Empty dependencies file for test_blif_fuzz.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_blif_fuzz.dir/test_blif_fuzz.cpp.o"
  "CMakeFiles/test_blif_fuzz.dir/test_blif_fuzz.cpp.o.d"
  "test_blif_fuzz"
  "test_blif_fuzz.pdb"
  "test_blif_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blif_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

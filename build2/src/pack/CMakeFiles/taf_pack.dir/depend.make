# Empty dependencies file for taf_pack.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtaf_pack.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/taf_pack.dir/pack.cpp.o"
  "CMakeFiles/taf_pack.dir/pack.cpp.o.d"
  "libtaf_pack.a"
  "libtaf_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src/pack
# Build directory: /root/repo/build2/src/pack
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

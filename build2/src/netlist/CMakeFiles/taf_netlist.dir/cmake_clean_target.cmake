file(REMOVE_RECURSE
  "libtaf_netlist.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/taf_netlist.dir/benchmarks.cpp.o"
  "CMakeFiles/taf_netlist.dir/benchmarks.cpp.o.d"
  "CMakeFiles/taf_netlist.dir/blif.cpp.o"
  "CMakeFiles/taf_netlist.dir/blif.cpp.o.d"
  "CMakeFiles/taf_netlist.dir/netlist.cpp.o"
  "CMakeFiles/taf_netlist.dir/netlist.cpp.o.d"
  "libtaf_netlist.a"
  "libtaf_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

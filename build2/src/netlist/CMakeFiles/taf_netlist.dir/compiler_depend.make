# Empty compiler generated dependencies file for taf_netlist.
# This may be replaced when dependencies are built.

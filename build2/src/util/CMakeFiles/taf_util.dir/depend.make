# Empty dependencies file for taf_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtaf_util.a"
)

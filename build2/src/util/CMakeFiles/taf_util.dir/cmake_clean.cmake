file(REMOVE_RECURSE
  "CMakeFiles/taf_util.dir/env.cpp.o"
  "CMakeFiles/taf_util.dir/env.cpp.o.d"
  "CMakeFiles/taf_util.dir/log.cpp.o"
  "CMakeFiles/taf_util.dir/log.cpp.o.d"
  "CMakeFiles/taf_util.dir/stats.cpp.o"
  "CMakeFiles/taf_util.dir/stats.cpp.o.d"
  "CMakeFiles/taf_util.dir/table.cpp.o"
  "CMakeFiles/taf_util.dir/table.cpp.o.d"
  "libtaf_util.a"
  "libtaf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

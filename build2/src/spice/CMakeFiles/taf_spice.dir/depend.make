# Empty dependencies file for taf_spice.
# This may be replaced when dependencies are built.

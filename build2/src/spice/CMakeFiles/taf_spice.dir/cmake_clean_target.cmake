file(REMOVE_RECURSE
  "libtaf_spice.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/taf_spice.dir/circuit.cpp.o"
  "CMakeFiles/taf_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/taf_spice.dir/linear.cpp.o"
  "CMakeFiles/taf_spice.dir/linear.cpp.o.d"
  "CMakeFiles/taf_spice.dir/mosfet_model.cpp.o"
  "CMakeFiles/taf_spice.dir/mosfet_model.cpp.o.d"
  "CMakeFiles/taf_spice.dir/solver.cpp.o"
  "CMakeFiles/taf_spice.dir/solver.cpp.o.d"
  "CMakeFiles/taf_spice.dir/sparse.cpp.o"
  "CMakeFiles/taf_spice.dir/sparse.cpp.o.d"
  "libtaf_spice.a"
  "libtaf_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

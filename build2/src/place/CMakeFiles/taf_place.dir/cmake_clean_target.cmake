file(REMOVE_RECURSE
  "libtaf_place.a"
)

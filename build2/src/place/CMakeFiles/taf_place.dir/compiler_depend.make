# Empty compiler generated dependencies file for taf_place.
# This may be replaced when dependencies are built.

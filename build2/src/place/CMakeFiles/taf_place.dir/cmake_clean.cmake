file(REMOVE_RECURSE
  "CMakeFiles/taf_place.dir/place.cpp.o"
  "CMakeFiles/taf_place.dir/place.cpp.o.d"
  "libtaf_place.a"
  "libtaf_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/taf_core.dir/dynamic.cpp.o"
  "CMakeFiles/taf_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/taf_core.dir/flow.cpp.o"
  "CMakeFiles/taf_core.dir/flow.cpp.o.d"
  "CMakeFiles/taf_core.dir/stage_graph.cpp.o"
  "CMakeFiles/taf_core.dir/stage_graph.cpp.o.d"
  "libtaf_core.a"
  "libtaf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

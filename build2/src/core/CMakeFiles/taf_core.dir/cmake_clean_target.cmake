file(REMOVE_RECURSE
  "libtaf_core.a"
)

# Empty compiler generated dependencies file for taf_core.
# This may be replaced when dependencies are built.

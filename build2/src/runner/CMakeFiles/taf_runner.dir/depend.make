# Empty dependencies file for taf_runner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/taf_runner.dir/artifact_store.cpp.o"
  "CMakeFiles/taf_runner.dir/artifact_store.cpp.o.d"
  "CMakeFiles/taf_runner.dir/flow_cache.cpp.o"
  "CMakeFiles/taf_runner.dir/flow_cache.cpp.o.d"
  "CMakeFiles/taf_runner.dir/metrics.cpp.o"
  "CMakeFiles/taf_runner.dir/metrics.cpp.o.d"
  "CMakeFiles/taf_runner.dir/sweep.cpp.o"
  "CMakeFiles/taf_runner.dir/sweep.cpp.o.d"
  "CMakeFiles/taf_runner.dir/thread_pool.cpp.o"
  "CMakeFiles/taf_runner.dir/thread_pool.cpp.o.d"
  "libtaf_runner.a"
  "libtaf_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

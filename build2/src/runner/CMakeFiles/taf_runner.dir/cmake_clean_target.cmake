file(REMOVE_RECURSE
  "libtaf_runner.a"
)

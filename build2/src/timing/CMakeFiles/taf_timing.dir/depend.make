# Empty dependencies file for taf_timing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtaf_timing.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/taf_timing.dir/timing.cpp.o"
  "CMakeFiles/taf_timing.dir/timing.cpp.o.d"
  "libtaf_timing.a"
  "libtaf_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

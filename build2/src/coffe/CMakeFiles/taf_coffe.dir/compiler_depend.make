# Empty compiler generated dependencies file for taf_coffe.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coffe/bram_model.cpp" "src/coffe/CMakeFiles/taf_coffe.dir/bram_model.cpp.o" "gcc" "src/coffe/CMakeFiles/taf_coffe.dir/bram_model.cpp.o.d"
  "/root/repo/src/coffe/device_model.cpp" "src/coffe/CMakeFiles/taf_coffe.dir/device_model.cpp.o" "gcc" "src/coffe/CMakeFiles/taf_coffe.dir/device_model.cpp.o.d"
  "/root/repo/src/coffe/path_eval.cpp" "src/coffe/CMakeFiles/taf_coffe.dir/path_eval.cpp.o" "gcc" "src/coffe/CMakeFiles/taf_coffe.dir/path_eval.cpp.o.d"
  "/root/repo/src/coffe/path_spec.cpp" "src/coffe/CMakeFiles/taf_coffe.dir/path_spec.cpp.o" "gcc" "src/coffe/CMakeFiles/taf_coffe.dir/path_spec.cpp.o.d"
  "/root/repo/src/coffe/resource.cpp" "src/coffe/CMakeFiles/taf_coffe.dir/resource.cpp.o" "gcc" "src/coffe/CMakeFiles/taf_coffe.dir/resource.cpp.o.d"
  "/root/repo/src/coffe/sizing.cpp" "src/coffe/CMakeFiles/taf_coffe.dir/sizing.cpp.o" "gcc" "src/coffe/CMakeFiles/taf_coffe.dir/sizing.cpp.o.d"
  "/root/repo/src/coffe/stdcell.cpp" "src/coffe/CMakeFiles/taf_coffe.dir/stdcell.cpp.o" "gcc" "src/coffe/CMakeFiles/taf_coffe.dir/stdcell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/tech/CMakeFiles/taf_tech.dir/DependInfo.cmake"
  "/root/repo/build2/src/spice/CMakeFiles/taf_spice.dir/DependInfo.cmake"
  "/root/repo/build2/src/arch/CMakeFiles/taf_arch.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/taf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

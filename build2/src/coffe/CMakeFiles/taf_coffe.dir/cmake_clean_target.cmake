file(REMOVE_RECURSE
  "libtaf_coffe.a"
)

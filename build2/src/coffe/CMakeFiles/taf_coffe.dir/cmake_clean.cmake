file(REMOVE_RECURSE
  "CMakeFiles/taf_coffe.dir/bram_model.cpp.o"
  "CMakeFiles/taf_coffe.dir/bram_model.cpp.o.d"
  "CMakeFiles/taf_coffe.dir/device_model.cpp.o"
  "CMakeFiles/taf_coffe.dir/device_model.cpp.o.d"
  "CMakeFiles/taf_coffe.dir/path_eval.cpp.o"
  "CMakeFiles/taf_coffe.dir/path_eval.cpp.o.d"
  "CMakeFiles/taf_coffe.dir/path_spec.cpp.o"
  "CMakeFiles/taf_coffe.dir/path_spec.cpp.o.d"
  "CMakeFiles/taf_coffe.dir/resource.cpp.o"
  "CMakeFiles/taf_coffe.dir/resource.cpp.o.d"
  "CMakeFiles/taf_coffe.dir/sizing.cpp.o"
  "CMakeFiles/taf_coffe.dir/sizing.cpp.o.d"
  "CMakeFiles/taf_coffe.dir/stdcell.cpp.o"
  "CMakeFiles/taf_coffe.dir/stdcell.cpp.o.d"
  "libtaf_coffe.a"
  "libtaf_coffe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_coffe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

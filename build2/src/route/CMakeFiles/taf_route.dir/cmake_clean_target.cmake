file(REMOVE_RECURSE
  "libtaf_route.a"
)

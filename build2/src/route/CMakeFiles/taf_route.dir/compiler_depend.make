# Empty compiler generated dependencies file for taf_route.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/taf_route.dir/router.cpp.o"
  "CMakeFiles/taf_route.dir/router.cpp.o.d"
  "CMakeFiles/taf_route.dir/rr_graph.cpp.o"
  "CMakeFiles/taf_route.dir/rr_graph.cpp.o.d"
  "libtaf_route.a"
  "libtaf_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

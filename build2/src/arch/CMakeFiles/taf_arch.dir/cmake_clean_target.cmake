file(REMOVE_RECURSE
  "libtaf_arch.a"
)

# Empty dependencies file for taf_arch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/taf_arch.dir/fpga_grid.cpp.o"
  "CMakeFiles/taf_arch.dir/fpga_grid.cpp.o.d"
  "libtaf_arch.a"
  "libtaf_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for guardband_serverd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/guardband_serverd.dir/serverd_main.cpp.o"
  "CMakeFiles/guardband_serverd.dir/serverd_main.cpp.o.d"
  "guardband_serverd"
  "guardband_serverd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardband_serverd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/taf_service.dir/guardband_server.cpp.o"
  "CMakeFiles/taf_service.dir/guardband_server.cpp.o.d"
  "CMakeFiles/taf_service.dir/protocol.cpp.o"
  "CMakeFiles/taf_service.dir/protocol.cpp.o.d"
  "CMakeFiles/taf_service.dir/socket_transport.cpp.o"
  "CMakeFiles/taf_service.dir/socket_transport.cpp.o.d"
  "libtaf_service.a"
  "libtaf_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtaf_service.a"
)

# Empty dependencies file for taf_service.
# This may be replaced when dependencies are built.

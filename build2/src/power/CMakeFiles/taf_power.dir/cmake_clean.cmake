file(REMOVE_RECURSE
  "CMakeFiles/taf_power.dir/power.cpp.o"
  "CMakeFiles/taf_power.dir/power.cpp.o.d"
  "libtaf_power.a"
  "libtaf_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

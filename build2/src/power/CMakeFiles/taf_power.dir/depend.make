# Empty dependencies file for taf_power.
# This may be replaced when dependencies are built.

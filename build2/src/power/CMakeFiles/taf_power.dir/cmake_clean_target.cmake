file(REMOVE_RECURSE
  "libtaf_power.a"
)

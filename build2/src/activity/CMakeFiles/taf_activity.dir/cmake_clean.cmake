file(REMOVE_RECURSE
  "CMakeFiles/taf_activity.dir/activity.cpp.o"
  "CMakeFiles/taf_activity.dir/activity.cpp.o.d"
  "libtaf_activity.a"
  "libtaf_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

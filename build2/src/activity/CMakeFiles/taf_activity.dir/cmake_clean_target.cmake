file(REMOVE_RECURSE
  "libtaf_activity.a"
)

# Empty compiler generated dependencies file for taf_activity.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for taf_tech.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtaf_tech.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/taf_tech.dir/technology.cpp.o"
  "CMakeFiles/taf_tech.dir/technology.cpp.o.d"
  "libtaf_tech.a"
  "libtaf_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for taf_thermal.
# This may be replaced when dependencies are built.

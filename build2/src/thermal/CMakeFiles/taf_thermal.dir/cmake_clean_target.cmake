file(REMOVE_RECURSE
  "libtaf_thermal.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/stencil_solver.cpp" "src/thermal/CMakeFiles/taf_thermal.dir/stencil_solver.cpp.o" "gcc" "src/thermal/CMakeFiles/taf_thermal.dir/stencil_solver.cpp.o.d"
  "/root/repo/src/thermal/thermal_grid.cpp" "src/thermal/CMakeFiles/taf_thermal.dir/thermal_grid.cpp.o" "gcc" "src/thermal/CMakeFiles/taf_thermal.dir/thermal_grid.cpp.o.d"
  "/root/repo/src/thermal/transient.cpp" "src/thermal/CMakeFiles/taf_thermal.dir/transient.cpp.o" "gcc" "src/thermal/CMakeFiles/taf_thermal.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/arch/CMakeFiles/taf_arch.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/taf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/taf_thermal.dir/stencil_solver.cpp.o"
  "CMakeFiles/taf_thermal.dir/stencil_solver.cpp.o.d"
  "CMakeFiles/taf_thermal.dir/thermal_grid.cpp.o"
  "CMakeFiles/taf_thermal.dir/thermal_grid.cpp.o.d"
  "CMakeFiles/taf_thermal.dir/transient.cpp.o"
  "CMakeFiles/taf_thermal.dir/transient.cpp.o.d"
  "libtaf_thermal.a"
  "libtaf_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

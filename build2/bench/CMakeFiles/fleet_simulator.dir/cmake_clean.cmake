file(REMOVE_RECURSE
  "CMakeFiles/fleet_simulator.dir/fleet_simulator.cpp.o"
  "CMakeFiles/fleet_simulator.dir/fleet_simulator.cpp.o.d"
  "fleet_simulator"
  "fleet_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fleet_simulator.
# This may be replaced when dependencies are built.

# Empty dependencies file for dynamic_throttling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dynamic_throttling.dir/dynamic_throttling.cpp.o"
  "CMakeFiles/dynamic_throttling.dir/dynamic_throttling.cpp.o.d"
  "dynamic_throttling"
  "dynamic_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_channel_width.cpp" "bench/CMakeFiles/bench_all.dir/ablation_channel_width.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/ablation_channel_width.cpp.o.d"
  "/root/repo/bench/ablation_convergence.cpp" "bench/CMakeFiles/bench_all.dir/ablation_convergence.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/ablation_convergence.cpp.o.d"
  "/root/repo/bench/ablation_sizing.cpp" "bench/CMakeFiles/bench_all.dir/ablation_sizing.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/ablation_sizing.cpp.o.d"
  "/root/repo/bench/bench_all.cpp" "bench/CMakeFiles/bench_all.dir/bench_all.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/bench_all.cpp.o.d"
  "/root/repo/bench/comparison_online_dvfs.cpp" "bench/CMakeFiles/bench_all.dir/comparison_online_dvfs.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/comparison_online_dvfs.cpp.o.d"
  "/root/repo/bench/dynamic_throttling.cpp" "bench/CMakeFiles/bench_all.dir/dynamic_throttling.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/dynamic_throttling.cpp.o.d"
  "/root/repo/bench/eq1_expected_delay.cpp" "bench/CMakeFiles/bench_all.dir/eq1_expected_delay.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/eq1_expected_delay.cpp.o.d"
  "/root/repo/bench/fig1_delay_vs_temp.cpp" "bench/CMakeFiles/bench_all.dir/fig1_delay_vs_temp.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/fig1_delay_vs_temp.cpp.o.d"
  "/root/repo/bench/fig2_corner_matrix.cpp" "bench/CMakeFiles/bench_all.dir/fig2_corner_matrix.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/fig2_corner_matrix.cpp.o.d"
  "/root/repo/bench/fig3_cp_corner_curves.cpp" "bench/CMakeFiles/bench_all.dir/fig3_cp_corner_curves.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/fig3_cp_corner_curves.cpp.o.d"
  "/root/repo/bench/fig6_guardband_tamb25.cpp" "bench/CMakeFiles/bench_all.dir/fig6_guardband_tamb25.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/fig6_guardband_tamb25.cpp.o.d"
  "/root/repo/bench/fig7_guardband_tamb70.cpp" "bench/CMakeFiles/bench_all.dir/fig7_guardband_tamb70.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/fig7_guardband_tamb70.cpp.o.d"
  "/root/repo/bench/fig8_arch_opt_tamb70.cpp" "bench/CMakeFiles/bench_all.dir/fig8_arch_opt_tamb70.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/fig8_arch_opt_tamb70.cpp.o.d"
  "/root/repo/bench/table1_arch_params.cpp" "bench/CMakeFiles/bench_all.dir/table1_arch_params.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/table1_arch_params.cpp.o.d"
  "/root/repo/bench/table2_characterization.cpp" "bench/CMakeFiles/bench_all.dir/table2_characterization.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/table2_characterization.cpp.o.d"
  "/root/repo/bench/task_allocation.cpp" "bench/CMakeFiles/bench_all.dir/task_allocation.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/task_allocation.cpp.o.d"
  "/root/repo/bench/validation_dsp_liberty.cpp" "bench/CMakeFiles/bench_all.dir/validation_dsp_liberty.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/validation_dsp_liberty.cpp.o.d"
  "/root/repo/bench/validation_thermal.cpp" "bench/CMakeFiles/bench_all.dir/validation_thermal.cpp.o" "gcc" "bench/CMakeFiles/bench_all.dir/validation_thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/taf_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/runner/CMakeFiles/taf_runner.dir/DependInfo.cmake"
  "/root/repo/build2/src/timing/CMakeFiles/taf_timing.dir/DependInfo.cmake"
  "/root/repo/build2/src/power/CMakeFiles/taf_power.dir/DependInfo.cmake"
  "/root/repo/build2/src/thermal/CMakeFiles/taf_thermal.dir/DependInfo.cmake"
  "/root/repo/build2/src/route/CMakeFiles/taf_route.dir/DependInfo.cmake"
  "/root/repo/build2/src/place/CMakeFiles/taf_place.dir/DependInfo.cmake"
  "/root/repo/build2/src/pack/CMakeFiles/taf_pack.dir/DependInfo.cmake"
  "/root/repo/build2/src/activity/CMakeFiles/taf_activity.dir/DependInfo.cmake"
  "/root/repo/build2/src/netlist/CMakeFiles/taf_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/coffe/CMakeFiles/taf_coffe.dir/DependInfo.cmake"
  "/root/repo/build2/src/arch/CMakeFiles/taf_arch.dir/DependInfo.cmake"
  "/root/repo/build2/src/spice/CMakeFiles/taf_spice.dir/DependInfo.cmake"
  "/root/repo/build2/src/tech/CMakeFiles/taf_tech.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/taf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

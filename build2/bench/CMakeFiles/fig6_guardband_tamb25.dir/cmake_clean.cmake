file(REMOVE_RECURSE
  "CMakeFiles/fig6_guardband_tamb25.dir/fig6_guardband_tamb25.cpp.o"
  "CMakeFiles/fig6_guardband_tamb25.dir/fig6_guardband_tamb25.cpp.o.d"
  "fig6_guardband_tamb25"
  "fig6_guardband_tamb25.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_guardband_tamb25.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_guardband_tamb25.
# This may be replaced when dependencies are built.

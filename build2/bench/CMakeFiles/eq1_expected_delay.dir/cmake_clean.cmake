file(REMOVE_RECURSE
  "CMakeFiles/eq1_expected_delay.dir/eq1_expected_delay.cpp.o"
  "CMakeFiles/eq1_expected_delay.dir/eq1_expected_delay.cpp.o.d"
  "eq1_expected_delay"
  "eq1_expected_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq1_expected_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

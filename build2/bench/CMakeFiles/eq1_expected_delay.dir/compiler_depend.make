# Empty compiler generated dependencies file for eq1_expected_delay.
# This may be replaced when dependencies are built.

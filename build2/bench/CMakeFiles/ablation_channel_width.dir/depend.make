# Empty dependencies file for ablation_channel_width.
# This may be replaced when dependencies are built.

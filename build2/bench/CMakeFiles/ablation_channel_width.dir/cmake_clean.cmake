file(REMOVE_RECURSE
  "CMakeFiles/ablation_channel_width.dir/ablation_channel_width.cpp.o"
  "CMakeFiles/ablation_channel_width.dir/ablation_channel_width.cpp.o.d"
  "ablation_channel_width"
  "ablation_channel_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_channel_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

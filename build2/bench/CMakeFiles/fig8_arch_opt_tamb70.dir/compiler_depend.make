# Empty compiler generated dependencies file for fig8_arch_opt_tamb70.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8_arch_opt_tamb70.dir/fig8_arch_opt_tamb70.cpp.o"
  "CMakeFiles/fig8_arch_opt_tamb70.dir/fig8_arch_opt_tamb70.cpp.o.d"
  "fig8_arch_opt_tamb70"
  "fig8_arch_opt_tamb70.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_arch_opt_tamb70.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

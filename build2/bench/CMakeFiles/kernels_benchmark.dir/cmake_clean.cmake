file(REMOVE_RECURSE
  "CMakeFiles/kernels_benchmark.dir/kernels_benchmark.cpp.o"
  "CMakeFiles/kernels_benchmark.dir/kernels_benchmark.cpp.o.d"
  "kernels_benchmark"
  "kernels_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for kernels_benchmark.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/validation_dsp_liberty.dir/validation_dsp_liberty.cpp.o"
  "CMakeFiles/validation_dsp_liberty.dir/validation_dsp_liberty.cpp.o.d"
  "validation_dsp_liberty"
  "validation_dsp_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_dsp_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

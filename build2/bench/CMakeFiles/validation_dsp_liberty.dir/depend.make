# Empty dependencies file for validation_dsp_liberty.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for comparison_online_dvfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/comparison_online_dvfs.dir/comparison_online_dvfs.cpp.o"
  "CMakeFiles/comparison_online_dvfs.dir/comparison_online_dvfs.cpp.o.d"
  "comparison_online_dvfs"
  "comparison_online_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_online_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_corner_matrix.
# This may be replaced when dependencies are built.

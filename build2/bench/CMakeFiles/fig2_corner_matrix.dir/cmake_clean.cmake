file(REMOVE_RECURSE
  "CMakeFiles/fig2_corner_matrix.dir/fig2_corner_matrix.cpp.o"
  "CMakeFiles/fig2_corner_matrix.dir/fig2_corner_matrix.cpp.o.d"
  "fig2_corner_matrix"
  "fig2_corner_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_corner_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

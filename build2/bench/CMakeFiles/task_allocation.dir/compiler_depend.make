# Empty compiler generated dependencies file for task_allocation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/task_allocation.dir/task_allocation.cpp.o"
  "CMakeFiles/task_allocation.dir/task_allocation.cpp.o.d"
  "task_allocation"
  "task_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

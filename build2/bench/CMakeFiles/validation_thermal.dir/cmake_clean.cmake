file(REMOVE_RECURSE
  "CMakeFiles/validation_thermal.dir/validation_thermal.cpp.o"
  "CMakeFiles/validation_thermal.dir/validation_thermal.cpp.o.d"
  "validation_thermal"
  "validation_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

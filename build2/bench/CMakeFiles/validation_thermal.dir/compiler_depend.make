# Empty compiler generated dependencies file for validation_thermal.
# This may be replaced when dependencies are built.

# Empty dependencies file for table1_arch_params.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_guardband_tamb70.dir/fig7_guardband_tamb70.cpp.o"
  "CMakeFiles/fig7_guardband_tamb70.dir/fig7_guardband_tamb70.cpp.o.d"
  "fig7_guardband_tamb70"
  "fig7_guardband_tamb70.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_guardband_tamb70.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

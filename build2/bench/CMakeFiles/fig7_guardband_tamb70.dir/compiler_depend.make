# Empty compiler generated dependencies file for fig7_guardband_tamb70.
# This may be replaced when dependencies are built.

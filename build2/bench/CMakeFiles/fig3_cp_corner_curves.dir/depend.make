# Empty dependencies file for fig3_cp_corner_curves.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_cp_corner_curves.dir/fig3_cp_corner_curves.cpp.o"
  "CMakeFiles/fig3_cp_corner_curves.dir/fig3_cp_corner_curves.cpp.o.d"
  "fig3_cp_corner_curves"
  "fig3_cp_corner_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cp_corner_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig1_delay_vs_temp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig1_delay_vs_temp.dir/fig1_delay_vs_temp.cpp.o"
  "CMakeFiles/fig1_delay_vs_temp.dir/fig1_delay_vs_temp.cpp.o.d"
  "fig1_delay_vs_temp"
  "fig1_delay_vs_temp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_delay_vs_temp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

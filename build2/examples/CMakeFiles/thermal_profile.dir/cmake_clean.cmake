file(REMOVE_RECURSE
  "CMakeFiles/thermal_profile.dir/thermal_profile.cpp.o"
  "CMakeFiles/thermal_profile.dir/thermal_profile.cpp.o.d"
  "thermal_profile"
  "thermal_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for thermal_profile.
# This may be replaced when dependencies are built.

# Empty dependencies file for corner_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/corner_explorer.dir/corner_explorer.cpp.o"
  "CMakeFiles/corner_explorer.dir/corner_explorer.cpp.o.d"
  "corner_explorer"
  "corner_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corner_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for parallel_sweep.
# This may be replaced when dependencies are built.

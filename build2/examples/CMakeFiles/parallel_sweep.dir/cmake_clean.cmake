file(REMOVE_RECURSE
  "CMakeFiles/parallel_sweep.dir/parallel_sweep.cpp.o"
  "CMakeFiles/parallel_sweep.dir/parallel_sweep.cpp.o.d"
  "parallel_sweep"
  "parallel_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

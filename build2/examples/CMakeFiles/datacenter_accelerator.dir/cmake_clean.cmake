file(REMOVE_RECURSE
  "CMakeFiles/datacenter_accelerator.dir/datacenter_accelerator.cpp.o"
  "CMakeFiles/datacenter_accelerator.dir/datacenter_accelerator.cpp.o.d"
  "datacenter_accelerator"
  "datacenter_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

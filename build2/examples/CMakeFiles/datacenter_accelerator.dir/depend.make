# Empty dependencies file for datacenter_accelerator.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tools/analyzer
# Build directory: /root/repo/build2/tools/analyzer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

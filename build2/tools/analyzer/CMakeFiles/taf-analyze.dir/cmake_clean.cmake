file(REMOVE_RECURSE
  "CMakeFiles/taf-analyze.dir/main.cpp.o"
  "CMakeFiles/taf-analyze.dir/main.cpp.o.d"
  "taf-analyze"
  "taf-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for taf-analyze.
# This may be replaced when dependencies are built.

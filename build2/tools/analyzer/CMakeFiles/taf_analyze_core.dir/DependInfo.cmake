
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/analyzer/analyzer.cpp" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/analyzer.cpp.o" "gcc" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/analyzer.cpp.o.d"
  "/root/repo/tools/analyzer/lexer.cpp" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/lexer.cpp.o" "gcc" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/lexer.cpp.o.d"
  "/root/repo/tools/analyzer/rules_concurrency.cpp" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/rules_concurrency.cpp.o" "gcc" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/rules_concurrency.cpp.o.d"
  "/root/repo/tools/analyzer/rules_determinism.cpp" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/rules_determinism.cpp.o" "gcc" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/rules_determinism.cpp.o.d"
  "/root/repo/tools/analyzer/rules_seam.cpp" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/rules_seam.cpp.o" "gcc" "tools/analyzer/CMakeFiles/taf_analyze_core.dir/rules_seam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

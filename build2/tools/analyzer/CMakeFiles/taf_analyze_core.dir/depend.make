# Empty dependencies file for taf_analyze_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/taf_analyze_core.dir/analyzer.cpp.o"
  "CMakeFiles/taf_analyze_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/taf_analyze_core.dir/lexer.cpp.o"
  "CMakeFiles/taf_analyze_core.dir/lexer.cpp.o.d"
  "CMakeFiles/taf_analyze_core.dir/rules_concurrency.cpp.o"
  "CMakeFiles/taf_analyze_core.dir/rules_concurrency.cpp.o.d"
  "CMakeFiles/taf_analyze_core.dir/rules_determinism.cpp.o"
  "CMakeFiles/taf_analyze_core.dir/rules_determinism.cpp.o.d"
  "CMakeFiles/taf_analyze_core.dir/rules_seam.cpp.o"
  "CMakeFiles/taf_analyze_core.dir/rules_seam.cpp.o.d"
  "libtaf_analyze_core.a"
  "libtaf_analyze_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_analyze_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtaf_analyze_core.a"
)

// Ablation: guardbanding gain vs. channel width — justifies the W=320 ->
// W=96 scaling of the routed experiments (DESIGN.md section 6).

#include "bench_common.hpp"

TAF_EXPERIMENT(ablation_channel_width) {
  using namespace taf;
  using util::Table;
  bench::print_header("Ablation — guardbanding gain vs channel width",
                      "gains are a property of delay-temperature physics, not of "
                      "routing supply, as long as the design routes");

  const int widths[] = {64, 96, 128, 192};
  const netlist::BenchmarkSpec spec = bench::suite_spec("stereovision0");
  // Characterization is independent of W except for per-tile leakage
  // counts; reuse the shared device model. Only the implementations vary,
  // one flow per width, fanned out over the pool (the FlowCache keys on
  // the arch hash, so the widths never alias).
  const auto& dev = bench::device_at(25.0);
  std::vector<core::GuardbandResult> results(std::size(widths));
  std::vector<const core::Implementation*> impls(std::size(widths));
  bench::pool().parallel_for(std::size(widths), [&](std::size_t i) {
    arch::ArchParams a = bench::bench_arch();
    a.channel_tracks = widths[i];
    impls[i] = &runner::FlowCache::global().implementation(spec, a, bench::kSuiteScale);
    core::GuardbandOptions opt;
    opt.t_amb_c = units::Celsius(25.0);
    results[i] = core::guardband(*impls[i], dev, opt);
  });

  Table t({"W", "routed", "route iters", "baseline MHz", "gain @25C"});
  for (std::size_t i = 0; i < std::size(widths); ++i) {
    t.add_row({std::to_string(widths[i]), impls[i]->routes.success ? "yes" : "no",
               std::to_string(impls[i]->routes.iterations),
               Table::num(results[i].baseline_fmax_mhz.value(), 1), Table::pct(results[i].gain())});
  }
  t.print();
  return 0;
}

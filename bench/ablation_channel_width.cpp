// Ablation: guardbanding gain vs. channel width — justifies the W=320 ->
// W=96 scaling of the routed experiments (DESIGN.md section 6).

#include "bench_common.hpp"

int main() {
  using namespace taf;
  using util::Table;
  bench::print_header("Ablation — guardbanding gain vs channel width",
                      "gains are a property of delay-temperature physics, not of "
                      "routing supply, as long as the design routes");

  Table t({"W", "routed", "route iters", "baseline MHz", "gain @25C"});
  for (int w : {64, 96, 128, 192}) {
    arch::ArchParams a = bench::bench_arch();
    a.channel_tracks = w;
    netlist::BenchmarkSpec spec;
    for (const auto& s : netlist::vtr_suite()) {
      if (s.name == "stereovision0") spec = netlist::scaled(s, bench::kSuiteScale);
    }
    const auto impl = core::implement(spec, a);
    // Characterization is independent of W except for per-tile leakage
    // counts; reuse the shared device model.
    core::GuardbandOptions opt;
    opt.t_amb_c = 25.0;
    const auto r = core::guardband(*impl, bench::device_at(25.0), opt);
    t.add_row({std::to_string(w), impl->routes.success ? "yes" : "no",
               std::to_string(impl->routes.iterations),
               Table::num(r.baseline_fmax_mhz, 1), Table::pct(r.gain())});
  }
  t.print();
  return 0;
}

// Thermal-aware task-to-tile allocation experiment (DESIGN.md section
// 13): place N synthetic kernels on one implemented fabric with the
// greedy Hung-style allocator (hottest kernels claim the thermally
// cheapest regions, later kernels spread away from already-placed heat)
// and compare against naive row-major packing — in steady-state peak
// temperature, in the safe frequency timed at the resulting field, and
// in the transient peak of a staggered activation schedule.

#include "bench_common.hpp"
#include "core/dynamic.hpp"
#include "timing/timing.hpp"

namespace {

/// Per-tile power map [W] of an allocation: each task's power spread
/// uniformly over the tiles it owns.
std::vector<double> power_map(const std::vector<int>& tile_block,
                              const std::vector<taf::core::TaskSpec>& tasks,
                              const std::vector<int>& active) {
  std::vector<double> power(tile_block.size(), 0.0);
  for (std::size_t i = 0; i < tile_block.size(); ++i) {
    const int task = tile_block[i];
    if (task < 0 || !active[static_cast<std::size_t>(task)]) continue;
    power[i] = tasks[static_cast<std::size_t>(task)].power_w.value() /
               tasks[static_cast<std::size_t>(task)].tiles;
  }
  return power;
}

}  // namespace

TAF_EXPERIMENT(task_allocation) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Task allocation — greedy thermal-aware placement vs row-major packing",
      "placing kernels to minimize the peak of the tentative steady solve "
      "spreads heat across the fabric, lowering both the steady and the "
      "transient peak of the same schedule");

  const char* design = "sha";
  const double ambient_c = 45.0;
  const auto& dev = bench::device_at(25.0);
  const auto& impl = bench::implementation_of(design);

  thermal::ThermalConfig tcfg;
  tcfg.ambient_c = units::Celsius{ambient_c};
  tcfg.tile_edge_um = impl.arch.tile_edge_um;
  const thermal::ThermalGrid grid(impl.grid, tcfg);
  const int n = grid.width() * grid.height();

  // Five synthetic kernels, deliberately mixed in power density so the
  // greedy descending-density order matters. Footprints total well under
  // the fabric so both allocators can always place.
  const int kernel_tiles = std::max(1, n / 16);
  const std::vector<core::TaskSpec> tasks = {
      {units::Watts{0.80}, kernel_tiles},
      {units::Watts{0.50}, kernel_tiles},
      {units::Watts{0.45}, 2 * kernel_tiles},
      {units::Watts{0.30}, kernel_tiles},
      {units::Watts{0.20}, 2 * kernel_tiles},
  };
  std::printf("fabric %dx%d (%d tiles), %d kernels of %d/%d tiles, ambient %.0f C\n\n",
              grid.width(), grid.height(), n, static_cast<int>(tasks.size()),
              kernel_tiles, 2 * kernel_tiles, ambient_c);

  // Greedy thermal-aware allocation.
  const core::Allocation greedy = core::allocate_tasks(grid, tasks);

  // Naive baseline: pack tiles row-major in task order from the corner.
  std::vector<int> naive(static_cast<std::size_t>(n), -1);
  {
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      for (int k = 0; k < tasks[i].tiles; ++k) naive[cursor++] = static_cast<int>(i);
    }
  }

  const std::vector<int> all_active(tasks.size(), 1);
  timing::IncrementalSta session(*impl.sta, dev);
  thermal::TransientEngine engine(grid);
  const double tau_s = grid.tile_time_constant().value();

  Table t({"Allocation", "steady peak C", "fmax MHz", "transient peak C",
           "candidate solves"});
  const struct {
    const char* name;
    const std::vector<int>* tile_block;
    std::uint64_t solves;
  } rows[] = {
      {"greedy thermal-aware", &greedy.tile_block, greedy.candidate_solves},
      {"row-major packing", &naive, 0},
  };
  for (const auto& row : rows) {
    const std::vector<double> steady_power = power_map(*row.tile_block, tasks, all_active);
    const std::vector<double> steady_temps = grid.solve(steady_power);
    const double steady_peak = thermal::ThermalGrid::peak(steady_temps).value();
    const double fmax = session.analyze(steady_temps, false).fmax_mhz.value();

    // Staggered schedule: tasks wake in adjacent pairs, half a time
    // constant each, two passes — the transient peak rewards placements
    // that keep simultaneously-active kernels apart.
    std::vector<double> temps(static_cast<std::size_t>(n), ambient_c);
    double transient_peak = ambient_c;
    thermal::TransientStats stats;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t s = 0; s < tasks.size(); ++s) {
        std::vector<int> active(tasks.size(), 0);
        active[s] = 1;
        active[(s + 1) % tasks.size()] = 1;
        engine.advance(power_map(*row.tile_block, tasks, active),
                       units::Seconds{0.5 * tau_s}, temps, &stats);
        transient_peak =
            std::max(transient_peak, thermal::ThermalGrid::peak(temps).value());
      }
    }
    core::FlowCounters& fc = core::thread_flow_counters();
    fc.transient_steps += stats.steps;
    fc.transient_cg_iterations += stats.cg_iterations;

    t.add_row({row.name, Table::num(steady_peak, 3), Table::num(fmax, 1),
               Table::num(transient_peak, 3), std::to_string(row.solves)});
  }
  t.print();

  std::printf("\nGreedy placement pays %llu tentative steady solves to separate the\n"
              "hot kernels; row-major packing stacks them into one corner and eats\n"
              "the resulting peak in both steady-state and staggered operation.\n"
              "(fmax is set by the critical-path tiles, not the peak tile, so it\n"
              "moves less than the peak temperature does.)\n",
              static_cast<unsigned long long>(greedy.candidate_solves));
  return 0;
}

// Section IV-A validation: the thermal stack reproduces the paper's
// cross-check against the Xilinx Power Estimator,
//   dT ~= 0.7 * p_design / p_base,
// where p_base is the device base (leakage) power.

#include "bench_common.hpp"

TAF_EXPERIMENT(validation_thermal) {
  using namespace taf;
  using util::Table;
  bench::print_header("Thermal cross-validation — dT vs 0.7 * p_design/p_base",
                      "temperature sensitivity to power density matches the XPE "
                      "spreadsheet rule of thumb");

  const char* names[] = {"sha", "or1200", "stereovision0", "blob_merge",
                         "LU8PEEng", "mcml"};
  std::vector<runner::SweepPoint> points;
  for (const char* name : names) {
    runner::SweepPoint p;
    p.spec = bench::suite_spec(name);
    p.scale = bench::kSuiteScale;
    p.arch = bench::bench_arch();
    p.t_opt_c = 25.0;
    p.guardband.t_amb_c = units::Celsius(25.0);
    points.push_back(std::move(p));
  }
  const auto cells = bench::run_sweep(points);

  const auto& dev = bench::device_at(25.0);
  Table t({"Benchmark", "p_design (W)", "p_base (W)", "mean dT (C)",
           "0.7 p/pbase", "ratio"});
  for (std::size_t i = 0; i < std::size(names); ++i) {
    const auto& impl = bench::implementation_of(names[i]);
    const auto& r = cells[i].guardband;
    // Base power: the unconfigured device's leakage at ambient.
    double p_base = 0.0;
    for (int y = 0; y < impl.grid.height(); ++y) {
      for (int x = 0; x < impl.grid.width(); ++x) {
        p_base += 1e-6 * power::tile_leakage(dev, impl.grid.at(x, y), impl.arch, units::Celsius(25.0)).value();
      }
    }
    const double p_design = r.power.total_w().value();
    const double dt = r.mean_temp_c.value() - 25.0;
    const double predicted = 0.7 * p_design / p_base;
    t.add_row({names[i], Table::num(p_design, 3), Table::num(p_base, 3),
               Table::num(dt, 2), Table::num(predicted, 2),
               Table::num(predicted > 0 ? dt / predicted : 0.0, 2)});
  }
  t.print();
  std::printf("\nA ratio near 1.0 reproduces the paper's calibration point.\n");
  return 0;
}

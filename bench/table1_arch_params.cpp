// Table I: architectural parameters used in COFFE.

#include "bench_common.hpp"

TAF_EXPERIMENT(table1_arch_params) {
  using taf::util::Table;
  taf::bench::print_header("Table I — architectural parameters",
                           "K=6, N=10, W=320, L=4, SBmux 12, CBmux 64, localmux 25, "
                           "Vdd 0.8V / 0.95V, I=40, BRAM 1024x32");

  const auto paper = taf::arch::paper_arch();
  const auto routed = taf::bench::bench_arch();

  Table t({"Parameter", "Paper value", "Routed-experiment value"});
  auto row = [&](const char* name, int pv, int rv) {
    t.add_row({name, std::to_string(pv), std::to_string(rv)});
  };
  row("K (LUT inputs)", paper.lut_k, routed.lut_k);
  row("N (BLEs per cluster)", paper.cluster_n, routed.cluster_n);
  row("Channel tracks (W)", paper.channel_tracks, routed.channel_tracks);
  row("Wire segment length (L)", paper.wire_segment_length, routed.wire_segment_length);
  row("Cluster global inputs (I)", paper.cluster_inputs, routed.cluster_inputs);
  row("SB mux size", paper.sb_mux_size, routed.sb_mux_size);
  row("CB mux size", paper.cb_mux_size, routed.cb_mux_size);
  row("Local mux size", paper.local_mux_size, routed.local_mux_size);
  t.add_row({"Vdd / Vdd low-power", "0.8V / 0.95V",
             Table::num(routed.vdd, 2) + "V / " + Table::num(routed.vdd_low_power, 2) + "V"});
  t.add_row({"BRAM", "1024 x 32 bit",
             std::to_string(routed.bram_words) + " x " + std::to_string(routed.bram_width) +
                 " bit"});
  t.print();
  std::printf("\nNote: W is reduced 320 -> %d for the routed experiments "
              "(DESIGN.md section 6); the ablation_channel_width bench shows the\n"
              "guardbanding gains are insensitive to this.\n",
              routed.channel_tracks);
  return 0;
}

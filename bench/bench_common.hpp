#pragma once
// Shared helpers for the reproduction benches: every bench binary prints
// the rows/series of one table or figure from the paper (DESIGN.md maps
// experiment ids to binaries).
//
// Each bench defines its body with TAF_EXPERIMENT(name). Compiled on its
// own, the TU gets an ordinary main(); compiled into the bench_all driver
// (-DTAF_BENCH_ALL) the body is registered instead, so one process can
// regenerate every table/figure while sharing flow artifacts through the
// process-wide runner::FlowCache (thread-safe, unlike the per-binary
// static caches these helpers used to keep).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "runner/flow_cache.hpp"
#include "runner/metrics.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace taf::bench {

/// Benchmark scale used by the routed experiments (DESIGN.md section 6).
inline constexpr double kSuiteScale = 1.0 / 16.0;

inline const arch::ArchParams& bench_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

inline const tech::Technology& bench_tech() {
  static const tech::Technology t = tech::ptm22();
  return t;
}

inline const coffe::Characterizer& characterizer() {
  return runner::FlowCache::global().characterizer(bench_tech(), bench_arch());
}

/// Characterized device cache (sizing + sweep is deterministic). Corners
/// are matched at millidegree granularity, never by raw double equality.
inline const coffe::DeviceModel& device_at(double t_opt_c) {
  return runner::FlowCache::global().device(bench_tech(), bench_arch(), t_opt_c);
}

/// Benchmark spec lookup in the VTR suite; aborts on unknown names.
inline netlist::BenchmarkSpec suite_spec(const std::string& name) {
  for (const auto& spec : netlist::vtr_suite()) {
    if (spec.name == name) return spec;
  }
  std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
  std::abort();
}

/// Implemented (packed/placed/routed) benchmark, shared process-wide.
inline const core::Implementation& implementation_of(const std::string& name,
                                                     double scale = kSuiteScale) {
  return runner::FlowCache::global().implementation(suite_spec(name), bench_arch(),
                                                    scale);
}

// ---------------------------------------------------------------------------
// Shared thread pool. Standalone benches and bench_all fan guardband
// sweeps out over it; size it with set_pool_threads() before first use
// (bench_all -j) or the TAF_BENCH_THREADS environment variable.

inline int& pool_threads_setting() {
  static int n = 0;  // 0 = auto
  return n;
}

inline void set_pool_threads(int n) { pool_threads_setting() = n; }

inline runner::ThreadPool& pool() {
  static runner::ThreadPool p([] {
    if (pool_threads_setting() > 0) return pool_threads_setting();
    return util::env_positive_int("TAF_BENCH_THREADS",
                                  runner::ThreadPool::hardware_default());
  }());
  return p;
}

/// Per-cell sweep metrics collected process-wide. Sweep cells execute on
/// pool threads, so their SPICE/flow counters never appear in a scope
/// opened on the driver thread; run_sweep() copies each cell's
/// TaskMetrics here instead, and bench_all folds them into the report.
inline std::mutex& sweep_metrics_mutex() {
  static std::mutex m;
  return m;
}

inline std::vector<runner::TaskMetrics>& collected_sweep_metrics() {
  static std::vector<runner::TaskMetrics> metrics;
  return metrics;
}

/// Guardband sweep over the shared cache/pool. Results are indexed like
/// `points` — identical to running the cells serially, whatever -j is.
inline std::vector<runner::SweepCellResult> run_sweep(
    const std::vector<runner::SweepPoint>& points) {
  auto results =
      runner::Sweep(runner::FlowCache::global(), pool(), bench_tech()).run(points);
  {
    const std::lock_guard<std::mutex> lock(sweep_metrics_mutex());
    for (const auto& cell : results) collected_sweep_metrics().push_back(cell.metrics);
  }
  return results;
}

/// Convenience: one sweep point per suite benchmark at the given grade
/// and ambient (the fig. 6/7/8 row pattern).
inline std::vector<runner::SweepPoint> suite_points(
    double t_opt_c, const core::GuardbandOptions& opt) {
  std::vector<runner::SweepPoint> points;
  for (const auto& spec : netlist::vtr_suite()) {
    runner::SweepPoint p;
    p.spec = spec;
    p.scale = kSuiteScale;
    p.arch = bench_arch();
    p.t_opt_c = t_opt_c;
    p.guardband = opt;
    points.push_back(std::move(p));
  }
  return points;
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("== %s ==\n", experiment);
  std::printf("paper: %s\n\n", paper_claim);
}

// ---------------------------------------------------------------------------
// Experiment registry (bench_all).

using ExperimentFn = int (*)();

struct Experiment {
  std::string name;
  ExperimentFn fn = nullptr;
};

inline std::vector<Experiment>& experiment_registry() {
  static std::vector<Experiment> experiments;
  return experiments;
}

inline int register_experiment(const char* name, ExperimentFn fn) {
  experiment_registry().push_back({name, fn});
  return static_cast<int>(experiment_registry().size());
}

}  // namespace taf::bench

#ifdef TAF_BENCH_ALL
#define TAF_BENCH_STANDALONE_MAIN(name)
#else
#define TAF_BENCH_STANDALONE_MAIN(name) \
  int main() { return taf_experiment_##name(); }
#endif

/// Defines one reproduction experiment. The body returns an exit code.
#define TAF_EXPERIMENT(name)                                          \
  static int taf_experiment_##name();                                 \
  [[maybe_unused]] static const int taf_experiment_reg_##name =       \
      taf::bench::register_experiment(#name, &taf_experiment_##name); \
  TAF_BENCH_STANDALONE_MAIN(name)                                     \
  static int taf_experiment_##name()

#pragma once
// Shared helpers for the reproduction benches: every bench binary prints
// the rows/series of one table or figure from the paper (DESIGN.md maps
// experiment ids to binaries).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "util/table.hpp"

namespace taf::bench {

/// Benchmark scale used by the routed experiments (DESIGN.md section 6).
inline constexpr double kSuiteScale = 1.0 / 16.0;

inline const arch::ArchParams& bench_arch() {
  static const arch::ArchParams a = arch::scaled_arch();
  return a;
}

inline const coffe::Characterizer& characterizer() {
  static const coffe::Characterizer ch(tech::ptm22(), bench_arch());
  return ch;
}

/// Characterized device cache (sizing + sweep is deterministic). Entries
/// are heap-pinned so returned references survive later insertions.
inline const coffe::DeviceModel& device_at(double t_opt_c) {
  static std::vector<std::unique_ptr<coffe::DeviceModel>> cache;
  for (const auto& d : cache) {
    if (d->t_opt_c == t_opt_c) return *d;
  }
  cache.push_back(
      std::make_unique<coffe::DeviceModel>(characterizer().characterize(t_opt_c)));
  return *cache.back();
}

/// Implemented (packed/placed/routed) benchmark cache keyed by name.
inline const core::Implementation& implementation_of(const std::string& name,
                                                     double scale = kSuiteScale) {
  struct Entry {
    std::string key;
    std::unique_ptr<core::Implementation> impl;
  };
  static std::vector<Entry> cache;
  const std::string key = name + "@" + std::to_string(scale);
  for (const auto& e : cache) {
    if (e.key == key) return *e.impl;
  }
  for (const auto& spec : netlist::vtr_suite()) {
    if (spec.name != name) continue;
    cache.push_back({key, core::implement(netlist::scaled(spec, scale), bench_arch())});
    return *cache.back().impl;
  }
  std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
  std::abort();
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("== %s ==\n", experiment);
  std::printf("paper: %s\n\n", paper_claim);
}

}  // namespace taf::bench

// Fig. 1: delay increase vs. temperature for the representative soft
// critical path (CP), BRAM, and DSP of the 25C device.

#include "bench_common.hpp"

TAF_EXPERIMENT(fig1_delay_vs_temp) {
  using namespace taf;
  using util::Table;
  bench::print_header("Fig. 1 — impact of temperature on resource delay",
                      "at 100C: CP up to ~47%, DSP up to ~84% over the 0C delay; "
                      "LUT rises faster than SB (69% vs 39%)");

  const auto& dev = bench::device_at(25.0);
  const double cp0 = dev.rep_cp_delay(units::Celsius(0.0)).value();
  const double bram0 = dev.delay(coffe::ResourceKind::Bram, units::Celsius(0.0)).value();
  const double dsp0 = dev.delay(coffe::ResourceKind::Dsp, units::Celsius(0.0)).value();
  const double lut0 = dev.delay(coffe::ResourceKind::Lut, units::Celsius(0.0)).value();
  const double sb0 = dev.delay(coffe::ResourceKind::SbMux, units::Celsius(0.0)).value();

  Table t({"T (C)", "CP increase", "BRAM increase", "DSP increase", "LUT increase",
           "SBmux increase"});
  for (int temp = 0; temp <= 100; temp += 10) {
    t.add_row({std::to_string(temp),
               Table::pct(dev.rep_cp_delay(units::Celsius(temp)).value() / cp0 - 1.0),
               Table::pct(dev.delay(coffe::ResourceKind::Bram, units::Celsius(temp)).value() / bram0 - 1.0),
               Table::pct(dev.delay(coffe::ResourceKind::Dsp, units::Celsius(temp)).value() / dsp0 - 1.0),
               Table::pct(dev.delay(coffe::ResourceKind::Lut, units::Celsius(temp)).value() / lut0 - 1.0),
               Table::pct(dev.delay(coffe::ResourceKind::SbMux, units::Celsius(temp)).value() / sb0 - 1.0)});
  }
  t.print();
  return 0;
}

// Validation: the DSP characterized through the full liberty flow
// (SPICE-characterized std-cell libraries per temperature + gate-level
// STA over the synthesized MAC path — the paper's Fig. 5b pipeline)
// against the Table II DSP fit used by the main flow.

#include "bench_common.hpp"
#include "coffe/stdcell.hpp"
#include "util/stats.hpp"

TAF_EXPERIMENT(validation_dsp_liberty) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Validation — DSP via per-temperature liberty libraries",
      "SiliconSmart-style flow: characterize cells at each T, sweep the "
      "libraries over the synthesized MAC; shape must match Table II's "
      "547 + 4.42 T (+81% over 0..100C)");

  const auto tech = tech::ptm22();
  const auto path = coffe::stdcell::synthesize_mac(tech, units::Celsius(25.0));

  std::vector<double> temps, delays;
  Table t({"T (C)", "liberty STA (ps)", "normalized", "Table II fit (normalized)"});
  const auto& dsp_fit = bench::device_at(25.0).at(coffe::ResourceKind::Dsp).delay_ps;
  double base = 0.0;
  for (double temp = 0.0; temp <= 100.0; temp += 10.0) {
    const auto lib = coffe::stdcell::characterize_library(tech, units::Celsius(temp));
    const double d = coffe::stdcell::sta_path_delay_ps(path, lib);
    if (temp == 0.0) base = d;
    temps.push_back(temp);
    delays.push_back(d);
    t.add_row({Table::num(temp, 0), Table::num(d, 1), Table::num(d / base, 3),
               Table::num(dsp_fit(temp) / dsp_fit(0.0), 3)});
  }
  t.print();

  const auto fit = util::fit_linear(temps, delays);
  std::printf("\nliberty-flow fit: %.1f + %.3f T ps (r^2 %.4f); "
              "0->100C increase %.1f%% (Table II row implies %.1f%%)\n",
              fit.intercept, fit.slope, fit.r2, (delays.back() / base - 1.0) * 100.0,
              (dsp_fit(100.0) / dsp_fit(0.0) - 1.0) * 100.0);
  return 0;
}

// Ablation: Algorithm 1 convergence — iterations and temperature rise as
// a function of the delta-T threshold (the paper reports convergence in
// fewer than ten iterations with ~2C of self-heating).

#include "bench_common.hpp"

int main() {
  using namespace taf;
  using util::Table;
  bench::print_header("Ablation — Algorithm 1 convergence vs delta-T threshold",
                      "converges in < 10 iterations; ~2C rise at these activities");

  const auto& dev = taf::bench::device_at(25.0);
  Table t({"Benchmark", "deltaT (C)", "iterations", "peak rise (C)", "fmax (MHz)"});
  for (const char* name : {"sha", "stereovision0", "LU8PEEng"}) {
    const auto& impl = bench::implementation_of(name);
    for (double dt : {2.0, 1.0, 0.5, 0.1, 0.02}) {
      core::GuardbandOptions opt;
      opt.t_amb_c = 25.0;
      opt.delta_t_c = dt;
      opt.max_iterations = 15;
      const auto r = core::guardband(impl, dev, opt);
      t.add_row({name, Table::num(dt, 2), std::to_string(r.iterations),
                 Table::num(r.peak_temp_c - 25.0, 3), Table::num(r.fmax_mhz, 1)});
    }
  }
  t.print();
  return 0;
}

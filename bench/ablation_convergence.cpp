// Ablation: Algorithm 1 convergence — iterations and temperature rise as
// a function of the delta-T threshold (the paper reports convergence in
// fewer than ten iterations with ~2C of self-heating).

#include "bench_common.hpp"

TAF_EXPERIMENT(ablation_convergence) {
  using namespace taf;
  using util::Table;
  bench::print_header("Ablation — Algorithm 1 convergence vs delta-T threshold",
                      "converges in < 10 iterations; ~2C rise at these activities");

  const char* names[] = {"sha", "stereovision0", "LU8PEEng"};
  const double thresholds[] = {2.0, 1.0, 0.5, 0.1, 0.02};

  std::vector<runner::SweepPoint> points;
  for (const char* name : names) {
    for (double dt : thresholds) {
      runner::SweepPoint p;
      p.spec = bench::suite_spec(name);
      p.scale = bench::kSuiteScale;
      p.arch = bench::bench_arch();
      p.t_opt_c = 25.0;
      p.guardband.t_amb_c = units::Celsius(25.0);
      p.guardband.delta_t_c = units::Kelvin(dt);
      p.guardband.max_iterations = 15;
      points.push_back(std::move(p));
    }
  }
  const auto cells = bench::run_sweep(points);

  Table t({"Benchmark", "deltaT (C)", "iterations", "peak rise (C)", "fmax (MHz)"});
  std::size_t cell = 0;
  for (const char* name : names) {
    for (double dt : thresholds) {
      const auto& r = cells[cell++].guardband;
      t.add_row({name, Table::num(dt, 2), std::to_string(r.iterations),
                 Table::num(r.peak_temp_c.value() - 25.0, 3), Table::num(r.fmax_mhz.value(), 1)});
    }
  }
  t.print();
  return 0;
}

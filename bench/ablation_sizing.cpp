// Ablation: COFFE sizing objective — area-weight sweep showing the
// area/delay trade the transistor-sizing optimizer navigates, and the
// evaluation-count cost of the coordinate descent.

#include "bench_common.hpp"
#include "coffe/path_eval.hpp"
#include "coffe/sizing.hpp"

TAF_EXPERIMENT(ablation_sizing) {
  using namespace taf;
  using util::Table;
  bench::print_header("Ablation — transistor sizing objective sweep",
                      "COFFE minimizes area*delay; heavier area weights shrink the "
                      "fabric at a delay cost");

  const auto tech = tech::ptm22();
  Table t({"Resource", "area weight", "delay (ps)", "area (um2)", "evals"});
  for (coffe::ResourceKind k :
       {coffe::ResourceKind::SbMux, coffe::ResourceKind::Lut, coffe::ResourceKind::Dsp}) {
    for (double w : {0.25, 1.0, 3.0}) {
      coffe::SizingOptions opt;
      opt.t_opt_c = units::Celsius(25.0);
      opt.area_weight = w;
      const auto r = coffe::size_path(coffe::spec_for(k, bench::bench_arch()), tech, opt);
      t.add_row({coffe::resource_name(k), Table::num(w, 2), Table::num(r.delay_ps, 1),
                 Table::num(r.area_um2, 1), std::to_string(r.evaluations)});
    }
  }
  t.print();
  return 0;
}

// Dynamic-workload throttling experiment (DESIGN.md section 13): replay
// duty-cycled activity traces through the transient thermal engine and
// compare the time-resolved safe frequency against the static corners.
// A static guardband prices the steady-state worst case of the activity
// model; a workload that duty-cycles faster than the package's thermal
// time constant never integrates up to that excursion, and the dynamic
// replay recovers the difference — while a slow duty cycle converges to
// the static answer (the long-dwell differential contract).
//
// The "smoke" scenario doubles as the CI determinism probe: the
// transient-smoke job runs this binary twice and byte-compares stdout,
// so nothing below may print wall-clock time or any other run-varying
// value.

#include "bench_common.hpp"
#include "core/dynamic.hpp"

TAF_EXPERIMENT(dynamic_throttling) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Dynamic throttling — trace-driven transient guardbanding vs static corners",
      "a workload duty-cycling faster than the thermal time constant never "
      "reaches the steady-state excursion a static guardband prices, so the "
      "transient replay sustains a higher safe frequency");

  const char* design = "sha";
  const double ambient_c = 45.0;
  const auto& dev = bench::device_at(25.0);
  const auto& impl = bench::implementation_of(design);

  // The 1/16-scale suite dissipates a fraction of a full-size design and
  // warms only ~0.1 C; amplify through the power_scale metamorphic seam
  // (identically on the static and dynamic paths, so the comparison
  // stays fair) to a full-device-representative excursion.
  const double power_scale = 100.0;

  // Static reference: the Algorithm 1 fixed point at full utilization.
  core::GuardbandOptions gopt;
  gopt.t_amb_c = units::Celsius{ambient_c};
  gopt.power_scale = power_scale;
  const core::GuardbandResult steady = core::guardband(impl, dev, gopt);

  core::DynamicGuardbandOptions dopt;
  dopt.t_amb_c = units::Celsius{ambient_c};
  dopt.power_scale = power_scale;
  dopt.samples_per_segment = 2;
  // Self-calibrating throttle ceiling at 60% of the steady excursion
  // over ambient: heavy duty cycles cross it, light ones stay under it,
  // whatever the absolute temperatures of the scaled suite are.
  const double excursion_c = steady.peak_temp_c.value() - ambient_c;
  dopt.throttle_c = units::Celsius{ambient_c + 0.6 * excursion_c};
  const core::DynamicGuardband dyn(impl, dev, dopt);
  const double tau_s = dyn.grid().tile_time_constant().value();

  std::printf("design %s, ambient %.0f C, power x%.0f, tile time constant %.3e s\n",
              design, ambient_c, power_scale, tau_s);
  std::printf("static corners: worst-case %.1f MHz, thermal-aware %.1f MHz, "
              "steady peak %.3f C\n",
              steady.baseline_fmax_mhz.value(), steady.fmax_mhz.value(),
              steady.peak_temp_c.value());
  std::printf("throttle ceiling %.3f C (ambient + 60%% of the steady excursion)\n\n",
              dyn.options().throttle_c.value());

  struct Scenario {
    const char* name;
    double period_tau;  // duty-cycle period as a multiple of tau
    double duty;
    int cycles;
  };
  const Scenario scenarios[] = {
      {"smoke", 1.0, 0.5, 2},     // the CI determinism scenario
      {"fast", 0.25, 0.5, 8},     // period << tau: near-averaged power
      {"resonant", 1.0, 0.5, 4},  // period ~ tau: largest swing per cycle
      {"slow", 4.0, 0.5, 3},      // period >> tau: approaches steady per phase
      {"light", 1.0, 0.25, 4},
      {"heavy", 1.0, 0.75, 4},
  };

  Table t({"Scenario", "period/tau", "duty", "min MHz", "vs static", "peak C",
           "throttled s", "BE steps"});
  for (const Scenario& s : scenarios) {
    const core::ActivityTrace trace = core::ActivityTrace::duty_cycle(
        s.cycles, units::Seconds{s.period_tau * tau_s}, s.duty, 1.0, 0.1);
    const core::DynamicResult r = dyn.replay(trace);
    const double vs_static = r.min_fmax_mhz.value() / steady.fmax_mhz.value() - 1.0;
    t.add_row({s.name, Table::num(s.period_tau, 2), Table::num(s.duty, 2),
               Table::num(r.min_fmax_mhz.value(), 1), Table::pct(vs_static),
               Table::num(r.peak_temp_c.value(), 3),
               Table::num(r.throttled_s.value(), 4),
               std::to_string(r.stats.steps)});
  }

  // Long full-power dwell: the transient answer must land on the static
  // one (the differential contract tests/test_transient.cpp pins
  // tile-by-tile; here it shows up as matching peak and fmax).
  core::ActivityTrace dwell;
  dwell.blocks = 1;
  dwell.segments.push_back({units::Seconds{20.0 * tau_s}, {1.0}});
  const core::DynamicResult r = dyn.replay(dwell);
  const double vs_static = r.min_fmax_mhz.value() / steady.fmax_mhz.value() - 1.0;
  t.add_row({"dwell 20tau", "", Table::num(1.0, 2),
             Table::num(r.min_fmax_mhz.value(), 1), Table::pct(vs_static),
             Table::num(r.peak_temp_c.value(), 3),
             Table::num(r.throttled_s.value(), 4), std::to_string(r.stats.steps)});
  t.print();

  std::printf("\nFast duty cycles hold the fabric near the time-averaged power and\n"
              "sustain the largest frequency recovery over the static guardband;\n"
              "the 20-tau dwell converges onto the static thermal-aware corner.\n");
  return 0;
}

// Monte-Carlo fleet simulator for the guardband service (DESIGN.md
// section 12; EXPERIMENTS.md "fleet simulator").
//
// Simulates a fleet of deployed FPGA instances, each periodically asking
// the GuardbandServer "what fmax is safe for my grade, ambient, and
// activity right now": a seeded RNG samples (design, grade, ambient,
// activity) tuples from a scenario's distributions, submits them in
// client batches, and reports throughput plus per-query latency
// percentiles in the runner's RunReport JSON/CSV schema. Ambients are
// sampled on a coarse scenario-specific lattice with sub-millidegree
// jitter, so the server's canonicalization (millidegree quantization)
// collapses the fleet's millions of queries onto a bounded tuple set —
// the deployment assumption the response cache is built around.
//
// Modes:
//   * in-process (default): drives GuardbandServer::handle_batch
//     directly — the 10^6-query local configuration;
//   * wire (--connect-unix PATH | --connect-tcp PORT): speaks the framed
//     protocol to an external guardband_serverd, pipelining one client
//     batch at a time (the CI smoke job's configuration).
//
// --verify-serial replays the full request list, one request at a time,
// against a fresh single-threaded server and byte-compares every
// response envelope — the fleet-scale determinism check (concurrent +
// batched + cached responses must equal the cold serial replay).
//
// Deliberately NOT a TAF_EXPERIMENT: its output includes wall-clock
// latencies, which would break bench_all's byte-identical-stdout
// invariant (EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "runner/metrics.hpp"
#include "service/guardband_server.hpp"
#include "service/protocol.hpp"
#include "service/socket_transport.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using taf::service::GuardbandServer;
using taf::service::ServerConfig;
namespace protocol = taf::service::protocol;

struct Scenario {
  const char* name;
  std::vector<const char*> designs;
  std::vector<double> grades_c;
  std::vector<double> ambients_c;
  std::vector<double> activities;
};

// First workloads (ISSUE 7): the online-DVFS comparison's benchmark set
// and the datacenter-accelerator example's hot-ambient deployment.
// "smoke" bounds the tuple set for the CI smoke job.
Scenario scenario_by_name(const std::string& name) {
  if (name == "online_dvfs") {
    return {"online_dvfs",
            {"sha", "or1200", "blob_merge", "stereovision0", "LU8PEEng", "mcml"},
            {25.0},
            {35.0, 45.0, 55.0, 65.0},
            {0.5, 0.75, 1.0}};
  }
  if (name == "datacenter") {
    return {"datacenter",
            {"stereovision2"},
            {25.0, 70.0},
            {60.0, 65.0, 70.0, 75.0},
            {0.25, 0.5, 0.75, 1.0}};
  }
  if (name == "smoke") {
    return {"smoke",
            {"mkPktMerge", "diffeq2"},
            {25.0},
            {35.0, 55.0},
            {0.5, 1.0}};
  }
  if (name == "mixed") {
    Scenario s = scenario_by_name("online_dvfs");
    const Scenario d = scenario_by_name("datacenter");
    s.name = "mixed";
    s.designs.insert(s.designs.end(), d.designs.begin(), d.designs.end());
    s.grades_c = {25.0, 70.0};
    s.ambients_c.insert(s.ambients_c.end(), d.ambients_c.begin(), d.ambients_c.end());
    return s;
  }
  std::fprintf(stderr, "unknown scenario '%s' (online_dvfs|datacenter|smoke|mixed)\n",
               name.c_str());
  std::exit(2);
}

/// Sample one fleet query. The lattice value gets +-0.4 millidegree of
/// jitter: distinct request bytes, identical canonical tuple.
protocol::GuardbandRequest sample_request(const Scenario& s, taf::util::Rng& rng,
                                          std::uint64_t id) {
  protocol::GuardbandRequest req;
  req.request_id = id;
  req.design = s.designs[rng.next_below(static_cast<std::uint32_t>(s.designs.size()))];
  req.grade_t_opt_c = s.grades_c[rng.next_below(static_cast<std::uint32_t>(s.grades_c.size()))];
  req.ambient_c =
      s.ambients_c[rng.next_below(static_cast<std::uint32_t>(s.ambients_c.size()))] +
      rng.uniform(-4e-4, 4e-4);
  req.activity_scale =
      s.activities[rng.next_below(static_cast<std::uint32_t>(s.activities.size()))];
  return req;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--queries N] [--seed S] [--scenario NAME] [--threads N]\n"
      "          [--batch N] [--max-batch N] [--scale S] [--artifact-dir D]\n"
      "          [--connect-unix PATH | --connect-tcp PORT]\n"
      "          [--verify-serial] [--json PATH] [--csv PATH]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t queries = 1000000;
  std::uint64_t seed = 1;
  std::string scenario_name = "online_dvfs";
  std::string connect_unix, connect_tcp, json_path, csv_path;
  bool verify_serial = false;
  ServerConfig config;
  std::size_t client_batch = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--queries") queries = static_cast<std::uint64_t>(std::atoll(value()));
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(value()));
    else if (arg == "--scenario") scenario_name = value();
    else if (arg == "--threads")
      config.threads = static_cast<int>(std::strtol(value(), nullptr, 10));
    else if (arg == "--batch") client_batch = static_cast<std::size_t>(std::atoll(value()));
    else if (arg == "--max-batch") config.max_batch = static_cast<std::size_t>(std::atoll(value()));
    else if (arg == "--scale") config.scale = std::strtod(value(), nullptr);
    else if (arg == "--artifact-dir") config.artifact_dir = value();
    else if (arg == "--connect-unix") connect_unix = value();
    else if (arg == "--connect-tcp") connect_tcp = value();
    else if (arg == "--verify-serial") verify_serial = true;
    else if (arg == "--json") json_path = value();
    else if (arg == "--csv") csv_path = value();
    else return usage(argv[0]);
  }
  if (client_batch == 0) client_batch = 1;
  const Scenario scenario = scenario_by_name(scenario_name);
  const bool wire = !connect_unix.empty() || !connect_tcp.empty();

  // Pre-sample the whole request stream so the in-process run, the wire
  // run, and the serial replay see the exact same queries.
  taf::util::Rng rng(seed);
  std::vector<protocol::GuardbandRequest> stream;
  stream.reserve(static_cast<std::size_t>(queries));
  for (std::uint64_t q = 0; q < queries; ++q) {
    stream.push_back(sample_request(scenario, rng, q + 1));
  }

  std::printf("fleet_simulator: scenario=%s queries=%llu seed=%llu %s batch=%zu\n",
              scenario.name, static_cast<unsigned long long>(queries),
              static_cast<unsigned long long>(seed),
              wire ? "mode=wire" : "mode=in-process", client_batch);
  std::fflush(stdout);

  std::unique_ptr<GuardbandServer> server;
  std::unique_ptr<taf::service::FrameClient> client;
  if (wire) {
    client = std::make_unique<taf::service::FrameClient>(
        connect_unix.empty()
            ? taf::service::FrameClient::connect_tcp(
                  static_cast<int>(std::strtol(connect_tcp.c_str(), nullptr, 10)))
            : taf::service::FrameClient::connect_unix(connect_unix));
  } else {
    server = std::make_unique<GuardbandServer>(config);
  }

  // Drive the stream in client batches, recording response envelopes
  // (for verification) and per-query latencies (batch wall time, since
  // the queries of one pipelined batch complete together).
  std::vector<std::string> envelopes;
  envelopes.reserve(stream.size());
  std::vector<double> latencies_s(stream.size(), 0.0);
  taf::util::Stopwatch total;
  taf::util::Stopwatch batch_watch;
  for (std::size_t begin = 0; begin < stream.size(); begin += client_batch) {
    const std::size_t end = std::min(stream.size(), begin + client_batch);
    batch_watch.restart();
    if (wire) {
      for (std::size_t i = begin; i < end; ++i) {
        client->send_envelope(protocol::encode_request(stream[i]));
      }
      for (std::size_t i = begin; i < end; ++i) {
        envelopes.push_back(client->read_envelope());
      }
    } else {
      const std::vector<protocol::GuardbandRequest> batch(
          stream.begin() + static_cast<std::ptrdiff_t>(begin),
          stream.begin() + static_cast<std::ptrdiff_t>(end));
      for (const protocol::GuardbandResponse& resp : server->handle_batch(batch)) {
        envelopes.push_back(protocol::encode_response(resp));
      }
    }
    const double batch_s = batch_watch.lap();
    for (std::size_t i = begin; i < end; ++i) latencies_s[i] = batch_s;
  }
  const double wall_s = total.seconds();

  for (const std::string& env : envelopes) {
    if (protocol::is_error_envelope(env)) {
      const protocol::ErrorResponse err = protocol::decode_error(env);
      std::fprintf(stderr, "FAIL: request %llu got error %u: %s\n",
                   static_cast<unsigned long long>(err.request_id), err.code,
                   err.message.c_str());
      return 1;
    }
  }

  taf::runner::RunReport report;
  report.threads = config.threads;
  report.wall_s = wall_s;
  std::vector<double> sorted = latencies_s;
  std::sort(sorted.begin(), sorted.end());
  const double qps = wall_s > 0.0 ? static_cast<double>(queries) / wall_s : 0.0;
  report.scalars.emplace_back("queries", static_cast<double>(queries));
  report.scalars.emplace_back("throughput_qps", qps);
  report.scalars.emplace_back("latency_p50_ms", percentile(sorted, 0.50) * 1e3);
  report.scalars.emplace_back("latency_p90_ms", percentile(sorted, 0.90) * 1e3);
  report.scalars.emplace_back("latency_p99_ms", percentile(sorted, 0.99) * 1e3);
  report.scalars.emplace_back("latency_max_ms", sorted.empty() ? 0.0 : sorted.back() * 1e3);
  if (server != nullptr) {
    const GuardbandServer::Stats s = server->stats();
    report.scalars.emplace_back("unique_tuples", static_cast<double>(s.tuples_evaluated));
    report.scalars.emplace_back("tuple_hits", static_cast<double>(s.tuple_hits));
    report.scalars.emplace_back("batched_corners", static_cast<double>(s.batched_corners));
    report.tasks = server->drain_metrics();
    report.cache = server->flow_cache().stats();
  }
  std::printf("queries=%llu wall=%.3fs throughput=%.0f qps\n",
              static_cast<unsigned long long>(queries), wall_s, qps);
  std::printf("latency p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms\n",
              percentile(sorted, 0.50) * 1e3, percentile(sorted, 0.90) * 1e3,
              percentile(sorted, 0.99) * 1e3, sorted.empty() ? 0.0 : sorted.back() * 1e3);
  if (!json_path.empty()) std::ofstream(json_path) << report.to_json();
  if (!csv_path.empty()) std::ofstream(csv_path) << report.to_csv();

  if (verify_serial) {
    // Fleet-scale determinism: a fresh single-threaded server, replaying
    // the stream one request at a time, must produce byte-identical
    // response envelopes — whatever batching, pool size, caching, or
    // transport served the live run.
    std::printf("verify-serial: replaying %llu queries...\n",
                static_cast<unsigned long long>(queries));
    std::fflush(stdout);
    ServerConfig serial_config = config;
    serial_config.threads = 1;
    GuardbandServer serial(serial_config);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const std::string expect = protocol::encode_response(serial.handle(stream[i]));
      if (expect != envelopes[i]) {
        std::fprintf(stderr, "FAIL: response %zu differs from serial replay\n", i);
        return 1;
      }
    }
    std::printf("verify-serial: all %llu responses byte-identical\n",
                static_cast<unsigned long long>(queries));
  }
  return 0;
}

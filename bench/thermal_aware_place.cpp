// Thermal-aware placement (DESIGN.md section 15): close the place ->
// thermal feedback loop with exact adjoint gradients — price every tile
// with d(peak T)/d(tile power) from one extra CG solve, re-anneal the
// placement under the composed wirelength + thermal cost model, and
// report what that buys ON TOP of Algorithm 1 guardbanding: the
// converged-peak reduction and the guardbanded-fmax gain over the
// thermally blind placer, per benchmark.

#include "bench_common.hpp"
#include "power/power.hpp"
#include "thermal/thermal_grid.hpp"

namespace {

// Converged peak temperature at a FIXED clock: the guardband result's
// peak is taken at each design's own fmax, so a faster placement runs
// hotter purely because it clocks higher. Evaluating both placements at
// the same frequency isolates what the placement itself did to the
// thermal profile.
double iso_peak_c(const taf::core::Implementation& impl,
                  const taf::coffe::DeviceModel& dev, taf::units::Megahertz f,
                  taf::units::Celsius amb) {
  using namespace taf;
  thermal::ThermalConfig tcfg;
  tcfg.ambient_c = amb;
  const thermal::ThermalGrid tg(impl.grid, tcfg);
  std::vector<double> temps(static_cast<std::size_t>(impl.grid.num_tiles()),
                            amb.value());
  for (int it = 0; it < 4; ++it) {
    const power::PowerBreakdown p = power::compute_power(
        dev, impl.nl, impl.packed, impl.placement, impl.rr, impl.routes,
        impl.activity, f, temps, impl.grid);
    temps = tg.solve(p.tile_w);
  }
  return thermal::ThermalGrid::peak(temps).value();
}

}  // namespace

TAF_EXPERIMENT(thermal_aware_place) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Thermal-aware placement — adjoint-gradient feedback on top of Algorithm 1",
      "pricing tiles with d(peak T)/d(P) from one adjoint CG solve and "
      "re-annealing the placement spreads the hot blocks, lowering the "
      "converged peak and buying guardbanded fmax beyond the thermally "
      "blind flow");

  const auto& dev = bench::device_at(25.0);
  core::GuardbandOptions gopt;
  gopt.t_amb_c = units::Celsius(45.0);

  Table t({"Benchmark", "peak C (blind)", "peak C (aware)", "dPeak K",
           "fmax MHz (blind)", "fmax MHz (aware)", "extra gain"});
  std::vector<double> gains;
  std::vector<double> dpeaks;
  for (const auto& spec : netlist::vtr_suite()) {
    const core::Implementation& blind = bench::implementation_of(spec.name);

    core::ImplementOptions iopt;
    iopt.thermal_place.enabled = true;
    iopt.thermal_place.device = &dev;
    const core::Implementation& aware = runner::FlowCache::global().implementation(
        spec, bench::bench_arch(), bench::kSuiteScale, iopt);

    const core::GuardbandResult rb = core::guardband(blind, dev, gopt);
    const core::GuardbandResult ra = core::guardband(aware, dev, gopt);

    // Iso-frequency peaks: both placements at the blind design's
    // guardbanded clock, so dPeak measures the placement, not the speed.
    const double pb = iso_peak_c(blind, dev, rb.fmax_mhz, gopt.t_amb_c);
    const double pa = iso_peak_c(aware, dev, rb.fmax_mhz, gopt.t_amb_c);
    const double dpeak = pb - pa;
    const double gain = rb.fmax_mhz.value() > 0.0
                            ? ra.fmax_mhz / rb.fmax_mhz - 1.0
                            : 0.0;
    dpeaks.push_back(dpeak);
    gains.push_back(gain);
    t.add_row({spec.name, Table::num(pb, 2), Table::num(pa, 2),
               Table::num(dpeak, 3),
               Table::num(rb.fmax_mhz.value(), 1), Table::num(ra.fmax_mhz.value(), 1),
               Table::pct(gain)});
  }
  t.add_row({"average", "", "", Table::num(util::mean_of(dpeaks), 3), "", "",
             Table::pct(util::mean_of(gains))});
  t.print();
  return 0;
}

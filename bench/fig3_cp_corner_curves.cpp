// Fig. 3: representative-CP delay vs. temperature for the D0, D25, D100
// devices — the corner crossover curves.

#include <algorithm>

#include "bench_common.hpp"

TAF_EXPERIMENT(fig3_cp_corner_curves) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Fig. 3 — CP delay of D0/D25/D100 across the temperature range",
      "D0 fastest at 0C (paper: 6.3% over D100), D100 fastest at 100C (9.0%), "
      "D25 optimal for mid temperatures");

  const coffe::DeviceModel* devs[3] = {&bench::device_at(0.0), &bench::device_at(25.0),
                                       &bench::device_at(100.0)};

  Table t({"T (C)", "D0 (ps)", "D25 (ps)", "D100 (ps)", "best"});
  for (int temp = 0; temp <= 100; temp += 10) {
    double v[3];
    for (int d = 0; d < 3; ++d) v[d] = devs[d]->rep_cp_delay(units::Celsius(temp)).value();
    const int best = static_cast<int>(std::min_element(v, v + 3) - v);
    static const char* names[3] = {"D0", "D25", "D100"};
    t.add_row({std::to_string(temp), Table::num(v[0], 1), Table::num(v[1], 1),
               Table::num(v[2], 1), names[best]});
  }
  t.print();

  const double d0_at0 = devs[0]->rep_cp_delay(units::Celsius(0.0)).value();
  const double d100_at0 = devs[2]->rep_cp_delay(units::Celsius(0.0)).value();
  const double d0_at100 = devs[0]->rep_cp_delay(units::Celsius(100.0)).value();
  const double d100_at100 = devs[2]->rep_cp_delay(units::Celsius(100.0)).value();
  std::printf("\nD100/D0 at 0C: %.1f%% slower (paper: 6.3%%); "
              "D0/D100 at 100C: %.1f%% slower (paper: 9.0%%)\n",
              (d100_at0 / d0_at0 - 1.0) * 100.0, (d0_at100 / d100_at100 - 1.0) * 100.0);
  return 0;
}

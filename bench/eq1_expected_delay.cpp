// Eq. (1): expected CP delay of each device grade over uniform field
// temperature ranges, and the grade Eq. (1) selects — the paper's
// argument that no single device is omnipotent.

#include "bench_common.hpp"

TAF_EXPERIMENT(eq1_expected_delay) {
  using namespace taf;
  using util::Table;
  bench::print_header("Eq. (1) — expected delay over field temperature ranges",
                      "the optimal design corner follows the field range; no single "
                      "device dominates everywhere");

  std::vector<coffe::DeviceModel> devices;
  for (double t : {0.0, 25.0, 70.0, 100.0}) devices.push_back(bench::device_at(t));

  Table t({"Field range (C)", "E[d] D0", "E[d] D25", "E[d] D70", "E[d] D100",
           "selected grade"});
  const std::pair<double, double> ranges[] = {{0, 20},  {0, 100}, {20, 65},
                                              {40, 80}, {60, 100}, {80, 100}};
  for (const auto& [lo, hi] : ranges) {
    std::vector<std::string> row;
    row.push_back(Table::num(lo, 0) + ".." + Table::num(hi, 0));
    for (const auto& d : devices) row.push_back(Table::num(d.expected_cp_delay(units::Celsius(lo), units::Celsius(hi)).value(), 1));
    const int sel = core::select_grade(devices, units::Celsius(lo), units::Celsius(hi));
    row.push_back(devices[static_cast<std::size_t>(sel)].name);
    t.add_row(std::move(row));
  }
  t.print();
  return 0;
}

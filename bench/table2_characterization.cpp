// Table II: area, delay(T), dynamic power and leakage(T) of every
// resource of the 25C-optimized device, paper vs. measured.

#include "bench_common.hpp"

TAF_EXPERIMENT(table2_characterization) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Table II — resource characterization of the 25C device",
      "e.g. SBmux: 2.8um^2 | 166+0.67T ps | 5.74uW | 0.28e^{0.014T} uW");

  const auto& ours = bench::device_at(25.0);
  const auto paper = coffe::Characterizer::paper_table2_reference();

  Table t({"Resource", "Area um2 (paper)", "Delay ps (paper)", "Pdyn uW (paper)",
           "Plkg uW (paper)"});
  for (coffe::ResourceKind k : coffe::all_resource_kinds()) {
    const auto& m = ours.at(k);
    const auto& p = paper.at(k);
    char delay[96], lkg[96], area[64], pdyn[64];
    std::snprintf(area, sizeof area, "%.1f (%.1f)", m.area_um2, p.area_um2);
    std::snprintf(delay, sizeof delay, "%.0f + %.2f T (%.0f + %.2f T)",
                  m.delay_ps.intercept, m.delay_ps.slope, p.delay_ps.intercept,
                  p.delay_ps.slope);
    std::snprintf(pdyn, sizeof pdyn, "%.2f (%.2f)", m.pdyn_uw_100mhz, p.pdyn_uw_100mhz);
    std::snprintf(lkg, sizeof lkg, "%.2f e^{%.4f T} (%.2f e^{%.4f T})", m.plkg_uw.scale,
                  m.plkg_uw.rate, p.plkg_uw.scale, p.plkg_uw.rate);
    t.add_row({coffe::resource_name(k), area, delay, pdyn, lkg});
  }
  t.print();
  std::printf(
      "\nDynamic power at 100 MHz, alpha = 1. Values at 25C are calibrated to the\n"
      "paper (DESIGN.md section 5); slopes/rates are produced by the physical\n"
      "models. Delay fit r^2 >= %.3f across resources.\n",
      [&] {
        double worst = 1.0;
        for (coffe::ResourceKind k : coffe::all_resource_kinds())
          worst = std::min(worst, ours.at(k).delay_ps.r2);
        return worst;
      }());
  return 0;
}

// Fig. 2: normalized delay of devices optimized for 0/25/100C, evaluated
// at 0/25/100C, for the soft CP, BRAM and DSP.

#include <algorithm>

#include "bench_common.hpp"

TAF_EXPERIMENT(fig2_corner_matrix) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Fig. 2 — delay of differently optimized fabrics at different temperatures",
      "each chunk normalized to its minimum; BRAM spread up to 1.35x at 0C "
      "(D100 vs D0) and 1.19x at 100C (D0 vs D100); D25 near-optimal in between");

  const coffe::DeviceModel* devs[3] = {&bench::device_at(0.0), &bench::device_at(25.0),
                                       &bench::device_at(100.0)};

  Table t({"T (C)", "Component", "D0", "D25", "D100"});
  for (double temp : {0.0, 25.0, 100.0}) {
    struct Row {
      const char* name;
      double v[3];
    };
    Row rows[3] = {{"CP", {}}, {"BRAM", {}}, {"DSP", {}}};
    for (int d = 0; d < 3; ++d) {
      rows[0].v[d] = devs[d]->rep_cp_delay(units::Celsius(temp)).value();
      rows[1].v[d] = devs[d]->delay(coffe::ResourceKind::Bram, units::Celsius(temp)).value();
      rows[2].v[d] = devs[d]->delay(coffe::ResourceKind::Dsp, units::Celsius(temp)).value();
    }
    for (const Row& r : rows) {
      const double mn = std::min({r.v[0], r.v[1], r.v[2]});
      t.add_row({Table::num(temp, 0), r.name, Table::num(r.v[0] / mn, 3),
                 Table::num(r.v[1] / mn, 3), Table::num(r.v[2] / mn, 3)});
    }
  }
  t.print();
  return 0;
}

// Fig. 6: per-benchmark performance gain of thermal-aware guardbanding
// at ambient 25C over the conventional T_worst = 100C guardband.

#include "bench_common.hpp"

TAF_EXPERIMENT(fig6_guardband_tamb25) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Fig. 6 — thermal-aware guardbanding gain at Tamb = 25C",
      "per-benchmark frequency increase vs. worst-case (100C) guardband; "
      "average ~36.5%, converged after ~2C of self-heating");

  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  const auto cells = bench::run_sweep(bench::suite_points(25.0, opt));

  Table t({"Benchmark", "baseline MHz", "thermal-aware MHz", "gain", "iters",
           "peak T (C)"});
  std::vector<double> gains;
  const auto suite = netlist::vtr_suite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& r = cells[i].guardband;
    gains.push_back(r.gain());
    t.add_row({suite[i].name, Table::num(r.baseline_fmax_mhz.value(), 1),
               Table::num(r.fmax_mhz.value(), 1), Table::pct(r.gain()),
               std::to_string(r.iterations), Table::num(r.peak_temp_c.value(), 2)});
  }
  t.add_row({"average", "", "", Table::pct(util::mean_of(gains)), "", ""});
  t.print();
  return 0;
}

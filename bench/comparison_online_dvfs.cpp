// Related-work comparison (paper Section II): online slack-measurement /
// sensor-based DVFS (Levine'14, Zhao'16) adapts frequency to a measured
// chip temperature but (a) needs a sensor-error margin and (b) assumes a
// single uniform temperature, so it must track the on-chip *peak*. The
// paper's offline thermal-aware guardbanding prices every tile at its own
// converged temperature. This bench quantifies the gap on our flow.

#include "bench_common.hpp"

TAF_EXPERIMENT(comparison_online_dvfs) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Comparison — sensor-based online DVFS vs thermal-aware guardbanding",
      "online schemes need sensor margin and assume uniform temperature "
      "(paper Section II); offline per-tile timing recovers both losses");

  const double sensor_margin_c = 5.0;  // RO-sensor inaccuracy + placement offset
  const char* names[] = {"sha", "or1200", "blob_merge", "stereovision0",
                         "LU8PEEng", "mcml"};
  std::vector<runner::SweepPoint> points;
  for (const char* name : names) {
    runner::SweepPoint p;
    p.spec = bench::suite_spec(name);
    p.scale = bench::kSuiteScale;
    p.arch = bench::bench_arch();
    p.t_opt_c = 25.0;
    p.guardband.t_amb_c = units::Celsius(25.0);
    points.push_back(std::move(p));
  }
  const auto cells = bench::run_sweep(points);

  const auto& dev = bench::device_at(25.0);
  Table t({"Benchmark", "worst-case MHz", "online DVFS MHz", "thermal-aware MHz",
           "DVFS gain", "paper-flow gain"});
  std::vector<double> dvfs_gains, ours_gains;
  for (std::size_t i = 0; i < std::size(names); ++i) {
    const auto& impl = bench::implementation_of(names[i]);
    const auto& r = cells[i].guardband;

    // Online DVFS: clock for a uniform temperature equal to the measured
    // peak plus the sensor margin.
    const double online_t = r.peak_temp_c.value() + sensor_margin_c;
    const double online_fmax = impl.sta->analyze_uniform(dev, units::Celsius(online_t)).fmax_mhz.value();

    const double dvfs_gain = online_fmax / r.baseline_fmax_mhz.value() - 1.0;
    dvfs_gains.push_back(dvfs_gain);
    ours_gains.push_back(r.gain());
    t.add_row({names[i], Table::num(r.baseline_fmax_mhz.value(), 1), Table::num(online_fmax, 1),
               Table::num(r.fmax_mhz.value(), 1), Table::pct(dvfs_gain), Table::pct(r.gain())});
  }
  t.add_row({"average", "", "", "", Table::pct(util::mean_of(dvfs_gains)),
             Table::pct(util::mean_of(ours_gains))});
  t.print();
  std::printf("\nThe thermal-aware flow's edge over online DVFS comes from (a) no\n"
              "sensor margin (%.0f C here) and (b) per-tile instead of peak-uniform\n"
              "timing; both are the distinctions the paper claims in Section II.\n",
              sensor_margin_c);
  return 0;
}

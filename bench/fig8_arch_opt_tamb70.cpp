// Fig. 8: performance improvement of the thermal-aware architecture
// (device optimized for 70C) over the typical 25C device, at ambient
// 70C, both using thermal-aware guardbanding.

#include "bench_common.hpp"

int main() {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Fig. 8 — thermal-aware architecture optimization at Tamb = 70C",
      "70C-optimized device vs typical (25C) device, both guardbanded; "
      "average ~6.7%, variation follows critical-path composition");

  const auto& d25 = bench::device_at(25.0);
  const auto& d70 = bench::device_at(70.0);
  Table t({"Benchmark", "D25 MHz", "D70 MHz", "improvement", "CP BRAM share",
           "CP DSP share"});
  std::vector<double> gains;
  for (const auto& spec : netlist::vtr_suite()) {
    const auto& impl = bench::implementation_of(spec.name);
    core::GuardbandOptions opt;
    opt.t_amb_c = 70.0;
    const auto r25 = core::guardband(impl, d25, opt);
    const auto r70 = core::guardband(impl, d70, opt);
    const double gain = r70.fmax_mhz / r25.fmax_mhz - 1.0;
    gains.push_back(gain);
    t.add_row({spec.name, Table::num(r25.fmax_mhz, 1), Table::num(r70.fmax_mhz, 1),
               Table::pct(gain), Table::pct(r70.timing.cp_share(coffe::ResourceKind::Bram)),
               Table::pct(r70.timing.cp_share(coffe::ResourceKind::Dsp))});
  }
  t.add_row({"average", "", "", Table::pct(util::mean_of(gains)), "", ""});
  t.print();
  return 0;
}

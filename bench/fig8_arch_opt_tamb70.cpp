// Fig. 8: performance improvement of the thermal-aware architecture
// (device optimized for 70C) over the typical 25C device, at ambient
// 70C, both using thermal-aware guardbanding.

#include "bench_common.hpp"

TAF_EXPERIMENT(fig8_arch_opt_tamb70) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Fig. 8 — thermal-aware architecture optimization at Tamb = 70C",
      "70C-optimized device vs typical (25C) device, both guardbanded; "
      "average ~6.7%, variation follows critical-path composition");

  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(70.0);
  // benchmark-major, grade-minor grid: cells[2*i] is D25, cells[2*i+1] D70.
  const auto suite = netlist::vtr_suite();
  const auto points = runner::Sweep::grid(suite, bench::kSuiteScale, bench::bench_arch(),
                                          {25.0, 70.0}, {70.0}, opt);
  const auto cells = bench::run_sweep(points);

  Table t({"Benchmark", "D25 MHz", "D70 MHz", "improvement", "CP BRAM share",
           "CP DSP share"});
  std::vector<double> gains;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& r25 = cells[2 * i].guardband;
    const auto& r70 = cells[2 * i + 1].guardband;
    const double gain = r70.fmax_mhz.value() / r25.fmax_mhz.value() - 1.0;
    gains.push_back(gain);
    t.add_row({suite[i].name, Table::num(r25.fmax_mhz.value(), 1), Table::num(r70.fmax_mhz.value(), 1),
               Table::pct(gain), Table::pct(r70.timing.cp_share(coffe::ResourceKind::Bram)),
               Table::pct(r70.timing.cp_share(coffe::ResourceKind::Dsp))});
  }
  t.add_row({"average", "", "", Table::pct(util::mean_of(gains)), "", ""});
  t.print();
  return 0;
}

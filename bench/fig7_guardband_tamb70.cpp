// Fig. 7: per-benchmark guardbanding gain at ambient 70C.

#include "bench_common.hpp"

TAF_EXPERIMENT(fig7_guardband_tamb70) {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Fig. 7 — thermal-aware guardbanding gain at Tamb = 70C",
      "less headroom before the worst-case corner: average ~14%");

  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(70.0);
  const auto cells = bench::run_sweep(bench::suite_points(25.0, opt));

  Table t({"Benchmark", "baseline MHz", "thermal-aware MHz", "gain", "peak T (C)"});
  std::vector<double> gains;
  const auto suite = netlist::vtr_suite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& r = cells[i].guardband;
    gains.push_back(r.gain());
    t.add_row({suite[i].name, Table::num(r.baseline_fmax_mhz.value(), 1),
               Table::num(r.fmax_mhz.value(), 1), Table::pct(r.gain()),
               Table::num(r.peak_temp_c.value(), 2)});
  }
  t.add_row({"average", "", "", Table::pct(util::mean_of(gains)), ""});
  t.print();
  return 0;
}

// Fig. 7: per-benchmark guardbanding gain at ambient 70C.

#include "bench_common.hpp"

int main() {
  using namespace taf;
  using util::Table;
  bench::print_header(
      "Fig. 7 — thermal-aware guardbanding gain at Tamb = 70C",
      "less headroom before the worst-case corner: average ~14%");

  const auto& dev = bench::device_at(25.0);
  Table t({"Benchmark", "baseline MHz", "thermal-aware MHz", "gain", "peak T (C)"});
  std::vector<double> gains;
  for (const auto& spec : netlist::vtr_suite()) {
    const auto& impl = bench::implementation_of(spec.name);
    core::GuardbandOptions opt;
    opt.t_amb_c = 70.0;
    const auto r = core::guardband(impl, dev, opt);
    gains.push_back(r.gain());
    t.add_row({spec.name, Table::num(r.baseline_fmax_mhz, 1), Table::num(r.fmax_mhz, 1),
               Table::pct(r.gain()), Table::num(r.peak_temp_c, 2)});
  }
  t.add_row({"average", "", "", Table::pct(util::mean_of(gains)), ""});
  t.print();
  return 0;
}

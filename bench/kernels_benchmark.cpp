// google-benchmark microbenchmarks of the flow's computational kernels:
// SPICE transient, Elmore evaluation, thermal solve, STA, and routing.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "coffe/path_eval.hpp"
#include "spice/solver.hpp"
#include "thermal/thermal_grid.hpp"

namespace {

using namespace taf;

void BM_ElmoreDelay(benchmark::State& state) {
  const auto tech = tech::ptm22();
  const auto spec = coffe::lut_spec(bench::bench_arch());
  for (auto _ : state) {
    benchmark::DoNotOptimize(coffe::elmore_delay_ps(spec, tech, units::Celsius(45.0)));
  }
}
BENCHMARK(BM_ElmoreDelay);

void BM_SpiceTransientLut(benchmark::State& state) {
  const auto tech = tech::ptm22();
  const auto spec = coffe::lut_spec(bench::bench_arch());
  for (auto _ : state) {
    benchmark::DoNotOptimize(coffe::spice_delay_ps(spec, tech, units::Celsius(45.0)));
  }
}
BENCHMARK(BM_SpiceTransientLut)->Unit(benchmark::kMillisecond);

/// Same workload with an explicitly pinned linear backend, for
/// sparse-vs-dense A/B comparisons regardless of TAF_SPICE_BACKEND.
void BM_SpiceTransientLutBackend(benchmark::State& state, spice::LinearBackend backend) {
  const auto tech = tech::ptm22();
  const auto spec = coffe::lut_spec(bench::bench_arch());
  const auto probe = coffe::build_path_circuit(spec, tech, units::Celsius(45.0));
  spice::SolverOptions opt;
  opt.temp_c = units::Celsius(45.0);
  opt.dt_ps = probe.dt_ps;
  opt.backend = backend;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::solve_transient(probe.circuit, tech, opt, probe.t_stop_ps));
  }
}
void BM_SpiceTransientLutSparse(benchmark::State& state) {
  BM_SpiceTransientLutBackend(state, spice::LinearBackend::Sparse);
}
void BM_SpiceTransientLutDense(benchmark::State& state) {
  BM_SpiceTransientLutBackend(state, spice::LinearBackend::Dense);
}
BENCHMARK(BM_SpiceTransientLutSparse)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpiceTransientLutDense)->Unit(benchmark::kMillisecond);

void BM_ThermalSolve(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const arch::FpgaGrid grid(n, n);
  const thermal::ThermalGrid tg(grid, {});
  std::vector<double> p(static_cast<std::size_t>(n) * n, 1e-4);
  p[static_cast<std::size_t>(n * n / 2)] = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg.solve(p));
  }
}
BENCHMARK(BM_ThermalSolve)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

/// Guardband-cell thermal workload with an explicitly pinned backend:
/// one cold solve plus five warm-started re-solves under ~1% power
/// perturbations — the solve sequence Algorithm 1 drives per sweep
/// cell — for generic-vs-stencil A/B timing regardless of
/// TAF_THERMAL_BACKEND. The stencil/generic ratio is the tracked
/// speedup of the blocked stencil hot path (target >= 3x at 64x64).
void BM_ThermalGuardbandCell(benchmark::State& state,
                             thermal::ThermalBackend backend) {
  const auto n = static_cast<int>(state.range(0));
  const arch::FpgaGrid grid(n, n);
  thermal::ThermalConfig cfg;
  cfg.backend = backend;
  const thermal::ThermalGrid tg(grid, cfg);
  std::vector<double> p(static_cast<std::size_t>(n) * n, 1e-4);
  p[static_cast<std::size_t>(n * n / 2)] = 0.05;
  std::vector<double> q(p.size());
  for (auto _ : state) {
    auto temps = tg.solve(p);
    for (int iter = 1; iter <= 5; ++iter) {
      for (std::size_t i = 0; i < p.size(); ++i) {
        q[i] = p[i] * (1.0 + 0.01 * static_cast<double>((i + static_cast<std::size_t>(iter)) % 3));
      }
      temps = tg.solve(q, temps);
    }
    benchmark::DoNotOptimize(temps);
  }
}
void BM_ThermalGuardbandCellGeneric(benchmark::State& state) {
  BM_ThermalGuardbandCell(state, thermal::ThermalBackend::Generic);
}
void BM_ThermalGuardbandCellStencil(benchmark::State& state) {
  BM_ThermalGuardbandCell(state, thermal::ThermalBackend::Stencil);
}
BENCHMARK(BM_ThermalGuardbandCellGeneric)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ThermalGuardbandCellStencil)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_ThermalAwareSta(benchmark::State& state) {
  const auto& impl = bench::implementation_of("sha");
  const auto& dev = bench::device_at(25.0);
  std::vector<double> temps(static_cast<std::size_t>(impl.grid.num_tiles()), 40.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(impl.sta->analyze(dev, temps));
  }
}
BENCHMARK(BM_ThermalAwareSta)->Unit(benchmark::kMillisecond);

void BM_GuardbandFlow(benchmark::State& state) {
  const auto& impl = bench::implementation_of("sha");
  const auto& dev = bench::device_at(25.0);
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::guardband(impl, dev, opt));
  }
}
BENCHMARK(BM_GuardbandFlow)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

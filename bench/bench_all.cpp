// bench_all: regenerates every reproduction table/figure in one process.
//
// All experiment TUs are compiled in with -DTAF_BENCH_ALL, so their
// TAF_EXPERIMENT bodies register here instead of emitting a main(). The
// driver first warms the process-wide runner::FlowCache — device models
// and suite implementations fan out over the shared thread pool — then
// runs the experiments serially in alphabetical order, which is exactly
// the order (and therefore output) of the per-binary loop
//   for b in build/bench/<experiment>; do $b; done
// so `diff` against the serial transcript validates the parallel run.
//
// Usage: bench_all [-j N] [--metrics out.json] [--csv out.csv]
//                  [--artifact-dir DIR] [--list] [--only name ...]
//
// --artifact-dir DIR (or TAF_ARTIFACT_DIR) enables the on-disk artifact
// store: implementations stream their pack/place/route/activity stages
// to DIR, and a rerun — including after a kill — reloads every stage a
// previous run completed instead of recomputing it. stdout is
// byte-identical either way; the disk-tier traffic is reported on stderr
// and in the --metrics/--csv output.

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runner/artifact_store.hpp"
#include "runner/metrics.hpp"
#include "thermal/thermal_grid.hpp"
#include "util/timer.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [-j N] [--metrics out.json] [--csv out.csv] "
               "[--artifact-dir DIR] [--list] [--only name ...]\n",
               argv0);
  return code;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_all: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace taf;

  int jobs = 0;  // 0 = auto (TAF_BENCH_THREADS or hardware)
  std::string metrics_path, csv_path, artifact_dir;
  std::vector<std::string> only;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-j" && i + 1 < argc) {
      jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      jobs = static_cast<int>(std::strtol(arg.c_str() + 2, nullptr, 10));
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--artifact-dir" && i + 1 < argc) {
      artifact_dir = argv[++i];
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--only" && i + 1 < argc) {
      only.push_back(argv[++i]);
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "bench_all: unknown argument '%s'\n", arg.c_str());
      return usage(argv[0], 2);
    }
  }
  if (jobs > 0) bench::set_pool_threads(jobs);

  // Disk tier: --artifact-dir wins over TAF_ARTIFACT_DIR; neither means
  // no store. Attached for the whole process so both the warm-up phase
  // and any --only subset builds go through it.
  std::unique_ptr<runner::ArtifactStore> store;
  try {
    store = artifact_dir.empty()
                ? runner::ArtifactStore::from_env()
                : std::make_unique<runner::ArtifactStore>(artifact_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_all: %s\n", e.what());
    return 2;
  }
  if (store) runner::FlowCache::global().set_artifact_store(store.get());

  auto experiments = bench::experiment_registry();
  std::sort(experiments.begin(), experiments.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  if (!only.empty()) {
    std::vector<bench::Experiment> selected;
    for (const auto& name : only) {
      const auto it = std::find_if(experiments.begin(), experiments.end(),
                                   [&](const auto& e) { return e.name == name; });
      if (it == experiments.end()) {
        std::fprintf(stderr, "bench_all: unknown experiment '%s' (see --list)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(*it);
    }
    experiments = std::move(selected);
  }
  if (list_only) {
    for (const auto& e : experiments) std::printf("%s\n", e.name.c_str());
    return 0;
  }

  util::Stopwatch total;
  runner::RunReport report;
  report.threads = bench::pool().threads();

  // Phase 1: warm the flow cache in parallel. Every artifact the
  // experiments share — the four device grades and the implemented
  // suite — is built here, once, across the pool; the experiments then
  // hit the cache. Skipped under --only: a subset builds just what it
  // needs on first use.
  if (only.empty()) {
    struct WarmTask {
      std::string name, kind;
      double t_opt_c = 0.0;               // characterize tasks
      const netlist::BenchmarkSpec* spec = nullptr;  // implement tasks
    };
    std::vector<WarmTask> warm;
    for (double t : {0.0, 25.0, 70.0, 100.0}) {
      std::string grade = "D";
      grade += util::Table::num(t, 0);
      warm.push_back({std::move(grade), "characterize", t, nullptr});
    }
    const auto suite = netlist::vtr_suite();
    for (const auto& spec : suite) {
      warm.push_back({spec.name, "implement", 0.0, &spec});
    }
    std::vector<runner::TaskMetrics> warm_metrics(warm.size());
    bench::pool().parallel_for(warm.size(), [&](std::size_t i) {
      runner::TaskMetrics& m = warm_metrics[i];
      m.name = warm[i].kind + ":" + warm[i].name;
      m.kind = warm[i].kind;
      const runner::SpiceCounterScope spice_scope(m);
      const runner::FlowCounterScope flow_scope(m);
      const runner::ArtifactCounterScope artifact_scope(m);
      util::Stopwatch sw;
      if (warm[i].spec) {
        core::ImplementOptions iopt;
        const core::FlowObserver obs = runner::observe_into(m);
        iopt.observer = &obs;
        runner::FlowCache::global().implementation(*warm[i].spec, bench::bench_arch(),
                                                   bench::kSuiteScale, iopt);
      } else {
        bench::device_at(warm[i].t_opt_c);
      }
      m.wall_s = sw.seconds();
    });
    report.tasks.insert(report.tasks.end(), warm_metrics.begin(), warm_metrics.end());
    std::fprintf(stderr, "[bench_all] cache warm (%zu tasks, %d threads): %.1fs\n",
                 warm.size(), report.threads, total.seconds());
  }

  // Phase 2: run the experiments serially, in name order, so stdout is
  // byte-identical to the standalone binaries run back to back (no
  // separators: the transcripts concatenate exactly).
  int rc = 0;
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    runner::TaskMetrics m;
    m.name = experiments[i].name;
    m.kind = "experiment";
    util::Stopwatch sw;
    int code = 0;
    {
      // Captures only driver-thread work; sweep cells report their own
      // counters via bench::collected_sweep_metrics() below.
      const runner::SpiceCounterScope spice_scope(m);
      const runner::FlowCounterScope flow_scope(m);
      const runner::ArtifactCounterScope artifact_scope(m);
      code = experiments[i].fn();
    }
    m.wall_s = sw.seconds();
    report.tasks.push_back(std::move(m));
    if (code != 0) {
      std::fprintf(stderr, "[bench_all] experiment %s failed (exit %d)\n",
                   experiments[i].name.c_str(), code);
      rc = code;
    }
  }

  report.wall_s = total.seconds();
  report.cache = runner::FlowCache::global().stats();

  // Fold in the per-cell sweep metrics (guardband work happens on pool
  // threads) and summarize the incremental engine's work.
  {
    const std::lock_guard<std::mutex> lock(bench::sweep_metrics_mutex());
    const auto& cells = bench::collected_sweep_metrics();
    unsigned long long edges = 0, hits = 0, cg = 0, pcg = 0, nonconv = 0;
    for (const auto& m : cells) {
      edges += m.sta_edges_reevaluated;
      hits += m.sta_delay_cache_hits;
      cg += m.thermal_cg_iters;
      pcg += m.thermal_precond_iters;
      nonconv += m.guardband_nonconverged;
    }
    std::fprintf(stderr,
                 "[bench_all] guardband (%s incremental, %s thermal): %zu sweep "
                 "cells, %llu edges re-evaluated, %llu delay-cache hits, "
                 "%llu CG iters (%llu preconditioned), %llu non-converged\n",
                 core::incremental_mode_name(core::default_incremental_mode()),
                 thermal::thermal_backend_name(thermal::default_thermal_backend()),
                 cells.size(), edges, hits, cg, pcg, nonconv);
    if (nonconv > 0) {
      std::fprintf(stderr,
                   "[bench_all] WARNING: %llu guardband run(s) exhausted the "
                   "iteration budget; reported fmax values are not thermal "
                   "fixed points\n",
                   nonconv);
    }
    report.tasks.insert(report.tasks.end(), cells.begin(), cells.end());
  }
  std::fprintf(stderr,
               "[bench_all] %zu experiments in %.1fs (%d threads; cache: "
               "%llu/%llu impl hits, %llu/%llu device hits)\n",
               experiments.size(), report.wall_s, report.threads,
               static_cast<unsigned long long>(report.cache.impl_hits),
               static_cast<unsigned long long>(report.cache.impl_hits +
                                               report.cache.impl_misses),
               static_cast<unsigned long long>(report.cache.device_hits),
               static_cast<unsigned long long>(report.cache.device_hits +
                                               report.cache.device_misses));
  if (store) {
    const runner::ArtifactStore::Stats d = store->stats();
    std::fprintf(stderr,
                 "[bench_all] artifact store %s: %llu disk hits, %llu misses "
                 "(%llu rejected), %llu writes\n",
                 store->root().c_str(), static_cast<unsigned long long>(d.disk_hits),
                 static_cast<unsigned long long>(d.disk_misses),
                 static_cast<unsigned long long>(d.disk_errors),
                 static_cast<unsigned long long>(d.disk_writes));
  }

  if (!metrics_path.empty() && !write_file(metrics_path, report.to_json())) rc = 1;
  if (!csv_path.empty() && !write_file(csv_path, report.to_csv())) rc = 1;
  return rc;
}

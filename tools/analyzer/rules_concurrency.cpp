// Lock-discipline rule family (DESIGN.md section 14).
//
// Per file: a brace/scope tracker follows every std::lock_guard /
// unique_lock / scoped_lock declaration from its acquisition site to the
// end of its enclosing scope (explicit .unlock()/.lock() toggles are
// honoured), normalizing the mutex expression ("this->" dropped, index
// and call argument lists elided) into a node name. While at least one
// lock is held, blocking operations are reported (blocking-while-locked):
// file I/O and stream construction, thread .join(), pool parallel_for,
// global-qualified socket syscalls, frame-transport helpers, in-process
// GuardbandServer entry points, and condition_variable waits that either
// park a different mutex than the ones held or keep a second lock held
// across the wait. Logging (fprintf/fputs) is deliberately NOT a blocking
// sink: the bench sweep logs progress under its metrics mutex by design.
//
// Across files: nested acquisitions contribute held->acquired edges to a
// lock-order graph merged over every analyzed TU; an edge whose endpoints
// lie on a directed cycle (including self-edges: re-acquiring a held
// mutex) is reported at each acquisition site (lock-order-cycle).

#include <array>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "analyzer/token_scan.hpp"

namespace taf::analyze {

namespace {

using detail::join_tokens;
using detail::match_close;
using detail::match_template_close;
using detail::rule_wanted;

const std::array<const char*, 3> kGuardTypes = {"lock_guard", "unique_lock",
                                                "scoped_lock"};
const std::array<const char*, 7> kFileIo = {"fopen",  "fread", "fwrite", "fclose",
                                            "fflush", "fgets", "fseek"};
const std::array<const char*, 3> kStreamCtors = {"ifstream", "ofstream", "fstream"};
const std::array<const char*, 8> kSyscalls = {"read",   "write",  "recv",   "send",
                                              "accept", "connect", "poll",  "select"};
const std::array<const char*, 4> kTransport = {"write_all", "read_exact", "write_frame",
                                               "read_frame"};
const std::array<const char*, 6> kServerEntry = {"serve_payload",   "serve_trace_payload",
                                                 "serve_frame",     "handle_batch",
                                                 "handle_trace_batch", "drain_metrics"};

bool in_list(const std::string& s, const char* const* names, std::size_t count) {
  for (std::size_t k = 0; k < count; ++k)
    if (s == names[k]) return true;
  return false;
}

struct ActiveLock {
  std::string var;   // guard variable name
  std::string node;  // normalized mutex expression
  int line = 0;      // acquisition line
  int depth = 0;     // brace depth at declaration
  bool active = true;
};

// Normalize a mutex argument expression to a stable node name:
// "this->" prefix dropped, [...] and (...) elided, tokens joined
// compactly (e.g. `executors_[i]->mutex` -> `executors_[]->mutex`).
std::string normalize_mutex(const LexedFile& f, std::size_t b, std::size_t e) {
  std::string out;
  std::size_t j = b;
  if (f.tok_is(j, "this") && f.tok_is(j + 1, "->")) j += 2;
  while (j < e && j < f.tokens.size()) {
    if (f.tok_is(j, "[")) {
      j = match_close(f, j, "[", "]");
      out += "[]";
      continue;
    }
    if (f.tok_is(j, "(")) {
      j = match_close(f, j, "(", ")");
      out += "()";
      continue;
    }
    const std::string t = f.tok(f.tokens[j]);
    if (!out.empty() && !t.empty() &&
        (isalnum(static_cast<unsigned char>(out.back())) || out.back() == '_') &&
        (isalnum(static_cast<unsigned char>(t.front())) || t.front() == '_'))
      out += ' ';
    out += t;
    ++j;
  }
  return out;
}

// Split the token range of an argument list on depth-0 commas.
std::vector<std::pair<std::size_t, std::size_t>> split_arg_ranges(const LexedFile& f,
                                                                  std::size_t b,
                                                                  std::size_t e) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t start = b;
  for (std::size_t j = b; j < e; ++j) {
    if (f.tok_is(j, "(") || f.tok_is(j, "[") || f.tok_is(j, "{")) ++depth;
    if (f.tok_is(j, ")") || f.tok_is(j, "]") || f.tok_is(j, "}")) --depth;
    if (depth == 0 && f.tok_is(j, ",")) {
      out.emplace_back(start, j);
      start = j + 1;
    }
  }
  if (start < e) out.emplace_back(start, e);
  return out;
}

bool range_mentions(const LexedFile& f, std::size_t b, std::size_t e, const char* w) {
  for (std::size_t j = b; j < e; ++j)
    if (f.tok_is(j, Tok::Ident, w)) return true;
  return false;
}

std::string held_summary(const std::vector<ActiveLock>& locks) {
  std::string out;
  for (const ActiveLock& l : locks) {
    if (!l.active) continue;
    if (!out.empty()) out += ", ";
    out += "`" + l.node + "` (line " + std::to_string(l.line) + ")";
  }
  return out;
}

bool any_active(const std::vector<ActiveLock>& locks) {
  for (const ActiveLock& l : locks)
    if (l.active) return true;
  return false;
}

}  // namespace

std::vector<LockEdge> run_lock_rules(const LexedFile& f,
                                     const std::vector<std::string>& rules,
                                     std::vector<Finding>& findings) {
  std::vector<LockEdge> edges;
  const bool want_cycle = rule_wanted(rules, "lock-order-cycle");
  const bool want_blocking = rule_wanted(rules, "blocking-while-locked");
  if (!want_cycle && !want_blocking) return edges;

  std::vector<ActiveLock> locks;
  int depth = 0;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tok_is(i, "{")) {
      ++depth;
      continue;
    }
    if (f.tok_is(i, "}")) {
      --depth;
      for (std::size_t k = locks.size(); k-- > 0;)
        if (locks[k].depth > depth) locks.erase(locks.begin() + static_cast<long>(k));
      continue;
    }
    if (f.tokens[i].kind != Tok::Ident) continue;
    const std::string word = f.tok(f.tokens[i]);

    // ------------------------------------------------- lock acquisition
    if (in_list(word, kGuardTypes.data(), kGuardTypes.size())) {
      std::size_t j = i + 1;
      if (f.tok_is(j, "<")) j = match_template_close(f, j);
      if (j >= f.tokens.size() || f.tokens[j].kind != Tok::Ident) continue;
      const std::string var = f.tok(f.tokens[j]);
      const std::size_t open = j + 1;
      const bool paren = f.tok_is(open, "(");
      const bool brace = f.tok_is(open, "{");
      if (!paren && !brace) continue;  // deferred/default construction
      const std::size_t close =
          paren ? match_close(f, open, "(", ")") : match_close(f, open, "{", "}");
      const auto arg_ranges = split_arg_ranges(f, open + 1, close - 1);
      if (arg_ranges.empty()) continue;
      bool deferred = false;
      for (const auto& r : arg_ranges)
        deferred = deferred || range_mentions(f, r.first, r.second, "defer_lock") ||
                   range_mentions(f, r.first, r.second, "try_to_lock");
      if (deferred) continue;
      std::vector<std::string> mutexes;
      if (word == "scoped_lock") {
        for (const auto& r : arg_ranges) {
          if (range_mentions(f, r.first, r.second, "adopt_lock")) continue;
          mutexes.push_back(normalize_mutex(f, r.first, r.second));
        }
      } else {
        mutexes.push_back(normalize_mutex(f, arg_ranges[0].first, arg_ranges[0].second));
      }
      const int line = f.tokens[i].line;
      // Edges run from locks held BEFORE this statement only: scoped_lock's
      // multi-mutex acquire is atomic (std::lock), so its own arguments
      // impose no order on each other.
      const std::size_t held_before = locks.size();
      for (const std::string& m : mutexes) {
        if (m.empty()) continue;
        for (std::size_t h = 0; h < held_before; ++h)
          if (locks[h].active) edges.push_back({locks[h].node, m, f.path, line});
        locks.push_back({var, m, line, depth, true});
      }
      i = close > 0 ? close - 1 : i;
      continue;
    }

    // ------------------------------------- explicit unlock()/lock() toggles
    if ((word == "unlock" || word == "lock") && i >= 2 && f.tok_is(i - 1, ".") &&
        f.tokens[i - 2].kind == Tok::Ident && f.tok_is(i + 1, "(")) {
      const std::string var = f.tok(f.tokens[i - 2]);
      for (std::size_t k = locks.size(); k-- > 0;) {
        if (locks[k].var == var) {
          locks[k].active = (word == "lock");
          break;
        }
      }
      continue;
    }

    if (!want_blocking || !any_active(locks)) continue;

    // ------------------------------------------ condition_variable waits
    if ((word == "wait" || word == "wait_for" || word == "wait_until") && i >= 1 &&
        (f.tok_is(i - 1, ".") || f.tok_is(i - 1, "->")) && f.tok_is(i + 1, "(")) {
      std::string first_arg;
      if (i + 2 < f.tokens.size() && f.tokens[i + 2].kind == Tok::Ident)
        first_arg = f.tok(f.tokens[i + 2]);
      bool arg_is_held = false;
      int others = 0;
      for (const ActiveLock& l : locks) {
        if (!l.active) continue;
        if (l.var == first_arg)
          arg_is_held = true;
        else
          ++others;
      }
      if (arg_is_held && others > 0) {
        findings.push_back(
            {f.path, f.tokens[i].line, "blocking-while-locked",
             "condition_variable " + word + " parks `" + first_arg +
                 "` while still holding " + held_summary(locks) +
                 "; waiters against the second lock can deadlock"});
      } else if (!arg_is_held) {
        findings.push_back({f.path, f.tokens[i].line, "blocking-while-locked",
                            "condition_variable " + word +
                                " does not release the held lock(s) " +
                                held_summary(locks) + "; it parks a different mutex"});
      }
      continue;
    }

    // ------------------------------------------------ blocking operations
    std::string what;
    if (word == "join" && i >= 1 && (f.tok_is(i - 1, ".") || f.tok_is(i - 1, "->")) &&
        f.tok_is(i + 1, "(")) {
      what = ".join()";
    } else if (word == "parallel_for" && f.tok_is(i + 1, "(")) {
      what = "parallel_for";
    } else if (in_list(word, kFileIo.data(), kFileIo.size()) && f.tok_is(i + 1, "(")) {
      what = word;
    } else if (in_list(word, kStreamCtors.data(), kStreamCtors.size())) {
      what = "std::" + word;
    } else if (in_list(word, kSyscalls.data(), kSyscalls.size()) && i >= 1 &&
               f.tok_is(i - 1, "::") && (i < 2 || f.tokens[i - 2].kind != Tok::Ident) &&
               f.tok_is(i + 1, "(")) {
      what = "::" + word;
    } else if (in_list(word, kTransport.data(), kTransport.size()) &&
               f.tok_is(i + 1, "(")) {
      what = word;
    } else if (in_list(word, kServerEntry.data(), kServerEntry.size()) &&
               f.tok_is(i + 1, "(")) {
      what = "GuardbandServer::" + word;
    }
    if (!what.empty()) {
      findings.push_back({f.path, f.tokens[i].line, "blocking-while-locked",
                          "blocking call `" + what + "` while holding " +
                              held_summary(locks) +
                              "; release the lock before blocking"});
    }
  }
  if (!want_cycle) edges.clear();
  return edges;
}

void report_lock_cycles(const std::vector<LockEdge>& edges,
                        std::vector<Finding>& findings) {
  std::map<std::string, std::set<std::string>> adj;
  for (const LockEdge& e : edges) adj[e.held].insert(e.acquired);
  auto reaches = [&adj](const std::string& from, const std::string& to) {
    if (from == to) return true;
    std::set<std::string> seen;
    std::vector<std::string> stack = {from};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      if (!seen.insert(cur).second) continue;
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) {
        if (next == to) return true;
        stack.push_back(next);
      }
    }
    return false;
  };
  for (const LockEdge& e : edges) {
    if (e.held == e.acquired) {
      findings.push_back({e.path, e.line, "lock-order-cycle",
                          "lock `" + e.acquired +
                              "` acquired while already held (self-deadlock)"});
    } else if (reaches(e.acquired, e.held)) {
      findings.push_back({e.path, e.line, "lock-order-cycle",
                          "acquiring `" + e.acquired + "` while holding `" + e.held +
                              "` participates in a lock-order cycle (elsewhere `" +
                              e.held + "` is acquired after `" + e.acquired + "`)"});
    }
  }
}

}  // namespace taf::analyze

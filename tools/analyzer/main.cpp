// taf-analyze CLI entry point. All behavior lives in run_cli()
// (analyzer.cpp) so tests can pin output bytes and exit codes in-process.

#include <cstdio>
#include <cstring>
#include <string>

#include "analyzer/analyzer.hpp"

namespace {

const char kUsage[] =
    "usage: taf-analyze [--root DIR] [--rules a,b,...] [--list-rules]\n"
    "                   [--no-suppress] [--compat] [--prune-suppressions]\n"
    "                   [--no-summary] [paths...]\n"
    "\n"
    "Compiled static-analysis gate for the TAF tree (DESIGN.md section 14).\n"
    "With no paths, analyzes src/ bench/ tests/ examples/ under --root.\n"
    "Exit status: 0 clean, 1 unsuppressed findings, 2 I/O error.\n";

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t b = 0;
  while (b <= s.size()) {
    const std::size_t e = s.find(',', b);
    if (e == std::string::npos) {
      if (b < s.size()) out.push_back(s.substr(b));
      break;
    }
    if (e > b) out.push_back(s.substr(b, e - b));
    b = e + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  taf::analyze::CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--list-rules") {
      opts.list_rules = true;
    } else if (arg == "--no-suppress") {
      opts.use_suppressions = false;
    } else if (arg == "--compat") {
      opts.compat = true;
    } else if (arg == "--prune-suppressions") {
      opts.prune = true;
    } else if (arg == "--no-summary") {
      opts.summary = false;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fputs("taf-analyze: --root needs an argument\n", stderr);
        return 2;
      }
      opts.root = argv[++i];
    } else if (arg == "--rules") {
      if (i + 1 >= argc) {
        std::fputs("taf-analyze: --rules needs an argument\n", stderr);
        return 2;
      }
      for (std::string& r : split_commas(argv[++i])) opts.rules.push_back(std::move(r));
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::fputs(("taf-analyze: unknown option " + arg + "\n").c_str(), stderr);
      std::fputs(kUsage, stderr);
      return 2;
    } else {
      opts.paths.push_back(arg);
    }
  }
  for (const std::string& r : opts.rules) {
    bool known = false;
    for (const std::string& k : taf::analyze::all_rules()) known = known || k == r;
    if (!known) {
      std::fputs(("taf-analyze: unknown rule " + r + "\n").c_str(), stderr);
      return 2;
    }
  }
  const taf::analyze::CliResult res = taf::analyze::run_cli(opts);
  if (!res.out.empty()) std::fputs(res.out.c_str(), stdout);
  if (!res.err.empty()) std::fputs(res.err.c_str(), stderr);
  return res.exit_code;
}

#pragma once
// taf-analyze — compiled static-analysis gate for the TAF tree.
//
// Sixteen rules over the shared lexer (lexer.hpp): the ten seam rules
// ported char-for-char from tools/taf-lint (the Python tool stays as a
// differential oracle), plus two families the regex linter cannot
// express — lock discipline (lock-order-cycle, blocking-while-locked)
// and determinism (unordered-iteration, wall-clock, raw-random,
// pointer-keyed-container). DESIGN.md section 14 documents the rule
// semantics and the suppression format (tools/taf-lint.suppressions,
// shared with taf-lint).

#include <string>
#include <vector>

#include "analyzer/lexer.hpp"

namespace taf::analyze {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};
bool operator<(const Finding& a, const Finding& b);
bool operator==(const Finding& a, const Finding& b);

struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string text;
};

/// Registry of all rule names, in report order.
const std::vector<std::string>& all_rules();

/// Analyze a set of sources together (the lock-order graph is merged
/// across all of them). `rules` filters to a subset; empty = all rules.
/// Findings come back sorted by (path, line, rule, message).
std::vector<Finding> analyze_sources(const std::vector<SourceFile>& sources,
                                     const std::vector<std::string>& rules = {});

// ---------------------------------------------------------- suppressions

struct Suppression {
  std::string glob;    // fnmatch-style path glob
  std::string rule;    // rule name or "*"
  std::string substr;  // message substring ("" = any)
  int line = 0;        // 1-based line in the suppressions file
  std::string entry;   // the entry text as written
};

std::vector<Suppression> parse_suppressions(const std::string& text);
/// fnmatch-compatible glob match (* ? [seq] [!seq], '*' crosses '/').
bool glob_match(const std::string& pattern, const std::string& s);
bool suppression_matches(const Suppression& s, const Finding& f);

// ------------------------------------------------------------------ CLI

struct CliOptions {
  std::string root;                 // repo root ("" = current directory)
  std::vector<std::string> paths;   // files/dirs relative to root; empty = defaults
  std::vector<std::string> rules;   // empty = all
  bool use_suppressions = true;     // --no-suppress clears this
  bool compat = false;              // print "path:line:rule" only (oracle diffing)
  bool prune = false;               // --prune-suppressions report mode
  bool list_rules = false;
  bool summary = true;              // per-rule stderr table (--no-summary clears)
};

struct CliResult {
  int exit_code = 0;  // 0 clean / 1 findings / 2 I/O error
  std::string out;    // stdout payload (findings / rule list / prune report)
  std::string err;    // stderr payload (per-rule table, totals, errors)
};

/// Full CLI run as a pure function of options + filesystem, so tests can
/// pin byte-identical output and exit codes in-process.
CliResult run_cli(const CliOptions& opts);

// Individual rule passes (exposed for focused unit tests).
void run_seam_rules(const LexedFile& f, const std::vector<std::string>& rules,
                    std::vector<Finding>& findings);
void run_determinism_rules(const LexedFile& f, const std::vector<std::string>& rules,
                           std::vector<Finding>& findings);

/// Per-file half of the lock pass: emits blocking-while-locked findings
/// and returns the file's lock-order edges for the cross-TU graph.
struct LockEdge {
  std::string held;      // normalized mutex expression already held
  std::string acquired;  // normalized mutex expression being acquired
  std::string path;
  int line = 0;  // acquisition site
};
std::vector<LockEdge> run_lock_rules(const LexedFile& f,
                                     const std::vector<std::string>& rules,
                                     std::vector<Finding>& findings);
/// Cross-TU half: cycle detection over the merged edge list.
void report_lock_cycles(const std::vector<LockEdge>& edges,
                        std::vector<Finding>& findings);

}  // namespace taf::analyze

// The ten taf-lint seam rules, ported char-level onto the shared lexer's
// stripped view (and the raw text where the Python tool scans raw text).
// Fidelity contract: on the live tree these ports agree finding-for-finding
// with tools/taf-lint (the migration test diffs both tools' --no-suppress
// output), so every scanning quirk of the Python regexes is reproduced
// deliberately — non-overlapping match consumption, backtracking order of
// alternations, `[^,)]*` running across newlines, printf argument splitting
// on raw text. Do not "clean up" a scan here without changing the oracle in
// the same commit.

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"

namespace taf::analyze {

namespace {

bool word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_';
}
bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool digit(char c) { return c >= '0' && c <= '9'; }
bool space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}
bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

bool want(const std::vector<std::string>& rules, const char* name) {
  if (rules.empty()) return true;
  for (const std::string& r : rules)
    if (r == name) return true;
  return false;
}

// Word-bounded occurrence of `w` starting at `p` in `s`.
bool word_at(const std::string& s, std::size_t p, const char* w) {
  const std::size_t len = std::strlen(w);
  if (s.compare(p, len, w) != 0) return false;
  if (p > 0 && word_char(s[p - 1])) return false;
  if (p + len < s.size() && word_char(s[p + len])) return false;
  return true;
}

bool contains_word(const std::string& s, const char* w) {
  const std::size_t len = std::strlen(w);
  for (std::size_t p = s.find(w); p != std::string::npos; p = s.find(w, p + 1)) {
    if ((p == 0 || !word_char(s[p - 1])) &&
        (p + len >= s.size() || !word_char(s[p + len])))
      return true;
  }
  return false;
}

std::size_t skip_space(const std::string& s, std::size_t p) {
  while (p < s.size() && space(s[p])) ++p;
  return p;
}

// Optional `std \s* :: \s*` prefix directly before the function name at
// `name_pos`; returns the match start (position of `std`, or `name_pos`).
// Mirrors the `\b(?:std\s*::\s*)?name` pattern: the name itself must not
// be preceded by a word character unless the std:: prefix supplies the
// word boundary.
bool match_std_prefixed(const std::string& s, std::size_t name_pos, std::size_t* start) {
  std::size_t p = name_pos;
  while (p > 0 && space(s[p - 1])) --p;
  if (p >= 2 && s[p - 1] == ':' && s[p - 2] == ':') {
    p -= 2;
    while (p > 0 && space(s[p - 1])) --p;
    if (p >= 3 && s.compare(p - 3, 3, "std") == 0 &&
        (p == 3 || !word_char(s[p - 4]))) {
      *start = p - 3;
      return true;
    }
  }
  if (name_pos > 0 && word_char(s[name_pos - 1])) return false;
  *start = name_pos;
  return true;
}

// ------------------------------------------------------- unit-typed-api

const std::array<const char*, 4> kPublicApiDirs = {"src/thermal/", "src/power/",
                                                   "src/timing/", "src/core/"};

// UNIT_PARAM_NAME: parameter names that carry a physical dimension.
bool unit_param_name(const std::string& name) {
  static const std::array<const char*, 8> kTempStems = {
      "t", "temp", "tamb", "t_amb", "t_opt", "t_min", "t_max", "t_worst"};
  static const std::array<const char*, 8> kDimStems = {
      "delay", "delays", "power", "freq", "frequency", "fmax", "period", "epsilon_c"};
  static const std::array<const char*, 17> kUnitSuffixes = {
      "c", "k", "w", "uw", "mw", "ps", "ns", "us", "mhz",
      "ghz", "hz", "v", "ohm", "ohms", "farad", "f_hz", ""};
  for (std::size_t p = 0; p <= name.size(); ++p) {
    if (p != 0 && (p > name.size() || name[p - 1] != '_')) continue;
    for (const char* stem : kTempStems) {
      const std::size_t len = std::strlen(stem);
      if (name.compare(p, len, stem) != 0) continue;
      const std::string rest = name.substr(p + len);
      if (rest.empty() || rest == "_c" || rest == "_k") return true;
    }
    for (const char* stem : kDimStems) {
      const std::size_t len = std::strlen(stem);
      if (name.compare(p, len, stem) != 0) continue;
      if (p + len == name.size() || name[p + len] == '_') return true;
    }
  }
  for (const char* suf : kUnitSuffixes) {
    if (*suf == '\0') continue;
    const std::string want_suffix = std::string("_") + suf;
    if (ends_with(name, want_suffix.c_str())) return true;
  }
  return false;
}

// DOUBLE_PARAM match attempt at offset `i` of the stripped text:
//   (?<![<\w])(?:const\s+)?double\s+(IDENT)\s*(?:=[^,)]*)?[,)]
// Returns one past the match end (0 = no match) and fills `name`.
std::size_t match_double_param_from(const std::string& s, std::size_t j,
                                    std::string& name) {
  if (s.compare(j, 6, "double") != 0) return 0;
  j += 6;
  const std::size_t ws = j;
  j = skip_space(s, j);
  if (j == ws) return 0;
  if (j >= s.size() || !ident_start(s[j])) return 0;
  const std::size_t ns = j;
  while (j < s.size() && word_char(s[j])) ++j;
  name = s.substr(ns, j - ns);
  j = skip_space(s, j);
  if (j < s.size() && s[j] == '=') {
    ++j;
    while (j < s.size() && s[j] != ',' && s[j] != ')') ++j;
  }
  if (j < s.size() && (s[j] == ',' || s[j] == ')')) return j + 1;
  return 0;
}

std::size_t match_double_param(const std::string& s, std::size_t i, std::string& name) {
  if (i > 0 && (s[i - 1] == '<' || word_char(s[i - 1]))) return 0;
  if (s.compare(i, 5, "const") == 0) {
    std::size_t k = skip_space(s, i + 5);
    if (k > i + 5) {
      const std::size_t e = match_double_param_from(s, k, name);
      if (e) return e;
    }
  }
  return match_double_param_from(s, i, name);
}

void check_unit_typed_api(const LexedFile& f, std::vector<Finding>& out) {
  if (!ends_with(f.path, ".hpp")) return;
  bool in_api = false;
  for (const char* d : kPublicApiDirs) in_api = in_api || starts_with(f.path, d);
  if (!in_api) return;
  const std::string& clean = f.stripped;
  std::size_t i = 0;
  while (i < clean.size()) {
    std::string name;
    const std::size_t e = match_double_param(clean, i, name);
    if (!e) {
      ++i;
      continue;
    }
    if (unit_param_name(name)) {
      out.push_back({f.path, line_of(clean, i), "unit-typed-api",
                     "raw `double " + name +
                         "` in a public header; use the "
                         "strong typedef from util/units.hpp"});
    }
    i = e;  // finditer consumes the whole match
  }
}

// ----------------------------------------------------- printf-sized-int

const std::array<const char*, 7> kPrintfNames = {
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf", "vsnprintf"};

std::vector<std::string> split_args(const std::string& s) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (char ch : s) {
    if (ch == '(' || ch == '<' || ch == '[')
      ++depth;
    else if (ch == ')' || ch == '>' || ch == ']')
      --depth;
    if (ch == ',' && depth == 0) {
      args.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

bool conv_char(char c) { return std::strchr("diuoxXfFeEgGcsp%", c) != nullptr; }

struct Spec {
  std::string length;
  char conv;
};

// FORMAT_SPEC: %[-+ #0]*\d*(\.\d+)?(hh|h|ll|l|j|z|t)?([diuoxXfFeEgGcsp%])
// with the Python alternation/backtracking order, non-overlapping.
std::vector<Spec> parse_specs(const std::string& fmt) {
  static const std::array<const char*, 7> kLens = {"hh", "h", "ll", "l", "j", "z", "t"};
  std::vector<Spec> specs;
  std::size_t k = 0;
  while (k < fmt.size()) {
    if (fmt[k] != '%') {
      ++k;
      continue;
    }
    std::size_t j = k + 1;
    while (j < fmt.size() && (fmt[j] == '-' || fmt[j] == '+' || fmt[j] == ' ' ||
                              fmt[j] == '#' || fmt[j] == '0'))
      ++j;
    while (j < fmt.size() && digit(fmt[j])) ++j;
    if (j < fmt.size() && fmt[j] == '.') {
      std::size_t d = j + 1;
      while (d < fmt.size() && digit(fmt[d])) ++d;
      if (d > j + 1) j = d;  // \.\d+ needs at least one digit, else group is skipped
    }
    bool matched = false;
    std::size_t end = 0;
    Spec spec;
    for (const char* L : kLens) {
      const std::size_t len = std::strlen(L);
      if (fmt.compare(j, len, L) == 0 && j + len < fmt.size() && conv_char(fmt[j + len])) {
        spec = {L, fmt[j + len]};
        end = j + len + 1;
        matched = true;
        break;
      }
    }
    if (!matched && j < fmt.size() && conv_char(fmt[j])) {
      spec = {"", fmt[j]};
      end = j + 1;
      matched = true;
    }
    if (matched) {
      if (spec.conv != '%') specs.push_back(spec);
      k = end;
    } else {
      ++k;
    }
  }
  return specs;
}

// SIZED_INT_ARG: .size() | sizeof | size_t | u?int{16,32,64}_t | ptrdiff_t
bool sized_int_arg(const std::string& arg) {
  if (arg.find(".size()") != std::string::npos) return true;
  if (contains_word(arg, "sizeof") || contains_word(arg, "size_t") ||
      contains_word(arg, "ptrdiff_t"))
    return true;
  static const std::array<const char*, 6> kSized = {"int16_t",  "int32_t",  "int64_t",
                                                    "uint16_t", "uint32_t", "uint64_t"};
  for (const char* w : kSized)
    if (contains_word(arg, w)) return true;
  return false;
}

std::string strip_ws(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && space(s[b])) ++b;
  while (e > b && space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

void check_printf_sized_int(const LexedFile& f, std::vector<Finding>& out) {
  const std::string& text = f.text;  // the Python rule scans the raw text
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (!ident_start(text[i]) || (i > 0 && word_char(text[i - 1]))) continue;
    std::size_t name_len = 0;
    for (const char* nm : kPrintfNames) {
      const std::size_t len = std::strlen(nm);
      if (text.compare(i, len, nm) == 0 && !(i + len < text.size() && word_char(text[i + len]))) {
        name_len = len;
        break;
      }
    }
    if (!name_len) continue;
    std::size_t p = skip_space(text, i + name_len);
    if (p >= text.size() || text[p] != '(') continue;
    const std::size_t start = p + 1;
    std::size_t j = start;
    int depth = 1;
    while (j < text.size() && depth) {
      if (text[j] == '(')
        ++depth;
      else if (text[j] == ')')
        --depth;
      ++j;
    }
    const std::size_t call_end = j > 0 ? j - 1 : 0;  // text[start : j-1], as the oracle
    const std::string call =
        call_end > start ? text.substr(start, call_end - start) : std::string();
    // fmt = concatenation of every "((?:[^"\\]|\\.)*)" span in the call
    std::string fmt;
    for (std::size_t k = 0; k < call.size(); ++k) {
      if (call[k] != '"') continue;
      std::string content;
      std::size_t q = k + 1;
      bool closed = false;
      while (q < call.size()) {
        if (call[q] == '\\' && q + 1 < call.size()) {
          content += call[q];
          content += call[q + 1];
          q += 2;
          continue;
        }
        if (call[q] == '"') {
          closed = true;
          break;
        }
        content += call[q];
        ++q;
      }
      if (!closed) break;
      fmt += content;
      k = q;
    }
    const std::vector<Spec> specs = parse_specs(fmt);
    const std::vector<std::string> args = split_args(call);
    std::vector<std::string> value_args;
    bool seen_fmt = false;
    for (const std::string& a : args) {
      if (seen_fmt)
        value_args.push_back(a);
      else if (a.find('"') != std::string::npos)
        seen_fmt = true;
    }
    const std::size_t npairs = std::min(specs.size(), value_args.size());
    for (std::size_t k = 0; k < npairs; ++k) {
      const Spec& spec = specs[k];
      const std::string& arg = value_args[k];
      if (!sized_int_arg(arg) || arg.find("static_cast") != std::string::npos) continue;
      if (spec.length == "z" || spec.length == "j" || spec.length == "ll" ||
          spec.length == "t")
        continue;
      out.push_back({f.path, line_of(text, i), "printf-sized-int",
                     "'%" + spec.length + std::string(1, spec.conv) +
                         "' paired with sized-integer argument `" + strip_ws(arg) +
                         "`; use %zu/%lld or a static_cast"});
    }
    i = i + name_len - 1;  // resume after the matched name
  }
}

// ------------------------------------------------------ header-using-ns

void check_header_using_ns(const LexedFile& f, std::vector<Finding>& out) {
  if (!ends_with(f.path, ".hpp") && !ends_with(f.path, ".h")) return;
  const std::string& clean = f.stripped;
  std::size_t resume = 0;
  for (std::size_t p = 0; p < clean.size(); ++p) {
    if (p != 0 && clean[p - 1] != '\n') continue;  // ^ in multiline mode
    if (p < resume) continue;
    std::size_t j = skip_space(clean, p);  // ^\s* may span blank lines, as the oracle
    if (clean.compare(j, 5, "using") != 0) continue;
    j += 5;
    std::size_t ws = j;
    j = skip_space(clean, j);
    if (j == ws) continue;
    if (clean.compare(j, 9, "namespace") != 0) continue;
    j += 9;
    ws = j;
    j = skip_space(clean, j);
    if (j == ws) continue;
    std::size_t name = j;
    while (j < clean.size() && (word_char(clean[j]) || clean[j] == ':')) ++j;
    if (j == name) continue;
    j = skip_space(clean, j);
    if (j >= clean.size() || clean[j] != ';') continue;
    out.push_back({f.path, line_of(clean, p), "header-using-ns",
                   "`using namespace` in a header leaks into every includer"});
    resume = j + 1;
  }
}

// ----------------------------------------------------- env-through-util

void check_env_through_util(const LexedFile& f, std::vector<Finding>& out) {
  if (f.path == "src/util/env.cpp") return;
  const std::string& clean = f.stripped;
  for (std::size_t p = clean.find("getenv"); p != std::string::npos;
       p = clean.find("getenv", p + 1)) {
    if (p + 6 < clean.size() && word_char(clean[p + 6])) continue;
    const std::size_t after = skip_space(clean, p + 6);
    if (after >= clean.size() || clean[after] != '(') continue;
    std::size_t start = 0;
    if (!match_std_prefixed(clean, p, &start)) continue;
    out.push_back({f.path, line_of(clean, start), "env-through-util",
                   "read environment through util::env_cstr / env_set / "
                   "env_positive_int (src/util/env.hpp)"});
  }
}

// ---------------------------------------------------- banned-identifier

struct Banned {
  const char* name;
  const char* why;
};
const std::array<Banned, 10> kBanned = {{
    {"tile_leakage_uw", "renamed: use power::tile_leakage() -> units::Microwatts"},
    {"rep_cp_delay_ps", "renamed: use DeviceModel::rep_cp_delay() -> units::Picoseconds"},
    {"expected_cp_delay_ps", "renamed: use DeviceModel::expected_cp_delay()"},
    {"tile_time_constant_s",
     "renamed: use ThermalGrid::tile_time_constant() -> units::Seconds"},
    {"peak_c", "renamed: use ThermalGrid::peak() -> units::Celsius"},
    {"atoi", "use util::env_positive_int or std::strtol with error handling"},
    {"atof", "use std::strtod with error handling"},
    {"gets", "unbounded read; use std::fgets"},
    {"strcpy", "unbounded copy; use std::snprintf or std::string"},
    {"tmpnam", "racy; use mkstemp-style APIs"},
}};

void check_banned_identifier(const LexedFile& f, std::vector<Finding>& out) {
  const std::string& clean = f.stripped;
  for (std::size_t p = 0; p < clean.size(); ++p) {
    if (!ident_start(clean[p]) || (p > 0 && word_char(clean[p - 1]))) continue;
    for (const Banned& b : kBanned) {
      if (!word_at(clean, p, b.name)) continue;
      const std::size_t after = skip_space(clean, p + std::strlen(b.name));
      if (after >= clean.size() || clean[after] != '(') continue;
      out.push_back({f.path, line_of(clean, p), "banned-identifier",
                     "`" + std::string(b.name) + "` is banned: " + b.why});
      break;
    }
  }
}

// ---------------------------------------------------- raw-serialization

void check_raw_serialization(const LexedFile& f, std::vector<Finding>& out) {
  if (f.path == "src/util/codec.hpp") return;
  const std::string& clean = f.stripped;
  for (const char* nm : {"fwrite", "fread"}) {
    for (std::size_t p = clean.find(nm); p != std::string::npos;
         p = clean.find(nm, p + 1)) {
      if (!word_at(clean, p, nm)) continue;
      const std::size_t after = skip_space(clean, p + std::strlen(nm));
      if (after >= clean.size() || clean[after] != '(') continue;
      std::size_t start = 0;
      if (!match_std_prefixed(clean, p, &start)) continue;
      out.push_back({f.path, line_of(clean, start), "raw-serialization",
                     "`" + std::string(nm) +
                         "` outside util/codec.hpp; serialize through "
                         "the versioned codec (util::codec::Encoder/Decoder)"});
    }
  }
  for (std::size_t p = clean.find("memcpy"); p != std::string::npos;
       p = clean.find("memcpy", p + 1)) {
    if (!word_at(clean, p, "memcpy")) continue;
    const std::size_t after = skip_space(clean, p + 6);
    if (after >= clean.size() || clean[after] != '(') continue;
    std::size_t start = 0;
    if (!match_std_prefixed(clean, p, &start)) continue;
    // [^;]*\bsizeof\b — sizeof as a word before the first ';' after the '('
    const std::size_t semi = clean.find(';', after + 1);
    const std::size_t limit = semi == std::string::npos ? clean.size() : semi;
    bool has_sizeof = false;
    for (std::size_t q = after + 1; q + 6 <= limit; ++q) {
      if (word_at(clean, q, "sizeof")) {
        has_sizeof = true;
        break;
      }
    }
    if (!has_sizeof) continue;
    out.push_back({f.path, line_of(clean, start), "raw-serialization",
                   "`memcpy` of a sizeof-ed object is a struct dump (host "
                   "padding/endianness); serialize through util/codec.hpp"});
  }
}

// ------------------------------------------------- thermal-backend-seam

const char* kThermalSeamMsg =
    "stencil backend internals reached around the ThermalGrid seam; "
    "select the backend via ThermalConfig::backend / "
    "TAF_THERMAL_BACKEND and use the ThermalGrid API";

// `#\s*include\s*` directly before offset `p`; sets the match start.
bool include_directive_before(const std::string& t, std::size_t p, std::size_t* start) {
  std::size_t q = p;
  while (q > 0 && space(t[q - 1])) --q;
  if (q < 7 || t.compare(q - 7, 7, "include") != 0) return false;
  q -= 7;
  while (q > 0 && space(t[q - 1])) --q;
  if (q == 0 || t[q - 1] != '#') return false;
  *start = q - 1;
  return true;
}

void check_thermal_backend_seam(const LexedFile& f, std::vector<Finding>& out) {
  if (starts_with(f.path, "src/thermal/")) return;
  const std::string& text = f.text;
  const char* inc = "\"thermal/stencil_solver.hpp\"";
  for (std::size_t p = text.find(inc); p != std::string::npos;
       p = text.find(inc, p + 1)) {
    std::size_t start = 0;
    if (!include_directive_before(text, p, &start)) continue;
    out.push_back({f.path, line_of(text, start), "thermal-backend-seam", kThermalSeamMsg});
  }
  const std::string& clean = f.stripped;
  static const std::array<const char*, 4> kSuffixes = {"Op", "Solver", "SolveInfo",
                                                       "Preconditioner"};
  for (std::size_t p = clean.find("Stencil"); p != std::string::npos;
       p = clean.find("Stencil", p + 1)) {
    if (p > 0 && word_char(clean[p - 1])) continue;
    for (const char* suf : kSuffixes) {
      const std::size_t len = std::strlen(suf);
      if (clean.compare(p + 7, len, suf) != 0) continue;
      if (p + 7 + len < clean.size() && word_char(clean[p + 7 + len])) continue;
      out.push_back(
          {f.path, line_of(clean, p), "thermal-backend-seam", kThermalSeamMsg});
      p += 7 + len - 1;  // non-overlapping: resume after the matched identifier
      break;
    }
  }
}

// -------------------------------------------------- service-socket-seam

const char* kSocketSeamMsg =
    "raw socket handling outside src/service/; use "
    "service::SocketListener / service::FrameClient (or the in-process "
    "GuardbandServer API) so framing and connection handling stay in "
    "one place";

const std::array<const char*, 8> kSocketCalls = {"socket", "accept",      "listen",
                                                 "connect", "bind",       "setsockopt",
                                                 "getsockname", "shutdown"};

void check_service_socket_seam(const LexedFile& f, std::vector<Finding>& out) {
  if (starts_with(f.path, "src/service/")) return;
  const std::string& text = f.text;
  // #include <sys/socket.h | sys/un.h | netinet/... | arpa/inet.h>
  for (std::size_t p = text.find('<'); p != std::string::npos;
       p = text.find('<', p + 1)) {
    std::size_t start = 0;
    if (!include_directive_before(text, p, &start)) continue;
    const std::size_t close = text.find('>', p + 1);
    if (close == std::string::npos) continue;
    const std::string hdr = text.substr(p + 1, close - p - 1);
    bool hit = hdr == "sys/socket.h" || hdr == "sys/un.h" || hdr == "arpa/inet.h";
    if (!hit && starts_with(hdr, "netinet/") && hdr.size() > 8) {
      hit = true;
      for (std::size_t q = 8; q < hdr.size(); ++q)
        if (!word_char(hdr[q]) && hdr[q] != '.') hit = false;
    }
    if (hit)
      out.push_back(
          {f.path, line_of(text, start), "service-socket-seam", kSocketSeamMsg});
  }
  const std::string& clean = f.stripped;
  std::size_t i = 0;
  while (i < clean.size()) {
    // alt 1: (?<![\w>])::\s*(socket|...)\s*\(
    if (clean[i] == ':' && i + 1 < clean.size() && clean[i + 1] == ':' &&
        !(i > 0 && (word_char(clean[i - 1]) || clean[i - 1] == '>'))) {
      const std::size_t nm = skip_space(clean, i + 2);
      for (const char* call : kSocketCalls) {
        const std::size_t len = std::strlen(call);
        if (clean.compare(nm, len, call) != 0) continue;
        const std::size_t paren = skip_space(clean, nm + len);
        if (paren >= clean.size() || clean[paren] != '(') continue;
        out.push_back(
            {f.path, line_of(clean, i), "service-socket-seam", kSocketSeamMsg});
        i = paren;  // resume after the match
        break;
      }
      ++i;
      continue;
    }
    // alt 2: \b(recv|send)\s*\(\s*\w*fd
    if (ident_start(clean[i]) && !(i > 0 && word_char(clean[i - 1]))) {
      for (const char* call : {"recv", "send"}) {
        const std::size_t len = std::strlen(call);
        if (clean.compare(i, len, call) != 0) continue;
        const std::size_t paren = skip_space(clean, i + len);
        if (paren >= clean.size() || clean[paren] != '(') continue;
        std::size_t a = skip_space(clean, paren + 1);
        std::size_t run_end = a;
        while (run_end < clean.size() && word_char(clean[run_end])) ++run_end;
        if (clean.substr(a, run_end - a).find("fd") == std::string::npos) continue;
        out.push_back(
            {f.path, line_of(clean, i), "service-socket-seam", kSocketSeamMsg});
        break;
      }
    }
    ++i;
  }
}

// ----------------------------------------------------- trace-codec-seam

void check_trace_codec_seam(const LexedFile& f, std::vector<Finding>& out) {
  if (f.path == "src/core/dynamic.hpp" || f.path == "src/core/dynamic.cpp") return;
  const std::string& text = f.text;  // format markers live in literals: scan raw
  const std::string magic = std::string("taf-") + "trace";
  const std::string kind = std::string("activity-") + "trace";
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '"') {
      ++i;
      continue;
    }
    std::size_t k = i + 1;
    while (k < text.size() && text[k] != '"' && text[k] != '\n') ++k;
    if (k >= text.size() || text[k] != '"') {
      i = k;
      continue;
    }
    const std::string span = text.substr(i + 1, k - i - 1);
    if (span.find(magic) != std::string::npos || span.find(kind) != std::string::npos) {
      out.push_back({f.path, line_of(text, i), "trace-codec-seam",
                     "hand-built ActivityTrace format bytes outside "
                     "core/dynamic; round-trip through ActivityTrace::"
                     "to_text/parse_text/to_envelope/from_envelope"});
      i = k + 1;  // the match consumed both quotes
    } else {
      ++i;
    }
  }
}

// ------------------------------------------------------- place-cost-seam

const char* kPlaceCostSeamMsg =
    "placer cost-model internals reached around the src/place/ seam; "
    "compose costs via PlaceOptions::thermal / refine_placement "
    "instead of touching CostModel directly";

void check_place_cost_seam(const LexedFile& f, std::vector<Finding>& out) {
  if (starts_with(f.path, "src/place/")) return;
  const std::string& text = f.text;
  const char* inc = "\"place/cost_model.hpp\"";
  for (std::size_t p = text.find(inc); p != std::string::npos;
       p = text.find(inc, p + 1)) {
    std::size_t start = 0;
    if (!include_directive_before(text, p, &start)) continue;
    out.push_back({f.path, line_of(text, start), "place-cost-seam", kPlaceCostSeamMsg});
  }
  const std::string& clean = f.stripped;
  // \b(?:CostModel|NetBox|q_factor)\b — alternatives tried in order at each
  // position; the Python scan is non-overlapping, so resume after a match.
  static const std::array<const char*, 3> kIdents = {"CostModel", "NetBox",
                                                     "q_factor"};
  std::size_t i = 0;
  while (i < clean.size()) {
    if (!ident_start(clean[i]) || (i > 0 && word_char(clean[i - 1]))) {
      ++i;
      continue;
    }
    bool matched = false;
    for (const char* id : kIdents) {
      const std::size_t len = std::strlen(id);
      if (clean.compare(i, len, id) != 0) continue;
      if (i + len < clean.size() && word_char(clean[i + len])) continue;
      out.push_back({f.path, line_of(clean, i), "place-cost-seam", kPlaceCostSeamMsg});
      i += len;  // non-overlapping: resume after the matched identifier
      matched = true;
      break;
    }
    if (!matched) ++i;
  }
}

}  // namespace

void run_seam_rules(const LexedFile& f, const std::vector<std::string>& rules,
                    std::vector<Finding>& findings) {
  if (want(rules, "unit-typed-api")) check_unit_typed_api(f, findings);
  if (want(rules, "printf-sized-int")) check_printf_sized_int(f, findings);
  if (want(rules, "header-using-ns")) check_header_using_ns(f, findings);
  if (want(rules, "env-through-util")) check_env_through_util(f, findings);
  if (want(rules, "banned-identifier")) check_banned_identifier(f, findings);
  if (want(rules, "raw-serialization")) check_raw_serialization(f, findings);
  if (want(rules, "thermal-backend-seam")) check_thermal_backend_seam(f, findings);
  if (want(rules, "service-socket-seam")) check_service_socket_seam(f, findings);
  if (want(rules, "trace-codec-seam")) check_trace_codec_seam(f, findings);
  if (want(rules, "place-cost-seam")) check_place_cost_seam(f, findings);
}

}  // namespace taf::analyze

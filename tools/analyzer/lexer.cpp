#include "analyzer/lexer.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace taf::analyze {

namespace {

bool word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_';
}
bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool digit(char c) { return c >= '0' && c <= '9'; }
bool space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}

// True when the maximal identifier run ending just before `quote` is one
// of the raw-string literal prefixes. `R"x"` is raw; `FOOR"x"` is an
// identifier followed by an ordinary string.
bool raw_prefix_before(const std::string& t, std::size_t quote, std::size_t* run_start) {
  std::size_t rs = quote;
  while (rs > 0 && word_char(t[rs - 1])) --rs;
  const std::size_t len = quote - rs;
  if (len == 0 || len > 3) return false;
  const char* p = t.data() + rs;
  const bool is_prefix = (len == 1 && p[0] == 'R') ||
                         (len == 2 && (p[0] == 'u' || p[0] == 'L' || p[0] == 'U') && p[1] == 'R') ||
                         (len == 3 && p[0] == 'u' && p[1] == '8' && p[2] == 'R');
  if (is_prefix && run_start) *run_start = rs;
  return is_prefix;
}

// `i` points at the opening quote of a raw string (after the prefix).
// Returns one past the closing quote (or text.size() when unterminated).
std::size_t raw_string_end(const std::string& t, std::size_t i) {
  const std::size_t n = t.size();
  ++i;  // opening quote
  std::string delim;
  while (i < n && t[i] != '(' && t[i] != '\n' && delim.size() < 16) delim += t[i++];
  if (i < n && t[i] == '(') ++i;
  const std::string term = ")" + delim + "\"";
  const std::size_t at = t.find(term, i);
  return at == std::string::npos ? n : at + term.size();
}

// The (fixed) taf-lint strip_comments state machine: comments and literal
// contents become spaces; newlines, quote characters, and all code stay.
// Raw strings blank everything between the outer quotes; escape sequences
// blank both characters but keep an escaped newline as a newline.
std::string strip(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  const std::size_t n = text.size();
  char state = 0;  // 0 code, 1 line comment, 2 block comment, '"' or '\'' literal
  while (i < n) {
    const char ch = text[i];
    const char nxt = i + 1 < n ? text[i + 1] : '\0';
    if (state == 0) {
      if (ch == '/' && nxt == '/') {
        state = 1;
        out += "  ";
        i += 2;
        continue;
      }
      if (ch == '/' && nxt == '*') {
        state = 2;
        out += "  ";
        i += 2;
        continue;
      }
      if (ch == '"' && raw_prefix_before(text, i, nullptr)) {
        const std::size_t end = raw_string_end(text, i);
        out += '"';
        for (std::size_t j = i + 1; j + 1 < end; ++j) out += text[j] == '\n' ? '\n' : ' ';
        if (end > i + 1) out += '"';
        i = end;
        continue;
      }
      if (ch == '"' || ch == '\'') {
        state = ch;
        out += ch;
        ++i;
        continue;
      }
      out += ch;
      ++i;
      continue;
    }
    if (state == 1) {  // line comment
      if (ch == '\n') {
        state = 0;
        out += ch;
      } else {
        out += ' ';
      }
      ++i;
      continue;
    }
    if (state == 2) {  // block comment
      if (ch == '*' && nxt == '/') {
        state = 0;
        out += "  ";
        i += 2;
        continue;
      }
      out += ch == '\n' ? '\n' : ' ';
      ++i;
      continue;
    }
    // inside a string/char literal
    if (ch == '\\') {
      out += ' ';
      out += nxt == '\n' ? '\n' : ' ';
      i += 2;
      continue;
    }
    if (ch == state) state = 0;
    out += (ch == '\n' || ch == '"' || ch == '\'') ? ch : ' ';
    ++i;
  }
  return out;
}

const std::array<const char*, 20> kTwoCharOps = {
    "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

}  // namespace

bool LexedFile::tok_is(std::size_t i, const char* s) const {
  if (i >= tokens.size()) return false;
  const Token& t = tokens[i];
  const std::size_t len = std::strlen(s);
  return t.end - t.begin == len && text.compare(t.begin, len, s) == 0;
}

bool LexedFile::tok_is(std::size_t i, Tok kind, const char* s) const {
  return i < tokens.size() && tokens[i].kind == kind && tok_is(i, s);
}

int line_of(const std::string& text, std::size_t off) {
  off = std::min(off, text.size());
  return static_cast<int>(std::count(text.begin(), text.begin() + static_cast<long>(off),
                                     '\n')) +
         1;
}

LexedFile lex(std::string path, std::string text) {
  LexedFile f;
  f.path = std::move(path);
  f.text = std::move(text);
  f.stripped = strip(f.text);
  const std::string& t = f.text;
  const std::size_t n = t.size();
  std::size_t i = 0;
  int line = 1;
  bool bol = true;  // only whitespace seen since the last newline

  auto push = [&](Tok kind, int ln, std::size_t b, std::size_t e) {
    f.tokens.push_back(Token{kind, ln, b, e});
    bol = false;
  };
  auto count_lines = [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j)
      if (t[j] == '\n') ++line;
  };

  while (i < n) {
    const char c = t[i];
    const char nx = i + 1 < n ? t[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      bol = true;
      ++i;
      continue;
    }
    if (space(c)) {
      ++i;
      continue;
    }
    if (c == '/' && nx == '/') {
      while (i < n && t[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && nx == '*') {
      i += 2;
      while (i < n && !(t[i] == '*' && i + 1 < n && t[i + 1] == '/')) {
        if (t[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    if (c == '#' && bol) {  // one logical preprocessor line
      const std::size_t b = i;
      const int ln = line;
      while (i < n) {
        if (t[i] == '\\' && i + 1 < n && t[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (t[i] == '\n') break;
        ++i;
      }
      push(Tok::Preproc, ln, b, i);
      continue;
    }
    if (c == '"' || c == '\'') {
      const std::size_t b = i;
      const int ln = line;
      const char q = c;
      ++i;
      while (i < n) {
        if (t[i] == '\\') {
          if (i + 1 < n && t[i + 1] == '\n') ++line;
          i = i + 2 <= n ? i + 2 : n;
          continue;
        }
        if (t[i] == q) {
          ++i;
          break;
        }
        if (t[i] == '\n') ++line;  // unterminated on this line; keep scanning
        ++i;
      }
      push(q == '"' ? Tok::Str : Tok::Chr, ln, b, i);
      continue;
    }
    if (digit(c) || (c == '.' && digit(nx))) {
      const std::size_t b = i;
      const int ln = line;
      ++i;
      while (i < n) {
        const char d = t[i];
        if (word_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (t[i - 1] == 'e' || t[i - 1] == 'E' || t[i - 1] == 'p' ||
                    t[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      push(Tok::Number, ln, b, i);
      continue;
    }
    if (ident_start(c)) {
      const std::size_t b = i;
      const int ln = line;
      while (i < n && word_char(t[i])) ++i;
      std::size_t rs = 0;
      if (i < n && t[i] == '"' && raw_prefix_before(t, i, &rs) && rs == b) {
        const std::size_t e = raw_string_end(t, i);
        count_lines(i, e);
        push(Tok::Str, ln, b, e);  // one Str token covering prefix + raw string
        i = e;
        continue;
      }
      push(Tok::Ident, ln, b, i);
      continue;
    }
    // punctuator: prefer joined two-char operators
    bool joined = false;
    for (const char* op : kTwoCharOps) {
      if (c == op[0] && nx == op[1]) {
        push(Tok::Punct, line, i, i + 2);
        i += 2;
        joined = true;
        break;
      }
    }
    if (!joined) {
      push(Tok::Punct, line, i, i + 1);
      ++i;
    }
  }
  return f;
}

}  // namespace taf::analyze

// taf-analyze driver: file collection, suppression handling, deterministic
// reporting, and the CLI surface. Output is a pure function of the input
// file set — findings are sorted by (path, line, rule, message), the file
// list is sorted and de-duplicated, and no clocks, locale, or pointer
// values feed the report — so two runs (or a shuffled argument order)
// produce byte-identical output; tests pin this.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "analyzer/analyzer.hpp"

namespace taf::analyze {

namespace fs = std::filesystem;

bool operator<(const Finding& a, const Finding& b) {
  return std::tie(a.path, a.line, a.rule, a.message) <
         std::tie(b.path, b.line, b.rule, b.message);
}
bool operator==(const Finding& a, const Finding& b) {
  return a.path == b.path && a.line == b.line && a.rule == b.rule &&
         a.message == b.message;
}

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "unit-typed-api",    "printf-sized-int",      "header-using-ns",
      "env-through-util",  "banned-identifier",     "raw-serialization",
      "thermal-backend-seam", "service-socket-seam", "trace-codec-seam",
      "place-cost-seam",
      "lock-order-cycle",  "blocking-while-locked", "unordered-iteration",
      "wall-clock",        "raw-random",            "pointer-keyed-container",
  };
  return kRules;
}

std::vector<Finding> analyze_sources(const std::vector<SourceFile>& sources,
                                     const std::vector<std::string>& rules) {
  std::vector<Finding> findings;
  std::vector<LockEdge> edges;
  for (const SourceFile& src : sources) {
    const LexedFile lexed = lex(src.path, src.text);
    run_seam_rules(lexed, rules, findings);
    run_determinism_rules(lexed, rules, findings);
    std::vector<LockEdge> file_edges = run_lock_rules(lexed, rules, findings);
    edges.insert(edges.end(), file_edges.begin(), file_edges.end());
  }
  std::sort(edges.begin(), edges.end(), [](const LockEdge& a, const LockEdge& b) {
    return std::tie(a.path, a.line, a.held, a.acquired) <
           std::tie(b.path, b.line, b.held, b.acquired);
  });
  report_lock_cycles(edges, findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

// ---------------------------------------------------------- suppressions

std::vector<Suppression> parse_suppressions(const std::string& text) {
  std::vector<Suppression> out;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string entry = raw.substr(0, raw.find('#'));
    std::size_t b = entry.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) continue;
    std::size_t e = entry.find_last_not_of(" \t\r\n");
    entry = entry.substr(b, e - b + 1);
    Suppression s;
    s.line = lineno;
    s.entry = entry;
    const std::size_t c1 = entry.find(':');
    if (c1 == std::string::npos) {
      s.glob = entry;
      s.rule = "*";
    } else {
      s.glob = entry.substr(0, c1);
      const std::size_t c2 = entry.find(':', c1 + 1);
      if (c2 == std::string::npos) {
        s.rule = entry.substr(c1 + 1);
      } else {
        s.rule = entry.substr(c1 + 1, c2 - c1 - 1);
        s.substr = entry.substr(c2 + 1);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

// fnmatch-style glob: '*' matches any run (including '/'), '?' any single
// character, [seq] / [!seq] character classes with ranges.
bool glob_match(const std::string& pattern, const std::string& s) {
  const std::size_t np = pattern.size(), ns = s.size();
  std::size_t p = 0, i = 0, star_p = std::string::npos, star_i = 0;
  while (i < ns) {
    if (p < np) {
      const char pc = pattern[p];
      if (pc == '*') {
        star_p = p++;
        star_i = i;
        continue;
      }
      if (pc == '?') {
        ++p;
        ++i;
        continue;
      }
      if (pc == '[') {
        std::size_t q = p + 1;
        bool negate = false;
        if (q < np && (pattern[q] == '!' || pattern[q] == '^')) {
          negate = true;
          ++q;
        }
        bool hit = false;
        bool first = true;
        while (q < np && (first || pattern[q] != ']')) {
          if (q + 2 < np && pattern[q + 1] == '-' && pattern[q + 2] != ']') {
            if (pattern[q] <= s[i] && s[i] <= pattern[q + 2]) hit = true;
            q += 3;
          } else {
            if (pattern[q] == s[i]) hit = true;
            ++q;
          }
          first = false;
        }
        if (q < np && pattern[q] == ']' && (hit != negate)) {
          p = q + 1;
          ++i;
          continue;
        }
      } else if (pc == s[i]) {
        ++p;
        ++i;
        continue;
      }
    }
    if (star_p != std::string::npos) {  // backtrack: let '*' eat one more char
      p = star_p + 1;
      i = ++star_i;
      continue;
    }
    return false;
  }
  while (p < np && pattern[p] == '*') ++p;
  return p == np;
}

bool suppression_matches(const Suppression& s, const Finding& f) {
  if (!glob_match(s.glob, f.path)) return false;
  if (s.rule != "*" && s.rule != f.rule) return false;
  if (!s.substr.empty() && f.message.find(s.substr) == std::string::npos) return false;
  return true;
}

// ------------------------------------------------------------------ CLI

namespace {

const std::vector<std::string>& default_dirs() {
  static const std::vector<std::string> kDirs = {"src", "bench", "tests", "examples"};
  return kDirs;
}

bool has_source_ext(const std::string& name) {
  for (const char* ext : {".cpp", ".hpp", ".h", ".cc"}) {
    const std::string e = ext;
    if (name.size() >= e.size() &&
        name.compare(name.size() - e.size(), e.size(), e) == 0)
      return true;
  }
  return false;
}

std::string pad_right(const std::string& s, std::size_t width) {
  std::string out = s;
  while (out.size() < width) out += ' ';
  return out;
}
std::string pad_left(const std::string& s, std::size_t width) {
  std::string out = s;
  while (out.size() < width) out.insert(out.begin(), ' ');
  return out;
}

}  // namespace

CliResult run_cli(const CliOptions& opts) {
  CliResult res;
  if (opts.list_rules) {
    for (const std::string& r : all_rules()) res.out += r + "\n";
    return res;
  }
  const fs::path root = opts.root.empty() ? fs::path(".") : fs::path(opts.root);

  // ----------------------------------------------------- collect files
  std::vector<std::string> paths = opts.paths;
  if (paths.empty()) {
    for (const std::string& d : default_dirs())
      if (fs::is_directory(root / d)) paths.push_back(d);
  } else {
    for (const std::string& p : paths) {
      if (!fs::exists(root / p)) {
        res.err = "taf-analyze: cannot read " + p + ": no such file or directory\n";
        res.exit_code = 2;
        return res;
      }
    }
  }
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path full = root / p;
    if (fs::is_regular_file(full)) {
      files.push_back(fs::path(p).generic_string());
      continue;
    }
    std::error_code ec;
    for (fs::recursive_directory_iterator it(full, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const std::string name = it->path().filename().string();
      if (!has_source_ext(name)) continue;
      files.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) {
      res.err = "taf-analyze: cannot read " + rel + ": open failed\n";
      res.exit_code = 2;
      return res;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      res.err = "taf-analyze: cannot read " + rel + ": read failed\n";
      res.exit_code = 2;
      return res;
    }
    sources.push_back({rel, buf.str()});
  }

  // ----------------------------------------------------------- analyze
  const std::vector<std::string> rule_filter = opts.prune ? std::vector<std::string>{}
                                                          : opts.rules;
  const std::vector<Finding> findings = analyze_sources(sources, rule_filter);

  std::vector<Suppression> suppressions;
  {
    std::ifstream in(root / "tools" / "taf-lint.suppressions", std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      suppressions = parse_suppressions(buf.str());
    }
  }

  // ------------------------------------------- prune-suppressions mode
  if (opts.prune) {
    std::vector<bool> live(suppressions.size(), false);
    for (const Finding& f : findings)
      for (std::size_t k = 0; k < suppressions.size(); ++k)
        if (!live[k] && suppression_matches(suppressions[k], f)) live[k] = true;
    std::size_t stale = 0;
    for (std::size_t k = 0; k < suppressions.size(); ++k) {
      if (live[k]) continue;
      ++stale;
      res.out += "taf-analyze: stale suppression (tools/taf-lint.suppressions:" +
                 std::to_string(suppressions[k].line) + "): " + suppressions[k].entry +
                 "\n";
    }
    res.err = stale ? "taf-analyze: " + std::to_string(stale) +
                          " stale suppression entry(ies) of " +
                          std::to_string(suppressions.size()) + "\n"
                    : "taf-analyze: suppressions all live (" +
                          std::to_string(suppressions.size()) + " entries)\n";
    return res;
  }

  // -------------------------------------------------- report findings
  std::map<std::string, std::pair<std::size_t, std::size_t>> per_rule;
  const std::vector<std::string>& enabled =
      opts.rules.empty() ? all_rules() : opts.rules;
  for (const std::string& r : enabled) per_rule[r] = {0, 0};

  std::size_t visible = 0, hidden = 0;
  for (const Finding& f : findings) {
    bool is_suppressed = false;
    if (opts.use_suppressions) {
      for (const Suppression& s : suppressions)
        if (suppression_matches(s, f)) {
          is_suppressed = true;
          break;
        }
    }
    auto& counts = per_rule[f.rule];
    if (is_suppressed) {
      ++hidden;
      ++counts.second;
      continue;
    }
    ++visible;
    ++counts.first;
    if (opts.compat) {
      res.out += f.path + ":" + std::to_string(f.line) + ":" + f.rule + "\n";
    } else {
      res.out +=
          f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message + "\n";
    }
  }

  if (opts.summary) {
    res.err += "taf-analyze: " + pad_right("rule", 26) + pad_left("findings", 10) +
               pad_left("suppressed", 12) + "\n";
    for (const std::string& r : all_rules()) {
      const auto it = per_rule.find(r);
      if (it == per_rule.end()) continue;
      res.err += "taf-analyze: " + pad_right(r, 26) +
                 pad_left(std::to_string(it->second.first), 10) +
                 pad_left(std::to_string(it->second.second), 12) + "\n";
    }
  }
  res.err += visible ? "taf-analyze: " + std::to_string(visible) + " finding(s) (" +
                           std::to_string(hidden) + " suppressed) over " +
                           std::to_string(files.size()) + " file(s)\n"
                     : "taf-analyze: clean (" + std::to_string(hidden) +
                           " suppressed) over " + std::to_string(files.size()) +
                           " file(s)\n";
  res.exit_code = visible ? 1 : 0;
  return res;
}

}  // namespace taf::analyze

#pragma once
// Small token-walking helpers shared by the token-level rule families
// (rules_determinism.cpp, rules_concurrency.cpp). Internal to the
// analyzer; not part of its public surface.

#include <cstddef>
#include <string>
#include <vector>

#include "analyzer/lexer.hpp"

namespace taf::analyze::detail {

inline bool tok_text_is(const LexedFile& f, std::size_t i, const char* s) {
  return f.tok_is(i, s);
}

/// Index one past the matching closer for the opener token at `i`
/// ("(" / "[" / "{"); tokens.size() when unbalanced.
inline std::size_t match_close(const LexedFile& f, std::size_t i, const char* open,
                               const char* close) {
  int depth = 0;
  for (; i < f.tokens.size(); ++i) {
    if (f.tok_is(i, open)) ++depth;
    if (f.tok_is(i, close)) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return f.tokens.size();
}

/// Index one past the ">" closing a template argument list whose "<" is at
/// `i`; counts a ">>" token as two closers. tokens.size() when unbalanced.
inline std::size_t match_template_close(const LexedFile& f, std::size_t i) {
  int depth = 0;
  for (; i < f.tokens.size(); ++i) {
    if (f.tok_is(i, "<")) {
      ++depth;
    } else if (f.tok_is(i, "<<")) {
      depth += 2;
    } else if (f.tok_is(i, ">")) {
      if (--depth <= 0) return i + 1;
    } else if (f.tok_is(i, ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (f.tok_is(i, ";")) {
      return i;  // statement end before balance: treat as unterminated
    }
  }
  return f.tokens.size();
}

/// Join token texts [b, e) compactly: a space only where two word-ish
/// tokens would otherwise fuse.
inline std::string join_tokens(const LexedFile& f, std::size_t b, std::size_t e) {
  auto wordish = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_';
  };
  std::string out;
  for (std::size_t i = b; i < e && i < f.tokens.size(); ++i) {
    const std::string t = f.tok(f.tokens[i]);
    if (!out.empty() && !t.empty() && wordish(out.back()) && wordish(t.front()))
      out += ' ';
    out += t;
  }
  return out;
}

inline bool rule_wanted(const std::vector<std::string>& rules, const char* name) {
  if (rules.empty()) return true;
  for (const std::string& r : rules)
    if (r == name) return true;
  return false;
}

inline bool path_starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace taf::analyze::detail

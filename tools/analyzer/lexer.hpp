#pragma once
// taf-analyze lexer — a single tokenizer shared by every rule family.
//
// Lexes one C++ translation unit into a flat token stream (identifiers,
// numbers, string/char literals including raw strings, punctuators, and
// logical preprocessor lines) with byte offsets and 1-based line numbers.
// From the same pass it derives a "stripped" view of the text — comments
// and literal *contents* blanked to spaces, quotes and newlines kept —
// with exactly the semantics of taf-lint's (fixed) strip_comments, so the
// ten ported seam rules can run char-level scans that agree with the
// Python oracle byte for byte. Token-level rules (lock discipline,
// determinism) walk `tokens` instead. DESIGN.md section 14.

#include <cstddef>
#include <string>
#include <vector>

namespace taf::analyze {

enum class Tok {
  Ident,    // identifiers and keywords
  Number,   // integer / floating literals (incl. digit separators)
  Str,      // string literal, incl. raw strings (span covers the quotes)
  Chr,      // character literal
  Punct,    // punctuator; multi-char operators are one token (::, ->, ...)
  Preproc,  // one logical preprocessor line (backslash continuations joined)
};

struct Token {
  Tok kind;
  int line;            // 1-based line of the token's first character
  std::size_t begin;   // byte offset into LexedFile::text
  std::size_t end;     // one past the last byte
};

struct LexedFile {
  std::string path;     // repo-relative, forward slashes
  std::string text;     // raw bytes as read
  std::string stripped; // same length as text; see file comment
  std::vector<Token> tokens;

  std::string tok(const Token& t) const { return text.substr(t.begin, t.end - t.begin); }
  bool tok_is(std::size_t i, const char* s) const;
  bool tok_is(std::size_t i, Tok kind, const char* s) const;
};

/// Lex `text` (and derive the stripped view). Never fails: unterminated
/// constructs lex to end of file.
LexedFile lex(std::string path, std::string text);

/// 1-based line number of byte offset `off` in `text`.
int line_of(const std::string& text, std::size_t off);

}  // namespace taf::analyze

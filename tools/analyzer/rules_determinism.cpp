// Determinism rule family (DESIGN.md section 14). The project's core
// output contract is byte-identical stdout and bit-identical artifacts
// across backends, pool sizes, and restarts; these rules flag the four
// classic ways C++ code silently breaks that: iterating a hash container
// into an output/serialization/hash sink (or an order-dependent argmax),
// reading wall clocks outside the sanctioned timing seams, unseeded
// standard randomness, and ordered containers keyed by raw pointers
// (allocation order).

#include <array>
#include <set>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "analyzer/token_scan.hpp"

namespace taf::analyze {

namespace {

using detail::join_tokens;
using detail::match_close;
using detail::match_template_close;
using detail::path_starts_with;
using detail::rule_wanted;

const std::array<const char*, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

// Output / serialization / hash sinks: an unordered iteration order that
// reaches one of these becomes externally visible.
const std::array<const char*, 18> kSinkIdents = {
    "printf",    "fprintf",      "sprintf",   "snprintf", "vprintf",  "vfprintf",
    "vsnprintf", "puts",         "fputs",     "fputc",    "putchar",  "cout",
    "cerr",      "Encoder",      "Fnv1a",     "fnv1a_bytes", "to_text", "to_envelope"};
const std::array<const char*, 4> kAccumSinks = {"RunReport", "serialize", "push_back",
                                                "emplace_back"};

bool ident_in(const LexedFile& f, std::size_t i, const char* const* names,
              std::size_t count) {
  if (i >= f.tokens.size() || f.tokens[i].kind != Tok::Ident) return false;
  for (std::size_t k = 0; k < count; ++k)
    if (f.tok_is(i, names[k])) return true;
  return false;
}

// Names declared (member/local/param) with an unordered container type in
// this file. Scope-insensitive by design: a false shadow is unlikely and
// the worst case is a reviewed suppression.
std::set<std::string> unordered_decl_names(const LexedFile& f) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
    if (f.tokens[i].kind != Tok::Ident) continue;
    bool is_unordered = false;
    for (const char* t : kUnorderedTypes) is_unordered = is_unordered || f.tok_is(i, t);
    if (!is_unordered || !f.tok_is(i + 1, "<")) continue;
    std::size_t j = match_template_close(f, i + 1);
    while (j < f.tokens.size() &&
           (f.tok_is(j, "&") || f.tok_is(j, "*") || f.tok_is(j, "const")))
      ++j;
    if (j < f.tokens.size() && f.tokens[j].kind == Tok::Ident)
      names.insert(f.tok(f.tokens[j]));
  }
  return names;
}

struct RangeFor {
  std::size_t for_tok = 0;    // index of the `for` token
  std::size_t body_begin = 0; // first token of the body
  std::size_t body_end = 0;   // one past the last body token
  std::string base;           // last identifier of the range expression
};

// Parse `for ( decl : expr ) body` at token `i` (which is `for`). The
// range expression must be a pure identifier chain (a.b->c); anything
// else (calls, casts, sorted copies) is out of scope for the rule.
bool parse_range_for(const LexedFile& f, std::size_t i, RangeFor& out) {
  if (!f.tok_is(i, "for") || !f.tok_is(i + 1, "(")) return false;
  const std::size_t close = match_close(f, i + 1, "(", ")");
  if (close >= f.tokens.size()) return false;
  int depth = 0;
  std::size_t colon = 0;
  for (std::size_t j = i + 2; j + 1 < close; ++j) {
    if (f.tok_is(j, "(") || f.tok_is(j, "[") || f.tok_is(j, "{")) ++depth;
    if (f.tok_is(j, ")") || f.tok_is(j, "]") || f.tok_is(j, "}")) --depth;
    if (depth) continue;
    if (f.tok_is(j, ";")) return false;  // classic three-clause for
    if (f.tok_is(j, ":") && !colon) colon = j;
  }
  if (!colon) return false;
  std::string base;
  for (std::size_t j = colon + 1; j + 1 < close; ++j) {
    const Token& t = f.tokens[j];
    if (t.kind == Tok::Ident) {
      base = f.tok(t);
    } else if (!(f.tok_is(j, ".") || f.tok_is(j, "->") || f.tok_is(j, "::"))) {
      return false;  // not a pure identifier chain
    }
  }
  if (base.empty()) return false;
  out.for_tok = i;
  out.base = base;
  if (f.tok_is(close, "{")) {
    out.body_begin = close + 1;
    out.body_end = match_close(f, close, "{", "}");
  } else {  // single statement: up to the terminating `;` at depth 0
    std::size_t j = close;
    int d = 0;
    while (j < f.tokens.size()) {
      if (f.tok_is(j, "(") || f.tok_is(j, "[") || f.tok_is(j, "{")) ++d;
      if (f.tok_is(j, ")") || f.tok_is(j, "]") || f.tok_is(j, "}")) --d;
      if (d == 0 && f.tok_is(j, ";")) break;
      ++j;
    }
    out.body_begin = close;
    out.body_end = j;
  }
  return true;
}

// One past the `}` closing the scope the loop lives in (for the
// intervening-sort escape: a sort anywhere later in the same scope).
std::size_t enclosing_scope_end(const LexedFile& f, std::size_t from) {
  int depth = 0;
  for (std::size_t j = from; j < f.tokens.size(); ++j) {
    if (f.tok_is(j, "{")) ++depth;
    if (f.tok_is(j, "}")) {
      if (depth == 0) return j;
      --depth;
    }
  }
  return f.tokens.size();
}

bool has_sink(const LexedFile& f, std::size_t b, std::size_t e) {
  for (std::size_t j = b; j < e && j < f.tokens.size(); ++j) {
    if (f.tokens[j].kind != Tok::Ident) continue;
    if (ident_in(f, j, kSinkIdents.data(), kSinkIdents.size())) return true;
    if (ident_in(f, j, kAccumSinks.data(), kAccumSinks.size())) return true;
  }
  return false;
}

bool has_sort(const LexedFile& f, std::size_t b, std::size_t e) {
  for (std::size_t j = b; j < e && j < f.tokens.size(); ++j)
    if (f.tok_is(j, Tok::Ident, "sort") || f.tok_is(j, Tok::Ident, "stable_sort"))
      return true;
  return false;
}

// `if (<relational compare>) ... = ...` inside the body: the shape of an
// argmax/selection whose tie-break depends on iteration order.
bool has_order_dependent_selection(const LexedFile& f, std::size_t b, std::size_t e) {
  for (std::size_t j = b; j < e && j < f.tokens.size(); ++j) {
    if (!f.tok_is(j, Tok::Ident, "if") || !f.tok_is(j + 1, "(")) continue;
    const std::size_t cond_end = match_close(f, j + 1, "(", ")");
    if (cond_end > e) continue;
    bool relational = false;
    for (std::size_t k = j + 2; k + 1 < cond_end; ++k) {
      if (f.tokens[k].kind != Tok::Punct) continue;
      if (f.tok_is(k, "<") || f.tok_is(k, ">") || f.tok_is(k, "<=") || f.tok_is(k, ">="))
        relational = true;
    }
    if (!relational) continue;
    std::size_t stmt_end;
    if (f.tok_is(cond_end, "{")) {
      stmt_end = match_close(f, cond_end, "{", "}");
    } else {
      stmt_end = cond_end;
      while (stmt_end < e && !f.tok_is(stmt_end, ";")) ++stmt_end;
    }
    for (std::size_t k = cond_end; k < stmt_end && k < e; ++k) {
      if (f.tokens[k].kind != Tok::Punct) continue;
      if (f.tok_is(k, "=") || f.tok_is(k, "+=") || f.tok_is(k, "-=") ||
          f.tok_is(k, "*=") || f.tok_is(k, "/="))
        return true;
    }
  }
  return false;
}

void check_unordered_iteration(const LexedFile& f, std::vector<Finding>& out) {
  const std::set<std::string> unordered = unordered_decl_names(f);
  if (unordered.empty()) return;
  for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
    RangeFor loop;
    if (!parse_range_for(f, i, loop)) continue;
    if (!unordered.count(loop.base)) continue;
    const std::size_t scope_end = enclosing_scope_end(f, loop.body_end);
    const bool sink = has_sink(f, loop.body_begin, loop.body_end);
    const bool sorted_later = has_sort(f, loop.body_begin, scope_end);
    const bool selection =
        has_order_dependent_selection(f, loop.body_begin, loop.body_end);
    if (sink && !sorted_later) {
      out.push_back({f.path, f.tokens[loop.for_tok].line, "unordered-iteration",
                     "range-for over unordered container `" + loop.base +
                         "` reaches an output/serialization/hash sink; iterate a "
                         "sorted materialization so the emitted order is "
                         "deterministic"});
    } else if (selection) {
      out.push_back({f.path, f.tokens[loop.for_tok].line, "unordered-iteration",
                     "range-for over unordered container `" + loop.base +
                         "` drives an order-dependent selection (relational compare "
                         "+ assignment); iterate a sorted materialization so ties "
                         "break deterministically"});
    }
  }
}

// ------------------------------------------------------------ wall-clock

const std::array<const char*, 11> kClockIdents = {
    "system_clock", "steady_clock", "high_resolution_clock", "clock_gettime",
    "gettimeofday", "localtime",    "gmtime",                "mktime",
    "ctime",        "asctime",      "timespec_get"};

void check_wall_clock(const LexedFile& f, std::vector<Finding>& out) {
  if (f.path == "src/util/timer.hpp" || path_starts_with(f.path, "src/runner/") ||
      path_starts_with(f.path, "bench/"))
    return;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tokens[i].kind != Tok::Ident) continue;
    std::string what;
    if (ident_in(f, i, kClockIdents.data(), kClockIdents.size())) {
      what = f.tok(f.tokens[i]);
    } else if (f.tok_is(i, "time") && i > 0 && f.tok_is(i - 1, "::") &&
               f.tok_is(i + 1, "(")) {
      what = "time";
    }
    if (what.empty()) continue;
    out.push_back({f.path, f.tokens[i].line, "wall-clock",
                   "wall-clock source `" + what +
                       "` outside the runner/bench timing seam; route timing "
                       "through util::Stopwatch (src/util/timer.hpp) so replays "
                       "stay deterministic"});
  }
}

// ------------------------------------------------------------ raw-random

const std::array<const char*, 11> kRandomTypes = {
    "random_device", "mt19937",     "mt19937_64",   "minstd_rand",
    "minstd_rand0",  "default_random_engine",       "knuth_b",
    "ranlux24",      "ranlux48",    "ranlux24_base", "ranlux48_base"};
const std::array<const char*, 7> kRandomCalls = {"rand",    "srand",   "drand48",
                                                 "srand48", "lrand48", "mrand48",
                                                 "rand_r"};

void check_raw_random(const LexedFile& f, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tokens[i].kind != Tok::Ident) continue;
    const bool member = i > 0 && (f.tok_is(i - 1, ".") || f.tok_is(i - 1, "->"));
    std::string what;
    if (ident_in(f, i, kRandomTypes.data(), kRandomTypes.size()) && !member) {
      what = f.tok(f.tokens[i]);
    } else if (ident_in(f, i, kRandomCalls.data(), kRandomCalls.size()) && !member &&
               f.tok_is(i + 1, "(")) {
      what = f.tok(f.tokens[i]);
    }
    if (what.empty()) continue;
    out.push_back({f.path, f.tokens[i].line, "raw-random",
                   "raw random source `" + what +
                       "`; use the seeded util::Rng (PCG32, src/util/rng.hpp) so "
                       "runs replay bit-identically"});
  }
}

// ------------------------------------------- pointer-keyed-container

const std::array<const char*, 4> kOrderedTypes = {"map", "set", "multimap", "multiset"};

void check_pointer_keyed(const LexedFile& f, std::vector<Finding>& out) {
  for (std::size_t i = 2; i + 1 < f.tokens.size(); ++i) {
    if (f.tokens[i].kind != Tok::Ident) continue;
    if (!ident_in(f, i, kOrderedTypes.data(), kOrderedTypes.size())) continue;
    if (!f.tok_is(i - 1, "::") || !f.tok_is(i - 2, "std")) continue;
    if (!f.tok_is(i + 1, "<")) continue;
    // first template argument: up to a depth-0 comma or the closing '>'
    int depth = 0;
    std::size_t j = i + 2;
    const std::size_t close = match_template_close(f, i + 1);
    bool pointer = false;
    for (; j < close && j < f.tokens.size(); ++j) {
      if (f.tok_is(j, "<") || f.tok_is(j, "(") || f.tok_is(j, "[")) ++depth;
      if (f.tok_is(j, ">") || f.tok_is(j, ")") || f.tok_is(j, "]")) --depth;
      if (depth < 0) break;  // the container's own '>'
      if (depth == 0 && f.tok_is(j, ",")) break;
      if (f.tok_is(j, "*")) pointer = true;
    }
    if (!pointer) continue;
    const std::string arg = join_tokens(f, i + 2, j);
    out.push_back({f.path, f.tokens[i].line, "pointer-keyed-container",
                   "std::" + f.tok(f.tokens[i]) + " keyed by raw pointer `" + arg +
                       "`; pointer order is allocation order — key by a stable "
                       "id instead"});
  }
}

}  // namespace

void run_determinism_rules(const LexedFile& f, const std::vector<std::string>& rules,
                           std::vector<Finding>& findings) {
  if (rule_wanted(rules, "unordered-iteration")) check_unordered_iteration(f, findings);
  if (rule_wanted(rules, "wall-clock")) check_wall_clock(f, findings);
  if (rule_wanted(rules, "raw-random")) check_raw_random(f, findings);
  if (rule_wanted(rules, "pointer-keyed-container")) check_pointer_keyed(f, findings);
}

}  // namespace taf::analyze

// Parallel guardband sweep: fan a (benchmark x device grade x ambient)
// grid across every core with the runner subsystem, sharing the
// implemented netlists and characterized devices through a FlowCache.
// The result vector is indexed like the input grid no matter how the
// cells were scheduled, so a -j N run reproduces the serial numbers bit
// for bit — rerun with TAF_THREADS=1 to check.
//
//   $ ./parallel_sweep
//   $ TAF_THREADS=1 ./parallel_sweep

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/flow_cache.hpp"
#include "runner/metrics.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace taf;
  using util::Table;

  const int threads = util::env_positive_int(
      "TAF_THREADS", runner::ThreadPool::hardware_default());
  runner::ThreadPool pool(threads);
  runner::FlowCache cache;

  // A 3-benchmark x 2-grade x 2-ambient grid: 12 guardband cells, but
  // only 3 implementations and 2 device models get built (the cache
  // deduplicates; concurrent requests for the same artifact block on the
  // first builder instead of redoing the work).
  std::vector<netlist::BenchmarkSpec> specs;
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == "sha" || s.name == "or1200" || s.name == "blob_merge") {
      specs.push_back(s);
    }
  }
  const auto points = runner::Sweep::grid(specs, 1.0 / 16.0, arch::scaled_arch(),
                                          /*grades=*/{25.0, 70.0},
                                          /*ambients=*/{25.0, 70.0});

  runner::Sweep sweep(cache, pool, tech::ptm22());
  const auto cells = sweep.run(points);

  Table t({"cell", "fmax (MHz)", "gain", "peak T (C)", "iters", "wall (s)"});
  for (const auto& cell : cells) {
    t.add_row({cell.metrics.name, Table::num(cell.guardband.fmax_mhz.value(), 1),
               Table::pct(cell.guardband.gain()),
               Table::num(cell.guardband.peak_temp_c.value(), 1),
               std::to_string(cell.guardband.iterations),
               Table::num(cell.metrics.wall_s, 2)});
  }
  t.print();

  const auto stats = cache.stats();
  std::printf("\n%d threads; cache: %llu impl builds for %zu cells, "
              "%llu device builds\n",
              pool.threads(), static_cast<unsigned long long>(stats.impl_misses),
              cells.size(), static_cast<unsigned long long>(stats.device_misses));

  // Structured metrics: every cell carries a phase breakdown.
  runner::RunReport report;
  report.threads = pool.threads();
  for (const auto& cell : cells) {
    report.tasks.push_back(cell.metrics);
    report.wall_s += cell.metrics.wall_s;
  }
  report.cache = stats;
  std::printf("\nper-cell CSV:\n%s", report.to_csv().c_str());
  return 0;
}

// Corner explorer: synthesize devices for a sweep of design temperatures
// and map out where each one wins — the design-space view behind the
// paper's thermal-aware architecture proposal (Section III-C).
//
//   $ ./corner_explorer

#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace taf;
  using util::Table;

  const coffe::Characterizer ch(tech::ptm22(), arch::scaled_arch());
  std::vector<coffe::DeviceModel> devices;
  for (double t : {0.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    devices.push_back(ch.characterize(units::Celsius(t)));
    std::printf("synthesized %s (CP %.1f ps at its corner)\n", devices.back().name.c_str(),
                devices.back().rep_cp_delay(units::Celsius(t)).value());
  }

  // Winner map: which device has the lowest CP delay at each temperature.
  std::printf("\nwinner per operating temperature:\n");
  Table t({"T (C)", "best device", "CP (ps)", "2nd best", "margin"});
  for (int temp = 0; temp <= 100; temp += 5) {
    int best = 0, second = -1;
    for (int d = 1; d < static_cast<int>(devices.size()); ++d) {
      const double v = devices[static_cast<std::size_t>(d)].rep_cp_delay(units::Celsius(temp)).value();
      if (v < devices[static_cast<std::size_t>(best)].rep_cp_delay(units::Celsius(temp)).value()) {
        second = best;
        best = d;
      } else if (second < 0 ||
                 v < devices[static_cast<std::size_t>(second)].rep_cp_delay(units::Celsius(temp)).value()) {
        second = d;
      }
    }
    const double vb = devices[static_cast<std::size_t>(best)].rep_cp_delay(units::Celsius(temp)).value();
    const double vs = devices[static_cast<std::size_t>(second)].rep_cp_delay(units::Celsius(temp)).value();
    t.add_row({std::to_string(temp), devices[static_cast<std::size_t>(best)].name,
               Table::num(vb, 1), devices[static_cast<std::size_t>(second)].name,
               Table::pct(vs / vb - 1.0, 2)});
  }
  t.print();

  // Expected-delay ranking over a few field profiles (Eq. 1).
  std::printf("\nEq. (1) grade recommendation per field profile:\n");
  Table t2({"Field", "range (C)", "recommended grade"});
  const struct {
    const char* name;
    double lo, hi;
  } fields[] = {{"climate-controlled office", 15, 35},
                {"telecom cabinet", 0, 70},
                {"datacenter accelerator", 60, 100},
                {"automotive underhood", 40, 100},
                {"full industrial range", 0, 100}};
  for (const auto& f : fields) {
    const int pick = core::select_grade(devices, units::Celsius(f.lo), units::Celsius(f.hi));
    t2.add_row({f.name, Table::num(f.lo, 0) + ".." + Table::num(f.hi, 0),
                devices[static_cast<std::size_t>(pick)].name});
  }
  t2.print();
  return 0;
}

// Quickstart: characterize a device, implement a benchmark, and compare
// thermal-aware guardbanding against the conventional worst-case margin.
//
//   $ ./quickstart [benchmark-name]
//
// This walks the full public API surface in ~40 lines of user code:
//   1. tech/arch      — pick a technology and architecture
//   2. Characterizer  — fabrication-stage characterization (Table II)
//   3. implement()    — pack / place / route / activity (the VPR role)
//   4. guardband()    — Algorithm 1, vs the 100C worst-case baseline

#include <cstdio>
#include <string>

#include "core/flow.hpp"

int main(int argc, char** argv) {
  using namespace taf;
  const std::string name = argc > 1 ? argv[1] : "sha";

  // 1. Technology and architecture (Table I, reduced channel width).
  const tech::Technology technology = tech::ptm22();
  const arch::ArchParams fabric = arch::scaled_arch();

  // 2. Characterize the device for the typical 25C corner.
  const coffe::Characterizer characterizer(technology, fabric);
  const coffe::DeviceModel device = characterizer.characterize(units::Celsius(25.0));
  std::printf("device %s: LUT delay %.0f + %.2f*T ps, leakage %.2f uW @25C\n",
              device.name.c_str(), device.at(coffe::ResourceKind::Lut).delay_ps.intercept,
              device.at(coffe::ResourceKind::Lut).delay_ps.slope,
              device.leakage(coffe::ResourceKind::Lut, units::Celsius(25.0)).value());

  // 3. Implement a benchmark (1/16-scale VTR circuit).
  netlist::BenchmarkSpec spec;
  bool found = false;
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == name) {
      spec = netlist::scaled(s, 1.0 / 16.0);
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
  }
  const auto impl = core::implement(spec, fabric);
  std::printf("%s: %d LUTs -> %dx%d grid, routed in %d iterations (%s)\n",
              spec.name.c_str(), spec.num_luts, impl->grid.width(), impl->grid.height(),
              impl->routes.iterations, impl->routes.success ? "clean" : "CONGESTED");

  // 4. Thermal-aware guardbanding vs the worst-case corner.
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(25.0);
  const core::GuardbandResult r = core::guardband(*impl, device, opt);
  std::printf("\nworst-case (100C) guardband : %7.1f MHz\n", r.baseline_fmax_mhz.value());
  std::printf("thermal-aware guardband     : %7.1f MHz  (+%.1f%%)\n", r.fmax_mhz.value(),
              r.gain() * 100.0);
  std::printf("converged in %d iteration(s); die peak %.2f C (ambient %.0f C)\n",
              r.iterations, r.peak_temp_c.value(), opt.t_amb_c.value());
  std::printf("power: %.1f mW dynamic + %.1f mW leakage\n", r.power.dynamic_w.value() * 1e3,
              r.power.leakage_w.value() * 1e3);
  return 0;
}

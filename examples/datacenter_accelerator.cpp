// Datacenter accelerator scenario (the paper's motivating field example):
// an FPGA sitting behind server CPUs sees ambient heat up to ~70C, with
// junction temperatures approaching 100C. Compare three deployment
// strategies for a stereo-vision accelerator at Tamb = 70C:
//
//   A. typical device (D25), worst-case guardband   — today's practice
//   B. typical device (D25), thermal-aware guardband — paper technique 1
//   C. 70C-grade device (D70), thermal-aware         — paper technique 2
//
//   $ ./datacenter_accelerator

#include <cstdio>

#include "core/flow.hpp"

int main() {
  using namespace taf;
  const arch::ArchParams fabric = arch::scaled_arch();
  const coffe::Characterizer characterizer(tech::ptm22(), fabric);

  netlist::BenchmarkSpec spec;
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == "stereovision2") spec = netlist::scaled(s, 1.0 / 16.0);
  }
  std::printf("workload: %s (%d LUTs, %d DSPs) at Tamb = 70C\n\n", spec.name.c_str(),
              spec.num_luts, spec.num_dsps);
  const auto impl = core::implement(spec, fabric);

  const coffe::DeviceModel d25 = characterizer.characterize(units::Celsius(25.0));
  const coffe::DeviceModel d70 = characterizer.characterize(units::Celsius(70.0));

  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(70.0);
  const auto r25 = core::guardband(*impl, d25, opt);
  const auto r70 = core::guardband(*impl, d70, opt);

  const double a = r25.baseline_fmax_mhz.value();
  const double b = r25.fmax_mhz.value();
  const double c = r70.fmax_mhz.value();
  std::printf("A. D25 + worst-case margin   : %7.1f MHz\n", a);
  std::printf("B. D25 + thermal-aware       : %7.1f MHz  (+%.1f%% over A)\n", b,
              (b / a - 1.0) * 100.0);
  std::printf("C. D70 + thermal-aware       : %7.1f MHz  (+%.1f%% over B, +%.1f%% over A)\n",
              c, (c / b - 1.0) * 100.0, (c / a - 1.0) * 100.0);

  std::printf("\ncritical path composition (case C): ");
  for (coffe::ResourceKind k : coffe::all_resource_kinds()) {
    const double share = r70.timing.cp_share(k);
    if (share > 0.01) std::printf("%s %.0f%%  ", coffe::resource_name(k), share * 100.0);
  }
  std::printf("\ndie peak %.2f C, total power %.1f mW\n", r70.peak_temp_c.value(),
              r70.power.total_w().value() * 1e3);

  // Which grade should this deployment buy? Eq. (1) over the realistic
  // datacenter junction range.
  std::vector<coffe::DeviceModel> grades;
  for (double t : {0.0, 25.0, 70.0, 100.0}) grades.push_back(characterizer.characterize(units::Celsius(t)));
  const int pick = core::select_grade(grades, units::Celsius(60.0), units::Celsius(100.0));
  std::printf("\nEq. (1) grade selection for a 60..100C field: %s\n",
              grades[static_cast<std::size_t>(pick)].name.c_str());
  return 0;
}

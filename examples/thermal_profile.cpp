// Thermal profile viewer: run Algorithm 1 on a benchmark and render the
// converged on-chip temperature map as an ASCII heat map, plus the
// per-iteration convergence trace the paper describes.
//
//   $ ./thermal_profile [benchmark-name] [ambient-C]

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/flow.hpp"
#include "thermal/thermal_grid.hpp"

int main(int argc, char** argv) {
  using namespace taf;
  const std::string name = argc > 1 ? argv[1] : "mcml";
  const double t_amb = argc > 2 ? std::strtod(argv[2], nullptr) : 25.0;

  const arch::ArchParams fabric = arch::scaled_arch();
  const coffe::Characterizer ch(tech::ptm22(), fabric);
  const coffe::DeviceModel dev = ch.characterize(units::Celsius(25.0));

  netlist::BenchmarkSpec spec;
  bool found = false;
  for (const auto& s : netlist::vtr_suite()) {
    if (s.name == name) {
      spec = netlist::scaled(s, 1.0 / 16.0);
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
  }
  const auto impl = core::implement(spec, fabric);

  // Run Algorithm 1 with a tight threshold to show the convergence trace.
  core::GuardbandOptions opt;
  opt.t_amb_c = units::Celsius(t_amb);
  opt.delta_t_c = units::Kelvin(0.05);
  opt.max_iterations = 10;
  const auto r = core::guardband(*impl, dev, opt);

  std::printf("%s at Tamb=%.0fC: fmax %.1f MHz (baseline %.1f), %d iterations\n",
              spec.name.c_str(), t_amb, r.fmax_mhz.value(), r.baseline_fmax_mhz.value(), r.iterations);
  std::printf("temperature: mean %.2f C, peak %.2f C (rise %.2f C)\n\n", r.mean_temp_c.value(),
              r.peak_temp_c.value(), r.peak_temp_c.value() - t_amb);

  std::printf("converged thermal map (%dx%d tiles; '@' = hottest):\n", impl->grid.width(),
              impl->grid.height());
  std::fputs(thermal::ThermalGrid::ascii_heatmap(r.tile_temp_c, impl->grid.width(),
                                                 impl->grid.height())
                 .c_str(),
             stdout);

  // Hottest tiles and what sits on them.
  std::vector<int> by_temp(static_cast<std::size_t>(impl->grid.num_tiles()));
  for (int i = 0; i < impl->grid.num_tiles(); ++i) by_temp[static_cast<std::size_t>(i)] = i;
  std::partial_sort(by_temp.begin(), by_temp.begin() + 3, by_temp.end(),
                    [&](int a, int b) {
                      return r.tile_temp_c[static_cast<std::size_t>(a)] >
                             r.tile_temp_c[static_cast<std::size_t>(b)];
                    });
  std::printf("\nhottest tiles:\n");
  for (int rank = 0; rank < 3; ++rank) {
    const int i = by_temp[static_cast<std::size_t>(rank)];
    const arch::TilePos p = impl->grid.pos_of(i);
    std::printf("  (%2d,%2d) %-4s tile at %.2f C\n", p.x, p.y,
                arch::tile_kind_name(impl->grid.at(p)),
                r.tile_temp_c[static_cast<std::size_t>(i)]);
  }
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/taf_core.dir/flow.cpp.o"
  "CMakeFiles/taf_core.dir/flow.cpp.o.d"
  "libtaf_core.a"
  "libtaf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_coffe[1]_include.cmake")
include("/root/repo/build/tests/test_thermal[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_activity[1]_include.cmake")
include("/root/repo/build/tests/test_cad[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_stdcell[1]_include.cmake")
include("/root/repo/build/tests/test_blif[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")

#pragma once
// POSIX socket transport for the guardband service. This header and its
// .cpp are the only sanctioned home of raw socket and frame-stream
// handling — tools/taf-lint (rule service-socket-seam) bans the socket
// syscalls and headers everywhere outside src/service/, the way
// thermal-backend-seam confines stencil internals.
//
// The transport is deliberately thin: it moves length-prefixed frames
// (protocol.hpp) between file descriptors and GuardbandServer, one
// thread per accepted connection. All protocol-level error handling —
// malformed envelopes, bad parameters — happens in serve_payload() and
// yields a typed error frame on the same connection. Only an unframeable
// byte stream (oversized or zero length prefix) closes a connection, and
// the peer is sent a final error frame first.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/guardband_server.hpp"

namespace taf::service {

/// Where a SocketListener binds. Exactly one of unix_path / tcp_port
/// must be set (tcp_port > 0 binds 127.0.0.1:tcp_port; port 0 asks the
/// kernel for an ephemeral port, readable back via bound_port()).
struct ListenerConfig {
  std::string unix_path;
  int tcp_port = -1;
};

/// Accept loop + per-connection frame pumps over a GuardbandServer.
class SocketListener {
 public:
  /// Binds and listens; throws std::runtime_error on any socket failure.
  SocketListener(GuardbandServer& server, ListenerConfig config);
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Start accepting connections (returns immediately).
  void start();
  /// Stop accepting, shut down every live connection (unblocking reads
  /// from peers that keep their end open), close the listening socket,
  /// and join every connection thread. Idempotent; also run by the
  /// destructor.
  void stop();

  /// Port actually bound (TCP mode; after construction).
  int bound_port() const { return bound_port_; }
  std::uint64_t connections_accepted() const { return accepted_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);

  GuardbandServer& server_;
  ListenerConfig config_;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;  // guarded by conn_mutex_
  // Open connection fds, guarded by conn_mutex_. A connection thread
  // closes and deregisters its fd under the lock, and stop() shuts fds
  // down under the same lock — so stop() can never touch a closed (and
  // possibly kernel-reused) descriptor.
  std::vector<int> conn_fds_;
};

/// Blocking client for one connection: send a request envelope, read the
/// response envelope. Pipelining-safe (requests are answered in order).
class FrameClient {
 public:
  /// Connect to a unix socket path or 127.0.0.1:port; throws
  /// std::runtime_error on failure.
  static FrameClient connect_unix(const std::string& path);
  static FrameClient connect_tcp(int port);
  ~FrameClient();
  FrameClient(FrameClient&& other) noexcept;
  FrameClient& operator=(FrameClient&&) = delete;
  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  /// Write one framed envelope. Throws on IO failure.
  void send_envelope(std::string_view envelope);
  /// Read the next response envelope. Throws on IO failure, EOF, or an
  /// unframeable stream.
  std::string read_envelope();
  /// send + read.
  std::string roundtrip(std::string_view envelope);

 private:
  explicit FrameClient(int fd) : fd_(fd) {}
  int fd_;
  protocol::FrameReader reader_;
};

}  // namespace taf::service

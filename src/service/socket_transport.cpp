#include "service/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace taf::service {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// write() until done; false on any failure (connection is abandoned).
bool write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketListener::SocketListener(GuardbandServer& server, ListenerConfig config)
    : server_(server), config_(std::move(config)) {
  const bool use_unix = !config_.unix_path.empty();
  if (use_unix == (config_.tcp_port >= 0)) {
    throw std::runtime_error("listener: set exactly one of unix_path / tcp_port");
  }
  if (use_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("listener: unix socket path too long");
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    ::unlink(config_.unix_path.c_str());  // stale socket from a dead server
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(listen_fd_);
      throw_errno("bind");
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(listen_fd_);
      throw_errno("bind");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw_errno("listen");
  }
}

SocketListener::~SocketListener() { stop(); }

void SocketListener::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketListener::stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(); close() alone may not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(conn_threads_);
    // Unblock connection threads parked in read() on peers that keep
    // their end open; they observe EOF and exit. The fds stay registered
    // until each owning thread closes them under the lock.
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conns) t.join();
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

void SocketListener::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket closed (stop()) or fatal
    }
    ++accepted_;
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void SocketListener::serve_connection(int fd) {
  protocol::FrameReader reader;
  char buf[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer closed
    reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    while (open) {
      if (reader.error() != nullptr) {
        // Unframeable stream: send a final typed error, then close (a
        // corrupt length prefix offers no resynchronization point).
        protocol::ErrorResponse err;
        err.code = protocol::ErrorResponse::kMalformedFrame;
        err.message = reader.error();
        write_all(fd, protocol::frame(protocol::encode_error(err)));
        open = false;
        break;
      }
      const std::optional<std::string> envelope = reader.next();
      if (!envelope.has_value()) break;
      if (!write_all(fd, protocol::frame(server_.serve_payload(*envelope)))) {
        open = false;
      }
    }
  }
  const std::lock_guard<std::mutex> lock(conn_mutex_);
  ::close(fd);
  conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
}

FrameClient FrameClient::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("connect");
  }
  return FrameClient(fd);
}

FrameClient FrameClient::connect_tcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("connect");
  }
  return FrameClient(fd);
}

FrameClient::~FrameClient() {
  if (fd_ >= 0) ::close(fd_);
}

FrameClient::FrameClient(FrameClient&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

void FrameClient::send_envelope(std::string_view envelope) {
  if (!write_all(fd_, protocol::frame(envelope))) throw_errno("write");
}

std::string FrameClient::read_envelope() {
  for (;;) {
    if (reader_.error() != nullptr) {
      throw std::runtime_error(std::string("client: unframeable stream: ") +
                               reader_.error());
    }
    if (std::optional<std::string> envelope = reader_.next()) return *std::move(envelope);
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0) throw std::runtime_error("client: connection closed mid-frame");
    reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

std::string FrameClient::roundtrip(std::string_view envelope) {
  send_envelope(envelope);
  return read_envelope();
}

}  // namespace taf::service

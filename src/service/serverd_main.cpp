// guardband_serverd: the fleet-facing guardband daemon. Binds a unix or
// TCP-loopback socket, owns the warm flow state (FlowCache + optional
// ArtifactStore + ThreadPool), and serves protocol.hpp frames until
// SIGINT/SIGTERM. The "listening ..." line on stdout is the readiness
// handshake the CI smoke job and the fleet simulator wait for.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/guardband_server.hpp"
#include "service/socket_transport.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --port N) [--threads N] [--scale S]\n"
               "          [--max-batch N] [--artifact-dir DIR]\n"
               "  --unix PATH      bind a unix stream socket at PATH\n"
               "  --port N         bind 127.0.0.1:N (0 = ephemeral, printed)\n"
               "  --threads N      evaluation thread-pool size (default 1)\n"
               "  --scale S        benchmark scale (default 1/16)\n"
               "  --max-batch N    corners per batched thermal solve (default 8)\n"
               "  --artifact-dir D on-disk artifact store root (default: off)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  taf::service::ServerConfig config;
  taf::service::ListenerConfig listen;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      listen.unix_path = value();
    } else if (arg == "--port") {
      listen.tcp_port = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (arg == "--threads") {
      config.threads = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (arg == "--scale") {
      config.scale = std::strtod(value(), nullptr);
    } else if (arg == "--max-batch") {
      config.max_batch = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--artifact-dir") {
      config.artifact_dir = value();
    } else {
      return usage(argv[0]);
    }
  }
  if (listen.unix_path.empty() && listen.tcp_port < 0) return usage(argv[0]);

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  std::signal(SIGPIPE, SIG_IGN);  // peers may vanish mid-write

  try {
    taf::service::GuardbandServer server(config);
    taf::service::SocketListener listener(server, listen);
    listener.start();
    if (!listen.unix_path.empty()) {
      std::printf("listening unix %s\n", listen.unix_path.c_str());
    } else {
      std::printf("listening tcp 127.0.0.1:%d\n", listener.bound_port());
    }
    std::fflush(stdout);

    while (g_stop == 0) {
      // Signals interrupt the sleep; poll cheaply otherwise.
      struct timespec ts = {0, 200 * 1000 * 1000};
      nanosleep(&ts, nullptr);
    }
    listener.stop();
    const taf::service::GuardbandServer::Stats s = server.stats();
    std::printf(
        "served requests=%llu tuple_hits=%llu tuples_evaluated=%llu "
        "groups=%llu batched_corners=%llu admission_batches=%llu errors=%llu\n",
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.tuple_hits),
        static_cast<unsigned long long>(s.tuples_evaluated),
        static_cast<unsigned long long>(s.groups_evaluated),
        static_cast<unsigned long long>(s.batched_corners),
        static_cast<unsigned long long>(s.admission_batches),
        static_cast<unsigned long long>(s.errors));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "guardband_serverd: %s\n", e.what());
    return 1;
  }
}

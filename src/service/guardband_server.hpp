#pragma once
// Long-lived guardband service (ROADMAP item 1; DESIGN.md section 12).
//
// A GuardbandServer owns the warm state of the flow — a FlowCache (with
// an optional on-disk ArtifactStore tier) and a work-stealing ThreadPool
// — and answers fleet queries "what fmax/guardband is safe for my grade,
// ambient, and activity right now" (protocol.hpp).
//
// Request path:
//   handle() --> admission queue --> admission thread drains a batch -->
//   handle_batch() --> canonicalize tuples --> build-once response slots
//   --> uncached tuples grouped by (design, grade) --> groups fan out on
//   the ThreadPool --> each group evaluates its ambient/activity corners
//   through core::guardband_batch() on one warm implementation (the
//   stencil backend shares one blocked traversal per thermal solve
//   across the corners of a chunk) --> responses assembled in request
//   order.
//
// Determinism: a response's bytes (minus the echoed request_id) are a
// pure function of the quantized request tuple. Tuples are canonicalized
// before evaluation (grade/ambient to millidegrees, activity to
// permille), every tuple is evaluated exactly once (build-once slots, as
// in FlowCache), and core::guardband_batch() is bit-identical to
// per-corner guardband() whatever the batch composition — so admission
// batching, pool size, and client interleaving cannot leak into response
// bytes. tests/test_service.cpp pins concurrent == serial replay.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "arch/arch_params.hpp"
#include "core/flow.hpp"
#include "netlist/benchmarks.hpp"
#include "runner/artifact_store.hpp"
#include "runner/flow_cache.hpp"
#include "runner/metrics.hpp"
#include "runner/thread_pool.hpp"
#include "service/protocol.hpp"
#include "tech/technology.hpp"

namespace taf::service {

struct ServerConfig {
  /// ThreadPool size for tuple-group evaluation. 1 = everything inline
  /// on the admission thread (the deterministic serial reference).
  int threads = 1;
  /// Benchmark scale the served implementations are built at.
  double scale = 1.0 / 16.0;
  /// Max corners per core::guardband_batch() chunk within one group.
  std::size_t max_batch = 8;
  /// Max requests drained per admission batch.
  std::size_t max_admission = 256;
  /// Root of the on-disk artifact tier; empty = in-memory only.
  std::string artifact_dir;
  /// Base guardband options; t_amb_c and power_scale are per-request
  /// (a request's activity scale multiplies the configured power_scale).
  core::GuardbandOptions guardband;
  arch::ArchParams arch = arch::scaled_arch();
  tech::Technology tech = tech::ptm22();
};

class GuardbandServer {
 public:
  explicit GuardbandServer(ServerConfig config);
  ~GuardbandServer();
  GuardbandServer(const GuardbandServer&) = delete;
  GuardbandServer& operator=(const GuardbandServer&) = delete;

  /// One query through the admission queue: blocks until the admission
  /// thread has evaluated (or found cached) the request's tuple.
  /// Concurrent callers coalesce into one admission batch. Throws
  /// std::invalid_argument on an unknown design or out-of-domain field.
  protocol::GuardbandResponse handle(const protocol::GuardbandRequest& request);

  /// Batch entry point (used by the admission thread, the serial replay
  /// of the determinism tests, and batch-mode clients): responses are
  /// indexed like `requests`. Validates every request up front.
  std::vector<protocol::GuardbandResponse> handle_batch(
      const std::vector<protocol::GuardbandRequest>& requests);

  /// One guardband_trace query through the same admission queue as
  /// handle(): trace and scalar requests coalesce into one admission
  /// batch and are split by kind on the admission thread. Throws
  /// std::invalid_argument on anything validate_trace() rejects.
  protocol::TraceResponse handle_trace(const protocol::TraceRequest& request);

  /// Batch entry point for trace queries, same contract as
  /// handle_batch(): build-once response slots keyed by the canonical
  /// tuple (design, quantized grade/ambient, samples_per_segment, the
  /// trace's canonical serialized bytes — traces are taken verbatim,
  /// never quantized), grouped by (design, grade) and fanned on the pool.
  std::vector<protocol::TraceResponse> handle_trace_batch(
      const std::vector<protocol::TraceRequest>& requests);

  /// Wire path: one request envelope in, one response envelope out.
  /// Dispatches on the envelope kind (guardband-request vs
  /// guardband-trace-request). Never throws — every failure becomes a
  /// typed kErrorKind envelope (protocol.hpp error contract).
  std::string serve_payload(std::string_view envelope);

  /// Wire path with framing: one length-prefixed frame in, one out.
  /// Never throws; malformed framing yields a framed error envelope.
  std::string serve_frame(std::string_view frame_bytes);

  /// Validation shared by the in-process and wire paths: nullopt when
  /// the request is servable, a typed error otherwise.
  std::optional<protocol::ErrorResponse> validate(
      const protocol::GuardbandRequest& request) const;

  /// Trace-request validation: known design, temperatures in the served
  /// domain, samples_per_segment in [1, 16], the trace semantically
  /// valid (ActivityTrace::validate) with exactly one block, and segment
  /// x sample counts small enough that the response fits one frame.
  std::optional<protocol::ErrorResponse> validate_trace(
      const protocol::TraceRequest& request) const;

  struct Stats {
    std::uint64_t requests = 0;         ///< queries admitted (valid ones)
    std::uint64_t tuple_hits = 0;       ///< served from the response cache
    std::uint64_t tuples_evaluated = 0; ///< distinct tuples run through Algorithm 1
    std::uint64_t groups_evaluated = 0; ///< (design, grade) groups dispatched
    std::uint64_t batched_corners = 0;  ///< corners sent through guardband_batch
    std::uint64_t admission_batches = 0;
    std::uint64_t errors = 0;           ///< typed error responses issued
    std::uint64_t trace_requests = 0;   ///< trace queries admitted (valid ones)
    std::uint64_t trace_hits = 0;       ///< served from the trace response cache
    std::uint64_t traces_evaluated = 0; ///< distinct trace tuples replayed
  };
  Stats stats() const;

  /// Per-group TaskMetrics accumulated since the last drain (kind
  /// "service-group": phase times, Algorithm 1 work, disk traffic).
  std::vector<runner::TaskMetrics> drain_metrics();

  const ServerConfig& config() const { return config_; }
  runner::FlowCache& flow_cache() { return cache_; }

 private:
  /// Canonical (quantized) form of a request tuple.
  struct Tuple {
    std::string design;
    std::int64_t grade_mdeg = 0;
    std::int64_t ambient_mdeg = 0;
    std::int64_t activity_permille = 1000;
  };
  static Tuple canonicalize(const protocol::GuardbandRequest& request);
  static std::uint64_t tuple_key(const Tuple& t);

  /// Build-once response slot (the FlowCache Slot pattern).
  struct ResponseSlot {
    std::mutex mutex;
    std::condition_variable ready_cv;
    bool ready = false;            // guarded by mutex
    std::exception_ptr error;      // guarded by mutex
    protocol::GuardbandResponse value;  // written once before ready
  };

  /// Canonical form of a trace request: quantized scalars plus the
  /// trace's canonical serialized payload bytes (f64s are bit-exact
  /// through the codec, so re-encoding the decoded trace is canonical).
  struct TraceTuple {
    std::string design;
    std::int64_t grade_mdeg = 0;
    std::int64_t ambient_mdeg = 0;
    std::int32_t samples_per_segment = 0;
    std::string trace_payload;
  };
  static TraceTuple canonicalize_trace(const protocol::TraceRequest& request);
  static std::uint64_t trace_tuple_key(const TraceTuple& t);

  struct TraceSlot {
    std::mutex mutex;
    std::condition_variable ready_cv;
    bool ready = false;            // guarded by mutex
    std::exception_ptr error;      // guarded by mutex
    protocol::TraceResponse value;  // written once before ready
  };

  /// One admission-queue entry; either a scalar or a trace query (the
  /// two kinds coalesce into the same admission batches and are split by
  /// kind when the batch is drained).
  struct PendingRequest {
    bool is_trace = false;
    protocol::GuardbandRequest request;          // valid when !is_trace
    protocol::TraceRequest trace_request;        // valid when is_trace
    protocol::GuardbandResponse response;
    protocol::TraceResponse trace_response;
    std::exception_ptr error;
    bool done = false;  // guarded by mutex
    std::mutex mutex;
    std::condition_variable done_cv;
  };

  struct TraceWork {
    TraceTuple tuple;
    const protocol::TraceRequest* request = nullptr;
    TraceSlot* slot = nullptr;
  };

  void admission_loop();
  void evaluate_group(const std::string& design, std::int64_t grade_mdeg,
                      const std::vector<std::pair<Tuple, ResponseSlot*>>& tuples);
  void evaluate_trace_group(const std::string& design, std::int64_t grade_mdeg,
                            const std::vector<TraceWork>& items);
  std::string serve_trace_payload(std::string_view envelope);
  static void fill_slot(ResponseSlot& slot, protocol::GuardbandResponse value);
  static void fail_slot(ResponseSlot& slot, std::exception_ptr error);

  ServerConfig config_;
  std::unordered_map<std::string, netlist::BenchmarkSpec> suite_;
  std::unique_ptr<runner::ArtifactStore> store_;  // before cache_ (cache points at it)
  runner::FlowCache cache_;
  runner::ThreadPool pool_;

  std::mutex slots_mutex_;  // guards the two slot maps' structure only
  std::unordered_map<std::uint64_t, std::unique_ptr<ResponseSlot>> slots_;
  std::unordered_map<std::uint64_t, std::unique_ptr<TraceSlot>> trace_slots_;

  std::mutex metrics_mutex_;
  std::vector<runner::TaskMetrics> metrics_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> tuple_hits_{0};
  std::atomic<std::uint64_t> tuples_evaluated_{0};
  std::atomic<std::uint64_t> groups_evaluated_{0};
  std::atomic<std::uint64_t> batched_corners_{0};
  std::atomic<std::uint64_t> admission_batches_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> trace_requests_{0};
  std::atomic<std::uint64_t> trace_hits_{0};
  std::atomic<std::uint64_t> traces_evaluated_{0};

  std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  std::deque<std::shared_ptr<PendingRequest>> admission_queue_;  // guarded by admission_mutex_
  bool stop_ = false;  // guarded by admission_mutex_
  std::thread admission_thread_;
};

}  // namespace taf::service

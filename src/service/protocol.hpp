#pragma once
// Wire protocol of the guardband service (DESIGN.md section 12).
//
// One request or response travels as one *frame*: a u32 little-endian
// byte count followed by exactly that many bytes of a util/codec.hpp
// envelope (magic, codec version, kind id, payload size, payload
// checksum). The envelope is the same armor the artifact store puts
// around on-disk artifacts, so every tamper mode the PR 5 corruption
// corpus exercises — truncation, bit flips, stale versions, foreign
// kinds — is detected before a single payload byte is interpreted.
// Payload layouts are versioned by codec::kVersion like any artifact;
// changing one means bumping the global version.
//
// Error handling contract (pinned by tests/test_service_fuzz.cpp): a
// malformed frame yields a typed kErrorResponseKind reply, never a crash,
// hang, or silent drop. Only a frame whose *length prefix* is oversized
// or truncated terminates the connection (the stream offers no way to
// resynchronize), and even then the peer is sent an error frame first.
//
// Determinism contract (pinned by tests/test_service.cpp): response
// bytes are a pure function of the request tuple. Responses carry the
// quantized tuple the server actually evaluated plus deterministic work
// counters — never wall-clock times, queue positions, or anything else
// an interleaving could perturb.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dynamic.hpp"

namespace taf::service::protocol {

/// Envelope kinds of the five frame types.
inline constexpr std::string_view kRequestKind = "guardband-request";
inline constexpr std::string_view kResponseKind = "guardband-response";
inline constexpr std::string_view kErrorKind = "error-response";
inline constexpr std::string_view kTraceRequestKind = "guardband-trace-request";
inline constexpr std::string_view kTraceResponseKind = "guardband-trace-response";

/// Hard ceiling on a frame's enveloped byte count. A length prefix above
/// this is rejected before any allocation (the oversized-frame fuzz
/// case); real frames are a few hundred bytes.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Bytes of the length prefix itself.
inline constexpr std::size_t kFramePrefixBytes = 4;

/// One device-instance query: "what fmax/guardband is safe for my grade,
/// ambient, and activity right now". The server quantizes grade and
/// ambient to millidegrees (FlowCache::quantize_t_opt) and the activity
/// scale to permille before evaluating, so nearby doubles collapse onto
/// one cached tuple.
struct GuardbandRequest {
  std::uint64_t request_id = 0;  ///< echoed verbatim in the response
  std::string design;            ///< VTR suite benchmark name
  double grade_t_opt_c = 25.0;   ///< device grade (design corner T_opt)
  double ambient_c = 25.0;       ///< this instance's ambient right now
  double activity_scale = 1.0;   ///< multiplier on the power/activity model
};

/// The thermal-aware operating point for one request tuple. Every field
/// except request_id is a pure function of the quantized tuple.
struct GuardbandResponse {
  std::uint64_t request_id = 0;
  std::string design;
  std::int64_t grade_mdeg = 0;      ///< quantized grade actually evaluated
  std::int64_t ambient_mdeg = 0;    ///< quantized ambient actually evaluated
  std::int64_t activity_permille = 1000;  ///< quantized activity actually evaluated
  double fmax_mhz = 0.0;            ///< thermal-aware frequency (margin applied)
  double baseline_fmax_mhz = 0.0;   ///< conventional worst-case-corner frequency
  double margin_c = 0.0;            ///< delta-T margin baked into fmax_mhz
  double peak_temp_c = 0.0;
  double mean_temp_c = 0.0;
  std::int32_t iterations = 0;      ///< Algorithm 1 iterations
  std::uint8_t converged = 0;       ///< 1 when the loop reached its fixed point
  // Algorithm 1 loop work (deterministic counters, not wall time).
  std::uint64_t edges_reevaluated = 0;
  std::uint64_t delay_cache_hits = 0;
  std::uint64_t cg_iterations = 0;
};

/// Trace query (the guardband_trace kind): "replay this activity trace
/// on my design and tell me the time-resolved safe fmax". The trace is a
/// whole-device utilization schedule (exactly one block on the wire) and
/// is taken verbatim — unlike the scalar tuple fields it is not
/// quantized; its canonical serialized bytes key the response cache.
struct TraceRequest {
  std::uint64_t request_id = 0;  ///< echoed verbatim in the response
  std::string design;
  double grade_t_opt_c = 25.0;
  double ambient_c = 25.0;
  /// Temperature/fmax samples per trace segment (domain [1, 16]).
  std::int32_t samples_per_segment = 4;
  core::ActivityTrace trace;
};

/// One recorded instant of the replay (core::DynamicSample on the wire).
struct TraceSamplePoint {
  double time_s = 0.0;
  double peak_temp_c = 0.0;
  double mean_temp_c = 0.0;
  double fmax_mhz = 0.0;
  std::uint8_t throttled = 0;
};

/// Time series + aggregates of one trace replay. Every field except
/// request_id is a pure function of (design, quantized grade/ambient,
/// samples_per_segment, trace bytes) — the same determinism contract as
/// GuardbandResponse, with deterministic transient work counters.
struct TraceResponse {
  std::uint64_t request_id = 0;
  std::string design;
  std::int64_t grade_mdeg = 0;
  std::int64_t ambient_mdeg = 0;
  std::int32_t samples_per_segment = 0;
  double min_fmax_mhz = 0.0;   ///< sustained safe frequency over the replay
  double peak_temp_c = 0.0;    ///< hottest instant of the replay
  double throttled_s = 0.0;    ///< dwell above the throttle ceiling
  std::uint64_t transient_steps = 0;
  std::uint64_t cg_iterations = 0;
  std::vector<TraceSamplePoint> samples;
};

/// Typed failure reply. `code` is stable for programmatic handling;
/// `message` is diagnostic only.
struct ErrorResponse {
  enum Code : std::uint32_t {
    kMalformedFrame = 1,   ///< envelope/payload failed to decode
    kUnknownDesign = 2,    ///< design name not in the suite
    kBadParameter = 3,     ///< non-finite / out-of-domain request field
    kInternal = 4,         ///< evaluation threw
  };
  std::uint64_t request_id = 0;  ///< 0 when the request never decoded
  std::uint32_t code = kInternal;
  std::string message;
};

// Envelope (frame body) encode/decode. Decoders throw util::codec::Error
// on any malformation; encode -> decode -> encode is byte-identical.
std::string encode_request(const GuardbandRequest& req);
GuardbandRequest decode_request(std::string_view envelope);
std::string encode_response(const GuardbandResponse& resp);
GuardbandResponse decode_response(std::string_view envelope);
std::string encode_error(const ErrorResponse& err);
ErrorResponse decode_error(std::string_view envelope);
std::string encode_trace_request(const TraceRequest& req);
TraceRequest decode_trace_request(std::string_view envelope);
std::string encode_trace_response(const TraceResponse& resp);
TraceResponse decode_trace_response(std::string_view envelope);

/// Kind id peeked from an envelope header, or 0 when the header is too
/// short — the cheap frame-classification peek (does not validate).
std::uint64_t envelope_kind(std::string_view envelope);

/// True when the envelope's kind field says kErrorKind.
bool is_error_envelope(std::string_view envelope);

/// True when the envelope's kind field says kTraceRequestKind — how the
/// server dispatches a payload between the two request decoders.
bool is_trace_request_envelope(std::string_view envelope);

/// Prepend the u32 length prefix. Throws std::length_error above
/// kMaxFrameBytes (a server bug, not a peer error).
std::string frame(std::string_view envelope);

/// Incremental frame deassembler for a byte stream: feed() arbitrary
/// chunks, take complete envelopes out in order. A length prefix of zero
/// or above kMaxFrameBytes poisons the stream (error() becomes non-null
/// and feed() rejects further bytes) — the caller replies with a typed
/// error and closes, since an unframed stream cannot resynchronize.
class FrameReader {
 public:
  /// Append bytes from the stream. Returns false when poisoned.
  bool feed(std::string_view bytes);
  /// Pop the next complete envelope, if any.
  std::optional<std::string> next();
  /// Non-null diagnostic once the stream is poisoned.
  const char* error() const { return error_; }
  /// Bytes buffered but not yet consumed as frames.
  std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
  const char* error_ = nullptr;
};

}  // namespace taf::service::protocol

#include "service/protocol.hpp"

#include <cmath>
#include <stdexcept>

#include "util/codec.hpp"

namespace taf::service::protocol {

namespace codec = util::codec;

std::string encode_request(const GuardbandRequest& req) {
  codec::Encoder e;
  e.u64(req.request_id);
  e.str(req.design);
  e.f64(req.grade_t_opt_c);
  e.f64(req.ambient_c);
  e.f64(req.activity_scale);
  return codec::wrap(kRequestKind, e.take());
}

GuardbandRequest decode_request(std::string_view envelope) {
  codec::Decoder d(codec::unwrap(envelope, kRequestKind));
  GuardbandRequest req;
  req.request_id = d.u64();
  req.design = d.str();
  req.grade_t_opt_c = d.f64();
  req.ambient_c = d.f64();
  req.activity_scale = d.f64();
  d.expect_done();
  return req;
}

std::string encode_response(const GuardbandResponse& resp) {
  codec::Encoder e;
  e.u64(resp.request_id);
  e.str(resp.design);
  e.i64(resp.grade_mdeg);
  e.i64(resp.ambient_mdeg);
  e.i64(resp.activity_permille);
  e.f64(resp.fmax_mhz);
  e.f64(resp.baseline_fmax_mhz);
  e.f64(resp.margin_c);
  e.f64(resp.peak_temp_c);
  e.f64(resp.mean_temp_c);
  e.i32(resp.iterations);
  e.u8(resp.converged);
  e.u64(resp.edges_reevaluated);
  e.u64(resp.delay_cache_hits);
  e.u64(resp.cg_iterations);
  return codec::wrap(kResponseKind, e.take());
}

GuardbandResponse decode_response(std::string_view envelope) {
  codec::Decoder d(codec::unwrap(envelope, kResponseKind));
  GuardbandResponse resp;
  resp.request_id = d.u64();
  resp.design = d.str();
  resp.grade_mdeg = d.i64();
  resp.ambient_mdeg = d.i64();
  resp.activity_permille = d.i64();
  resp.fmax_mhz = d.f64();
  resp.baseline_fmax_mhz = d.f64();
  resp.margin_c = d.f64();
  resp.peak_temp_c = d.f64();
  resp.mean_temp_c = d.f64();
  resp.iterations = d.i32();
  resp.converged = d.u8();
  resp.edges_reevaluated = d.u64();
  resp.delay_cache_hits = d.u64();
  resp.cg_iterations = d.u64();
  d.expect_done();
  return resp;
}

std::string encode_error(const ErrorResponse& err) {
  codec::Encoder e;
  e.u64(err.request_id);
  e.u32(err.code);
  e.str(err.message);
  return codec::wrap(kErrorKind, e.take());
}

ErrorResponse decode_error(std::string_view envelope) {
  codec::Decoder d(codec::unwrap(envelope, kErrorKind));
  ErrorResponse err;
  err.request_id = d.u64();
  err.code = d.u32();
  err.message = d.str();
  d.expect_done();
  return err;
}

std::string encode_trace_request(const TraceRequest& req) {
  codec::Encoder e;
  e.u64(req.request_id);
  e.str(req.design);
  e.f64(req.grade_t_opt_c);
  e.f64(req.ambient_c);
  e.i32(req.samples_per_segment);
  // The trace rides nested in this payload (no inner envelope; the outer
  // one armors everything) through the sanctioned ActivityTrace codec
  // seam — this file never touches the trace byte layout itself.
  req.trace.serialize(e);
  return codec::wrap(kTraceRequestKind, e.take());
}

TraceRequest decode_trace_request(std::string_view envelope) {
  codec::Decoder d(codec::unwrap(envelope, kTraceRequestKind));
  TraceRequest req;
  req.request_id = d.u64();
  req.design = d.str();
  req.grade_t_opt_c = d.f64();
  req.ambient_c = d.f64();
  req.samples_per_segment = d.i32();
  req.trace = core::ActivityTrace::deserialize(d);
  d.expect_done();
  return req;
}

std::string encode_trace_response(const TraceResponse& resp) {
  codec::Encoder e;
  e.u64(resp.request_id);
  e.str(resp.design);
  e.i64(resp.grade_mdeg);
  e.i64(resp.ambient_mdeg);
  e.i32(resp.samples_per_segment);
  e.f64(resp.min_fmax_mhz);
  e.f64(resp.peak_temp_c);
  e.f64(resp.throttled_s);
  e.u64(resp.transient_steps);
  e.u64(resp.cg_iterations);
  e.u64(resp.samples.size());
  for (const TraceSamplePoint& s : resp.samples) {
    e.f64(s.time_s);
    e.f64(s.peak_temp_c);
    e.f64(s.mean_temp_c);
    e.f64(s.fmax_mhz);
    e.u8(s.throttled);
  }
  return codec::wrap(kTraceResponseKind, e.take());
}

TraceResponse decode_trace_response(std::string_view envelope) {
  codec::Decoder d(codec::unwrap(envelope, kTraceResponseKind));
  TraceResponse resp;
  resp.request_id = d.u64();
  resp.design = d.str();
  resp.grade_mdeg = d.i64();
  resp.ambient_mdeg = d.i64();
  resp.samples_per_segment = d.i32();
  resp.min_fmax_mhz = d.f64();
  resp.peak_temp_c = d.f64();
  resp.throttled_s = d.f64();
  resp.transient_steps = d.u64();
  resp.cg_iterations = d.u64();
  const std::uint64_t n_samples = d.u64();
  // 33 bytes per sample: fail a corrupted huge count fast, before any
  // allocation (the Decoder::length() rule for nested records).
  if (n_samples > d.remaining() / 33) {
    throw codec::Error("trace response: sample count exceeds payload");
  }
  resp.samples.resize(static_cast<std::size_t>(n_samples));
  for (TraceSamplePoint& s : resp.samples) {
    s.time_s = d.f64();
    s.peak_temp_c = d.f64();
    s.mean_temp_c = d.f64();
    s.fmax_mhz = d.f64();
    s.throttled = d.u8();
  }
  d.expect_done();
  return resp;
}

std::uint64_t envelope_kind(std::string_view envelope) {
  // Envelope layout: u32 magic, u32 version, u64 kind id, ...
  if (envelope.size() < 16) return 0;
  codec::Decoder d(envelope);
  d.u32();
  d.u32();
  return d.u64();
}

bool is_error_envelope(std::string_view envelope) {
  return envelope_kind(envelope) == codec::kind_id(kErrorKind);
}

bool is_trace_request_envelope(std::string_view envelope) {
  return envelope_kind(envelope) == codec::kind_id(kTraceRequestKind);
}

std::string frame(std::string_view envelope) {
  if (envelope.size() > kMaxFrameBytes) {
    throw std::length_error("protocol: frame exceeds kMaxFrameBytes");
  }
  codec::Encoder e;
  e.u32(static_cast<std::uint32_t>(envelope.size()));
  std::string out = e.take();
  out.append(envelope);
  return out;
}

bool FrameReader::feed(std::string_view bytes) {
  if (error_ != nullptr) return false;
  buf_.append(bytes);
  return true;
}

std::optional<std::string> FrameReader::next() {
  if (error_ != nullptr || buf_.size() < kFramePrefixBytes) return std::nullopt;
  codec::Decoder d(buf_);
  const std::uint32_t size = d.u32();
  if (size == 0) {
    error_ = "zero-length frame";
    return std::nullopt;
  }
  if (size > kMaxFrameBytes) {
    error_ = "frame length exceeds kMaxFrameBytes";
    return std::nullopt;
  }
  if (buf_.size() - kFramePrefixBytes < size) return std::nullopt;
  std::string envelope = buf_.substr(kFramePrefixBytes, size);
  buf_.erase(0, kFramePrefixBytes + size);
  return envelope;
}

}  // namespace taf::service::protocol

#include "service/guardband_server.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/codec.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace taf::service {

namespace {

/// Servable parameter domain. Wide enough for any physical deployment,
/// tight enough that a fuzzer-mutated double cannot drive the flow into
/// nonsense (NaN ambients, negative activity, 1e300 grades).
constexpr double kMinTempC = -55.0;
constexpr double kMaxTempC = 150.0;
constexpr double kMaxActivityScale = 100.0;

/// Service-side trace caps, tighter than the structural
/// core::kMaxTraceSegments: 256 segments x 16 samples each bounds a
/// response at 4097 sample points (~135 KB enveloped), comfortably under
/// protocol::kMaxFrameBytes — a valid request can never produce an
/// unframeable response.
constexpr int kMaxServiceTraceSegments = 256;
constexpr int kMaxSamplesPerSegment = 16;

std::int64_t quantize_permille(double scale) {
  return static_cast<std::int64_t>(std::llround(scale * 1000.0));
}

}  // namespace

GuardbandServer::GuardbandServer(ServerConfig config)
    : config_(std::move(config)),
      store_(config_.artifact_dir.empty()
                 ? nullptr
                 : std::make_unique<runner::ArtifactStore>(config_.artifact_dir)),
      pool_(config_.threads) {
  for (netlist::BenchmarkSpec& spec : netlist::vtr_suite()) {
    suite_.emplace(spec.name, std::move(spec));
  }
  if (store_ != nullptr) cache_.set_artifact_store(store_.get());
  admission_thread_ = std::thread([this] { admission_loop(); });
}

GuardbandServer::~GuardbandServer() {
  {
    const std::lock_guard<std::mutex> lock(admission_mutex_);
    stop_ = true;
  }
  admission_cv_.notify_all();
  admission_thread_.join();
}

GuardbandServer::Tuple GuardbandServer::canonicalize(
    const protocol::GuardbandRequest& request) {
  Tuple t;
  t.design = request.design;
  t.grade_mdeg = runner::FlowCache::quantize_t_opt(request.grade_t_opt_c);
  t.ambient_mdeg = runner::FlowCache::quantize_t_opt(request.ambient_c);
  t.activity_permille = quantize_permille(request.activity_scale);
  return t;
}

std::uint64_t GuardbandServer::tuple_key(const Tuple& t) {
  util::Fnv1a h;
  h.add(std::string_view(t.design));
  h.add(t.grade_mdeg);
  h.add(t.ambient_mdeg);
  h.add(t.activity_permille);
  return h.state;
}

GuardbandServer::TraceTuple GuardbandServer::canonicalize_trace(
    const protocol::TraceRequest& request) {
  TraceTuple t;
  t.design = request.design;
  t.grade_mdeg = runner::FlowCache::quantize_t_opt(request.grade_t_opt_c);
  t.ambient_mdeg = runner::FlowCache::quantize_t_opt(request.ambient_c);
  t.samples_per_segment = request.samples_per_segment;
  util::codec::Encoder e;
  request.trace.serialize(e);
  t.trace_payload = e.take();
  return t;
}

std::uint64_t GuardbandServer::trace_tuple_key(const TraceTuple& t) {
  util::Fnv1a h;
  h.add(std::string_view(t.design));
  h.add(t.grade_mdeg);
  h.add(t.ambient_mdeg);
  h.add(static_cast<std::int64_t>(t.samples_per_segment));
  h.add(std::string_view(t.trace_payload));
  return h.state;
}

std::optional<protocol::ErrorResponse> GuardbandServer::validate(
    const protocol::GuardbandRequest& request) const {
  protocol::ErrorResponse err;
  err.request_id = request.request_id;
  if (suite_.find(request.design) == suite_.end()) {
    err.code = protocol::ErrorResponse::kUnknownDesign;
    err.message = "unknown design '" + request.design + "'";
    return err;
  }
  const auto bad_temp = [](double v) {
    return !std::isfinite(v) || v < kMinTempC || v > kMaxTempC;
  };
  if (bad_temp(request.grade_t_opt_c)) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = "grade_t_opt_c out of domain";
    return err;
  }
  if (bad_temp(request.ambient_c)) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = "ambient_c out of domain";
    return err;
  }
  if (!std::isfinite(request.activity_scale) || request.activity_scale < 0.0 ||
      request.activity_scale > kMaxActivityScale) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = "activity_scale out of domain";
    return err;
  }
  return std::nullopt;
}

std::optional<protocol::ErrorResponse> GuardbandServer::validate_trace(
    const protocol::TraceRequest& request) const {
  protocol::ErrorResponse err;
  err.request_id = request.request_id;
  if (suite_.find(request.design) == suite_.end()) {
    err.code = protocol::ErrorResponse::kUnknownDesign;
    err.message = "unknown design '" + request.design + "'";
    return err;
  }
  const auto bad_temp = [](double v) {
    return !std::isfinite(v) || v < kMinTempC || v > kMaxTempC;
  };
  if (bad_temp(request.grade_t_opt_c)) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = "grade_t_opt_c out of domain";
    return err;
  }
  if (bad_temp(request.ambient_c)) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = "ambient_c out of domain";
    return err;
  }
  if (request.samples_per_segment < 1 ||
      request.samples_per_segment > kMaxSamplesPerSegment) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = "samples_per_segment out of domain";
    return err;
  }
  // The frame decoded (structure is sound) but the trace's *contents* may
  // still be out of domain — that is a bad parameter, not a malformed
  // frame (the protocol.hpp error-classification contract).
  try {
    request.trace.validate();
  } catch (const std::invalid_argument& e) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = e.what();
    return err;
  }
  if (request.trace.blocks != 1) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = "service traces are whole-device (exactly one block)";
    return err;
  }
  if (request.trace.segments.size() >
      static_cast<std::size_t>(kMaxServiceTraceSegments)) {
    err.code = protocol::ErrorResponse::kBadParameter;
    err.message = "trace segment count exceeds the service cap";
    return err;
  }
  return std::nullopt;
}

void GuardbandServer::fill_slot(ResponseSlot& slot, protocol::GuardbandResponse value) {
  {
    const std::lock_guard<std::mutex> lock(slot.mutex);
    slot.value = std::move(value);
    slot.ready = true;
  }
  slot.ready_cv.notify_all();
}

void GuardbandServer::fail_slot(ResponseSlot& slot, std::exception_ptr error) {
  {
    const std::lock_guard<std::mutex> lock(slot.mutex);
    slot.error = std::move(error);
    slot.ready = true;
  }
  slot.ready_cv.notify_all();
}

void GuardbandServer::evaluate_group(
    const std::string& design, std::int64_t grade_mdeg,
    const std::vector<std::pair<Tuple, ResponseSlot*>>& tuples) {
  try {
    runner::TaskMetrics tm;
    tm.name = design + "@" + std::to_string(static_cast<double>(grade_mdeg) / 1000.0);
    tm.kind = "service-group";
    util::Stopwatch wall;
    {
      const runner::SpiceCounterScope spice_scope(tm);
      const runner::FlowCounterScope flow_scope(tm);
      const runner::ArtifactCounterScope artifact_scope(tm);
      const core::FlowObserver obs = runner::observe_into(tm);

      const double grade_c = static_cast<double>(grade_mdeg) / 1000.0;
      const coffe::DeviceModel& dev = cache_.device(config_.tech, config_.arch, grade_c);
      const core::Implementation& impl =
          cache_.implementation(suite_.at(design), config_.arch, config_.scale);

      core::GuardbandOptions base = config_.guardband;
      base.observer = &obs;

      // Chunk the group's corners by max_batch; within a chunk the
      // stencil backend shares one blocked traversal per thermal solve.
      const std::size_t chunk_max = std::max<std::size_t>(1, config_.max_batch);
      for (std::size_t begin = 0; begin < tuples.size(); begin += chunk_max) {
        const std::size_t end = std::min(tuples.size(), begin + chunk_max);
        std::vector<core::GuardbandCorner> corners;
        corners.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          const Tuple& t = tuples[i].first;
          core::GuardbandCorner c;
          c.t_amb_c = units::Celsius{static_cast<double>(t.ambient_mdeg) / 1000.0};
          c.power_scale = config_.guardband.power_scale *
                          (static_cast<double>(t.activity_permille) / 1000.0);
          corners.push_back(c);
        }
        const std::vector<core::GuardbandResult> results =
            core::guardband_batch(impl, dev, base, corners);
        batched_corners_ += corners.size();
        for (std::size_t i = begin; i < end; ++i) {
          const Tuple& t = tuples[i].first;
          const core::GuardbandResult& r = results[i - begin];
          protocol::GuardbandResponse resp;
          resp.design = t.design;
          resp.grade_mdeg = t.grade_mdeg;
          resp.ambient_mdeg = t.ambient_mdeg;
          resp.activity_permille = t.activity_permille;
          resp.fmax_mhz = r.fmax_mhz.value();
          resp.baseline_fmax_mhz = r.baseline_fmax_mhz.value();
          resp.margin_c = config_.guardband.delta_t_c.value();
          resp.peak_temp_c = r.peak_temp_c.value();
          resp.mean_temp_c = r.mean_temp_c.value();
          resp.iterations = r.iterations;
          resp.converged = r.converged ? 1 : 0;
          resp.edges_reevaluated = r.stats.edges_reevaluated;
          resp.delay_cache_hits = r.stats.delay_cache_hits;
          resp.cg_iterations = r.stats.cg_iterations;
          fill_slot(*tuples[i].second, std::move(resp));
          ++tuples_evaluated_;
        }
      }
    }
    tm.wall_s = wall.seconds();
    {
      const std::lock_guard<std::mutex> lock(metrics_mutex_);
      metrics_.push_back(std::move(tm));
    }
    ++groups_evaluated_;
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (const auto& [tuple, slot] : tuples) fail_slot(*slot, error);
  }
}

void GuardbandServer::evaluate_trace_group(const std::string& design,
                                           std::int64_t grade_mdeg,
                                           const std::vector<TraceWork>& items) {
  try {
    runner::TaskMetrics tm;
    tm.name = design + "@" + std::to_string(static_cast<double>(grade_mdeg) / 1000.0);
    tm.kind = "service-trace-group";
    util::Stopwatch wall;
    {
      const runner::SpiceCounterScope spice_scope(tm);
      const runner::FlowCounterScope flow_scope(tm);
      const runner::ArtifactCounterScope artifact_scope(tm);

      const double grade_c = static_cast<double>(grade_mdeg) / 1000.0;
      const coffe::DeviceModel& dev = cache_.device(config_.tech, config_.arch, grade_c);
      const core::Implementation& impl =
          cache_.implementation(suite_.at(design), config_.arch, config_.scale);

      for (const TraceWork& item : items) {
        // Same option mapping as the scalar path: the server's configured
        // margin/backend/power model, the request's quantized ambient.
        core::DynamicGuardbandOptions dopt;
        dopt.t_amb_c =
            units::Celsius{static_cast<double>(item.tuple.ambient_mdeg) / 1000.0};
        dopt.margin_c = config_.guardband.delta_t_c;
        dopt.thermal = config_.guardband.thermal;
        dopt.power_scale = config_.guardband.power_scale;
        dopt.samples_per_segment = item.tuple.samples_per_segment;
        const core::DynamicGuardband dyn(impl, dev, std::move(dopt));
        const core::DynamicResult r = dyn.replay(item.request->trace);

        protocol::TraceResponse resp;
        resp.design = item.tuple.design;
        resp.grade_mdeg = item.tuple.grade_mdeg;
        resp.ambient_mdeg = item.tuple.ambient_mdeg;
        resp.samples_per_segment = item.tuple.samples_per_segment;
        resp.min_fmax_mhz = r.min_fmax_mhz.value();
        resp.peak_temp_c = r.peak_temp_c.value();
        resp.throttled_s = r.throttled_s.value();
        resp.transient_steps = r.stats.steps;
        resp.cg_iterations = r.stats.cg_iterations;
        resp.samples.reserve(r.samples.size());
        for (const core::DynamicSample& s : r.samples) {
          protocol::TraceSamplePoint p;
          p.time_s = s.time_s;
          p.peak_temp_c = s.peak_temp_c;
          p.mean_temp_c = s.mean_temp_c;
          p.fmax_mhz = s.fmax_mhz;
          p.throttled = s.throttled ? 1 : 0;
          resp.samples.push_back(p);
        }
        {
          const std::lock_guard<std::mutex> lock(item.slot->mutex);
          item.slot->value = std::move(resp);
          item.slot->ready = true;
        }
        item.slot->ready_cv.notify_all();
        ++traces_evaluated_;
      }
    }
    tm.wall_s = wall.seconds();
    {
      const std::lock_guard<std::mutex> lock(metrics_mutex_);
      metrics_.push_back(std::move(tm));
    }
    ++groups_evaluated_;
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (const TraceWork& item : items) {
      {
        const std::lock_guard<std::mutex> lock(item.slot->mutex);
        if (!item.slot->ready) {
          item.slot->error = error;
          item.slot->ready = true;
        }
      }
      item.slot->ready_cv.notify_all();
    }
  }
}

std::vector<protocol::TraceResponse> GuardbandServer::handle_trace_batch(
    const std::vector<protocol::TraceRequest>& requests) {
  for (const protocol::TraceRequest& req : requests) {
    if (const auto err = validate_trace(req)) {
      throw std::invalid_argument("guardband trace request " +
                                  std::to_string(req.request_id) + ": " + err->message);
    }
  }
  trace_requests_ += requests.size();

  struct Lookup {
    TraceTuple tuple;
    TraceSlot* slot = nullptr;
  };
  std::vector<Lookup> lookups(requests.size());
  std::map<std::pair<std::string, std::int64_t>, std::vector<TraceWork>> groups;
  {
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      lookups[i].tuple = canonicalize_trace(requests[i]);
      const std::uint64_t key = trace_tuple_key(lookups[i].tuple);
      auto it = trace_slots_.find(key);
      if (it == trace_slots_.end()) {
        it = trace_slots_.emplace(key, std::make_unique<TraceSlot>()).first;
        TraceWork work;
        work.tuple = lookups[i].tuple;
        work.request = &requests[i];
        work.slot = it->second.get();
        groups[{lookups[i].tuple.design, lookups[i].tuple.grade_mdeg}].push_back(
            std::move(work));
      } else {
        ++trace_hits_;
      }
      lookups[i].slot = it->second.get();
    }
  }

  if (!groups.empty()) {
    std::vector<const std::pair<const std::pair<std::string, std::int64_t>,
                                std::vector<TraceWork>>*>
        group_list;
    group_list.reserve(groups.size());
    for (const auto& g : groups) group_list.push_back(&g);
    pool_.parallel_for(group_list.size(), [&](std::size_t gi) {
      const auto& [key, items] = *group_list[gi];
      evaluate_trace_group(key.first, key.second, items);
    });
  }

  std::vector<protocol::TraceResponse> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TraceSlot& slot = *lookups[i].slot;
    std::unique_lock<std::mutex> lock(slot.mutex);
    slot.ready_cv.wait(lock, [&] { return slot.ready; });
    if (slot.error) std::rethrow_exception(slot.error);
    protocol::TraceResponse resp = slot.value;
    lock.unlock();
    resp.request_id = requests[i].request_id;
    responses.push_back(std::move(resp));
  }
  return responses;
}

std::vector<protocol::GuardbandResponse> GuardbandServer::handle_batch(
    const std::vector<protocol::GuardbandRequest>& requests) {
  for (const protocol::GuardbandRequest& req : requests) {
    if (const auto err = validate(req)) {
      throw std::invalid_argument("guardband request " +
                                  std::to_string(req.request_id) + ": " + err->message);
    }
  }
  requests_ += requests.size();

  // Find-or-create the response slot of every distinct tuple; slots this
  // call creates are its to-build list (the build-once contract: every
  // tuple is evaluated exactly once, whoever asks first builds).
  struct Lookup {
    Tuple tuple;
    ResponseSlot* slot = nullptr;
  };
  std::vector<Lookup> lookups(requests.size());
  // (design, grade) groups to evaluate, in deterministic (map) order.
  std::map<std::pair<std::string, std::int64_t>, std::vector<std::pair<Tuple, ResponseSlot*>>>
      groups;
  {
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      lookups[i].tuple = canonicalize(requests[i]);
      const std::uint64_t key = tuple_key(lookups[i].tuple);
      auto it = slots_.find(key);
      if (it == slots_.end()) {
        it = slots_.emplace(key, std::make_unique<ResponseSlot>()).first;
        groups[{lookups[i].tuple.design, lookups[i].tuple.grade_mdeg}].emplace_back(
            lookups[i].tuple, it->second.get());
      } else {
        ++tuple_hits_;
      }
      lookups[i].slot = it->second.get();
    }
  }

  if (!groups.empty()) {
    std::vector<const std::pair<const std::pair<std::string, std::int64_t>,
                                std::vector<std::pair<Tuple, ResponseSlot*>>>*>
        group_list;
    group_list.reserve(groups.size());
    for (const auto& g : groups) group_list.push_back(&g);
    pool_.parallel_for(group_list.size(), [&](std::size_t gi) {
      const auto& [key, tuples] = *group_list[gi];
      evaluate_group(key.first, key.second, tuples);
    });
  }

  std::vector<protocol::GuardbandResponse> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ResponseSlot& slot = *lookups[i].slot;
    std::unique_lock<std::mutex> lock(slot.mutex);
    slot.ready_cv.wait(lock, [&] { return slot.ready; });
    if (slot.error) std::rethrow_exception(slot.error);
    protocol::GuardbandResponse resp = slot.value;
    lock.unlock();
    resp.request_id = requests[i].request_id;
    responses.push_back(std::move(resp));
  }
  return responses;
}

protocol::GuardbandResponse GuardbandServer::handle(
    const protocol::GuardbandRequest& request) {
  auto pending = std::make_shared<PendingRequest>();
  pending->request = request;
  {
    const std::lock_guard<std::mutex> lock(admission_mutex_);
    if (stop_) throw std::runtime_error("guardband server is shutting down");
    admission_queue_.push_back(pending);
  }
  admission_cv_.notify_one();
  std::unique_lock<std::mutex> lock(pending->mutex);
  pending->done_cv.wait(lock, [&] { return pending->done; });
  if (pending->error) std::rethrow_exception(pending->error);
  return std::move(pending->response);
}

protocol::TraceResponse GuardbandServer::handle_trace(
    const protocol::TraceRequest& request) {
  auto pending = std::make_shared<PendingRequest>();
  pending->is_trace = true;
  pending->trace_request = request;
  {
    const std::lock_guard<std::mutex> lock(admission_mutex_);
    if (stop_) throw std::runtime_error("guardband server is shutting down");
    admission_queue_.push_back(pending);
  }
  admission_cv_.notify_one();
  std::unique_lock<std::mutex> lock(pending->mutex);
  pending->done_cv.wait(lock, [&] { return pending->done; });
  if (pending->error) std::rethrow_exception(pending->error);
  return std::move(pending->trace_response);
}

void GuardbandServer::admission_loop() {
  for (;;) {
    std::vector<std::shared_ptr<PendingRequest>> batch;
    {
      std::unique_lock<std::mutex> lock(admission_mutex_);
      admission_cv_.wait(lock, [&] { return stop_ || !admission_queue_.empty(); });
      if (admission_queue_.empty()) return;  // stop_ and drained
      const std::size_t take =
          std::min(admission_queue_.size(), std::max<std::size_t>(1, config_.max_admission));
      batch.assign(admission_queue_.begin(),
                   admission_queue_.begin() + static_cast<std::ptrdiff_t>(take));
      admission_queue_.erase(admission_queue_.begin(),
                             admission_queue_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    ++admission_batches_;

    // Split the drained batch by kind: scalar and trace queries share the
    // admission queue (concurrent clients of either kind coalesce into
    // one batch) but run through their own batch entry points.
    std::vector<std::shared_ptr<PendingRequest>> scalar;
    std::vector<std::shared_ptr<PendingRequest>> traces;
    for (auto& p : batch) (p->is_trace ? traces : scalar).push_back(std::move(p));

    if (!scalar.empty()) {
      std::vector<protocol::GuardbandRequest> requests;
      requests.reserve(scalar.size());
      for (const auto& p : scalar) requests.push_back(p->request);
      std::vector<protocol::GuardbandResponse> responses;
      std::exception_ptr batch_error;
      try {
        responses = handle_batch(requests);
      } catch (...) {
        batch_error = std::current_exception();
      }
      if (batch_error == nullptr) {
        for (std::size_t i = 0; i < scalar.size(); ++i) {
          PendingRequest& p = *scalar[i];
          {
            const std::lock_guard<std::mutex> lock(p.mutex);
            p.response = std::move(responses[i]);
            p.done = true;
          }
          p.done_cv.notify_all();
        }
      } else {
        // One bad (or failing) request must not poison its batch peers:
        // retry each request on its own and report per-request errors.
        for (const auto& p : scalar) {
          std::exception_ptr error;
          protocol::GuardbandResponse resp;
          try {
            resp = handle_batch({p->request})[0];
          } catch (...) {
            error = std::current_exception();
          }
          {
            const std::lock_guard<std::mutex> lock(p->mutex);
            p->response = std::move(resp);
            p->error = error;
            p->done = true;
          }
          p->done_cv.notify_all();
        }
      }
    }

    if (!traces.empty()) {
      std::vector<protocol::TraceRequest> requests;
      requests.reserve(traces.size());
      for (const auto& p : traces) requests.push_back(p->trace_request);
      std::vector<protocol::TraceResponse> responses;
      std::exception_ptr batch_error;
      try {
        responses = handle_trace_batch(requests);
      } catch (...) {
        batch_error = std::current_exception();
      }
      if (batch_error == nullptr) {
        for (std::size_t i = 0; i < traces.size(); ++i) {
          PendingRequest& p = *traces[i];
          {
            const std::lock_guard<std::mutex> lock(p.mutex);
            p.trace_response = std::move(responses[i]);
            p.done = true;
          }
          p.done_cv.notify_all();
        }
      } else {
        for (const auto& p : traces) {
          std::exception_ptr error;
          protocol::TraceResponse resp;
          try {
            resp = handle_trace_batch({p->trace_request})[0];
          } catch (...) {
            error = std::current_exception();
          }
          {
            const std::lock_guard<std::mutex> lock(p->mutex);
            p->trace_response = std::move(resp);
            p->error = error;
            p->done = true;
          }
          p->done_cv.notify_all();
        }
      }
    }
  }
}

std::string GuardbandServer::serve_payload(std::string_view envelope) {
  if (protocol::is_trace_request_envelope(envelope)) {
    return serve_trace_payload(envelope);
  }
  protocol::GuardbandRequest request;
  try {
    request = protocol::decode_request(envelope);
  } catch (const util::codec::Error& e) {
    ++errors_;
    protocol::ErrorResponse err;
    err.code = protocol::ErrorResponse::kMalformedFrame;
    err.message = e.what();
    return protocol::encode_error(err);
  }
  if (auto err = validate(request)) {
    ++errors_;
    return protocol::encode_error(*err);
  }
  try {
    return protocol::encode_response(handle(request));
  } catch (const std::exception& e) {
    ++errors_;
    protocol::ErrorResponse err;
    err.request_id = request.request_id;
    err.code = protocol::ErrorResponse::kInternal;
    err.message = e.what();
    return protocol::encode_error(err);
  }
}

std::string GuardbandServer::serve_trace_payload(std::string_view envelope) {
  protocol::TraceRequest request;
  try {
    request = protocol::decode_trace_request(envelope);
  } catch (const util::codec::Error& e) {
    ++errors_;
    protocol::ErrorResponse err;
    err.code = protocol::ErrorResponse::kMalformedFrame;
    err.message = e.what();
    return protocol::encode_error(err);
  }
  if (auto err = validate_trace(request)) {
    ++errors_;
    return protocol::encode_error(*err);
  }
  try {
    return protocol::encode_trace_response(handle_trace(request));
  } catch (const std::exception& e) {
    ++errors_;
    protocol::ErrorResponse err;
    err.request_id = request.request_id;
    err.code = protocol::ErrorResponse::kInternal;
    err.message = e.what();
    return protocol::encode_error(err);
  }
}

std::string GuardbandServer::serve_frame(std::string_view frame_bytes) {
  protocol::FrameReader reader;
  reader.feed(frame_bytes);
  const std::optional<std::string> envelope = reader.next();
  const auto framing_error = [&](const char* message) {
    ++errors_;
    protocol::ErrorResponse err;
    err.code = protocol::ErrorResponse::kMalformedFrame;
    err.message = message;
    return protocol::frame(protocol::encode_error(err));
  };
  if (reader.error() != nullptr) return framing_error(reader.error());
  if (!envelope.has_value()) return framing_error("truncated frame");
  if (reader.pending_bytes() != 0) return framing_error("trailing bytes after frame");
  return protocol::frame(serve_payload(*envelope));
}

GuardbandServer::Stats GuardbandServer::stats() const {
  Stats s;
  s.requests = requests_.load();
  s.tuple_hits = tuple_hits_.load();
  s.tuples_evaluated = tuples_evaluated_.load();
  s.groups_evaluated = groups_evaluated_.load();
  s.batched_corners = batched_corners_.load();
  s.admission_batches = admission_batches_.load();
  s.errors = errors_.load();
  s.trace_requests = trace_requests_.load();
  s.trace_hits = trace_hits_.load();
  s.traces_evaluated = traces_evaluated_.load();
  return s;
}

std::vector<runner::TaskMetrics> GuardbandServer::drain_metrics() {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  std::vector<runner::TaskMetrics> out = std::move(metrics_);
  metrics_.clear();
  return out;
}

}  // namespace taf::service

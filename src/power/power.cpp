#include "power/power.hpp"

#include <cassert>

namespace taf::power {

namespace {

using coffe::ResourceKind;
using netlist::PrimKind;

}  // namespace

units::Microwatts tile_leakage(const coffe::DeviceModel& dev, arch::TileKind kind,
                               const arch::ArchParams& arch, units::Celsius temp) {
  // Routing resources exist on every tile: wires anchored per tile
  // (2 * W / L SB muxes) plus the connection-block muxes.
  const double sb_count = 2.0 * arch.channel_tracks / arch.wire_segment_length;
  double uw = sb_count * dev.leakage(ResourceKind::SbMux, temp).value() +
              arch.cluster_inputs * dev.leakage(ResourceKind::CbMux, temp).value();
  switch (kind) {
    case arch::TileKind::Clb:
      uw += arch.cluster_n * (dev.leakage(ResourceKind::Lut, temp).value() +
                              dev.leakage(ResourceKind::OutputMux, temp).value() +
                              dev.leakage(ResourceKind::FeedbackMux, temp).value()) +
            arch.cluster_n * arch.lut_k * dev.leakage(ResourceKind::LocalMux, temp).value();
      break;
    case arch::TileKind::Bram:
      uw += dev.leakage(ResourceKind::Bram, temp).value();
      break;
    case arch::TileKind::Dsp:
      uw += dev.leakage(ResourceKind::Dsp, temp).value();
      break;
    case arch::TileKind::Io:
      break;  // pads modelled as leakage-free
  }
  return units::Microwatts{uw};
}

std::vector<double> block_dynamic_power(const coffe::DeviceModel& dev,
                                        const netlist::Netlist& nl,
                                        const pack::PackedNetlist& packed,
                                        const std::vector<activity::SignalStats>& act,
                                        units::Megahertz f) {
  // Mirrors the block-dynamic section of compute_power() term for term,
  // binned by block instead of tile so the result is placement-free.
  std::vector<double> block_w(packed.blocks.size(), 0.0);
  auto net_density = [&](netlist::NetId n) {
    return n >= 0 && n < static_cast<netlist::NetId>(act.size())
               ? act[static_cast<std::size_t>(n)].density
               : 0.0;
  };
  auto add_uw = [&](int block, double uw) {
    block_w[static_cast<std::size_t>(block)] += uw * 1e-6;
  };
  for (netlist::PrimId id = 0; id < static_cast<netlist::PrimId>(nl.prims().size());
       ++id) {
    const auto& p = nl.prim(id);
    const int block = packed.block_of_prim[static_cast<std::size_t>(id)];
    if (block < 0) continue;
    const double alpha = p.output != netlist::kNoNet ? net_density(p.output) : 0.0;
    switch (p.kind) {
      case PrimKind::Lut: {
        add_uw(block, dev.dyn_power(ResourceKind::Lut, f, alpha).value());
        double in_alpha = 0.0;
        for (netlist::NetId in : p.inputs)
          if (in != netlist::kNoNet) in_alpha += net_density(in);
        add_uw(block, dev.dyn_power(ResourceKind::LocalMux, f, in_alpha).value());
        add_uw(block, dev.dyn_power(ResourceKind::OutputMux, f, alpha).value());
        break;
      }
      case PrimKind::Bram:
        add_uw(block, dev.dyn_power(ResourceKind::Bram, f, 0.5 + alpha).value());
        break;
      case PrimKind::Dsp:
        add_uw(block, dev.dyn_power(ResourceKind::Dsp, f, 0.25 + 0.5 * alpha).value());
        break;
      default:
        break;
    }
  }
  return block_w;
}

PowerBreakdown compute_power(const coffe::DeviceModel& dev, const netlist::Netlist& nl,
                             const pack::PackedNetlist& packed,
                             const place::Placement& pl, const route::RrGraph& rr,
                             const route::RouteResult& routes,
                             const std::vector<activity::SignalStats>& act,
                             units::Megahertz f, const std::vector<double>& tile_temp_c,
                             const arch::FpgaGrid& grid) {
  assert(static_cast<int>(tile_temp_c.size()) == grid.num_tiles());
  PowerBreakdown result;
  result.tile_w.assign(static_cast<std::size_t>(grid.num_tiles()), 0.0);

  auto add_uw = [&](arch::TilePos pos, double uw, bool dynamic) {
    const double w = uw * 1e-6;
    result.tile_w[static_cast<std::size_t>(grid.index_of(pos))] += w;
    (dynamic ? result.dynamic_w : result.leakage_w) += units::Watts{w};
  };

  // --- Leakage: full per-tile inventory at the tile temperature.
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      const double t = tile_temp_c[static_cast<std::size_t>(grid.index_of(x, y))];
      add_uw({x, y}, tile_leakage(dev, grid.at(x, y), dev.arch, units::Celsius{t}).value(),
             false);
    }
  }

  // --- Dynamic: blocks.
  auto net_density = [&](netlist::NetId n) {
    return n >= 0 && n < static_cast<netlist::NetId>(act.size())
               ? act[static_cast<std::size_t>(n)].density
               : 0.0;
  };
  for (netlist::PrimId id = 0; id < static_cast<netlist::PrimId>(nl.prims().size());
       ++id) {
    const auto& p = nl.prim(id);
    const int block = packed.block_of_prim[static_cast<std::size_t>(id)];
    if (block < 0) continue;
    const arch::TilePos pos = pl.pos[static_cast<std::size_t>(block)];
    const double alpha = p.output != netlist::kNoNet ? net_density(p.output) : 0.0;
    switch (p.kind) {
      case PrimKind::Lut: {
        add_uw(pos, dev.dyn_power(ResourceKind::Lut, f, alpha).value(), true);
        // Input muxes switch with the input nets.
        double in_alpha = 0.0;
        for (netlist::NetId in : p.inputs)
          if (in != netlist::kNoNet) in_alpha += net_density(in);
        add_uw(pos, dev.dyn_power(ResourceKind::LocalMux, f, in_alpha).value(), true);
        add_uw(pos, dev.dyn_power(ResourceKind::OutputMux, f, alpha).value(), true);
        break;
      }
      case PrimKind::Bram:
        add_uw(pos, dev.dyn_power(ResourceKind::Bram, f, 0.5 + alpha).value(), true);
        break;
      case PrimKind::Dsp:
        add_uw(pos, dev.dyn_power(ResourceKind::Dsp, f, 0.25 + 0.5 * alpha).value(), true);
        break;
      default:
        break;
    }
  }

  // --- Dynamic: routing. Each occupied wire burns one SB mux's switched
  // energy in the tile that anchors (drives) it.
  for (std::size_t bn = 0; bn < packed.block_nets.size(); ++bn) {
    const auto& net = packed.block_nets[bn];
    const double alpha = net_density(net.net);
    const route::NetRoute& nr = routes.routes[bn];
    for (route::RrNodeId n : nr.nodes) {
      const route::RrNode& node = rr.node(n);
      switch (node.kind) {
        case route::RrKind::WireH:
        case route::RrKind::WireV:
          add_uw(node.tile, dev.dyn_power(ResourceKind::SbMux, f, alpha).value(), true);
          break;
        case route::RrKind::Ipin:
          add_uw(node.tile, dev.dyn_power(ResourceKind::CbMux, f, alpha).value(), true);
          break;
        case route::RrKind::Opin:
          break;  // output mux accounted with the block
      }
    }
    // Intra-block feedback connections switch the feedback muxes.
    (void)nl;
  }

  return result;
}

}  // namespace taf::power

#pragma once
// Per-tile power estimation (the paper's in-house power script).
//
// Leakage: every fabricated resource leaks whether used or not (the
// paper's "abundance of leaky resources") — each tile carries its full
// inventory of muxes/LUTs/hard cores, and leakage is evaluated at the
// tile's own temperature.
// Dynamic: scaled from the Table II characterization (pdyn at 100 MHz,
// alpha=1) by each net's estimated activity and the design frequency;
// routed wires burn SB-mux energy in the tile that drives them, so the
// spatial power distribution tracks the routing, as the paper requires.

#include <vector>

#include "activity/activity.hpp"
#include "arch/fpga_grid.hpp"
#include "coffe/device_model.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/router.hpp"
#include "route/rr_graph.hpp"
#include "util/units.hpp"

namespace taf::power {

struct PowerBreakdown {
  std::vector<double> tile_w;   ///< per-tile total power [W]
  units::Watts dynamic_w;
  units::Watts leakage_w;
  units::Watts total_w() const { return dynamic_w + leakage_w; }
};

/// Per-tile leakage inventory of the architecture at a temperature.
/// Exposed for the validation bench (device base power).
units::Microwatts tile_leakage(const coffe::DeviceModel& dev, arch::TileKind kind,
                               const arch::ArchParams& arch, units::Celsius temp);

/// Per-block movable dynamic power [W]: the block-anchored dynamic terms
/// of compute_power() (LUT + local/output mux, BRAM, DSP switching)
/// attributed to the packed block that carries them — one entry per
/// block. This is the per-block -> per-tile power Jacobian of placement:
/// tile_w = sum_b block_w[b] * e_{tile(b)} + placement-anchored routing
/// and leakage terms, so moving block b from tile t1 to t2 shifts
/// exactly block_w[b] watts between the two tiles. Routing and leakage
/// are excluded (the former follows the routes, the latter the
/// temperature field); the thermal-aware placer treats both as frozen
/// between gradient refreshes (DESIGN.md section 15).
std::vector<double> block_dynamic_power(const coffe::DeviceModel& dev,
                                        const netlist::Netlist& nl,
                                        const pack::PackedNetlist& packed,
                                        const std::vector<activity::SignalStats>& act,
                                        units::Megahertz f);

/// Full power map for an implemented design at frequency f and the given
/// per-tile temperatures.
PowerBreakdown compute_power(const coffe::DeviceModel& dev,
                             const netlist::Netlist& nl,
                             const pack::PackedNetlist& packed,
                             const place::Placement& pl, const route::RrGraph& rr,
                             const route::RouteResult& routes,
                             const std::vector<activity::SignalStats>& act,
                             units::Megahertz f, const std::vector<double>& tile_temp_c,
                             const arch::FpgaGrid& grid);

}  // namespace taf::power

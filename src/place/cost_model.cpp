#include "place/cost_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace taf::place {

double q_factor(int pins) {
  static const double kQ[] = {1.0,    1.0,    1.0,    1.0828, 1.1536, 1.2206,
                              1.2823, 1.3385, 1.3991, 1.4493, 1.4974};
  if (pins <= 10) return kQ[std::max(0, pins)];
  return 1.4974 + (pins - 10) * 0.0264;
}

CostModel::CostModel(const pack::PackedNetlist& packed, const arch::FpgaGrid& grid,
                     Placement& pl, const ThermalField* thermal)
    : packed_(packed), grid_(grid), pl_(pl), thermal_(thermal) {
  // A zero-weight field contributes exactly nothing; drop it so the
  // wirelength-only fast path (and its bit-identity contract) applies.
  if (thermal_ != nullptr && thermal_->weight == 0.0) thermal_ = nullptr;
  if (thermal_ != nullptr) {
    if (thermal_->dpeak_dp_k_per_w.size() !=
            static_cast<std::size_t>(grid_.num_tiles()) ||
        thermal_->block_power_w.size() != packed_.blocks.size()) {
      throw std::invalid_argument(
          "place::CostModel: thermal field shape mismatch: " +
          std::to_string(thermal_->dpeak_dp_k_per_w.size()) + " prices for " +
          std::to_string(grid_.num_tiles()) + " tiles, " +
          std::to_string(thermal_->block_power_w.size()) + " block powers for " +
          std::to_string(packed_.blocks.size()) + " blocks");
    }
  }
  nets_of_block_.resize(packed_.blocks.size());
  for (int n = 0; n < static_cast<int>(packed_.block_nets.size()); ++n) {
    const auto& bn = packed_.block_nets[static_cast<std::size_t>(n)];
    nets_of_block_[static_cast<std::size_t>(bn.driver_block)].push_back(n);
    for (int s : bn.sink_blocks) nets_of_block_[static_cast<std::size_t>(s)].push_back(n);
  }
}

double CostModel::net_cost(int net) const {
  const auto& bn = packed_.block_nets[static_cast<std::size_t>(net)];
  NetBox box;
  const arch::TilePos d = pl_.pos[static_cast<std::size_t>(bn.driver_block)];
  box.xmin = box.xmax = d.x;
  box.ymin = box.ymax = d.y;
  box.pins = 1 + static_cast<int>(bn.sink_blocks.size());
  for (int s : bn.sink_blocks) {
    const arch::TilePos p = pl_.pos[static_cast<std::size_t>(s)];
    box.xmin = std::min(box.xmin, p.x);
    box.xmax = std::max(box.xmax, p.x);
    box.ymin = std::min(box.ymin, p.y);
    box.ymax = std::max(box.ymax, p.y);
  }
  return box.cost();
}

double CostModel::price_at(arch::TilePos p) const {
  return thermal_->dpeak_dp_k_per_w[static_cast<std::size_t>(grid_.index_of(p))];
}

double CostModel::thermal_total() const {
  double s = 0.0;
  for (std::size_t b = 0; b < packed_.blocks.size(); ++b) {
    s += thermal_->block_power_w[b] * price_at(pl_.pos[b]);
  }
  return thermal_->weight * s;
}

double CostModel::total() const {
  double wl = wirelength_cost(packed_, pl_);
  if (thermal_ != nullptr) wl += thermal_total();
  return wl;
}

void CostModel::stage_move(int b1, int b2) {
  affected_ = nets_of_block_[static_cast<std::size_t>(b1)];
  if (b2 >= 0) {
    affected_.insert(affected_.end(), nets_of_block_[static_cast<std::size_t>(b2)].begin(),
                     nets_of_block_[static_cast<std::size_t>(b2)].end());
  }
  std::sort(affected_.begin(), affected_.end());
  affected_.erase(std::unique(affected_.begin(), affected_.end()), affected_.end());

  staged_before_ = 0.0;
  for (int n : affected_) staged_before_ += net_cost(n);
}

double CostModel::staged_delta(int b1, arch::TilePos old1, int b2,
                               arch::TilePos old2) const {
  double after = 0.0;
  for (int n : affected_) after += net_cost(n);
  double delta = after - staged_before_;
  if (thermal_ != nullptr) {
    // O(1) re-pricing: only the moved blocks change tiles, so the
    // thermal sum shifts by each block's power times its price change.
    double td = thermal_->block_power_w[static_cast<std::size_t>(b1)] *
                (price_at(pl_.pos[static_cast<std::size_t>(b1)]) - price_at(old1));
    if (b2 >= 0) {
      td += thermal_->block_power_w[static_cast<std::size_t>(b2)] *
            (price_at(pl_.pos[static_cast<std::size_t>(b2)]) - price_at(old2));
    }
    delta += thermal_->weight * td;
  }
  return delta;
}

}  // namespace taf::place

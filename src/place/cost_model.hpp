#pragma once
// Composable placement cost model: the q-corrected HPWL wirelength term
// plus an optional thermal term priced by an adjoint gradient field
// (DESIGN.md section 15).
//
// INTERNAL to src/place — the place-cost-seam lint rule bans this header
// and its identifiers outside the placement layer. Consumers drive the
// model through place()/refine_placement() in place/place.hpp; the
// ThermalField exchange type lives there for the same reason.
//
// Contract: with no thermal field (or weight zero) every arithmetic
// expression the model evaluates is the one the fused annealer used, in
// the same order, so place() reproduces pre-refactor placements
// bit-for-bit (the ZeroWeight differential tests pin this).

#include <vector>

#include "arch/fpga_grid.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"

namespace taf::place {

/// VPR's crossing-count correction for multi-terminal nets.
double q_factor(int pins);

struct NetBox {
  int xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  int pins = 0;
  double cost() const {
    return q_factor(pins) * ((xmax - xmin) + (ymax - ymin));
  }
};

/// Incremental cost evaluation over a live Placement. The annealer owns
/// slot bookkeeping and position updates; the model owns every cost
/// number. Move evaluation is two-phase to preserve the fused annealer's
/// exact sequence: stage_move() records the affected nets and their cost
/// at the OLD positions; the caller then applies the proposed positions
/// and staged_delta() re-prices the same nets (plus the O(1) thermal
/// re-pricing of the one or two moved blocks).
class CostModel {
 public:
  /// pl and thermal (may be null) are borrowed for the model's lifetime.
  /// A non-null thermal field must carry one price per grid tile and one
  /// power per block (std::invalid_argument otherwise).
  CostModel(const pack::PackedNetlist& packed, const arch::FpgaGrid& grid,
            Placement& pl, const ThermalField* thermal);

  /// Full cost at the current positions: wirelength + weight * sum_b
  /// P_b * price(tile(b)). Exactly wirelength_cost() when thermal is off.
  double total() const;

  /// q-corrected bounding-box cost of one block net at current positions.
  double net_cost(int net) const;

  /// Nets incident to each block (driver + sinks, deduped per net).
  const std::vector<int>& nets_of(int block) const {
    return nets_of_block_[static_cast<std::size_t>(block)];
  }

  /// Phase 1 of a proposed swap of b1 with b2 (b2 < 0 for a free target
  /// slot): collect the affected nets and price them at the current
  /// (old) positions.
  void stage_move(int b1, int b2);

  /// Phase 2, after the caller applied the proposed positions to the
  /// placement: total cost delta of the staged move. old1/old2 are the
  /// pre-move positions of b1/b2 (old2 ignored when b2 < 0).
  double staged_delta(int b1, arch::TilePos old1, int b2,
                      arch::TilePos old2) const;

  bool thermal_active() const { return thermal_ != nullptr; }

 private:
  double thermal_total() const;
  double price_at(arch::TilePos p) const;

  const pack::PackedNetlist& packed_;
  const arch::FpgaGrid& grid_;
  Placement& pl_;
  const ThermalField* thermal_;
  std::vector<std::vector<int>> nets_of_block_;
  std::vector<int> affected_;
  double staged_before_ = 0.0;
};

}  // namespace taf::place

#pragma once
// Simulated-annealing placement (the VPR place stage).
//
// Wirelength-driven annealing over legal slots: CLBs on logic tiles,
// BRAM/DSP on their columns, IOs on perimeter pads (8 per tile). Cost is
// the q-corrected half-perimeter wirelength used by VPR; the schedule
// adapts the temperature decay to the acceptance rate.

#include <vector>

#include "arch/fpga_grid.hpp"
#include "pack/pack.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace taf::place {

struct Placement {
  /// Tile position of every block (indexed by block id).
  std::vector<arch::TilePos> pos;
  double cost = 0.0;  ///< final HPWL cost
};

/// Per-tile thermal pricing for thermal-aware placement (DESIGN.md
/// section 15): prices are d(smooth peak T)/d(tile power) [K/W] from
/// thermal::ThermalGrid::solve_adjoint (quantized by the producer so
/// accept decisions never depend on the thermal backend), and
/// block_power_w is the per-block -> per-tile power Jacobian from
/// power::block_dynamic_power. The placement cost becomes
///   HPWL + weight * sum_b P_b * price(tile(b)),
/// i.e. weight converts the predicted smooth-peak rise [K] into HPWL
/// units. A zero weight disables the term entirely.
struct ThermalField {
  std::vector<double> dpeak_dp_k_per_w;  ///< one price per tile (grid index order)
  std::vector<double> block_power_w;     ///< one movable power per block [W]
  double weight = 0.0;                   ///< HPWL units per kelvin
};

struct PlaceOptions {
  unsigned seed = 1;
  /// Scales moves per temperature (VPR's inner_num). Must be positive
  /// and finite (place() throws std::invalid_argument otherwise — a
  /// non-positive effort silently degenerated the anneal to the floor
  /// move count at every temperature).
  double effort = 1.0;
  /// Pads per IO tile; must be >= 1 or place() throws (0 used to build
  /// an empty IO slot pool and fail with a misleading capacity error).
  int io_capacity = 8;
  /// Optional thermal pricing, borrowed for the call (null = thermally
  /// blind). With null or weight == 0 the anneal is bit-identical to the
  /// pre-cost-model placer.
  const ThermalField* thermal = nullptr;
};

/// Anneal the packed netlist onto the grid. The grid must have enough
/// capacity of every tile kind (use arch::FpgaGrid::fit). Throws
/// std::invalid_argument on invalid options (see PlaceOptions).
Placement place(const pack::PackedNetlist& packed, const arch::FpgaGrid& grid,
                const PlaceOptions& opt = {});

/// Bounded refinement pass for the place->thermal feedback edge:
/// near-greedy descent on the composed wirelength + thermal cost,
/// starting from `start` and confined to at most max_rounds rounds (or a
/// descent fixed point, whichever first). Moves are directed — only
/// blocks carrying at least the mean dynamic power are proposed, since
/// cold-block swaps cannot improve the thermal term and only perturb
/// timing — and plateau (zero-delta) swaps are rejected. Move pricing
/// and options validation match place(); the start placement must be
/// legal on the grid under io_capacity.
struct RefineOptions {
  unsigned seed = 1;
  double effort = 1.0;
  int io_capacity = 8;
  /// Upper bound on temperature steps (the "bounded" in bounded pass).
  int max_rounds = 32;
  /// Starting temperature as a fraction of the per-net cost. The default
  /// is effectively greedy descent: uphill moves are (numerically) never
  /// accepted, so refinement can only improve the composed cost — uphill
  /// wirelength moves survive only when the thermal term pays for them.
  double start_t_factor = 1e-4;
};

struct RefineStats {
  long long moves = 0;     ///< proposed moves (accepted + rejected)
  long long accepted = 0;  ///< accepted moves
};

Placement refine_placement(const pack::PackedNetlist& packed,
                           const arch::FpgaGrid& grid, const Placement& start,
                           const ThermalField& thermal, const RefineOptions& opt,
                           RefineStats* stats = nullptr);

/// Total q-corrected HPWL of a placement (for testing / reporting).
double wirelength_cost(const pack::PackedNetlist& packed, const Placement& pl);

/// Artifact codec (util/codec.hpp): exact round-trip, byte-identical on
/// re-serialization (cost survives bit-for-bit through the f64 path).
void serialize(const Placement& pl, util::codec::Encoder& enc);
Placement deserialize(util::codec::Decoder& dec);

}  // namespace taf::place

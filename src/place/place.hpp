#pragma once
// Simulated-annealing placement (the VPR place stage).
//
// Wirelength-driven annealing over legal slots: CLBs on logic tiles,
// BRAM/DSP on their columns, IOs on perimeter pads (8 per tile). Cost is
// the q-corrected half-perimeter wirelength used by VPR; the schedule
// adapts the temperature decay to the acceptance rate.

#include <vector>

#include "arch/fpga_grid.hpp"
#include "pack/pack.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace taf::place {

struct Placement {
  /// Tile position of every block (indexed by block id).
  std::vector<arch::TilePos> pos;
  double cost = 0.0;  ///< final HPWL cost
};

struct PlaceOptions {
  unsigned seed = 1;
  /// Scales moves per temperature (VPR's inner_num).
  double effort = 1.0;
  int io_capacity = 8;  ///< pads per IO tile
};

/// Anneal the packed netlist onto the grid. The grid must have enough
/// capacity of every tile kind (use arch::FpgaGrid::fit).
Placement place(const pack::PackedNetlist& packed, const arch::FpgaGrid& grid,
                const PlaceOptions& opt = {});

/// Total q-corrected HPWL of a placement (for testing / reporting).
double wirelength_cost(const pack::PackedNetlist& packed, const Placement& pl);

/// Artifact codec (util/codec.hpp): exact round-trip, byte-identical on
/// re-serialization (cost survives bit-for-bit through the f64 path).
void serialize(const Placement& pl, util::codec::Encoder& enc);
Placement deserialize(util::codec::Decoder& dec);

}  // namespace taf::place

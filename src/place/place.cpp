#include "place/place.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace taf::place {

namespace {

using arch::FpgaGrid;
using arch::TileKind;
using arch::TilePos;
using pack::BlockKind;
using pack::PackedNetlist;

TileKind tile_kind_for(BlockKind k) {
  switch (k) {
    case BlockKind::Clb: return TileKind::Clb;
    case BlockKind::Bram: return TileKind::Bram;
    case BlockKind::Dsp: return TileKind::Dsp;
    case BlockKind::Io: return TileKind::Io;
  }
  return TileKind::Clb;
}

/// VPR's crossing-count correction for multi-terminal nets.
double q_factor(int pins) {
  static const double kQ[] = {1.0,    1.0,    1.0,    1.0828, 1.1536, 1.2206,
                              1.2823, 1.3385, 1.3991, 1.4493, 1.4974};
  if (pins <= 10) return kQ[std::max(0, pins)];
  return 1.4974 + (pins - 10) * 0.0264;
}

struct NetBox {
  int xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  int pins = 0;
  double cost() const {
    return q_factor(pins) * ((xmax - xmin) + (ymax - ymin));
  }
};

}  // namespace

double wirelength_cost(const PackedNetlist& packed, const Placement& pl) {
  double total = 0.0;
  for (const auto& bn : packed.block_nets) {
    NetBox box;
    const TilePos d = pl.pos[static_cast<std::size_t>(bn.driver_block)];
    box.xmin = box.xmax = d.x;
    box.ymin = box.ymax = d.y;
    box.pins = 1 + static_cast<int>(bn.sink_blocks.size());
    for (int s : bn.sink_blocks) {
      const TilePos p = pl.pos[static_cast<std::size_t>(s)];
      box.xmin = std::min(box.xmin, p.x);
      box.xmax = std::max(box.xmax, p.x);
      box.ymin = std::min(box.ymin, p.y);
      box.ymax = std::max(box.ymax, p.y);
    }
    total += box.cost();
  }
  return total;
}

Placement place(const PackedNetlist& packed, const FpgaGrid& grid,
                const PlaceOptions& opt) {
  util::Rng rng(opt.seed);
  const int num_blocks = static_cast<int>(packed.blocks.size());

  // --- Build slot lists per block kind.
  struct Slot {
    TilePos pos;
    int block = -1;  ///< occupying block or -1
  };
  std::vector<std::vector<Slot>> slots(4);
  for (int k = 0; k < 4; ++k) {
    const TileKind tk = tile_kind_for(static_cast<BlockKind>(k));
    const int cap = tk == TileKind::Io ? opt.io_capacity : 1;
    for (const TilePos& p : grid.tiles_of(tk)) {
      for (int c = 0; c < cap; ++c) slots[static_cast<std::size_t>(k)].push_back({p, -1});
    }
  }

  // --- Random legal initial placement.
  std::vector<int> slot_of_block(static_cast<std::size_t>(num_blocks), -1);
  std::vector<int> next_free(4, 0);
  Placement pl;
  pl.pos.resize(static_cast<std::size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    const int k = static_cast<int>(packed.blocks[static_cast<std::size_t>(b)].kind);
    auto& pool = slots[static_cast<std::size_t>(k)];
    if (next_free[static_cast<std::size_t>(k)] >= static_cast<int>(pool.size()))
      throw std::runtime_error("place: grid capacity exceeded for kind " +
                               std::to_string(k));
    // Place into a random free slot: swap a random remaining slot into
    // the next-free position (Fisher-Yates over slots).
    const int base = next_free[static_cast<std::size_t>(k)]++;
    const int pick = base + static_cast<int>(rng.next_below(
                               static_cast<std::uint32_t>(pool.size() - static_cast<std::size_t>(base))));
    std::swap(pool[static_cast<std::size_t>(base)], pool[static_cast<std::size_t>(pick)]);
    pool[static_cast<std::size_t>(base)].block = b;
    slot_of_block[static_cast<std::size_t>(b)] = base;
    pl.pos[static_cast<std::size_t>(b)] = pool[static_cast<std::size_t>(base)].pos;
  }

  // --- Per-block incident nets for incremental cost evaluation.
  std::vector<std::vector<int>> nets_of_block(static_cast<std::size_t>(num_blocks));
  for (int n = 0; n < static_cast<int>(packed.block_nets.size()); ++n) {
    const auto& bn = packed.block_nets[static_cast<std::size_t>(n)];
    nets_of_block[static_cast<std::size_t>(bn.driver_block)].push_back(n);
    for (int s : bn.sink_blocks) nets_of_block[static_cast<std::size_t>(s)].push_back(n);
  }

  auto net_cost = [&](int n) {
    const auto& bn = packed.block_nets[static_cast<std::size_t>(n)];
    NetBox box;
    const TilePos d = pl.pos[static_cast<std::size_t>(bn.driver_block)];
    box.xmin = box.xmax = d.x;
    box.ymin = box.ymax = d.y;
    box.pins = 1 + static_cast<int>(bn.sink_blocks.size());
    for (int s : bn.sink_blocks) {
      const TilePos p = pl.pos[static_cast<std::size_t>(s)];
      box.xmin = std::min(box.xmin, p.x);
      box.xmax = std::max(box.xmax, p.x);
      box.ymin = std::min(box.ymin, p.y);
      box.ymax = std::max(box.ymax, p.y);
    }
    return box.cost();
  };

  double cost = wirelength_cost(packed, pl);
  if (packed.block_nets.empty() || num_blocks < 2) {
    pl.cost = cost;
    return pl;
  }

  // --- Annealing schedule (VPR-flavoured).
  const int moves_per_t = std::max(
      64, static_cast<int>(opt.effort *
                           std::pow(static_cast<double>(num_blocks), 4.0 / 3.0)));

  // Initial temperature: sample random swaps.
  double t;
  {
    util::Accumulator deltas;
    for (int i = 0; i < 200; ++i) {
      const int b = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_blocks)));
      deltas.add(std::fabs(net_cost(nets_of_block[static_cast<std::size_t>(b)].empty()
                                        ? 0
                                        : nets_of_block[static_cast<std::size_t>(b)][0])));
    }
    t = 20.0 * std::max(deltas.mean(), 1.0);
  }

  // One proposed move: pick a random block, a random slot of its kind,
  // swap occupants (or move into a free slot).
  auto try_move = [&](double temperature) -> bool {
    const int b1 = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_blocks)));
    const int k = static_cast<int>(packed.blocks[static_cast<std::size_t>(b1)].kind);
    auto& pool = slots[static_cast<std::size_t>(k)];
    const int s1 = slot_of_block[static_cast<std::size_t>(b1)];
    const int s2 = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(pool.size())));
    if (s1 == s2) return false;
    const int b2 = pool[static_cast<std::size_t>(s2)].block;

    // Collect affected nets (dedup via sort).
    std::vector<int> affected = nets_of_block[static_cast<std::size_t>(b1)];
    if (b2 >= 0) {
      affected.insert(affected.end(), nets_of_block[static_cast<std::size_t>(b2)].begin(),
                      nets_of_block[static_cast<std::size_t>(b2)].end());
    }
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

    double before = 0.0;
    for (int n : affected) before += net_cost(n);

    // Apply.
    pl.pos[static_cast<std::size_t>(b1)] = pool[static_cast<std::size_t>(s2)].pos;
    if (b2 >= 0) pl.pos[static_cast<std::size_t>(b2)] = pool[static_cast<std::size_t>(s1)].pos;

    double after = 0.0;
    for (int n : affected) after += net_cost(n);
    const double delta = after - before;

    const bool accept = delta <= 0.0 || rng.next_double() < std::exp(-delta / temperature);
    if (accept) {
      std::swap(pool[static_cast<std::size_t>(s1)].block, pool[static_cast<std::size_t>(s2)].block);
      slot_of_block[static_cast<std::size_t>(b1)] = s2;
      if (b2 >= 0) slot_of_block[static_cast<std::size_t>(b2)] = s1;
      cost += delta;
      return true;
    }
    // Revert.
    pl.pos[static_cast<std::size_t>(b1)] = pool[static_cast<std::size_t>(s1)].pos;
    if (b2 >= 0) pl.pos[static_cast<std::size_t>(b2)] = pool[static_cast<std::size_t>(s2)].pos;
    return false;
  };

  const double exit_t = 0.002 * cost / static_cast<double>(std::max<std::size_t>(packed.block_nets.size(), 1));
  int rounds = 0;
  while (t > exit_t && rounds++ < 200) {
    int accepted = 0;
    for (int m = 0; m < moves_per_t; ++m) accepted += try_move(t) ? 1 : 0;
    const double rate = static_cast<double>(accepted) / moves_per_t;
    // VPR's adaptive alpha: cool slowly near the critical acceptance band.
    double alpha;
    if (rate > 0.96) alpha = 0.5;
    else if (rate > 0.8) alpha = 0.9;
    else if (rate > 0.15) alpha = 0.95;
    else alpha = 0.8;
    t *= alpha;
  }

  pl.cost = wirelength_cost(packed, pl);
  util::log_debug("place: %d blocks, final HPWL %.1f after %d rounds", num_blocks,
                  pl.cost, rounds);
  return pl;
}

void serialize(const Placement& pl, util::codec::Encoder& enc) {
  enc.u64(pl.pos.size());
  for (const arch::TilePos& p : pl.pos) {
    enc.i32(p.x);
    enc.i32(p.y);
  }
  enc.f64(pl.cost);
}

Placement deserialize(util::codec::Decoder& dec) {
  Placement pl;
  const std::uint64_t n = dec.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    arch::TilePos p;
    p.x = dec.i32();
    p.y = dec.i32();
    pl.pos.push_back(p);
  }
  pl.cost = dec.f64();
  return pl;
}

}  // namespace taf::place

#include "place/place.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "place/cost_model.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace taf::place {

namespace {

using arch::FpgaGrid;
using arch::TileKind;
using arch::TilePos;
using pack::BlockKind;
using pack::PackedNetlist;

TileKind tile_kind_for(BlockKind k) {
  switch (k) {
    case BlockKind::Clb: return TileKind::Clb;
    case BlockKind::Bram: return TileKind::Bram;
    case BlockKind::Dsp: return TileKind::Dsp;
    case BlockKind::Io: return TileKind::Io;
  }
  return TileKind::Clb;
}

void validate(double effort, int io_capacity) {
  if (!(effort > 0.0) || !std::isfinite(effort)) {
    throw std::invalid_argument(
        "place: effort must be positive and finite, got " + std::to_string(effort));
  }
  if (io_capacity < 1) {
    throw std::invalid_argument("place: io_capacity must be >= 1, got " +
                                std::to_string(io_capacity));
  }
}

struct Slot {
  TilePos pos;
  int block = -1;  ///< occupying block or -1
};

/// One slot pool per BlockKind, capacity io_capacity on IO tiles.
std::vector<std::vector<Slot>> build_slots(const FpgaGrid& grid, int io_capacity) {
  std::vector<std::vector<Slot>> slots(4);
  for (int k = 0; k < 4; ++k) {
    const TileKind tk = tile_kind_for(static_cast<BlockKind>(k));
    const int cap = tk == TileKind::Io ? io_capacity : 1;
    for (const TilePos& p : grid.tiles_of(tk)) {
      for (int c = 0; c < cap; ++c) slots[static_cast<std::size_t>(k)].push_back({p, -1});
    }
  }
  return slots;
}

/// Shared accept/reject machinery of place() and refine_placement():
/// propose a swap, price it through the cost model, apply or revert.
/// Returns true when accepted. With plateau=true every RNG draw and
/// arithmetic expression matches the pre-refactor fused annealer (the
/// bit-identity contract). refine_placement() passes plateau=false:
/// zero-delta swaps are rejected (without an RNG draw, same as the
/// legacy delta <= 0 branch) because they only churn routing.
bool try_move(const PackedNetlist& packed, std::vector<std::vector<Slot>>& slots,
              std::vector<int>& slot_of_block, Placement& pl, CostModel& model,
              util::Rng& rng, double temperature, double& cost,
              bool plateau = true,
              const std::vector<int>* candidates = nullptr,
              int max_dist = std::numeric_limits<int>::max()) {
  const int num_blocks = static_cast<int>(packed.blocks.size());
  const int b1 =
      candidates == nullptr
          ? static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_blocks)))
          : (*candidates)[rng.next_below(static_cast<std::uint32_t>(candidates->size()))];
  const int k = static_cast<int>(packed.blocks[static_cast<std::size_t>(b1)].kind);
  auto& pool = slots[static_cast<std::size_t>(k)];
  const int s1 = slot_of_block[static_cast<std::size_t>(b1)];
  const int s2 = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(pool.size())));
  if (s1 == s2) return false;
  // Range limit (refinement only): discard proposals beyond max_dist so
  // heat spreads through short hops instead of re-routing distant logic.
  {
    const TilePos p1 = pool[static_cast<std::size_t>(s1)].pos;
    const TilePos p2 = pool[static_cast<std::size_t>(s2)].pos;
    if (std::abs(p1.x - p2.x) + std::abs(p1.y - p2.y) > max_dist) return false;
  }
  const int b2 = pool[static_cast<std::size_t>(s2)].block;

  model.stage_move(b1, b2);
  const TilePos old1 = pool[static_cast<std::size_t>(s1)].pos;
  const TilePos old2 = pool[static_cast<std::size_t>(s2)].pos;

  // Apply.
  pl.pos[static_cast<std::size_t>(b1)] = pool[static_cast<std::size_t>(s2)].pos;
  if (b2 >= 0) pl.pos[static_cast<std::size_t>(b2)] = pool[static_cast<std::size_t>(s1)].pos;

  const double delta = model.staged_delta(b1, old1, b2, old2);

  bool accept;
  if (delta < 0.0) {
    accept = true;
  } else if (delta == 0.0) {
    accept = plateau;  // no RNG draw either way, matching the legacy branch
  } else {
    accept = rng.next_double() < std::exp(-delta / temperature);
  }
  if (accept) {
    std::swap(pool[static_cast<std::size_t>(s1)].block, pool[static_cast<std::size_t>(s2)].block);
    slot_of_block[static_cast<std::size_t>(b1)] = s2;
    if (b2 >= 0) slot_of_block[static_cast<std::size_t>(b2)] = s1;
    cost += delta;
    return true;
  }
  // Revert.
  pl.pos[static_cast<std::size_t>(b1)] = pool[static_cast<std::size_t>(s1)].pos;
  if (b2 >= 0) pl.pos[static_cast<std::size_t>(b2)] = pool[static_cast<std::size_t>(s2)].pos;
  return false;
}

/// VPR's adaptive alpha: cool slowly near the critical acceptance band.
double adaptive_alpha(double rate) {
  if (rate > 0.96) return 0.5;
  if (rate > 0.8) return 0.9;
  if (rate > 0.15) return 0.95;
  return 0.8;
}

int moves_per_temperature(double effort, int num_blocks) {
  return std::max(
      64, static_cast<int>(effort *
                           std::pow(static_cast<double>(num_blocks), 4.0 / 3.0)));
}

}  // namespace

double wirelength_cost(const PackedNetlist& packed, const Placement& pl) {
  double total = 0.0;
  for (const auto& bn : packed.block_nets) {
    NetBox box;
    const TilePos d = pl.pos[static_cast<std::size_t>(bn.driver_block)];
    box.xmin = box.xmax = d.x;
    box.ymin = box.ymax = d.y;
    box.pins = 1 + static_cast<int>(bn.sink_blocks.size());
    for (int s : bn.sink_blocks) {
      const TilePos p = pl.pos[static_cast<std::size_t>(s)];
      box.xmin = std::min(box.xmin, p.x);
      box.xmax = std::max(box.xmax, p.x);
      box.ymin = std::min(box.ymin, p.y);
      box.ymax = std::max(box.ymax, p.y);
    }
    total += box.cost();
  }
  return total;
}

Placement place(const PackedNetlist& packed, const FpgaGrid& grid,
                const PlaceOptions& opt) {
  validate(opt.effort, opt.io_capacity);
  util::Rng rng(opt.seed);
  const int num_blocks = static_cast<int>(packed.blocks.size());

  std::vector<std::vector<Slot>> slots = build_slots(grid, opt.io_capacity);

  // --- Random legal initial placement.
  std::vector<int> slot_of_block(static_cast<std::size_t>(num_blocks), -1);
  std::vector<int> next_free(4, 0);
  Placement pl;
  pl.pos.resize(static_cast<std::size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    const int k = static_cast<int>(packed.blocks[static_cast<std::size_t>(b)].kind);
    auto& pool = slots[static_cast<std::size_t>(k)];
    if (next_free[static_cast<std::size_t>(k)] >= static_cast<int>(pool.size()))
      throw std::runtime_error("place: grid capacity exceeded for kind " +
                               std::to_string(k));
    // Place into a random free slot: swap a random remaining slot into
    // the next-free position (Fisher-Yates over slots).
    const int base = next_free[static_cast<std::size_t>(k)]++;
    const int pick = base + static_cast<int>(rng.next_below(
                               static_cast<std::uint32_t>(pool.size() - static_cast<std::size_t>(base))));
    std::swap(pool[static_cast<std::size_t>(base)], pool[static_cast<std::size_t>(pick)]);
    pool[static_cast<std::size_t>(base)].block = b;
    slot_of_block[static_cast<std::size_t>(b)] = base;
    pl.pos[static_cast<std::size_t>(b)] = pool[static_cast<std::size_t>(base)].pos;
  }

  CostModel model(packed, grid, pl, opt.thermal);

  double cost = model.total();
  if (packed.block_nets.empty() || num_blocks < 2) {
    pl.cost = wirelength_cost(packed, pl);
    return pl;
  }

  // --- Annealing schedule (VPR-flavoured).
  const int moves_per_t = moves_per_temperature(opt.effort, num_blocks);

  // Initial temperature: sample random swaps.
  double t;
  {
    util::Accumulator deltas;
    for (int i = 0; i < 200; ++i) {
      const int b = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_blocks)));
      deltas.add(std::fabs(model.net_cost(model.nets_of(b).empty()
                                              ? 0
                                              : model.nets_of(b)[0])));
    }
    t = 20.0 * std::max(deltas.mean(), 1.0);
  }

  const double exit_t = 0.002 * cost / static_cast<double>(std::max<std::size_t>(packed.block_nets.size(), 1));
  int rounds = 0;
  while (t > exit_t && rounds++ < 200) {
    int accepted = 0;
    for (int m = 0; m < moves_per_t; ++m) {
      accepted += try_move(packed, slots, slot_of_block, pl, model, rng, t, cost) ? 1 : 0;
    }
    const double rate = static_cast<double>(accepted) / moves_per_t;
    t *= adaptive_alpha(rate);
  }

  pl.cost = wirelength_cost(packed, pl);
  util::log_debug("place: %d blocks, final HPWL %.1f after %d rounds", num_blocks,
                  pl.cost, rounds);
  return pl;
}

Placement refine_placement(const PackedNetlist& packed, const FpgaGrid& grid,
                           const Placement& start, const ThermalField& thermal,
                           const RefineOptions& opt, RefineStats* stats) {
  validate(opt.effort, opt.io_capacity);
  if (opt.max_rounds < 0) {
    throw std::invalid_argument("refine_placement: max_rounds must be >= 0, got " +
                                std::to_string(opt.max_rounds));
  }
  if (!(opt.start_t_factor > 0.0) || !std::isfinite(opt.start_t_factor)) {
    throw std::invalid_argument(
        "refine_placement: start_t_factor must be positive and finite, got " +
        std::to_string(opt.start_t_factor));
  }
  const int num_blocks = static_cast<int>(packed.blocks.size());
  if (start.pos.size() != static_cast<std::size_t>(num_blocks)) {
    throw std::invalid_argument(
        "refine_placement: start placement has " + std::to_string(start.pos.size()) +
        " positions for " + std::to_string(num_blocks) + " blocks");
  }
  util::Rng rng(opt.seed);

  // Rebuild the slot pools and occupancy from the start placement: each
  // block claims an unused slot of its kind at its start position.
  std::vector<std::vector<Slot>> slots = build_slots(grid, opt.io_capacity);
  std::vector<std::vector<std::vector<int>>> free_at(4);
  for (int k = 0; k < 4; ++k) {
    auto& pool = slots[static_cast<std::size_t>(k)];
    free_at[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(grid.num_tiles()));
    for (int s = 0; s < static_cast<int>(pool.size()); ++s) {
      free_at[static_cast<std::size_t>(k)]
             [static_cast<std::size_t>(grid.index_of(pool[static_cast<std::size_t>(s)].pos))]
                 .push_back(s);
    }
  }
  std::vector<int> slot_of_block(static_cast<std::size_t>(num_blocks), -1);
  Placement pl;
  pl.pos = start.pos;
  for (int b = 0; b < num_blocks; ++b) {
    const int k = static_cast<int>(packed.blocks[static_cast<std::size_t>(b)].kind);
    const TilePos p = pl.pos[static_cast<std::size_t>(b)];
    if (p.x < 0 || p.x >= grid.width() || p.y < 0 || p.y >= grid.height()) {
      throw std::invalid_argument("refine_placement: block " + std::to_string(b) +
                                  " starts off-grid");
    }
    auto& avail = free_at[static_cast<std::size_t>(k)][static_cast<std::size_t>(grid.index_of(p))];
    if (avail.empty()) {
      throw std::invalid_argument(
          "refine_placement: start placement is illegal: no free slot of kind " +
          std::to_string(k) + " at (" + std::to_string(p.x) + "," +
          std::to_string(p.y) + ") for block " + std::to_string(b));
    }
    const int s = avail.back();
    avail.pop_back();
    slots[static_cast<std::size_t>(k)][static_cast<std::size_t>(s)].block = b;
    slot_of_block[static_cast<std::size_t>(b)] = s;
  }

  CostModel model(packed, grid, pl, &thermal);
  double cost = model.total();
  RefineStats local;

  // Directed move generation: propose only blocks carrying at least the
  // mean dynamic power. Cold-block swaps cannot improve the thermal term,
  // and the wirelength-only shuffles they would produce perturb timing
  // for no thermal return — place() already annealed that landscape.
  std::vector<int> hot;
  {
    double mean_w = 0.0;
    for (double w : thermal.block_power_w) mean_w += w;
    mean_w /= static_cast<double>(std::max(num_blocks, 1));
    for (int b = 0; b < num_blocks; ++b) {
      const double w = thermal.block_power_w[static_cast<std::size_t>(b)];
      if (w > 0.0 && w >= mean_w) hot.push_back(b);
    }
  }

  if (packed.block_nets.empty() || num_blocks < 2 || opt.max_rounds == 0 ||
      hot.empty()) {
    pl.cost = wirelength_cost(packed, pl);
    if (stats != nullptr) *stats = local;
    return pl;
  }

  // Bounded near-greedy schedule: start barely warm (at the default
  // start_t_factor uphill moves are effectively never accepted, so only
  // moves improving the composed wirelength + thermal cost survive) and
  // stop at the round budget or a descent fixed point. Plateau swaps are
  // rejected (plateau=false): they cannot improve the cost and the
  // routing churn they cause is pure timing noise.
  const double per_net =
      cost / static_cast<double>(std::max<std::size_t>(packed.block_nets.size(), 1));
  double t = opt.start_t_factor * std::max(per_net, 1.0);
  const int moves_per_t =
      moves_per_temperature(opt.effort, static_cast<int>(hot.size()));
  // Short hops only: the adjoint price field decays over the thermal
  // healing length (a few tiles), so local moves capture almost all of
  // the thermal benefit at a fraction of the routing perturbation.
  const int move_radius =
      std::max(2, std::min(grid.width(), grid.height()) / 8);

  int rounds = 0;
  while (rounds++ < opt.max_rounds) {
    int accepted = 0;
    for (int m = 0; m < moves_per_t; ++m) {
      accepted += try_move(packed, slots, slot_of_block, pl, model, rng, t, cost,
                           /*plateau=*/false, &hot, move_radius)
                      ? 1
                      : 0;
    }
    local.moves += moves_per_t;
    local.accepted += accepted;
    if (accepted == 0) break;  // no proposed swap improves the cost
    const double rate = static_cast<double>(accepted) / moves_per_t;
    t *= adaptive_alpha(rate);
  }

  pl.cost = wirelength_cost(packed, pl);
  util::log_debug("refine_placement: %d blocks, HPWL %.1f after %d rounds (%lld/%lld accepted)",
                  num_blocks, pl.cost, rounds, local.accepted, local.moves);
  if (stats != nullptr) *stats = local;
  return pl;
}

void serialize(const Placement& pl, util::codec::Encoder& enc) {
  enc.u64(pl.pos.size());
  for (const arch::TilePos& p : pl.pos) {
    enc.i32(p.x);
    enc.i32(p.y);
  }
  enc.f64(pl.cost);
}

Placement deserialize(util::codec::Decoder& dec) {
  Placement pl;
  const std::uint64_t n = dec.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    arch::TilePos p;
    p.x = dec.i32();
    p.y = dec.i32();
    pl.pos.push_back(p);
  }
  pl.cost = dec.f64();
  return pl;
}

}  // namespace taf::place

#pragma once
// PathFinder negotiated-congestion router (the VPR route stage).
//
// Every block-level net is routed from its driver's OPIN to each sink's
// IPIN over the RR graph. Congestion is negotiated: present overuse is
// priced by a growing pres_fac, history cost accumulates on persistently
// overused nodes, and only congested nets are ripped up between
// iterations. A* with an admissible distance heuristic accelerates each
// search.

#include <vector>

#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/rr_graph.hpp"
#include "util/codec.hpp"

namespace taf::route {

/// The routed tree of one block-net: for each sink (same order as
/// BlockNet::sink_blocks) the node path from a tree attachment point to
/// the sink IPIN. Wire nodes on the paths define SB-hop timing.
struct NetRoute {
  /// paths[s] = RR nodes from (exclusive) tree attachment to sink IPIN
  /// (inclusive), in traversal order.
  std::vector<std::vector<RrNodeId>> paths;
  /// All RR nodes occupied by this net (deduped).
  std::vector<RrNodeId> nodes;
  /// Tree parent pointers as (node, parent) pairs; the source OPIN has no
  /// entry. Walking a sink IPIN to the source yields its full path — the
  /// thermal-aware STA prices every SB hop at its own tile temperature.
  std::vector<std::pair<RrNodeId, RrNodeId>> parents;
};

struct RouteResult {
  bool success = false;
  int iterations = 0;
  int overused_nodes = 0;
  std::vector<NetRoute> routes;  ///< indexed like PackedNetlist::block_nets
  double wire_utilization = 0.0; ///< occupied wires / total wires
};

struct RouteOptions {
  int max_iterations = 30;
  double first_iter_pres_fac = 0.8;
  double pres_fac_mult = 2.0;
  double hist_fac = 1.0;
  double astar_fac = 0.85;  ///< heuristic weight (<=1 keeps A* admissible-ish)
};

RouteResult route(const RrGraph& rr, const pack::PackedNetlist& packed,
                  const place::Placement& pl, const RouteOptions& opt = {});

/// Artifact codec (util/codec.hpp): exact round-trip, byte-identical on
/// re-serialization. RR node ids are stored raw; they are only valid for
/// the RrGraph deterministically rebuilt from the same grid/arch.
void serialize(const RouteResult& result, util::codec::Encoder& enc);
RouteResult deserialize(util::codec::Decoder& dec);

}  // namespace taf::route

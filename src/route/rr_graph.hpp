#pragma once
// Routing-resource graph for the island-style architecture.
//
// Node kinds follow VPR: block output pins (OPIN), length-L wire segments
// in horizontal/vertical channels, and block input pins (IPIN). Switch-
// block connections join wires at their endpoints (a ~12-way window that
// matches the Table I SB mux fan-in); connection-block edges tap wires
// passing a tile into its IPIN.

#include <cstdint>
#include <vector>

#include "arch/arch_params.hpp"
#include "arch/fpga_grid.hpp"

namespace taf::route {

enum class RrKind : std::uint8_t { Opin, Ipin, WireH, WireV };

using RrNodeId = int;

struct RrNode {
  RrKind kind = RrKind::WireH;
  /// Anchor tile: for pins, the block tile; for wires, the tile at the
  /// segment start (whose SB mux drives the wire — its temperature sets
  /// the wire's delay in the thermal-aware STA).
  arch::TilePos tile;
  std::int16_t track = 0;   ///< wire track index (wires only)
  std::int16_t span = 1;    ///< tiles covered (wires only)
  std::int16_t capacity = 1;
};

class RrGraph {
 public:
  RrGraph(const arch::FpgaGrid& grid, const arch::ArchParams& arch);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const RrNode& node(RrNodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }

  /// Outgoing edges of a node.
  const std::vector<RrNodeId>& fanout(RrNodeId id) const {
    return edges_[static_cast<std::size_t>(id)];
  }

  RrNodeId opin_at(int x, int y) const { return opin_[static_cast<std::size_t>(index(x, y))]; }
  RrNodeId ipin_at(int x, int y) const { return ipin_[static_cast<std::size_t>(index(x, y))]; }

  const arch::FpgaGrid& grid() const { return *grid_; }
  const arch::ArchParams& arch() const { return *arch_; }

  /// Total wire segments (for utilization reporting).
  int num_wires() const { return num_wires_; }

 private:
  int index(int x, int y) const { return y * grid_->width() + x; }
  void add_edge(RrNodeId from, RrNodeId to) { edges_[static_cast<std::size_t>(from)].push_back(to); }

  const arch::FpgaGrid* grid_;
  const arch::ArchParams* arch_;
  std::vector<RrNode> nodes_;
  std::vector<std::vector<RrNodeId>> edges_;
  std::vector<RrNodeId> opin_;
  std::vector<RrNodeId> ipin_;
  int num_wires_ = 0;
};

}  // namespace taf::route

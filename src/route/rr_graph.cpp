#include "route/rr_graph.hpp"

#include <algorithm>
#include <cassert>

namespace taf::route {

namespace {

int pin_capacity(arch::TileKind k, bool output) {
  switch (k) {
    case arch::TileKind::Clb: return output ? 20 : 40;  // 2N outputs, I inputs
    case arch::TileKind::Bram: return output ? 8 : 16;
    case arch::TileKind::Dsp: return output ? 8 : 16;
    case arch::TileKind::Io: return output ? 8 : 16;  // 8 pads per tile
  }
  return 1;
}

}  // namespace

RrGraph::RrGraph(const arch::FpgaGrid& grid, const arch::ArchParams& arch)
    : grid_(&grid), arch_(&arch) {
  const int w = grid.width();
  const int h = grid.height();
  const int tracks = arch.channel_tracks;
  const int seg = std::max(1, arch.wire_segment_length);

  opin_.assign(static_cast<std::size_t>(w) * h, -1);
  ipin_.assign(static_cast<std::size_t>(w) * h, -1);

  // --- Pin nodes.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const arch::TileKind tk = grid.at(x, y);
      RrNode op;
      op.kind = RrKind::Opin;
      op.tile = {x, y};
      op.capacity = static_cast<std::int16_t>(pin_capacity(tk, true));
      opin_[static_cast<std::size_t>(index(x, y))] = static_cast<RrNodeId>(nodes_.size());
      nodes_.push_back(op);

      RrNode ip;
      ip.kind = RrKind::Ipin;
      ip.tile = {x, y};
      ip.capacity = static_cast<std::int16_t>(pin_capacity(tk, false));
      ipin_[static_cast<std::size_t>(index(x, y))] = static_cast<RrNodeId>(nodes_.size());
      nodes_.push_back(ip);
    }
  }

  // --- Wire nodes. Track t's horizontal wires start at x = t % seg and
  // repeat every `seg` columns (staggered segmentation); vertical wires
  // are symmetric in y. wires_through[(x,y)][dir] lists (track -> node).
  // Per tile and track there is exactly one wire of each direction.
  const auto tile_count = static_cast<std::size_t>(w) * h;
  std::vector<std::vector<RrNodeId>> through_h(tile_count);
  std::vector<std::vector<RrNodeId>> through_v(tile_count);
  for (auto& v : through_h) v.assign(static_cast<std::size_t>(tracks), -1);
  for (auto& v : through_v) v.assign(static_cast<std::size_t>(tracks), -1);

  auto add_wire = [&](RrKind kind, int x, int y, int track, int span) {
    RrNode n;
    n.kind = kind;
    n.tile = {x, y};
    n.track = static_cast<std::int16_t>(track);
    n.span = static_cast<std::int16_t>(span);
    n.capacity = 1;
    const RrNodeId id = static_cast<RrNodeId>(nodes_.size());
    nodes_.push_back(n);
    ++num_wires_;
    for (int k = 0; k < span; ++k) {
      if (kind == RrKind::WireH) {
        through_h[static_cast<std::size_t>(index(x + k, y))][static_cast<std::size_t>(track)] = id;
      } else {
        through_v[static_cast<std::size_t>(index(x, y + k))][static_cast<std::size_t>(track)] = id;
      }
    }
    return id;
  };

  for (int t = 0; t < tracks; ++t) {
    const int phase = t % seg;
    for (int y = 0; y < h; ++y) {
      for (int x = (phase == 0 ? 0 : phase - seg); x < w; x += seg) {
        const int xs = std::max(0, x);
        const int xe = std::min(w - 1, x + seg - 1);
        if (xe < xs) continue;
        add_wire(RrKind::WireH, xs, y, t, xe - xs + 1);
      }
    }
    for (int x = 0; x < w; ++x) {
      for (int y = (phase == 0 ? 0 : phase - seg); y < h; y += seg) {
        const int ys = std::max(0, y);
        const int ye = std::min(h - 1, y + seg - 1);
        if (ye < ys) continue;
        add_wire(RrKind::WireV, x, ys, t, ye - ys + 1);
      }
    }
  }

  edges_.resize(nodes_.size());

  // --- OPIN -> wires passing the tile (Fc_out = W/4), IPIN taps
  // (Fc_in = W/4), both direction-balanced.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const RrNodeId op = opin_at(x, y);
      const RrNodeId ip = ipin_at(x, y);
      for (int t = 0; t < tracks; ++t) {
        const RrNodeId wh = through_h[static_cast<std::size_t>(index(x, y))][static_cast<std::size_t>(t)];
        const RrNodeId wv = through_v[static_cast<std::size_t>(index(x, y))][static_cast<std::size_t>(t)];
        if (t % 2 == (x + y) % 2) {
          if (wh >= 0) add_edge(op, wh);
          if (wv >= 0) add_edge(op, wv);
        }
        if ((t + 2 * x + 3 * y) % 2 == 1) {
          if (wh >= 0) add_edge(wh, ip);
          if (wv >= 0) add_edge(wv, ip);
        }
      }
    }
  }

  // --- Switch-block edges at wire endpoints: same-direction continuation
  // (track window +-1) and perpendicular turns (track window +-2).
  // Wires behave bidirectionally: edges are added both ways.
  auto connect = [&](RrNodeId a, RrNodeId b) {
    if (a < 0 || b < 0 || a == b) return;
    add_edge(a, b);
    add_edge(b, a);
  };
  for (RrNodeId id = 0; id < static_cast<RrNodeId>(nodes_.size()); ++id) {
    const RrNode& n = nodes_[static_cast<std::size_t>(id)];
    if (n.kind != RrKind::WireH && n.kind != RrKind::WireV) continue;
    const bool horiz = n.kind == RrKind::WireH;
    const int xs = n.tile.x;
    const int ys = n.tile.y;
    const int xe = horiz ? xs + n.span - 1 : xs;
    const int ye = horiz ? ys : ys + n.span - 1;

    // Same-direction continuation beyond each endpoint (track window +-1,
    // as in a disjoint switch block).
    for (int dt = -1; dt <= 1; ++dt) {
      const int t2 = n.track + dt;
      if (t2 < 0 || t2 >= tracks) continue;
      if (horiz) {
        if (xe + 1 < w) connect(id, through_h[static_cast<std::size_t>(index(xe + 1, ys))][static_cast<std::size_t>(t2)]);
      } else {
        if (ye + 1 < h) connect(id, through_v[static_cast<std::size_t>(index(xs, ye + 1))][static_cast<std::size_t>(t2)]);
      }
    }
    // Perpendicular turns at both endpoints. Wilton-style track twisting:
    // turns reach the same track, its neighbour, and the reversed track
    // (W-1-t), so track bands mix after a few hops and congestion can
    // spread over the whole channel instead of saturating one band.
    const int turn_tracks[4] = {n.track, (n.track + 1) % tracks,
                                (n.track + seg) % tracks, tracks - 1 - n.track};
    for (int t2 : turn_tracks) {
      if (horiz) {
        connect(id, through_v[static_cast<std::size_t>(index(xs, ys))][static_cast<std::size_t>(t2)]);
        connect(id, through_v[static_cast<std::size_t>(index(xe, ys))][static_cast<std::size_t>(t2)]);
      } else {
        connect(id, through_h[static_cast<std::size_t>(index(xs, ys))][static_cast<std::size_t>(t2)]);
        connect(id, through_h[static_cast<std::size_t>(index(xs, ye))][static_cast<std::size_t>(t2)]);
      }
    }
  }

  // Dedup edges (corner cases connect twice).
  for (auto& fan : edges_) {
    std::sort(fan.begin(), fan.end());
    fan.erase(std::unique(fan.begin(), fan.end()), fan.end());
  }
}

}  // namespace taf::route

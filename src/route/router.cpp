#include "route/router.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "util/log.hpp"

namespace taf::route {

namespace {

struct HeapEntry {
  double priority;  // cost + heuristic
  double cost;      // accumulated path cost
  RrNodeId node;
  bool operator>(const HeapEntry& o) const { return priority > o.priority; }
};

double base_cost(const RrNode& n) {
  switch (n.kind) {
    case RrKind::Opin: return 0.6;
    case RrKind::Ipin: return 0.5;
    case RrKind::WireH:
    case RrKind::WireV: return 1.0;
  }
  return 1.0;
}

}  // namespace

RouteResult route(const RrGraph& rr, const pack::PackedNetlist& packed,
                  const place::Placement& pl, const RouteOptions& opt) {
  const int n_nodes = rr.num_nodes();
  const auto n_nets = static_cast<int>(packed.block_nets.size());
  const int seg = std::max(1, rr.arch().wire_segment_length);

  RouteResult result;
  result.routes.assign(static_cast<std::size_t>(n_nets), {});

  std::vector<int> occ(static_cast<std::size_t>(n_nodes), 0);
  std::vector<double> hist(static_cast<std::size_t>(n_nodes), 0.0);

  auto over = [&](RrNodeId n) {
    return std::max(0, occ[static_cast<std::size_t>(n)] - rr.node(n).capacity);
  };

  double pres_fac = opt.first_iter_pres_fac;
  auto node_cost = [&](RrNodeId n, int extra_occ) {
    const RrNode& node = rr.node(n);
    const int over_after =
        std::max(0, occ[static_cast<std::size_t>(n)] + extra_occ - node.capacity);
    return base_cost(node) * (1.0 + hist[static_cast<std::size_t>(n)]) *
           (1.0 + pres_fac * over_after);
  };

  // A* bookkeeping with epoch-tagged visitation to avoid clearing.
  std::vector<double> best_cost(static_cast<std::size_t>(n_nodes), 0.0);
  std::vector<RrNodeId> prev(static_cast<std::size_t>(n_nodes), -1);
  std::vector<int> visit_epoch(static_cast<std::size_t>(n_nodes), -1);
  std::vector<char> in_tree(static_cast<std::size_t>(n_nodes), 0);
  int epoch = 0;

  auto heuristic = [&](RrNodeId n, arch::TilePos target) {
    const RrNode& node = rr.node(n);
    const int dx = std::abs(node.tile.x - target.x);
    const int dy = std::abs(node.tile.y - target.y);
    return opt.astar_fac * static_cast<double>(dx + dy) / seg;
  };

  // Route one net; returns false if any sink is unreachable.
  auto route_net = [&](int net_idx) -> bool {
    const auto& bn = packed.block_nets[static_cast<std::size_t>(net_idx)];
    NetRoute& nr = result.routes[static_cast<std::size_t>(net_idx)];

    // Rip up previous occupancy.
    for (RrNodeId n : nr.nodes) --occ[static_cast<std::size_t>(n)];
    nr.paths.assign(bn.sink_blocks.size(), {});
    nr.nodes.clear();
    nr.parents.clear();

    const arch::TilePos src_pos = pl.pos[static_cast<std::size_t>(bn.driver_block)];
    const RrNodeId source = rr.opin_at(src_pos.x, src_pos.y);

    // Route sinks nearest-first (cheap heuristic for better trees).
    std::vector<int> order(bn.sink_blocks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto pa = pl.pos[static_cast<std::size_t>(bn.sink_blocks[static_cast<std::size_t>(a)])];
      const auto pb = pl.pos[static_cast<std::size_t>(bn.sink_blocks[static_cast<std::size_t>(b)])];
      const int da = std::abs(pa.x - src_pos.x) + std::abs(pa.y - src_pos.y);
      const int db = std::abs(pb.x - src_pos.x) + std::abs(pb.y - src_pos.y);
      return da < db;
    });

    std::vector<RrNodeId> tree{source};
    for (RrNodeId n : tree) in_tree[static_cast<std::size_t>(n)] = 1;

    bool ok = true;
    for (int sink_i : order) {
      const int sink_block = bn.sink_blocks[static_cast<std::size_t>(sink_i)];
      const arch::TilePos dst = pl.pos[static_cast<std::size_t>(sink_block)];
      const RrNodeId target = rr.ipin_at(dst.x, dst.y);

      ++epoch;
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
      for (RrNodeId n : tree) {
        // Tree nodes re-usable at zero cost.
        best_cost[static_cast<std::size_t>(n)] = 0.0;
        prev[static_cast<std::size_t>(n)] = -1;
        visit_epoch[static_cast<std::size_t>(n)] = epoch;
        heap.push({heuristic(n, dst), 0.0, n});
      }

      bool found = false;
      while (!heap.empty()) {
        const HeapEntry e = heap.top();
        heap.pop();
        if (e.cost > best_cost[static_cast<std::size_t>(e.node)] + 1e-12) continue;
        if (e.node == target) {
          found = true;
          break;
        }
        for (RrNodeId to : rr.fanout(e.node)) {
          const RrNode& tn = rr.node(to);
          // IPINs other than the target are dead ends; skip early.
          if (tn.kind == RrKind::Ipin && to != target) continue;
          if (tn.kind == RrKind::Opin) continue;  // never route through OPINs
          const double c = e.cost + node_cost(to, /*extra_occ=*/1);
          if (visit_epoch[static_cast<std::size_t>(to)] == epoch &&
              c >= best_cost[static_cast<std::size_t>(to)] - 1e-12)
            continue;
          visit_epoch[static_cast<std::size_t>(to)] = epoch;
          best_cost[static_cast<std::size_t>(to)] = c;
          prev[static_cast<std::size_t>(to)] = e.node;
          heap.push({c + heuristic(to, dst), c, to});
        }
      }
      if (!found) {
        ok = false;
        break;
      }
      // Trace back to the tree and commit the path.
      std::vector<RrNodeId> path;
      for (RrNodeId n = target; n != -1 && !in_tree[static_cast<std::size_t>(n)];
           n = prev[static_cast<std::size_t>(n)]) {
        path.push_back(n);
      }
      std::reverse(path.begin(), path.end());
      for (RrNodeId n : path) {
        tree.push_back(n);
        in_tree[static_cast<std::size_t>(n)] = 1;
        nr.parents.emplace_back(n, prev[static_cast<std::size_t>(n)]);
      }
      nr.paths[static_cast<std::size_t>(sink_i)] = std::move(path);
    }

    for (RrNodeId n : tree) in_tree[static_cast<std::size_t>(n)] = 0;
    if (ok) {
      nr.nodes = std::move(tree);
      std::sort(nr.nodes.begin(), nr.nodes.end());
      nr.nodes.erase(std::unique(nr.nodes.begin(), nr.nodes.end()), nr.nodes.end());
      for (RrNodeId n : nr.nodes) ++occ[static_cast<std::size_t>(n)];
    }
    return ok;
  };

  // --- PathFinder iterations. The reroute order rotates every iteration
  // so two nets contending for one node do not ping-pong forever.
  std::vector<char> dirty(static_cast<std::size_t>(n_nets), 1);
  for (int iter = 1; iter <= opt.max_iterations; ++iter) {
    result.iterations = iter;
    bool all_routed = true;
    const int offset = n_nets > 0 ? (iter * 7919) % n_nets : 0;
    for (int i = 0; i < n_nets; ++i) {
      const int n = (i + offset) % n_nets;
      if (!dirty[static_cast<std::size_t>(n)]) continue;
      if (!route_net(n)) all_routed = false;
    }

    // Accumulate history and find congested nets.
    int overused = 0;
    for (RrNodeId n = 0; n < n_nodes; ++n) {
      const int o = over(n);
      if (o > 0) {
        ++overused;
        hist[static_cast<std::size_t>(n)] += opt.hist_fac * o;
      }
    }
    result.overused_nodes = overused;

    if (overused == 0 && all_routed) {
      result.success = true;
      break;
    }

    std::fill(dirty.begin(), dirty.end(), 0);
    for (int n = 0; n < n_nets; ++n) {
      const NetRoute& nr = result.routes[static_cast<std::size_t>(n)];
      if (nr.nodes.empty()) {
        dirty[static_cast<std::size_t>(n)] = 1;  // unrouted net
        continue;
      }
      for (RrNodeId node : nr.nodes) {
        if (over(node) > 0) {
          dirty[static_cast<std::size_t>(n)] = 1;
          break;
        }
      }
    }
    pres_fac = std::min(pres_fac * opt.pres_fac_mult, 1e6);
    util::log_debug("route: iter %d, %d overused nodes", iter, overused);
  }

  int used_wires = 0;
  for (RrNodeId n = 0; n < n_nodes; ++n) {
    const RrNode& node = rr.node(n);
    if ((node.kind == RrKind::WireH || node.kind == RrKind::WireV) &&
        occ[static_cast<std::size_t>(n)] > 0)
      ++used_wires;
  }
  result.wire_utilization =
      rr.num_wires() > 0 ? static_cast<double>(used_wires) / rr.num_wires() : 0.0;
  return result;
}

void serialize(const RouteResult& result, util::codec::Encoder& enc) {
  enc.u8(result.success ? 1 : 0);
  enc.i32(result.iterations);
  enc.i32(result.overused_nodes);
  enc.f64(result.wire_utilization);
  enc.u64(result.routes.size());
  for (const NetRoute& net : result.routes) {
    enc.u64(net.paths.size());
    for (const std::vector<RrNodeId>& path : net.paths) enc.i32_vec(path);
    enc.i32_vec(net.nodes);
    enc.u64(net.parents.size());
    for (const auto& [node, parent] : net.parents) {
      enc.i32(node);
      enc.i32(parent);
    }
  }
}

RouteResult deserialize(util::codec::Decoder& dec) {
  RouteResult result;
  result.success = dec.u8() != 0;
  result.iterations = dec.i32();
  result.overused_nodes = dec.i32();
  result.wire_utilization = dec.f64();
  const std::uint64_t num_nets = dec.u64();
  for (std::uint64_t i = 0; i < num_nets; ++i) {
    NetRoute net;
    const std::uint64_t num_paths = dec.u64();
    for (std::uint64_t p = 0; p < num_paths; ++p) net.paths.push_back(dec.i32_vec());
    net.nodes = dec.i32_vec();
    const std::uint64_t num_parents = dec.u64();
    for (std::uint64_t p = 0; p < num_parents; ++p) {
      const RrNodeId node = dec.i32();
      const RrNodeId parent = dec.i32();
      net.parents.emplace_back(node, parent);
    }
    result.routes.push_back(std::move(net));
  }
  return result;
}

}  // namespace taf::route

#include "thermal/stencil_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace taf::thermal {

namespace {

/// Dot product with four interleaved accumulators: the single-accumulator
/// form is latency-bound on one fused-multiply-add chain; four independent
/// chains keep the FMA pipes busy. The association is fixed (lane = i mod 4,
/// partials summed 0+1 + 2+3), so every caller — solo or batched — gets
/// bit-identical sums for the same operands.
double dot(const double* a, const double* b, int n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto u = static_cast<std::size_t>(i);
    s0 += a[u] * b[u];
    s1 += a[u + 1] * b[u + 1];
    s2 += a[u + 2] * b[u + 2];
    s3 += a[u + 3] * b[u + 3];
  }
  for (; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    s0 += a[u] * b[u];
  }
  return (s0 + s1) + (s2 + s3);
}

/// Rows per cache block: keep the ~4 streams a fused CG traversal touches
/// (three x rows, one y row, plus the vectors the caller updates next)
/// within an L1-ish working set. Pure function of the width so the solo
/// and batched solvers partition identically (their dot-product partial
/// sums must associate the same way to stay bit-identical).
int row_block(int width) {
  constexpr int kTargetBytes = 32 * 1024;
  const int rows = kTargetBytes / (std::max(width, 1) * 8 * 4);
  return std::clamp(rows, 4, 64);
}

/// One row of y = (A + g_c I) x, specialized on the vertical-neighbour
/// pattern so the interior columns run branch-free (and vectorizable).
/// Term order is fixed — centre, left, right, up, down — and must match
/// StencilOp::apply_naive exactly: the property suite pins the two
/// traversals bit-for-bit. The fused dot-product partial is taken by a
/// separate pass over the just-written (cache-hot) row, so the store loop
/// carries no reduction chain.
template <bool kUp, bool kDn>
void row_kernel(const double* row, const double* up, const double* dn, double* out,
                int w, double gl, double d_edge, double d_int) {
  {
    double v = d_edge * row[0] - gl * row[1];
    if constexpr (kUp) v -= gl * up[0];
    if constexpr (kDn) v -= gl * dn[0];
    out[0] = v;
  }
  for (int i = 1; i < w - 1; ++i) {
    const auto s = static_cast<std::size_t>(i);
    double v = d_int * row[s] - gl * row[s - 1] - gl * row[s + 1];
    if constexpr (kUp) v -= gl * up[s];
    if constexpr (kDn) v -= gl * dn[s];
    out[s] = v;
  }
  {
    const auto s = static_cast<std::size_t>(w - 1);
    double v = d_edge * row[s] - gl * row[s - 1];
    if constexpr (kUp) v -= gl * up[s];
    if constexpr (kDn) v -= gl * dn[s];
    out[s] = v;
  }
}

}  // namespace

StencilOp::StencilOp(int width, int height, double g_lat, double g_vert, double g_c)
    : width_(width), height_(height), g_lat_(g_lat), g_base_(g_vert + g_c) {}

template <bool kFused>
double StencilOp::traverse(const double* x, double* y, int j0, int j1) const {
  const int w = width_, h = height_;
  const double gl = g_lat_;
  double acc = 0.0;
  if (w == 1) {
    // Degenerate single-column grid: a vertical chain, handled scalar.
    for (int j = j0; j < j1; ++j) {
      const auto s = static_cast<std::size_t>(j);
      double v = diag((j > 0 ? 1 : 0) + (j < h - 1 ? 1 : 0)) * x[s];
      if (j > 0) v -= gl * x[s - 1];
      if (j < h - 1) v -= gl * x[s + 1];
      y[s] = v;
      if constexpr (kFused) acc += x[s] * v;
    }
    return acc;
  }
  for (int j = j0; j < j1; ++j) {
    const double* row = x + static_cast<std::ptrdiff_t>(j) * w;
    double* out = y + static_cast<std::ptrdiff_t>(j) * w;
    const double* up = j > 0 ? row - w : nullptr;
    const double* dn = j < h - 1 ? row + w : nullptr;
    const int vdeg = (up != nullptr ? 1 : 0) + (dn != nullptr ? 1 : 0);
    const double d_edge = diag(1 + vdeg);
    const double d_int = diag(2 + vdeg);
    if (up != nullptr && dn != nullptr) {
      row_kernel<true, true>(row, up, dn, out, w, gl, d_edge, d_int);
    } else if (up != nullptr) {
      row_kernel<true, false>(row, up, dn, out, w, gl, d_edge, d_int);
    } else if (dn != nullptr) {
      row_kernel<false, true>(row, up, dn, out, w, gl, d_edge, d_int);
    } else {
      row_kernel<false, false>(row, up, dn, out, w, gl, d_edge, d_int);
    }
    if constexpr (kFused) acc += dot(row, out, w);
  }
  return acc;
}

void StencilOp::apply(const double* x, double* y) const {
  traverse<false>(x, y, 0, height_);
}

double StencilOp::apply_dot(const double* x, double* y) const {
  // Accumulate per row block and sum the partials, exactly as the
  // batched solver does, so solo and batched dot products associate
  // identically (bit-for-bit agreement between the two paths).
  const int rb = row_block(width_);
  double s = 0.0;
  for (int j0 = 0; j0 < height_; j0 += rb) {
    s += traverse<true>(x, y, j0, std::min(j0 + rb, height_));
  }
  return s;
}

double StencilOp::apply_dot_rows(const double* x, double* y, int j0, int j1) const {
  return traverse<true>(x, y, j0, j1);
}

int StencilOp::cache_row_block() const { return row_block(width_); }

void StencilOp::apply_naive(const double* x, double* y) const {
  const int w = width_, h = height_;
  const double gl = g_lat_;
  for (int j = 0; j < h; ++j) {
    for (int i = 0; i < w; ++i) {
      const auto idx = static_cast<std::size_t>(j) * static_cast<std::size_t>(w) +
                       static_cast<std::size_t>(i);
      const int degree = (i > 0 ? 1 : 0) + (i < w - 1 ? 1 : 0) + (j > 0 ? 1 : 0) +
                         (j < h - 1 ? 1 : 0);
      double v = diag(degree) * x[idx];
      if (i > 0) v -= gl * x[idx - 1];
      if (i < w - 1) v -= gl * x[idx + 1];
      if (j > 0) v -= gl * x[idx - static_cast<std::size_t>(w)];
      if (j < h - 1) v -= gl * x[idx + static_cast<std::size_t>(w)];
      y[idx] = v;
    }
  }
}

StencilSolver::StencilSolver(StencilOp op, StencilPreconditioner pc)
    : op_(op), pc_(pc), omega_(pc == StencilPreconditioner::Ssor ? tuned_omega(op) : 1.0) {
  // Reciprocal diagonals per neighbour count: the sweeps multiply instead
  // of divide, which matters twice over — division is slow, and inside
  // the Gauss-Seidel recurrence its latency would sit on the loop-carried
  // dependency chain.
  for (int deg = 0; deg < 5; ++deg) inv_diag_[deg] = 1.0 / op_.diag(deg);
}

double StencilSolver::tuned_omega(const StencilOp& op) {
  const double gl = op.lateral_g();
  if (!(gl > 0.0)) return 1.0;
  const double s = static_cast<double>(std::max(op.width(), op.height()));
  const double grid_omega = 2.0 / (1.0 + 1.7 / std::sqrt(s));
  const double lateral_share = 4.0 * gl / (4.0 * gl + op.ground_g());
  return 1.0 + (grid_omega - 1.0) * lateral_share;
}

void StencilSolver::precondition(const double* r, double* z) const {
  const int w = op_.width(), h = op_.height();
  const int n = op_.size();
  const double og = omega_ * op_.lateral_g();
  switch (pc_) {
    case StencilPreconditioner::None:
      for (int i = 0; i < n; ++i) z[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
      return;
    case StencilPreconditioner::Jacobi:
      for (int j = 0; j < h; ++j) {
        const int vdeg = (j > 0 ? 1 : 0) + (j < h - 1 ? 1 : 0);
        const double id_edge = inv_diag_[w > 1 ? 1 + vdeg : vdeg];
        const double id_int = inv_diag_[2 + vdeg];
        const auto row = static_cast<std::size_t>(j) * static_cast<std::size_t>(w);
        z[row] = r[row] * id_edge;
        for (int i = 1; i < w - 1; ++i) z[row + static_cast<std::size_t>(i)] =
            r[row + static_cast<std::size_t>(i)] * id_int;
        if (w > 1) z[row + static_cast<std::size_t>(w - 1)] =
            r[row + static_cast<std::size_t>(w - 1)] * id_edge;
      }
      return;
    case StencilPreconditioner::Ssor:
      break;
  }
  // SSOR(omega): M = (D + omega L) D^{-1} (D + omega U) up to a positive
  // scalar that PCG is invariant to. Forward sweep y = (D + omega L)^{-1} r,
  // then in-place backward sweep z = (D + omega U)^{-1} D y; the stencil
  // off-diagonals are -g_lat, hence the + signs. Each sweep runs as a
  // vectorizable pass (fold in the already-final vertical neighbour and
  // the reciprocal diagonal) followed by a horizontal recurrence whose
  // loop-carried chain is a single fused multiply-add per tile.
  if (w == 1) {
    // Single-column grid: one vertical recurrence each way.
    z[0] = r[0] * inv_diag_[h > 1 ? 1 : 0];
    for (int j = 1; j < h; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      z[idx] = (r[idx] + og * z[idx - 1]) * inv_diag_[j < h - 1 ? 2 : 1];
    }
    for (int j = h - 2; j >= 0; --j) {
      const auto idx = static_cast<std::size_t>(j);
      z[idx] += og * inv_diag_[j > 0 ? 2 : 1] * z[idx + 1];
    }
    return;
  }
  for (int j = 0; j < h; ++j) {
    const int vdeg = (j > 0 ? 1 : 0) + (j < h - 1 ? 1 : 0);
    const double id_edge = inv_diag_[1 + vdeg];
    const double id_int = inv_diag_[2 + vdeg];
    const auto row = static_cast<std::size_t>(j) * static_cast<std::size_t>(w);
    const double* up = j > 0 ? z + row - static_cast<std::size_t>(w) : nullptr;
    if (up != nullptr) {
      z[row] = (r[row] + og * up[0]) * id_edge;
      for (int i = 1; i < w - 1; ++i) {
        const auto s = static_cast<std::size_t>(i);
        z[row + s] = (r[row + s] + og * up[s]) * id_int;
      }
      z[row + static_cast<std::size_t>(w - 1)] =
          (r[row + static_cast<std::size_t>(w - 1)] + og * up[static_cast<std::size_t>(w - 1)]) *
          id_edge;
    } else {
      z[row] = r[row] * id_edge;
      for (int i = 1; i < w - 1; ++i) {
        const auto s = static_cast<std::size_t>(i);
        z[row + s] = r[row + s] * id_int;
      }
      z[row + static_cast<std::size_t>(w - 1)] = r[row + static_cast<std::size_t>(w - 1)] * id_edge;
    }
    const double c_int = og * id_int;
    for (int i = 1; i < w - 1; ++i) {
      const auto s = static_cast<std::size_t>(i);
      z[row + s] += c_int * z[row + s - 1];
    }
    z[row + static_cast<std::size_t>(w - 1)] +=
        og * id_edge * z[row + static_cast<std::size_t>(w - 2)];
  }
  for (int j = h - 1; j >= 0; --j) {
    const int vdeg = (j > 0 ? 1 : 0) + (j < h - 1 ? 1 : 0);
    const double id_edge = inv_diag_[1 + vdeg];
    const double id_int = inv_diag_[2 + vdeg];
    const auto row = static_cast<std::size_t>(j) * static_cast<std::size_t>(w);
    const double* dn = j < h - 1 ? z + row + static_cast<std::size_t>(w) : nullptr;
    if (dn != nullptr) {
      z[row] += og * id_edge * dn[0];
      for (int i = 1; i < w - 1; ++i) {
        const auto s = static_cast<std::size_t>(i);
        z[row + s] += og * id_int * dn[s];
      }
      z[row + static_cast<std::size_t>(w - 1)] +=
          og * id_edge * dn[static_cast<std::size_t>(w - 1)];
    }
    const double c_int = og * id_int;
    for (int i = w - 2; i >= 1; --i) {
      const auto s = static_cast<std::size_t>(i);
      z[row + s] += c_int * z[row + s + 1];
    }
    z[row] += og * id_edge * z[row + 1];
  }
}

StencilSolveInfo StencilSolver::solve(const double* b, double* x, double rel_eps,
                                      double abs_floor_rr) const {
  return solve_batch(1, b, x, rel_eps, abs_floor_rr)[0];
}

std::vector<StencilSolveInfo> StencilSolver::solve_batch(int nrhs, const double* b,
                                                         double* x, double rel_eps,
                                                         double abs_floor_rr) const {
  if (!(op_.ground_g() > 0.0)) {
    // Without a positive conductance to ambient the operator is singular
    // (constant fields carry no energy); plain CG would break down on
    // dot(p, Ap) = 0, but the preconditioned directions never line up
    // with the nullspace exactly, so PCG would grind to the iteration cap
    // and return an unconverged field. Refuse up front instead.
    throw std::runtime_error(
        "thermal stencil solve: ground conductance " + std::to_string(op_.ground_g()) +
        " is not positive; the thermal system is singular (no path to ambient)");
  }
  const int n = op_.size();
  const auto un = static_cast<std::size_t>(n);
  const auto stride = [un](int k) { return static_cast<std::size_t>(k) * un; };

  std::vector<double> r(stride(nrhs)), p(stride(nrhs)), ap(stride(nrhs)),
      z(static_cast<std::size_t>(n));
  std::vector<double> rr(static_cast<std::size_t>(nrhs)),
      rz(static_cast<std::size_t>(nrhs)), tol(static_cast<std::size_t>(nrhs));
  std::vector<StencilSolveInfo> info(static_cast<std::size_t>(nrhs));
  std::vector<int> active;

  for (int k = 0; k < nrhs; ++k) {
    const auto uk = static_cast<std::size_t>(k);
    double* rk = r.data() + stride(k);
    // r = b - (A + g_c I) x. A cold start (x = 0) reproduces r = b
    // bitwise: the operator maps the zero vector to exact zeros.
    op_.apply(x + stride(k), rk);
    for (std::size_t i = 0; i < un; ++i) rk[i] = b[stride(k) + i] - rk[i];
    rr[uk] = dot(rk, rk, n);
    if (!std::isfinite(rr[uk])) {
      throw std::invalid_argument(
          "thermal stencil solve: non-finite right-hand side (power map)");
    }
    tol[uk] = std::max(rr[uk] * rel_eps, abs_floor_rr);
    info[uk].rr = rr[uk];
    if (rr[uk] > tol[uk]) {
      precondition(rk, z.data());
      double* pk = p.data() + stride(k);
      for (std::size_t i = 0; i < un; ++i) pk[i] = z[i];
      rz[uk] = dot(rk, pk, n);
      active.push_back(k);
    }
  }

  const int rb = op_.cache_row_block();
  const int max_iters = 4 * n;
  std::vector<double> pap;
  std::vector<int> still;
  while (!active.empty()) {
    // One blocked operator traversal serves every still-active system:
    // ap_k = (A + g_c I) p_k and pap_k accumulate block by block, the
    // partial sums associating exactly as StencilOp::apply_dot does for
    // a solo solve (bit-identical results either way).
    pap.assign(active.size(), 0.0);
    for (int j0 = 0; j0 < op_.height(); j0 += rb) {
      const int j1 = std::min(j0 + rb, op_.height());
      for (std::size_t a = 0; a < active.size(); ++a) {
        const int k = active[a];
        pap[a] += op_.apply_dot_rows(p.data() + stride(k), ap.data() + stride(k), j0, j1);
      }
    }
    still.clear();
    for (std::size_t a = 0; a < active.size(); ++a) {
      const int k = active[a];
      const auto uk = static_cast<std::size_t>(k);
      if (!(pap[a] > 0.0)) {
        // A search direction with non-positive energy would make alpha
        // NaN/inf and silently poison the temperature field; fail loudly
        // in release builds too (same contract as util::fit_exponential).
        throw std::runtime_error(
            "thermal stencil CG breakdown: dot(p, Ap) = " + std::to_string(pap[a]) +
            " is not positive (singular or non-SPD operator configuration)");
      }
      const double alpha = rz[uk] / pap[a];
      double* xk = x + stride(k);
      double* rk = r.data() + stride(k);
      const double* apk = ap.data() + stride(k);
      const double* pk = p.data() + stride(k);
      for (std::size_t i = 0; i < un; ++i) {
        xk[i] += alpha * pk[i];
        rk[i] -= alpha * apk[i];
      }
      const double rr_new = dot(rk, rk, n);
      rr[uk] = rr_new;
      ++info[uk].iterations;
      info[uk].rr = rr_new;
      if (rr_new <= tol[uk] || info[uk].iterations >= max_iters) continue;
      precondition(rk, z.data());
      const double rz_new = dot(rk, z.data(), n);
      if (!(rz_new > 0.0)) {
        throw std::runtime_error(
            "thermal stencil CG breakdown: preconditioned residual energy " +
            std::to_string(rz_new) + " is not positive");
      }
      const double beta = rz_new / rz[uk];
      rz[uk] = rz_new;
      double* pk_mut = p.data() + stride(k);
      for (std::size_t i = 0; i < un; ++i) pk_mut[i] = z[i] + beta * pk_mut[i];
      still.push_back(k);
    }
    // Compact in place; relative order is preserved so the traversal
    // visits systems deterministically.
    active = std::move(still);
  }
  return info;
}

}  // namespace taf::thermal

#pragma once
// Matrix-free blocked stencil backend of the thermal solver.
//
// The thermal conductance matrix is a 5-point stencil with constant
// coefficients: every tile couples to its four lateral neighbours with
// -g_lat and to ambient with g_vert, and the backward-Euler transient
// system adds a uniform C/dt diagonal. That structure never needs to be
// assembled: StencilOp fuses the 5-point apply with the optional
// diagonal shift, so the steady-state solve() and the transient step()
// share one operator (the hand-copied CG loop the two paths used to
// carry cannot diverge again), and StencilSolver runs preconditioned
// conjugate gradients over it with an SSOR (symmetric successive
// over-relaxation, auto-tuned omega) or Jacobi preconditioner and a
// row-blocked, branch-free traversal whose working set is sized to stay
// cache-resident.
//
// This header is an implementation detail of ThermalGrid: everything
// outside src/thermal selects the backend through
// ThermalConfig::backend / TAF_THERMAL_BACKEND and calls the ThermalGrid
// API (tools/taf-lint rule thermal-backend-seam keeps it that way).

#include <vector>

namespace taf::thermal {

/// y = (A + g_c I) x for the five-point thermal conductance stencil on a
/// width x height grid: per tile, g_base = g_vert + g_c to ground plus
/// g_lat to each existing lateral neighbour. All coefficients are
/// uniform, so the matrix reduces to four row classes (interior / edge /
/// corner) selected by neighbour count.
class StencilOp {
 public:
  StencilOp(int width, int height, double g_lat, double g_vert, double g_c = 0.0);

  int width() const { return width_; }
  int height() const { return height_; }
  int size() const { return width_ * height_; }
  double lateral_g() const { return g_lat_; }
  /// Uniform diagonal-to-ground conductance g_vert + g_c: the weakest
  /// per-tile conductance of the operator, hence the factor that maps a
  /// per-tile residual [W] to a worst-case temperature error [K]. The CG
  /// absolute tolerance floor must be derived from THIS value — for the
  /// backward-Euler system it is g_vert + C/dt, not the steady-state
  /// g_vert (see ThermalGrid::cg_tolerance).
  double ground_g() const { return g_base_; }
  /// Diagonal entry of a tile with the given lateral neighbour count.
  double diag(int degree) const { return g_base_ + degree * g_lat_; }

  /// Blocked, branch-free traversal: rows are processed in cache-sized
  /// blocks, each row by a kernel specialized for its neighbour pattern
  /// with no per-element branching in the interior columns.
  void apply(const double* x, double* y) const;
  /// Reference traversal: per-element neighbour branches, identical
  /// arithmetic (same term order), used by the property tests to pin the
  /// blocked kernels bit-for-bit.
  void apply_naive(const double* x, double* y) const;
  /// apply() fused with the CG step's inner product: y = (A + g_c I) x
  /// and return dot(x, y) from the same traversal. The dot accumulates
  /// per row block with the partials summed in block order — the same
  /// association the batched solver uses, keeping solo and batched
  /// solves bit-identical.
  double apply_dot(const double* x, double* y) const;
  /// Row-range slice of apply_dot() for the batched solver's
  /// block-interleaved traversal ([j0, j1) rows; returns that slice's
  /// dot-product partial).
  double apply_dot_rows(const double* x, double* y, int j0, int j1) const;
  /// Rows per cache block of the traversal (pure function of the width).
  int cache_row_block() const;

  void apply(const std::vector<double>& x, std::vector<double>& y) const {
    apply(x.data(), y.data());
  }

 private:
  template <bool kFused>
  double traverse(const double* x, double* y, int j0, int j1) const;

  int width_;
  int height_;
  double g_lat_;
  double g_base_;  ///< g_vert + g_c
};

/// Preconditioner of the stencil CG. Ssor is the default; Jacobi is the
/// cheap fallback (diagonal scaling only); None degrades to plain CG and
/// exists so the property tests can assert the preconditioner actually
/// cuts iterations.
enum class StencilPreconditioner { None, Jacobi, Ssor };

/// Outcome of one stencil PCG solve (per right-hand side).
struct StencilSolveInfo {
  int iterations = 0;
  double rr = 0.0;  ///< squared residual 2-norm at termination [W^2]
};

/// Preconditioned conjugate gradients over a StencilOp. Termination uses
/// the same criterion as the generic CG oracle — squared TRUE residual
/// against max(rr0 * rel_eps, abs_floor_rr) — so both backends honour one
/// accuracy contract and the differential harness can compare them
/// per-tile.
class StencilSolver {
 public:
  explicit StencilSolver(StencilOp op,
                         StencilPreconditioner pc = StencilPreconditioner::Ssor);

  const StencilOp& op() const { return op_; }
  StencilPreconditioner preconditioner() const { return pc_; }
  /// SSOR relaxation factor in use (1 for the other preconditioners).
  /// Chosen per operator by tuned_omega().
  double omega() const { return omega_; }

  /// Relaxation factor heuristic: the model-problem SOR optimum walks
  /// toward 2 as the grid grows (here fit as 2 / (1 + 1.7 / sqrt(s)) with
  /// s the larger grid dimension), blended back toward 1 in proportion to
  /// how much the ground/shift conductance dominates the lateral coupling
  /// — a backward-Euler C/dt shift makes the system diagonally dominant,
  /// where plain symmetric Gauss-Seidel is already near-exact and
  /// over-relaxation only hurts. Always in (0, 2), so M stays SPD.
  static double tuned_omega(const StencilOp& op);

  /// Solve (A + g_c I) x = b from the given iterate x (pass zeros for a
  /// cold start; x = 0 reproduces r = b bitwise). Iterations are capped
  /// at 4n, matching the generic oracle. Throws std::runtime_error when
  /// the operator is singular (ground_g() not positive — no path to
  /// ambient) or on a CG breakdown (dot(p, Ap) not strictly positive:
  /// the search direction carries no energy, so alpha would be a silent
  /// NaN), and std::invalid_argument when b is not finite.
  StencilSolveInfo solve(const double* b, double* x, double rel_eps,
                         double abs_floor_rr) const;

  /// Batched multi-RHS solve: all nrhs systems advance in lockstep, one
  /// blocked operator traversal per CG iteration serving every
  /// still-active right-hand side; a system that reaches its tolerance
  /// drops out while the rest continue. Each column performs exactly the
  /// arithmetic of a solo solve() in the same order, so results and
  /// iteration counts are bit-identical to solving sequentially.
  /// b and x are nrhs contiguous blocks of op().size() doubles.
  std::vector<StencilSolveInfo> solve_batch(int nrhs, const double* b, double* x,
                                            double rel_eps,
                                            double abs_floor_rr) const;

  /// z = M^{-1} r. Public so tests can check M's symmetry and positive
  /// definiteness (a non-SPD preconditioner silently breaks PCG).
  void precondition(const double* r, double* z) const;

 private:
  StencilOp op_;
  StencilPreconditioner pc_;
  double omega_;        ///< SSOR relaxation factor (1 otherwise)
  double inv_diag_[5];  ///< 1 / diag(degree) for degree 0..4
};

}  // namespace taf::thermal

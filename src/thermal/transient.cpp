#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace taf::thermal {

namespace {

void validate_options(const TransientOptions& opt) {
  auto positive = [](double v, const char* name) {
    if (!(v > 0.0) || !std::isfinite(v)) {
      throw std::invalid_argument(std::string("TransientEngine: option ") + name +
                                  " must be positive and finite, got " +
                                  std::to_string(v));
    }
  };
  positive(opt.dt_init_frac, "dt_init_frac");
  positive(opt.dt_min_frac, "dt_min_frac");
  positive(opt.dt_max_frac, "dt_max_frac");
  positive(opt.grow, "grow");
  positive(opt.shrink, "shrink");
  positive(opt.target_step_k.value(), "target_step_k");
  if (opt.dt_min_frac > opt.dt_max_frac) {
    throw std::invalid_argument("TransientEngine: dt_min_frac > dt_max_frac");
  }
  if (opt.grow < 1.0 || opt.shrink > 1.0) {
    throw std::invalid_argument(
        "TransientEngine: grow must be >= 1 and shrink <= 1");
  }
  if (!(opt.steady_tol_k.value() >= 0.0) ||
      !std::isfinite(opt.steady_tol_k.value())) {
    throw std::invalid_argument(
        "TransientEngine: steady_tol_k must be finite and >= 0");
  }
  if (opt.max_steps == 0) {
    throw std::invalid_argument("TransientEngine: max_steps must be > 0");
  }
}

}  // namespace

TransientEngine::TransientEngine(const ThermalGrid& grid, TransientOptions opt)
    : grid_(grid), opt_(opt) {
  validate_options(opt_);
}

void TransientEngine::advance(const std::vector<double>& power_w,
                              units::Seconds duration, std::vector<double>& temps,
                              TransientStats* stats) const {
  const auto n =
      static_cast<std::size_t>(grid_.width()) * static_cast<std::size_t>(grid_.height());
  if (power_w.size() != n || temps.size() != n) {
    throw std::invalid_argument(
        "TransientEngine::advance: power/temps size (" +
        std::to_string(power_w.size()) + "/" + std::to_string(temps.size()) +
        ") does not match the " + std::to_string(n) + "-tile grid");
  }
  if (!(duration.value() >= 0.0) || !std::isfinite(duration.value())) {
    throw std::invalid_argument(
        "TransientEngine::advance: duration must be finite and >= 0, got " +
        std::to_string(duration.value()) + " s");
  }
  if (duration.value() == 0.0) return;

  const double tau = grid_.tile_time_constant().value();
  const double dt_min = opt_.dt_min_frac * tau;
  const double dt_max = opt_.dt_max_frac * tau;
  double dt = std::clamp(opt_.dt_init_frac * tau, dt_min, dt_max);

  std::vector<double> prev(n);
  double remaining = duration.value();
  std::uint64_t steps = 0;
  while (remaining > 0.0) {
    if (steps >= opt_.max_steps) {
      throw std::runtime_error(
          "TransientEngine::advance: exceeded max_steps = " +
          std::to_string(opt_.max_steps) + " with " + std::to_string(remaining) +
          " s of dwell remaining (duration too long for the step bounds)");
    }
    // The final step is clipped to land on the dwell boundary exactly, so
    // the advanced time equals `duration` by construction — no drift.
    const double dt_eff = std::min(dt, remaining);
    prev = temps;
    CgStats cg;
    grid_.step(power_w, units::Seconds{dt_eff}, temps, &cg);
    ++steps;
    if (stats != nullptr) {
      ++stats->steps;
      stats->cg_iterations += static_cast<std::uint64_t>(cg.iterations);
      if (cg.preconditioned) {
        stats->precond_cg_iterations += static_cast<std::uint64_t>(cg.iterations);
      }
    }
    remaining = dt_eff < remaining ? remaining - dt_eff : 0.0;
    if (remaining <= 0.0) break;

    double max_d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_d = std::max(max_d, std::abs(temps[i] - prev[i]));
    }
    // Dwell hold: controller saturated at dt_max and the step moved
    // nothing beyond solver accuracy — the field is at the backward-Euler
    // fixed point, which is the steady-state solution, so the rest of
    // the dwell cannot change it (see header).
    if (opt_.steady_tol_k.value() > 0.0 && dt_eff >= dt_max &&
        max_d <= opt_.steady_tol_k.value()) {
      if (stats != nullptr) ++stats->holds;
      break;
    }
    if (max_d > opt_.target_step_k.value()) {
      dt = std::max(dt * opt_.shrink, dt_min);
    } else if (max_d < 0.25 * opt_.target_step_k.value()) {
      dt = std::min(dt * opt_.grow, dt_max);
    }
  }
}

}  // namespace taf::thermal

#pragma once
// Steady-state grid thermal model (the HotSpot role in the paper's flow).
//
// One thermal node per FPGA tile. Lateral conduction couples adjacent
// tiles through the silicon; a lumped vertical resistance (die + TIM +
// spreader + sink) connects every tile to ambient. Solving
//   (G_lateral + G_vertical) * (T - Tamb) = P
// gives the per-tile temperature map Algorithm 1 iterates on. The system
// is symmetric positive definite, solved matrix-free with conjugate
// gradients by one of two interchangeable backends:
//   * Stencil — matrix-free blocked stencil PCG with an SSOR
//     preconditioner and batched multi-RHS solves (the hot path; see
//     thermal/stencil_solver.hpp and DESIGN.md section 11);
//   * Generic — the original unpreconditioned CG, kept alive as the
//     differential-testing oracle (same role as the dense MNA backend
//     in src/spice).

#include <string>
#include <vector>

#include "arch/fpga_grid.hpp"
#include "util/units.hpp"

namespace taf::thermal {

enum class ThermalBackend { Generic, Stencil };

/// Backend used when ThermalConfig does not name one: Stencil, unless
/// the TAF_THERMAL_BACKEND environment variable ("generic" | "stencil")
/// overrides it. Read once per process. Mirrors spice::default_backend().
ThermalBackend default_thermal_backend();

const char* thermal_backend_name(ThermalBackend b);

struct ThermalConfig {
  units::Celsius ambient_c{25.0};
  /// Silicon thermal conductivity [W/(m K)].
  double silicon_k_w_mk = 140.0;
  /// Die thickness [um]; lateral conductance between neighbouring tiles is
  /// k * thickness (edge lengths cancel for square tiles).
  double die_thickness_um = 300.0;
  /// Tile edge [um] (from the architecture).
  double tile_edge_um = 34.6;
  /// Junction-to-ambient thermal resistance of the whole package [K/W];
  /// distributed uniformly over the tiles. Calibrated so that a typical
  /// routed benchmark warms ~2 degC over ambient, matching the paper's
  /// convergence observation and its dT ~= 0.7 p_design/p_base rule of
  /// thumb against the XPE spreadsheet.
  double package_r_k_per_w = 12.0;
  /// Volumetric heat capacity of silicon [J/(m^3 K)] for transients.
  double volumetric_c_j_m3k = 1.63e6;
  /// Per-tile temperature accuracy the CG termination criterion targets.
  /// The absolute residual floor is (weakest per-tile conductance of the
  /// operator being solved) * solve_tol_k per tile — g_vert for the
  /// steady-state system, g_vert + C/dt for the backward-Euler transient
  /// system — which bounds the worst-case solution error by
  /// sqrt(n_tiles) * solve_tol_k. At the default, comfortably below the
  /// 1e-9 degC the incremental-vs-full guardband differential contract
  /// asserts (DESIGN.md section 8).
  units::Kelvin solve_tol_k{1e-11};
  /// Which solver serves solve()/step(); both honour the same
  /// termination contract (DESIGN.md section 11).
  ThermalBackend backend = default_thermal_backend();

  double lateral_g_w_per_k() const {
    return silicon_k_w_mk * die_thickness_um * 1e-6;
  }
};

/// Convergence diagnostics of one conjugate-gradient solve.
struct CgStats {
  int iterations = 0;
  units::Watts residual_norm_w;  ///< ||P - A dT||_2 at termination
  /// True when the iterations were preconditioned (stencil backend):
  /// surfaced through GuardbandStats/TaskMetrics so iteration counts of
  /// the two backends are never conflated in reports.
  bool preconditioned = false;
};

/// Result of ThermalGrid::solve_adjoint(): the primal temperature field
/// plus the exact gradient of the smooth (log-sum-exp) peak temperature
/// with respect to every tile's power.
struct AdjointResult {
  /// Primal steady-state temperatures [degC] (identical to solve()).
  std::vector<double> temp_c;
  /// d(smooth peak T) / d(P_tile) [K/W], one entry per tile. Always
  /// non-negative: heating any tile can only raise the peak.
  std::vector<double> dpeak_dp_k_per_w;
  /// Smooth peak: Tmax + tau * log(sum_i exp((T_i - Tmax)/tau)).
  /// Upper-bounds the hard peak and converges to it as tau -> 0.
  units::Celsius smooth_peak_c;
  CgStats primal;
  CgStats adjoint;
};

class ThermalGrid {
 public:
  ThermalGrid(const arch::FpgaGrid& grid, ThermalConfig config);

  /// Steady-state tile temperatures [degC] for the given per-tile power
  /// map [W]. power.size() must equal the grid tile count.
  std::vector<double> solve(const std::vector<double>& power_w,
                            CgStats* stats = nullptr) const;

  /// Steady-state solve warm-started from an initial temperature field
  /// [degC] (e.g. the previous Algorithm 1 iterate). The system is SPD,
  /// so CG converges from any starting point to the same solution (within
  /// the termination tolerance); a nearby start just gets there in far
  /// fewer iterations. initial_temp_c.size() must equal the tile count.
  std::vector<double> solve(const std::vector<double>& power_w,
                            const std::vector<double>& initial_temp_c,
                            CgStats* stats = nullptr) const;

  /// Batched steady-state solve: one temperature map per power map, all
  /// corners sharing a single blocked operator traversal per CG
  /// iteration (stencil backend; the generic oracle solves sequentially).
  /// Results are bit-identical to calling solve() per map. stats, when
  /// given, is resized to one entry per map.
  std::vector<std::vector<double>> solve_batch(
      const std::vector<std::vector<double>>& power_w,
      std::vector<CgStats>* stats = nullptr) const;

  /// Warm-started batched solve for independent ambient corners that
  /// share this grid's conductance operator (the ambient never enters the
  /// operator, only the T = Tamb + dT shift): map k starts from
  /// initial_temp_c[k] and is solved against ambient_c[k], overriding
  /// config().ambient_c. Result k is bit-identical to calling
  /// solve(power_w[k], initial_temp_c[k]) on a grid configured with
  /// ambient ambient_c[k] — the guardband corner-batching contract
  /// (DESIGN.md section 12). All three vectors must have one entry per
  /// map; every map must match the grid tile count.
  std::vector<std::vector<double>> solve_batch(
      const std::vector<std::vector<double>>& power_w,
      const std::vector<std::vector<double>>& initial_temp_c,
      const std::vector<double>& ambient_c,
      std::vector<CgStats>* stats = nullptr) const;

  /// Gradient of the smooth peak temperature with respect to the power
  /// map, via the adjoint method: with T = Tamb + A^-1 P and the
  /// log-sum-exp smooth max S(T) (temperature scale smooth_tau_k), the
  /// chain rule gives dS/dP = A^-T w = A^-1 w (A is symmetric), where
  /// w = softmax((T - Tmax)/tau) is the smooth-max selection vector. One
  /// extra CG solve against the same SPD operator, served by whichever
  /// backend config() names — both honour the solve() termination
  /// contract, so the two backends agree to solver tolerance (the
  /// gradient-check CI job cross-checks both against central finite
  /// differences). Throws std::invalid_argument unless smooth_tau_k is
  /// positive and finite.
  AdjointResult solve_adjoint(const std::vector<double>& power_w,
                              units::Kelvin smooth_tau_k) const;

  /// Transient step: advance the temperature field by dt under constant
  /// power (backward Euler on C dT/dt + A (T - Tamb) = P). `temps` is
  /// updated in place. Used to study warm-up after a frequency change;
  /// thermal/transient.hpp wraps this in adaptive step control. Throws
  /// std::invalid_argument unless dt is positive and finite (dt divides
  /// into the C/dt backward-Euler diagonal).
  void step(const std::vector<double>& power_w, units::Seconds dt,
            std::vector<double>& temps, CgStats* stats = nullptr) const;

  /// Thermal time constant of one tile (C_tile / G_vertical-ish),
  /// useful to pick transient step sizes.
  units::Seconds tile_time_constant() const;

  /// Peak temperature of a solve result. temps must be non-empty.
  static units::Celsius peak(const std::vector<double>& temps);

  const ThermalConfig& config() const { return config_; }
  int width() const { return width_; }
  int height() const { return height_; }

  /// Render the temperature map as a coarse ASCII heat map (for the
  /// thermal_profile example and debugging). Throws std::invalid_argument
  /// unless temps.size() == width * height with positive dimensions.
  static std::string ascii_heatmap(const std::vector<double>& temps, int width,
                                   int height);

  /// y = A x where A is the conductance matrix. Public so tests can
  /// cross-check the matrix-free operator against an explicitly
  /// assembled sparse matrix.
  void apply(const std::vector<double>& x, std::vector<double>& y) const;

  double lateral_g() const { return g_lat_; }
  double vertical_g() const { return g_vert_; }

 private:
  /// Squared-residual CG termination threshold: relative to the initial
  /// residual, with an absolute floor at the residual a per-tile
  /// temperature error of config_.solve_tol_k would produce through the
  /// weakest per-tile conductance of the system being solved — g_vert_
  /// for the steady-state operator, g_vert_ + C/dt (`g_diag`) for the
  /// backward-Euler one. Deriving the transient floor from the
  /// steady-state conductance was a real bug: for small dt the g_vert_
  /// floor sits below what the huge (C/dt)-scaled right-hand side can
  /// reach in double precision, so every step ground through the full
  /// 4n-iteration cap and still returned an unconverged field (see the
  /// SmallDtStep regression tests). Without the floor a relative-only
  /// criterion (rr0 * 1e-20) made CG chase rounding noise for the full
  /// 4n iterations whenever the initial residual was already near zero
  /// (tiny power maps, warm starts at the solution).
  double cg_tolerance(double rr0, double g_diag) const;

  /// Shared generic-CG core: solves (A + g_c I) x = rhs for x = T - Tamb,
  /// starting from x (callers supply the matching residual
  /// r = rhs - (A + g_c I) x; pass g_c = 0 for the steady-state system).
  /// One parameterized loop serves solve() and step() so tolerance and
  /// stats fixes cannot diverge between the two paths again.
  void cg_core(std::vector<double>& x, std::vector<double>& r, double g_c,
               CgStats* stats) const;

  /// Stencil-backend equivalent of cg_core (thermal/stencil_solver.hpp).
  void stencil_solve(const std::vector<double>& rhs, std::vector<double>& x,
                     double g_c, CgStats* stats) const;

  int width_;
  int height_;
  ThermalConfig config_;
  double g_lat_;   ///< lateral conductance between adjacent tiles [W/K]
  double g_vert_;  ///< per-tile vertical conductance to ambient [W/K]
  double c_tile_;  ///< heat capacity of one tile [J/K]
};

}  // namespace taf::thermal

#pragma once
// Transient RC thermal engine (ROADMAP item 2; DESIGN.md section 13).
//
// Integrates C dT/dt + A (T - Tamb) = P with backward Euler over
// ThermalGrid::step() — unconditionally stable, first-order accurate —
// under deterministic adaptive step control keyed off the grid's
// tile_time_constant(). The controller never redoes a step (stability is
// unconditional; dt only trades accuracy), so a trace replay is a pure
// function of (grid, options, power, duration, start field): bit-identical
// on every rerun, which is what the service determinism contract and the
// transient-smoke CI gate pin.
//
// Long-dwell contract: the fixed point of one backward-Euler step,
// (C/dt + A) x = P + (C/dt) x, is exactly the steady-state solution
// A x = P, so holding any constant power long enough converges to
// ThermalGrid::solve(P) to within the shared CG termination contract
// (DESIGN.md section 11). tests/test_transient.cpp pins per-tile
// agreement within kTransientSteadyContractC on every benchmark, under
// both thermal backends — the differential gate of this engine.

#include <cstdint>
#include <vector>

#include "thermal/thermal_grid.hpp"
#include "util/units.hpp"

namespace taf::thermal {

/// Documented long-dwell agreement bound: after >= ~40 tile time
/// constants of constant power, every tile of the integrated field must
/// match the steady-state solve() within this many degC. Derivation: the
/// slowest thermal mode is the uniform one with time constant
/// tile_time_constant() (lateral conduction cancels on it), backward
/// Euler damps it by 1/(1 + dt/tau) per step, and the per-step CG error
/// injection is bounded by the solve_tol_k termination floor — orders of
/// magnitude of slack below this bound.
inline constexpr double kTransientSteadyContractC = 1e-6;

struct TransientOptions {
  /// First step, as a fraction of tile_time_constant(). Restarted at
  /// every advance() call: a power step excites the fast lateral modes,
  /// so each constant-power dwell begins fine-grained and coarsens.
  double dt_init_frac = 1.0 / 64.0;
  double dt_min_frac = 1.0 / 4096.0;
  double dt_max_frac = 8.0;
  /// Step growth/shrink applied after each accepted step: shrink when
  /// the peak per-step temperature change exceeded target_step_k, grow
  /// when it stayed under a quarter of it. Setting dt_min_frac ==
  /// dt_max_frac pins a fixed step (the convergence-order tests).
  double grow = 2.0;
  double shrink = 0.5;
  units::Kelvin target_step_k{0.25};
  /// Dwell hold: once the controller has saturated at dt_max and an
  /// accepted step moved no tile by more than this, the field is at its
  /// fixed point to solver accuracy and the remaining dwell is held
  /// (temps frozen, stats.holds incremented) instead of ground through
  /// step by step. Zero disables holding (fixed-step test mode).
  units::Kelvin steady_tol_k{1e-9};
  /// Hard safety cap on backward-Euler steps per advance() call;
  /// exceeding it throws std::runtime_error (a hostile trace duration
  /// must not spin the service).
  std::uint64_t max_steps = 1u << 20;
};

/// Work performed by one or more advance() calls.
struct TransientStats {
  std::uint64_t steps = 0;  ///< backward-Euler solves performed
  std::uint64_t holds = 0;  ///< dwells fast-forwarded at the fixed point
  std::uint64_t cg_iterations = 0;
  /// Subset of cg_iterations run preconditioned (stencil backend); kept
  /// separate like CgStats::preconditioned so backend iteration counts
  /// are never conflated.
  std::uint64_t precond_cg_iterations = 0;
};

/// Adaptive backward-Euler integrator over one ThermalGrid. The grid
/// reference must outlive the engine.
class TransientEngine {
 public:
  explicit TransientEngine(const ThermalGrid& grid, TransientOptions opt = {});

  /// Advance `temps` in place by `duration` under constant power.
  /// duration must be finite and >= 0 (zero is a no-op); power_w and
  /// temps must match the grid tile count. Stats, when given, accumulate
  /// across calls (callers zero them between traces).
  void advance(const std::vector<double>& power_w, units::Seconds duration,
               std::vector<double>& temps, TransientStats* stats = nullptr) const;

  const TransientOptions& options() const { return opt_; }
  const ThermalGrid& grid() const { return grid_; }

 private:
  const ThermalGrid& grid_;
  TransientOptions opt_;
};

}  // namespace taf::thermal

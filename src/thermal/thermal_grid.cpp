#include "thermal/thermal_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "thermal/stencil_solver.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace taf::thermal {

ThermalBackend default_thermal_backend() {
  static const ThermalBackend b = [] {
    if (const char* env = util::env_cstr("TAF_THERMAL_BACKEND")) {
      if (std::strcmp(env, "generic") == 0) return ThermalBackend::Generic;
      if (std::strcmp(env, "stencil") == 0) return ThermalBackend::Stencil;
      util::log_warn(
          "TAF_THERMAL_BACKEND='%s' is not 'generic' or 'stencil'; using stencil",
          env);
    }
    return ThermalBackend::Stencil;
  }();
  return b;
}

const char* thermal_backend_name(ThermalBackend b) {
  return b == ThermalBackend::Generic ? "generic" : "stencil";
}

ThermalGrid::ThermalGrid(const arch::FpgaGrid& grid, ThermalConfig config)
    : width_(grid.width()), height_(grid.height()), config_(config) {
  g_lat_ = config_.lateral_g_w_per_k();
  const int n = width_ * height_;
  assert(n > 0);
  // The package resistance is shared by all tiles in parallel.
  g_vert_ = 1.0 / (config_.package_r_k_per_w * n);
  const double tile_vol_m3 = config_.tile_edge_um * config_.tile_edge_um *
                             config_.die_thickness_um * 1e-18;
  c_tile_ = config_.volumetric_c_j_m3k * tile_vol_m3;
}

void ThermalGrid::apply(const std::vector<double>& x, std::vector<double>& y) const {
  for (int j = 0; j < height_; ++j) {
    for (int i = 0; i < width_; ++i) {
      const int idx = j * width_ + i;
      double acc = g_vert_ * x[static_cast<size_t>(idx)];
      const double xi = x[static_cast<size_t>(idx)];
      if (i > 0) acc += g_lat_ * (xi - x[static_cast<size_t>(idx - 1)]);
      if (i < width_ - 1) acc += g_lat_ * (xi - x[static_cast<size_t>(idx + 1)]);
      if (j > 0) acc += g_lat_ * (xi - x[static_cast<size_t>(idx - width_)]);
      if (j < height_ - 1) acc += g_lat_ * (xi - x[static_cast<size_t>(idx + width_)]);
      y[static_cast<size_t>(idx)] = acc;
    }
  }
}

double ThermalGrid::cg_tolerance(double rr0, double g_diag) const {
  // A per-tile residual of g_diag * solve_tol_k watts maps to a
  // temperature error of solve_tol_k kelvin through the weakest per-tile
  // conductance of the operator being solved (g_vert_ steady-state,
  // g_vert_ + C/dt transient) — far below physical significance, but a
  // hard absolute floor; see the header for why both the floor and its
  // conductance matter.
  const int n = width_ * height_;
  const double floor_per_tile = g_diag * config_.solve_tol_k.value();
  return std::max(rr0 * 1e-20, n * floor_per_tile * floor_per_tile);
}

void ThermalGrid::cg_core(std::vector<double>& x, std::vector<double>& r, double g_c,
                          CgStats* stats) const {
  const int n = width_ * height_;
  std::vector<double> p = r;
  std::vector<double> ap(static_cast<size_t>(n));

  auto dot = [](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  };
  auto apply_sys = [&](const std::vector<double>& v, std::vector<double>& out) {
    apply(v, out);
    if (g_c != 0.0) {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += g_c * v[i];
    }
  };

  double rr = dot(r, r);
  if (!std::isfinite(rr)) {
    throw std::invalid_argument(
        "thermal solve: non-finite right-hand side (power map)");
  }
  const double tol = cg_tolerance(rr, g_vert_ + g_c);
  int iters = 0;
  for (; iters < 4 * n && rr > tol; ++iters) {
    apply_sys(p, ap);
    const double pap = dot(p, ap);
    if (!(pap > 0.0)) {
      // alpha = rr / pap would be a silent NaN/inf spreading through the
      // temperature field; fail loudly in release builds too (same
      // contract as util::fit_exponential).
      throw std::runtime_error(
          "thermal CG breakdown: dot(p, Ap) = " + std::to_string(pap) +
          " is not positive (singular or non-SPD operator configuration)");
    }
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
  }
  if (stats != nullptr) {
    stats->iterations = iters;
    stats->residual_norm_w = units::Watts{std::sqrt(rr)};
    stats->preconditioned = false;
  }
}

void ThermalGrid::stencil_solve(const std::vector<double>& rhs, std::vector<double>& x,
                                double g_c, CgStats* stats) const {
  const StencilOp op(width_, height_, g_lat_, g_vert_, g_c);
  const StencilSolver solver(op, StencilPreconditioner::Ssor);
  const StencilSolveInfo info =
      solver.solve(rhs.data(), x.data(), 1e-20, cg_tolerance(0.0, g_vert_ + g_c));
  if (stats != nullptr) {
    stats->iterations = info.iterations;
    stats->residual_norm_w = units::Watts{std::sqrt(info.rr)};
    stats->preconditioned = true;
  }
}

std::vector<double> ThermalGrid::solve(const std::vector<double>& power_w,
                                       CgStats* stats) const {
  const int n = width_ * height_;
  assert(static_cast<int>(power_w.size()) == n);

  // Cold start: x = 0, so r = P exactly (no operator application needed).
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  if (config_.backend == ThermalBackend::Stencil) {
    stencil_solve(power_w, x, 0.0, stats);
  } else {
    std::vector<double> r = power_w;
    cg_core(x, r, 0.0, stats);
  }

  for (double& t : x) t += config_.ambient_c.value();
  return x;
}

std::vector<double> ThermalGrid::solve(const std::vector<double>& power_w,
                                       const std::vector<double>& initial_temp_c,
                                       CgStats* stats) const {
  const int n = width_ * height_;
  assert(static_cast<int>(power_w.size()) == n);
  assert(static_cast<int>(initial_temp_c.size()) == n);

  // Warm start from the given field: x0 = T0 - Tamb, r0 = P - A x0.
  std::vector<double> x(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    x[static_cast<size_t>(i)] =
        initial_temp_c[static_cast<size_t>(i)] - config_.ambient_c.value();
  if (config_.backend == ThermalBackend::Stencil) {
    stencil_solve(power_w, x, 0.0, stats);
  } else {
    std::vector<double> r(static_cast<size_t>(n));
    apply(x, r);
    for (int i = 0; i < n; ++i)
      r[static_cast<size_t>(i)] =
          power_w[static_cast<size_t>(i)] - r[static_cast<size_t>(i)];
    cg_core(x, r, 0.0, stats);
  }

  for (double& t : x) t += config_.ambient_c.value();
  return x;
}

std::vector<std::vector<double>> ThermalGrid::solve_batch(
    const std::vector<std::vector<double>>& power_w, std::vector<CgStats>* stats) const {
  const int n = width_ * height_;
  const auto nrhs = power_w.size();
  if (stats != nullptr) stats->assign(nrhs, CgStats{});
  std::vector<std::vector<double>> temps(nrhs);
  if (config_.backend != ThermalBackend::Stencil) {
    for (std::size_t k = 0; k < nrhs; ++k) {
      temps[k] = solve(power_w[k], stats != nullptr ? &(*stats)[k] : nullptr);
    }
    return temps;
  }
  std::vector<double> b(static_cast<std::size_t>(n) * nrhs);
  std::vector<double> x(static_cast<std::size_t>(n) * nrhs, 0.0);
  for (std::size_t k = 0; k < nrhs; ++k) {
    assert(static_cast<int>(power_w[k].size()) == n);
    std::copy(power_w[k].begin(), power_w[k].end(),
              b.begin() + static_cast<std::ptrdiff_t>(k) * n);
  }
  const StencilOp op(width_, height_, g_lat_, g_vert_, 0.0);
  const StencilSolver solver(op, StencilPreconditioner::Ssor);
  const std::vector<StencilSolveInfo> info = solver.solve_batch(
      static_cast<int>(nrhs), b.data(), x.data(), 1e-20, cg_tolerance(0.0, g_vert_));
  for (std::size_t k = 0; k < nrhs; ++k) {
    temps[k].assign(x.begin() + static_cast<std::ptrdiff_t>(k) * n,
                    x.begin() + static_cast<std::ptrdiff_t>(k + 1) * n);
    for (double& t : temps[k]) t += config_.ambient_c.value();
    if (stats != nullptr) {
      (*stats)[k].iterations = info[k].iterations;
      (*stats)[k].residual_norm_w = units::Watts{std::sqrt(info[k].rr)};
      (*stats)[k].preconditioned = true;
    }
  }
  return temps;
}

std::vector<std::vector<double>> ThermalGrid::solve_batch(
    const std::vector<std::vector<double>>& power_w,
    const std::vector<std::vector<double>>& initial_temp_c,
    const std::vector<double>& ambient_c, std::vector<CgStats>* stats) const {
  const int n = width_ * height_;
  const auto un = static_cast<std::size_t>(n);
  const auto nrhs = power_w.size();
  assert(initial_temp_c.size() == nrhs);
  assert(ambient_c.size() == nrhs);
  if (stats != nullptr) stats->assign(nrhs, CgStats{});
  std::vector<std::vector<double>> temps(nrhs);
  if (config_.backend != ThermalBackend::Stencil) {
    // Sequential oracle path: the warm-started solve() arithmetic with
    // the per-map ambient substituted for config_.ambient_c.
    for (std::size_t k = 0; k < nrhs; ++k) {
      assert(power_w[k].size() == un);
      assert(initial_temp_c[k].size() == un);
      std::vector<double> x(un);
      for (std::size_t i = 0; i < un; ++i) x[i] = initial_temp_c[k][i] - ambient_c[k];
      std::vector<double> r(un);
      apply(x, r);
      for (std::size_t i = 0; i < un; ++i) r[i] = power_w[k][i] - r[i];
      cg_core(x, r, 0.0, stats != nullptr ? &(*stats)[k] : nullptr);
      for (double& t : x) t += ambient_c[k];
      temps[k] = std::move(x);
    }
    return temps;
  }
  std::vector<double> b(un * nrhs);
  std::vector<double> x(un * nrhs);
  for (std::size_t k = 0; k < nrhs; ++k) {
    assert(power_w[k].size() == un);
    assert(initial_temp_c[k].size() == un);
    std::copy(power_w[k].begin(), power_w[k].end(),
              b.begin() + static_cast<std::ptrdiff_t>(k * un));
    for (std::size_t i = 0; i < un; ++i) {
      x[k * un + i] = initial_temp_c[k][i] - ambient_c[k];
    }
  }
  const StencilOp op(width_, height_, g_lat_, g_vert_, 0.0);
  const StencilSolver solver(op, StencilPreconditioner::Ssor);
  const std::vector<StencilSolveInfo> info = solver.solve_batch(
      static_cast<int>(nrhs), b.data(), x.data(), 1e-20, cg_tolerance(0.0, g_vert_));
  for (std::size_t k = 0; k < nrhs; ++k) {
    temps[k].assign(x.begin() + static_cast<std::ptrdiff_t>(k * un),
                    x.begin() + static_cast<std::ptrdiff_t>((k + 1) * un));
    for (double& t : temps[k]) t += ambient_c[k];
    if (stats != nullptr) {
      (*stats)[k].iterations = info[k].iterations;
      (*stats)[k].residual_norm_w = units::Watts{std::sqrt(info[k].rr)};
      (*stats)[k].preconditioned = true;
    }
  }
  return temps;
}

AdjointResult ThermalGrid::solve_adjoint(const std::vector<double>& power_w,
                                         units::Kelvin smooth_tau_k) const {
  const int n = width_ * height_;
  const auto un = static_cast<std::size_t>(n);
  assert(power_w.size() == un);
  if (!(smooth_tau_k.value() > 0.0) || !std::isfinite(smooth_tau_k.value())) {
    throw std::invalid_argument(
        "ThermalGrid::solve_adjoint: smooth_tau_k must be a positive finite "
        "temperature scale, got " +
        std::to_string(smooth_tau_k.value()) + " K");
  }
  const double tau = smooth_tau_k.value();

  AdjointResult out;
  out.temp_c = solve(power_w, &out.primal);

  // Softmax selection over the peak: w_i = exp((T_i - Tmax)/tau) / sum.
  // Shifting by Tmax keeps every exponent <= 0, so the sum is finite and
  // >= 1 for any tau. w is exactly dS/dT of the log-sum-exp smooth max.
  const double t_max = *std::max_element(out.temp_c.begin(), out.temp_c.end());
  std::vector<double> w(un);
  double sum = 0.0;
  for (std::size_t i = 0; i < un; ++i) {
    w[i] = std::exp((out.temp_c[i] - t_max) / tau);
    sum += w[i];
  }
  for (double& wi : w) wi /= sum;
  out.smooth_peak_c = units::Celsius{t_max + tau * std::log(sum)};

  // Adjoint solve: A lambda = w against the same steady-state operator.
  // lambda_j = d(smooth peak)/d(P_j) in K/W, by symmetry of A.
  out.dpeak_dp_k_per_w.assign(un, 0.0);
  if (config_.backend == ThermalBackend::Stencil) {
    stencil_solve(w, out.dpeak_dp_k_per_w, 0.0, &out.adjoint);
  } else {
    std::vector<double> r = w;
    cg_core(out.dpeak_dp_k_per_w, r, 0.0, &out.adjoint);
  }
  return out;
}

void ThermalGrid::step(const std::vector<double>& power_w, units::Seconds dt,
                       std::vector<double>& temps, CgStats* stats) const {
  const int n = width_ * height_;
  assert(static_cast<int>(power_w.size()) == n);
  assert(static_cast<int>(temps.size()) == n);
  // Backward Euler: (C/dt + A) dT_next = P + (C/dt) dT_now. The system
  // stays SPD, so the same CG machinery applies with an extra diagonal —
  // cg_core/stencil_solve parameterized by g_c, including the
  // termination floor, which must be derived from the augmented
  // diagonal g_vert_ + C/dt (see cg_tolerance).
  if (!(dt.value() > 0.0) || !std::isfinite(dt.value())) {
    // dt == 0 used to sail through and divide straight into the C/dt
    // diagonal, poisoning the whole field with inf/NaN.
    throw std::invalid_argument(
        "ThermalGrid::step: dt must be a positive finite duration, got " +
        std::to_string(dt.value()) + " s");
  }
  const double g_c = c_tile_ / dt.value();

  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] =
        temps[static_cast<std::size_t>(i)] - config_.ambient_c.value();

  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    rhs[static_cast<std::size_t>(i)] =
        power_w[static_cast<std::size_t>(i)] + g_c * x[static_cast<std::size_t>(i)];

  if (config_.backend == ThermalBackend::Stencil) {
    stencil_solve(rhs, x, g_c, stats);
  } else {
    std::vector<double> r(static_cast<std::size_t>(n));
    apply(x, r);
    for (int i = 0; i < n; ++i)
      r[static_cast<std::size_t>(i)] =
          rhs[static_cast<std::size_t>(i)] -
          (r[static_cast<std::size_t>(i)] + g_c * x[static_cast<std::size_t>(i)]);
    cg_core(x, r, g_c, stats);
  }
  for (int i = 0; i < n; ++i)
    temps[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(i)] + config_.ambient_c.value();
}

units::Seconds ThermalGrid::tile_time_constant() const {
  return units::Seconds{c_tile_ / g_vert_};
}

units::Celsius ThermalGrid::peak(const std::vector<double>& temps) {
  if (temps.empty()) {
    throw std::invalid_argument("ThermalGrid::peak: empty temperature map");
  }
  return units::Celsius{*std::max_element(temps.begin(), temps.end())};
}

std::string ThermalGrid::ascii_heatmap(const std::vector<double>& temps, int width,
                                       int height) {
  if (width <= 0 || height <= 0 ||
      temps.size() != static_cast<std::size_t>(width) * static_cast<std::size_t>(height)) {
    throw std::invalid_argument(
        "ThermalGrid::ascii_heatmap: temps.size() = " + std::to_string(temps.size()) +
        " does not match " + std::to_string(width) + "x" + std::to_string(height) +
        " grid");
  }
  static const char kRamp[] = " .:-=+*#%@";
  const double lo = *std::min_element(temps.begin(), temps.end());
  const double hi = *std::max_element(temps.begin(), temps.end());
  const double span = std::max(hi - lo, 1e-9);
  std::string out;
  for (int j = height - 1; j >= 0; --j) {  // y grows upward
    for (int i = 0; i < width; ++i) {
      const double t = temps[static_cast<size_t>(j * width + i)];
      const int level =
          std::min(9, static_cast<int>(std::floor((t - lo) / span * 9.999)));
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace taf::thermal

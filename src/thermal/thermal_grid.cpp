#include "thermal/thermal_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace taf::thermal {

ThermalGrid::ThermalGrid(const arch::FpgaGrid& grid, ThermalConfig config)
    : width_(grid.width()), height_(grid.height()), config_(config) {
  g_lat_ = config_.lateral_g_w_per_k();
  const int n = width_ * height_;
  assert(n > 0);
  // The package resistance is shared by all tiles in parallel.
  g_vert_ = 1.0 / (config_.package_r_k_per_w * n);
  const double tile_vol_m3 = config_.tile_edge_um * config_.tile_edge_um *
                             config_.die_thickness_um * 1e-18;
  c_tile_ = config_.volumetric_c_j_m3k * tile_vol_m3;
}

void ThermalGrid::apply(const std::vector<double>& x, std::vector<double>& y) const {
  for (int j = 0; j < height_; ++j) {
    for (int i = 0; i < width_; ++i) {
      const int idx = j * width_ + i;
      double acc = g_vert_ * x[static_cast<size_t>(idx)];
      const double xi = x[static_cast<size_t>(idx)];
      if (i > 0) acc += g_lat_ * (xi - x[static_cast<size_t>(idx - 1)]);
      if (i < width_ - 1) acc += g_lat_ * (xi - x[static_cast<size_t>(idx + 1)]);
      if (j > 0) acc += g_lat_ * (xi - x[static_cast<size_t>(idx - width_)]);
      if (j < height_ - 1) acc += g_lat_ * (xi - x[static_cast<size_t>(idx + width_)]);
      y[static_cast<size_t>(idx)] = acc;
    }
  }
}

double ThermalGrid::cg_tolerance(double rr0) const {
  // A per-tile residual of g_vert_ * solve_tol_k watts maps to a
  // temperature error of solve_tol_k kelvin through the weakest
  // (vertical) conductance — far below physical significance, but a hard
  // absolute floor: a relative-only criterion (rr0 * 1e-20) made CG
  // chase rounding noise for the full 4n iterations whenever the initial
  // residual was already near zero (tiny power maps, warm starts at the
  // solution).
  const int n = width_ * height_;
  const double floor_per_tile = g_vert_ * config_.solve_tol_k.value();
  return std::max(rr0 * 1e-20, n * floor_per_tile * floor_per_tile);
}

void ThermalGrid::cg_core(std::vector<double>& x, std::vector<double>& r,
                          CgStats* stats) const {
  const int n = width_ * height_;
  std::vector<double> p = r;
  std::vector<double> ap(static_cast<size_t>(n));

  auto dot = [](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  };

  double rr = dot(r, r);
  const double tol = cg_tolerance(rr);
  int iters = 0;
  for (; iters < 4 * n && rr > tol; ++iters) {
    apply(p, ap);
    const double alpha = rr / dot(p, ap);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
  }
  if (stats != nullptr) {
    stats->iterations = iters;
    stats->residual_norm_w = units::Watts{std::sqrt(rr)};
  }
}

std::vector<double> ThermalGrid::solve(const std::vector<double>& power_w,
                                       CgStats* stats) const {
  const int n = width_ * height_;
  assert(static_cast<int>(power_w.size()) == n);

  // Cold start: x = 0, so r = P exactly (no operator application needed).
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  std::vector<double> r = power_w;
  cg_core(x, r, stats);

  for (double& t : x) t += config_.ambient_c.value();
  return x;
}

std::vector<double> ThermalGrid::solve(const std::vector<double>& power_w,
                                       const std::vector<double>& initial_temp_c,
                                       CgStats* stats) const {
  const int n = width_ * height_;
  assert(static_cast<int>(power_w.size()) == n);
  assert(static_cast<int>(initial_temp_c.size()) == n);

  // Warm start from the given field: x0 = T0 - Tamb, r0 = P - A x0.
  std::vector<double> x(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    x[static_cast<size_t>(i)] =
        initial_temp_c[static_cast<size_t>(i)] - config_.ambient_c.value();
  std::vector<double> r(static_cast<size_t>(n));
  apply(x, r);
  for (int i = 0; i < n; ++i)
    r[static_cast<size_t>(i)] = power_w[static_cast<size_t>(i)] - r[static_cast<size_t>(i)];
  cg_core(x, r, stats);

  for (double& t : x) t += config_.ambient_c.value();
  return x;
}

void ThermalGrid::step(const std::vector<double>& power_w, units::Seconds dt,
                       std::vector<double>& temps, CgStats* stats) const {
  const int n = width_ * height_;
  assert(static_cast<int>(power_w.size()) == n);
  assert(static_cast<int>(temps.size()) == n);
  // Backward Euler: (C/dt + A) dT_next = P + (C/dt) dT_now. The system
  // stays SPD, so the same CG machinery applies with an extra diagonal.
  const double g_c = c_tile_ / dt.value();

  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] =
        temps[static_cast<std::size_t>(i)] - config_.ambient_c.value();

  auto apply_aug = [&](const std::vector<double>& v, std::vector<double>& out) {
    apply(v, out);
    for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] += g_c * v[static_cast<std::size_t>(i)];
  };

  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    rhs[static_cast<std::size_t>(i)] = power_w[static_cast<std::size_t>(i)] + g_c * x[static_cast<std::size_t>(i)];

  // CG from the current state.
  std::vector<double> r(static_cast<std::size_t>(n)), p(static_cast<std::size_t>(n)),
      ap(static_cast<std::size_t>(n));
  apply_aug(x, ap);
  for (int i = 0; i < n; ++i) r[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(i)] - ap[static_cast<std::size_t>(i)];
  p = r;
  auto dot = [](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  };
  double rr = dot(r, r);
  const double tol = cg_tolerance(rr);
  int iters = 0;
  for (; iters < 4 * n && rr > tol; ++iters) {
    apply_aug(p, ap);
    const double alpha = rr / dot(p, ap);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
  }
  if (stats != nullptr) {
    stats->iterations = iters;
    stats->residual_norm_w = units::Watts{std::sqrt(rr)};
  }
  for (int i = 0; i < n; ++i)
    temps[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)] + config_.ambient_c.value();
}

units::Seconds ThermalGrid::tile_time_constant() const {
  return units::Seconds{c_tile_ / g_vert_};
}

units::Celsius ThermalGrid::peak(const std::vector<double>& temps) {
  return units::Celsius{*std::max_element(temps.begin(), temps.end())};
}

std::string ThermalGrid::ascii_heatmap(const std::vector<double>& temps, int width,
                                       int height) {
  static const char kRamp[] = " .:-=+*#%@";
  const double lo = *std::min_element(temps.begin(), temps.end());
  const double hi = *std::max_element(temps.begin(), temps.end());
  const double span = std::max(hi - lo, 1e-9);
  std::string out;
  for (int j = height - 1; j >= 0; --j) {  // y grows upward
    for (int i = 0; i < width; ++i) {
      const double t = temps[static_cast<size_t>(j * width + i)];
      const int level =
          std::min(9, static_cast<int>(std::floor((t - lo) / span * 9.999)));
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace taf::thermal

#pragma once
// Architectural parameters of the modelled island-style FPGA
// (paper Table I, following COFFE defaults / Stratix-like devices).

#include <cstdint>

#include "util/hash.hpp"

namespace taf::arch {

struct ArchParams {
  int lut_k = 6;              ///< LUT input count (K)
  int cluster_n = 10;         ///< BLEs per logic cluster (N)
  int channel_tracks = 320;   ///< routing tracks per channel (W)
  int wire_segment_length = 4;///< tiles spanned by a routing wire (L)
  int cluster_inputs = 40;    ///< global inputs per cluster (I)
  int sb_mux_size = 12;       ///< switch-block mux fan-in
  int cb_mux_size = 64;       ///< connection-block mux fan-in
  int local_mux_size = 25;    ///< local crossbar mux fan-in
  double vdd = 0.8;           ///< core supply [V]
  double vdd_low_power = 0.95;///< BRAM supply [V]
  int bram_words = 1024;      ///< BRAM depth
  int bram_width = 32;        ///< BRAM word width [bits]

  /// Soft-fabric tile edge length [um]; the paper reports a full soft tile
  /// area of ~1196 um^2, i.e. ~34.6 um on a side.
  double tile_edge_um = 34.6;

  /// Fraction of channel tracks a routed design may use before the router
  /// reports congestion failure (PathFinder works toward zero overuse).
  double max_channel_utilization = 1.0;
};

/// Order-sensitive FNV-1a hash over every field. Lives next to the
/// struct so the field list cannot drift from the hash; shared by the
/// runner's cache keys and the core stage graph's artifact hashes.
inline std::uint64_t params_hash(const ArchParams& arch) {
  util::Fnv1a h;
  h.add(arch.lut_k);
  h.add(arch.cluster_n);
  h.add(arch.channel_tracks);
  h.add(arch.wire_segment_length);
  h.add(arch.cluster_inputs);
  h.add(arch.sb_mux_size);
  h.add(arch.cb_mux_size);
  h.add(arch.local_mux_size);
  h.add(arch.vdd);
  h.add(arch.vdd_low_power);
  h.add(arch.bram_words);
  h.add(arch.bram_width);
  h.add(arch.tile_edge_um);
  h.add(arch.max_channel_utilization);
  return h.state;
}

/// The paper's Table I configuration.
inline ArchParams paper_arch() { return ArchParams{}; }

/// A reduced-width configuration used for the routed P&R experiments
/// (DESIGN.md section 6 documents this scaling; the ablation bench shows
/// guardbanding gains are insensitive to channel width).
inline ArchParams scaled_arch() {
  ArchParams a;
  a.channel_tracks = 96;
  return a;
}

}  // namespace taf::arch

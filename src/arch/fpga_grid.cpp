#include "arch/fpga_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace taf::arch {

const char* tile_kind_name(TileKind k) {
  switch (k) {
    case TileKind::Clb: return "CLB";
    case TileKind::Bram: return "BRAM";
    case TileKind::Dsp: return "DSP";
    case TileKind::Io: return "IO";
  }
  return "?";
}

FpgaGrid::FpgaGrid(int width, int height) : width_(width), height_(height) {
  assert(width >= 4 && height >= 4 && "grid must have an interior");
  kinds_.resize(static_cast<size_t>(width_) * height_);
  by_kind_.resize(4);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      TileKind k;
      if (x == 0 || y == 0 || x == width_ - 1 || y == height_ - 1) {
        k = TileKind::Io;
      } else if (x % kHardColumnPeriod == kBramColumnPhase) {
        k = TileKind::Bram;
      } else if (x % kHardColumnPeriod == kDspColumnPhase) {
        k = TileKind::Dsp;
      } else {
        k = TileKind::Clb;
      }
      kinds_[static_cast<size_t>(index_of(x, y))] = k;
      by_kind_[static_cast<size_t>(k)].push_back({x, y});
    }
  }
}

TileKind FpgaGrid::at(int x, int y) const {
  assert(x >= 0 && x < width_ && y >= 0 && y < height_);
  return kinds_[static_cast<size_t>(index_of(x, y))];
}

const std::vector<TilePos>& FpgaGrid::tiles_of(TileKind k) const {
  return by_kind_[static_cast<size_t>(k)];
}

FpgaGrid FpgaGrid::fit(int num_clbs, int num_brams, int num_dsps) {
  assert(num_clbs > 0);
  // Start from a square estimate and grow until all demands fit.
  int side = std::max(6, static_cast<int>(std::ceil(std::sqrt(num_clbs * 1.9))) + 2);
  for (;;) {
    FpgaGrid g(side, side);
    if (g.capacity(TileKind::Clb) >= static_cast<int>(std::ceil(num_clbs * 1.45)) &&
        g.capacity(TileKind::Bram) >= num_brams && g.capacity(TileKind::Dsp) >= num_dsps) {
      return g;
    }
    ++side;
  }
}

}  // namespace taf::arch

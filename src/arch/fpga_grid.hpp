#pragma once
// Heterogeneous island-style FPGA grid: columns of logic clusters with
// periodic BRAM and DSP columns, IO on the perimeter (Fig. 4 of the paper).

#include <cstdint>
#include <vector>

#include "arch/arch_params.hpp"

namespace taf::arch {

enum class TileKind : std::uint8_t { Clb, Bram, Dsp, Io };

const char* tile_kind_name(TileKind k);

struct TilePos {
  int x = 0;
  int y = 0;
  friend bool operator==(const TilePos&, const TilePos&) = default;
};

/// The physical tile array. Tile (0,0) is the bottom-left corner; the
/// outermost ring is IO. Interior columns follow a repeating pattern with
/// one BRAM and one DSP column per `kHardColumnPeriod` columns.
class FpgaGrid {
 public:
  static constexpr int kHardColumnPeriod = 8;
  static constexpr int kBramColumnPhase = 4;
  static constexpr int kDspColumnPhase = 0;

  FpgaGrid(int width, int height);

  /// Smallest grid whose capacities cover the given block demands with
  /// ~20% slack (VPR's auto-sizing behaviour).
  static FpgaGrid fit(int num_clbs, int num_brams, int num_dsps);

  int width() const { return width_; }
  int height() const { return height_; }
  int num_tiles() const { return width_ * height_; }

  TileKind at(int x, int y) const;
  TileKind at(TilePos p) const { return at(p.x, p.y); }

  /// Dense linear index for per-tile vectors (power, temperature).
  int index_of(int x, int y) const { return y * width_ + x; }
  int index_of(TilePos p) const { return index_of(p.x, p.y); }
  TilePos pos_of(int index) const { return {index % width_, index / width_}; }

  /// All positions of a given tile kind, in row-major order.
  const std::vector<TilePos>& tiles_of(TileKind k) const;

  int capacity(TileKind k) const { return static_cast<int>(tiles_of(k).size()); }

 private:
  int width_;
  int height_;
  std::vector<TileKind> kinds_;
  std::vector<std::vector<TilePos>> by_kind_;
};

}  // namespace taf::arch

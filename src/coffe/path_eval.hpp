#pragma once
// Delay, capacitance and leakage evaluation of a PathSpec.
//
// Two delay evaluators are provided:
//  * elmore_delay_ps  — analytic RC (ln2 * sum R_upstream * C_node); fast,
//    used inside the transistor-sizing loop exactly as COFFE does;
//  * spice_delay_ps   — transient simulation with the built-in solver;
//    used for the final characterization sweeps (the paper's HSPICE role).

#include "coffe/path_spec.hpp"
#include "spice/circuit.hpp"
#include "tech/technology.hpp"
#include "util/units.hpp"

namespace taf::coffe {

/// Analytic Elmore delay of the path at the given temperature [ps].
double elmore_delay_ps(const PathSpec& spec, const tech::Technology& tech,
                       units::Celsius temp);

/// Transient-simulated 50%-to-50% delay of the path [ps]. Throws
/// std::runtime_error if the output never switches (broken sizing).
double spice_delay_ps(const PathSpec& spec, const tech::Technology& tech,
                      units::Celsius temp);

/// The netlist spice_delay_ps simulates, plus everything needed to rerun
/// and re-measure it externally (differential backend tests, benchmarks).
struct PathCircuitProbe {
  spice::Circuit circuit;
  spice::NodeId in = 0;   ///< driven input node
  spice::NodeId out = 0;  ///< measured output node
  bool out_rising = true;
  double t_edge_ps = 0.0;  ///< input edge launch time
  double t_stop_ps = 0.0;  ///< simulation horizon
  double dt_ps = 0.0;      ///< solver timestep spice_delay_ps uses
};

/// Build the transient testbench for a path without simulating it.
PathCircuitProbe build_path_circuit(const PathSpec& spec, const tech::Technology& tech,
                                    units::Celsius temp);

/// Total capacitance switched when the resource toggles [fF]
/// (gate + junction + wire + declared extra dynamic cap).
double switched_cap_ff(const PathSpec& spec, const tech::Technology& tech);

/// Static leakage power of the full resource at temperature [uW]:
/// path devices + declared off-structure widths + SRAM cells.
double leakage_uw(const PathSpec& spec, const tech::Technology& tech,
                  units::Celsius temp);

/// Dynamic power at the given frequency and activity [uW]:
/// 0.5 * alpha * C * Vdd^2 * f.
double dynamic_power_uw(const PathSpec& spec, const tech::Technology& tech, double f_mhz,
                        double activity);

}  // namespace taf::coffe

#include "coffe/stdcell.hpp"

#include <cassert>
#include <stdexcept>
#include <cmath>

#include "spice/circuit.hpp"
#include "spice/solver.hpp"

namespace taf::coffe::stdcell {

namespace {

using spice::Circuit;
using spice::kGround;
using spice::MosType;
using spice::NodeId;
using tech::Flavor;

const char* kCellNames[kNumCellTypes] = {"INV", "NAND2", "NOR2", "AND3", "XOR2",
                                         "FA_CARRY"};

/// Structural description used to build the worst-case SPICE arc of a
/// cell: `n_stack` series NMOS devices on the pull-down (side inputs tied
/// on), `p_stack` series PMOS on the pull-up, plus `extra_stages` internal
/// inverter stages for compound cells (AND3's output inverter, XOR's
/// input conditioning, the carry's buffering).
struct CellStructure {
  int n_stack = 1;
  int p_stack = 1;
  int extra_stages = 0;
  double internal_cap_ff = 0.0;  ///< self-loading of the internal network
};

CellStructure structure_of(CellType t) {
  switch (t) {
    case CellType::Inv: return {1, 1, 0, 0.0};
    case CellType::Nand2: return {2, 1, 0, 0.4};
    case CellType::Nor2: return {1, 2, 0, 0.4};
    case CellType::And3: return {3, 1, 1, 0.8};
    case CellType::Xor2: return {2, 2, 1, 1.0};
    case CellType::FaCarry: return {2, 2, 1, 1.4};
  }
  return {};
}

/// Build the cell's worst arc into `c` and return {input node, output node}.
/// The driving input switches through the full stack; the other stack
/// inputs are tied active so the path conducts.
std::pair<NodeId, NodeId> build_cell(Circuit& c, NodeId vdd, CellType t, double w_um,
                                     const std::string& prefix) {
  const CellStructure st = structure_of(t);
  const NodeId in = c.add_node(prefix + "_in");

  // Pull-down stack: series NMOS, driven input at the bottom (worst case).
  NodeId out = c.add_node(prefix + "_out");
  NodeId below = kGround;
  for (int i = 0; i < st.n_stack; ++i) {
    const bool driven = i == 0;
    const NodeId drain = i == st.n_stack - 1 ? out : c.add_node(prefix + "_n" + std::to_string(i));
    if (driven) {
      c.add_mosfet(MosType::Nmos, Flavor::StdCell, drain, in, below, w_um);
    } else {
      c.add_mosfet(MosType::Nmos, Flavor::StdCell, drain, vdd, below, w_um);
    }
    below = drain;
  }
  // Pull-up stack: series PMOS (2x width per device), driven input on top.
  NodeId above = vdd;
  for (int i = 0; i < st.p_stack; ++i) {
    const bool driven = i == 0;
    const NodeId drain = i == st.p_stack - 1 ? out : c.add_node(prefix + "_p" + std::to_string(i));
    if (driven) {
      c.add_mosfet(MosType::Pmos, Flavor::StdCell, drain, in, above, 2.0 * w_um);
    } else {
      c.add_mosfet(MosType::Pmos, Flavor::StdCell, drain, kGround, above, 2.0 * w_um);
    }
    above = drain;
  }
  if (st.internal_cap_ff > 0.0) c.add_capacitor(out, kGround, st.internal_cap_ff * w_um);

  // Compound cells: internal inverter stage(s) after the stack.
  NodeId stage_in = out;
  for (int s = 0; s < st.extra_stages; ++s) {
    const NodeId next = c.add_node(prefix + "_x" + std::to_string(s));
    c.add_mosfet(MosType::Nmos, Flavor::StdCell, next, stage_in, kGround, w_um);
    c.add_mosfet(MosType::Pmos, Flavor::StdCell, next, stage_in, vdd, 2.0 * w_um);
    stage_in = next;
  }
  return {in, stage_in};
}

/// Measure one cell's 50%-to-50% delay at a given output load.
double measure_cell_delay(const tech::Technology& tech, units::Celsius temp_c, CellType t,
                          double w_um, double load_ff) {
  const CellCircuitProbe probe = build_cell_circuit(tech, t, w_um, load_ff);

  spice::SolverOptions opt;
  opt.temp_c = temp_c;
  opt.dt_ps = probe.dt_ps;
  const auto r = spice::solve_transient(probe.circuit, tech, opt, probe.t_stop_ps);

  const double d =
      spice::propagation_delay_ps(r, probe.in, probe.out, tech.vdd,
                                  /*in_rising=*/false, probe.out_rising, probe.t_edge_ps);
  if (d <= 0.0) throw std::runtime_error("stdcell: cell did not switch");
  return d;
}

}  // namespace

CellCircuitProbe build_cell_circuit(const tech::Technology& tech, CellType t,
                                    double w_um, double load_ff) {
  CellCircuitProbe probe;
  Circuit& c = probe.circuit;
  const NodeId vdd = c.add_node("vdd");
  c.drive(vdd, spice::dc_waveform(tech.vdd));
  // A small driver inverter shapes a realistic input edge.
  const NodeId src = c.add_node("src");
  c.drive(src, spice::step_waveform(0.0, tech.vdd, 60.0, 5.0));
  const NodeId edge = c.add_node("edge");
  c.add_mosfet(MosType::Nmos, Flavor::StdCell, edge, src, kGround, 1.0);
  c.add_mosfet(MosType::Pmos, Flavor::StdCell, edge, src, vdd, 2.0);

  auto [in, out] = build_cell(c, vdd, t, w_um, "cell");
  c.add_resistor(edge, in, 1e-3);  // tie the shaped edge to the cell input
  c.add_capacitor(out, kGround, load_ff);

  const CellStructure st = structure_of(t);
  probe.in = edge;
  probe.out = out;
  // Polarity: the falling input is inverted by the stack and by each
  // extra stage; the output rises when the total inversion count is odd.
  probe.out_rising = (1 + st.extra_stages) % 2 == 1;
  probe.t_edge_ps = 60.0;
  probe.t_stop_ps = 4000.0;
  probe.dt_ps = 1.5;
  return probe;
}

const char* cell_name(CellType t) { return kCellNames[static_cast<int>(t)]; }

Liberty characterize_library(const tech::Technology& tech, units::Celsius temp_c) {
  std::array<std::array<CellTiming, 3>, kNumCellTypes> arcs{};
  for (int ti = 0; ti < kNumCellTypes; ++ti) {
    const auto type = static_cast<CellType>(ti);
    for (std::size_t di = 0; di < kDriveStrengths.size(); ++di) {
      const double w = kDriveStrengths[di];
      const double lo = 2.0, hi = 12.0;  // characterization loads [fF]
      const double d_lo = measure_cell_delay(tech, temp_c, type, w, lo);
      const double d_hi = measure_cell_delay(tech, temp_c, type, w, hi);
      CellTiming ct;
      ct.slope_ps_per_ff = (d_hi - d_lo) / (hi - lo);
      ct.intrinsic_ps = d_lo - ct.slope_ps_per_ff * lo;
      const auto& p = tech.flavor(Flavor::StdCell);
      const CellStructure st = structure_of(type);
      ct.input_cap_ff = p.c_gate * 3.0 * w;  // driven N + P gate
      // Leakage: one off device per stack plus the extra stages.
      ct.leakage_nw = tech.vdd *
                      tech::off_current_na(p, w * (st.n_stack + 2.0 * st.p_stack) * 0.5 +
                                                  3.0 * w * st.extra_stages * 0.5,
                                           temp_c.value());
      arcs[static_cast<std::size_t>(ti)][di] = ct;
    }
  }
  return Liberty(temp_c, arcs);
}

std::vector<PathGate> mac27_critical_path() {
  // 27x27 MAC worst path: partial-product AND, Booth mux (XOR-ish), six
  // 3:2 compressor levels (FA carry arcs), and a 54-bit final adder
  // modelled as a log-depth carry tree (7 levels of AND3/XOR alternation).
  std::vector<PathGate> p;
  p.push_back({CellType::Nand2, 1, 1.5});
  p.push_back({CellType::Xor2, 1, 2.0});
  for (int i = 0; i < 6; ++i) {
    p.push_back({CellType::FaCarry, 1, 2.5});
  }
  for (int i = 0; i < 7; ++i) {
    p.push_back({i % 2 == 0 ? CellType::And3 : CellType::Xor2, 1, 3.0});
  }
  p.push_back({CellType::Inv, 2, 4.0});  // output driver
  return p;
}

double sta_path_delay_ps(const std::vector<PathGate>& path, const Liberty& lib) {
  double total = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const PathGate& g = path[i];
    const double next_cap =
        i + 1 < path.size()
            ? lib.arc(path[i + 1].type, path[i + 1].drive_index).input_cap_ff
            : 4.0;  // output flop
    total += lib.arc(g.type, g.drive_index).delay_ps(g.wire_ff + next_cap);
  }
  return total;
}

std::vector<PathGate> synthesize_mac(const tech::Technology& tech, units::Celsius t_opt_c,
                                     double area_weight) {
  const Liberty lib = characterize_library(tech, t_opt_c);
  std::vector<PathGate> path = mac27_critical_path();

  auto cost = [&]() {
    double area = 0.0;
    for (const PathGate& g : path) area += kDriveStrengths[static_cast<std::size_t>(g.drive_index)];
    return sta_path_delay_ps(path, lib) * (1.0 + area_weight * area);
  };

  double best = cost();
  bool improved = true;
  int rounds = 0;
  while (improved && rounds++ < 20) {
    improved = false;
    for (PathGate& g : path) {
      for (int delta : {1, -1}) {
        const int old = g.drive_index;
        const int next = old + delta;
        if (next < 0 || next >= static_cast<int>(kDriveStrengths.size())) continue;
        g.drive_index = next;
        const double c = cost();
        if (c < best) {
          best = c;
          improved = true;
        } else {
          g.drive_index = old;
        }
      }
    }
  }
  return path;
}

}  // namespace taf::coffe::stdcell

#pragma once
// Standard-cell library characterization and gate-level STA — the
// SiliconSmart + Design Compiler role in the paper's DSP flow (Fig. 5b).
//
// The paper builds one liberty library per temperature from SPICE netlists
// of NanGate-like cells, synthesizes a Stratix-like DSP once, and then
// sweeps the libraries over the netlist to get delay(T). This module does
// exactly that with the built-in SPICE engine: each cell is characterized
// into a linear delay-vs-load arc (liberty's NLDM reduced to first order),
// a MAC critical-path netlist is "synthesized" by discrete drive-strength
// selection at a target corner, and per-temperature STA sweeps follow.

#include <array>
#include <vector>

#include "spice/circuit.hpp"
#include "tech/technology.hpp"
#include "util/units.hpp"

namespace taf::coffe::stdcell {

enum class CellType : int {
  Inv = 0,    ///< inverter
  Nand2,      ///< 2-input NAND (2-high NMOS stack)
  Nor2,       ///< 2-input NOR (2-high PMOS stack)
  And3,       ///< 3-input AND (NAND3 + INV compound, 3-high stack)
  Xor2,       ///< XOR (transmission-gate style; modelled as compound stack)
  FaCarry,    ///< full-adder carry arc (the compressor-tree workhorse)
};
inline constexpr int kNumCellTypes = 6;
inline constexpr std::array<int, 3> kDriveStrengths = {1, 2, 4};

const char* cell_name(CellType t);

/// One liberty timing arc: delay(load) = intrinsic + slope * C_load.
struct CellTiming {
  double intrinsic_ps = 0.0;
  double slope_ps_per_ff = 0.0;
  double input_cap_ff = 0.0;
  double leakage_nw = 0.0;

  double delay_ps(double load_ff) const { return intrinsic_ps + slope_ps_per_ff * load_ff; }
};

/// A characterized library: all cells at all drive strengths, at one
/// temperature (one ".lib" file of the paper's flow).
class Liberty {
 public:
  Liberty(units::Celsius temp, std::array<std::array<CellTiming, 3>, kNumCellTypes> arcs)
      : temp_c_(temp), arcs_(arcs) {}

  units::Celsius temp_c() const { return temp_c_; }
  /// drive_index indexes kDriveStrengths.
  const CellTiming& arc(CellType t, int drive_index) const {
    return arcs_[static_cast<std::size_t>(static_cast<int>(t))]
                [static_cast<std::size_t>(drive_index)];
  }

 private:
  units::Celsius temp_c_;
  std::array<std::array<CellTiming, 3>, kNumCellTypes> arcs_;
};

/// SPICE-characterize the full library at a temperature: each cell's worst
/// arc is measured at two output loads and reduced to the linear model.
Liberty characterize_library(const tech::Technology& tech, units::Celsius temp);

/// The testbench one cell arc is measured in (edge-shaping driver, the
/// cell's worst arc, the output load), plus how to measure it — exposed
/// so external tests (differential backend harness) can rerun the exact
/// netlist the characterization uses.
struct CellCircuitProbe {
  spice::Circuit circuit;
  spice::NodeId in = 0;   ///< shaped-edge node the delay is measured from
  spice::NodeId out = 0;  ///< cell output node
  bool out_rising = true; ///< output polarity for the falling input edge
  double t_edge_ps = 0.0;
  double t_stop_ps = 0.0;
  double dt_ps = 0.0;
};

CellCircuitProbe build_cell_circuit(const tech::Technology& tech, CellType t,
                                    double w_um, double load_ff);

/// A gate on the synthesized critical path.
struct PathGate {
  CellType type = CellType::Inv;
  int drive_index = 0;    ///< into kDriveStrengths
  double wire_ff = 2.0;   ///< interconnect cap this gate drives, on top of
                          ///< the next gate's input cap
};

/// Critical path of a Stratix-like 27x27 multiply-accumulate block:
/// Booth/partial-product AND stage, XOR/carry compressor tree levels, and
/// the final adder's carry chain (structure after Boutros FPL'18).
std::vector<PathGate> mac27_critical_path();

/// Sum of liberty arc delays along the path (output load of gate i is the
/// input cap of gate i+1 plus its wire load; the last gate drives the
/// block's output flop, ~4 fF).
double sta_path_delay_ps(const std::vector<PathGate>& path, const Liberty& lib);

/// "Synthesis": choose per-gate drive strengths minimizing path delay
/// under the library of the target corner (greedy sweeps to convergence,
/// with a mild area penalty per drive step).
std::vector<PathGate> synthesize_mac(const tech::Technology& tech, units::Celsius t_opt,
                                     double area_weight = 0.02);

}  // namespace taf::coffe::stdcell

#include "coffe/sizing.hpp"

#include <algorithm>
#include <cmath>

#include "coffe/path_eval.hpp"

namespace taf::coffe {

namespace {

/// Snap a width to the discrete drive-strength ladder used by the
/// standard-cell (DSP) flow: 0.5, 1, 2, 4, 8, 16.
double snap_discrete(double w) {
  double best = 0.5;
  for (double cand = 0.5; cand <= 16.0; cand *= 2.0) {
    if (std::fabs(std::log(w / cand)) < std::fabs(std::log(w / best))) best = cand;
  }
  return best;
}

}  // namespace

SizingResult size_path(PathSpec spec, const tech::Technology& tech,
                       const SizingOptions& opt) {
  SizingResult result;
  result.evaluations = 0;

  auto cost = [&](const PathSpec& s) {
    ++result.evaluations;
    const double d = elmore_delay_ps(s, tech, opt.t_opt_c);
    const double a = path_area_um2(s);
    return d * std::pow(a, opt.area_weight);
  };

  double best = cost(spec);
  const auto steps = spec.discrete_sizes
                         ? std::vector<double>{2.0}
                         : std::vector<double>{1.30, 1.12, 1.05, 1.02};
  for (double step : steps) {
    bool improved = true;
    int rounds = 0;
    while (improved && rounds++ < opt.max_rounds) {
      improved = false;
      for (Stage& s : spec.stages) {
        if (!s.sizable || s.kind == StageKind::Wire) continue;
        for (double mult : {step, 1.0 / step}) {
          const double old = s.w_um;
          double next = std::clamp(old * mult, s.min_w, s.max_w);
          if (spec.discrete_sizes) next = snap_discrete(next);
          if (next == old) continue;
          s.w_um = next;
          const double c = cost(spec);
          if (c < best) {
            best = c;
            improved = true;
          } else {
            s.w_um = old;
          }
        }
      }
      // The keeper is a spec-level coordinate (shared by all restored
      // segments of the resource).
      for (double mult : {step, 1.0 / step}) {
        const double old = spec.keeper_w;
        const double next = std::clamp(old * mult, spec.keeper_min_w, spec.keeper_max_w);
        if (next == old) continue;
        spec.keeper_w = next;
        const double c = cost(spec);
        if (c < best) {
          best = c;
          improved = true;
        } else {
          spec.keeper_w = old;
        }
      }
    }
  }
  result.delay_ps = elmore_delay_ps(spec, tech, opt.t_opt_c);
  result.area_um2 = path_area_um2(spec);
  result.spec = std::move(spec);
  return result;
}

}  // namespace taf::coffe

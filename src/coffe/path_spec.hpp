#pragma once
// Transistor-level critical-path description of a soft-fabric resource.
//
// COFFE models each FPGA resource by its critical path: a chain of
// inverters (drivers/buffers), pass transistors (mux branches, LUT tree)
// and wires. The sizing optimizer adjusts the sizable stage widths; the
// Elmore evaluator (sizing inner loop) and the SPICE evaluator
// (characterization) both consume this spec.

#include <string>
#include <vector>

#include "arch/arch_params.hpp"
#include "coffe/resource.hpp"
#include "tech/technology.hpp"

namespace taf::coffe {

enum class StageKind { Inverter, PassGate, Wire };

struct Stage {
  StageKind kind = StageKind::Inverter;
  tech::Flavor flavor = tech::Flavor::HP;
  double w_um = 1.0;         ///< device width (per NMOS; PMOS is 2x) — unused for Wire
  double wire_len_um = 0.0;  ///< wire length — Wire stages only
  double fixed_load_ff = 0.0;///< extra fixed capacitance at the stage output
  /// Number of identical off sibling branches hanging on this stage's
  /// *input* node (mux branching). Their junction caps scale with w_um.
  int off_siblings = 0;
  /// True on the last pass transistor of a pass segment: the segment's
  /// output node carries a level-restoring keeper (see PathSpec::keeper_w).
  bool has_keeper = false;
  bool sizable = true;       ///< may the optimizer change w_um?
  double min_w = 0.4;
  double max_w = 24.0;
};

struct PathSpec {
  std::string name;
  ResourceKind kind = ResourceKind::SbMux;
  double vdd = 0.8;
  std::vector<Stage> stages;
  int sram_bits = 0;          ///< configuration SRAM cells (area + leakage)
  double extra_dyn_cap_ff = 0.0;  ///< switched cap not on the critical path
  /// Leakage of replicated structure not on the path (off mux branches of
  /// the full mux, unused tree devices), expressed as total device width
  /// per flavor that sits in an off state.
  double off_width_hp_um = 0.0;
  double off_width_pg_um = 0.0;
  /// If true the optimizer snaps widths to discrete drive strengths
  /// (standard-cell flow; used for the DSP path).
  bool discrete_sizes = false;

  /// Width of the PMOS level-restoring keeper on pass-segment outputs.
  /// Keepers must hold the degraded pass-gate "1" against the leakage of
  /// the off branches *at the design corner*, so their sizing is the main
  /// way the design temperature imprints on soft-fabric timing: an
  /// oversized keeper (hot-corner design run cold) fights every
  /// transition; an undersized one (cold-corner design run hot) lets the
  /// node droop and slows the downstream stage. See elmore_delay_ps.
  double keeper_w = 0.3;
  double keeper_min_w = 0.05;
  double keeper_max_w = 4.0;

  int num_inverters() const;
  /// True if the output edge direction equals the input edge direction.
  bool output_same_polarity() const { return num_inverters() % 2 == 0; }
};

/// Default (pre-sizing) critical-path specs for the Table I architecture.
PathSpec sb_mux_spec(const arch::ArchParams& a);
PathSpec cb_mux_spec(const arch::ArchParams& a);
PathSpec local_mux_spec(const arch::ArchParams& a);
PathSpec feedback_mux_spec(const arch::ArchParams& a);
PathSpec output_mux_spec(const arch::ArchParams& a);
PathSpec lut_spec(const arch::ArchParams& a);
/// Std-cell chain representing the Stratix-like DSP (27x27 MAC) critical path.
PathSpec dsp_spec(const arch::ArchParams& a);

PathSpec spec_for(ResourceKind k, const arch::ArchParams& a);

/// Active transistor area of the path plus SRAM area [um^2], using the
/// COFFE-style width-to-area model.
double path_area_um2(const PathSpec& spec);

}  // namespace taf::coffe

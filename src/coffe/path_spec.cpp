#include "coffe/path_spec.hpp"

#include <cassert>

namespace taf::coffe {

namespace {

Stage inv(double w, tech::Flavor f = tech::Flavor::HP, double fixed_ff = 0.0,
          bool sizable = true) {
  Stage s;
  s.kind = StageKind::Inverter;
  s.flavor = f;
  s.w_um = w;
  s.fixed_load_ff = fixed_ff;
  s.sizable = sizable;
  return s;
}

Stage pass(double w, int off_siblings, bool keeper = false,
           tech::Flavor f = tech::Flavor::PassGate) {
  Stage s;
  s.kind = StageKind::PassGate;
  s.flavor = f;
  s.w_um = w;
  s.off_siblings = off_siblings;
  s.has_keeper = keeper;
  return s;
}

Stage wire(double len_um, double fixed_ff = 0.0) {
  Stage s;
  s.kind = StageKind::Wire;
  s.wire_len_um = len_um;
  s.fixed_load_ff = fixed_ff;
  s.sizable = false;
  return s;
}

}  // namespace

int PathSpec::num_inverters() const {
  int n = 0;
  for (const Stage& s : stages)
    if (s.kind == StageKind::Inverter) ++n;
  return n;
}

PathSpec sb_mux_spec(const arch::ArchParams& a) {
  PathSpec p;
  p.name = "SBmux";
  p.kind = ResourceKind::SbMux;
  p.vdd = a.vdd;
  // Two-level 12:1 mux (4 x 3 decomposition) followed by a two-stage
  // driver onto a length-4 routing wire that also loads downstream mux
  // junctions. The input driver models the upstream routing buffer.
  p.stages = {
      inv(2.0, tech::Flavor::HP, 0.0, false),  // upstream driver (fixed)
      pass(1.2, 3),                              // level 1 of 4
      pass(1.2, 2, /*keeper=*/true),             // level 2 of 3
      inv(1.5),                                // driver stage 1
      inv(5.0),                                // driver stage 2
      wire(a.wire_segment_length * a.tile_edge_um, 38.0),  // span + fanout loads
  };
  p.sram_bits = 7;  // 4 + 3 one-hot select bits
  // Remaining 11 off branches (level 1) and 2 off level-2 branches leak.
  p.off_width_pg_um = (a.sb_mux_size - 1) * 1.2 + 2 * 1.2;
  p.off_width_hp_um = 4.0;
  p.extra_dyn_cap_ff = 90.0;  // the rest of the switched routing wire load
  return p;
}

PathSpec cb_mux_spec(const arch::ArchParams& a) {
  PathSpec p;
  p.name = "CBmux";
  p.kind = ResourceKind::CbMux;
  p.vdd = a.vdd;
  // 64:1 two-level (16 x 4) connection-block mux driving the cluster input.
  p.stages = {
      inv(2.0, tech::Flavor::HP, 0.0, false),
      pass(1.0, 15),
      pass(1.0, 3, /*keeper=*/true),
      inv(1.5),
      inv(4.0),
      wire(0.35 * a.tile_edge_um, 16.0),  // to the local crossbar inputs
  };
  p.sram_bits = 16;
  p.off_width_pg_um = (a.cb_mux_size - 1) * 0.25 + 3 * 1.0;  // encoded off branches
  p.off_width_hp_um = 3.0;
  p.extra_dyn_cap_ff = 4.0;
  return p;
}

PathSpec local_mux_spec(const arch::ArchParams& a) {
  PathSpec p;
  p.name = "localmux";
  p.kind = ResourceKind::LocalMux;
  p.vdd = a.vdd;
  // 25:1 (5 x 5) crossbar mux feeding one LUT input pin.
  p.stages = {
      inv(1.5, tech::Flavor::HP, 0.0, false),
      pass(1.0, 4),
      pass(1.0, 4, /*keeper=*/true),
      inv(2.0, tech::Flavor::HP, 5.0),
  };
  p.sram_bits = 10;
  p.off_width_pg_um = (a.local_mux_size - 1) * 0.30;
  p.off_width_hp_um = 1.5;
  p.extra_dyn_cap_ff = 2.0;
  return p;
}

PathSpec feedback_mux_spec(const arch::ArchParams& a) {
  PathSpec p;
  p.name = "feedbackmux";
  p.kind = ResourceKind::FeedbackMux;
  p.vdd = a.vdd;
  p.stages = {
      inv(1.5, tech::Flavor::HP, 0.0, false),
      pass(1.0, 4),
      pass(1.0, 4, /*keeper=*/true),
      inv(1.2),
      inv(3.0, tech::Flavor::HP, 9.0),
  };
  p.sram_bits = 10;
  p.off_width_pg_um = 9.0 * 0.30;
  p.off_width_hp_um = 1.5;
  p.extra_dyn_cap_ff = 2.0;
  return p;
}

PathSpec output_mux_spec(const arch::ArchParams& a) {
  PathSpec p;
  p.name = "outputmux";
  p.kind = ResourceKind::OutputMux;
  p.vdd = a.vdd;
  // 2:1 BLE output selector (LUT vs FF) with a small driver.
  p.stages = {
      inv(2.0, tech::Flavor::HP, 0.0, false),
      pass(1.5, 1, /*keeper=*/true),
      inv(2.0, tech::Flavor::HP, 5.0),
  };
  p.sram_bits = 2;
  p.off_width_pg_um = 1.5;
  p.off_width_hp_um = 1.0;
  p.extra_dyn_cap_ff = 1.0;
  return p;
}

PathSpec lut_spec(const arch::ArchParams& a) {
  PathSpec p;
  p.name = "LUT";
  p.kind = ResourceKind::Lut;
  p.vdd = a.vdd;
  assert(a.lut_k == 6 && "spec models a 6-LUT (3+3 levels with mid buffer)");
  // 6-level pass-transistor tree with an internal level-restoring buffer
  // after level 3 (COFFE's 6-LUT structure) and a two-stage output buffer.
  p.stages = {
      inv(2.0, tech::Flavor::HP, 0.0, false),  // input driver (LUTA)
      pass(1.3, 1),
      pass(1.3, 1),
      pass(1.3, 1, /*keeper=*/true),
      inv(1.2),  // internal buffer
      inv(2.5),
      pass(1.3, 1),
      pass(1.3, 1),
      pass(1.3, 1, /*keeper=*/true),
      inv(1.5),  // output buffer
      inv(4.0, tech::Flavor::HP, 8.0),
  };
  p.sram_bits = 1 << a.lut_k;
  p.off_width_pg_um = 62.0 * 0.4;  // unused tree devices (64-leaf tree)
  p.off_width_hp_um = 3.0;
  p.extra_dyn_cap_ff = 6.0;
  return p;
}

PathSpec dsp_spec(const arch::ArchParams& a) {
  PathSpec p;
  p.name = "DSP";
  p.kind = ResourceKind::Dsp;
  p.vdd = a.vdd;
  p.discrete_sizes = true;
  // Standard-cell critical path of a Stratix-like 27x27 MAC: partial
  // product generation, a compressor tree and the final carry chain —
  // ~16 equivalent gate stages with local wiring between cells.
  p.stages.push_back(inv(2.0, tech::Flavor::StdCell, 0.0, false));
  for (int i = 0; i < 15; ++i) {
    Stage s = inv(i % 2 == 0 ? 1.0 : 2.0, tech::Flavor::StdCell, 6.0);
    s.min_w = 0.5;
    s.max_w = 16.0;
    p.stages.push_back(s);
    p.stages.push_back(wire(8.0));
  }
  p.sram_bits = 0;
  p.off_width_hp_um = 0.0;
  p.off_width_pg_um = 0.0;
  p.extra_dyn_cap_ff = 500.0;  // the full MAC datapath switches, not just the CP
  return p;
}

PathSpec spec_for(ResourceKind k, const arch::ArchParams& a) {
  switch (k) {
    case ResourceKind::SbMux: return sb_mux_spec(a);
    case ResourceKind::CbMux: return cb_mux_spec(a);
    case ResourceKind::LocalMux: return local_mux_spec(a);
    case ResourceKind::FeedbackMux: return feedback_mux_spec(a);
    case ResourceKind::OutputMux: return output_mux_spec(a);
    case ResourceKind::Lut: return lut_spec(a);
    case ResourceKind::Dsp: return dsp_spec(a);
    case ResourceKind::Bram: break;  // BRAM uses the dedicated read-path model
  }
  assert(false && "no PathSpec for this resource kind");
  return PathSpec{};
}

double path_area_um2(const PathSpec& spec) {
  // COFFE-style width-to-area model: diffusion + poly pitch grows
  // sub-linearly at small widths, linearly at large widths.
  constexpr double kSramBitArea = 0.55;  // um^2 per configuration bit
  auto device_area = [](double w) { return 0.15 + 0.45 * w; };
  double area = 0.0;
  for (const Stage& s : spec.stages) {
    switch (s.kind) {
      case StageKind::Inverter:
        area += device_area(s.w_um) + device_area(2.0 * s.w_um);  // N + P
        break;
      case StageKind::PassGate:
        area += device_area(s.w_um) * (1 + s.off_siblings);  // path + siblings
        break;
      case StageKind::Wire:
        break;  // wires live in the metal stack
    }
  }
  for (const Stage& s : spec.stages) {
    if (s.has_keeper) area += device_area(spec.keeper_w) + device_area(0.4);
  }
  area += spec.sram_bits * kSramBitArea;
  return area;
}

}  // namespace taf::coffe

#include "coffe/device_model.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "coffe/path_eval.hpp"
#include "coffe/sizing.hpp"
#include "util/log.hpp"

namespace taf::coffe {

namespace {

/// Corner-mismatch envelope. COFFE's real design space includes buffer
/// topology and per-stage Vth selection, which shift with the target
/// temperature; our continuous width sizing resolves only part of that
/// (the keeper mechanism in path_eval). The remainder is modelled as a
/// saturating penalty in |T_run - T_opt|, calibrated against Fig. 2/3:
/// soft fabric ~4.5% across the full range (paper: 6.3-9.0% for the CP),
/// DSP "similar trend with less intensity". Being symmetric around the
/// design corner, the term leaves the D25 Table II slopes essentially
/// untouched. BRAM is excluded: its sense-margin model captures the
/// (much larger) corner dependence physically.
double corner_mismatch(ResourceKind k, double t_run_c, double t_opt_c) {
  double scale = 0.0;
  if (k == ResourceKind::Dsp) {
    scale = 0.055;
  } else if (k != ResourceKind::Bram) {
    scale = 0.050;
  }
  const double dt = std::fabs(t_run_c - t_opt_c);
  return 1.0 + scale * (1.0 - std::exp(-dt / 45.0));
}

/// Paper Table II targets at the 25C reference device.
struct Table2Row {
  double area_um2;
  double delay_intercept_ps;
  double delay_slope_ps;
  double pdyn_uw;
  double lkg_scale_uw;
  double lkg_rate;
};

Table2Row table2_row(ResourceKind k) {
  switch (k) {
    case ResourceKind::SbMux: return {2.8, 166.0, 0.67, 5.74, 0.28, 0.014};
    case ResourceKind::CbMux: return {5.7, 112.0, 0.70, 0.64, 0.26, 0.014};
    case ResourceKind::LocalMux: return {1.2, 65.0, 0.35, 0.15, 0.06, 0.015};
    case ResourceKind::FeedbackMux: return {0.9, 100.0, 0.54, 0.63, 0.23, 0.014};
    case ResourceKind::OutputMux: return {0.6, 31.0, 0.17, 0.30, 0.24, 0.014};
    case ResourceKind::Lut: return {33.0, 163.0, 1.40, 1.60, 2.50, 0.015};
    // BRAM leakage in the paper is the quadratic 6.2 + (T/70)^2; the
    // exponential below matches it at 25C with the same 0..100C growth.
    case ResourceKind::Bram: return {7811.0, 902.0, 6.74, 6.85, 6.33, 0.0036};
    case ResourceKind::Dsp: return {5338.0, 547.0, 4.42, 879.0, 24.4, 0.010};
  }
  return {};
}

double table2_delay_at(ResourceKind k, double temp_c) {
  const Table2Row r = table2_row(k);
  return r.delay_intercept_ps + r.delay_slope_ps * temp_c;
}

}  // namespace

units::Picoseconds DeviceModel::rep_cp_delay(units::Celsius temp) const {
  double d = 0.0;
  for (ResourceKind k : soft_resource_kinds()) d += cp_weight(k) * delay(k, temp).value();
  return units::Picoseconds{d};
}

units::Picoseconds DeviceModel::expected_cp_delay(units::Celsius t_min,
                                                  units::Celsius t_max) const {
  assert(t_max > t_min);
  const double t_min_c = t_min.value();
  const double t_max_c = t_max.value();
  // The per-resource delay fits are linear in T, so the expectation over a
  // uniform temperature distribution is the delay at the midpoint; the
  // explicit integral is kept for clarity and for non-linear future fits.
  const int n = 50;
  std::vector<double> xs, ys;
  xs.reserve(n + 1);
  ys.reserve(n + 1);
  for (int i = 0; i <= n; ++i) {
    const double t = t_min_c + (t_max_c - t_min_c) * i / n;
    xs.push_back(t);
    ys.push_back(rep_cp_delay(units::Celsius{t}).value());
  }
  return units::Picoseconds{util::integrate_trapezoid(xs, ys) / (t_max_c - t_min_c)};
}

DeviceModel Characterizer::paper_table2_reference() {
  DeviceModel d;
  d.name = "paper-D25";
  d.t_opt_c = units::Celsius{25.0};
  for (ResourceKind k : all_resource_kinds()) {
    const Table2Row r = table2_row(k);
    ResourceChar& rc = d.res[static_cast<std::size_t>(k)];
    rc.area_um2 = r.area_um2;
    rc.delay_ps.intercept = r.delay_intercept_ps;
    rc.delay_ps.slope = r.delay_slope_ps;
    rc.delay_ps.r2 = 1.0;
    rc.pdyn_uw_100mhz = r.pdyn_uw;
    rc.plkg_uw.scale = r.lkg_scale_uw * std::exp(-r.lkg_rate * 0.0);
    rc.plkg_uw.rate = r.lkg_rate;
    rc.plkg_uw.r2 = 1.0;
  }
  return d;
}

double Characterizer::raw_delay(const PathSpec& spec, double temp_c, bool spice) const {
  const units::Celsius t{temp_c};
  return spice ? spice_delay_ps(spec, tech_, t) : elmore_delay_ps(spec, tech_, t);
}

Characterizer::Characterizer(tech::Technology technology, arch::ArchParams arch,
                             CharacterizeOptions options)
    : tech_(std::move(technology)), arch_(arch), opt_(options) {
  // Build the 25C reference sizing and derive calibration scales that map
  // our raw physical models onto the paper's Table II magnitudes at 25C.
  SizingOptions sopt;
  sopt.t_opt_c = units::Celsius{25.0};
  for (ResourceKind k : all_resource_kinds()) {
    Scales& s = scales_[static_cast<std::size_t>(k)];
    const Table2Row target = table2_row(k);
    if (k == ResourceKind::Bram) {
      const BramDesign d = size_bram(tech_, arch_, units::Celsius{25.0});
      const double raw_d = bram_delay_ps(d, tech_, arch_, units::Celsius{25.0});
      s.delay_elmore = table2_delay_at(k, 25.0) / raw_d;
      s.delay_spice = s.delay_elmore;  // BRAM always uses the analytic model
      s.area = target.area_um2 / bram_area_um2(d, arch_);
      const double c_ff = bram_switched_cap_ff(d, tech_, arch_);
      const double raw_pdyn = 0.5 * c_ff * arch_.vdd_low_power * arch_.vdd_low_power *
                              100.0 * 1e-3;
      s.pdyn = target.pdyn_uw / raw_pdyn;
      s.plkg = target.lkg_scale_uw * std::exp(target.lkg_rate * 25.0) /
               bram_leakage_uw(d, tech_, arch_, units::Celsius{25.0});
      continue;
    }
    const PathSpec base = spec_for(k, arch_);
    const SizingResult sized = size_path(base, tech_, sopt);
    s.delay_elmore = table2_delay_at(k, 25.0) / raw_delay(sized.spec, 25.0, false);
    s.delay_spice = table2_delay_at(k, 25.0) / raw_delay(sized.spec, 25.0, true);
    s.area = target.area_um2 / path_area_um2(sized.spec);
    s.pdyn = target.pdyn_uw / dynamic_power_uw(sized.spec, tech_, 100.0, 1.0);
    s.plkg = target.lkg_scale_uw * std::exp(target.lkg_rate * 25.0) /
             leakage_uw(sized.spec, tech_, units::Celsius{25.0});
    util::log_debug("calibrated %s: delay x%.3f (spice x%.3f) area x%.3f",
                    resource_name(k), s.delay_elmore, s.delay_spice, s.area);
  }
}

DeviceModel Characterizer::characterize(units::Celsius t_opt) const {
  const double t_opt_c = t_opt.value();
  DeviceModel dev;
  dev.t_opt_c = t_opt;
  dev.arch = arch_;
  dev.name = "D" + std::to_string(static_cast<int>(std::lround(t_opt_c)));

  std::vector<double> temps;
  for (double t = opt_.t_min_c.value(); t <= opt_.t_max_c.value() + 1e-9;
       t += opt_.t_step_c.value())
    temps.push_back(t);
  assert(temps.size() >= 2);

  SizingOptions sopt;
  sopt.t_opt_c = t_opt;

  for (ResourceKind k : all_resource_kinds()) {
    const Scales& s = scales_[static_cast<std::size_t>(k)];
    ResourceChar& rc = dev.res[static_cast<std::size_t>(k)];
    std::vector<double> delays(temps.size());
    std::vector<double> leaks(temps.size());

    if (k == ResourceKind::Bram) {
      const BramDesign d = size_bram(tech_, arch_, t_opt);
      for (std::size_t i = 0; i < temps.size(); ++i) {
        delays[i] = s.delay_elmore * bram_delay_ps(d, tech_, arch_, units::Celsius{temps[i]});
        leaks[i] = s.plkg * bram_leakage_uw(d, tech_, arch_, units::Celsius{temps[i]});
      }
      rc.area_um2 = s.area * bram_area_um2(d, arch_);
      const double c_ff = bram_switched_cap_ff(d, tech_, arch_);
      rc.pdyn_uw_100mhz =
          s.pdyn * 0.5 * c_ff * arch_.vdd_low_power * arch_.vdd_low_power * 100.0 * 1e-3;
    } else {
      const SizingResult sized = size_path(spec_for(k, arch_), tech_, sopt);
      const bool spice = opt_.use_spice;
      const double scale = spice ? s.delay_spice : s.delay_elmore;
      for (std::size_t i = 0; i < temps.size(); ++i) {
        delays[i] = scale * raw_delay(sized.spec, temps[i], spice) *
                    corner_mismatch(k, temps[i], t_opt_c);
        leaks[i] = s.plkg * leakage_uw(sized.spec, tech_, units::Celsius{temps[i]});
      }
      rc.area_um2 = s.area * path_area_um2(sized.spec);
      rc.pdyn_uw_100mhz = s.pdyn * dynamic_power_uw(sized.spec, tech_, 100.0, 1.0);
    }
    rc.delay_ps = util::fit_linear(temps, delays);
    rc.plkg_uw = util::fit_exponential(temps, leaks);
  }
  return dev;
}

}  // namespace taf::coffe

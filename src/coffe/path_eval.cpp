#include "coffe/path_eval.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "spice/circuit.hpp"
#include "spice/solver.hpp"

namespace taf::coffe {

namespace {

constexpr double kLn2 = 0.6931471805599453;
/// Pass transistors passing a rising edge conduct with reduced overdrive;
/// COFFE models this as an increased effective resistance.
constexpr double kPassGatePenalty = 1.5;

// Level-restoring keeper model (see PathSpec::keeper_w). The keeper PMOS
// fights every falling transition of the restored node, and must hold the
// degraded pass-gate "1" against the leakage of the off branches: if the
// actual leakage approaches its holding strength the node droops and the
// downstream stage switches late. Both effects scale the delay of the
// pass segment the keeper guards.
constexpr double kKeeperFight = 0.50;  ///< fraction of keeper Ion opposing the edge
constexpr double kKeeperHold = 0.0012; ///< fraction of keeper Ion holding the node
constexpr double kDroopSlowdown = 0.75;///< delay multiplier per unit droop ratio
constexpr double kDroopMax = 1.6;      ///< saturation of the droop slowdown

/// Delay multiplier applied to a keeper-guarded pass segment. The leakage
/// pulling on the restored node comes from the off siblings directly
/// attached to it (the final mux level), evaluated at the *operating*
/// temperature; the keeper was sized for the design corner.
double keeper_penalty(const PathSpec& spec, const Stage& keeper_stage,
                      const tech::Technology& tech, double temp_c, double i_pass_ma) {
  const auto& hp = tech.flavor(tech::Flavor::HP);
  const double i_keep_ma = tech::on_current_ma(hp, spec.keeper_w, spec.vdd, temp_c);
  const double fight = kKeeperFight * i_keep_ma / i_pass_ma;
  const double off_width_um = keeper_stage.off_siblings * keeper_stage.w_um;
  const double leak_na = tech::off_current_na(tech.flavor(tech::Flavor::PassGate),
                                              off_width_um, temp_c);
  const double hold_na = kKeeperHold * i_keep_ma * 1e6;
  // Saturating droop: level restoration bounds how late the downstream
  // stage can fire even with a badly undersized keeper.
  const double droop_raw = kDroopSlowdown * leak_na / std::max(hold_na, 1.0);
  const double droop = kDroopMax * (1.0 - std::exp(-droop_raw / kDroopMax));
  return (1.0 + fight) * (1.0 + droop);
}

double inv_input_cap_ff(const tech::Technology& tech, const Stage& s) {
  // NMOS width w, PMOS width 2w.
  return tech.flavor(s.flavor).c_gate * 3.0 * s.w_um;
}

double inv_output_cap_ff(const tech::Technology& tech, const Stage& s) {
  return tech.flavor(s.flavor).c_drain * 3.0 * s.w_um;
}

}  // namespace

double elmore_delay_ps(const PathSpec& spec, const tech::Technology& tech,
                       units::Celsius temp) {
  const double temp_c = temp.value();
  assert(!spec.stages.empty() && spec.stages.front().kind == StageKind::Inverter);
  double total_ps = 0.0;      // completed (buffered) segments
  double segment_ps = 0.0;    // Elmore of the segment under construction
  double segment_mult = 1.0;  // keeper penalty accumulated for this segment
  double r_acc_kohm = 0.0;    // accumulated series resistance since last buffer

  auto add_node = [&](double cap_ff) { segment_ps += kLn2 * r_acc_kohm * cap_ff; };
  auto close_segment = [&]() {
    total_ps += segment_ps * segment_mult;
    segment_ps = 0.0;
    segment_mult = 1.0;
  };

  for (std::size_t i = 0; i < spec.stages.size(); ++i) {
    const Stage& s = spec.stages[i];
    switch (s.kind) {
      case StageKind::Inverter: {
        // The inverter's gate cap loads the previous segment...
        add_node(inv_input_cap_ff(tech, s));
        close_segment();
        // ...then it starts a new segment with its own drive resistance
        // and self-loading junction cap.
        r_acc_kohm = tech::effective_resistance_kohm(tech.flavor(s.flavor), s.w_um,
                                                     spec.vdd, temp_c);
        add_node(inv_output_cap_ff(tech, s));
        break;
      }
      case StageKind::PassGate: {
        // Junction caps of this device and its off siblings load the
        // input node; the device then adds series resistance; its output
        // junction loads the far node (plus the keeper's, if present).
        const double cj = tech.flavor(s.flavor).c_drain * s.w_um;
        add_node(cj * (1 + s.off_siblings));
        r_acc_kohm += kPassGatePenalty *
                      tech::effective_resistance_kohm(tech.flavor(s.flavor), s.w_um,
                                                      spec.vdd, temp_c);
        add_node(cj);
        if (s.has_keeper) {
          // Keeper junction cap plus the level-restoring inverter's gate
          // cap load the restored node; both scale with the keeper size,
          // which is how an oversized hot-corner keeper taxes a device
          // running cold.
          const auto& hp = tech.flavor(tech::Flavor::HP);
          add_node((3.0 * hp.c_drain + 3.0 * hp.c_gate) * spec.keeper_w);
          const double i_pass_ma = tech::on_current_ma(tech.flavor(s.flavor), s.w_um,
                                                       spec.vdd, temp_c) /
                                   kPassGatePenalty;
          segment_mult *= keeper_penalty(spec, s, tech, temp_c, i_pass_ma);
        }
        break;
      }
      case StageKind::Wire: {
        // Pi model: half the cap before the resistance, half after.
        const double c_half = 0.5 * tech::wire_capacitance_ff(tech, s.wire_len_um);
        add_node(c_half);
        r_acc_kohm += 1e-3 * tech::wire_resistance_ohm(tech, s.wire_len_um, temp_c);
        add_node(c_half);
        break;
      }
    }
    if (s.fixed_load_ff > 0.0) add_node(s.fixed_load_ff);
  }
  close_segment();
  return total_ps;
}

PathCircuitProbe build_path_circuit(const PathSpec& spec, const tech::Technology& tech,
                                    units::Celsius temp) {
  const double temp_c = temp.value();
  assert(!spec.stages.empty() && spec.stages.front().kind == StageKind::Inverter);
  PathCircuitProbe probe;
  spice::Circuit& c = probe.circuit;
  const spice::NodeId vdd = c.add_node("vdd");
  c.drive(vdd, spice::dc_waveform(spec.vdd));
  const spice::NodeId in = c.add_node("in");

  spice::NodeId cur = in;  // signal node at the current chain position
  for (std::size_t i = 0; i < spec.stages.size(); ++i) {
    const Stage& s = spec.stages[i];
    switch (s.kind) {
      case StageKind::Inverter: {
        const spice::NodeId out = c.add_node("inv" + std::to_string(i));
        c.add_mosfet(spice::MosType::Nmos, s.flavor, out, cur, spice::kGround, s.w_um);
        c.add_mosfet(spice::MosType::Pmos, s.flavor, out, cur, vdd, 2.0 * s.w_um);
        cur = out;
        break;
      }
      case StageKind::PassGate: {
        const spice::NodeId out = c.add_node("pg" + std::to_string(i));
        c.add_mosfet(spice::MosType::Nmos, s.flavor, out, vdd, cur, s.w_um);
        if (s.off_siblings > 0) {
          // Off siblings: junction capacitance on the input node.
          const double cj = tech.flavor(s.flavor).c_drain * s.w_um;
          c.add_capacitor(cur, spice::kGround, cj * s.off_siblings);
        }
        cur = out;
        break;
      }
      case StageKind::Wire: {
        // 3-section pi ladder.
        const double r_kohm =
            1e-3 * tech::wire_resistance_ohm(tech, s.wire_len_um, temp_c) / 3.0;
        const double c_ff = tech::wire_capacitance_ff(tech, s.wire_len_um) / 3.0;
        for (int seg = 0; seg < 3; ++seg) {
          const spice::NodeId nxt =
              c.add_node("w" + std::to_string(i) + "_" + std::to_string(seg));
          c.add_capacitor(cur, spice::kGround, 0.5 * c_ff);
          c.add_resistor(cur, nxt, std::max(r_kohm, 1e-6));
          c.add_capacitor(nxt, spice::kGround, 0.5 * c_ff);
          cur = nxt;
        }
        break;
      }
    }
    if (s.fixed_load_ff > 0.0) c.add_capacitor(cur, spice::kGround, s.fixed_load_ff);
  }

  // Rising input step after the circuit settles.
  const double t_edge = 100.0;
  c.drive(in, spice::step_waveform(0.0, spec.vdd, t_edge, 5.0));

  probe.in = in;
  probe.out = cur;
  probe.out_rising = spec.output_same_polarity();
  probe.t_edge_ps = t_edge;
  // Generous horizon: pass-gate heavy paths at 100C can be several ns.
  probe.t_stop_ps = 12000.0;
  probe.dt_ps = 2.0;
  return probe;
}

double spice_delay_ps(const PathSpec& spec, const tech::Technology& tech,
                      units::Celsius temp) {
  const PathCircuitProbe probe = build_path_circuit(spec, tech, temp);

  spice::SolverOptions opt;
  opt.temp_c = temp;
  opt.dt_ps = probe.dt_ps;
  const auto result = spice::solve_transient(probe.circuit, tech, opt, probe.t_stop_ps);

  const double d =
      spice::propagation_delay_ps(result, probe.in, probe.out, spec.vdd,
                                  /*in_rising=*/true, probe.out_rising, probe.t_edge_ps);
  if (d <= 0.0) {
    throw std::runtime_error("spice_delay_ps: output of '" + spec.name +
                             "' did not switch");
  }
  return d;
}

double switched_cap_ff(const PathSpec& spec, const tech::Technology& tech) {
  double c = spec.extra_dyn_cap_ff;
  for (const Stage& s : spec.stages) {
    switch (s.kind) {
      case StageKind::Inverter:
        c += inv_input_cap_ff(tech, s) + inv_output_cap_ff(tech, s);
        break;
      case StageKind::PassGate:
        c += tech.flavor(s.flavor).c_drain * s.w_um * (2 + s.off_siblings);
        break;
      case StageKind::Wire:
        c += tech::wire_capacitance_ff(tech, s.wire_len_um);
        break;
    }
    c += s.fixed_load_ff;
  }
  return c;
}

double leakage_uw(const PathSpec& spec, const tech::Technology& tech,
                  units::Celsius temp) {
  const double temp_c = temp.value();
  // In an inverter one of the two devices is off; pass gates leak through
  // the off siblings; SRAM cells leak constantly.
  double i_na = 0.0;
  for (const Stage& s : spec.stages) {
    const auto& p = tech.flavor(s.flavor);
    switch (s.kind) {
      case StageKind::Inverter:
        // Average of NMOS-off and PMOS-off states.
        i_na += 0.5 * (tech::off_current_na(p, s.w_um, temp_c) +
                       tech::off_current_na(p, 2.0 * s.w_um, temp_c));
        break;
      case StageKind::PassGate:
        i_na += tech::off_current_na(p, s.w_um * s.off_siblings, temp_c);
        break;
      case StageKind::Wire:
        break;
    }
  }
  i_na += tech::off_current_na(tech.flavor(tech::Flavor::HP), spec.off_width_hp_um, temp_c);
  i_na += tech::off_current_na(tech.flavor(tech::Flavor::PassGate), spec.off_width_pg_um,
                               temp_c);
  // SRAM cell leakage: two cross-coupled inverters of minimum LP devices.
  i_na += spec.sram_bits *
          tech::off_current_na(tech.flavor(tech::Flavor::LP), 2.0 * 0.4, temp_c);
  // P = V * I : [V] * [nA] = 1e-3 uW
  return spec.vdd * i_na * 1e-3;
}

double dynamic_power_uw(const PathSpec& spec, const tech::Technology& tech, double f_mhz,
                        double activity) {
  const double c_ff = switched_cap_ff(spec, tech);
  // 0.5 * alpha * C * V^2 * f : fF * V^2 * MHz = 1e-15 * 1e6 W = 1e-3 uW
  return 0.5 * activity * c_ff * spec.vdd * spec.vdd * f_mhz * 1e-3;
}

}  // namespace taf::coffe

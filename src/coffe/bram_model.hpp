#pragma once
// BRAM read-path model with Monte-Carlo weakest-cell leakage.
//
// The paper sizes the BRAM with COFFE's memory flow, which requires the
// leakage current of the weakest SRAM cell at the target temperature
// (obtained by Monte-Carlo over Vth variation, per Yazdanshenas FPGA'17).
// We reproduce the same structure: the sense margin — and therefore the
// bitline swing the read must develop — is set by the worst-case cell
// leakage at the *design* temperature, which is why a 100C-optimized BRAM
// differs from a 0C-optimized one far more than the soft fabric does
// (Fig. 2: up to 1.35x).

#include "arch/arch_params.hpp"
#include "tech/technology.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace taf::coffe {

/// Sizable parameters of the BRAM read path (LP transistors at Vdd_lp).
struct BramDesign {
  double predec_w = 2.0;    ///< row pre-decoder buffer width [um]
  double wldrv_w = 6.0;     ///< wordline driver width [um]
  double cell_w = 0.6;      ///< cell access/pull-down width [um]
  double sense_w = 2.0;     ///< sense buffer width [um]
  double out_w = 3.0;       ///< output driver width [um]
  /// Design-time bitline swing requirement [V]; fixed when the device is
  /// synthesized for its target corner (see size_bram).
  double swing_v = 0.12;
  /// Keeper width chosen to fight the design-corner bitline leakage [um].
  double keeper_w = 0.5;
};

/// Monte-Carlo estimate of the weakest (leakiest) SRAM cell's off current
/// among the cells sharing one bitline, at `temp_c` [nA]. Vth varies
/// N(vth0, sigma); the max leakage over `samples` draws is returned.
/// Deterministic for a given rng seed.
double weakest_cell_leakage_na(const tech::Technology& tech, const arch::ArchParams& a,
                               units::Celsius temp, util::Rng& rng, int samples = 2000);

/// Read-path delay of the design at operating temperature [ps]:
/// decode + wordline RC + bitline discharge (swing / cell current, fought
/// by keeper and actual leakage) + sense and output buffering.
double bram_delay_ps(const BramDesign& d, const tech::Technology& tech,
                     const arch::ArchParams& a, units::Celsius temp);

/// Area of the BRAM macro [um^2] (cell array dominated).
double bram_area_um2(const BramDesign& d, const arch::ArchParams& a);

/// Leakage power of the macro at temperature [uW].
double bram_leakage_uw(const BramDesign& d, const tech::Technology& tech,
                       const arch::ArchParams& a, units::Celsius temp);

/// Switched capacitance of one read access [fF].
double bram_switched_cap_ff(const BramDesign& d, const tech::Technology& tech,
                            const arch::ArchParams& a);

/// Size the BRAM for a target junction temperature: fixes the swing and
/// keeper from the design-corner weakest-cell leakage, then coordinate-
/// descends the buffer/cell widths on an area-delay objective at t_opt_c.
BramDesign size_bram(const tech::Technology& tech, const arch::ArchParams& a,
                     units::Celsius t_opt, unsigned rng_seed = 17);

}  // namespace taf::coffe

#pragma once
// FPGA resource kinds characterized by the COFFE-like flow.
// One row of the paper's Table II per kind.

#include <array>

namespace taf::coffe {

enum class ResourceKind : int {
  SbMux = 0,     ///< switch-block routing mux + driver
  CbMux,         ///< connection-block input mux
  LocalMux,      ///< intra-cluster crossbar mux
  FeedbackMux,   ///< cluster feedback mux
  OutputMux,     ///< BLE output mux
  Lut,           ///< K-input LUT (pass-transistor tree) incl. input driver
  Bram,          ///< block RAM read path
  Dsp,           ///< DSP block critical path (std-cell MAC)
};
inline constexpr int kNumResourceKinds = 8;

inline constexpr std::array<ResourceKind, kNumResourceKinds> all_resource_kinds() {
  return {ResourceKind::SbMux,     ResourceKind::CbMux,   ResourceKind::LocalMux,
          ResourceKind::FeedbackMux, ResourceKind::OutputMux, ResourceKind::Lut,
          ResourceKind::Bram,      ResourceKind::Dsp};
}

/// Soft-fabric kinds (the configurable resources forming the representative
/// critical path of Fig. 1).
inline constexpr std::array<ResourceKind, 6> soft_resource_kinds() {
  return {ResourceKind::SbMux,       ResourceKind::CbMux,     ResourceKind::LocalMux,
          ResourceKind::FeedbackMux, ResourceKind::OutputMux, ResourceKind::Lut};
}

const char* resource_name(ResourceKind k);

/// Occurrence weight of each soft resource on a representative critical
/// path (per the COFFE paper's composition; used for Fig. 1's "CP" curve).
double cp_weight(ResourceKind k);

}  // namespace taf::coffe

#pragma once
// Characterized FPGA device model — the library's central artifact.
//
// A DeviceModel is what the paper's "fabrication-stage characterization"
// produces: for every resource kind, the delay(T) linear fit, the
// leakage(T) exponential fit, the dynamic energy, and the area (Table II).
// Devices are produced by the Characterizer for a chosen design corner
// (D0 / D25 / D70 / D100 in the paper's notation).

#include <array>
#include <string>

#include "arch/arch_params.hpp"
#include "coffe/bram_model.hpp"
#include "coffe/path_spec.hpp"
#include "coffe/resource.hpp"
#include "tech/technology.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace taf::coffe {

/// One row of Table II.
struct ResourceChar {
  double area_um2 = 0.0;
  util::LinearFit delay_ps;       ///< delay as a function of T [ps]
  double pdyn_uw_100mhz = 0.0;    ///< dynamic power at 100 MHz, alpha = 1 [uW]
  util::ExpFit plkg_uw;           ///< leakage power as a function of T [uW]
};

struct DeviceModel {
  std::string name;              ///< e.g. "D25"
  units::Celsius t_opt_c{25.0};  ///< corner the fabric was optimized for
  arch::ArchParams arch;
  std::array<ResourceChar, kNumResourceKinds> res;

  const ResourceChar& at(ResourceKind k) const {
    return res[static_cast<std::size_t>(k)];
  }
  units::Picoseconds delay(ResourceKind k, units::Celsius temp) const {
    return units::Picoseconds{at(k).delay_ps(temp.value())};
  }
  units::Microwatts leakage(ResourceKind k, units::Celsius temp) const {
    return units::Microwatts{at(k).plkg_uw(temp.value())};
  }
  units::Microwatts dyn_power(ResourceKind k, units::Megahertz f, double activity) const {
    return units::Microwatts{at(k).pdyn_uw_100mhz * (f.value() / 100.0) * activity};
  }

  /// Representative soft-fabric critical-path delay (Fig. 1 "CP"):
  /// occurrence-weighted average over the soft resources.
  units::Picoseconds rep_cp_delay(units::Celsius temp) const;

  /// Expected delay of the representative CP over a uniform temperature
  /// range [t_min, t_max] — Eq. (1) of the paper.
  units::Picoseconds expected_cp_delay(units::Celsius t_min, units::Celsius t_max) const;
};

struct CharacterizeOptions {
  units::Celsius t_min_c{0.0};
  units::Celsius t_max_c{100.0};
  units::Kelvin t_step_c{5.0};
  /// Use the SPICE transient evaluator for the temperature sweep of the
  /// soft-fabric paths (slower). The Elmore evaluator is always used for
  /// sizing; BRAM always uses its analytic read-path model.
  bool use_spice = false;
};

/// Fabrication-stage characterization flow. The constructor synthesizes
/// the reference 25C device and derives per-resource calibration scales
/// against the paper's Table II (documented in DESIGN.md section 5);
/// characterize() then produces a device for any design corner.
class Characterizer {
 public:
  Characterizer(tech::Technology technology, arch::ArchParams arch,
                CharacterizeOptions options = {});

  /// Size all resources for `t_opt` and sweep the temperature range.
  DeviceModel characterize(units::Celsius t_opt) const;

  /// The paper's Table II reference values (targets of the calibration).
  static DeviceModel paper_table2_reference();

  const tech::Technology& technology() const { return tech_; }
  const arch::ArchParams& arch() const { return arch_; }
  const CharacterizeOptions& options() const { return opt_; }

 private:
  struct Scales {
    double delay_elmore = 1.0;
    double delay_spice = 1.0;
    double area = 1.0;
    double pdyn = 1.0;
    double plkg = 1.0;
  };

  double raw_delay(const PathSpec& spec, double temp_c, bool spice) const;

  tech::Technology tech_;
  arch::ArchParams arch_;
  CharacterizeOptions opt_;
  std::array<Scales, kNumResourceKinds> scales_;
};

}  // namespace taf::coffe

#include "coffe/resource.hpp"

namespace taf::coffe {

const char* resource_name(ResourceKind k) {
  switch (k) {
    case ResourceKind::SbMux: return "SBmux";
    case ResourceKind::CbMux: return "CBmux";
    case ResourceKind::LocalMux: return "localmux";
    case ResourceKind::FeedbackMux: return "feedbackmux";
    case ResourceKind::OutputMux: return "outputmux";
    case ResourceKind::Lut: return "LUT";
    case ResourceKind::Bram: return "BRAM";
    case ResourceKind::Dsp: return "DSP";
  }
  return "?";
}

double cp_weight(ResourceKind k) {
  // A representative soft-fabric critical path crosses several switch
  // blocks per logic level, so routing muxes dominate the weighting.
  switch (k) {
    case ResourceKind::SbMux: return 0.42;
    case ResourceKind::CbMux: return 0.12;
    case ResourceKind::LocalMux: return 0.08;
    case ResourceKind::FeedbackMux: return 0.04;
    case ResourceKind::OutputMux: return 0.06;
    case ResourceKind::Lut: return 0.28;
    default: return 0.0;  // hard blocks are reported separately
  }
}

}  // namespace taf::coffe

#pragma once
// COFFE-style automated transistor sizing.
//
// For a target junction temperature, coordinate descent over the sizable
// stage widths minimizes an area-delay product evaluated with the Elmore
// model *at that temperature*. Because pass-gate resistance degrades
// faster with temperature than buffer resistance (and off-branch junction
// load grows with pass width), the optimum sizing shifts with the target
// corner — the mechanism behind the paper's Fig. 2/3.

#include "coffe/path_spec.hpp"
#include "tech/technology.hpp"
#include "util/units.hpp"

namespace taf::coffe {

struct SizingOptions {
  units::Celsius t_opt_c{25.0};  ///< design corner the device is optimized for
  double area_weight = 1.0; ///< cost = delay * area^area_weight
  int max_rounds = 40;
};

struct SizingResult {
  PathSpec spec;        ///< spec with optimized widths
  double delay_ps = 0;  ///< Elmore delay at the design corner
  double area_um2 = 0;
  int evaluations = 0;  ///< cost-function evaluations performed
};

/// Optimize the sizable widths of `spec` for the given corner.
SizingResult size_path(PathSpec spec, const tech::Technology& tech,
                       const SizingOptions& opt);

}  // namespace taf::coffe

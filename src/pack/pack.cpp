#include "pack/pack.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace taf::pack {

namespace {

using netlist::kNoNet;
using netlist::NetId;
using netlist::Netlist;
using netlist::PrimId;
using netlist::PrimKind;

/// Nets a BLE touches externally (LUT inputs + FF input if not the LUT's
/// own output + the BLE output net).
std::vector<NetId> ble_nets(const Netlist& nl, const Ble& ble) {
  std::vector<NetId> nets;
  if (ble.lut >= 0) {
    for (NetId in : nl.prim(ble.lut).inputs)
      if (in != kNoNet) nets.push_back(in);
    nets.push_back(nl.prim(ble.lut).output);
  }
  if (ble.ff >= 0) {
    for (NetId in : nl.prim(ble.ff).inputs)
      if (in != kNoNet) nets.push_back(in);
    nets.push_back(nl.prim(ble.ff).output);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

/// Input nets a BLE needs from outside itself (LUT inputs + lone-FF data).
std::vector<NetId> ble_input_nets(const Netlist& nl, const Ble& ble) {
  std::vector<NetId> ins;
  if (ble.lut >= 0) {
    for (NetId in : nl.prim(ble.lut).inputs)
      if (in != kNoNet) ins.push_back(in);
  } else if (ble.ff >= 0) {
    for (NetId in : nl.prim(ble.ff).inputs)
      if (in != kNoNet) ins.push_back(in);
  }
  return ins;
}

}  // namespace

int PackedNetlist::count(BlockKind k) const {
  int n = 0;
  for (const Block& b : blocks)
    if (b.kind == k) ++n;
  return n;
}

PackedNetlist pack(const Netlist& nl, const arch::ArchParams& arch,
                   const PackOptions& opt) {
  PackedNetlist result;
  result.source = &nl;
  result.block_of_prim.assign(nl.prims().size(), -1);

  // --- 1. Form BLEs: pair a FF with its driving LUT when the LUT output
  // feeds only that FF (the classic registered-BLE condition).
  std::vector<Ble> bles;
  std::vector<char> ff_used(nl.prims().size(), 0);
  for (PrimId id = 0; id < static_cast<PrimId>(nl.prims().size()); ++id) {
    const auto& p = nl.prim(id);
    if (p.kind != PrimKind::Lut) continue;
    Ble ble;
    ble.lut = id;
    const auto& sinks = nl.net(p.output).sinks;
    if (sinks.size() == 1) {
      const PrimId s = sinks[0].prim;
      if (nl.prim(s).kind == PrimKind::Ff) {
        ble.ff = s;
        ff_used[static_cast<std::size_t>(s)] = 1;
      }
    }
    bles.push_back(ble);
  }
  for (PrimId id = 0; id < static_cast<PrimId>(nl.prims().size()); ++id) {
    if (nl.prim(id).kind == PrimKind::Ff && !ff_used[static_cast<std::size_t>(id)]) {
      Ble ble;
      ble.ff = id;
      bles.push_back(ble);
    }
  }

  // --- 2. Cluster BLEs greedily by affinity (shared nets), respecting
  // the N and cluster-input limits.
  // net -> BLE indices touching it, to find affine candidates fast.
  // High-fanout nets (clocks, resets, broadcast control) are excluded from
  // affinity, as in AAPack: they connect everything to everything and
  // would make candidate scans quadratic without improving the packing.
  constexpr std::size_t kMaxAffinityFanout = 24;
  std::unordered_map<NetId, std::vector<int>> net_to_bles;
  for (int b = 0; b < static_cast<int>(bles.size()); ++b) {
    for (NetId n : ble_nets(nl, bles[static_cast<std::size_t>(b)])) {
      if (nl.net(n).sinks.size() > kMaxAffinityFanout) continue;
      net_to_bles[n].push_back(b);
    }
  }

  std::vector<char> clustered(bles.size(), 0);
  for (int seed = 0; seed < static_cast<int>(bles.size()); ++seed) {
    if (clustered[static_cast<std::size_t>(seed)]) continue;
    Block cluster;
    cluster.kind = BlockKind::Clb;
    std::unordered_set<NetId> cluster_nets;     // all nets touched
    std::unordered_set<NetId> cluster_outputs;  // nets driven inside
    std::unordered_set<NetId> cluster_inputs;   // external input nets

    auto add_ble = [&](int b) {
      const Ble& ble = bles[static_cast<std::size_t>(b)];
      cluster.bles.push_back(ble);
      clustered[static_cast<std::size_t>(b)] = 1;
      if (ble.lut >= 0) {
        cluster.prims.push_back(ble.lut);
        cluster_outputs.insert(nl.prim(ble.lut).output);
      }
      if (ble.ff >= 0) {
        cluster.prims.push_back(ble.ff);
        cluster_outputs.insert(nl.prim(ble.ff).output);
      }
      for (NetId n : ble_nets(nl, ble)) cluster_nets.insert(n);
      // Recompute external inputs: inputs not driven inside the cluster.
      cluster_inputs.clear();
      for (const Ble& cb : cluster.bles) {
        for (NetId in : ble_input_nets(nl, cb)) {
          if (!cluster_outputs.count(in)) cluster_inputs.insert(in);
        }
      }
    };

    add_ble(seed);
    while (static_cast<int>(cluster.bles.size()) < arch.cluster_n) {
      // Candidate with the most shared nets. Visit nets in sorted order so
      // affinity ties resolve to the same candidate regardless of the
      // unordered_set's hash-iteration order: the strict '>' keeps the
      // first-seen candidate, so net order decides ties.
      int best = -1;
      int best_affinity = -1;
      std::vector<NetId> nets_sorted(cluster_nets.begin(), cluster_nets.end());
      std::sort(nets_sorted.begin(), nets_sorted.end());
      for (NetId n : nets_sorted) {
        auto it = net_to_bles.find(n);
        if (it == net_to_bles.end()) continue;
        for (int cand : it->second) {
          if (clustered[static_cast<std::size_t>(cand)]) continue;
          int affinity = 0;
          for (NetId cn : ble_nets(nl, bles[static_cast<std::size_t>(cand)]))
            affinity += cluster_nets.count(cn) ? 1 : 0;
          if (affinity > best_affinity) {
            best_affinity = affinity;
            best = cand;
          }
        }
      }
      if (best < 0) break;

      // Input-limit feasibility check before committing.
      std::unordered_set<NetId> trial_inputs = cluster_inputs;
      for (NetId in : ble_input_nets(nl, bles[static_cast<std::size_t>(best)])) {
        if (!cluster_outputs.count(in)) trial_inputs.insert(in);
      }
      if (static_cast<int>(trial_inputs.size()) > opt.max_cluster_inputs) {
        // Mark as unusable for this cluster by removing from candidacy:
        // cheapest is to just stop growing; the seed loop will pick the
        // BLE up later as its own seed.
        break;
      }
      add_ble(best);
    }

    const int idx = static_cast<int>(result.blocks.size());
    for (PrimId p : cluster.prims) result.block_of_prim[static_cast<std::size_t>(p)] = idx;
    result.blocks.push_back(std::move(cluster));
  }

  // --- 3. Hard blocks and IOs become singleton blocks.
  for (PrimId id = 0; id < static_cast<PrimId>(nl.prims().size()); ++id) {
    const auto& p = nl.prim(id);
    BlockKind kind;
    switch (p.kind) {
      case PrimKind::Bram: kind = BlockKind::Bram; break;
      case PrimKind::Dsp: kind = BlockKind::Dsp; break;
      case PrimKind::Input:
      case PrimKind::Output: kind = BlockKind::Io; break;
      default: continue;
    }
    Block b;
    b.kind = kind;
    b.prims.push_back(id);
    result.block_of_prim[static_cast<std::size_t>(id)] = static_cast<int>(result.blocks.size());
    result.blocks.push_back(std::move(b));
  }

  // --- 4. Derive inter-block nets.
  for (NetId n = 0; n < static_cast<NetId>(nl.nets().size()); ++n) {
    const auto& net = nl.net(n);
    const int src = result.block_of_prim[static_cast<std::size_t>(net.driver)];
    assert(src >= 0);
    std::vector<int> sinks;
    for (const auto& s : net.sinks) {
      const int sb = result.block_of_prim[static_cast<std::size_t>(s.prim)];
      if (sb != src) sinks.push_back(sb);
    }
    std::sort(sinks.begin(), sinks.end());
    sinks.erase(std::unique(sinks.begin(), sinks.end()), sinks.end());
    if (!sinks.empty()) result.block_nets.push_back({n, src, std::move(sinks)});
  }

  return result;
}

void serialize(const PackedNetlist& packed, util::codec::Encoder& enc) {
  enc.u64(packed.blocks.size());
  for (const Block& b : packed.blocks) {
    enc.u8(static_cast<std::uint8_t>(b.kind));
    enc.u64(b.bles.size());
    for (const Ble& ble : b.bles) {
      enc.i32(ble.lut);
      enc.i32(ble.ff);
    }
    enc.i32_vec(b.prims);
  }
  enc.i32_vec(packed.block_of_prim);
  enc.u64(packed.block_nets.size());
  for (const BlockNet& n : packed.block_nets) {
    enc.i32(n.net);
    enc.i32(n.driver_block);
    enc.i32_vec(n.sink_blocks);
  }
}

PackedNetlist deserialize(util::codec::Decoder& dec) {
  PackedNetlist packed;
  const std::uint64_t num_blocks = dec.u64();
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    Block b;
    b.kind = static_cast<BlockKind>(dec.u8());
    const std::uint64_t num_bles = dec.u64();
    for (std::uint64_t j = 0; j < num_bles; ++j) {
      Ble ble;
      ble.lut = dec.i32();
      ble.ff = dec.i32();
      b.bles.push_back(ble);
    }
    b.prims = dec.i32_vec();
    packed.blocks.push_back(std::move(b));
  }
  packed.block_of_prim = dec.i32_vec();
  const std::uint64_t num_nets = dec.u64();
  for (std::uint64_t i = 0; i < num_nets; ++i) {
    BlockNet n;
    n.net = dec.i32();
    n.driver_block = dec.i32();
    n.sink_blocks = dec.i32_vec();
    packed.block_nets.push_back(std::move(n));
  }
  return packed;
}

}  // namespace taf::pack

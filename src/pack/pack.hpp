#pragma once
// AAPack-style greedy packing (the VPR pack stage).
//
// LUT/FF pairs are fused into BLEs (a FF whose data input is the LUT's
// otherwise-private output shares its BLE); BLEs are clustered into
// N=10 logic blocks by connection affinity under the cluster input
// limit. BRAM/DSP/IO primitives become their own blocks.

#include <vector>

#include "arch/arch_params.hpp"
#include "netlist/netlist.hpp"
#include "util/codec.hpp"

namespace taf::pack {

enum class BlockKind : std::uint8_t { Clb, Bram, Dsp, Io };

struct Ble {
  netlist::PrimId lut = -1;  ///< -1 for a lone-FF BLE
  netlist::PrimId ff = -1;   ///< -1 for an unregistered BLE
};

struct Block {
  BlockKind kind = BlockKind::Clb;
  std::vector<Ble> bles;                  ///< CLB contents (empty for hard blocks)
  std::vector<netlist::PrimId> prims;     ///< all primitives in this block
};

/// An inter-block net derived from a netlist net: connections internal to
/// a block are absorbed (they use the cluster-local crossbar, not the
/// global routing).
struct BlockNet {
  netlist::NetId net = 0;     ///< originating netlist net
  int driver_block = 0;
  std::vector<int> sink_blocks;  ///< unique, excludes driver-internal sinks
};

struct PackedNetlist {
  const netlist::Netlist* source = nullptr;
  std::vector<Block> blocks;
  std::vector<int> block_of_prim;  ///< PrimId -> block index
  std::vector<BlockNet> block_nets;

  int count(BlockKind k) const;
};

struct PackOptions {
  /// Maximum distinct external input nets per cluster (Table I: 40).
  int max_cluster_inputs = 40;
};

/// Pack the netlist for the given architecture.
PackedNetlist pack(const netlist::Netlist& nl, const arch::ArchParams& arch,
                   const PackOptions& opt = {});

/// Artifact codec (util/codec.hpp): exact round-trip, serialize ->
/// deserialize -> re-serialize is byte-identical. `source` is not
/// serialized; deserialize() leaves it null and the caller rebinds it to
/// the owning netlist.
void serialize(const PackedNetlist& packed, util::codec::Encoder& enc);
PackedNetlist deserialize(util::codec::Decoder& dec);

}  // namespace taf::pack

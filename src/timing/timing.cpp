#include "timing/timing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "util/log.hpp"

namespace taf::timing {

namespace {

using coffe::ResourceKind;
using netlist::kNoNet;
using netlist::NetId;
using netlist::PrimId;
using netlist::PrimKind;

/// Per-arc delay decomposition used both for arrival propagation and for
/// critical-path breakdown reporting.
struct ArcDelay {
  double total = 0.0;
  std::array<double, coffe::kNumResourceKinds> by_kind{};

  void add(ResourceKind k, double ps) {
    total += ps;
    by_kind[static_cast<std::size_t>(k)] += ps;
  }
};

}  // namespace

TimingAnalyzer::TimingAnalyzer(const netlist::Netlist& nl,
                               const pack::PackedNetlist& packed,
                               const place::Placement& pl, const route::RrGraph& rr,
                               const route::RouteResult& routes,
                               const arch::FpgaGrid& grid, TimingOptions opt)
    : nl_(&nl), packed_(&packed), pl_(&pl), grid_(&grid), opt_(opt) {
  topo_ = nl.topo_order();

  // Map netlist net -> block-net index for routed path lookup.
  std::unordered_map<NetId, int> block_net_of;
  for (int i = 0; i < static_cast<int>(packed.block_nets.size()); ++i) {
    block_net_of[packed.block_nets[static_cast<std::size_t>(i)].net] = i;
  }

  for (NetId n = 0; n < static_cast<NetId>(nl.nets().size()); ++n) {
    const auto& net = nl.net(n);
    const int src_block = packed.block_of_prim[static_cast<std::size_t>(net.driver)];

    // Parent map of the routed tree (if this net leaves its block).
    const route::NetRoute* nr = nullptr;
    std::unordered_map<route::RrNodeId, route::RrNodeId> parent;
    auto it = block_net_of.find(n);
    if (it != block_net_of.end()) {
      nr = &routes.routes[static_cast<std::size_t>(it->second)];
      parent.reserve(nr->parents.size());
      for (const auto& [node, par] : nr->parents) parent[node] = par;
    }

    // Straight-line SB hop estimate, used for unrouted nets and as the
    // fallback when a sink is missing from the routed tree.
    auto estimate_hops = [&pl](Connection& c, int from_block, int to_block) {
      const arch::TilePos a = pl.pos[static_cast<std::size_t>(from_block)];
      const arch::TilePos b = pl.pos[static_cast<std::size_t>(to_block)];
      const int dist = std::abs(a.x - b.x) + std::abs(a.y - b.y);
      const int hops = std::max(1, (dist + 3) / 4);
      for (int h = 0; h < hops; ++h) c.wire_tiles.push_back(a);
    };

    bool warned_missing_sink = false;
    for (const auto& sink : net.sinks) {
      Connection c;
      c.src = net.driver;
      c.dst = sink.prim;
      c.dst_pin = sink.pin;
      const int dst_block = packed.block_of_prim[static_cast<std::size_t>(sink.prim)];
      c.same_block = dst_block == src_block;
      if (!c.same_block && nr != nullptr && !nr->nodes.empty()) {
        // Walk the routed tree from the sink IPIN back to the source.
        const arch::TilePos dst_pos = pl.pos[static_cast<std::size_t>(dst_block)];
        route::RrNodeId cur = rr.ipin_at(dst_pos.x, dst_pos.y);
        if (parent.find(cur) == parent.end()) {
          // The sink IPIN never made it into the routed tree (partial or
          // failed route). Charging zero wire delay here would silently
          // make the connection look free; estimate it instead.
          if (!warned_missing_sink) {
            util::log_warn(
                "timing: net %d has sinks missing from its routed tree; "
                "using SB-hop delay estimate",
                n);
            warned_missing_sink = true;
          }
          estimate_hops(c, src_block, dst_block);
        }
        int guard = 0;
        while (true) {
          auto pit = parent.find(cur);
          if (pit == parent.end() || pit->second < 0) break;
          cur = pit->second;
          const route::RrNode& node = rr.node(cur);
          if (node.kind == route::RrKind::WireH || node.kind == route::RrKind::WireV) {
            c.wire_tiles.push_back(node.tile);
          }
          if (++guard > rr.num_nodes()) {
            util::log_warn("timing: cyclic route parents on net %d", n);
            break;
          }
        }
      } else if (!c.same_block) {
        estimate_hops(c, src_block, dst_block);
      }
      connections_.push_back(std::move(c));
    }
  }

  inc_topo_.build(*this);
}

TimingResult TimingAnalyzer::analyze(const coffe::DeviceModel& dev,
                                     const std::vector<double>& tile_temp_c) const {
  assert(static_cast<int>(tile_temp_c.size()) == grid_->num_tiles());

  auto temp_at = [&](arch::TilePos p) {
    return tile_temp_c[static_cast<std::size_t>(grid_->index_of(p))];
  };
  // Unwrapped device lookup: same arithmetic as DeviceModel::delay.
  auto dly = [&dev](ResourceKind k, double t) {
    return dev.delay(k, units::Celsius{t}).value();
  };
  auto block_tile = [&](PrimId prim) {
    const int b = packed_->block_of_prim[static_cast<std::size_t>(prim)];
    return pl_->pos[static_cast<std::size_t>(b)];
  };

  // Connection delays.
  auto conn_delay = [&](const Connection& c) {
    ArcDelay d;
    const arch::TilePos src_tile = block_tile(c.src);
    if (c.same_block) {
      d.add(ResourceKind::FeedbackMux, dly(ResourceKind::FeedbackMux,
                                                    temp_at(src_tile)));
    } else {
      d.add(ResourceKind::OutputMux,
            dly(ResourceKind::OutputMux, temp_at(src_tile)));
      for (const arch::TilePos& wt : c.wire_tiles) {
        d.add(ResourceKind::SbMux, dly(ResourceKind::SbMux, temp_at(wt)));
      }
      d.add(ResourceKind::CbMux,
            dly(ResourceKind::CbMux, temp_at(block_tile(c.dst))));
    }
    return d;
  };

  // Per-connection lists by destination primitive.
  std::vector<std::vector<int>> conns_into(nl_->prims().size());
  for (int i = 0; i < static_cast<int>(connections_.size()); ++i) {
    conns_into[static_cast<std::size_t>(connections_[static_cast<std::size_t>(i)].dst)]
        .push_back(i);
  }

  const auto n_prims = nl_->prims().size();
  std::vector<double> arrival(n_prims, 0.0);
  std::vector<int> crit_conn(n_prims, -1);  // critical incoming connection

  // Launch times for sequential sources.
  for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
    const auto& p = nl_->prim(id);
    switch (p.kind) {
      case PrimKind::Input: arrival[static_cast<std::size_t>(id)] = opt_.io_delay_ps.value(); break;
      case PrimKind::Ff: arrival[static_cast<std::size_t>(id)] = opt_.ff_clk_to_q_ps.value(); break;
      case PrimKind::Bram:
        arrival[static_cast<std::size_t>(id)] =
            dly(ResourceKind::Bram, temp_at(block_tile(id)));
        break;
      default: break;
    }
  }

  // Propagate through combinational elements in topological order.
  for (PrimId id : topo_) {
    const auto& p = nl_->prim(id);
    if (p.kind != PrimKind::Lut && p.kind != PrimKind::Dsp && p.kind != PrimKind::Output)
      continue;
    double worst = 0.0;
    int worst_conn = -1;
    for (int ci : conns_into[static_cast<std::size_t>(id)]) {
      const Connection& c = connections_[static_cast<std::size_t>(ci)];
      const double t = arrival[static_cast<std::size_t>(c.src)] + conn_delay(c).total;
      if (t > worst) {
        worst = t;
        worst_conn = ci;
      }
    }
    crit_conn[static_cast<std::size_t>(id)] = worst_conn;
    const double temp = temp_at(block_tile(id));
    if (p.kind == PrimKind::Lut) {
      worst += dly(ResourceKind::LocalMux, temp) +
               dly(ResourceKind::Lut, temp);
    } else if (p.kind == PrimKind::Dsp) {
      worst += dly(ResourceKind::Dsp, temp);
    }
    arrival[static_cast<std::size_t>(id)] = worst;
  }

  // Capture: FF data / BRAM and DSP inputs (setup), primary outputs.
  double cp = 0.0;
  PrimId cp_end = -1;
  int cp_end_conn = -1;
  auto consider = [&](PrimId prim, int ci, double t) {
    if (t > cp) {
      cp = t;
      cp_end = prim;
      cp_end_conn = ci;
    }
  };
  for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
    const auto& p = nl_->prim(id);
    if (p.kind == PrimKind::Output) {
      consider(id, crit_conn[static_cast<std::size_t>(id)], arrival[static_cast<std::size_t>(id)]);
    } else if (p.kind == PrimKind::Ff || p.kind == PrimKind::Bram) {
      const double setup =
          (p.kind == PrimKind::Ff ? opt_.ff_setup_ps : opt_.bram_setup_ps).value();
      for (int ci : conns_into[static_cast<std::size_t>(id)]) {
        const Connection& c = connections_[static_cast<std::size_t>(ci)];
        consider(id, ci, arrival[static_cast<std::size_t>(c.src)] + conn_delay(c).total + setup);
      }
    }
  }

  TimingResult result;
  result.critical_path_ps = units::Picoseconds{cp};
  result.fmax_mhz =
      cp > 0.0 ? units::frequency_of(units::Picoseconds{cp}) : units::Megahertz{0.0};

  // Reconstruct the critical path and its resource breakdown.
  if (cp_end >= 0) {
    PrimId cur = cp_end;
    int ci = cp_end_conn;
    result.cp_prims.push_back(cur);
    int guard = 0;
    while (ci >= 0 && guard++ < static_cast<int>(n_prims)) {
      const Connection& c = connections_[static_cast<std::size_t>(ci)];
      const ArcDelay d = conn_delay(c);
      for (std::size_t k = 0; k < d.by_kind.size(); ++k)
        result.cp_breakdown[k] += d.by_kind[k];
      cur = c.src;
      result.cp_prims.push_back(cur);
      const auto& p = nl_->prim(cur);
      const double temp = temp_at(block_tile(cur));
      if (p.kind == PrimKind::Lut) {
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Lut)] +=
            dly(ResourceKind::Lut, temp);
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::LocalMux)] +=
            dly(ResourceKind::LocalMux, temp);
      } else if (p.kind == PrimKind::Dsp) {
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Dsp)] +=
            dly(ResourceKind::Dsp, temp);
      } else if (p.kind == PrimKind::Bram) {
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Bram)] +=
            dly(ResourceKind::Bram, temp);
      }
      ci = crit_conn[static_cast<std::size_t>(cur)];
    }
    std::reverse(result.cp_prims.begin(), result.cp_prims.end());
  }
  return result;
}

TimingResult TimingAnalyzer::analyze_uniform(const coffe::DeviceModel& dev,
                                             units::Celsius temp) const {
  const std::vector<double> temps(static_cast<std::size_t>(grid_->num_tiles()),
                                  temp.value());
  return analyze(dev, temps);
}

// ---------------------------------------------------------------------------
// IncrementalSta

void IncrementalTopology::build(const TimingAnalyzer& an) {
  n_tiles_ = an.grid_->num_tiles();

  const auto n_prims = an.nl_->prims().size();
  prim_kind_.resize(n_prims);
  prim_tile_.resize(n_prims);
  for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
    prim_kind_[static_cast<std::size_t>(id)] = an.nl_->prim(id).kind;
    const int b = an.packed_->block_of_prim[static_cast<std::size_t>(id)];
    prim_tile_[static_cast<std::size_t>(id)] =
        an.grid_->index_of(an.pl_->pos[static_cast<std::size_t>(b)]);
  }

  const auto& conns = an.connections_;
  const auto n_conns = conns.size();
  conn_src_.resize(n_conns);
  conn_dst_.resize(n_conns);
  conn_same_block_.resize(n_conns);
  conn_src_tile_.resize(n_conns);
  conn_dst_tile_.resize(n_conns);
  wire_tile_start_.resize(n_conns + 1, 0);
  for (int ci = 0; ci < static_cast<int>(n_conns); ++ci) {
    const auto& c = conns[static_cast<std::size_t>(ci)];
    conn_src_[static_cast<std::size_t>(ci)] = c.src;
    conn_dst_[static_cast<std::size_t>(ci)] = c.dst;
    conn_same_block_[static_cast<std::size_t>(ci)] = c.same_block ? 1 : 0;
    conn_src_tile_[static_cast<std::size_t>(ci)] =
        prim_tile_[static_cast<std::size_t>(c.src)];
    conn_dst_tile_[static_cast<std::size_t>(ci)] =
        prim_tile_[static_cast<std::size_t>(c.dst)];
    wire_tile_start_[static_cast<std::size_t>(ci)] =
        static_cast<int>(wire_tile_flat_.size());
    if (!c.same_block) {
      for (const arch::TilePos& wt : c.wire_tiles) {
        wire_tile_flat_.push_back(an.grid_->index_of(wt));
      }
    }
  }
  wire_tile_start_[n_conns] = static_cast<int>(wire_tile_flat_.size());

  // CSR fanin/fanout lists (count, prefix-sum, fill — the fill visits
  // conns in ascending index, so each prim's list is index-sorted).
  auto build_csr = [n_conns](std::vector<int>& flat, std::vector<int>& start,
                             std::size_t n_rows, auto row_of) {
    start.assign(n_rows + 1, 0);
    for (std::size_t ci = 0; ci < n_conns; ++ci) {
      ++start[static_cast<std::size_t>(row_of(static_cast<int>(ci))) + 1];
    }
    for (std::size_t r = 0; r < n_rows; ++r) start[r + 1] += start[r];
    flat.resize(n_conns);
    std::vector<int> cursor(start.begin(), start.end() - 1);
    for (std::size_t ci = 0; ci < n_conns; ++ci) {
      flat[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(row_of(static_cast<int>(ci)))]++)] =
          static_cast<int>(ci);
    }
  };
  build_csr(conn_in_flat_, conn_in_start_, n_prims,
            [&](int ci) { return conns[static_cast<std::size_t>(ci)].dst; });
  build_csr(conn_out_flat_, conn_out_start_, n_prims,
            [&](int ci) { return conns[static_cast<std::size_t>(ci)].src; });

  // Tile->conn incidence for frontier marking (deduped per connection;
  // SB-hop estimates may repeat a tile). Same count/fill scheme, driven
  // by a visitor over each connection's distinct touched tiles.
  auto touched_tiles = [&](int ci, auto&& emit) {
    const auto& c = conns[static_cast<std::size_t>(ci)];
    const int src_t = conn_src_tile_[static_cast<std::size_t>(ci)];
    const int dst_t = conn_dst_tile_[static_cast<std::size_t>(ci)];
    emit(src_t);
    if (!c.same_block) {
      if (dst_t != src_t) emit(dst_t);
      for (int w = wire_tile_start_[static_cast<std::size_t>(ci)];
           w < wire_tile_start_[static_cast<std::size_t>(ci) + 1]; ++w) {
        const int t = wire_tile_flat_[static_cast<std::size_t>(w)];
        bool seen = t == src_t || t == dst_t;
        for (int v = wire_tile_start_[static_cast<std::size_t>(ci)]; !seen && v < w;
             ++v) {
          seen = wire_tile_flat_[static_cast<std::size_t>(v)] == t;
        }
        if (!seen) emit(t);
      }
    }
  };
  tile_conn_start_.assign(static_cast<std::size_t>(n_tiles_) + 1, 0);
  for (int ci = 0; ci < static_cast<int>(n_conns); ++ci) {
    touched_tiles(ci, [&](int t) { ++tile_conn_start_[static_cast<std::size_t>(t) + 1]; });
  }
  for (int t = 0; t < n_tiles_; ++t) {
    tile_conn_start_[static_cast<std::size_t>(t) + 1] +=
        tile_conn_start_[static_cast<std::size_t>(t)];
  }
  tile_conn_flat_.resize(static_cast<std::size_t>(tile_conn_start_.back()));
  {
    std::vector<int> cursor(tile_conn_start_.begin(), tile_conn_start_.end() - 1);
    for (int ci = 0; ci < static_cast<int>(n_conns); ++ci) {
      touched_tiles(ci, [&](int t) {
        tile_conn_flat_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)] =
            ci;
      });
    }
  }

  tile_prim_start_.assign(static_cast<std::size_t>(n_tiles_) + 1, 0);
  for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
    const PrimKind k = an.nl_->prim(id).kind;
    if (k == PrimKind::Lut || k == PrimKind::Dsp || k == PrimKind::Bram) {
      ++tile_prim_start_[static_cast<std::size_t>(
                             prim_tile_[static_cast<std::size_t>(id)]) +
                         1];
    }
  }
  for (int t = 0; t < n_tiles_; ++t) {
    tile_prim_start_[static_cast<std::size_t>(t) + 1] +=
        tile_prim_start_[static_cast<std::size_t>(t)];
  }
  tile_prim_flat_.resize(static_cast<std::size_t>(tile_prim_start_.back()));
  {
    std::vector<int> cursor(tile_prim_start_.begin(), tile_prim_start_.end() - 1);
    for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
      const PrimKind k = an.nl_->prim(id).kind;
      if (k == PrimKind::Lut || k == PrimKind::Dsp || k == PrimKind::Bram) {
        const int t = prim_tile_[static_cast<std::size_t>(id)];
        tile_prim_flat_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)] =
            id;
      }
    }
  }

  // Capture entries in exactly the order the full path scans them.
  capture_of_conn_.assign(n_conns, -1);
  for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
    const PrimKind k = an.nl_->prim(id).kind;
    if (k == PrimKind::Output) {
      captures_.push_back({id, -1, units::Picoseconds{0.0}});
    } else if (k == PrimKind::Ff || k == PrimKind::Bram) {
      const units::Picoseconds setup =
          k == PrimKind::Ff ? an.opt_.ff_setup_ps : an.opt_.bram_setup_ps;
      for (int i = conn_in_start_[static_cast<std::size_t>(id)];
           i < conn_in_start_[static_cast<std::size_t>(id) + 1]; ++i) {
        const int ci = conn_in_flat_[static_cast<std::size_t>(i)];
        capture_of_conn_[static_cast<std::size_t>(ci)] =
            static_cast<int>(captures_.size());
        captures_.push_back({id, ci, setup});
      }
    }
  }

  // DSP feedback: topo_order() does not gate on DSP inputs, so a DSP can
  // precede its combinational fanins in topo_. The full pass then reads
  // such a fanin's arrival before computing it — i.e. its per-call
  // initial value 0 — which the session reproduces by pinning those
  // contributions to 0 instead of using the cached (final) arrival.
  // Capture edges (dst FF/BRAM) are scanned after the loop with final
  // arrivals and are never frozen.
  std::vector<int> topo_pos(n_prims, 0);
  for (std::size_t i = 0; i < an.topo_.size(); ++i) {
    topo_pos[static_cast<std::size_t>(an.topo_[i])] = static_cast<int>(i);
  }
  conn_src_frozen_.assign(n_conns, 0);
  for (std::size_t ci = 0; ci < n_conns; ++ci) {
    const auto& c = conns[ci];
    const PrimKind sk = an.nl_->prim(c.src).kind;
    const PrimKind dk = an.nl_->prim(c.dst).kind;
    const bool comb_src =
        sk == PrimKind::Lut || sk == PrimKind::Dsp || sk == PrimKind::Output;
    const bool comb_dst =
        dk == PrimKind::Lut || dk == PrimKind::Dsp || dk == PrimKind::Output;
    if (comb_src && comb_dst &&
        topo_pos[static_cast<std::size_t>(c.src)] >
            topo_pos[static_cast<std::size_t>(c.dst)]) {
      conn_src_frozen_[ci] = 1;
    }
  }
}

IncrementalSta::IncrementalSta(const TimingAnalyzer& analyzer,
                               const coffe::DeviceModel& dev, Mode mode,
                               units::Kelvin epsilon)
    : an_(&analyzer),
      dev_(&dev),
      mode_(mode),
      eps_(epsilon.value()),
      n_tiles_(analyzer.inc_topo_.n_tiles_),
      prim_kind_(analyzer.inc_topo_.prim_kind_),
      prim_tile_(analyzer.inc_topo_.prim_tile_),
      conn_src_(analyzer.inc_topo_.conn_src_),
      conn_dst_(analyzer.inc_topo_.conn_dst_),
      conn_same_block_(analyzer.inc_topo_.conn_same_block_),
      conn_in_flat_(analyzer.inc_topo_.conn_in_flat_),
      conn_in_start_(analyzer.inc_topo_.conn_in_start_),
      conn_out_flat_(analyzer.inc_topo_.conn_out_flat_),
      conn_out_start_(analyzer.inc_topo_.conn_out_start_),
      conn_src_tile_(analyzer.inc_topo_.conn_src_tile_),
      conn_dst_tile_(analyzer.inc_topo_.conn_dst_tile_),
      conn_src_frozen_(analyzer.inc_topo_.conn_src_frozen_),
      wire_tile_flat_(analyzer.inc_topo_.wire_tile_flat_),
      wire_tile_start_(analyzer.inc_topo_.wire_tile_start_),
      tile_conn_flat_(analyzer.inc_topo_.tile_conn_flat_),
      tile_conn_start_(analyzer.inc_topo_.tile_conn_start_),
      tile_prim_flat_(analyzer.inc_topo_.tile_prim_flat_),
      tile_prim_start_(analyzer.inc_topo_.tile_prim_start_),
      captures_(analyzer.inc_topo_.captures_),
      capture_of_conn_(analyzer.inc_topo_.capture_of_conn_) {
  for (int k = 0; k < coffe::kNumResourceKinds; ++k) {
    fit_[static_cast<std::size_t>(k)] =
        dev.at(static_cast<ResourceKind>(k)).delay_ps;
  }

  const auto n_prims = an_->nl_->prims().size();
  const auto n_conns = an_->connections_.size();
  base_temp_.assign(static_cast<std::size_t>(n_tiles_),
                    std::numeric_limits<double>::quiet_NaN());
  tile_delay_.assign(static_cast<std::size_t>(coffe::kNumResourceKinds) *
                         static_cast<std::size_t>(n_tiles_),
                     0.0);
  conn_total_.assign(n_conns, 0.0);
  arrival_.assign(n_prims, 0.0);
  crit_conn_.assign(n_prims, -1);
  capture_val_.assign(captures_.size(), 0.0);
  // Temperature-independent launch times.
  for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
    const PrimKind k = an_->nl_->prim(id).kind;
    if (k == PrimKind::Input)
      arrival_[static_cast<std::size_t>(id)] = an_->opt_.io_delay_ps.value();
    if (k == PrimKind::Ff)
      arrival_[static_cast<std::size_t>(id)] = an_->opt_.ff_clk_to_q_ps.value();
  }

  conn_dirty_.assign(n_conns, 0);
  node_pending_.assign(n_prims, 0);
}

void IncrementalSta::refresh_tile(int tile, double temp_c) {
  base_temp_[static_cast<std::size_t>(tile)] = temp_c;
  for (int k = 0; k < coffe::kNumResourceKinds; ++k) {
    tile_delay_[static_cast<std::size_t>(k) * static_cast<std::size_t>(n_tiles_) +
                static_cast<std::size_t>(tile)] = fit_[static_cast<std::size_t>(k)](temp_c);
  }
}

double IncrementalSta::conn_delay_total(int ci) const {
  // Mirrors TimingAnalyzer's conn_delay() accumulation order exactly.
  double total = 0.0;
  if (conn_same_block_[static_cast<std::size_t>(ci)]) {
    total += tile_delay(ResourceKind::FeedbackMux,
                        conn_src_tile_[static_cast<std::size_t>(ci)]);
  } else {
    total += tile_delay(ResourceKind::OutputMux,
                        conn_src_tile_[static_cast<std::size_t>(ci)]);
    for (int w = wire_tile_start_[static_cast<std::size_t>(ci)];
         w < wire_tile_start_[static_cast<std::size_t>(ci) + 1]; ++w) {
      total += tile_delay(ResourceKind::SbMux, wire_tile_flat_[static_cast<std::size_t>(w)]);
    }
    total += tile_delay(ResourceKind::CbMux,
                        conn_dst_tile_[static_cast<std::size_t>(ci)]);
  }
  return total;
}

TimingResult IncrementalSta::analyze(const std::vector<double>& tile_temp_c,
                                     bool with_critical_path) {
  assert(static_cast<int>(tile_temp_c.size()) == n_tiles_);

  // 1. Frontier: tiles whose delays must be re-derived.
  std::vector<int> dirty_tiles;
  for (int t = 0; t < n_tiles_; ++t) {
    const double temp = tile_temp_c[static_cast<std::size_t>(t)];
    const double base = base_temp_[static_cast<std::size_t>(t)];
    const bool moved = !primed_ || (mode_ == Mode::Exact
                                        ? temp != base
                                        : std::fabs(temp - base) > eps_);
    if (moved) dirty_tiles.push_back(t);
  }

  if (primed_ && dirty_tiles.empty()) {
    // Nothing to re-derive or propagate: the cached analysis stands.
    TimingResult result;
    result.critical_path_ps = units::Picoseconds{cached_cp_};
    result.fmax_mhz = cached_cp_ > 0.0
                          ? units::frequency_of(units::Picoseconds{cached_cp_})
                          : units::Megahertz{0.0};
    if (with_critical_path) reconstruct_critical_path(result);
    return result;
  }

  std::fill(node_pending_.begin(), node_pending_.end(), 0);
  std::vector<char> capture_pending(captures_.size(), 0);

  auto mark_fanout = [&](PrimId p) {
    for (int i = conn_out_start_[static_cast<std::size_t>(p)];
         i < conn_out_start_[static_cast<std::size_t>(p) + 1]; ++i) {
      const int ci = conn_out_flat_[static_cast<std::size_t>(i)];
      // A frozen edge contributes 0 regardless of the source's arrival;
      // only its connection delay matters, handled via dirty conns.
      if (conn_src_frozen_[static_cast<std::size_t>(ci)]) continue;
      const int cap = capture_of_conn_[static_cast<std::size_t>(ci)];
      if (cap >= 0) {
        capture_pending[static_cast<std::size_t>(cap)] = 1;
      } else {
        node_pending_[static_cast<std::size_t>(conn_dst_[static_cast<std::size_t>(ci)])] =
            1;
      }
    }
  };

  // 2. Refresh the frontier's delay tables, then mark affected
  // connections, tile-resident primitives, and BRAM launch times. When
  // every tile moved (each Exact-mode loop iteration: CG perturbs the
  // whole map) the per-tile incidence walk only rediscovers "everything";
  // mark it all directly instead.
  std::vector<int> dirty_conns;
  for (int t : dirty_tiles) refresh_tile(t, tile_temp_c[static_cast<std::size_t>(t)]);
  if (static_cast<int>(dirty_tiles.size()) == n_tiles_) {
    std::fill(conn_dirty_.begin(), conn_dirty_.end(), 1);
    dirty_conns.resize(conn_dirty_.size());
    std::iota(dirty_conns.begin(), dirty_conns.end(), 0);
    const auto n_prims = static_cast<PrimId>(prim_kind_.size());
    for (PrimId p = 0; p < n_prims; ++p) {
      const PrimKind k = prim_kind_[static_cast<std::size_t>(p)];
      if (k == PrimKind::Bram) {
        const double launch =
            tile_delay(ResourceKind::Bram, prim_tile_[static_cast<std::size_t>(p)]);
        if (launch != arrival_[static_cast<std::size_t>(p)]) {
          arrival_[static_cast<std::size_t>(p)] = launch;
          mark_fanout(p);
        }
      } else if (k == PrimKind::Lut || k == PrimKind::Dsp) {
        node_pending_[static_cast<std::size_t>(p)] = 1;
      }
    }
  } else {
    std::fill(conn_dirty_.begin(), conn_dirty_.end(), 0);
    for (int t : dirty_tiles) {
      for (int i = tile_conn_start_[static_cast<std::size_t>(t)];
           i < tile_conn_start_[static_cast<std::size_t>(t) + 1]; ++i) {
        const int ci = tile_conn_flat_[static_cast<std::size_t>(i)];
        if (!conn_dirty_[static_cast<std::size_t>(ci)]) {
          conn_dirty_[static_cast<std::size_t>(ci)] = 1;
          dirty_conns.push_back(ci);
        }
      }
      for (int i = tile_prim_start_[static_cast<std::size_t>(t)];
           i < tile_prim_start_[static_cast<std::size_t>(t) + 1]; ++i) {
        const PrimId p = tile_prim_flat_[static_cast<std::size_t>(i)];
        const PrimKind k = prim_kind_[static_cast<std::size_t>(p)];
        if (k == PrimKind::Bram) {
          const double launch =
              tile_delay(ResourceKind::Bram, prim_tile_[static_cast<std::size_t>(p)]);
          if (launch != arrival_[static_cast<std::size_t>(p)]) {
            arrival_[static_cast<std::size_t>(p)] = launch;
            mark_fanout(p);
          }
        } else {  // Lut / Dsp self-delay changed
          node_pending_[static_cast<std::size_t>(p)] = 1;
        }
      }
    }
  }
  for (int ci : dirty_conns) {
    conn_total_[static_cast<std::size_t>(ci)] = conn_delay_total(ci);
    ++counters_.edges_reevaluated;
    const int cap = capture_of_conn_[static_cast<std::size_t>(ci)];
    if (cap >= 0) {
      capture_pending[static_cast<std::size_t>(cap)] = 1;
    } else {
      node_pending_[static_cast<std::size_t>(conn_dst_[static_cast<std::size_t>(ci)])] =
          1;
    }
  }

  // 3. Repropagate arrivals downstream of the frontier, in the same
  // topological order (and with the same arithmetic) as the full pass.
  for (PrimId id : an_->topo_) {
    if (!node_pending_[static_cast<std::size_t>(id)]) continue;
    const PrimKind kind = prim_kind_[static_cast<std::size_t>(id)];
    double worst = 0.0;
    int worst_conn = -1;
    for (int i = conn_in_start_[static_cast<std::size_t>(id)];
         i < conn_in_start_[static_cast<std::size_t>(id) + 1]; ++i) {
      const int ci = conn_in_flat_[static_cast<std::size_t>(i)];
      if (!conn_dirty_[static_cast<std::size_t>(ci)]) ++counters_.delay_cache_hits;
      const double src_arr =
          conn_src_frozen_[static_cast<std::size_t>(ci)]
              ? 0.0
              : arrival_[static_cast<std::size_t>(conn_src_[static_cast<std::size_t>(ci)])];
      const double t = src_arr + conn_total_[static_cast<std::size_t>(ci)];
      if (t > worst) {
        worst = t;
        worst_conn = ci;
      }
    }
    crit_conn_[static_cast<std::size_t>(id)] = worst_conn;
    const int tile = prim_tile_[static_cast<std::size_t>(id)];
    if (kind == PrimKind::Lut) {
      worst += tile_delay(ResourceKind::LocalMux, tile) +
               tile_delay(ResourceKind::Lut, tile);
    } else if (kind == PrimKind::Dsp) {
      worst += tile_delay(ResourceKind::Dsp, tile);
    }
    if (worst != arrival_[static_cast<std::size_t>(id)]) {
      arrival_[static_cast<std::size_t>(id)] = worst;
      mark_fanout(id);
    }
  }

  // 4. Refresh pending capture arrivals; rescan all captures for the
  // critical path (same order and tie-breaking as the full pass).
  for (std::size_t i = 0; i < captures_.size(); ++i) {
    const CaptureEntry& e = captures_[i];
    if (e.conn < 0 || !capture_pending[i]) continue;
    if (!conn_dirty_[static_cast<std::size_t>(e.conn)]) ++counters_.delay_cache_hits;
    capture_val_[i] =
        arrival_[static_cast<std::size_t>(conn_src_[static_cast<std::size_t>(e.conn)])] +
        conn_total_[static_cast<std::size_t>(e.conn)] + e.setup_ps.value();
  }
  double cp = 0.0;
  PrimId cp_end = -1;
  int cp_end_conn = -1;
  for (std::size_t i = 0; i < captures_.size(); ++i) {
    const CaptureEntry& e = captures_[i];
    const double v = e.conn < 0 ? arrival_[static_cast<std::size_t>(e.prim)]
                                : capture_val_[i];
    if (v > cp) {
      cp = v;
      cp_end = e.prim;
      cp_end_conn = e.conn < 0 ? crit_conn_[static_cast<std::size_t>(e.prim)] : e.conn;
    }
  }
  cached_cp_ = cp;
  cached_cp_end_ = cp_end;
  cached_cp_end_conn_ = cp_end_conn;
  primed_ = true;

  TimingResult result;
  result.critical_path_ps = units::Picoseconds{cp};
  result.fmax_mhz =
      cp > 0.0 ? units::frequency_of(units::Picoseconds{cp}) : units::Megahertz{0.0};
  if (with_critical_path) reconstruct_critical_path(result);
  return result;
}

void IncrementalSta::reconstruct_critical_path(TimingResult& result) const {
  if (cached_cp_end_ < 0) return;
  const auto n_prims = an_->nl_->prims().size();
  PrimId cur = cached_cp_end_;
  int ci = cached_cp_end_conn_;
  result.cp_prims.push_back(cur);
  int guard = 0;
  while (ci >= 0 && guard++ < static_cast<int>(n_prims)) {
    const auto& c = an_->connections_[static_cast<std::size_t>(ci)];
    // Per-kind decomposition, mirroring conn_delay()'s order.
    if (c.same_block) {
      result.cp_breakdown[static_cast<std::size_t>(ResourceKind::FeedbackMux)] +=
          tile_delay(ResourceKind::FeedbackMux, conn_src_tile_[static_cast<std::size_t>(ci)]);
    } else {
      result.cp_breakdown[static_cast<std::size_t>(ResourceKind::OutputMux)] +=
          tile_delay(ResourceKind::OutputMux, conn_src_tile_[static_cast<std::size_t>(ci)]);
      for (int w = wire_tile_start_[static_cast<std::size_t>(ci)];
           w < wire_tile_start_[static_cast<std::size_t>(ci) + 1]; ++w) {
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::SbMux)] +=
            tile_delay(ResourceKind::SbMux, wire_tile_flat_[static_cast<std::size_t>(w)]);
      }
      result.cp_breakdown[static_cast<std::size_t>(ResourceKind::CbMux)] +=
          tile_delay(ResourceKind::CbMux, conn_dst_tile_[static_cast<std::size_t>(ci)]);
    }
    cur = c.src;
    result.cp_prims.push_back(cur);
    const PrimKind kind = an_->nl_->prim(cur).kind;
    const int tile = prim_tile_[static_cast<std::size_t>(cur)];
    if (kind == PrimKind::Lut) {
      result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Lut)] +=
          tile_delay(ResourceKind::Lut, tile);
      result.cp_breakdown[static_cast<std::size_t>(ResourceKind::LocalMux)] +=
          tile_delay(ResourceKind::LocalMux, tile);
    } else if (kind == PrimKind::Dsp) {
      result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Dsp)] +=
          tile_delay(ResourceKind::Dsp, tile);
    } else if (kind == PrimKind::Bram) {
      result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Bram)] +=
          tile_delay(ResourceKind::Bram, tile);
    }
    ci = crit_conn_[static_cast<std::size_t>(cur)];
  }
  std::reverse(result.cp_prims.begin(), result.cp_prims.end());
}

}  // namespace taf::timing

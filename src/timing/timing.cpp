#include "timing/timing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "util/log.hpp"

namespace taf::timing {

namespace {

using coffe::ResourceKind;
using netlist::kNoNet;
using netlist::NetId;
using netlist::PrimId;
using netlist::PrimKind;

/// Per-arc delay decomposition used both for arrival propagation and for
/// critical-path breakdown reporting.
struct ArcDelay {
  double total = 0.0;
  std::array<double, coffe::kNumResourceKinds> by_kind{};

  void add(ResourceKind k, double ps) {
    total += ps;
    by_kind[static_cast<std::size_t>(k)] += ps;
  }
};

}  // namespace

TimingAnalyzer::TimingAnalyzer(const netlist::Netlist& nl,
                               const pack::PackedNetlist& packed,
                               const place::Placement& pl, const route::RrGraph& rr,
                               const route::RouteResult& routes,
                               const arch::FpgaGrid& grid, TimingOptions opt)
    : nl_(&nl), packed_(&packed), pl_(&pl), grid_(&grid), opt_(opt) {
  topo_ = nl.topo_order();

  // Map netlist net -> block-net index for routed path lookup.
  std::unordered_map<NetId, int> block_net_of;
  for (int i = 0; i < static_cast<int>(packed.block_nets.size()); ++i) {
    block_net_of[packed.block_nets[static_cast<std::size_t>(i)].net] = i;
  }

  for (NetId n = 0; n < static_cast<NetId>(nl.nets().size()); ++n) {
    const auto& net = nl.net(n);
    const int src_block = packed.block_of_prim[static_cast<std::size_t>(net.driver)];

    // Parent map of the routed tree (if this net leaves its block).
    const route::NetRoute* nr = nullptr;
    std::unordered_map<route::RrNodeId, route::RrNodeId> parent;
    auto it = block_net_of.find(n);
    if (it != block_net_of.end()) {
      nr = &routes.routes[static_cast<std::size_t>(it->second)];
      parent.reserve(nr->parents.size());
      for (const auto& [node, par] : nr->parents) parent[node] = par;
    }

    // Straight-line SB hop estimate, used for unrouted nets and as the
    // fallback when a sink is missing from the routed tree.
    auto estimate_hops = [&pl](Connection& c, int from_block, int to_block) {
      const arch::TilePos a = pl.pos[static_cast<std::size_t>(from_block)];
      const arch::TilePos b = pl.pos[static_cast<std::size_t>(to_block)];
      const int dist = std::abs(a.x - b.x) + std::abs(a.y - b.y);
      const int hops = std::max(1, (dist + 3) / 4);
      for (int h = 0; h < hops; ++h) c.wire_tiles.push_back(a);
    };

    bool warned_missing_sink = false;
    for (const auto& sink : net.sinks) {
      Connection c;
      c.src = net.driver;
      c.dst = sink.prim;
      c.dst_pin = sink.pin;
      const int dst_block = packed.block_of_prim[static_cast<std::size_t>(sink.prim)];
      c.same_block = dst_block == src_block;
      if (!c.same_block && nr != nullptr && !nr->nodes.empty()) {
        // Walk the routed tree from the sink IPIN back to the source.
        const arch::TilePos dst_pos = pl.pos[static_cast<std::size_t>(dst_block)];
        route::RrNodeId cur = rr.ipin_at(dst_pos.x, dst_pos.y);
        if (parent.find(cur) == parent.end()) {
          // The sink IPIN never made it into the routed tree (partial or
          // failed route). Charging zero wire delay here would silently
          // make the connection look free; estimate it instead.
          if (!warned_missing_sink) {
            util::log_warn(
                "timing: net %d has sinks missing from its routed tree; "
                "using SB-hop delay estimate",
                n);
            warned_missing_sink = true;
          }
          estimate_hops(c, src_block, dst_block);
        }
        int guard = 0;
        while (true) {
          auto pit = parent.find(cur);
          if (pit == parent.end() || pit->second < 0) break;
          cur = pit->second;
          const route::RrNode& node = rr.node(cur);
          if (node.kind == route::RrKind::WireH || node.kind == route::RrKind::WireV) {
            c.wire_tiles.push_back(node.tile);
          }
          if (++guard > rr.num_nodes()) {
            util::log_warn("timing: cyclic route parents on net %d", n);
            break;
          }
        }
      } else if (!c.same_block) {
        estimate_hops(c, src_block, dst_block);
      }
      connections_.push_back(std::move(c));
    }
  }
}

TimingResult TimingAnalyzer::analyze(const coffe::DeviceModel& dev,
                                     const std::vector<double>& tile_temp_c) const {
  assert(static_cast<int>(tile_temp_c.size()) == grid_->num_tiles());

  auto temp_at = [&](arch::TilePos p) {
    return tile_temp_c[static_cast<std::size_t>(grid_->index_of(p))];
  };
  auto block_tile = [&](PrimId prim) {
    const int b = packed_->block_of_prim[static_cast<std::size_t>(prim)];
    return pl_->pos[static_cast<std::size_t>(b)];
  };

  // Connection delays.
  auto conn_delay = [&](const Connection& c) {
    ArcDelay d;
    const arch::TilePos src_tile = block_tile(c.src);
    if (c.same_block) {
      d.add(ResourceKind::FeedbackMux, dev.delay_ps(ResourceKind::FeedbackMux,
                                                    temp_at(src_tile)));
    } else {
      d.add(ResourceKind::OutputMux,
            dev.delay_ps(ResourceKind::OutputMux, temp_at(src_tile)));
      for (const arch::TilePos& wt : c.wire_tiles) {
        d.add(ResourceKind::SbMux, dev.delay_ps(ResourceKind::SbMux, temp_at(wt)));
      }
      d.add(ResourceKind::CbMux,
            dev.delay_ps(ResourceKind::CbMux, temp_at(block_tile(c.dst))));
    }
    return d;
  };

  // Per-connection lists by destination primitive.
  std::vector<std::vector<int>> conns_into(nl_->prims().size());
  for (int i = 0; i < static_cast<int>(connections_.size()); ++i) {
    conns_into[static_cast<std::size_t>(connections_[static_cast<std::size_t>(i)].dst)]
        .push_back(i);
  }

  const auto n_prims = nl_->prims().size();
  std::vector<double> arrival(n_prims, 0.0);
  std::vector<int> crit_conn(n_prims, -1);  // critical incoming connection

  // Launch times for sequential sources.
  for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
    const auto& p = nl_->prim(id);
    switch (p.kind) {
      case PrimKind::Input: arrival[static_cast<std::size_t>(id)] = opt_.io_delay_ps; break;
      case PrimKind::Ff: arrival[static_cast<std::size_t>(id)] = opt_.ff_clk_to_q_ps; break;
      case PrimKind::Bram:
        arrival[static_cast<std::size_t>(id)] =
            dev.delay_ps(ResourceKind::Bram, temp_at(block_tile(id)));
        break;
      default: break;
    }
  }

  // Propagate through combinational elements in topological order.
  for (PrimId id : topo_) {
    const auto& p = nl_->prim(id);
    if (p.kind != PrimKind::Lut && p.kind != PrimKind::Dsp && p.kind != PrimKind::Output)
      continue;
    double worst = 0.0;
    int worst_conn = -1;
    for (int ci : conns_into[static_cast<std::size_t>(id)]) {
      const Connection& c = connections_[static_cast<std::size_t>(ci)];
      const double t = arrival[static_cast<std::size_t>(c.src)] + conn_delay(c).total;
      if (t > worst) {
        worst = t;
        worst_conn = ci;
      }
    }
    crit_conn[static_cast<std::size_t>(id)] = worst_conn;
    const double temp = temp_at(block_tile(id));
    if (p.kind == PrimKind::Lut) {
      worst += dev.delay_ps(ResourceKind::LocalMux, temp) +
               dev.delay_ps(ResourceKind::Lut, temp);
    } else if (p.kind == PrimKind::Dsp) {
      worst += dev.delay_ps(ResourceKind::Dsp, temp);
    }
    arrival[static_cast<std::size_t>(id)] = worst;
  }

  // Capture: FF data / BRAM and DSP inputs (setup), primary outputs.
  double cp = 0.0;
  PrimId cp_end = -1;
  int cp_end_conn = -1;
  auto consider = [&](PrimId prim, int ci, double t) {
    if (t > cp) {
      cp = t;
      cp_end = prim;
      cp_end_conn = ci;
    }
  };
  for (PrimId id = 0; id < static_cast<PrimId>(n_prims); ++id) {
    const auto& p = nl_->prim(id);
    if (p.kind == PrimKind::Output) {
      consider(id, crit_conn[static_cast<std::size_t>(id)], arrival[static_cast<std::size_t>(id)]);
    } else if (p.kind == PrimKind::Ff || p.kind == PrimKind::Bram) {
      const double setup = p.kind == PrimKind::Ff ? opt_.ff_setup_ps : opt_.bram_setup_ps;
      for (int ci : conns_into[static_cast<std::size_t>(id)]) {
        const Connection& c = connections_[static_cast<std::size_t>(ci)];
        consider(id, ci, arrival[static_cast<std::size_t>(c.src)] + conn_delay(c).total + setup);
      }
    }
  }

  TimingResult result;
  result.critical_path_ps = cp;
  result.fmax_mhz = cp > 0.0 ? 1e6 / cp : 0.0;

  // Reconstruct the critical path and its resource breakdown.
  if (cp_end >= 0) {
    PrimId cur = cp_end;
    int ci = cp_end_conn;
    result.cp_prims.push_back(cur);
    int guard = 0;
    while (ci >= 0 && guard++ < static_cast<int>(n_prims)) {
      const Connection& c = connections_[static_cast<std::size_t>(ci)];
      const ArcDelay d = conn_delay(c);
      for (std::size_t k = 0; k < d.by_kind.size(); ++k)
        result.cp_breakdown[k] += d.by_kind[k];
      cur = c.src;
      result.cp_prims.push_back(cur);
      const auto& p = nl_->prim(cur);
      const double temp = temp_at(block_tile(cur));
      if (p.kind == PrimKind::Lut) {
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Lut)] +=
            dev.delay_ps(ResourceKind::Lut, temp);
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::LocalMux)] +=
            dev.delay_ps(ResourceKind::LocalMux, temp);
      } else if (p.kind == PrimKind::Dsp) {
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Dsp)] +=
            dev.delay_ps(ResourceKind::Dsp, temp);
      } else if (p.kind == PrimKind::Bram) {
        result.cp_breakdown[static_cast<std::size_t>(ResourceKind::Bram)] +=
            dev.delay_ps(ResourceKind::Bram, temp);
      }
      ci = crit_conn[static_cast<std::size_t>(cur)];
    }
    std::reverse(result.cp_prims.begin(), result.cp_prims.end());
  }
  return result;
}

TimingResult TimingAnalyzer::analyze_uniform(const coffe::DeviceModel& dev,
                                             double temp_c) const {
  const std::vector<double> temps(static_cast<std::size_t>(grid_->num_tiles()), temp_c);
  return analyze(dev, temps);
}

}  // namespace taf::timing

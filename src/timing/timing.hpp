#pragma once
// Block-level static timing analysis with per-tile temperatures.
//
// This is the paper's modified VPR timing analyzer: every delay element
// (LUT, mux, wire SB driver, BRAM, DSP) is evaluated from the
// characterized DeviceModel at the temperature of the tile it physically
// occupies, so the same netlist yields different critical paths at
// different temperature maps — the paper stresses that the entire
// netlist must be re-probed because the critical path itself moves.

#include <array>
#include <string>
#include <vector>

#include "arch/fpga_grid.hpp"
#include "coffe/device_model.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/router.hpp"
#include "route/rr_graph.hpp"

namespace taf::timing {

struct TimingOptions {
  double ff_setup_ps = 30.0;
  double ff_clk_to_q_ps = 45.0;
  double bram_setup_ps = 60.0;
  double io_delay_ps = 0.0;
};

/// Result of one STA pass.
struct TimingResult {
  double critical_path_ps = 0.0;
  double fmax_mhz = 0.0;
  /// Delay contribution of each resource kind on the critical path [ps]
  /// (indexed by coffe::ResourceKind).
  std::array<double, coffe::kNumResourceKinds> cp_breakdown{};
  /// Primitives on the critical path, launch to capture.
  std::vector<netlist::PrimId> cp_prims;

  /// Share of the critical path spent in a resource kind.
  double cp_share(coffe::ResourceKind k) const {
    return critical_path_ps > 0.0
               ? cp_breakdown[static_cast<std::size_t>(k)] / critical_path_ps
               : 0.0;
  }
};

/// Bound view of a fully implemented design (netlist through routing).
class TimingAnalyzer {
 public:
  TimingAnalyzer(const netlist::Netlist& nl, const pack::PackedNetlist& packed,
                 const place::Placement& pl, const route::RrGraph& rr,
                 const route::RouteResult& routes, const arch::FpgaGrid& grid,
                 TimingOptions opt = {});

  /// STA with one temperature per tile (indexed by FpgaGrid::index_of).
  TimingResult analyze(const coffe::DeviceModel& dev,
                       const std::vector<double>& tile_temp_c) const;

  /// STA with a uniform junction temperature (the conventional corner).
  TimingResult analyze_uniform(const coffe::DeviceModel& dev, double temp_c) const;

 private:
  struct Connection {
    netlist::PrimId src;
    netlist::PrimId dst;
    int dst_pin;
    bool same_block;
    /// Anchor tiles of the wires on the routed path (SB hops).
    std::vector<arch::TilePos> wire_tiles;
  };

  const netlist::Netlist* nl_;
  const pack::PackedNetlist* packed_;
  const place::Placement* pl_;
  const arch::FpgaGrid* grid_;
  TimingOptions opt_;
  std::vector<Connection> connections_;
  std::vector<netlist::PrimId> topo_;
};

}  // namespace taf::timing

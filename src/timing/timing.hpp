#pragma once
// Block-level static timing analysis with per-tile temperatures.
//
// This is the paper's modified VPR timing analyzer: every delay element
// (LUT, mux, wire SB driver, BRAM, DSP) is evaluated from the
// characterized DeviceModel at the temperature of the tile it physically
// occupies, so the same netlist yields different critical paths at
// different temperature maps — the paper stresses that the entire
// netlist must be re-probed because the critical path itself moves.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/fpga_grid.hpp"
#include "coffe/device_model.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/router.hpp"
#include "route/rr_graph.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace taf::timing {

struct TimingOptions {
  units::Picoseconds ff_setup_ps{30.0};
  units::Picoseconds ff_clk_to_q_ps{45.0};
  units::Picoseconds bram_setup_ps{60.0};
  units::Picoseconds io_delay_ps{0.0};
};

/// Result of one STA pass.
struct TimingResult {
  units::Picoseconds critical_path_ps{0.0};
  units::Megahertz fmax_mhz{0.0};
  /// Delay contribution of each resource kind on the critical path [ps]
  /// (indexed by coffe::ResourceKind; bulk per-kind map, raw double by
  /// design — see DESIGN.md section 9).
  std::array<double, coffe::kNumResourceKinds> cp_breakdown{};
  /// Primitives on the critical path, launch to capture.
  std::vector<netlist::PrimId> cp_prims;

  /// Share of the critical path spent in a resource kind.
  double cp_share(coffe::ResourceKind k) const {
    return critical_path_ps.value() > 0.0
               ? cp_breakdown[static_cast<std::size_t>(k)] / critical_path_ps.value()
               : 0.0;
  }
};

/// Work counters of an IncrementalSta session, cumulative across its
/// analyze() calls (resettable — core::guardband() uses the deltas to
/// report per-iteration work).
struct StaCounters {
  /// Connection delays re-derived from the DeviceModel because a touched
  /// tile's temperature moved past the session's refresh predicate.
  std::uint64_t edges_reevaluated = 0;
  /// Connection delays served from the per-connection cache while
  /// recomputing an arrival or capture time.
  std::uint64_t delay_cache_hits = 0;
};

class TimingAnalyzer;

/// Immutable adjacency/geometry shared by every IncrementalSta session
/// over one analyzer. Built once in the TimingAnalyzer constructor —
/// guardband() creates one session per call, so the session constructor
/// must only allocate mutable state, not rebuild topology.
struct IncrementalTopology {
  /// One entry of the capture scan, mirroring the full path's order:
  /// prim-id ascending; FF/BRAM expand to one entry per incoming
  /// connection, primary outputs to a single arrival entry (conn == -1).
  struct CaptureEntry {
    netlist::PrimId prim;
    int conn;                     ///< capture connection, or -1 for a primary output
    units::Picoseconds setup_ps;  ///< 0 for outputs
  };

  int n_tiles_ = 0;
  // Flat tile indices (not TilePos); all per-prim and per-tile lists are
  // CSR to avoid one allocation per primitive. Connection endpoints and
  // primitive kinds are copied into dense arrays — the propagation loop
  // must not stride through Connection (embedded vector) or Primitive
  // (embedded strings) records.
  std::vector<netlist::PrimKind> prim_kind_;    ///< kind of each primitive
  std::vector<int> prim_tile_;                  ///< tile of each primitive's block
  std::vector<netlist::PrimId> conn_src_;       ///< source prim per conn
  std::vector<netlist::PrimId> conn_dst_;       ///< dest prim per conn
  std::vector<char> conn_same_block_;           ///< intra-block (feedback) conn
  std::vector<int> conn_in_flat_;               ///< incoming conns per prim, CSR
  std::vector<int> conn_in_start_;
  std::vector<int> conn_out_flat_;              ///< outgoing conns per prim, CSR
  std::vector<int> conn_out_start_;
  std::vector<int> conn_src_tile_;              ///< source tile per conn
  std::vector<int> conn_dst_tile_;              ///< dest tile per conn
  /// Propagation edges whose combinational source sits later in topo_
  /// than their destination (DSP feedback: topo_order() does not gate on
  /// DSP inputs). The full pass reads such a source's arrival before it
  /// is computed — i.e. its per-call initial value 0 — so a session
  /// must pin the contribution to 0 rather than use the cached arrival.
  std::vector<char> conn_src_frozen_;
  std::vector<int> wire_tile_flat_;             ///< all conns' wire tiles, CSR
  std::vector<int> wire_tile_start_;            ///< CSR offsets into wire_tile_flat_
  std::vector<int> tile_conn_flat_;             ///< conns touching a tile, CSR
  std::vector<int> tile_conn_start_;
  std::vector<netlist::PrimId> tile_prim_flat_; ///< tile-delayed prims, CSR
  std::vector<int> tile_prim_start_;
  std::vector<CaptureEntry> captures_;
  std::vector<int> capture_of_conn_;            ///< conn -> captures_ index or -1

  void build(const TimingAnalyzer& an);
};

/// Bound view of a fully implemented design (netlist through routing).
class TimingAnalyzer {
 public:
  TimingAnalyzer(const netlist::Netlist& nl, const pack::PackedNetlist& packed,
                 const place::Placement& pl, const route::RrGraph& rr,
                 const route::RouteResult& routes, const arch::FpgaGrid& grid,
                 TimingOptions opt = {});

  /// STA with one temperature per tile (indexed by FpgaGrid::index_of).
  TimingResult analyze(const coffe::DeviceModel& dev,
                       const std::vector<double>& tile_temp_c) const;

  /// STA with a uniform junction temperature (the conventional corner).
  TimingResult analyze_uniform(const coffe::DeviceModel& dev, units::Celsius temp) const;

 private:
  struct Connection {
    netlist::PrimId src;
    netlist::PrimId dst;
    int dst_pin;
    bool same_block;
    /// Anchor tiles of the wires on the routed path (SB hops).
    std::vector<arch::TilePos> wire_tiles;
  };

  friend class IncrementalSta;
  friend struct IncrementalTopology;

  const netlist::Netlist* nl_;
  const pack::PackedNetlist* packed_;
  const place::Placement* pl_;
  const arch::FpgaGrid* grid_;
  TimingOptions opt_;
  std::vector<Connection> connections_;
  std::vector<netlist::PrimId> topo_;
  IncrementalTopology inc_topo_;  ///< built last in the constructor
};

/// Incremental re-analysis session over one (analyzer, device) pair.
///
/// Algorithm 1 re-times the same design at a sequence of nearby
/// temperature maps. A session caches, between analyze() calls: the
/// fanin/fanout adjacency (the full path rebuilds it per call), per-tile
/// delay tables for every resource kind, per-connection delay totals, and
/// the arrival/critical-arc state — then repropagates arrival times only
/// downstream of the frontier of connections whose delay actually
/// changed. Evaluation order and arithmetic mirror
/// TimingAnalyzer::analyze() expression for expression, so in Exact mode
/// the results are bit-identical to a full recompute (DESIGN.md sec. 8).
///
/// Not thread-safe; sessions are cheap and task-local (one per
/// guardband() call).
class IncrementalSta {
 public:
  enum class Mode {
    /// Refresh a tile's delays whenever its temperature changed at all.
    /// Results are bitwise equal to TimingAnalyzer::analyze().
    Exact,
    /// Freeze a tile's delays until its temperature drifts more than
    /// epsilon_c from the value they were derived at. Approximate: the
    /// reported critical path can be stale by up to epsilon_c times the
    /// delay/temperature slope per element on the path.
    Quantized,
  };

  IncrementalSta(const TimingAnalyzer& analyzer, const coffe::DeviceModel& dev,
                 Mode mode = Mode::Exact, units::Kelvin epsilon = units::Kelvin{0.05});

  /// Re-analyze at a new temperature map. with_critical_path controls
  /// whether cp_prims/cp_breakdown are reconstructed (the in-loop callers
  /// only need fmax).
  TimingResult analyze(const std::vector<double>& tile_temp_c,
                       bool with_critical_path = true);

  const StaCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }
  Mode mode() const { return mode_; }
  units::Kelvin epsilon() const { return units::Kelvin{eps_}; }

 private:
  double tile_delay(coffe::ResourceKind k, int tile) const {
    return tile_delay_[static_cast<std::size_t>(k) * static_cast<std::size_t>(n_tiles_) +
                       static_cast<std::size_t>(tile)];
  }
  void refresh_tile(int tile, double temp_c);
  double conn_delay_total(int ci) const;
  void reconstruct_critical_path(TimingResult& result) const;

  using CaptureEntry = IncrementalTopology::CaptureEntry;

  const TimingAnalyzer* an_;
  const coffe::DeviceModel* dev_;
  Mode mode_;
  double eps_;
  int n_tiles_ = 0;

  // Per-kind linear delay fits copied out of the device (evaluating the
  // copy is the same arithmetic as DeviceModel::delay_ps).
  std::array<util::LinearFit, coffe::kNumResourceKinds> fit_{};

  // Views into the analyzer's prebuilt IncrementalTopology (immutable,
  // shared by all sessions; a session allocates only the state below).
  const std::vector<netlist::PrimKind>& prim_kind_;
  const std::vector<int>& prim_tile_;
  const std::vector<netlist::PrimId>& conn_src_;
  const std::vector<netlist::PrimId>& conn_dst_;
  const std::vector<char>& conn_same_block_;
  const std::vector<int>& conn_in_flat_;
  const std::vector<int>& conn_in_start_;
  const std::vector<int>& conn_out_flat_;
  const std::vector<int>& conn_out_start_;
  const std::vector<int>& conn_src_tile_;
  const std::vector<int>& conn_dst_tile_;
  const std::vector<char>& conn_src_frozen_;
  const std::vector<int>& wire_tile_flat_;
  const std::vector<int>& wire_tile_start_;
  const std::vector<int>& tile_conn_flat_;
  const std::vector<int>& tile_conn_start_;
  const std::vector<netlist::PrimId>& tile_prim_flat_;
  const std::vector<int>& tile_prim_start_;
  const std::vector<CaptureEntry>& captures_;
  const std::vector<int>& capture_of_conn_;

  // Cached analysis state (valid after the first analyze()).
  std::vector<double> base_temp_;     ///< temperature each tile's delays use
  std::vector<double> tile_delay_;    ///< [kind][tile] delay table [ps]
  std::vector<double> conn_total_;    ///< cached connection delay totals [ps]
  std::vector<double> arrival_;
  std::vector<int> crit_conn_;
  std::vector<double> capture_val_;   ///< cached data-arrival per capture entry
  bool primed_ = false;
  double cached_cp_ = 0.0;
  netlist::PrimId cached_cp_end_ = -1;
  int cached_cp_end_conn_ = -1;

  // Per-call scratch.
  std::vector<char> conn_dirty_;
  std::vector<char> node_pending_;

  StaCounters counters_;
};

}  // namespace taf::timing

#include "activity/activity.hpp"

#include <cassert>
#include <cmath>

namespace taf::activity {

namespace {

using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;
using netlist::PrimKind;
using netlist::Primitive;

/// Exact LUT output probability under input independence: sum the
/// probability mass of the onset minterms.
double lut_prob(const Primitive& lut, const std::vector<SignalStats>& stats) {
  const int k = static_cast<int>(lut.inputs.size());
  const int minterms = 1 << k;
  double p = 0.0;
  for (int a = 0; a < minterms; ++a) {
    if (!((lut.truth >> a) & 1ULL)) continue;
    double m = 1.0;
    for (int i = 0; i < k; ++i) {
      const NetId in = lut.inputs[static_cast<std::size_t>(i)];
      const double pi = in == kNoNet ? 0.0 : stats[static_cast<std::size_t>(in)].prob;
      m *= ((a >> i) & 1) ? pi : (1.0 - pi);
    }
    p += m;
  }
  return p;
}

/// Probability that the Boolean difference df/dx_i is 1: over all
/// assignments of the other inputs, the function differs in x_i.
double boolean_difference_prob(const Primitive& lut, int var,
                               const std::vector<SignalStats>& stats) {
  const int k = static_cast<int>(lut.inputs.size());
  const int minterms = 1 << k;
  double p = 0.0;
  for (int a = 0; a < minterms; ++a) {
    if ((a >> var) & 1) continue;  // enumerate with x_var = 0
    const int b = a | (1 << var);
    const bool f0 = (lut.truth >> a) & 1ULL;
    const bool f1 = (lut.truth >> b) & 1ULL;
    if (f0 == f1) continue;
    double m = 1.0;
    for (int i = 0; i < k; ++i) {
      if (i == var) continue;
      const NetId in = lut.inputs[static_cast<std::size_t>(i)];
      const double pi = in == kNoNet ? 0.0 : stats[static_cast<std::size_t>(in)].prob;
      m *= ((a >> i) & 1) ? pi : (1.0 - pi);
    }
    p += m;
  }
  return p;
}

}  // namespace

std::vector<SignalStats> estimate(const Netlist& nl, const ActivityOptions& opt) {
  std::vector<SignalStats> stats(nl.nets().size());

  for (netlist::PrimId id : nl.topo_order()) {
    const Primitive& p = nl.prim(id);
    if (p.output == kNoNet) continue;
    SignalStats& out = stats[static_cast<std::size_t>(p.output)];
    switch (p.kind) {
      case PrimKind::Input:
        out.prob = opt.input_prob;
        out.density = opt.input_density;
        break;
      case PrimKind::Ff: {
        // Lag-one filter: the FF samples its input once per cycle, so its
        // output density is bounded by the input's temporal correlation.
        const NetId in = p.inputs.empty() ? kNoNet : p.inputs[0];
        const SignalStats src = in == kNoNet ? SignalStats{} : stats[static_cast<std::size_t>(in)];
        out.prob = src.prob;
        out.density = std::min(src.density, 2.0 * src.prob * (1.0 - src.prob));
        break;
      }
      case PrimKind::Bram:
      case PrimKind::Dsp:
        out.prob = 0.5;
        out.density = opt.hard_block_density;
        break;
      case PrimKind::Lut: {
        out.prob = lut_prob(p, stats);
        double d = 0.0;
        for (int i = 0; i < static_cast<int>(p.inputs.size()); ++i) {
          const NetId in = p.inputs[static_cast<std::size_t>(i)];
          if (in == kNoNet) continue;
          d += boolean_difference_prob(p, i, stats) * stats[static_cast<std::size_t>(in)].density;
        }
        // Transitions cannot exceed what the output value distribution
        // supports within a clock cycle (glitch-free bound x2).
        out.density = std::min(d, 4.0 * out.prob * (1.0 - out.prob) + 0.02);
        break;
      }
      case PrimKind::Output:
        break;  // drives no net
    }
  }
  return stats;
}

double average_density(const std::vector<SignalStats>& stats) {
  if (stats.empty()) return 0.0;
  double s = 0.0;
  for (const SignalStats& st : stats) s += st.density;
  return s / static_cast<double>(stats.size());
}

void serialize(const std::vector<SignalStats>& stats, util::codec::Encoder& enc) {
  enc.u64(stats.size());
  for (const SignalStats& st : stats) {
    enc.f64(st.prob);
    enc.f64(st.density);
  }
}

std::vector<SignalStats> deserialize(util::codec::Decoder& dec) {
  std::vector<SignalStats> stats;
  const std::uint64_t n = dec.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    SignalStats st;
    st.prob = dec.f64();
    st.density = dec.f64();
    stats.push_back(st);
  }
  return stats;
}

}  // namespace taf::activity

#pragma once
// ACE-like activity estimation (Lamoureux & Wilton, FPL'06).
//
// Propagates static signal probabilities and transition densities through
// the LUT network in topological order. LUT probabilities are computed
// exactly from the truth table under the input-independence assumption;
// transition densities use the Boolean-difference formulation
//   D(y) = sum_i P(df/dx_i) * D(x_i).
// Flip-flop outputs follow the lag-one filter model.

#include <vector>

#include "netlist/netlist.hpp"
#include "util/codec.hpp"

namespace taf::activity {

struct SignalStats {
  double prob = 0.5;     ///< static probability of logic 1
  double density = 0.5;  ///< expected transitions per clock cycle
};

struct ActivityOptions {
  double input_prob = 0.5;
  double input_density = 0.5;   ///< primary inputs toggle every other cycle
  double hard_block_density = 0.40;  ///< BRAM/DSP output activity
};

/// Per-net statistics, indexed by NetId.
std::vector<SignalStats> estimate(const netlist::Netlist& nl,
                                  const ActivityOptions& opt = {});

/// Average switching density over all nets (the design's alpha).
double average_density(const std::vector<SignalStats>& stats);

/// Artifact codec (util/codec.hpp): exact round-trip, byte-identical on
/// re-serialization (probabilities/densities through the f64 bit path).
void serialize(const std::vector<SignalStats>& stats, util::codec::Encoder& enc);
std::vector<SignalStats> deserialize(util::codec::Decoder& dec);

}  // namespace taf::activity

#pragma once
// Dynamic-workload guardbanding on top of the transient thermal engine
// (DESIGN.md section 13).
//
// Three pieces:
//   * ActivityTrace — a piecewise-constant per-block utilization
//     schedule. This header/dynamic.cpp pair is the single sanctioned
//     owner of the trace's text and wire representations (tools/taf-lint
//     rule trace-codec-seam): everyone else goes through parse_text /
//     to_text / serialize / deserialize / the envelope helpers, so the
//     format cannot fork the way raw-serialization protects artifacts.
//   * DynamicGuardband — replays a trace through thermal::TransientEngine
//     over one implemented design, re-times the design at each sampled
//     temperature field (IncrementalSta, Exact mode — bit-identical to a
//     full STA), and emits the time-resolved safe fmax plus throttle
//     decisions. A replay is a pure function of (implementation, device,
//     options, trace): bit-identical on every rerun, which is what the
//     guardband_trace service kind's determinism contract pins.
//   * allocate_tasks — the greedy Hung-style task-to-tile allocator:
//     place N kernels on one fabric to minimize peak temperature.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "coffe/device_model.hpp"
#include "core/flow.hpp"
#include "thermal/thermal_grid.hpp"
#include "thermal/transient.hpp"
#include "util/codec.hpp"
#include "util/units.hpp"

namespace taf::core {

/// Codec-envelope kind of a serialized ActivityTrace.
inline constexpr std::string_view kTraceKind = "activity-trace";

/// Hard structural caps: deserialization rejects anything larger before
/// allocating (the oversized-count arm of the fuzz corpus).
inline constexpr int kMaxTraceBlocks = 256;
inline constexpr int kMaxTraceSegments = 4096;
/// Largest per-block utilization; mirrors the service's activity-scale
/// domain (overdrive beyond 1.0 models activity hotter than the
/// characterized estimate).
inline constexpr double kMaxTraceUtilization = 100.0;

/// One constant-utilization interval. Segments tile [0, duration())
/// back to back; each records its absolute *end* time, so timestamps
/// must be strictly increasing — the canonical malformed-input case.
struct TraceSegment {
  units::Seconds t_end{0.0};
  /// One utilization per block, in [0, kMaxTraceUtilization].
  std::vector<double> utilization;

  bool operator==(const TraceSegment&) const = default;
};

/// Piecewise-constant per-block utilization schedule.
///
/// Text form (strict; parse_text round-trips to_text bit-exactly):
///
///   taf-trace v1
///   blocks 2
///   0.005 1 0.25
///   0.01 0.1 1
///
/// Line 1 is the magic+version, line 2 the block count, then one line
/// per segment: the end timestamp followed by `blocks` utilizations.
/// Blank lines and `#` comment lines are ignored.
struct ActivityTrace {
  int blocks = 1;
  std::vector<TraceSegment> segments;

  bool operator==(const ActivityTrace&) const = default;

  /// End time of the last segment (the trace's total duration).
  units::Seconds duration() const {
    return segments.empty() ? units::Seconds{0.0} : segments.back().t_end;
  }

  /// Semantic validation: block count and segment count within the caps,
  /// at least one segment, strictly increasing positive finite end
  /// times, per-segment utilization width == blocks, every utilization
  /// finite and in [0, kMaxTraceUtilization]. Throws
  /// std::invalid_argument naming the first offense.
  void validate() const;

  /// A single-block square wave: `cycles` periods of `period`, each
  /// spending duty * period at utilization `hi` then the rest at `lo`.
  /// duty in (0, 1] (duty == 1 emits one hi segment per period).
  static ActivityTrace duty_cycle(int cycles, units::Seconds period, double duty,
                                  double hi, double lo);

  std::string to_text() const;
  /// Parses the text form; throws std::invalid_argument on any defect
  /// (bad header, token garbage, count over the caps, or anything
  /// validate() rejects).
  static ActivityTrace parse_text(std::string_view text);

  /// Codec payload (DESIGN.md section 10 layout rules). deserialize
  /// rejects structural damage — truncation, counts over the caps — with
  /// codec::Error but does NOT validate() semantics, so a protocol
  /// decoder can classify a well-formed-but-out-of-domain trace (NaN
  /// utilization, non-monotone end times) as a bad parameter rather than
  /// a malformed frame. replay() revalidates regardless.
  void serialize(util::codec::Encoder& enc) const;
  static ActivityTrace deserialize(util::codec::Decoder& dec);

  /// Full codec envelope of kind kTraceKind (what the artifact store or
  /// a file on disk holds). from_envelope unwraps, decodes, requires the
  /// payload be consumed exactly, and validate()s — a returned trace is
  /// always usable.
  std::string to_envelope() const;
  static ActivityTrace from_envelope(std::string_view envelope);
};

struct DynamicGuardbandOptions {
  units::Celsius t_amb_c{25.0};
  /// Safety margin applied to the sampled temperature field before
  /// re-timing (the same delta-T pricing as Algorithm 1's final margin).
  units::Kelvin margin_c{1.0};
  /// Junction ceiling: a sample whose margin-applied peak exceeds this
  /// is flagged throttled and its dwell accrues throttled time.
  units::Celsius throttle_c{85.0};
  /// ambient_c and tile_edge_um are overridden from t_amb_c / the
  /// implementation's architecture, mirroring guardband().
  thermal::ThermalConfig thermal;
  thermal::TransientOptions transient;
  /// Temperature/fmax samples recorded per trace segment (>= 1); the
  /// transient engine advances in samples_per_segment equal sub-dwells.
  int samples_per_segment = 4;
  /// Multiplier on the base power map (the guardband() metamorphic seam).
  double power_scale = 1.0;
  /// Which trace block drives each tile (-1 = background: always at
  /// utilization 1). Empty means every tile follows block 0 — the
  /// whole-device traces the service replays. Sized to the tile count
  /// otherwise, with every entry < the trace's block count.
  std::vector<int> tile_block;
};

/// One recorded instant of a replay.
struct DynamicSample {
  double time_s = 0.0;       ///< trace time at the sample
  double peak_temp_c = 0.0;  ///< hottest tile (no margin)
  double mean_temp_c = 0.0;
  double fmax_mhz = 0.0;     ///< safe frequency at temps + margin_c
  bool throttled = false;    ///< margin-applied peak above throttle_c
};

struct DynamicResult {
  std::vector<DynamicSample> samples;  ///< t=0 plus one per sub-dwell
  units::Celsius peak_temp_c{0.0};     ///< max over the whole replay
  units::Megahertz min_fmax_mhz{0.0};  ///< sustained safe frequency
  units::Seconds throttled_s{0.0};     ///< dwell spent above throttle_c
  thermal::TransientStats stats;
};

/// Trace replay engine over one implemented design. Holds the thermal
/// grid and the full-utilization base power map (computed once, at the
/// uniform-ambient priming fmax like guardband()'s first iteration);
/// replay() scales that map by each segment's per-block utilization.
/// The implementation and device must outlive the engine. replay() is
/// const and allocates only task-local state, so one engine may serve
/// concurrent replays (the service's admission groups).
class DynamicGuardband {
 public:
  DynamicGuardband(const Implementation& impl, const coffe::DeviceModel& dev,
                   DynamicGuardbandOptions opt = {});

  /// Replay a validated trace. Throws std::invalid_argument when the
  /// trace fails validate() or its block count does not cover
  /// options().tile_block. Folds the transient work into
  /// thread_flow_counters() (transient_steps / transient_cg_iterations).
  DynamicResult replay(const ActivityTrace& trace) const;

  const DynamicGuardbandOptions& options() const { return opt_; }
  const thermal::ThermalGrid& grid() const { return grid_; }
  /// Full-utilization per-tile power map [W] the replay scales.
  const std::vector<double>& base_power_w() const { return base_power_w_; }
  /// Priming frequency the base power map was computed at.
  units::Megahertz priming_fmax_mhz() const { return priming_fmax_mhz_; }

 private:
  const Implementation& impl_;
  const coffe::DeviceModel& dev_;
  DynamicGuardbandOptions opt_;
  thermal::ThermalGrid grid_;
  thermal::TransientEngine engine_;
  std::vector<double> base_power_w_;
  units::Megahertz priming_fmax_mhz_{0.0};
};

/// One kernel to place: its active power, spread uniformly over a
/// near-square footprint of `tiles` tiles.
struct TaskSpec {
  units::Watts power_w{0.0};
  int tiles = 1;
};

struct AllocatorOptions {
  /// Anchor-grid stride when scanning candidate placements (1 = every
  /// position). Purely a cost knob; results stay deterministic.
  int anchor_stride = 1;
};

struct Allocation {
  /// Task index owning each tile, -1 for unassigned background.
  std::vector<int> tile_block;
  /// Steady-state peak of the placed power map at full utilization — an
  /// upper bound on any transient excursion of the same schedule.
  units::Celsius peak_temp_c{0.0};
  /// Candidate steady solves the greedy scan performed (cost diagnostic).
  std::uint64_t candidate_solves = 0;
};

/// Greedy Hung-style thermal-aware allocator: tasks are placed in
/// descending power-density order; each takes the anchor position whose
/// tentative steady-state solve (background + already-placed + this
/// task) has the lowest peak temperature — hottest kernels claim the
/// thermally cheapest regions first, later kernels spread away from
/// them. Footprints are near-square rectangles scanned row-major on the
/// anchor grid; ties keep the first (lowest-anchor) candidate, so the
/// result is deterministic. background_power_w (empty = zeros) is the
/// always-on floor under every candidate solve. Throws
/// std::invalid_argument on malformed inputs and std::runtime_error when
/// a task cannot be placed without overlap.
Allocation allocate_tasks(const thermal::ThermalGrid& grid,
                          const std::vector<TaskSpec>& tasks,
                          const std::vector<double>& background_power_w = {},
                          const AllocatorOptions& opt = {});

}  // namespace taf::core

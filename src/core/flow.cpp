#include "core/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/stage_graph.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace taf::core {

const char* flow_phase_name(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::Pack: return "pack";
    case FlowPhase::Place: return "place";
    case FlowPhase::Route: return "route";
    case FlowPhase::Activity: return "activity";
    case FlowPhase::StaBuild: return "sta_build";
    case FlowPhase::Sta: return "sta";
    case FlowPhase::Power: return "power";
    case FlowPhase::Thermal: return "thermal";
  }
  return "unknown";
}

const char* incremental_mode_name(IncrementalMode mode) {
  switch (mode) {
    case IncrementalMode::Off: return "off";
    case IncrementalMode::Exact: return "exact";
    case IncrementalMode::Quantized: return "quantized";
  }
  return "unknown";
}

IncrementalMode default_incremental_mode() {
  static const IncrementalMode mode = [] {
    const char* env = util::env_cstr("TAF_INCREMENTAL");
    if (env == nullptr || *env == '\0') return IncrementalMode::Exact;
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (v == "off") return IncrementalMode::Off;
    if (v == "exact") return IncrementalMode::Exact;
    if (v == "quantized") return IncrementalMode::Quantized;
    util::log_warn("TAF_INCREMENTAL=%s not recognized (off|exact|quantized); using exact",
                   env);
    return IncrementalMode::Exact;
  }();
  return mode;
}

FlowCounters& thread_flow_counters() {
  thread_local FlowCounters counters;
  return counters;
}

namespace {
/// Forwards phase durations to an observer, if any; all state is local
/// to the running task, keeping implement()/guardband() re-entrant.
struct PhaseClock {
  explicit PhaseClock(const FlowObserver* obs) : obs_(obs) {}
  void mark(FlowPhase phase) {
    const double s = watch_.lap();
    if (obs_ != nullptr && obs_->on_phase) obs_->on_phase(phase, units::Seconds{s});
  }
  const FlowObserver* obs_;
  util::Stopwatch watch_;
};
}  // namespace

std::unique_ptr<Implementation> implement(const netlist::BenchmarkSpec& spec,
                                          const arch::ArchParams& arch,
                                          const ImplementOptions& opt) {
  // The monolithic pack -> place -> route -> activity -> STA-build body
  // now lives in the stage graph (core/stage_graph.cpp), which preserves
  // its exact computation order and RNG usage; opt.stage_hooks lets the
  // runner's artifact store substitute stored artifacts per stage.
  const FlowGraph graph = FlowGraph::standard(spec, arch, opt);
  FlowBuild build(spec, arch, opt);
  graph.run(build, opt.stage_hooks);
  return std::move(build.impl);
}

GuardbandResult guardband(const Implementation& impl, const coffe::DeviceModel& dev,
                          const GuardbandOptions& opt) {
  GuardbandResult result;
  PhaseClock clock(opt.observer);

  thermal::ThermalConfig tcfg = opt.thermal;
  tcfg.ambient_c = opt.t_amb_c;
  tcfg.tile_edge_um = impl.arch.tile_edge_um;
  const thermal::ThermalGrid tgrid(impl.grid, tcfg);

  const bool incremental = opt.incremental != IncrementalMode::Off;
  std::optional<timing::IncrementalSta> session;
  if (incremental) {
    session.emplace(*impl.sta, dev,
                    opt.incremental == IncrementalMode::Quantized
                        ? timing::IncrementalSta::Mode::Quantized
                        : timing::IncrementalSta::Mode::Exact,
                    opt.incremental_epsilon_c);
  }
  // In-loop analyses skip critical-path reconstruction (only fmax is
  // consumed); the margin analysis below reconstructs it.
  auto run_sta = [&](const std::vector<double>& t, bool with_cp) {
    return incremental ? session->analyze(t, with_cp) : impl.sta->analyze(dev, t);
  };

  // Conventional baseline: clock for the worst-case corner. Evaluated
  // through the session when incremental (Exact mode is bit-identical to
  // analyze_uniform, and the re-derived delay tables seed the cache).
  const auto n_tiles = static_cast<std::size_t>(impl.grid.num_tiles());
  result.baseline_fmax_mhz =
      incremental
          ? run_sta(std::vector<double>(n_tiles, opt.t_worst_c.value()),
                    /*with_cp=*/false)
                .fmax_mhz
          : impl.sta->analyze_uniform(dev, opt.t_worst_c).fmax_mhz;
  auto run_power = [&](double f_mhz, const std::vector<double>& t) {
    power::PowerBreakdown p = power::compute_power(
        dev, impl.nl, impl.packed, impl.placement, impl.rr, impl.routes,
        impl.activity, units::Megahertz{f_mhz}, t, impl.grid);
    if (opt.power_scale != 1.0) {
      for (double& w : p.tile_w) w *= opt.power_scale;
      p.dynamic_w *= opt.power_scale;
      p.leakage_w *= opt.power_scale;
    }
    return p;
  };

  // Algorithm 1.
  std::vector<double> temps(n_tiles, opt.t_amb_c.value());
  timing::TimingResult sta = run_sta(temps, /*with_cp=*/false);
  double fmax = sta.fmax_mhz.value();
  clock.mark(FlowPhase::Sta);
  // The priming analysis above evaluated every edge once; the loop stats
  // report only the incremental work the iterations themselves cost.
  if (session) session->reset_counters();

  result.converged = opt.max_iterations <= 0;  // vacuously, if no loop ran
  std::uint64_t last_edges = 0;
  std::uint64_t last_hits = 0;
  for (int iter = 1; iter <= opt.max_iterations; ++iter) {
    result.iterations = iter;
    const power::PowerBreakdown power = run_power(fmax, temps);
    clock.mark(FlowPhase::Power);
    thermal::CgStats cg;
    // Warm-starting CG from the previous iterate is safe: the system is
    // SPD, so CG converges to the same solution from any starting point.
    const std::vector<double> new_temps =
        incremental ? tgrid.solve(power.tile_w, temps, &cg)
                    : tgrid.solve(power.tile_w, &cg);
    result.stats.cg_iterations += static_cast<std::uint64_t>(cg.iterations);
    if (cg.preconditioned) {
      result.stats.precond_cg_iterations += static_cast<std::uint64_t>(cg.iterations);
    }
    clock.mark(FlowPhase::Thermal);
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n_tiles; ++i) {
      max_delta = std::max(max_delta, std::fabs(new_temps[i] - temps[i]));
    }
    temps = new_temps;
    sta = run_sta(temps, /*with_cp=*/false);
    fmax = sta.fmax_mhz.value();
    clock.mark(FlowPhase::Sta);
    util::log_debug("guardband iter %d: fmax %.1f MHz, max dT %.3f C", iter, fmax,
                    max_delta);
    if (opt.observer != nullptr && opt.observer->on_iteration) {
      FlowObserver::IterationInfo info;
      info.iteration = iter;
      info.fmax_mhz = units::Megahertz{fmax};
      info.max_delta_c = units::Kelvin{max_delta};
      if (session) {
        info.edges_reevaluated = session->counters().edges_reevaluated - last_edges;
        info.delay_cache_hits = session->counters().delay_cache_hits - last_hits;
      }
      info.cg_iterations = static_cast<std::uint64_t>(cg.iterations);
      opt.observer->on_iteration(info);
    }
    if (session) {
      last_edges = session->counters().edges_reevaluated;
      last_hits = session->counters().delay_cache_hits;
    }
    if (max_delta < opt.delta_t_c.value()) {
      result.converged = true;
      break;
    }
  }
  if (session) {
    result.stats.edges_reevaluated = session->counters().edges_reevaluated;
    result.stats.delay_cache_hits = session->counters().delay_cache_hits;
  }
  if (!result.converged) {
    util::log_warn(
        "guardband(%s): not converged after %d iterations (max dT still >= %g C); "
        "result is not a thermal fixed point",
        impl.nl.name().c_str(), opt.max_iterations, opt.delta_t_c.value());
  }

  // Final margin: re-time at T + delta_T to absorb the convergence error.
  std::vector<double> margin_temps = temps;
  for (double& t : margin_temps) t += opt.delta_t_c.value();
  result.timing = run_sta(margin_temps, /*with_cp=*/true);
  result.fmax_mhz = result.timing.fmax_mhz;
  clock.mark(FlowPhase::Sta);

  // Report power at the operating point actually returned: the converged
  // temperature map and the margin-applied fmax. (The loop's last power
  // map belongs to the *previous* iterate, and is never computed at all
  // when max_iterations == 0.)
  result.power = run_power(result.fmax_mhz.value(), temps);
  clock.mark(FlowPhase::Power);
  result.tile_temp_c = std::move(temps);

  FlowCounters& fc = thread_flow_counters();
  ++fc.guardband_runs;
  if (!result.converged) ++fc.guardband_nonconverged;
  fc.sta_edges_reevaluated += result.stats.edges_reevaluated;
  fc.sta_delay_cache_hits += result.stats.delay_cache_hits;
  fc.thermal_cg_iterations += result.stats.cg_iterations;
  fc.thermal_precond_iterations += result.stats.precond_cg_iterations;

  util::Accumulator acc;
  for (double t : result.tile_temp_c) acc.add(t);
  result.peak_temp_c = units::Celsius{acc.max()};
  result.mean_temp_c = units::Celsius{acc.mean()};
  return result;
}

int select_grade(const std::vector<coffe::DeviceModel>& devices, units::Celsius t_min,
                 units::Celsius t_max) {
  if (devices.empty()) throw std::invalid_argument("select_grade: no devices");
  if (t_max < t_min) std::swap(t_min, t_max);
  // Degenerate range: the uniform expectation collapses to the point
  // delay (expected_cp_delay's integral would divide by zero).
  const auto expected = [&](const coffe::DeviceModel& dev) {
    return t_min == t_max ? dev.rep_cp_delay(t_min).value()
                          : dev.expected_cp_delay(t_min, t_max).value();
  };
  int best = 0;
  double best_d = expected(devices[0]);
  for (int i = 1; i < static_cast<int>(devices.size()); ++i) {
    const double d = expected(devices[static_cast<std::size_t>(i)]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace taf::core

#include "core/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace taf::core {

const char* flow_phase_name(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::Pack: return "pack";
    case FlowPhase::Place: return "place";
    case FlowPhase::Route: return "route";
    case FlowPhase::Activity: return "activity";
    case FlowPhase::StaBuild: return "sta_build";
    case FlowPhase::Sta: return "sta";
    case FlowPhase::Power: return "power";
    case FlowPhase::Thermal: return "thermal";
  }
  return "unknown";
}

namespace {
/// Forwards phase durations to an observer, if any; all state is local
/// to the running task, keeping implement()/guardband() re-entrant.
struct PhaseClock {
  explicit PhaseClock(const FlowObserver* obs) : obs_(obs) {}
  void mark(FlowPhase phase) {
    const double s = watch_.lap();
    if (obs_ != nullptr && obs_->on_phase) obs_->on_phase(phase, s);
  }
  const FlowObserver* obs_;
  util::Stopwatch watch_;
};
}  // namespace

std::unique_ptr<Implementation> implement(const netlist::BenchmarkSpec& spec,
                                          const arch::ArchParams& arch,
                                          const ImplementOptions& opt) {
  PhaseClock clock(opt.observer);
  util::Rng rng(opt.seed ^ std::hash<std::string>{}(spec.name));
  netlist::Netlist nl = netlist::generate(spec, rng);

  pack::PackedNetlist packed = pack::pack(nl, arch);
  const arch::FpgaGrid grid = arch::FpgaGrid::fit(packed.count(pack::BlockKind::Clb),
                                                  packed.count(pack::BlockKind::Bram),
                                                  packed.count(pack::BlockKind::Dsp));

  auto impl = std::make_unique<Implementation>(arch, std::move(nl), grid);
  impl->packed = std::move(packed);
  impl->packed.source = &impl->nl;
  clock.mark(FlowPhase::Pack);

  place::PlaceOptions popt;
  popt.seed = opt.seed;
  popt.effort = opt.place_effort;
  impl->placement = place::place(impl->packed, impl->grid, popt);
  clock.mark(FlowPhase::Place);

  impl->routes = route::route(impl->rr, impl->packed, impl->placement, opt.route);
  if (!impl->routes.success) {
    util::log_warn("implement(%s): routing left %d overused nodes after %d iterations",
                   spec.name.c_str(), impl->routes.overused_nodes,
                   impl->routes.iterations);
  }
  clock.mark(FlowPhase::Route);

  impl->activity = activity::estimate(impl->nl);
  clock.mark(FlowPhase::Activity);
  impl->sta = std::make_unique<timing::TimingAnalyzer>(
      impl->nl, impl->packed, impl->placement, impl->rr, impl->routes, impl->grid);
  clock.mark(FlowPhase::StaBuild);
  return impl;
}

GuardbandResult guardband(const Implementation& impl, const coffe::DeviceModel& dev,
                          const GuardbandOptions& opt) {
  GuardbandResult result;
  PhaseClock clock(opt.observer);

  // Conventional baseline: clock for the worst-case corner.
  result.baseline_fmax_mhz =
      impl.sta->analyze_uniform(dev, opt.t_worst_c).fmax_mhz;

  thermal::ThermalConfig tcfg = opt.thermal;
  tcfg.ambient_c = opt.t_amb_c;
  tcfg.tile_edge_um = impl.arch.tile_edge_um;
  const thermal::ThermalGrid tgrid(impl.grid, tcfg);

  // Algorithm 1.
  const auto n_tiles = static_cast<std::size_t>(impl.grid.num_tiles());
  std::vector<double> temps(n_tiles, opt.t_amb_c);
  timing::TimingResult sta = impl.sta->analyze(dev, temps);
  double fmax = sta.fmax_mhz;
  clock.mark(FlowPhase::Sta);

  for (int iter = 1; iter <= opt.max_iterations; ++iter) {
    result.iterations = iter;
    const power::PowerBreakdown power =
        power::compute_power(dev, impl.nl, impl.packed, impl.placement, impl.rr,
                             impl.routes, impl.activity, fmax, temps, impl.grid);
    clock.mark(FlowPhase::Power);
    const std::vector<double> new_temps = tgrid.solve(power.tile_w);
    clock.mark(FlowPhase::Thermal);
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n_tiles; ++i) {
      max_delta = std::max(max_delta, std::fabs(new_temps[i] - temps[i]));
    }
    temps = new_temps;
    sta = impl.sta->analyze(dev, temps);
    fmax = sta.fmax_mhz;
    clock.mark(FlowPhase::Sta);
    util::log_debug("guardband iter %d: fmax %.1f MHz, max dT %.3f C", iter, fmax,
                    max_delta);
    if (opt.observer != nullptr && opt.observer->on_iteration) {
      opt.observer->on_iteration(iter, fmax, max_delta);
    }
    if (max_delta < opt.delta_t_c) break;
  }

  // Final margin: re-time at T + delta_T to absorb the convergence error.
  std::vector<double> margin_temps = temps;
  for (double& t : margin_temps) t += opt.delta_t_c;
  result.timing = impl.sta->analyze(dev, margin_temps);
  result.fmax_mhz = result.timing.fmax_mhz;
  clock.mark(FlowPhase::Sta);

  // Report power at the operating point actually returned: the converged
  // temperature map and the margin-applied fmax. (The loop's last power
  // map belongs to the *previous* iterate, and is never computed at all
  // when max_iterations == 0.)
  result.power =
      power::compute_power(dev, impl.nl, impl.packed, impl.placement, impl.rr,
                           impl.routes, impl.activity, result.fmax_mhz, temps,
                           impl.grid);
  clock.mark(FlowPhase::Power);
  result.tile_temp_c = std::move(temps);

  util::Accumulator acc;
  for (double t : result.tile_temp_c) acc.add(t);
  result.peak_temp_c = acc.max();
  result.mean_temp_c = acc.mean();
  return result;
}

int select_grade(const std::vector<coffe::DeviceModel>& devices, double t_min_c,
                 double t_max_c) {
  if (devices.empty()) throw std::invalid_argument("select_grade: no devices");
  int best = 0;
  double best_d = devices[0].expected_cp_delay_ps(t_min_c, t_max_c);
  for (int i = 1; i < static_cast<int>(devices.size()); ++i) {
    const double d = devices[static_cast<std::size_t>(i)].expected_cp_delay_ps(t_min_c, t_max_c);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace taf::core

#include "core/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/stage_graph.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace taf::core {

const char* flow_phase_name(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::Pack: return "pack";
    case FlowPhase::Place: return "place";
    case FlowPhase::Route: return "route";
    case FlowPhase::Activity: return "activity";
    case FlowPhase::StaBuild: return "sta_build";
    case FlowPhase::Sta: return "sta";
    case FlowPhase::Power: return "power";
    case FlowPhase::Thermal: return "thermal";
  }
  return "unknown";
}

const char* incremental_mode_name(IncrementalMode mode) {
  switch (mode) {
    case IncrementalMode::Off: return "off";
    case IncrementalMode::Exact: return "exact";
    case IncrementalMode::Quantized: return "quantized";
  }
  return "unknown";
}

IncrementalMode default_incremental_mode() {
  static const IncrementalMode mode = [] {
    const char* env = util::env_cstr("TAF_INCREMENTAL");
    if (env == nullptr || *env == '\0') return IncrementalMode::Exact;
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (v == "off") return IncrementalMode::Off;
    if (v == "exact") return IncrementalMode::Exact;
    if (v == "quantized") return IncrementalMode::Quantized;
    util::log_warn("TAF_INCREMENTAL=%s not recognized (off|exact|quantized); using exact",
                   env);
    return IncrementalMode::Exact;
  }();
  return mode;
}

FlowCounters& thread_flow_counters() {
  thread_local FlowCounters counters;
  return counters;
}

std::unique_ptr<Implementation> implement(const netlist::BenchmarkSpec& spec,
                                          const arch::ArchParams& arch,
                                          const ImplementOptions& opt) {
  // The monolithic pack -> place -> route -> activity -> STA-build body
  // now lives in the stage graph (core/stage_graph.cpp), which preserves
  // its exact computation order and RNG usage; opt.stage_hooks lets the
  // runner's artifact store substitute stored artifacts per stage.
  const FlowGraph graph = FlowGraph::standard(spec, arch, opt);
  FlowBuild build(spec, arch, opt);
  graph.run(build, opt.stage_hooks);
  return std::move(build.impl);
}

namespace {

/// Per-corner state of the lockstep Algorithm 1 engine below. One corner
/// is exactly one historical guardband() call; the engine only changes
/// *when* each corner's thermal solve runs, never what it computes.
struct CornerState {
  const GuardbandOptions* opt = nullptr;
  GuardbandResult result;
  std::optional<thermal::ThermalGrid> tgrid;
  std::optional<timing::IncrementalSta> session;
  std::vector<double> temps;
  double fmax = 0.0;
  std::uint64_t last_edges = 0;
  std::uint64_t last_hits = 0;
  bool incremental = false;
  bool active = false;  ///< still inside the Algorithm 1 loop

  void emit_phase(FlowPhase phase, double seconds) const {
    if (opt->observer != nullptr && opt->observer->on_phase) {
      opt->observer->on_phase(phase, units::Seconds{seconds});
    }
  }
};

/// Algorithm 1 for a set of independent corners of one implementation,
/// advanced in lockstep. Every per-corner computation — baseline, priming,
/// power, STA, margin — is the expression-for-expression body of the
/// historical guardband() loop, so corner k's result is bit-identical to
/// a standalone guardband(impl, dev, opts[k]) call. share_thermal routes
/// the still-active corners' thermal solves through one batched stencil
/// traversal per iteration (ThermalGrid::solve_batch, itself pinned
/// bit-identical to per-corner solves); callers may only set it when every
/// corner uses the stencil backend with an incremental mode.
std::vector<GuardbandResult> guardband_lockstep(const Implementation& impl,
                                                const coffe::DeviceModel& dev,
                                                const std::vector<GuardbandOptions>& opts,
                                                bool share_thermal) {
  const auto n_tiles = static_cast<std::size_t>(impl.grid.num_tiles());
  std::vector<CornerState> corners(opts.size());
  util::Stopwatch watch;

  for (std::size_t k = 0; k < opts.size(); ++k) {
    CornerState& c = corners[k];
    const GuardbandOptions& opt = opts[k];
    c.opt = &opt;

    thermal::ThermalConfig tcfg = opt.thermal;
    tcfg.ambient_c = opt.t_amb_c;
    tcfg.tile_edge_um = impl.arch.tile_edge_um;
    c.tgrid.emplace(impl.grid, tcfg);

    c.incremental = opt.incremental != IncrementalMode::Off;
    if (c.incremental) {
      c.session.emplace(*impl.sta, dev,
                        opt.incremental == IncrementalMode::Quantized
                            ? timing::IncrementalSta::Mode::Quantized
                            : timing::IncrementalSta::Mode::Exact,
                        opt.incremental_epsilon_c);
    }

    // Conventional baseline: clock for the worst-case corner. Evaluated
    // through the session when incremental (Exact mode is bit-identical
    // to analyze_uniform, and the re-derived delay tables seed the cache).
    c.result.baseline_fmax_mhz =
        c.incremental
            ? c.session
                  ->analyze(std::vector<double>(n_tiles, opt.t_worst_c.value()),
                            /*with_critical_path=*/false)
                  .fmax_mhz
            : impl.sta->analyze_uniform(dev, opt.t_worst_c).fmax_mhz;

    // Priming analysis at a uniform ambient field.
    c.temps.assign(n_tiles, opt.t_amb_c.value());
    watch.lap();
    const timing::TimingResult sta =
        c.incremental ? c.session->analyze(c.temps, /*with_critical_path=*/false)
                      : impl.sta->analyze(dev, c.temps);
    c.fmax = sta.fmax_mhz.value();
    c.emit_phase(FlowPhase::Sta, watch.lap());
    // The priming analysis evaluated every edge once; the loop stats
    // report only the incremental work the iterations themselves cost.
    if (c.session) c.session->reset_counters();

    c.result.converged = opt.max_iterations <= 0;  // vacuously, if no loop runs
    c.active = opt.max_iterations > 0;
  }

  // In-loop analyses skip critical-path reconstruction (only fmax is
  // consumed); the margin analysis below reconstructs it.
  auto run_power = [&](const CornerState& c, double f_mhz,
                       const std::vector<double>& t) {
    power::PowerBreakdown p = power::compute_power(
        dev, impl.nl, impl.packed, impl.placement, impl.rr, impl.routes,
        impl.activity, units::Megahertz{f_mhz}, t, impl.grid);
    if (c.opt->power_scale != 1.0) {
      for (double& w : p.tile_w) w *= c.opt->power_scale;
      p.dynamic_w *= c.opt->power_scale;
      p.leakage_w *= c.opt->power_scale;
    }
    return p;
  };

  // Algorithm 1, all corners in lockstep. Corners drop out as they reach
  // their own fixed point or exhaust their own iteration budget.
  std::vector<std::size_t> live;
  std::vector<power::PowerBreakdown> powers(corners.size());
  std::vector<std::vector<double>> new_temps(corners.size());
  std::vector<thermal::CgStats> cg(corners.size());
  for (int iter = 1;; ++iter) {
    live.clear();
    for (std::size_t k = 0; k < corners.size(); ++k) {
      if (corners[k].active && iter <= corners[k].opt->max_iterations) {
        live.push_back(k);
      } else {
        corners[k].active = false;
      }
    }
    if (live.empty()) break;

    for (std::size_t k : live) {
      CornerState& c = corners[k];
      c.result.iterations = iter;
      watch.lap();
      powers[k] = run_power(c, c.fmax, c.temps);
      c.emit_phase(FlowPhase::Power, watch.lap());
    }

    // Warm-starting CG from the previous iterate is safe: the system is
    // SPD, so CG converges to the same solution from any starting point.
    if (share_thermal) {
      // One blocked stencil traversal per CG iteration serves every live
      // corner; the per-corner ambients only shift the solution.
      std::vector<std::vector<double>> batch_power, batch_init;
      std::vector<double> batch_amb;
      for (std::size_t k : live) {
        batch_power.push_back(powers[k].tile_w);
        batch_init.push_back(corners[k].temps);
        batch_amb.push_back(corners[k].opt->t_amb_c.value());
      }
      std::vector<thermal::CgStats> batch_cg;
      watch.lap();
      std::vector<std::vector<double>> batch_temps =
          corners[live.front()].tgrid->solve_batch(batch_power, batch_init, batch_amb,
                                                   &batch_cg);
      const double solve_s = watch.lap();
      for (std::size_t a = 0; a < live.size(); ++a) {
        const std::size_t k = live[a];
        new_temps[k] = std::move(batch_temps[a]);
        cg[k] = batch_cg[a];
        corners[k].emit_phase(FlowPhase::Thermal, solve_s);
      }
    } else {
      for (std::size_t k : live) {
        CornerState& c = corners[k];
        watch.lap();
        new_temps[k] = c.incremental ? c.tgrid->solve(powers[k].tile_w, c.temps, &cg[k])
                                     : c.tgrid->solve(powers[k].tile_w, &cg[k]);
        c.emit_phase(FlowPhase::Thermal, watch.lap());
      }
    }

    for (std::size_t k : live) {
      CornerState& c = corners[k];
      c.result.stats.cg_iterations += static_cast<std::uint64_t>(cg[k].iterations);
      if (cg[k].preconditioned) {
        c.result.stats.precond_cg_iterations +=
            static_cast<std::uint64_t>(cg[k].iterations);
      }
      double max_delta = 0.0;
      for (std::size_t i = 0; i < n_tiles; ++i) {
        max_delta = std::max(max_delta, std::fabs(new_temps[k][i] - c.temps[i]));
      }
      c.temps = new_temps[k];
      watch.lap();
      const timing::TimingResult sta =
          c.incremental ? c.session->analyze(c.temps, /*with_critical_path=*/false)
                        : impl.sta->analyze(dev, c.temps);
      c.fmax = sta.fmax_mhz.value();
      c.emit_phase(FlowPhase::Sta, watch.lap());
      util::log_debug("guardband iter %d: fmax %.1f MHz, max dT %.3f C", iter, c.fmax,
                      max_delta);
      if (c.opt->observer != nullptr && c.opt->observer->on_iteration) {
        FlowObserver::IterationInfo info;
        info.iteration = iter;
        info.fmax_mhz = units::Megahertz{c.fmax};
        info.max_delta_c = units::Kelvin{max_delta};
        if (c.session) {
          info.edges_reevaluated = c.session->counters().edges_reevaluated - c.last_edges;
          info.delay_cache_hits = c.session->counters().delay_cache_hits - c.last_hits;
        }
        info.cg_iterations = static_cast<std::uint64_t>(cg[k].iterations);
        c.opt->observer->on_iteration(info);
      }
      if (c.session) {
        c.last_edges = c.session->counters().edges_reevaluated;
        c.last_hits = c.session->counters().delay_cache_hits;
      }
      if (max_delta < c.opt->delta_t_c.value()) {
        c.result.converged = true;
        c.active = false;
      }
    }
  }

  std::vector<GuardbandResult> results;
  results.reserve(corners.size());
  for (std::size_t k = 0; k < corners.size(); ++k) {
    CornerState& c = corners[k];
    const GuardbandOptions& opt = *c.opt;
    if (c.session) {
      c.result.stats.edges_reevaluated = c.session->counters().edges_reevaluated;
      c.result.stats.delay_cache_hits = c.session->counters().delay_cache_hits;
    }
    if (!c.result.converged) {
      util::log_warn(
          "guardband(%s): not converged after %d iterations (max dT still >= %g C); "
          "result is not a thermal fixed point",
          impl.nl.name().c_str(), opt.max_iterations, opt.delta_t_c.value());
    }

    // Final margin: re-time at T + delta_T to absorb the convergence error.
    std::vector<double> margin_temps = c.temps;
    for (double& t : margin_temps) t += opt.delta_t_c.value();
    watch.lap();
    c.result.timing = c.incremental
                          ? c.session->analyze(margin_temps, /*with_critical_path=*/true)
                          : impl.sta->analyze(dev, margin_temps);
    c.result.fmax_mhz = c.result.timing.fmax_mhz;
    c.emit_phase(FlowPhase::Sta, watch.lap());

    // Report power at the operating point actually returned: the converged
    // temperature map and the margin-applied fmax. (The loop's last power
    // map belongs to the *previous* iterate, and is never computed at all
    // when max_iterations == 0.)
    watch.lap();
    c.result.power = run_power(c, c.result.fmax_mhz.value(), c.temps);
    c.emit_phase(FlowPhase::Power, watch.lap());
    c.result.tile_temp_c = std::move(c.temps);

    FlowCounters& fc = thread_flow_counters();
    ++fc.guardband_runs;
    if (!c.result.converged) ++fc.guardband_nonconverged;
    fc.sta_edges_reevaluated += c.result.stats.edges_reevaluated;
    fc.sta_delay_cache_hits += c.result.stats.delay_cache_hits;
    fc.thermal_cg_iterations += c.result.stats.cg_iterations;
    fc.thermal_precond_iterations += c.result.stats.precond_cg_iterations;

    util::Accumulator acc;
    for (double t : c.result.tile_temp_c) acc.add(t);
    c.result.peak_temp_c = units::Celsius{acc.max()};
    c.result.mean_temp_c = units::Celsius{acc.mean()};
    results.push_back(std::move(c.result));
  }
  return results;
}

}  // namespace

GuardbandResult guardband(const Implementation& impl, const coffe::DeviceModel& dev,
                          const GuardbandOptions& opt) {
  return std::move(guardband_lockstep(impl, dev, {opt}, /*share_thermal=*/false)[0]);
}

GuardbandOptions with_corner(const GuardbandOptions& base, const GuardbandCorner& c) {
  GuardbandOptions opt = base;
  opt.t_amb_c = c.t_amb_c;
  opt.power_scale = c.power_scale;
  return opt;
}

std::vector<GuardbandResult> guardband_batch(const Implementation& impl,
                                             const coffe::DeviceModel& dev,
                                             const GuardbandOptions& base,
                                             const std::vector<GuardbandCorner>& corners) {
  std::vector<GuardbandOptions> opts;
  opts.reserve(corners.size());
  for (const GuardbandCorner& c : corners) opts.push_back(with_corner(base, c));
  // The batched thermal path needs the stencil backend (the generic
  // oracle has no shared traversal) and warm starts (an incremental
  // mode); anything else runs the same lockstep loop with per-corner
  // solves, which is the sequential corner loop in every detail.
  const bool share = base.thermal.backend == thermal::ThermalBackend::Stencil &&
                     base.incremental != IncrementalMode::Off && opts.size() > 1;
  return guardband_lockstep(impl, dev, opts, share);
}

int select_grade(const std::vector<coffe::DeviceModel>& devices, units::Celsius t_min,
                 units::Celsius t_max) {
  if (devices.empty()) throw std::invalid_argument("select_grade: no devices");
  if (t_max < t_min) std::swap(t_min, t_max);
  // Degenerate range: the uniform expectation collapses to the point
  // delay (expected_cp_delay's integral would divide by zero).
  const auto expected = [&](const coffe::DeviceModel& dev) {
    return t_min == t_max ? dev.rep_cp_delay(t_min).value()
                          : dev.expected_cp_delay(t_min, t_max).value();
  };
  int best = 0;
  double best_d = expected(devices[0]);
  for (int i = 1; i < static_cast<int>(devices.size()); ++i) {
    const double d = expected(devices[static_cast<std::size_t>(i)]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace taf::core

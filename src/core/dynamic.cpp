#include "core/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "timing/timing.hpp"

namespace taf::core {

// ---------------------------------------------------------------------------
// ActivityTrace

namespace {

/// Shortest round-trip-exact rendering of a double (%.17g preserves every
/// bit through strtod; the text form must re-parse to the same trace).
std::string render_f64(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[noreturn]] void trace_error(const std::string& what) {
  throw std::invalid_argument("ActivityTrace: " + what);
}

}  // namespace

void ActivityTrace::validate() const {
  if (blocks < 1 || blocks > kMaxTraceBlocks) {
    trace_error("block count " + std::to_string(blocks) + " outside [1, " +
                std::to_string(kMaxTraceBlocks) + "]");
  }
  if (segments.empty()) trace_error("trace has no segments");
  if (segments.size() > static_cast<std::size_t>(kMaxTraceSegments)) {
    trace_error("segment count " + std::to_string(segments.size()) + " exceeds " +
                std::to_string(kMaxTraceSegments));
  }
  double prev_end = 0.0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const TraceSegment& seg = segments[s];
    const double t_end = seg.t_end.value();
    if (!std::isfinite(t_end) || !(t_end > prev_end)) {
      trace_error("segment " + std::to_string(s) + " end time " +
                  render_f64(t_end) + " s must be finite and exceed " +
                  render_f64(prev_end) + " s (end times strictly increase)");
    }
    if (seg.utilization.size() != static_cast<std::size_t>(blocks)) {
      trace_error("segment " + std::to_string(s) + " has " +
                  std::to_string(seg.utilization.size()) + " utilizations for " +
                  std::to_string(blocks) + " blocks");
    }
    for (std::size_t b = 0; b < seg.utilization.size(); ++b) {
      const double u = seg.utilization[b];
      if (!std::isfinite(u) || u < 0.0 || u > kMaxTraceUtilization) {
        trace_error("segment " + std::to_string(s) + " block " + std::to_string(b) +
                    " utilization " + render_f64(u) + " outside [0, " +
                    render_f64(kMaxTraceUtilization) + "]");
      }
    }
    prev_end = t_end;
  }
}

ActivityTrace ActivityTrace::duty_cycle(int cycles, units::Seconds period,
                                        double duty, double hi, double lo) {
  if (cycles < 1) trace_error("duty_cycle: cycles must be >= 1");
  if (!(period.value() > 0.0) || !std::isfinite(period.value())) {
    trace_error("duty_cycle: period must be positive and finite");
  }
  if (!(duty > 0.0) || duty > 1.0) trace_error("duty_cycle: duty must be in (0, 1]");
  ActivityTrace t;
  t.blocks = 1;
  for (int c = 0; c < cycles; ++c) {
    if (duty < 1.0) {
      t.segments.push_back(
          {units::Seconds{(c + duty) * period.value()}, {hi}});
    }
    t.segments.push_back(
        {units::Seconds{static_cast<double>(c + 1) * period.value()},
         {duty < 1.0 ? lo : hi}});
  }
  t.validate();
  return t;
}

std::string ActivityTrace::to_text() const {
  validate();
  std::string out = "taf-trace v1\nblocks " + std::to_string(blocks) + "\n";
  for (const TraceSegment& seg : segments) {
    out += render_f64(seg.t_end.value());
    for (double u : seg.utilization) {
      out += ' ';
      out += render_f64(u);
    }
    out += '\n';
  }
  return out;
}

ActivityTrace ActivityTrace::parse_text(std::string_view text) {
  // Line-based scan: blank lines and '#' comments are skipped; the first
  // two payload lines are the header, everything after is a segment.
  ActivityTrace t;
  t.blocks = 0;
  int payload_lines = 0;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;
    ++payload_lines;

    if (payload_lines == 1) {
      if (line != "taf-trace v1") {
        trace_error("line " + std::to_string(line_no) +
                    ": expected header 'taf-trace v1'");
      }
      continue;
    }
    if (payload_lines == 2) {
      constexpr std::string_view kBlocksPrefix = "blocks ";
      if (line.substr(0, kBlocksPrefix.size()) != kBlocksPrefix) {
        trace_error("line " + std::to_string(line_no) + ": expected 'blocks <n>'");
      }
      const std::string count(line.substr(kBlocksPrefix.size()));
      char* end = nullptr;
      const long blocks = std::strtol(count.c_str(), &end, 10);
      if (end == count.c_str() || *end != '\0') {
        trace_error("line " + std::to_string(line_no) + ": bad block count '" +
                    count + "'");
      }
      if (blocks < 1 || blocks > kMaxTraceBlocks) {
        trace_error("line " + std::to_string(line_no) + ": block count " +
                    std::to_string(blocks) + " outside [1, " +
                    std::to_string(kMaxTraceBlocks) + "]");
      }
      t.blocks = static_cast<int>(blocks);
      continue;
    }

    if (t.segments.size() >= static_cast<std::size_t>(kMaxTraceSegments)) {
      trace_error("line " + std::to_string(line_no) + ": more than " +
                  std::to_string(kMaxTraceSegments) + " segments");
    }
    const std::string row(line);
    const char* cursor = row.c_str();
    TraceSegment seg;
    seg.utilization.reserve(static_cast<std::size_t>(t.blocks));
    for (int field = 0; field <= t.blocks; ++field) {
      char* end = nullptr;
      const double v = std::strtod(cursor, &end);
      if (end == cursor) {
        trace_error("line " + std::to_string(line_no) + ": expected " +
                    std::to_string(t.blocks + 1) + " numbers, got " +
                    std::to_string(field));
      }
      cursor = end;
      if (field == 0) {
        seg.t_end = units::Seconds{v};
      } else {
        seg.utilization.push_back(v);
      }
    }
    while (*cursor == ' ') ++cursor;
    if (*cursor != '\0') {
      trace_error("line " + std::to_string(line_no) + ": trailing garbage '" +
                  std::string(cursor) + "'");
    }
    t.segments.push_back(std::move(seg));
  }
  if (payload_lines < 2) trace_error("missing header lines");
  t.validate();
  return t;
}

void ActivityTrace::serialize(util::codec::Encoder& enc) const {
  enc.i32(blocks);
  enc.u64(segments.size());
  for (const TraceSegment& seg : segments) {
    enc.f64(seg.t_end.value());
    // Width is implied by the block count; no per-segment length prefix.
    for (double u : seg.utilization) enc.f64(u);
  }
}

ActivityTrace ActivityTrace::deserialize(util::codec::Decoder& dec) {
  ActivityTrace t;
  t.blocks = dec.i32();
  if (t.blocks < 1 || t.blocks > kMaxTraceBlocks) {
    throw util::codec::Error("trace: block count " + std::to_string(t.blocks) +
                             " outside [1, " + std::to_string(kMaxTraceBlocks) + "]");
  }
  const std::uint64_t n_segments = dec.u64();
  if (n_segments > static_cast<std::uint64_t>(kMaxTraceSegments)) {
    // Fail before allocating: a corrupted count must not drive a giant
    // resize (same rule as Decoder::length()).
    throw util::codec::Error("trace: segment count " + std::to_string(n_segments) +
                             " exceeds " + std::to_string(kMaxTraceSegments));
  }
  t.segments.resize(static_cast<std::size_t>(n_segments));
  for (TraceSegment& seg : t.segments) {
    seg.t_end = units::Seconds{dec.f64()};
    seg.utilization.resize(static_cast<std::size_t>(t.blocks));
    for (double& u : seg.utilization) u = dec.f64();
  }
  return t;
}

std::string ActivityTrace::to_envelope() const {
  util::codec::Encoder enc;
  serialize(enc);
  return util::codec::wrap(kTraceKind, enc.buffer());
}

ActivityTrace ActivityTrace::from_envelope(std::string_view envelope) {
  util::codec::Decoder dec(util::codec::unwrap(envelope, kTraceKind));
  ActivityTrace t = deserialize(dec);
  dec.expect_done();
  t.validate();
  return t;
}

// ---------------------------------------------------------------------------
// DynamicGuardband

namespace {

thermal::ThermalConfig replay_thermal_config(const Implementation& impl,
                                             const DynamicGuardbandOptions& opt) {
  thermal::ThermalConfig tcfg = opt.thermal;
  tcfg.ambient_c = opt.t_amb_c;
  tcfg.tile_edge_um = impl.arch.tile_edge_um;
  return tcfg;
}

}  // namespace

DynamicGuardband::DynamicGuardband(const Implementation& impl,
                                   const coffe::DeviceModel& dev,
                                   DynamicGuardbandOptions opt)
    : impl_(impl),
      dev_(dev),
      opt_(std::move(opt)),
      grid_(impl.grid, replay_thermal_config(impl, opt_)),
      engine_(grid_, opt_.transient) {
  if (opt_.samples_per_segment < 1) {
    throw std::invalid_argument("DynamicGuardband: samples_per_segment must be >= 1");
  }
  if (!std::isfinite(opt_.power_scale) || opt_.power_scale < 0.0) {
    throw std::invalid_argument("DynamicGuardband: power_scale must be finite and >= 0");
  }
  if (!std::isfinite(opt_.margin_c.value()) || opt_.margin_c.value() < 0.0) {
    throw std::invalid_argument("DynamicGuardband: margin_c must be finite and >= 0");
  }
  const std::size_t n_tiles = static_cast<std::size_t>(grid_.width()) *
                              static_cast<std::size_t>(grid_.height());
  if (!opt_.tile_block.empty() && opt_.tile_block.size() != n_tiles) {
    throw std::invalid_argument(
        "DynamicGuardband: tile_block size " + std::to_string(opt_.tile_block.size()) +
        " does not match the " + std::to_string(n_tiles) + "-tile grid");
  }
  for (int b : opt_.tile_block) {
    if (b < -1) {
      throw std::invalid_argument("DynamicGuardband: tile_block entries must be >= -1");
    }
  }

  // Base power at the uniform-ambient priming analysis, exactly like
  // guardband()'s first iteration: the trace then scales this map, it is
  // never recomputed against the evolving temperatures (the replay prices
  // utilization, not leakage feedback — DESIGN.md section 13).
  priming_fmax_mhz_ = impl_.sta->analyze_uniform(dev_, opt_.t_amb_c).fmax_mhz;
  const std::vector<double> ambient_field(n_tiles, opt_.t_amb_c.value());
  power::PowerBreakdown base = power::compute_power(
      dev_, impl_.nl, impl_.packed, impl_.placement, impl_.rr, impl_.routes,
      impl_.activity, priming_fmax_mhz_, ambient_field, impl_.grid);
  base_power_w_ = std::move(base.tile_w);
  if (opt_.power_scale != 1.0) {
    for (double& w : base_power_w_) w *= opt_.power_scale;
  }
}

DynamicResult DynamicGuardband::replay(const ActivityTrace& trace) const {
  trace.validate();
  for (int b : opt_.tile_block) {
    if (b >= trace.blocks) {
      throw std::invalid_argument(
          "DynamicGuardband::replay: tile_block refers to block " + std::to_string(b) +
          " but the trace has " + std::to_string(trace.blocks) + " blocks");
    }
  }
  const std::size_t n = base_power_w_.size();

  // Exact mode is bit-identical to a full analyze() (DESIGN.md section
  // 8), so sampling through a warm session changes nothing but speed.
  timing::IncrementalSta session(*impl_.sta, dev_,
                                 timing::IncrementalSta::Mode::Exact);

  DynamicResult result;
  std::vector<double> temps(n, opt_.t_amb_c.value());
  std::vector<double> power(n);
  std::vector<double> margin_temps(n);

  auto record = [&](double time_s, double dwell_s) {
    DynamicSample sample;
    sample.time_s = time_s;
    double sum = 0.0;
    double peak = -std::numeric_limits<double>::infinity();
    for (double t : temps) {
      sum += t;
      peak = std::max(peak, t);
    }
    sample.peak_temp_c = peak;
    sample.mean_temp_c = sum / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      margin_temps[i] = temps[i] + opt_.margin_c.value();
    }
    sample.fmax_mhz =
        session.analyze(margin_temps, /*with_critical_path=*/false).fmax_mhz.value();
    sample.throttled =
        units::Celsius{sample.peak_temp_c} + opt_.margin_c > opt_.throttle_c;
    if (sample.throttled) result.throttled_s += units::Seconds{dwell_s};
    result.samples.push_back(sample);
  };

  record(0.0, 0.0);
  double t_prev = 0.0;
  for (const TraceSegment& seg : trace.segments) {
    for (std::size_t i = 0; i < n; ++i) {
      const int b = opt_.tile_block.empty() ? 0 : opt_.tile_block[i];
      const double u = b < 0 ? 1.0 : seg.utilization[static_cast<std::size_t>(b)];
      power[i] = base_power_w_[i] * u;
    }
    const double seg_duration = seg.t_end.value() - t_prev;
    const double sub = seg_duration / opt_.samples_per_segment;
    for (int k = 1; k <= opt_.samples_per_segment; ++k) {
      engine_.advance(power, units::Seconds{sub}, temps, &result.stats);
      const double t_now = k == opt_.samples_per_segment
                               ? seg.t_end.value()
                               : t_prev + sub * k;
      record(t_now, sub);
    }
    t_prev = seg.t_end.value();
  }

  double peak = -std::numeric_limits<double>::infinity();
  double min_fmax = std::numeric_limits<double>::infinity();
  for (const DynamicSample& s : result.samples) {
    peak = std::max(peak, s.peak_temp_c);
    min_fmax = std::min(min_fmax, s.fmax_mhz);
  }
  result.peak_temp_c = units::Celsius{peak};
  result.min_fmax_mhz = units::Megahertz{min_fmax};

  FlowCounters& fc = thread_flow_counters();
  fc.transient_steps += result.stats.steps;
  fc.transient_cg_iterations += result.stats.cg_iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Greedy thermal-aware task allocator

Allocation allocate_tasks(const thermal::ThermalGrid& grid,
                          const std::vector<TaskSpec>& tasks,
                          const std::vector<double>& background_power_w,
                          const AllocatorOptions& opt) {
  const int width = grid.width();
  const int height = grid.height();
  const std::size_t n = static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  if (tasks.empty()) throw std::invalid_argument("allocate_tasks: no tasks");
  if (opt.anchor_stride < 1) {
    throw std::invalid_argument("allocate_tasks: anchor_stride must be >= 1");
  }
  if (!background_power_w.empty() && background_power_w.size() != n) {
    throw std::invalid_argument(
        "allocate_tasks: background power size " +
        std::to_string(background_power_w.size()) + " does not match the " +
        std::to_string(n) + "-tile grid");
  }
  long total_tiles = 0;
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    if (tasks[k].tiles < 1) {
      throw std::invalid_argument("allocate_tasks: task " + std::to_string(k) +
                                  " footprint must be >= 1 tile");
    }
    if (!std::isfinite(tasks[k].power_w.value()) || tasks[k].power_w.value() < 0.0) {
      throw std::invalid_argument("allocate_tasks: task " + std::to_string(k) +
                                  " power must be finite and >= 0");
    }
    total_tiles += tasks[k].tiles;
  }
  if (total_tiles > static_cast<long>(n)) {
    throw std::invalid_argument("allocate_tasks: tasks need " +
                                std::to_string(total_tiles) + " tiles but the fabric has " +
                                std::to_string(n));
  }

  // Hottest first: descending power density, stable on the input order.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].power_w.value() / tasks[a].tiles >
           tasks[b].power_w.value() / tasks[b].tiles;
  });

  Allocation out;
  out.tile_block.assign(n, -1);
  std::vector<double> placed_power =
      background_power_w.empty() ? std::vector<double>(n, 0.0) : background_power_w;
  std::vector<double> trial(n);

  for (std::size_t ti : order) {
    const TaskSpec& task = tasks[ti];
    // Near-square footprint: the first `tiles` cells of a w x h rect,
    // row-major.
    int w = std::min(static_cast<int>(std::ceil(std::sqrt(static_cast<double>(task.tiles)))),
                     width);
    int h = (task.tiles + w - 1) / w;
    if (h > height) {
      h = height;
      w = (task.tiles + h - 1) / h;
    }
    const double per_tile_w = task.power_w.value() / task.tiles;

    double best_peak = std::numeric_limits<double>::infinity();
    int best_ax = -1;
    int best_ay = -1;
    for (int ay = 0; ay + h <= height; ay += opt.anchor_stride) {
      for (int ax = 0; ax + w <= width; ax += opt.anchor_stride) {
        bool overlaps = false;
        for (int c = 0; c < task.tiles && !overlaps; ++c) {
          const int idx = (ay + c / w) * width + (ax + c % w);
          overlaps = out.tile_block[static_cast<std::size_t>(idx)] >= 0;
        }
        if (overlaps) continue;
        trial = placed_power;
        for (int c = 0; c < task.tiles; ++c) {
          const int idx = (ay + c / w) * width + (ax + c % w);
          trial[static_cast<std::size_t>(idx)] += per_tile_w;
        }
        const double peak = thermal::ThermalGrid::peak(grid.solve(trial)).value();
        ++out.candidate_solves;
        if (peak < best_peak) {
          best_peak = peak;
          best_ax = ax;
          best_ay = ay;
        }
      }
    }
    if (best_ax < 0) {
      throw std::runtime_error("allocate_tasks: no overlap-free anchor for task " +
                               std::to_string(ti) + " (" + std::to_string(task.tiles) +
                               " tiles on a fragmented " + std::to_string(width) + "x" +
                               std::to_string(height) + " fabric)");
    }
    for (int c = 0; c < task.tiles; ++c) {
      const int idx = (best_ay + c / w) * width + (best_ax + c % w);
      out.tile_block[static_cast<std::size_t>(idx)] = static_cast<int>(ti);
      placed_power[static_cast<std::size_t>(idx)] += per_tile_w;
    }
  }

  out.peak_temp_c = thermal::ThermalGrid::peak(grid.solve(placed_power));
  return out;
}

}  // namespace taf::core

#include "core/stage_graph.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "util/codec.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace taf::core {

const char* artifact_kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::Netlist: return "netlist";
    case ArtifactKind::Packed: return "packed";
    case ArtifactKind::Placement: return "placement";
    case ArtifactKind::Routes: return "routes";
    case ArtifactKind::Activity: return "activity";
    case ArtifactKind::Sta: return "sta";
  }
  return "unknown";
}

void FlowGraph::seed_artifact(ArtifactKind kind, std::uint64_t content_hash) {
  assert(!available(kind));
  artifacts_.emplace_back(kind, content_hash);
}

bool FlowGraph::available(ArtifactKind kind) const {
  for (const auto& [k, h] : artifacts_) {
    if (k == kind) return true;
  }
  return false;
}

std::uint64_t FlowGraph::hash_of(ArtifactKind kind) const {
  for (const auto& [k, h] : artifacts_) {
    if (k == kind) return h;
  }
  assert(false && "artifact not produced");
  return 0;
}

void FlowGraph::add(FlowStage stage) {
  for (ArtifactKind input : stage.inputs) {
    if (!available(input)) {
      throw std::logic_error(std::string("FlowGraph: stage ") + stage.name +
                             " consumes " + artifact_kind_name(input) +
                             " before any stage produces it");
    }
  }
  if (available(stage.output)) {
    throw std::logic_error(std::string("FlowGraph: stage ") + stage.name +
                           " re-produces " + artifact_kind_name(stage.output));
  }
  util::Fnv1a h;
  h.add(std::string_view(stage.name));
  h.add(stage.param_hash);
  for (ArtifactKind input : stage.inputs) h.add(hash_of(input));
  stage.input_hash = h.state;
  artifacts_.emplace_back(stage.output, stage.input_hash);
  stages_.push_back(std::move(stage));
}

namespace {

/// Forwards phase durations to an observer, if any; all state is local
/// to the running task, keeping implement() re-entrant.
struct PhaseClock {
  explicit PhaseClock(const FlowObserver* obs) : obs_(obs) {}
  void mark(FlowPhase phase) {
    const double s = watch_.lap();
    if (obs_ != nullptr && obs_->on_phase) obs_->on_phase(phase, units::Seconds{s});
  }
  const FlowObserver* obs_;
  util::Stopwatch watch_;
};

}  // namespace

void FlowGraph::run(FlowBuild& build, const StageHooks* hooks) const {
  PhaseClock clock(build.opt.observer);
  util::Rng rng(build.opt.seed ^ std::hash<std::string>{}(build.spec.name));
  build.nl = netlist::generate(build.spec, rng);

  std::string payload;
  for (const FlowStage& stage : stages_) {
    bool loaded = false;
    if (hooks != nullptr && stage.storable && hooks->fetch && stage.load) {
      payload.clear();
      if (hooks->fetch(stage, payload)) {
        try {
          stage.load(build, payload);
          loaded = true;
        } catch (const util::codec::Error& e) {
          util::log_warn("flow stage %s(%s): stored artifact rejected (%s); "
                         "recomputing",
                         stage.name, build.spec.name.c_str(), e.what());
        }
      }
    }
    if (!loaded) stage.run(build);
    if (stage.finalize) stage.finalize(build);
    if (!loaded && hooks != nullptr && stage.storable && hooks->store && stage.save) {
      hooks->store(stage, stage.save(build));
    }
    clock.mark(stage.phase);
  }
}

namespace {

// --- Pack ------------------------------------------------------------------

void run_pack(FlowBuild& b) { b.packed = pack::pack(b.nl, b.arch); }

void finalize_pack(FlowBuild& b) {
  const arch::FpgaGrid grid =
      arch::FpgaGrid::fit(b.packed.count(pack::BlockKind::Clb),
                          b.packed.count(pack::BlockKind::Bram),
                          b.packed.count(pack::BlockKind::Dsp));
  b.impl = std::make_unique<Implementation>(b.arch, std::move(b.nl), grid);
  b.impl->packed = std::move(b.packed);
  b.impl->packed.source = &b.impl->nl;
}

std::string save_pack(const FlowBuild& b) {
  util::codec::Encoder e;
  pack::serialize(b.impl->packed, e);
  return e.take();
}

void load_pack(FlowBuild& b, std::string_view payload) {
  util::codec::Decoder d(payload);
  b.packed = pack::deserialize(d);
  d.expect_done();
}

// --- Place -----------------------------------------------------------------

void run_place(FlowBuild& b) {
  place::PlaceOptions popt;
  popt.seed = b.opt.seed;
  popt.effort = b.opt.place_effort;
  b.impl->placement = place::place(b.impl->packed, b.impl->grid, popt);
}

std::string save_place(const FlowBuild& b) {
  util::codec::Encoder e;
  place::serialize(b.impl->placement, e);
  return e.take();
}

void load_place(FlowBuild& b, std::string_view payload) {
  util::codec::Decoder d(payload);
  b.impl->placement = place::deserialize(d);
  d.expect_done();
}

// --- Route -----------------------------------------------------------------

void run_route(FlowBuild& b) {
  b.impl->routes = route::route(b.impl->rr, b.impl->packed, b.impl->placement,
                                b.opt.route);
}

void finalize_route(FlowBuild& b) {
  if (!b.impl->routes.success) {
    util::log_warn("implement(%s): routing left %d overused nodes after %d iterations",
                   b.spec.name.c_str(), b.impl->routes.overused_nodes,
                   b.impl->routes.iterations);
  }
}

std::string save_route(const FlowBuild& b) {
  util::codec::Encoder e;
  route::serialize(b.impl->routes, e);
  return e.take();
}

void load_route(FlowBuild& b, std::string_view payload) {
  util::codec::Decoder d(payload);
  b.impl->routes = route::deserialize(d);
  d.expect_done();
}

// --- Activity --------------------------------------------------------------

void run_activity(FlowBuild& b) { b.impl->activity = activity::estimate(b.impl->nl); }

std::string save_activity(const FlowBuild& b) {
  util::codec::Encoder e;
  activity::serialize(b.impl->activity, e);
  return e.take();
}

void load_activity(FlowBuild& b, std::string_view payload) {
  util::codec::Decoder d(payload);
  b.impl->activity = activity::deserialize(d);
  d.expect_done();
}

// --- StaBuild --------------------------------------------------------------

void run_sta_build(FlowBuild& b) {
  b.impl->sta = std::make_unique<timing::TimingAnalyzer>(
      b.impl->nl, b.impl->packed, b.impl->placement, b.impl->rr, b.impl->routes,
      b.impl->grid);
}

}  // namespace

FlowGraph FlowGraph::standard(const netlist::BenchmarkSpec& spec,
                              const arch::ArchParams& arch,
                              const ImplementOptions& opt) {
  FlowGraph g;

  {
    util::Fnv1a h;
    h.add(netlist::spec_hash(spec));
    h.add(opt.seed);
    g.seed_artifact(ArtifactKind::Netlist, h.state);
  }

  {
    FlowStage s;
    s.name = "pack";
    s.phase = FlowPhase::Pack;
    s.output = ArtifactKind::Packed;
    s.inputs = {ArtifactKind::Netlist};
    s.param_hash = arch::params_hash(arch);
    s.storable = true;
    s.run = run_pack;
    s.finalize = finalize_pack;
    s.save = save_pack;
    s.load = load_pack;
    g.add(std::move(s));
  }
  {
    FlowStage s;
    s.name = "place";
    s.phase = FlowPhase::Place;
    s.output = ArtifactKind::Placement;
    s.inputs = {ArtifactKind::Packed};
    util::Fnv1a h;
    h.add(opt.seed);
    h.add(opt.place_effort);
    s.param_hash = h.state;
    s.storable = true;
    s.run = run_place;
    s.save = save_place;
    s.load = load_place;
    g.add(std::move(s));
  }
  {
    FlowStage s;
    s.name = "route";
    s.phase = FlowPhase::Route;
    s.output = ArtifactKind::Routes;
    s.inputs = {ArtifactKind::Packed, ArtifactKind::Placement};
    util::Fnv1a h;
    h.add(opt.route.max_iterations);
    h.add(opt.route.first_iter_pres_fac);
    h.add(opt.route.pres_fac_mult);
    h.add(opt.route.hist_fac);
    h.add(opt.route.astar_fac);
    s.param_hash = h.state;
    s.storable = true;
    s.run = run_route;
    s.finalize = finalize_route;
    s.save = save_route;
    s.load = load_route;
    g.add(std::move(s));
  }
  {
    FlowStage s;
    s.name = "activity";
    s.phase = FlowPhase::Activity;
    s.output = ArtifactKind::Activity;
    s.inputs = {ArtifactKind::Netlist};
    s.storable = true;
    s.run = run_activity;
    s.save = save_activity;
    s.load = load_activity;
    g.add(std::move(s));
  }
  {
    FlowStage s;
    s.name = "sta_build";
    s.phase = FlowPhase::StaBuild;
    s.output = ArtifactKind::Sta;
    s.inputs = {ArtifactKind::Netlist, ArtifactKind::Packed, ArtifactKind::Placement,
                ArtifactKind::Routes};
    s.storable = false;
    s.run = run_sta_build;
    g.add(std::move(s));
  }
  return g;
}

}  // namespace taf::core

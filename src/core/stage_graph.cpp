#include "core/stage_graph.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/codec.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace taf::core {

const char* artifact_kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::Netlist: return "netlist";
    case ArtifactKind::Packed: return "packed";
    case ArtifactKind::Placement: return "placement";
    case ArtifactKind::Routes: return "routes";
    case ArtifactKind::Activity: return "activity";
    case ArtifactKind::Sta: return "sta";
    case ArtifactKind::PlacementRefined: return "placement_refined";
    case ArtifactKind::RoutesRefined: return "routes_refined";
  }
  return "unknown";
}

void FlowGraph::seed_artifact(ArtifactKind kind, std::uint64_t content_hash) {
  assert(!available(kind));
  artifacts_.emplace_back(kind, content_hash);
}

bool FlowGraph::available(ArtifactKind kind) const {
  for (const auto& [k, h] : artifacts_) {
    if (k == kind) return true;
  }
  return false;
}

std::uint64_t FlowGraph::hash_of(ArtifactKind kind) const {
  for (const auto& [k, h] : artifacts_) {
    if (k == kind) return h;
  }
  assert(false && "artifact not produced");
  return 0;
}

void FlowGraph::add(FlowStage stage) {
  for (ArtifactKind input : stage.inputs) {
    if (!available(input)) {
      throw std::logic_error(std::string("FlowGraph: stage ") + stage.name +
                             " consumes " + artifact_kind_name(input) +
                             " before any stage produces it");
    }
  }
  if (available(stage.output)) {
    throw std::logic_error(std::string("FlowGraph: stage ") + stage.name +
                           " re-produces " + artifact_kind_name(stage.output));
  }
  util::Fnv1a h;
  h.add(std::string_view(stage.name));
  h.add(stage.param_hash);
  for (ArtifactKind input : stage.inputs) h.add(hash_of(input));
  stage.input_hash = h.state;
  artifacts_.emplace_back(stage.output, stage.input_hash);
  stages_.push_back(std::move(stage));
}

namespace {

/// Forwards phase durations to an observer, if any; all state is local
/// to the running task, keeping implement() re-entrant.
struct PhaseClock {
  explicit PhaseClock(const FlowObserver* obs) : obs_(obs) {}
  void mark(FlowPhase phase) {
    const double s = watch_.lap();
    if (obs_ != nullptr && obs_->on_phase) obs_->on_phase(phase, units::Seconds{s});
  }
  const FlowObserver* obs_;
  util::Stopwatch watch_;
};

}  // namespace

void FlowGraph::run(FlowBuild& build, const StageHooks* hooks) const {
  PhaseClock clock(build.opt.observer);
  util::Rng rng(build.opt.seed ^ std::hash<std::string>{}(build.spec.name));
  build.nl = netlist::generate(build.spec, rng);

  std::string payload;
  for (const FlowStage& stage : stages_) {
    bool loaded = false;
    if (hooks != nullptr && stage.storable && hooks->fetch && stage.load) {
      payload.clear();
      if (hooks->fetch(stage, payload)) {
        try {
          stage.load(build, payload);
          loaded = true;
        } catch (const util::codec::Error& e) {
          util::log_warn("flow stage %s(%s): stored artifact rejected (%s); "
                         "recomputing",
                         stage.name, build.spec.name.c_str(), e.what());
        }
      }
    }
    if (!loaded) stage.run(build);
    if (stage.finalize) stage.finalize(build);
    if (!loaded && hooks != nullptr && stage.storable && hooks->store && stage.save) {
      hooks->store(stage, stage.save(build));
    }
    clock.mark(stage.phase);
  }
}

namespace {

// --- Pack ------------------------------------------------------------------

void run_pack(FlowBuild& b) { b.packed = pack::pack(b.nl, b.arch); }

void finalize_pack(FlowBuild& b) {
  const arch::FpgaGrid grid =
      arch::FpgaGrid::fit(b.packed.count(pack::BlockKind::Clb),
                          b.packed.count(pack::BlockKind::Bram),
                          b.packed.count(pack::BlockKind::Dsp));
  b.impl = std::make_unique<Implementation>(b.arch, std::move(b.nl), grid);
  b.impl->packed = std::move(b.packed);
  b.impl->packed.source = &b.impl->nl;
}

std::string save_pack(const FlowBuild& b) {
  util::codec::Encoder e;
  pack::serialize(b.impl->packed, e);
  return e.take();
}

void load_pack(FlowBuild& b, std::string_view payload) {
  util::codec::Decoder d(payload);
  b.packed = pack::deserialize(d);
  d.expect_done();
}

// --- Place -----------------------------------------------------------------

void run_place(FlowBuild& b) {
  place::PlaceOptions popt;
  popt.seed = b.opt.seed;
  popt.effort = b.opt.place_effort;
  b.impl->placement = place::place(b.impl->packed, b.impl->grid, popt);
}

std::string save_place(const FlowBuild& b) {
  util::codec::Encoder e;
  place::serialize(b.impl->placement, e);
  return e.take();
}

void load_place(FlowBuild& b, std::string_view payload) {
  util::codec::Decoder d(payload);
  b.impl->placement = place::deserialize(d);
  d.expect_done();
}

// --- Route -----------------------------------------------------------------

void run_route(FlowBuild& b) {
  b.impl->routes = route::route(b.impl->rr, b.impl->packed, b.impl->placement,
                                b.opt.route);
}

void finalize_route(FlowBuild& b) {
  if (!b.impl->routes.success) {
    util::log_warn("implement(%s): routing left %d overused nodes after %d iterations",
                   b.spec.name.c_str(), b.impl->routes.overused_nodes,
                   b.impl->routes.iterations);
  }
}

std::string save_route(const FlowBuild& b) {
  util::codec::Encoder e;
  route::serialize(b.impl->routes, e);
  return e.take();
}

void load_route(FlowBuild& b, std::string_view payload) {
  util::codec::Decoder d(payload);
  b.impl->routes = route::deserialize(d);
  d.expect_done();
}

// --- Activity --------------------------------------------------------------

void run_activity(FlowBuild& b) { b.impl->activity = activity::estimate(b.impl->nl); }

std::string save_activity(const FlowBuild& b) {
  util::codec::Encoder e;
  activity::serialize(b.impl->activity, e);
  return e.take();
}

void load_activity(FlowBuild& b, std::string_view payload) {
  util::codec::Decoder d(payload);
  b.impl->activity = activity::deserialize(d);
  d.expect_done();
}

// --- ThermalPlace (place -> thermal feedback edge) -------------------------

/// Quantize adjoint prices to 1e-3 K/W before they reach the placer:
/// the two thermal backends agree only to solver tolerance (~1e-10 K/W),
/// so pricing at a granularity orders of magnitude above that makes
/// every accept decision — and hence the refined placement artifact —
/// backend-independent (same pattern as FlowCache::quantize_t_opt).
double quantize_price(double k_per_w) {
  return std::round(k_per_w * 1000.0) / 1000.0;
}

void run_thermal_place(FlowBuild& b) {
  const ThermalPlaceOptions& tp = b.opt.thermal_place;
  const coffe::DeviceModel& dev = *tp.device;
  Implementation& impl = *b.impl;
  FlowCounters& counters = thread_flow_counters();

  thermal::ThermalConfig tcfg = tp.thermal;
  const thermal::ThermalGrid tgrid(impl.grid, tcfg);
  const std::vector<double> block_w = power::block_dynamic_power(
      dev, impl.nl, impl.packed, impl.activity, tp.pricing_f_mhz);
  const std::vector<double> pricing_temp(
      static_cast<std::size_t>(impl.grid.num_tiles()), tp.pricing_temp_c.value());

  place::RefineOptions ropt;
  ropt.effort = tp.effort;
  ropt.max_rounds = tp.max_rounds;

  // Timing guard: a pass is only kept when the rerouted design is at
  // least as fast as what it replaces (STA at the uniform pricing
  // temperature). Thermal-aware refinement must never ship a slower
  // implementation — placement moves reroute nets, and routed-delay
  // perturbation would otherwise swamp the kelvin-scale thermal win.
  double fmax_best =
      timing::TimingAnalyzer(impl.nl, impl.packed, impl.placement, impl.rr,
                             impl.routes, impl.grid)
          .analyze_uniform(dev, tp.pricing_temp_c)
          .fmax_mhz.value();

  for (int pass = 0; pass < tp.passes; ++pass) {
    const power::PowerBreakdown power = power::compute_power(
        dev, impl.nl, impl.packed, impl.placement, impl.rr, impl.routes,
        impl.activity, tp.pricing_f_mhz, pricing_temp, impl.grid);
    const thermal::AdjointResult adj =
        tgrid.solve_adjoint(power.tile_w, tp.smooth_tau_k);
    counters.thermal_adjoint_solves += 1;

    place::ThermalField field;
    field.dpeak_dp_k_per_w.reserve(adj.dpeak_dp_k_per_w.size());
    for (double v : adj.dpeak_dp_k_per_w)
      field.dpeak_dp_k_per_w.push_back(quantize_price(v));
    field.block_power_w = block_w;
    field.weight = tp.weight;

    ropt.seed = b.opt.seed + static_cast<unsigned>(pass);
    place::RefineStats rstats;
    place::Placement refined = place::refine_placement(
        impl.packed, impl.grid, impl.placement, field, ropt, &rstats);
    counters.replace_moves += static_cast<std::uint64_t>(rstats.moves);
    if (rstats.accepted == 0) break;  // descent fixed point: nothing moved

    route::RouteResult rerouted =
        route::route(impl.rr, impl.packed, refined, b.opt.route);
    const double fmax_refined =
        timing::TimingAnalyzer(impl.nl, impl.packed, refined, impl.rr, rerouted,
                               impl.grid)
            .analyze_uniform(dev, tp.pricing_temp_c)
            .fmax_mhz.value();
    // Reject the pass but keep trying: the next pass draws a different
    // move sequence (seed advances with the pass index) from the same
    // placement, so one unlucky candidate does not end refinement.
    if (fmax_refined < fmax_best) continue;
    if (fmax_refined == fmax_best) {
      // Timing is flat, so the pass must pay its way thermally: require
      // the realized (not just predicted smooth-max) peak to drop.
      // The linearized model can be off by millikelvins after rerouting.
      const power::PowerBreakdown p_ref = power::compute_power(
          dev, impl.nl, impl.packed, refined, impl.rr, rerouted, impl.activity,
          tp.pricing_f_mhz, pricing_temp, impl.grid);
      const units::Celsius peak_ref =
          thermal::ThermalGrid::peak(tgrid.solve(p_ref.tile_w));
      const units::Celsius peak_now = thermal::ThermalGrid::peak(adj.temp_c);
      if (!(peak_ref.value() < peak_now.value())) continue;
    }

    impl.placement = std::move(refined);
    impl.routes = std::move(rerouted);
    fmax_best = fmax_refined;
  }
}

// --- RouteRefined ----------------------------------------------------------

void run_route_refined(FlowBuild& b) {
  b.impl->routes = route::route(b.impl->rr, b.impl->packed, b.impl->placement,
                                b.opt.route);
}

// --- StaBuild --------------------------------------------------------------

void run_sta_build(FlowBuild& b) {
  b.impl->sta = std::make_unique<timing::TimingAnalyzer>(
      b.impl->nl, b.impl->packed, b.impl->placement, b.impl->rr, b.impl->routes,
      b.impl->grid);
}

}  // namespace

FlowGraph FlowGraph::standard(const netlist::BenchmarkSpec& spec,
                              const arch::ArchParams& arch,
                              const ImplementOptions& opt) {
  FlowGraph g;

  {
    util::Fnv1a h;
    h.add(netlist::spec_hash(spec));
    h.add(opt.seed);
    g.seed_artifact(ArtifactKind::Netlist, h.state);
  }

  {
    FlowStage s;
    s.name = "pack";
    s.phase = FlowPhase::Pack;
    s.output = ArtifactKind::Packed;
    s.inputs = {ArtifactKind::Netlist};
    s.param_hash = arch::params_hash(arch);
    s.storable = true;
    s.run = run_pack;
    s.finalize = finalize_pack;
    s.save = save_pack;
    s.load = load_pack;
    g.add(std::move(s));
  }
  {
    FlowStage s;
    s.name = "place";
    s.phase = FlowPhase::Place;
    s.output = ArtifactKind::Placement;
    s.inputs = {ArtifactKind::Packed};
    util::Fnv1a h;
    h.add(opt.seed);
    h.add(opt.place_effort);
    s.param_hash = h.state;
    s.storable = true;
    s.run = run_place;
    s.save = save_place;
    s.load = load_place;
    g.add(std::move(s));
  }
  {
    FlowStage s;
    s.name = "route";
    s.phase = FlowPhase::Route;
    s.output = ArtifactKind::Routes;
    s.inputs = {ArtifactKind::Packed, ArtifactKind::Placement};
    util::Fnv1a h;
    h.add(opt.route.max_iterations);
    h.add(opt.route.first_iter_pres_fac);
    h.add(opt.route.pres_fac_mult);
    h.add(opt.route.hist_fac);
    h.add(opt.route.astar_fac);
    s.param_hash = h.state;
    s.storable = true;
    s.run = run_route;
    s.finalize = finalize_route;
    s.save = save_route;
    s.load = load_route;
    g.add(std::move(s));
  }
  {
    FlowStage s;
    s.name = "activity";
    s.phase = FlowPhase::Activity;
    s.output = ArtifactKind::Activity;
    s.inputs = {ArtifactKind::Netlist};
    s.storable = true;
    s.run = run_activity;
    s.save = save_activity;
    s.load = load_activity;
    g.add(std::move(s));
  }
  const bool feedback = opt.thermal_place.enabled;
  if (feedback) {
    const ThermalPlaceOptions& tp = opt.thermal_place;
    if (tp.device == nullptr) {
      throw std::invalid_argument(
          "implement: thermal_place.enabled requires a device model for power "
          "pricing (thermal_place.device is null)");
    }
    {
      FlowStage s;
      s.name = "thermal_place";
      s.phase = FlowPhase::Place;
      s.output = ArtifactKind::PlacementRefined;
      s.inputs = {ArtifactKind::Netlist, ArtifactKind::Packed,
                  ArtifactKind::Placement, ArtifactKind::Routes,
                  ArtifactKind::Activity};
      util::Fnv1a h;
      h.add(opt.seed);
      h.add(tp.weight);
      h.add(tp.passes);
      h.add(tp.effort);
      h.add(tp.max_rounds);
      h.add(tp.smooth_tau_k.value());
      h.add(tp.pricing_f_mhz.value());
      h.add(tp.pricing_temp_c.value());
      h.add(std::string_view(tp.device->name));
      h.add(tp.device->t_opt_c.value());
      // Thermal-model knobs that shape the gradient field. The backend is
      // deliberately NOT hashed: prices are quantized far above solver
      // tolerance, so both backends produce the same refined placement.
      h.add(tp.thermal.silicon_k_w_mk);
      h.add(tp.thermal.die_thickness_um);
      h.add(tp.thermal.tile_edge_um);
      h.add(tp.thermal.package_r_k_per_w);
      s.param_hash = h.state;
      s.storable = true;
      s.run = run_thermal_place;
      s.save = save_place;
      s.load = load_place;
      g.add(std::move(s));
    }
    {
      FlowStage s;
      s.name = "route_refined";
      s.phase = FlowPhase::Route;
      s.output = ArtifactKind::RoutesRefined;
      s.inputs = {ArtifactKind::Packed, ArtifactKind::PlacementRefined};
      util::Fnv1a h;
      h.add(opt.route.max_iterations);
      h.add(opt.route.first_iter_pres_fac);
      h.add(opt.route.pres_fac_mult);
      h.add(opt.route.hist_fac);
      h.add(opt.route.astar_fac);
      s.param_hash = h.state;
      s.storable = true;
      s.run = run_route_refined;
      s.finalize = finalize_route;
      s.save = save_route;
      s.load = load_route;
      g.add(std::move(s));
    }
  }
  {
    FlowStage s;
    s.name = "sta_build";
    s.phase = FlowPhase::StaBuild;
    s.output = ArtifactKind::Sta;
    // The final STA sees the refined placement/routes when the feedback
    // edge is on — its input hash shifts with them, as it must.
    s.inputs = feedback
                   ? std::vector<ArtifactKind>{ArtifactKind::Netlist,
                                               ArtifactKind::Packed,
                                               ArtifactKind::PlacementRefined,
                                               ArtifactKind::RoutesRefined}
                   : std::vector<ArtifactKind>{ArtifactKind::Netlist,
                                               ArtifactKind::Packed,
                                               ArtifactKind::Placement,
                                               ArtifactKind::Routes};
    s.storable = false;
    s.run = run_sta_build;
    g.add(std::move(s));
  }
  return g;
}

}  // namespace taf::core

#pragma once
// The paper's core contribution: thermal-aware guardbanding (Algorithm 1)
// and thermal-aware device/grade selection, driving the full CAD stack
// (pack -> place -> route -> activity -> power -> thermal -> STA).

#include <functional>
#include <memory>
#include <vector>

#include "activity/activity.hpp"
#include "arch/arch_params.hpp"
#include "arch/fpga_grid.hpp"
#include "coffe/device_model.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "power/power.hpp"
#include "route/router.hpp"
#include "route/rr_graph.hpp"
#include "thermal/thermal_grid.hpp"
#include "timing/timing.hpp"

namespace taf::core {

/// A fully implemented design: the netlist and every CAD-stage artifact.
/// Sub-objects hold pointers into their siblings, so the struct is pinned
/// in memory (created through implement(), never copied or moved).
struct Implementation {
  arch::ArchParams arch;
  netlist::Netlist nl;
  pack::PackedNetlist packed;
  arch::FpgaGrid grid;
  place::Placement placement;
  route::RrGraph rr;
  route::RouteResult routes;
  std::vector<activity::SignalStats> activity;
  std::unique_ptr<timing::TimingAnalyzer> sta;

  Implementation(arch::ArchParams a, netlist::Netlist n, arch::FpgaGrid g)
      : arch(a), nl(std::move(n)), grid(g), rr(grid, arch) {}
  Implementation(const Implementation&) = delete;
  Implementation& operator=(const Implementation&) = delete;
};

/// CAD/analysis phases reported through FlowObserver. The runner's sweep
/// reports aggregate per-task time under these labels.
enum class FlowPhase {
  Pack = 0,
  Place,
  Route,
  Activity,
  StaBuild,  ///< TimingAnalyzer construction (route-tree walk)
  Sta,
  Power,
  Thermal,
};
inline constexpr int kNumFlowPhases = 8;
const char* flow_phase_name(FlowPhase phase);

/// Optional progress/instrumentation hooks. implement() and guardband()
/// are re-entrant: all state is task-local, so one observer per task is
/// safe under concurrent flows (the observer itself is only invoked from
/// the calling thread).
struct FlowObserver {
  /// Called after each phase with its wall-clock duration.
  std::function<void(FlowPhase, double seconds)> on_phase;
  /// Called after each Algorithm 1 iteration.
  std::function<void(int iteration, double fmax_mhz, double max_delta_c)> on_iteration;
};

struct ImplementOptions {
  unsigned seed = 1;
  double place_effort = 0.5;
  route::RouteOptions route;
  const FlowObserver* observer = nullptr;  ///< not owned; may be null
};

/// Run the full implementation flow on a benchmark spec.
std::unique_ptr<Implementation> implement(const netlist::BenchmarkSpec& spec,
                                          const arch::ArchParams& arch,
                                          const ImplementOptions& opt = {});

struct GuardbandOptions {
  double t_amb_c = 25.0;          ///< ambient / board temperature
  double delta_t_c = 1.0;         ///< convergence threshold and final margin
  int max_iterations = 10;        ///< the paper observes < 10 iterations
  double t_worst_c = 100.0;       ///< conventional worst-case corner
  thermal::ThermalConfig thermal; ///< ambient_c is overridden by t_amb_c
  const FlowObserver* observer = nullptr;  ///< not owned; may be null
};

struct GuardbandResult {
  double fmax_mhz = 0.0;           ///< thermal-aware frequency
  double baseline_fmax_mhz = 0.0;  ///< worst-case-corner frequency
  int iterations = 0;
  std::vector<double> tile_temp_c; ///< converged temperature map
  double peak_temp_c = 0.0;
  double mean_temp_c = 0.0;
  timing::TimingResult timing;     ///< final thermal-aware STA
  /// Power at the reported operating point: the converged temperature map
  /// and the reported (margin-applied) fmax_mhz.
  power::PowerBreakdown power;

  /// The paper's reported metric: performance improvement over the
  /// worst-case guardband.
  double gain() const {
    return baseline_fmax_mhz > 0.0 ? fmax_mhz / baseline_fmax_mhz - 1.0 : 0.0;
  }
};

/// Algorithm 1: iterate STA / power / thermal to convergence, then apply
/// the delta-T safety margin. Also runs the T_worst baseline STA.
GuardbandResult guardband(const Implementation& impl, const coffe::DeviceModel& dev,
                          const GuardbandOptions& opt = {});

/// Eq. (1)-based grade selection: the device (by index) with the lowest
/// expected representative-CP delay over a uniform [t_min, t_max] field
/// temperature range.
int select_grade(const std::vector<coffe::DeviceModel>& devices, double t_min_c,
                 double t_max_c);

}  // namespace taf::core
